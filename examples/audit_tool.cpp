// The forensic analysis tool (the paper ships this as "a simple Python
// tool; given a Tloss timestamp and an expiration time Texp, the tool
// reconstructs a full-fidelity audit report of all accesses after
// Tloss − Texp, including full path names and access timestamps").
//
// This example builds a device history with several distinct situations —
// pre-loss activity, an exposure-window access, post-loss thief reads with
// prefetch noise, a bogus metadata injection — and then runs the auditor
// at multiple (Tloss, Texp) settings to show how the report reads.
//
// Build & run:  cmake --build build && ./build/examples/audit_tool

#include <cstdio>

#include "src/keypad/coverage.h"
#include "src/keypad/deployment.h"

using namespace keypad;

namespace {

void PrintReport(const char* title, const AuditReport& report) {
  std::printf("\n=== %s ===\n%s", title, report.ToString().c_str());
}

}  // namespace

int main() {
  DeploymentOptions options;
  options.profile = BroadbandProfile();
  options.config.texp = SimDuration::Seconds(100);
  options.config.prefetch = PrefetchPolicy::FullDirOnNthMiss(3);
  options.config.ibe_enabled = true;
  options.config.coverage = CoverHomeAndTmp();
  options.device_id = "audited-laptop";
  Deployment dep(options);
  auto& fs = dep.fs();

  // --- History: normal use. --------------------------------------------------
  fs.Mkdir("/home").ok();
  fs.Mkdir("/home/finance").ok();
  for (int i = 0; i < 5; ++i) {
    std::string path = "/home/finance/statement" + std::to_string(i) + ".pdf";
    fs.Create(path).ok();
    fs.WriteAll(path, BytesOf("account data")).ok();
  }
  fs.Create("/home/todo.txt").ok();
  fs.WriteAll("/home/todo.txt", BytesOf("buy milk")).ok();
  dep.queue().AdvanceBy(SimDuration::Hours(1));

  // The owner reads one statement 40 s before losing the laptop: that key
  // sits in memory at Tloss (the exposure window).
  fs.ReadAll("/home/finance/statement0.pdf").status();
  dep.queue().AdvanceBy(SimDuration::Seconds(40));
  SimTime t_loss = dep.queue().Now();

  // --- The thief: reads three statements (prefetch pulls the rest), then
  // injects a bogus binding to muddy the metadata.
  dep.queue().AdvanceBy(SimDuration::Minutes(30));
  RawDeviceAttacker thief = dep.MakeAttacker();
  auto creds = thief.StealCredentials();
  auto clients = dep.MakeAttackerClients(*creds);
  auto thief_fs = thief.MountOnline(clients->services, options.config);
  for (int i = 0; i < 3; ++i) {
    (*thief_fs)
        ->ReadAll("/home/finance/statement" + std::to_string(i) + ".pdf")
        .status();
  }
  // He also injects a bogus binding for a file he read, hoping to confuse
  // the analyst about what "statement0" was.
  AuditId target =
      (*thief_fs)->ReadHeaderOf("/home/finance/statement0.pdf")->audit_id;
  dep.metadata_service()
      .RegisterFileBinding(dep.device_id(), target, DirId{},
                           "bogus_name.tmp", /*is_rename=*/true)
      .status();

  // --- The analyst's view. ------------------------------------------------------
  auto report = dep.auditor().BuildReport(dep.device_id(), t_loss,
                                          options.config.texp);
  PrintReport("Report at the true Tloss (Texp = 100 s)", *report);
  std::printf(
      "reading: the 3 statements the thief read are demand-accessed; the\n"
      "other finance files are prefetch-only candidates; statement0 also\n"
      "appears because its key was in memory at Tloss (exposure window);\n"
      "the bogus binding shows up as a *post-loss* path, clearly separated\n"
      "from the trusted pre-loss name.\n");

  // A cautious analyst who is unsure of Tloss widens the window.
  auto wide = dep.auditor().BuildReport(
      dep.device_id(), t_loss - SimDuration::Hours(1), options.config.texp);
  PrintReport("Conservative report (Tloss assumed 1 h earlier)", *wide);

  // And if nothing had been touched, the report is affirmatively clean —
  // the paper's key selling point over silent encryption.
  auto clean = dep.auditor().BuildReport(
      dep.device_id(), dep.queue().Now() + SimDuration::Hours(1),
      options.config.texp);
  PrintReport("Report for a window with no accesses", *clean);
  return 0;
}
