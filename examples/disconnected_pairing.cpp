// The paired-device architecture (§3.5, Figure 4): a phone over Bluetooth
// extends the audit services so a laptop keeps working — auditable — on a
// plane.
//
// Build & run:  cmake --build build && ./build/examples/disconnected_pairing

#include <cstdio>

#include "src/keypad/deployment.h"

using namespace keypad;

int main() {
  DeploymentOptions options;
  options.profile = CellularProfile();  // The phone's uplink: 3G.
  options.paired_phone = true;
  options.config.ibe_enabled = false;
  options.device_id = "travel-laptop";
  Deployment dep(options);
  KeypadFs& fs = dep.fs();

  // At the gate (online): work on a trip report. The phone forwards to the
  // services and hoards the keys it sees.
  fs.Mkdir("/trip").ok();
  fs.Create("/trip/report.odt").ok();
  fs.WriteAll("/trip/report.odt", BytesOf("day 1: arrived")).ok();
  std::printf("online: phone hoard holds %zu key(s)\n",
              dep.phone()->hoard_size());

  // Wheels up: the phone loses its uplink; Bluetooth stays.
  dep.phone()->SetUplinkConnected(false);
  std::printf("\n--- airplane mode ---\n");

  // Reads are served from the phone's hoard...
  dep.queue().AdvanceBy(fs.config().texp * 2 + SimDuration::Seconds(2));
  auto read = fs.ReadAll("/trip/report.odt");
  std::printf("read over Bluetooth from the hoard: %s\n",
              read.ok() ? "ok" : read.status().ToString().c_str());

  // ...and even new files work: the phone mints the remote key as a
  // trusted service extension and journals everything.
  Status created = fs.Create("/trip/expenses.xls");
  fs.WriteAll("/trip/expenses.xls", BytesOf("taxi: 40eur")).ok();
  std::printf("create while disconnected: %s\n", created.ToString().c_str());
  std::printf("phone journals: %zu key entries, %zu metadata entries\n",
              dep.phone()->key_journal_size(),
              dep.phone()->meta_journal_size());

  // Without the phone this create would have failed outright:
  std::printf(
      "(without a paired phone, Keypad refuses un-registrable creates)\n");

  // Landing: uplink returns, journals upload in bulk.
  dep.queue().AdvanceBy(SimDuration::Hours(2));
  dep.phone()->SetUplinkConnected(true);
  std::printf("\n--- landed: journals uploaded ---\n");
  std::printf("key service now has %zu log entries; journals empty: %s\n",
              dep.key_service().log().size(),
              dep.phone()->key_journal_size() == 0 ? "yes" : "no");

  // The audit trail covers the offline period, original timestamps intact.
  auto report = dep.auditor().BuildReport(
      dep.device_id(), SimTime::Epoch(), fs.config().texp);
  std::printf("\naudit view of the whole trip:\n%s", report->ToString().c_str());
  std::printf(
      "\nif the laptop alone had been stolen mid-flight, the phone (still\n"
      "with its owner) would have supplied this same journal: no audit gap.\n");
  return 0;
}
