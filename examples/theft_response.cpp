// The paper's Alice scenario (§2), end to end:
//
//   Alice's corporate laptop tracks /corporate. She works through the
//   morning, loses the laptop at dinner, and reports it two hours later.
//   Her IT department (1) disables the device at both audit services and
//   (2) produces the post-loss audit report. Meanwhile a thief with the
//   laptop — and the password from the sticky note — tries to read the
//   trade secrets, first from a disk image offline, then online.
//
// Build & run:  cmake --build build && ./build/examples/theft_response

#include <cstdio>

#include "src/keypad/deployment.h"
#include "src/util/strings.h"

using namespace keypad;

int main() {
  DeploymentOptions options;
  options.profile = WlanProfile();
  options.device_id = "alice-laptop";
  options.password = "alice's sticky-note password";
  options.config.ibe_enabled = true;
  // Partial coverage (§3.6): only the corporate folder is audited.
  options.config.coverage = [](const std::string& path) {
    return PathIsWithin(path, "/corporate");
  };
  Deployment dep(options);
  KeypadFs& fs = dep.fs();

  // --- Morning: Alice works. --------------------------------------------------
  fs.Mkdir("/corporate").ok();
  fs.Mkdir("/personal").ok();
  fs.Create("/corporate/q3_acquisition_plan.doc").ok();
  fs.WriteAll("/corporate/q3_acquisition_plan.doc",
              BytesOf("TOP SECRET: acquire Initech")).ok();
  fs.Create("/corporate/payroll.xls").ok();
  fs.WriteAll("/corporate/payroll.xls", BytesOf("salaries...")).ok();
  fs.Create("/personal/recipes.txt").ok();
  fs.WriteAll("/personal/recipes.txt", BytesOf("carbonara: ...")).ok();
  dep.queue().AdvanceBy(SimDuration::Hours(3));

  // --- 19:00: the laptop disappears at dinner. --------------------------------
  SimTime t_loss = dep.queue().Now();
  std::printf("laptop lost at t=%.0fs\n", t_loss.seconds_f());
  dep.queue().AdvanceBy(SimDuration::Hours(2));

  // --- 21:00: Alice notices and calls IT. --------------------------------------
  dep.ReportDeviceLost();
  std::printf("device disabled at both audit services\n");

  auto report =
      dep.auditor().BuildReport(dep.device_id(), t_loss,
                                dep.fs().config().texp);
  std::printf("\n--- IT's report for the 2-hour exposure window ---\n%s\n",
              report->ToString().c_str());

  // --- Later: a thief tries anyway. --------------------------------------------
  RawDeviceAttacker thief = dep.MakeAttacker();

  // Offline first: he images the disk and uses his own tools + password.
  auto paths = thief.ListAllPaths();
  std::printf("thief sees %zu paths (names are readable with the password)\n",
              paths->size());
  auto offline = thief.ReadFileOffline("/corporate/q3_acquisition_plan.doc");
  std::printf("offline read of the plan: %s\n",
              offline.ok() ? "SUCCEEDED (!!)" : offline.status().ToString().c_str());
  // The personal file is outside Keypad's protection domain — EncFS-only,
  // so the password is enough (exactly the §3.6 trade-off).
  auto personal = thief.ReadFileOffline("/personal/recipes.txt");
  std::printf("offline read of the recipes: %s\n",
              personal.ok() ? "succeeded (uncovered file)" : "failed");

  // Online: with the device's stolen credentials, against live services.
  auto creds = thief.StealCredentials();
  auto clients = dep.MakeAttackerClients(*creds);
  auto thief_fs = thief.MountOnline(clients->services, options.config);
  auto online = (*thief_fs)->ReadAll("/corporate/q3_acquisition_plan.doc");
  std::printf("online read of the plan: %s\n",
              online.ok() ? "SUCCEEDED (!!)" : online.status().ToString().c_str());

  auto final_report = dep.auditor().BuildReport(
      dep.device_id(), t_loss, dep.fs().config().texp);
  std::printf("\n--- final report (post-revocation attempts visible) ---\n%s",
              final_report->ToString().c_str());
  return 0;
}
