// Quickstart: the smallest complete Keypad deployment.
//
// Sets up the two audit services, formats a Keypad volume on a simulated
// laptop, stores and reads a file, and shows the audit trail the key
// service accumulated along the way — the paper's core loop in ~60 lines
// of application code.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/keypad/deployment.h"

using namespace keypad;

int main() {
  // One call wires the whole Figure-2 topology: client device, EncFS-based
  // Keypad volume, key service, metadata service, and a simulated network.
  DeploymentOptions options;
  options.profile = BroadbandProfile();   // 25 ms RTT to the services.
  options.config.texp = SimDuration::Seconds(100);  // Key cache lifetime.
  options.config.ibe_enabled = true;      // Async metadata registration.
  options.device_id = "quickstart-laptop";
  Deployment dep(options);

  KeypadFs& fs = dep.fs();

  // Use it like any file system. Under the hood: each file gets a random
  // data key, wrapped under a remote key that only the key service holds.
  if (!fs.Mkdir("/home").ok() ||
      !fs.Create("/home/diary.txt").ok() ||
      !fs.WriteAll("/home/diary.txt", BytesOf("Dear diary, ...")).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  auto contents = fs.ReadAll("/home/diary.txt");
  std::printf("read back: \"%s\"\n", StringOf(*contents).c_str());

  // Let the asynchronous registrations settle, then look at the audit log.
  dep.queue().RunUntilIdle();
  std::printf("\nkey-service audit log (%zu entries):\n",
              dep.key_service().log().size());
  for (const auto& entry : dep.key_service().log().entries()) {
    auto path = dep.metadata_service().ResolvePath(
        dep.device_id(), entry.audit_id, dep.queue().Now());
    std::printf("  t=%8.3fs  %-8s  %s\n", entry.timestamp.seconds_f(),
                std::string(AccessOpName(entry.op)).c_str(),
                path.ok() ? path->c_str() : "(no binding)");
  }

  // The forensic view: nothing is compromised while the device is safe.
  auto report = dep.auditor().BuildReport(
      dep.device_id(), dep.queue().Now(), options.config.texp);
  std::printf("\n%s", report->ToString().c_str());
  return 0;
}
