// The paper's Bob scenario (§2): a Keypad-protected USB stick.
//
//   At tax time Bob scans his documents onto a stick, protects it with a
//   password, and hands both to his accountant. Weeks later he can't find
//   the stick. The drive maker's web service shows him the audit log:
//   every access to the tax files, with timestamps — enough to decide
//   whether to put fraud alerts on his accounts.
//
// A USB stick is a passive device: every access comes from whatever host
// it is plugged into, modeled here as fresh mounts of the stick's storage.
//
// Build & run:  cmake --build build && ./build/examples/usb_audit

#include <cstdio>

#include "src/keypad/deployment.h"

using namespace keypad;

int main() {
  DeploymentOptions options;
  options.profile = BroadbandProfile();
  options.device_id = "bob-usb-stick";
  options.password = "the password Bob wrote on the stick";
  options.config.ibe_enabled = false;  // Simple host-side client.
  Deployment dep(options);
  KeypadFs& fs = dep.fs();

  // Bob loads his tax documents.
  fs.Mkdir("/taxes").ok();
  for (const char* doc : {"w2.pdf", "1099.pdf", "mortgage_1098.pdf",
                          "donations.xls"}) {
    std::string path = std::string("/taxes/") + doc;
    fs.Create(path).ok();
    fs.WriteAll(path, BytesOf("scanned tax document")).ok();
  }
  dep.queue().AdvanceBy(SimDuration::Minutes(30));
  SimTime handed_over = dep.queue().Now();
  std::printf("stick handed to the accountant at t=%.0fs\n\n",
              handed_over.seconds_f());

  // The accountant's machine mounts the stick twice over the next week.
  for (int session = 0; session < 2; ++session) {
    dep.queue().AdvanceBy(SimDuration::Days(2));
    RawDeviceAttacker host(dep.device().Snapshot(), options.password,
                           &dep.queue());
    auto creds = host.StealCredentials();
    auto clients = dep.MakeAttackerClients(*creds);
    auto mounted = host.MountOnline(clients->services, options.config);
    (*mounted)->ReadAll("/taxes/w2.pdf").status();
    (*mounted)->ReadAll("/taxes/1099.pdf").status();
    if (session == 1) {
      (*mounted)->ReadAll("/taxes/mortgage_1098.pdf").status();
    }
  }

  // Bob can't find the stick and checks the manufacturer's audit page —
  // which reads the services over their remote audit RPC surface, exactly
  // as a web service would.
  dep.queue().AdvanceBy(SimDuration::Days(3));
  RawDeviceAttacker bobs_browser(dep.device().Snapshot(), options.password,
                                 &dep.queue());
  auto bob_creds = bobs_browser.StealCredentials();
  auto bob_clients = dep.MakeAttackerClients(*bob_creds);
  RemoteAuditor web_service(bob_clients->key_rpc.get(),
                            bob_clients->meta_rpc.get(),
                            bob_creds->device_id, bob_creds->key_secret,
                            bob_creds->meta_secret);
  auto report = web_service.BuildReport(handed_over, dep.fs().config().texp);
  std::printf("--- the web audit page Bob sees ---\n%s\n",
              report->ToString().c_str());
  std::printf(
      "Bob sees %zu of his tax files were accessed after the hand-over,\n"
      "with timestamps; he can now decide about fraud alerts — and he can\n"
      "have the manufacturer disable the stick's keys remotely.\n",
      report->compromised.size());

  dep.ReportDeviceLost();
  std::printf("\nstick disabled. Any further access attempt:\n");
  RawDeviceAttacker finder(dep.device().Snapshot(), options.password,
                           &dep.queue());
  auto creds = finder.StealCredentials();
  auto clients = dep.MakeAttackerClients(*creds);
  auto mounted = finder.MountOnline(clients->services, options.config);
  auto read = (*mounted)->ReadAll("/taxes/w2.pdf");
  std::printf("  read /taxes/w2.pdf -> %s\n", read.status().ToString().c_str());
  return 0;
}
