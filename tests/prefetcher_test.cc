// Unit tests for the prefetch policies (§3.3 / §4).

#include <gtest/gtest.h>

#include "src/keypad/prefetcher.h"

namespace keypad {
namespace {

std::vector<AuditId> MakeIds(int n, uint64_t seed) {
  SecureRandom rng(seed);
  std::vector<AuditId> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(AuditId::Random(rng));
  }
  return out;
}

TEST(PrefetcherTest, NonePolicyNeverPrefetches) {
  Prefetcher prefetcher(PrefetchPolicy::None(), 1);
  auto ids = MakeIds(10, 1);
  for (int i = 0; i < 20; ++i) {
    auto out = prefetcher.OnMiss("/dir", ids[0], [&] { return ids; });
    EXPECT_TRUE(out.empty());
  }
  EXPECT_EQ(prefetcher.prefetch_batches(), 0u);
}

TEST(PrefetcherTest, ThirdMissTriggersFullDirectory) {
  Prefetcher prefetcher(PrefetchPolicy::FullDirOnNthMiss(3), 2);
  auto ids = MakeIds(8, 2);
  int siblings_listed = 0;
  auto list = [&] {
    ++siblings_listed;
    return ids;
  };
  EXPECT_TRUE(prefetcher.OnMiss("/dir", ids[0], list).empty());
  EXPECT_TRUE(prefetcher.OnMiss("/dir", ids[1], list).empty());
  // The lazy sibling enumeration must not have run yet.
  EXPECT_EQ(siblings_listed, 0);

  auto out = prefetcher.OnMiss("/dir", ids[2], list);
  EXPECT_EQ(out.size(), 7u);  // Everything except the missed id.
  EXPECT_EQ(siblings_listed, 1);
  for (const auto& id : out) {
    EXPECT_NE(id, ids[2]);
  }
  EXPECT_EQ(prefetcher.prefetch_batches(), 1u);
  EXPECT_EQ(prefetcher.keys_prefetched(), 7u);
}

TEST(PrefetcherTest, CountersArePerDirectory) {
  Prefetcher prefetcher(PrefetchPolicy::FullDirOnNthMiss(3), 3);
  auto a = MakeIds(4, 3);
  auto b = MakeIds(4, 4);
  // Interleave misses across two directories: neither reaches 3 until its
  // own third miss.
  EXPECT_TRUE(prefetcher.OnMiss("/a", a[0], [&] { return a; }).empty());
  EXPECT_TRUE(prefetcher.OnMiss("/b", b[0], [&] { return b; }).empty());
  EXPECT_TRUE(prefetcher.OnMiss("/a", a[1], [&] { return a; }).empty());
  EXPECT_TRUE(prefetcher.OnMiss("/b", b[1], [&] { return b; }).empty());
  EXPECT_FALSE(prefetcher.OnMiss("/a", a[2], [&] { return a; }).empty());
  EXPECT_FALSE(prefetcher.OnMiss("/b", b[2], [&] { return b; }).empty());
}

TEST(PrefetcherTest, CounterReArmsAfterTrigger) {
  Prefetcher prefetcher(PrefetchPolicy::FullDirOnNthMiss(2), 5);
  auto ids = MakeIds(5, 5);
  auto list = [&] { return ids; };
  EXPECT_TRUE(prefetcher.OnMiss("/d", ids[0], list).empty());
  EXPECT_FALSE(prefetcher.OnMiss("/d", ids[1], list).empty());
  // Counter restarts: two more misses to the next trigger.
  EXPECT_TRUE(prefetcher.OnMiss("/d", ids[2], list).empty());
  EXPECT_FALSE(prefetcher.OnMiss("/d", ids[3], list).empty());
}

TEST(PrefetcherTest, FirstMissPolicyTriggersImmediately) {
  Prefetcher prefetcher(PrefetchPolicy::FullDirOnNthMiss(1), 6);
  auto ids = MakeIds(6, 6);
  auto out = prefetcher.OnMiss("/d", ids[0], [&] { return ids; });
  EXPECT_EQ(out.size(), 5u);
}

TEST(PrefetcherTest, RandomPolicyBoundsBatchAndExcludesMissedId) {
  Prefetcher prefetcher(PrefetchPolicy::RandomFromDir(4), 7);
  auto ids = MakeIds(20, 7);
  for (int i = 0; i < 10; ++i) {
    auto out = prefetcher.OnMiss("/d", ids[0], [&] { return ids; });
    EXPECT_EQ(out.size(), 4u);
    for (const auto& id : out) {
      EXPECT_NE(id, ids[0]);
    }
  }
}

TEST(PrefetcherTest, RandomPolicyHandlesSmallDirectories) {
  Prefetcher prefetcher(PrefetchPolicy::RandomFromDir(10), 8);
  auto ids = MakeIds(3, 8);
  auto out = prefetcher.OnMiss("/d", ids[0], [&] { return ids; });
  EXPECT_EQ(out.size(), 2u);  // Only two siblings exist.
}

TEST(PrefetcherTest, ResetClearsCounters) {
  Prefetcher prefetcher(PrefetchPolicy::FullDirOnNthMiss(2), 9);
  auto ids = MakeIds(3, 9);
  auto list = [&] { return ids; };
  EXPECT_TRUE(prefetcher.OnMiss("/d", ids[0], list).empty());
  prefetcher.Reset();
  // Back to zero: one miss is again not enough.
  EXPECT_TRUE(prefetcher.OnMiss("/d", ids[1], list).empty());
}

TEST(PrefetcherTest, EmptyDirectoryYieldsNoPrefetch) {
  Prefetcher prefetcher(PrefetchPolicy::FullDirOnNthMiss(1), 10);
  SecureRandom rng(uint64_t{10});
  AuditId lone = AuditId::Random(rng);
  auto out = prefetcher.OnMiss("/d", lone,
                               [] { return std::vector<AuditId>{}; });
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(prefetcher.prefetch_batches(), 0u);
}

}  // namespace
}  // namespace keypad
