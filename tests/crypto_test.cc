// Tests for the from-scratch crypto primitives against published vectors:
// FIPS 180-4 (SHA-256), RFC 4231 (HMAC), RFC 5869 (HKDF), FIPS 197 /
// SP 800-38A (AES), RFC 8439 (ChaCha20).

#include <gtest/gtest.h>

#include "src/cryptocore/aes.h"
#include "src/cryptocore/chacha20.h"
#include "src/cryptocore/hmac.h"
#include "src/cryptocore/secure_random.h"
#include "src/cryptocore/sha256.h"
#include "src/util/bytes.h"

namespace keypad {
namespace {

std::string HexDigest(const Sha256::Digest& d) {
  return ToHex(d.data(), d.size());
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexDigest(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexDigest(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HexDigest(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAsStreaming) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(HexDigest(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  std::string msg = "The quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(HexDigest(h.Finish()), HexDigest(Sha256::Hash(msg)));
  }
}

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Bytes mac = HmacSha256(key, "Hi There");
  EXPECT_EQ(ToHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Bytes mac = HmacSha256(BytesOf("Jefe"), "what do ya want for nothing?");
  EXPECT_EQ(ToHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  Bytes mac = HmacSha256(
      key, "Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(ToHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HkdfTest, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = *FromHex("000102030405060708090a0b0c");
  // RFC 5869 expresses info as bytes f0..f9.
  Bytes info_bytes = *FromHex("f0f1f2f3f4f5f6f7f8f9");
  std::string info(info_bytes.begin(), info_bytes.end());
  Bytes okm = Hkdf(ikm, salt, info, 42);
  EXPECT_EQ(ToHex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(PasswordKdfTest, DeterministicAndSaltSensitive) {
  Bytes salt1 = {1, 2, 3};
  Bytes salt2 = {1, 2, 4};
  Bytes k1 = PasswordKdf("hunter2", salt1, 100, 32);
  Bytes k2 = PasswordKdf("hunter2", salt1, 100, 32);
  Bytes k3 = PasswordKdf("hunter2", salt2, 100, 32);
  Bytes k4 = PasswordKdf("hunter3", salt1, 100, 32);
  EXPECT_EQ(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_NE(k1, k4);
  EXPECT_EQ(k1.size(), 32u);
}

TEST(PasswordKdfTest, Pbkdf2Sha256KnownVector) {
  // PBKDF2-HMAC-SHA256("password", "salt", 1, 32) first block.
  Bytes out = PasswordKdf("password", BytesOf("salt"), 1, 32);
  EXPECT_EQ(ToHex(out),
            "120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b");
}

TEST(ConstantTimeEqualsTest, Basic) {
  EXPECT_TRUE(ConstantTimeEquals({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEquals({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEquals({1, 2}, {1, 2, 3}));
}

TEST(Aes256Test, Fips197Vector) {
  Bytes key = *FromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  auto aes = Aes256::Create(key);
  ASSERT_TRUE(aes.ok());
  Bytes pt = *FromHex("00112233445566778899aabbccddeeff");
  uint8_t ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(ct, 16), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes256Test, RejectsBadKeySize) {
  EXPECT_FALSE(Aes256::Create(Bytes(16, 0)).ok());
  EXPECT_FALSE(Aes256::Create(Bytes(33, 0)).ok());
}

TEST(Aes256Test, CtrSp80038aVector) {
  // NIST SP 800-38A F.5.5 (CTR-AES256.Encrypt), first two blocks.
  Bytes key = *FromHex(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  Bytes iv = *FromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  auto aes = Aes256::Create(key);
  ASSERT_TRUE(aes.ok());
  Bytes pt = *FromHex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  Bytes ct = aes->CtrXor(iv, 0, pt);
  EXPECT_EQ(ToHex(ct),
            "601ec313775789a5b7a7f504bbf3d228"
            "f443e3ca4d62b59aca84e990cacaf5c5");
}

TEST(Aes256Test, CtrRoundTripsAndIsOffsetConsistent) {
  Bytes key(32, 0x42);
  Bytes iv(16, 0x07);
  auto aes = Aes256::Create(key);
  ASSERT_TRUE(aes.ok());
  Bytes pt;
  for (int i = 0; i < 1000; ++i) {
    pt.push_back(static_cast<uint8_t>(i * 31));
  }
  Bytes ct = aes->CtrXor(iv, 0, pt);
  EXPECT_NE(ct, pt);
  EXPECT_EQ(aes->CtrXor(iv, 0, ct), pt);

  // Decrypting a middle slice with the matching offset must line up.
  Bytes slice(ct.begin() + 100, ct.begin() + 250);
  Bytes dec = aes->CtrXor(iv, 100, slice);
  EXPECT_EQ(dec, Bytes(pt.begin() + 100, pt.begin() + 250));
}

TEST(ChaCha20Test, Rfc8439BlockVector) {
  // RFC 8439 section 2.3.2.
  Bytes key = *FromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = *FromHex("000000090000004a00000000");
  uint8_t out[64];
  ChaCha20Block(key.data(), 1, nonce.data(), out);
  EXPECT_EQ(ToHex(out, 64),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(SecureRandomTest, DeterministicForSeed) {
  SecureRandom a(uint64_t{99}), b(uint64_t{99}), c(uint64_t{100});
  Bytes ba = a.NextBytes(64);
  Bytes bb = b.NextBytes(64);
  Bytes bc = c.NextBytes(64);
  EXPECT_EQ(ba, bb);
  EXPECT_NE(ba, bc);
}

TEST(SecureRandomTest, ForkIndependence) {
  SecureRandom parent(uint64_t{5});
  SecureRandom child1 = parent.Fork();
  SecureRandom child2 = parent.Fork();
  EXPECT_NE(child1.NextBytes(32), child2.NextBytes(32));
}

TEST(SecureRandomTest, OutputLooksUnbiased) {
  SecureRandom rng(uint64_t{123});
  Bytes data = rng.NextBytes(100000);
  size_t ones = 0;
  for (uint8_t b : data) {
    ones += static_cast<size_t>(__builtin_popcount(b));
  }
  double frac = static_cast<double>(ones) / (data.size() * 8);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

}  // namespace
}  // namespace keypad
