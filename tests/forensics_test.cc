// Tests for the forensic auditor: report structure, exposure windows,
// prefetch false-positive classification, tamper detection, and the
// paper's two motivating scenarios (Alice's corporate laptop, Bob's USB
// stick).

#include <gtest/gtest.h>

#include "src/keypad/deployment.h"
#include "src/util/strings.h"

namespace keypad {
namespace {

class ForensicsTest : public ::testing::Test {
 protected:
  static DeploymentOptions Opts() {
    DeploymentOptions options;
    options.profile = BroadbandProfile();
    options.config.ibe_enabled = false;
    options.config.prefetch = PrefetchPolicy::FullDirOnNthMiss(3);
    return options;
  }
  ForensicsTest() : dep_(Opts()) {}

  AuditId IdOf(const std::string& path) {
    return dep_.fs().ReadHeaderOf(path)->audit_id;
  }

  Deployment dep_;
};

TEST_F(ForensicsTest, ReportResolvesLatestTrustedPaths) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/home").ok());
  ASSERT_TRUE(fs.Create("/home/draft.txt").ok());
  ASSERT_TRUE(fs.WriteAll("/home/draft.txt", BytesOf("d")).ok());
  ASSERT_TRUE(fs.Rename("/home/draft.txt", "/home/final.txt").ok());
  dep_.queue().AdvanceBy(fs.config().texp * 2 + SimDuration::Seconds(2));
  SimTime t_loss = dep_.queue().Now();

  // Thief reads the file.
  auto attacker = dep_.MakeAttacker();
  auto creds = attacker.StealCredentials();
  auto clients = dep_.MakeAttackerClients(*creds);
  auto thief_fs = attacker.MountOnline(clients->services, Opts().config);
  ASSERT_TRUE((*thief_fs)->ReadAll("/home/final.txt").ok());

  auto report =
      dep_.auditor().BuildReport(dep_.device_id(), t_loss, fs.config().texp);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->compromised.size(), 1u);
  EXPECT_EQ(report->compromised[0].path_at_loss, "/home/final.txt");
  EXPECT_TRUE(report->compromised[0].accessed_after_loss);
  EXPECT_FALSE(report->compromised[0].prefetch_only);
  EXPECT_FALSE(report->ToString().empty());
}

TEST_F(ForensicsTest, PrefetchOnlyFilesAreFlagged) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/dir").ok());
  for (int i = 0; i < 6; ++i) {
    std::string path = "/dir/f" + std::to_string(i);
    ASSERT_TRUE(fs.Create(path).ok());
    ASSERT_TRUE(fs.WriteAll(path, BytesOf("x")).ok());
  }
  dep_.queue().AdvanceBy(fs.config().texp * 2 + SimDuration::Seconds(2));
  SimTime t_loss = dep_.queue().Now();

  // The thief scans: reads three files, triggering a directory prefetch of
  // the rest.
  auto attacker = dep_.MakeAttacker();
  auto creds = attacker.StealCredentials();
  auto clients = dep_.MakeAttackerClients(*creds);
  auto thief_fs = attacker.MountOnline(clients->services, Opts().config);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*thief_fs)->ReadAll("/dir/f" + std::to_string(i)).ok());
  }

  auto report =
      dep_.auditor().BuildReport(dep_.device_id(), t_loss, fs.config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->compromised.size(), 6u);
  EXPECT_EQ(report->demand_accessed_count, 3u);
  EXPECT_EQ(report->prefetch_only_count, 3u);
  for (const auto& entry : report->compromised) {
    bool was_read = entry.path_at_loss == "/dir/f0" ||
                    entry.path_at_loss == "/dir/f1" ||
                    entry.path_at_loss == "/dir/f2";
    EXPECT_EQ(entry.prefetch_only, !was_read) << entry.path_at_loss;
  }
}

TEST_F(ForensicsTest, ExposureWindowIncludesPreLossCachedKeys) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/a").ok());
  ASSERT_TRUE(fs.WriteAll("/a", BytesOf("1")).ok());
  dep_.queue().AdvanceBy(fs.config().texp * 2 + SimDuration::Seconds(2));

  // /a fetched again 50 s before loss — inside the window.
  ASSERT_TRUE(fs.ReadAll("/a").ok());
  dep_.queue().AdvanceBy(SimDuration::Seconds(50));
  SimTime t_loss = dep_.queue().Now();

  auto report =
      dep_.auditor().BuildReport(dep_.device_id(), t_loss, fs.config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Compromised(IdOf("/a")));
  // The access is pre-loss: flagged as window exposure, not post-loss use.
  for (const auto& e : report->compromised) {
    if (e.audit_id == IdOf("/a")) {
      EXPECT_FALSE(e.accessed_after_loss);
    }
  }

  // With a fresh report 200 s later (no new accesses), /a ages out.
  dep_.queue().AdvanceBy(SimDuration::Seconds(200));
  auto later = dep_.auditor().BuildReport(
      dep_.device_id(), dep_.queue().Now(), fs.config().texp);
  ASSERT_TRUE(later.ok());
  EXPECT_FALSE(later->Compromised(IdOf("/a")));
}

TEST_F(ForensicsTest, HibernationEvictionClearsExposureWindow) {
  // The user reads a file, then hibernates 10 s before the theft: the
  // eviction record proves the key left memory, so a cold theft exposes
  // nothing (§6: "such evictions should be recorded on the audit servers").
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  ASSERT_TRUE(fs.WriteAll("/f", BytesOf("x")).ok());
  dep_.queue().AdvanceBy(SimDuration::Seconds(30));
  fs.Hibernate();
  dep_.queue().RunUntilIdle();
  dep_.queue().AdvanceBy(SimDuration::Seconds(10));
  SimTime t_loss = dep_.queue().Now();

  auto report =
      dep_.auditor().BuildReport(dep_.device_id(), t_loss, fs.config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->Compromised(IdOf("/f")))
      << "evicted key wrongly reported as window exposure";
}

TEST_F(ForensicsTest, ForgedPostLossEvictionDoesNotHideExposure) {
  // A thief (who holds the device credentials) uploads a journaled
  // eviction with a forged pre-loss client timestamp. The service appended
  // it *after* Tloss, so the auditor must ignore it.
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  ASSERT_TRUE(fs.WriteAll("/f", BytesOf("x")).ok());
  dep_.queue().AdvanceBy(SimDuration::Seconds(50));
  SimTime t_loss = dep_.queue().Now();  // Key still cached: exposed window.
  dep_.queue().AdvanceBy(SimDuration::Minutes(5));

  KeyService::JournalEntry forged;
  forged.audit_id = IdOf("/f");
  forged.op = AccessOp::kEviction;
  forged.client_time = t_loss - SimDuration::Seconds(10);  // The lie.
  ASSERT_TRUE(
      dep_.key_service().UploadJournal(dep_.device_id(), {forged}).ok());

  auto report =
      dep_.auditor().BuildReport(dep_.device_id(), t_loss, fs.config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Compromised(IdOf("/f")))
      << "forged eviction hid a genuinely exposed key";
}

TEST_F(ForensicsTest, AccessAfterEvictionStillReported) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  ASSERT_TRUE(fs.WriteAll("/f", BytesOf("x")).ok());
  fs.Hibernate();
  dep_.queue().RunUntilIdle();
  // Re-read after hibernation: a fresh fetch follows the eviction.
  ASSERT_TRUE(fs.ReadAll("/f").ok());
  dep_.queue().AdvanceBy(SimDuration::Seconds(10));
  SimTime t_loss = dep_.queue().Now();

  auto report =
      dep_.auditor().BuildReport(dep_.device_id(), t_loss, fs.config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Compromised(IdOf("/f")));
}

TEST_F(ForensicsTest, TamperedKeyLogIsReported) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  const_cast<AuditLog&>(dep_.key_service().log()).CorruptEntryForTesting(0);
  auto report = dep_.auditor().BuildReport(dep_.device_id(),
                                           dep_.queue().Now(),
                                           fs.config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->key_log_verified);
}

// --- The paper's two motivating scenarios (§2). -------------------------------

TEST(ScenarioTest, AliceCorporateLaptop) {
  // Alice's IT department tracks /corporate only.
  DeploymentOptions options;
  options.profile = WlanProfile();
  options.config.ibe_enabled = false;
  options.config.coverage = [](const std::string& path) {
    return PathIsWithin(path, "/corporate");
  };
  options.device_id = "alice-laptop";
  Deployment dep(options);
  auto& fs = dep.fs();

  ASSERT_TRUE(fs.Mkdir("/corporate").ok());
  ASSERT_TRUE(fs.Mkdir("/personal").ok());
  ASSERT_TRUE(fs.Create("/corporate/merger_plan.doc").ok());
  ASSERT_TRUE(
      fs.WriteAll("/corporate/merger_plan.doc", BytesOf("top secret")).ok());
  ASSERT_TRUE(fs.Create("/personal/photo.jpg").ok());
  ASSERT_TRUE(fs.WriteAll("/personal/photo.jpg", BytesOf("pixels")).ok());
  dep.queue().AdvanceBy(SimDuration::Minutes(10));

  // Laptop disappears during a two-hour dinner.
  SimTime t_loss = dep.queue().Now();
  dep.queue().AdvanceBy(SimDuration::Hours(2));

  // Alice reports the loss; IT disables access and audits.
  dep.ReportDeviceLost();
  auto report = dep.auditor().BuildReport("alice-laptop", t_loss,
                                          dep.fs().config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->compromised.empty())
      << "no sensitive files were accessed in the window";

  // A later thief can't get in, and the attempt shows up.
  auto attacker = dep.MakeAttacker();
  auto creds = attacker.StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep.MakeAttackerClients(*creds);
  auto thief_fs = attacker.MountOnline(clients->services, options.config);
  ASSERT_TRUE(thief_fs.ok());
  EXPECT_FALSE((*thief_fs)->ReadAll("/corporate/merger_plan.doc").ok());

  auto report2 = dep.auditor().BuildReport("alice-laptop", t_loss,
                                           dep.fs().config().texp);
  ASSERT_TRUE(report2.ok());
  EXPECT_GE(report2->denied_attempts, 1u);
}

TEST(ScenarioTest, BobsUsbStickAtTheAccountant) {
  // Bob's USB stick: a passive storage device. Accesses happen from other
  // machines mounting it — modeled by fresh mounts against the snapshot.
  DeploymentOptions options;
  options.profile = BroadbandProfile();
  options.config.ibe_enabled = false;
  options.device_id = "bob-usb-stick";
  options.password = "bob gave this password away";
  Deployment dep(options);
  auto& fs = dep.fs();
  ASSERT_TRUE(fs.Mkdir("/taxes").ok());
  for (int i = 0; i < 3; ++i) {
    std::string path = "/taxes/w2_" + std::to_string(i) + ".pdf";
    ASSERT_TRUE(fs.Create(path).ok());
    ASSERT_TRUE(fs.WriteAll(path, BytesOf("wages")).ok());
  }
  dep.queue().AdvanceBy(SimDuration::Minutes(30));
  SimTime handed_over = dep.queue().Now();

  // The accountant (or whoever ended up with the stick) reads the taxes a
  // week later from their own machine.
  dep.queue().AdvanceBy(SimDuration::Days(7));
  auto attacker = dep.MakeAttacker();  // "Own machine + password".
  auto creds = attacker.StealCredentials();
  auto clients = dep.MakeAttackerClients(*creds);
  auto reader_fs = attacker.MountOnline(clients->services, options.config);
  ASSERT_TRUE(reader_fs.ok());
  ASSERT_TRUE((*reader_fs)->ReadAll("/taxes/w2_0.pdf").ok());
  ASSERT_TRUE((*reader_fs)->ReadAll("/taxes/w2_1.pdf").ok());

  // Bob checks the drive maker's web audit page.
  auto report = dep.auditor().BuildReport("bob-usb-stick", handed_over,
                                          dep.fs().config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->compromised.size(), 2u);
  for (const auto& entry : report->compromised) {
    EXPECT_TRUE(entry.accessed_after_loss);
    EXPECT_TRUE(PathIsWithin(entry.path_at_loss, "/taxes"));
  }
}

}  // namespace
}  // namespace keypad
