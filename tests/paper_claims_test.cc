// Executable paper claims: regression tests that pin the qualitative
// results the reproduction must preserve (a cheap, always-on subset of the
// full bench suite).

#include <gtest/gtest.h>

#include "src/keypad/deployment.h"
#include "src/workload/office.h"

namespace keypad {
namespace {

// Table 1 headline: "while at the office, the user should never feel our
// file system's presence" — Keypad on a LAN matches EncFS for every task,
// warm or cold.
TEST(PaperClaimsTest, KeypadOnLanMatchesEncFsForEveryOfficeTask) {
  OfficeWorkloads office = MakeOfficeWorkloads(/*seed=*/7);

  // EncFS baseline timings.
  std::vector<double> encfs_seconds;
  {
    EventQueue queue;
    BlockDevice device;
    auto fs = EncFs::Format(&device, &queue, 1, "pw", {});
    TraceRunner runner(fs->get(), &queue);
    ASSERT_EQ(runner.Run(office.setup).failures, 0u);
    for (const auto& task : office.tasks) {
      SimTime t0 = queue.Now();
      runner.Run(task.trace);
      encfs_seconds.push_back((queue.Now() - t0).seconds_f());
    }
  }

  // Keypad on a LAN, cold caches before every task (worst case). IBE is
  // off, as the paper deploys it: "it should be used only for networks
  // with RTTs over 25 ms and disabled otherwise" (§5.1.1).
  DeploymentOptions options;
  options.profile = LanProfile();
  options.config.ibe_enabled = false;
  Deployment dep(options);
  TraceRunner runner(&dep.fs(), &dep.queue());
  ASSERT_EQ(runner.Run(office.setup).failures, 0u);
  for (size_t i = 0; i < office.tasks.size(); ++i) {
    dep.queue().AdvanceBy(SimDuration::Seconds(202));
    dep.queue().RunUntilIdle();
    SimTime t0 = dep.queue().Now();
    runner.Run(office.tasks[i].trace);
    double keypad = (dep.queue().Now() - t0).seconds_f();
    EXPECT_LT(keypad - encfs_seconds[i], 0.15)
        << office.tasks[i].application << "/" << office.tasks[i].task
        << ": keypad " << keypad << "s vs encfs " << encfs_seconds[i] << "s";
  }
}

// Fig. 6 claim: "a file read with a cached key is only 0.01 ms slower than
// the base EncFS read" — warm-cache content ops are RTT-independent.
TEST(PaperClaimsTest, WarmReadsAreRttIndependent) {
  double lan_ms = 0, cellular_ms = 0;
  for (bool cellular : {false, true}) {
    DeploymentOptions options;
    options.profile = cellular ? CellularProfile() : LanProfile();
    options.config.ibe_enabled = false;
    Deployment dep(options);
    auto& fs = dep.fs();
    ASSERT_TRUE(fs.Create("/f").ok());
    ASSERT_TRUE(fs.WriteAll("/f", Bytes(4096, 1)).ok());
    SimTime t0 = dep.queue().Now();
    ASSERT_TRUE(fs.Read("/f", 0, 4096).ok());
    (cellular ? cellular_ms : lan_ms) =
        (dep.queue().Now() - t0).seconds_f() * 1000;
  }
  EXPECT_NEAR(lan_ms, cellular_ms, 0.01);
  EXPECT_LT(lan_ms, 2.0);
}

// Fig. 8a claim: IBE wins above its CPU-cost crossover and loses below it.
TEST(PaperClaimsTest, IbeCrossoverExists) {
  auto measure = [](double rtt_ms, bool ibe) {
    DeploymentOptions options;
    options.profile = CustomRttProfile(SimDuration::FromMillisF(rtt_ms));
    options.config.ibe_enabled = ibe;
    Deployment dep(options);
    auto& fs = dep.fs();
    SimTime t0 = dep.queue().Now();
    // A create/rename-heavy burst (the op mix IBE targets).
    for (int i = 0; i < 20; ++i) {
      std::string path = "/f" + std::to_string(i);
      EXPECT_TRUE(fs.Create(path).ok());
      EXPECT_TRUE(fs.Rename(path, path + "r").ok());
    }
    double elapsed = (dep.queue().Now() - t0).seconds_f();
    dep.queue().RunUntilIdle();
    return elapsed;
  };
  // On a LAN, IBE's 25 ms CPU cost loses to a 0.1 ms round trip...
  EXPECT_GT(measure(0.1, true), measure(0.1, false));
  // ...over 3G, the 300 ms round trips lose to the constant CPU cost.
  EXPECT_LT(measure(300, true), measure(300, false));
}

// §5.3 / §2 claim: zero false negatives is unconditional; a report built
// with the *wrong* (too-small) Texp would break it, the right one never.
TEST(PaperClaimsTest, ReportWithConfiguredTexpIsConservative) {
  DeploymentOptions options;
  options.profile = WlanProfile();
  options.config.texp = SimDuration::Seconds(100);
  options.config.ibe_enabled = false;
  Deployment dep(options);
  auto& fs = dep.fs();
  ASSERT_TRUE(fs.Create("/a").ok());
  ASSERT_TRUE(fs.WriteAll("/a", BytesOf("x")).ok());

  // Theft 50 s after the last access: the key is still cached and usable
  // by a warm-device attacker without any new service contact.
  dep.queue().AdvanceBy(SimDuration::Seconds(50));
  SimTime t_loss = dep.queue().Now();

  auto report =
      dep.auditor().BuildReport(dep.device_id(), t_loss, options.config.texp);
  ASSERT_TRUE(report.ok());
  // The configured-Texp window flags the file even with zero post-loss
  // accesses — the cached key must be presumed compromised.
  EXPECT_TRUE(report->Compromised(fs.ReadHeaderOf("/a")->audit_id));
}

}  // namespace
}  // namespace keypad
