// Tests for the key service and metadata service: direct API, RPC protocol
// with device authentication, hash-chain tamper evidence, revocation, and
// pathname reconstruction.

#include <gtest/gtest.h>

#include "src/keyservice/audit_log.h"
#include "src/keyservice/key_service.h"
#include "src/keyservice/key_service_client.h"
#include "src/metaservice/metadata_service.h"
#include "src/metaservice/metadata_service_client.h"
#include "src/net/link.h"
#include "src/net/profile.h"

namespace keypad {
namespace {

class KeyServiceTest : public ::testing::Test {
 protected:
  KeyServiceTest() : service_(&queue_, /*rng_seed=*/1), rng_(uint64_t{2}) {
    secret_ = service_.RegisterDevice("laptop");
  }

  AuditId NewId() { return AuditId::Random(rng_); }

  EventQueue queue_;
  KeyService service_;
  SecureRandom rng_;
  Bytes secret_;
};

TEST_F(KeyServiceTest, CreateThenGetReturnsSameKey) {
  AuditId id = NewId();
  auto created = service_.CreateKey("laptop", id);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created->size(), KeyService::kRemoteKeyLen);
  auto fetched = service_.GetKey("laptop", id);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, *created);
}

TEST_F(KeyServiceTest, CreateDuplicateIdFails) {
  AuditId id = NewId();
  ASSERT_TRUE(service_.CreateKey("laptop", id).ok());
  auto dup = service_.CreateKey("laptop", id);
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(KeyServiceTest, EveryOperationIsLoggedBeforeReturning) {
  AuditId id = NewId();
  service_.CreateKey("laptop", id);
  service_.GetKey("laptop", id);
  service_.GetKey("laptop", id, AccessOp::kRefresh);
  service_.NoteEviction("laptop", id);
  ASSERT_EQ(service_.log().size(), 4u);
  EXPECT_EQ(service_.log().entries()[0].op, AccessOp::kCreate);
  EXPECT_EQ(service_.log().entries()[1].op, AccessOp::kDemandFetch);
  EXPECT_EQ(service_.log().entries()[2].op, AccessOp::kRefresh);
  EXPECT_EQ(service_.log().entries()[3].op, AccessOp::kEviction);
  EXPECT_TRUE(service_.log().Verify().ok());
}

TEST_F(KeyServiceTest, UnregisteredDeviceRejected) {
  AuditId id = NewId();
  auto result = service_.CreateKey("stranger", id);
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(KeyServiceTest, DisableDeviceBlocksAndLogsAttempts) {
  AuditId id = NewId();
  service_.CreateKey("laptop", id);
  ASSERT_TRUE(service_.DisableDevice("laptop").ok());
  EXPECT_TRUE(service_.IsDeviceDisabled("laptop"));

  size_t log_before = service_.log().size();
  auto result = service_.GetKey("laptop", id);
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
  // The denied attempt itself appears in the audit trail.
  ASSERT_EQ(service_.log().size(), log_before + 1);
  EXPECT_EQ(service_.log().entries().back().op, AccessOp::kDenied);

  ASSERT_TRUE(service_.EnableDevice("laptop").ok());
  EXPECT_TRUE(service_.GetKey("laptop", id).ok());
}

TEST_F(KeyServiceTest, DisableSingleKey) {
  AuditId id1 = NewId(), id2 = NewId();
  service_.CreateKey("laptop", id1);
  service_.CreateKey("laptop", id2);
  ASSERT_TRUE(service_.DisableKey("laptop", id1).ok());
  EXPECT_FALSE(service_.GetKey("laptop", id1).ok());
  EXPECT_TRUE(service_.GetKey("laptop", id2).ok());
}

TEST_F(KeyServiceTest, DestroyKeyIsPermanent) {
  AuditId id = NewId();
  service_.CreateKey("laptop", id);
  ASSERT_TRUE(service_.DestroyKey("laptop", id).ok());
  EXPECT_EQ(service_.GetKey("laptop", id).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service_.key_count(), 0u);
}

TEST_F(KeyServiceTest, BatchGetLogsEachKeySkipsUnknown) {
  std::vector<AuditId> ids = {NewId(), NewId(), NewId()};
  service_.CreateKey("laptop", ids[0]);
  service_.CreateKey("laptop", ids[2]);
  size_t log_before = service_.log().size();
  auto result = service_.GetKeys("laptop", ids);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);  // ids[1] unknown -> skipped.
  EXPECT_EQ(service_.log().size(), log_before + 2);
  EXPECT_EQ(service_.log().entries().back().op, AccessOp::kPrefetch);
}

TEST_F(KeyServiceTest, LogSinceFiltersByTimestamp) {
  AuditId id = NewId();
  service_.CreateKey("laptop", id);
  queue_.AdvanceBy(SimDuration::Seconds(100));
  SimTime cutoff = queue_.Now();
  service_.GetKey("laptop", id);
  auto entries = service_.LogSince(cutoff);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].op, AccessOp::kDemandFetch);
}

TEST_F(KeyServiceTest, FetchGroupLogsDemandAndPrefetchDistinctly) {
  AuditId demand = NewId(), sibling1 = NewId(), sibling2 = NewId();
  service_.CreateKey("laptop", demand);
  service_.CreateKey("laptop", sibling1);
  service_.CreateKey("laptop", sibling2);
  size_t before = service_.log().size();

  auto group = service_.FetchGroup("laptop", demand, {sibling1, sibling2});
  ASSERT_TRUE(group.ok());
  EXPECT_FALSE(group->demand_key.empty());
  EXPECT_EQ(group->prefetched.size(), 2u);
  ASSERT_EQ(service_.log().size(), before + 3);
  EXPECT_EQ(service_.log().entries()[before].op, AccessOp::kDemandFetch);
  EXPECT_EQ(service_.log().entries()[before + 1].op, AccessOp::kPrefetch);
  EXPECT_EQ(service_.log().entries()[before + 2].op, AccessOp::kPrefetch);
}

TEST_F(KeyServiceTest, FetchGroupDeduplicatesDemandFromPrefetchList) {
  AuditId demand = NewId();
  service_.CreateKey("laptop", demand);
  auto group = service_.FetchGroup("laptop", demand, {demand});
  ASSERT_TRUE(group.ok());
  EXPECT_TRUE(group->prefetched.empty());
}

TEST_F(KeyServiceTest, FetchGroupFailsWhenDemandKeyMissing) {
  auto group = service_.FetchGroup("laptop", NewId(), {});
  EXPECT_EQ(group.status().code(), StatusCode::kNotFound);
}

TEST_F(KeyServiceTest, JournalUploadStoresKeysAndClientTimes) {
  queue_.AdvanceBy(SimDuration::Hours(1));
  std::vector<KeyService::JournalEntry> entries;
  AuditId created = NewId();
  KeyService::JournalEntry create;
  create.audit_id = created;
  create.op = AccessOp::kCreate;
  create.client_time = SimTime::Epoch() + SimDuration::Minutes(10);
  create.key = Bytes(32, 0x11);
  entries.push_back(create);
  KeyService::JournalEntry fetch;
  fetch.audit_id = created;
  fetch.op = AccessOp::kDemandFetch;
  fetch.client_time = SimTime::Epoch() + SimDuration::Minutes(20);
  entries.push_back(fetch);

  ASSERT_TRUE(service_.UploadJournal("laptop", entries).ok());
  // The phone-minted key is now served.
  auto key = service_.GetKey("laptop", created);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, Bytes(32, 0x11));
  // The log carries the original client timestamps.
  const auto& log_entries = service_.log().entries();
  ASSERT_GE(log_entries.size(), 3u);
  EXPECT_EQ(log_entries[0].client_time.nanos(),
            (SimTime::Epoch() + SimDuration::Minutes(10)).nanos());
  EXPECT_LT(log_entries[0].client_time, log_entries[0].timestamp);
  EXPECT_TRUE(service_.log().Verify().ok());
}

TEST_F(KeyServiceTest, JournalUploadDoesNotOverwriteExistingKeys) {
  AuditId id = NewId();
  auto original = service_.CreateKey("laptop", id);
  ASSERT_TRUE(original.ok());
  KeyService::JournalEntry create;
  create.audit_id = id;
  create.op = AccessOp::kCreate;
  create.client_time = queue_.Now();
  create.key = Bytes(32, 0xEE);  // A conflicting (late) journaled create.
  ASSERT_TRUE(service_.UploadJournal("laptop", {create}).ok());
  EXPECT_EQ(*service_.GetKey("laptop", id), *original);
}

TEST_F(KeyServiceTest, JournalUploadRejectedForDisabledDevice) {
  ASSERT_TRUE(service_.DisableDevice("laptop").ok());
  KeyService::JournalEntry entry;
  entry.audit_id = NewId();
  entry.op = AccessOp::kDemandFetch;
  entry.client_time = queue_.Now();
  EXPECT_EQ(service_.UploadJournal("laptop", {entry}).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(KeyServiceTest, SnapshotRestoreRoundTrip) {
  AuditId id1 = NewId(), id2 = NewId();
  auto k1 = service_.CreateKey("laptop", id1);
  auto k2 = service_.CreateKey("laptop", id2);
  service_.GetKey("laptop", id1).status();
  ASSERT_TRUE(service_.DisableKey("laptop", id2).ok());
  Bytes snapshot = service_.Snapshot();

  // A second service instance (the backup replica) restores the state.
  EventQueue queue2;
  KeyService replica(&queue2, /*rng_seed=*/99);
  ASSERT_TRUE(replica.Restore(snapshot).ok());
  EXPECT_TRUE(replica.log().Verify().ok());
  EXPECT_EQ(replica.log().size(), service_.log().size());
  auto restored = replica.GetKey("laptop", id1);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, *k1);
  EXPECT_FALSE(replica.GetKey("laptop", id2).ok());  // Still disabled.
  // Device auth carries over.
  EXPECT_EQ(*replica.DeviceSecret("laptop"), secret_);
}

TEST_F(KeyServiceTest, TamperedSnapshotRejected) {
  AuditId id = NewId();
  service_.CreateKey("laptop", id);
  service_.GetKey("laptop", id).status();
  Bytes snapshot = service_.Snapshot();

  // Flip a byte inside the serialized log region and try to restore.
  bool rejected_some = false;
  for (size_t pos = snapshot.size() / 2; pos < snapshot.size(); pos += 7) {
    Bytes bad = snapshot;
    bad[pos] ^= 1;
    EventQueue queue2;
    KeyService replica(&queue2, 1);
    Status status = replica.Restore(bad);
    if (!status.ok()) {
      rejected_some = true;
    } else {
      // If it restored, the chain must still verify (the flipped byte was
      // in a non-log field like a stored key).
      EXPECT_TRUE(replica.log().Verify().ok());
    }
  }
  EXPECT_TRUE(rejected_some);
}

TEST(AuditLogTest, TamperingBreaksChain) {
  EventQueue queue;
  AuditLog log;
  SecureRandom rng(uint64_t{3});
  for (int i = 0; i < 5; ++i) {
    log.Append(queue.Now(), "dev", AuditId::Random(rng),
               AccessOp::kDemandFetch);
  }
  ASSERT_TRUE(log.Verify().ok());
  log.CorruptEntryForTesting(2);
  auto status = log.Verify();
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST(AuditLogTest, EntryWireRoundTrip) {
  EventQueue queue;
  AuditLog log;
  SecureRandom rng(uint64_t{4});
  log.Append(queue.Now(), "dev", AuditId::Random(rng), AccessOp::kPrefetch);
  const auto& entry = log.entries()[0];
  auto back = AuditLogEntry::FromWire(entry.ToWire());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->seq, entry.seq);
  EXPECT_EQ(back->audit_id, entry.audit_id);
  EXPECT_EQ(back->op, entry.op);
  EXPECT_EQ(back->entry_hash, entry.entry_hash);
}

// --- Key service over RPC with auth. --------------------------------------

class KeyServiceRpcTest : public ::testing::Test {
 protected:
  KeyServiceRpcTest()
      : link_(&queue_, BroadbandProfile()),
        rpc_server_(&queue_, SimDuration::Micros(150)),
        service_(&queue_, /*rng_seed=*/5),
        rpc_client_(&queue_, &link_, &rpc_server_),
        rng_(uint64_t{6}) {
    service_.BindRpc(&rpc_server_);
    Bytes secret = service_.RegisterDevice("laptop");
    client_ = std::make_unique<KeyServiceClient>(&rpc_client_, "laptop",
                                                 secret);
  }

  EventQueue queue_;
  NetworkLink link_;
  RpcServer rpc_server_;
  KeyService service_;
  RpcClient rpc_client_;
  SecureRandom rng_;
  std::unique_ptr<KeyServiceClient> client_;
};

TEST_F(KeyServiceRpcTest, EndToEndCreateGetBatchEvict) {
  AuditId id1 = AuditId::Random(rng_);
  AuditId id2 = AuditId::Random(rng_);
  auto k1 = client_->CreateKey(id1);
  ASSERT_TRUE(k1.ok());
  auto k2 = client_->CreateKey(id2);
  ASSERT_TRUE(k2.ok());

  auto got = client_->GetKey(id1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *k1);

  auto batch = client_->GetKeys({id1, id2});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 2u);

  client_->NoteEvictionAsync(id1);
  queue_.RunUntilIdle();
  EXPECT_EQ(service_.log().entries().back().op, AccessOp::kEviction);
  EXPECT_TRUE(service_.log().Verify().ok());
}

TEST_F(KeyServiceRpcTest, BadAuthTagRejected) {
  KeyServiceClient bad_client(&rpc_client_, "laptop", Bytes(32, 0x42));
  auto result = bad_client.CreateKey(AuditId::Random(rng_));
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
  // The forged call never reached the key map or produced a key.
  EXPECT_EQ(service_.key_count(), 0u);
}

TEST_F(KeyServiceRpcTest, UnknownDeviceRejected) {
  KeyServiceClient stranger(&rpc_client_, "stranger", Bytes(32, 1));
  auto result = stranger.GetKey(AuditId::Random(rng_));
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(KeyServiceRpcTest, AsyncCreateCompletes) {
  AuditId id = AuditId::Random(rng_);
  bool done = false;
  client_->CreateKeyAsync(id, [&](Result<Bytes> r) {
    done = true;
    EXPECT_TRUE(r.ok());
  });
  queue_.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_TRUE(service_.GetKey("laptop", id).ok());
}

// --- Metadata service. -----------------------------------------------------

class MetadataServiceTest : public ::testing::Test {
 protected:
  MetadataServiceTest()
      : service_(&queue_, /*rng_seed=*/7, TestPairingParams()),
        rng_(uint64_t{8}) {
    service_.RegisterDevice("laptop");
    root_ = DirId::Random(rng_);
    EXPECT_TRUE(service_.RegisterRoot("laptop", root_).ok());
  }

  EventQueue queue_;
  MetadataService service_;
  SecureRandom rng_;
  DirId root_;
};

TEST_F(MetadataServiceTest, FileBindingAndPathResolution) {
  AuditId id = AuditId::Random(rng_);
  auto key = service_.RegisterFileBinding("laptop", id, root_, "taxes.pdf",
                                          /*is_rename=*/false);
  ASSERT_TRUE(key.ok());
  auto path = service_.ResolvePath("laptop", id, queue_.Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/taxes.pdf");
}

TEST_F(MetadataServiceTest, NestedDirectoriesResolve) {
  DirId home = DirId::Random(rng_);
  DirId docs = DirId::Random(rng_);
  ASSERT_TRUE(service_.RegisterMkdir("laptop", home, root_, "home").ok());
  ASSERT_TRUE(service_.RegisterMkdir("laptop", docs, home, "docs").ok());
  AuditId id = AuditId::Random(rng_);
  ASSERT_TRUE(service_
                  .RegisterFileBinding("laptop", id, docs, "cv.tex",
                                       /*is_rename=*/false)
                  .ok());
  auto path = service_.ResolvePath("laptop", id, queue_.Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/home/docs/cv.tex");
}

TEST_F(MetadataServiceTest, RenameUpdatesLatestPathButKeepsHistory) {
  AuditId id = AuditId::Random(rng_);
  service_.RegisterFileBinding("laptop", id, root_, "irs_form.pdf", false);
  queue_.AdvanceBy(SimDuration::Seconds(10));
  SimTime before_rename = queue_.Now();
  queue_.AdvanceBy(SimDuration::Seconds(10));
  service_.RegisterFileBinding("laptop", id, root_, "prepared_taxes.pdf",
                               true);

  auto now_path = service_.ResolvePath("laptop", id, queue_.Now());
  ASSERT_TRUE(now_path.ok());
  EXPECT_EQ(*now_path, "/prepared_taxes.pdf");

  // As-of queries see the old binding: history is never rewritten.
  auto old_path = service_.ResolvePath("laptop", id, before_rename);
  ASSERT_TRUE(old_path.ok());
  EXPECT_EQ(*old_path, "/irs_form.pdf");

  EXPECT_EQ(service_.HistoryOf("laptop", id).size(), 2u);
}

TEST_F(MetadataServiceTest, DirRenameReflectsInPaths) {
  DirId dir = DirId::Random(rng_);
  service_.RegisterMkdir("laptop", dir, root_, "tmp");
  AuditId id = AuditId::Random(rng_);
  service_.RegisterFileBinding("laptop", id, dir, "f.txt", false);
  queue_.AdvanceBy(SimDuration::Seconds(1));
  service_.RegisterDirRename("laptop", dir, root_, "archive");
  auto path = service_.ResolvePath("laptop", id, queue_.Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/archive/f.txt");
}

TEST_F(MetadataServiceTest, BindingReleasesWorkingIbeKey) {
  AuditId id = AuditId::Random(rng_);
  DirId dir = root_;
  std::string name = "locked.doc";
  std::string identity = IbeIdentityFor(dir, name, id);

  // Client locks a payload under the identity before registering.
  SecureRandom client_rng(uint64_t{9});
  Bytes payload = BytesOf("wrapped data key");
  IbeCiphertext ct =
      IbeEncrypt(service_.ibe_params(), identity, payload, client_rng);

  auto key_bytes =
      service_.RegisterFileBinding("laptop", id, dir, name, false);
  ASSERT_TRUE(key_bytes.ok());
  auto key = IbePrivateKey::Deserialize(identity, *key_bytes,
                                        *service_.ibe_params().group);
  ASSERT_TRUE(key.ok());
  auto opened = IbeDecrypt(service_.ibe_params(), *key, ct);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, payload);
}

TEST_F(MetadataServiceTest, LyingAboutThePathYieldsUselessKey) {
  AuditId id = AuditId::Random(rng_);
  std::string true_identity = IbeIdentityFor(root_, "secret_plans.doc", id);
  SecureRandom client_rng(uint64_t{10});
  IbeCiphertext ct = IbeEncrypt(service_.ibe_params(), true_identity,
                                BytesOf("data key"), client_rng);

  // Thief registers a bogus name to avoid revealing the real one.
  auto bogus_key_bytes =
      service_.RegisterFileBinding("laptop", id, root_, "download.tmp", false);
  ASSERT_TRUE(bogus_key_bytes.ok());
  auto bogus_key = IbePrivateKey::Deserialize(
      IbeIdentityFor(root_, "download.tmp", id), *bogus_key_bytes,
      *service_.ibe_params().group);
  ASSERT_TRUE(bogus_key.ok());
  EXPECT_FALSE(IbeDecrypt(service_.ibe_params(), *bogus_key, ct).ok());
  // ...and the lie is on the record.
  EXPECT_EQ(service_.log().records().back().name, "download.tmp");
}

TEST_F(MetadataServiceTest, LogTamperDetected) {
  AuditId id = AuditId::Random(rng_);
  service_.RegisterFileBinding("laptop", id, root_, "a", false);
  service_.RegisterFileBinding("laptop", id, root_, "b", true);
  // Can't use const log for corruption; verify through a copy-free route:
  MetadataLog& log = const_cast<MetadataLog&>(service_.log());
  ASSERT_TRUE(log.Verify().ok());
  log.CorruptRecordForTesting(1);
  EXPECT_EQ(log.Verify().code(), StatusCode::kDataLoss);
}

TEST_F(MetadataServiceTest, UnknownAuditIdHasNoPath) {
  auto path =
      service_.ResolvePath("laptop", AuditId::Random(rng_), queue_.Now());
  EXPECT_EQ(path.status().code(), StatusCode::kNotFound);
}

// --- Metadata service over RPC. --------------------------------------------

TEST(MetadataServiceRpcTest, EndToEndBindOverNetwork) {
  EventQueue queue;
  NetworkLink link(&queue, CellularProfile());
  RpcServer rpc_server(&queue, SimDuration::Micros(150));
  MetadataService service(&queue, /*rng_seed=*/11, TestPairingParams());
  service.BindRpc(&rpc_server);
  RpcClient rpc(&queue, &link, &rpc_server);

  Bytes secret = service.RegisterDevice("laptop");
  MetadataServiceClient client(&rpc, "laptop", secret);

  SecureRandom rng(uint64_t{12});
  DirId root = DirId::Random(rng);
  ASSERT_TRUE(client.RegisterRoot(root).ok());

  AuditId id = AuditId::Random(rng);
  auto key = client.BindFile(id, root, "report.odt", false);
  ASSERT_TRUE(key.ok());
  EXPECT_FALSE(key->empty());

  bool done = false;
  client.BindFileAsync(id, root, "report-v2.odt", true,
                       [&](Result<Bytes> r) {
                         done = true;
                         EXPECT_TRUE(r.ok());
                       });
  queue.RunUntilIdle();
  EXPECT_TRUE(done);

  auto path = service.ResolvePath("laptop", id, queue.Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/report-v2.odt");
}

}  // namespace
}  // namespace keypad
