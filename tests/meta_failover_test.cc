// Replicated metadata tier (DESIGN.md §10): the second service hosted on
// the generic replication substrate. Lease-based failover of the PKG,
// client redirect-following, at-most-once binding registration across a
// leader change, and determinism of the failover timeline. The invariant
// under test throughout: a client-acknowledged namespace record may end up
// duplicated, but is never lost — and the IBE unlock key a promoted backup
// mints is byte-identical to the old leader's (shared-HSM master secret).
//
// NOTE: replicated deployments keep perpetual lease-renewal timers on the
// event queue, so these tests pump with AdvanceBy (never RunUntilIdle).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/keypad/deployment.h"

namespace keypad {
namespace {

DeploymentOptions ReplicatedMetaOpts(int replicas) {
  DeploymentOptions options;
  options.profile = LanProfile();
  options.config.ibe_enabled = false;
  options.config.prefetch = PrefetchPolicy::None();
  options.meta_replicas = replicas;
  // Short attempt ladders so a call into a dead replica fails over well
  // inside the stub's failover budget.
  options.rpc.timeout = SimDuration::Seconds(1);
  options.rpc.retry.max_attempts = 2;
  return options;
}

// Counts kCreateFile binding records for one audit id.
int CreateBindingsFor(const MetadataLog& log, const AuditId& id) {
  int count = 0;
  for (const auto& record : log.records()) {
    if (record.op == MetadataOp::kCreateFile && record.audit_id == id) {
      ++count;
    }
  }
  return count;
}

TEST(MetaFailoverTest, LeaderCrashPromotesBackupAndBindingsSurvive) {
  Deployment dep(ReplicatedMetaOpts(3));
  auto& fs = dep.fs();
  MetaReplicaSet* set = dep.meta_replica_set();
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->size(), 3u);
  EXPECT_EQ(set->current_leader(), 0u);

  // Normal operation: every acked create's binding is synchronously on all
  // replicas (the response, and the unlock key inside it, only releases
  // after the log suffix ships).
  std::vector<AuditId> pre_ids;
  for (int i = 0; i < 6; ++i) {
    std::string path = "/pre" + std::to_string(i);
    ASSERT_TRUE(fs.Create(path).ok());
    ASSERT_TRUE(fs.WriteAll(path, BytesOf("x")).ok());
    pre_ids.push_back(fs.ReadHeaderOf(path)->audit_id);
  }
  size_t chain_size = dep.meta_replica(0).log().size();
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(dep.meta_replica(r).log().Verify().ok()) << "replica " << r;
    EXPECT_EQ(dep.meta_replica(r).log().size(), chain_size)
        << "replica " << r;
  }

  // Kill the leader. The lowest-index live backup promotes after lease
  // expiry plus its seniority slot.
  dep.CrashMetadataService();
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  EXPECT_EQ(set->current_leader(), 1u);
  EXPECT_TRUE(set->is_leader(1));
  EXPECT_GE(set->stats().promotions, 1u);

  // The client's next create fails over and lands on the new leader.
  ASSERT_TRUE(fs.Create("/post0").ok());
  MetadataServiceClient& stub = dep.meta_client();
  EXPECT_GE(stub.failovers() + stub.redirects(), 1u);
  EXPECT_EQ(stub.leader_hint(), set->current_leader());

  // Zero lost entries: every pre-crash binding is on the new leader's
  // verified chain and still resolves to its full pathname.
  const MetadataService& leader = dep.meta_replica(1);
  EXPECT_TRUE(leader.log().Verify().ok());
  for (size_t i = 0; i < pre_ids.size(); ++i) {
    EXPECT_EQ(CreateBindingsFor(leader.log(), pre_ids[i]), 1)
        << pre_ids[i].ToHex();
    auto path = leader.ResolvePath(dep.device_id(), pre_ids[i],
                                   dep.queue().Now());
    ASSERT_TRUE(path.ok()) << pre_ids[i].ToHex();
    EXPECT_EQ(*path, "/pre" + std::to_string(i));
  }

  // The ex-primary restarts and rejoins as a backup.
  dep.RestartMetadataService();
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  EXPECT_FALSE(set->is_leader(0));
  EXPECT_EQ(set->current_leader(), 1u);
  EXPECT_GE(set->stats().rejoins, 1u);

  // New work replicates to it again; all chains reconverge byte-for-byte.
  ASSERT_TRUE(fs.Create("/post1").ok());
  dep.queue().AdvanceBy(SimDuration::Seconds(1));
  const MetadataLog& authority = dep.meta_replica(set->current_leader()).log();
  for (size_t r = 0; r < 3; ++r) {
    const MetadataLog& log = dep.meta_replica(r).log();
    EXPECT_TRUE(log.Verify().ok()) << "replica " << r;
    ASSERT_EQ(log.size(), authority.size()) << "replica " << r;
    EXPECT_EQ(log.records().back().entry_hash,
              authority.records().back().entry_hash)
        << "replica " << r;
  }
}

TEST(MetaFailoverTest, RetriedBindAcrossFailoverDoesNotDoubleAppend) {
  // At-most-once across failover (reply caches are per-server, so a retry
  // that lands on a *different* replica is not deduplicated by the RPC
  // layer): re-registering the binding the old leader already logged and
  // shipped must not append a second record, and the promoted PKG must
  // mint the byte-identical unlock key (shared HSM master secret).
  Deployment dep(ReplicatedMetaOpts(3));
  MetaReplicaSet* set = dep.meta_replica_set();
  ASSERT_NE(set, nullptr);

  SecureRandom rng(23);
  AuditId audit_id = AuditId::Random(rng);
  DirId dir_id = DirId::Random(rng);
  auto first = dep.meta_client().BindFile(audit_id, dir_id, "dup.txt",
                                          /*is_rename=*/false);
  ASSERT_TRUE(first.ok());
  dep.queue().AdvanceBy(SimDuration::Seconds(1));
  size_t chain_size = dep.meta_replica(0).log().size();
  for (size_t r = 0; r < 3; ++r) {
    ASSERT_EQ(dep.meta_replica(r).log().size(), chain_size) << "replica " << r;
  }

  // The ack is "lost": the leader dies, a backup promotes, and the client
  // retries the same logical mutation against the new leader.
  dep.CrashMetadataService();
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  ASSERT_EQ(set->current_leader(), 1u);
  auto retried = dep.meta_client().BindFile(audit_id, dir_id, "dup.txt",
                                            /*is_rename=*/false);
  ASSERT_TRUE(retried.ok());

  // Same unlock key, no second record, chain still verifies.
  EXPECT_EQ(*first, *retried);
  const MetadataLog& log = dep.meta_replica(1).log();
  EXPECT_TRUE(log.Verify().ok());
  EXPECT_EQ(CreateBindingsFor(log, audit_id), 1);
  EXPECT_EQ(log.size(), chain_size);
}

TEST(MetaFailoverTest, StaleStubFollowsMetaNotLeaderRedirect) {
  Deployment dep(ReplicatedMetaOpts(2));
  auto& fs = dep.fs();
  ASSERT_TRUE(fs.Create("/seed").ok());
  MetaReplicaSet* set = dep.meta_replica_set();
  ASSERT_NE(set, nullptr);

  // Fail leadership over to replica 1, then bring replica 0 back as a
  // live backup.
  dep.CrashMetadataService();
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  dep.RestartMetadataService();
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  ASSERT_EQ(set->current_leader(), 1u);
  ASSERT_FALSE(set->is_leader(0));

  // A fresh stub starts with a stale leader hint (replica 0). The backup's
  // serve gate answers NOT_LEADER:1 and the stub follows the redirect
  // instead of burning a timeout.
  auto creds = dep.MakeAttacker().StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep.MakeAttackerClients(*creds);
  ASSERT_TRUE(clients.ok());
  SecureRandom rng(31);
  AuditId audit_id = AuditId::Random(rng);
  DirId dir_id = DirId::Random(rng);
  ASSERT_TRUE(
      clients->meta->BindFile(audit_id, dir_id, "thief.txt", false).ok());
  EXPECT_GE(clients->meta->redirects(), 1u);
  EXPECT_EQ(clients->meta->leader_hint(), 1u);
}

struct MetaScenarioDigest {
  std::string timeline;
  size_t leader = 0;
  uint64_t chain_size = 0;
  Bytes chain_tip;

  bool operator==(const MetaScenarioDigest& other) const {
    return timeline == other.timeline && leader == other.leader &&
           chain_size == other.chain_size && chain_tip == other.chain_tip;
  }
};

MetaScenarioDigest RunMetaCrashScenario(uint64_t seed) {
  ResetRpcClientIdsForTesting();
  DeploymentOptions options = ReplicatedMetaOpts(3);
  options.seed = seed;
  Deployment dep(options);
  auto& fs = dep.fs();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fs.Create("/a" + std::to_string(i)).ok());
  }
  dep.CrashMetadataService();
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fs.Create("/b" + std::to_string(i)).ok());
  }
  dep.RestartMetadataService();
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fs.Create("/c" + std::to_string(i)).ok());
  }
  dep.queue().AdvanceBy(SimDuration::Seconds(1));

  MetaReplicaSet* set = dep.meta_replica_set();
  MetaScenarioDigest digest;
  for (const auto& event : set->timeline()) {
    digest.timeline += std::to_string(event.at.nanos()) + "|" + event.what +
                       "|" + std::to_string(event.replica) + "|" +
                       std::to_string(event.epoch) + "\n";
  }
  digest.leader = set->current_leader();
  const MetadataLog& log = dep.meta_replica(digest.leader).log();
  digest.chain_size = log.size();
  digest.chain_tip = log.records().back().entry_hash;
  return digest;
}

TEST(MetaFailoverTest, MetaFailoverTimelineIsDeterministic) {
  MetaScenarioDigest a = RunMetaCrashScenario(7);
  MetaScenarioDigest b = RunMetaCrashScenario(7);
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_TRUE(a == b);
}

TEST(MetaFailoverTest, BothTiersReplicatedRideSequentialLeaderKills) {
  // Key and metadata tiers on the same substrate at once: kill each tier's
  // leader in turn; both promote, both sets of chains reconverge, and the
  // forensic report verifies every replica of both tiers.
  DeploymentOptions options = ReplicatedMetaOpts(2);
  options.key_replicas = 2;
  Deployment dep(options);
  auto& fs = dep.fs();
  SimTime t0 = dep.queue().Now();

  std::vector<AuditId> ids;
  for (int i = 0; i < 4; ++i) {
    std::string path = "/pre" + std::to_string(i);
    ASSERT_TRUE(fs.Create(path).ok());
    ids.push_back(fs.ReadHeaderOf(path)->audit_id);
  }

  dep.CrashKeyShard(0);
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  ASSERT_TRUE(fs.Create("/mid").ok());
  dep.RestartKeyShard(0);
  dep.queue().AdvanceBy(SimDuration::Seconds(4));

  dep.CrashMetadataService();
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  ASSERT_TRUE(fs.Create("/post").ok());
  dep.RestartMetadataService();
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  ASSERT_TRUE(fs.Create("/tail").ok());
  dep.queue().AdvanceBy(SimDuration::Seconds(1));

  EXPECT_GE(dep.replica_set(0)->stats().promotions, 1u);
  EXPECT_GE(dep.meta_replica_set()->stats().promotions, 1u);

  // Every pre-kill binding still resolves through the authoritative tier.
  const MetadataService& authority =
      dep.meta_replica(dep.meta_replica_set()->current_leader());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto path = authority.ResolvePath(dep.device_id(), ids[i],
                                      dep.queue().Now());
    ASSERT_TRUE(path.ok()) << ids[i].ToHex();
    EXPECT_EQ(*path, "/pre" + std::to_string(i));
  }

  auto report = dep.auditor().BuildReport(dep.device_id(), t0,
                                          options.config.texp);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->replica_logs_verified);
  EXPECT_TRUE(report->key_log_verified);
  EXPECT_TRUE(report->metadata_log_verified);
}

}  // namespace
}  // namespace keypad
