// Tests for authenticated key wrapping (the Wrap(K_R, K_D) blob in every
// Keypad file header).

#include <gtest/gtest.h>

#include "src/cryptocore/keywrap.h"

namespace keypad {
namespace {

TEST(KeyWrapTest, RoundTrip) {
  SecureRandom rng(uint64_t{1});
  Bytes kek = rng.NextBytes(32);
  Bytes key = rng.NextBytes(32);
  Bytes blob = WrapKey(kek, key, rng);
  auto back = UnwrapKey(kek, blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, key);
}

TEST(KeyWrapTest, BlobIsNotThePlainKey) {
  SecureRandom rng(uint64_t{2});
  Bytes kek = rng.NextBytes(32);
  Bytes key = rng.NextBytes(32);
  Bytes blob = WrapKey(kek, key, rng);
  // The wrapped blob must not contain the key material in the clear.
  EXPECT_EQ(std::search(blob.begin(), blob.end(), key.begin(), key.end()),
            blob.end());
  EXPECT_GT(blob.size(), key.size());
}

TEST(KeyWrapTest, WrongKekFails) {
  SecureRandom rng(uint64_t{3});
  Bytes kek = rng.NextBytes(32);
  Bytes other = rng.NextBytes(32);
  Bytes blob = WrapKey(kek, rng.NextBytes(32), rng);
  auto result = UnwrapKey(other, blob);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(KeyWrapTest, TamperedBlobFails) {
  SecureRandom rng(uint64_t{4});
  Bytes kek = rng.NextBytes(32);
  Bytes blob = WrapKey(kek, rng.NextBytes(32), rng);
  for (size_t pos : {size_t{0}, blob.size() / 2, blob.size() - 1}) {
    Bytes bad = blob;
    bad[pos] ^= 1;
    EXPECT_FALSE(UnwrapKey(kek, bad).ok()) << "at offset " << pos;
  }
  EXPECT_FALSE(UnwrapKey(kek, Bytes(10, 0)).ok());  // Too short.
}

TEST(KeyWrapTest, FreshRandomnessPerWrap) {
  SecureRandom rng(uint64_t{5});
  Bytes kek = rng.NextBytes(32);
  Bytes key = rng.NextBytes(32);
  Bytes blob1 = WrapKey(kek, key, rng);
  Bytes blob2 = WrapKey(kek, key, rng);
  EXPECT_NE(blob1, blob2);  // Randomized IV.
  EXPECT_EQ(*UnwrapKey(kek, blob1), *UnwrapKey(kek, blob2));
}

TEST(KeyWrapTest, VariableLengthPayloads) {
  SecureRandom rng(uint64_t{6});
  Bytes kek = rng.NextBytes(32);
  for (size_t len : {size_t{0}, size_t{1}, size_t{16}, size_t{100},
                     size_t{4096}}) {
    Bytes payload = rng.NextBytes(len);
    auto back = UnwrapKey(kek, WrapKey(kek, payload, rng));
    ASSERT_TRUE(back.ok()) << len;
    EXPECT_EQ(*back, payload);
  }
}

}  // namespace
}  // namespace keypad
