// Robustness and failure-recovery tests: malformed wire input, crash/
// remount recovery of in-flight IBE state, deep namespace chains, and
// network flapping.

#include <gtest/gtest.h>

#include "src/keypad/deployment.h"
#include "src/sim/random.h"
#include "src/wire/binary_codec.h"
#include "src/wire/xmlrpc.h"

namespace keypad {
namespace {

TEST(WireRobustnessTest, RandomGarbageNeverCrashesTheXmlParser) {
  SimRandom rng(1);
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng.UniformU64(200);
    std::string garbage;
    for (size_t j = 0; j < len; ++j) {
      garbage.push_back(static_cast<char>(rng.UniformU64(256)));
    }
    // Must return an error (or, absurdly luckily, parse) — never hang or
    // crash.
    DecodeXmlRpcCall(garbage).status();
    DecodeXmlRpcResponse(garbage).status();
  }
}

TEST(WireRobustnessTest, TruncatedRealMessagesFailCleanly) {
  XmlRpcCall call;
  call.method = "key.get";
  call.params.push_back(WireValue(Bytes(24, 7)));
  call.params.push_back(WireValue(int64_t{1}));
  std::string xml = EncodeXmlRpcCall(call);
  for (size_t len = 0; len < xml.size(); len += 7) {
    auto result = DecodeXmlRpcCall(xml.substr(0, len));
    EXPECT_FALSE(result.ok());
  }
}

TEST(WireRobustnessTest, RandomGarbageNeverCrashesTheBinaryCodec) {
  SimRandom rng(2);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage;
    size_t len = rng.UniformU64(100);
    for (size_t j = 0; j < len; ++j) {
      garbage.push_back(static_cast<uint8_t>(rng.NextU64()));
    }
    BinaryDecode(garbage).status();
  }
}

TEST(WireRobustnessTest, DeeplyNestedBinaryValueRoundTrips) {
  WireValue value(int64_t{42});
  for (int i = 0; i < 100; ++i) {
    WireValue::Array wrapper;
    wrapper.push_back(std::move(value));
    value = WireValue(std::move(wrapper));
  }
  auto decoded = BinaryDecode(BinaryEncode(value));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, value);
}

TEST(RecoveryTest, RemountRecoversIbeLockedFileViaBlockingUnlock) {
  // A file created under IBE while the network is down is locked on disk
  // with in-memory pending state. If the machine "crashes" (remount: all
  // memory state lost), a later read must still work — via the blocking
  // unlock, which registers the truthful path.
  DeploymentOptions options;
  options.profile = CellularProfile();
  options.config.ibe_enabled = true;
  Deployment dep(options);
  auto& fs = dep.fs();

  dep.client_link().set_disconnected(true);
  ASSERT_TRUE(fs.Create("/orphan.doc").ok());
  ASSERT_TRUE(fs.WriteAll("/orphan.doc", BytesOf("survives crash")).ok());
  // Registrations and retries all fail silently.
  dep.queue().AdvanceBy(SimDuration::Minutes(5));

  // "Crash": mount a fresh KeypadFs over the same device with the stored
  // credentials (pending/grace state is gone).
  auto vanilla = EncFs::Mount(&dep.device(), &dep.queue(), 50,
                              dep.options().password, {});
  ASSERT_TRUE(vanilla.ok());
  auto creds = KeypadFs::LoadCredentials(vanilla->get());
  ASSERT_TRUE(creds.ok());
  auto clients = dep.MakeAttackerClients(*creds);
  auto fs2 = KeypadFs::Mount(&dep.device(), &dep.queue(), 51,
                             dep.options().password, {}, options.config,
                             clients->services);
  ASSERT_TRUE(fs2.ok());

  // Still offline: the lock holds.
  EXPECT_FALSE((*fs2)->ReadAll("/orphan.doc").ok());

  // Network restored: blocking unlock registers the binding and reads.
  dep.client_link().set_disconnected(false);
  auto data = (*fs2)->ReadAll("/orphan.doc");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(StringOf(*data), "survives crash");
  // The metadata service now knows the true name.
  AuditId id = (*fs2)->ReadHeaderOf("/orphan.doc")->audit_id;
  auto path = dep.metadata_service().ResolvePath(dep.device_id(), id,
                                                 dep.queue().Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/orphan.doc");
}

TEST(RecoveryTest, DeepDirectoryChainsResolve) {
  DeploymentOptions options;
  options.profile = LanProfile();
  options.config.ibe_enabled = false;
  Deployment dep(options);
  auto& fs = dep.fs();

  std::string path;
  for (int depth = 0; depth < 40; ++depth) {
    path += "/d" + std::to_string(depth);
    ASSERT_TRUE(fs.Mkdir(path).ok());
  }
  std::string file = path + "/leaf.txt";
  ASSERT_TRUE(fs.Create(file).ok());
  AuditId id = fs.ReadHeaderOf(file)->audit_id;
  auto resolved = dep.metadata_service().ResolvePath(dep.device_id(), id,
                                                     dep.queue().Now());
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, file);
}

TEST(RecoveryTest, LinkFlappingDuringWorkload) {
  // The network drops and returns repeatedly; operations fail while it is
  // down, succeed when it is up, and the audit invariants survive.
  DeploymentOptions options;
  options.profile = BroadbandProfile();
  options.config.ibe_enabled = false;
  Deployment dep(options);
  auto& fs = dep.fs();
  SimRandom rng(3);

  int created = 0;
  for (int i = 0; i < 40; ++i) {
    dep.client_link().set_disconnected(rng.Bernoulli(0.4));
    std::string path = "/f" + std::to_string(i);
    if (fs.Create(path).ok()) {
      ++created;
      EXPECT_TRUE(fs.WriteAll(path, BytesOf("x")).ok());
    }
    dep.queue().AdvanceBy(SimDuration::Seconds(5));
  }
  dep.client_link().set_disconnected(false);
  dep.queue().RunUntilIdle();

  EXPECT_GT(created, 5);
  EXPECT_TRUE(dep.key_service().log().Verify().ok());
  EXPECT_TRUE(dep.metadata_service().log().Verify().ok());
  // Every successfully created file is registered and re-readable.
  dep.queue().AdvanceBy(options.config.texp * 2 + SimDuration::Seconds(2));
  for (int i = 0; i < 40; ++i) {
    std::string path = "/f" + std::to_string(i);
    if (fs.Stat(path).ok()) {
      EXPECT_TRUE(fs.ReadAll(path).ok()) << path;
    }
  }
}

TEST(RecoveryTest, RpcRetryAfterDropsEventuallyLands) {
  // A lossy (but connected) link: blocking calls may time out; the create
  // either fails cleanly or succeeds completely (no half-registered state
  // that would break the audit invariant).
  DeploymentOptions options;
  options.profile = BroadbandProfile();
  options.config.ibe_enabled = false;
  Deployment dep(options);
  dep.client_link().set_drop_probability(0.3);
  auto& fs = dep.fs();

  int ok_count = 0;
  for (int i = 0; i < 30; ++i) {
    std::string path = "/f" + std::to_string(i);
    Status status = fs.Create(path);
    if (status.ok()) {
      ++ok_count;
      // Fully created: key and metadata both present.
      AuditId id = fs.ReadHeaderOf(path)->audit_id;
      EXPECT_TRUE(dep.key_service().GetKey(dep.device_id(), id).ok());
      EXPECT_TRUE(dep.metadata_service()
                      .ResolvePath(dep.device_id(), id, dep.queue().Now())
                      .ok());
    }
  }
  EXPECT_GT(ok_count, 3);
  dep.client_link().set_drop_probability(0);
  dep.queue().RunUntilIdle();
  EXPECT_TRUE(dep.key_service().log().Verify().ok());
}

}  // namespace
}  // namespace keypad
