// Robustness and failure-recovery tests: malformed wire input, crash/
// remount recovery of in-flight IBE state, deep namespace chains, and
// network flapping.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/keypad/deployment.h"
#include "src/keyservice/key_service.h"
#include "src/keyservice/key_service_client.h"
#include "src/net/link.h"
#include "src/net/profile.h"
#include "src/rpc/admission.h"
#include "src/rpc/brownout.h"
#include "src/rpc/circuit_breaker.h"
#include "src/rpc/retry_budget.h"
#include "src/rpc/rpc.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/wire/binary_codec.h"
#include "src/wire/xmlrpc.h"

namespace keypad {
namespace {

TEST(WireRobustnessTest, RandomGarbageNeverCrashesTheXmlParser) {
  SimRandom rng(1);
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng.UniformU64(200);
    std::string garbage;
    for (size_t j = 0; j < len; ++j) {
      garbage.push_back(static_cast<char>(rng.UniformU64(256)));
    }
    // Must return an error (or, absurdly luckily, parse) — never hang or
    // crash.
    DecodeXmlRpcCall(garbage).status();
    DecodeXmlRpcResponse(garbage).status();
  }
}

TEST(WireRobustnessTest, TruncatedRealMessagesFailCleanly) {
  XmlRpcCall call;
  call.method = "key.get";
  call.params.push_back(WireValue(Bytes(24, 7)));
  call.params.push_back(WireValue(int64_t{1}));
  std::string xml = EncodeXmlRpcCall(call);
  for (size_t len = 0; len < xml.size(); len += 7) {
    auto result = DecodeXmlRpcCall(xml.substr(0, len));
    EXPECT_FALSE(result.ok());
  }
}

TEST(WireRobustnessTest, RandomGarbageNeverCrashesTheBinaryCodec) {
  SimRandom rng(2);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage;
    size_t len = rng.UniformU64(100);
    for (size_t j = 0; j < len; ++j) {
      garbage.push_back(static_cast<uint8_t>(rng.NextU64()));
    }
    BinaryDecode(garbage).status();
  }
}

TEST(WireRobustnessTest, DeeplyNestedBinaryValueRoundTrips) {
  WireValue value(int64_t{42});
  for (int i = 0; i < 100; ++i) {
    WireValue::Array wrapper;
    wrapper.push_back(std::move(value));
    value = WireValue(std::move(wrapper));
  }
  auto decoded = BinaryDecode(BinaryEncode(value));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, value);
}

TEST(RecoveryTest, RemountRecoversIbeLockedFileViaBlockingUnlock) {
  // A file created under IBE while the network is down is locked on disk
  // with in-memory pending state. If the machine "crashes" (remount: all
  // memory state lost), a later read must still work — via the blocking
  // unlock, which registers the truthful path.
  DeploymentOptions options;
  options.profile = CellularProfile();
  options.config.ibe_enabled = true;
  Deployment dep(options);
  auto& fs = dep.fs();

  dep.client_link().set_disconnected(true);
  ASSERT_TRUE(fs.Create("/orphan.doc").ok());
  ASSERT_TRUE(fs.WriteAll("/orphan.doc", BytesOf("survives crash")).ok());
  // Registrations and retries all fail silently.
  dep.queue().AdvanceBy(SimDuration::Minutes(5));

  // "Crash": mount a fresh KeypadFs over the same device with the stored
  // credentials (pending/grace state is gone).
  auto vanilla = EncFs::Mount(&dep.device(), &dep.queue(), 50,
                              dep.options().password, {});
  ASSERT_TRUE(vanilla.ok());
  auto creds = KeypadFs::LoadCredentials(vanilla->get());
  ASSERT_TRUE(creds.ok());
  auto clients = dep.MakeAttackerClients(*creds);
  auto fs2 = KeypadFs::Mount(&dep.device(), &dep.queue(), 51,
                             dep.options().password, {}, options.config,
                             clients->services);
  ASSERT_TRUE(fs2.ok());

  // Still offline: the lock holds.
  EXPECT_FALSE((*fs2)->ReadAll("/orphan.doc").ok());

  // Network restored: blocking unlock registers the binding and reads.
  dep.client_link().set_disconnected(false);
  auto data = (*fs2)->ReadAll("/orphan.doc");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(StringOf(*data), "survives crash");
  // The metadata service now knows the true name.
  AuditId id = (*fs2)->ReadHeaderOf("/orphan.doc")->audit_id;
  auto path = dep.metadata_service().ResolvePath(dep.device_id(), id,
                                                 dep.queue().Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/orphan.doc");
}

TEST(RecoveryTest, DeepDirectoryChainsResolve) {
  DeploymentOptions options;
  options.profile = LanProfile();
  options.config.ibe_enabled = false;
  Deployment dep(options);
  auto& fs = dep.fs();

  std::string path;
  for (int depth = 0; depth < 40; ++depth) {
    path += "/d" + std::to_string(depth);
    ASSERT_TRUE(fs.Mkdir(path).ok());
  }
  std::string file = path + "/leaf.txt";
  ASSERT_TRUE(fs.Create(file).ok());
  AuditId id = fs.ReadHeaderOf(file)->audit_id;
  auto resolved = dep.metadata_service().ResolvePath(dep.device_id(), id,
                                                     dep.queue().Now());
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, file);
}

TEST(RecoveryTest, LinkFlappingDuringWorkload) {
  // The network drops and returns repeatedly; operations fail while it is
  // down, succeed when it is up, and the audit invariants survive.
  DeploymentOptions options;
  options.profile = BroadbandProfile();
  options.config.ibe_enabled = false;
  Deployment dep(options);
  auto& fs = dep.fs();
  SimRandom rng(3);

  int created = 0;
  for (int i = 0; i < 40; ++i) {
    dep.client_link().set_disconnected(rng.Bernoulli(0.4));
    std::string path = "/f" + std::to_string(i);
    if (fs.Create(path).ok()) {
      ++created;
      EXPECT_TRUE(fs.WriteAll(path, BytesOf("x")).ok());
    }
    dep.queue().AdvanceBy(SimDuration::Seconds(5));
  }
  dep.client_link().set_disconnected(false);
  dep.queue().RunUntilIdle();

  EXPECT_GT(created, 5);
  EXPECT_TRUE(dep.key_service().log().Verify().ok());
  EXPECT_TRUE(dep.metadata_service().log().Verify().ok());
  // Every successfully created file is registered and re-readable.
  dep.queue().AdvanceBy(options.config.texp * 2 + SimDuration::Seconds(2));
  for (int i = 0; i < 40; ++i) {
    std::string path = "/f" + std::to_string(i);
    if (fs.Stat(path).ok()) {
      EXPECT_TRUE(fs.ReadAll(path).ok()) << path;
    }
  }
}

TEST(RecoveryTest, RpcRetryAfterDropsEventuallyLands) {
  // A lossy (but connected) link: blocking calls may time out; the create
  // either fails cleanly or succeeds completely (no half-registered state
  // that would break the audit invariant).
  DeploymentOptions options;
  options.profile = BroadbandProfile();
  options.config.ibe_enabled = false;
  Deployment dep(options);
  dep.client_link().set_drop_probability(0.3);
  auto& fs = dep.fs();

  int ok_count = 0;
  for (int i = 0; i < 30; ++i) {
    std::string path = "/f" + std::to_string(i);
    Status status = fs.Create(path);
    if (status.ok()) {
      ++ok_count;
      // Fully created: key and metadata both present.
      AuditId id = fs.ReadHeaderOf(path)->audit_id;
      EXPECT_TRUE(dep.key_service().GetKey(dep.device_id(), id).ok());
      EXPECT_TRUE(dep.metadata_service()
                      .ResolvePath(dep.device_id(), id, dep.queue().Now())
                      .ok());
    }
  }
  EXPECT_GT(ok_count, 3);
  dep.client_link().set_drop_probability(0);
  dep.queue().RunUntilIdle();
  EXPECT_TRUE(dep.key_service().log().Verify().ok());
}

// --- Overload robustness (DESIGN.md §14). ----------------------------------
//
// The breaker/budget/admission triad shares state: a half-open breaker
// admits exactly ONE probe, losers fail fast without resetting the
// cooldown, and the probe is exempt from retry-budget gating so a drained
// budget can never wedge the breaker open.

class OverloadRpcTest : public ::testing::Test {
 protected:
  OverloadRpcTest()
      : link_(&queue_, LanProfile()),
        server_(&queue_, SimDuration::Micros(150)),
        client_(&queue_, &link_, &server_) {
    server_.RegisterMethod("echo", [](const WireValue::Array& params) {
      return Result<WireValue>(params.empty() ? WireValue() : params[0]);
    });
    // Deterministic same-instant fanout: no per-call client CPU charge.
    client_.options().client_overhead = SimDuration(0);
    client_.options().client_overhead_binary = SimDuration(0);
  }

  // Times out one call so the breaker records a failure (responses
  // blackholed for the duration of the call).
  void TimeOutOneCall() {
    link_.set_partitioned(NetworkLink::Direction::kReverse, true);
    auto result = client_.Call("echo", {WireValue("lost")});
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
    link_.set_partitioned(NetworkLink::Direction::kReverse, false);
    queue_.RunUntilIdle();  // Drain the blackholed server work.
  }

  EventQueue queue_;
  NetworkLink link_;
  RpcServer server_;
  RpcClient client_;
};

TEST_F(OverloadRpcTest, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreakerOptions bo;
  bo.failure_threshold = 1;
  bo.cooldown = SimDuration::Seconds(10);
  client_.breaker() = CircuitBreaker(bo);
  client_.options().timeout = SimDuration::Seconds(1);
  client_.options().retry.max_attempts = 1;

  TimeOutOneCall();
  ASSERT_EQ(client_.breaker().state(), CircuitBreaker::State::kOpen);

  // Past the cooldown, a storm of concurrent calls arrives. The breaker
  // must let exactly one through as the canary; the rest fail fast.
  queue_.AdvanceBy(SimDuration::Seconds(11));
  uint64_t handled_before = server_.requests_handled();
  uint64_t rejected_before = client_.calls_rejected();
  int ok = 0, unavailable = 0;
  for (int i = 0; i < 5; ++i) {
    client_.CallAsync("echo", {WireValue(int64_t{i})},
                      [&](Result<WireValue> r) {
                        r.ok() ? ++ok : ++unavailable;
                        if (!r.ok()) {
                          EXPECT_EQ(r.status().code(),
                                    StatusCode::kUnavailable);
                        }
                      });
  }
  queue_.RunUntilIdle();
  EXPECT_EQ(ok, 1);           // The probe.
  EXPECT_EQ(unavailable, 4);  // The losers, rejected locally.
  EXPECT_EQ(server_.requests_handled() - handled_before, 1u);
  EXPECT_EQ(client_.calls_rejected() - rejected_before, 4u);
  // The probe's success closed the breaker; traffic flows again.
  EXPECT_EQ(client_.breaker().state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(client_.Call("echo", {WireValue("after")}).ok());
}

TEST_F(OverloadRpcTest, ProbeStormLosersDoNotResetCooldown) {
  CircuitBreakerOptions bo;
  bo.failure_threshold = 1;
  bo.cooldown = SimDuration::Seconds(10);
  client_.breaker() = CircuitBreaker(bo);
  client_.options().timeout = SimDuration::Seconds(1);
  client_.options().retry.max_attempts = 1;

  // Open the breaker, then let the probe fail too: the failed probe
  // re-opens with a FRESH cooldown starting at the probe's failure.
  link_.set_partitioned(NetworkLink::Direction::kReverse, true);
  // Times out; breaker opens.
  EXPECT_FALSE(client_.Call("echo", {WireValue("x")}).ok());
  queue_.AdvanceBy(SimDuration::Seconds(11));
  // Admitted as the probe; times out too.
  EXPECT_FALSE(client_.Call("echo", {WireValue("probe")}).ok());
  SimTime reopened_at = queue_.Now();
  ASSERT_EQ(client_.breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(client_.breaker().opened_count(), 2u);

  // A loser hammering mid-cooldown is rejected without a wire attempt —
  // and, critically, without touching the cooldown clock.
  queue_.AdvanceBy(SimDuration::Seconds(5));
  uint64_t attempts_before = client_.attempts_started();
  auto loser = client_.Call("echo", {WireValue("loser")});
  EXPECT_EQ(loser.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client_.attempts_started(), attempts_before);
  EXPECT_GE(client_.calls_rejected(), 1u);

  // 10s after the probe failure (not 10s after the loser), the next call
  // is admitted as a new probe. If the loser had reset the cooldown this
  // call would still be rejected locally.
  link_.set_partitioned(NetworkLink::Direction::kReverse, false);
  queue_.RunUntilIdle();
  SimDuration since_reopen = queue_.Now() - reopened_at;
  if (since_reopen < SimDuration::Seconds(10)) {
    queue_.AdvanceBy(SimDuration::Seconds(10) - since_reopen +
                     SimDuration::Millis(1));
  }
  auto recovered = client_.Call("echo", {WireValue("recovered")});
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(client_.breaker().state(), CircuitBreaker::State::kClosed);
}

TEST_F(OverloadRpcTest, ShedRequestsNeverReachTheHandler) {
  AdmissionOptions adm;
  adm.enabled = true;
  adm.max_queue_depth = 4;
  server_.set_admission(adm);

  // 20 demand calls land in the same virtual instant; the bounded queue
  // admits 4 and sheds 16 with an explicit REJECTED fault. Shed requests
  // never execute, never charge the busy clock, and complete at network
  // RTT (no service-time wait) — rejection is cheap by construction.
  int completed = 0, rejected = 0;
  SimTime issued = queue_.Now();
  SimDuration slowest_rejection;
  for (int i = 0; i < 20; ++i) {
    client_.CallAsync("echo", {WireValue(int64_t{i})},
                      [&](Result<WireValue> r) {
                        if (r.ok()) {
                          ++completed;
                          return;
                        }
                        ++rejected;
                        EXPECT_TRUE(IsRejectedByServer(r.status()));
                        EXPECT_EQ(r.status().code(),
                                  StatusCode::kResourceExhausted);
                        slowest_rejection =
                            std::max(slowest_rejection, queue_.Now() - issued);
                      });
  }
  queue_.RunUntilIdle();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(rejected, 16);
  EXPECT_EQ(server_.requests_executed(), 4u);
  EXPECT_EQ(server_.shed_demand(), 16u);
  EXPECT_EQ(server_.requests_shed(), 16u);
  EXPECT_EQ(client_.calls_rejected_by_server(), 16u);
  // REJECTED came back in one RTT — well before even the first admitted
  // request finished service.
  EXPECT_LE(slowest_rejection.micros(), LanProfile().rtt.micros());
}

TEST_F(OverloadRpcTest, DeadlineDeadOnArrivalIsRejected) {
  AdmissionOptions adm;
  adm.enabled = true;
  server_.set_admission(adm);
  // The server is busy for the next 50ms; a call that must finish within
  // 20ms is dead on arrival and rejected before occupying a slot.
  server_.ChargeBusy(SimDuration::Millis(50));
  CallContext ctx;
  ctx.deadline = queue_.Now() + SimDuration::Millis(20);
  auto result = client_.Call("echo", {WireValue("late")}, ctx);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(IsRejectedByServer(result.status()));
  EXPECT_EQ(server_.deadline_expired(), 1u);
  EXPECT_EQ(server_.requests_executed(), 0u);
}

TEST_F(OverloadRpcTest, DeadlineExpiredInQueueSkipsTheHandler) {
  // Admission flips on while a tight-deadline request already sits in the
  // service queue (the operator enabling KEYPAD_ADMISSION on a loaded
  // server): the dequeue-side check notices the deadline passed in queue
  // and answers REJECTED instead of executing work nobody awaits.
  RpcServer slow(&queue_, SimDuration::Millis(10));
  slow.RegisterMethod("echo", [](const WireValue::Array& params) {
    return Result<WireValue>(params.empty() ? WireValue() : params[0]);
  });
  RpcClient client(&queue_, &link_, &slow, client_.options());
  CallContext ctx;
  ctx.deadline = queue_.Now() + SimDuration::Millis(5);
  Result<WireValue> result = WireValue();
  client.CallAsync("echo", {WireValue("stale")}, ctx,
                   [&](Result<WireValue> r) { result = std::move(r); });
  AdmissionOptions adm;
  adm.enabled = true;
  slow.set_admission(adm);  // Enabled after arrival, before dequeue.
  queue_.RunUntilIdle();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(IsRejectedByServer(result.status()));
  EXPECT_EQ(slow.deadline_expired(), 1u);
  EXPECT_EQ(slow.requests_executed(), 0u);
}

TEST_F(OverloadRpcTest, HalfOpenProbeIsExemptFromTheRetryBudget) {
  CircuitBreakerOptions bo;
  bo.failure_threshold = 1;
  bo.cooldown = SimDuration::Seconds(5);
  client_.breaker() = CircuitBreaker(bo);
  client_.options().timeout = SimDuration::Seconds(1);
  client_.options().retry.max_attempts = 3;
  client_.options().retry.jitter = 0;
  client_.options().retry.initial_backoff = SimDuration::Millis(10);
  // A budget that can never fund a retry: zero ratio, zero reserve.
  RetryBudgetOptions rb;
  rb.enabled = true;
  rb.ratio = 0.0;
  rb.initial_balance = 0.0;
  RpcOptions opts = client_.options();
  opts.retry_budget = rb;
  RpcClient budgeted(&queue_, &link_, &server_, opts);
  budgeted.breaker() = CircuitBreaker(bo);

  // Ordinary call against a blackholed server: attempt 1 times out and
  // the drained budget denies attempt 2 — one wire attempt total.
  link_.set_partitioned(NetworkLink::Direction::kReverse, true);
  auto starved = budgeted.Call("echo", {WireValue("x")});
  EXPECT_EQ(starved.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(budgeted.attempts_started(), 1u);
  EXPECT_GE(budgeted.retries_budget_denied(), 1u);
  ASSERT_EQ(budgeted.breaker().state(), CircuitBreaker::State::kOpen);

  // The half-open probe is THE breaker's canary: it must run its full
  // retry ladder even with an empty budget, or a drained budget could
  // keep the breaker open forever.
  queue_.AdvanceBy(SimDuration::Seconds(6));
  uint64_t attempts_before = budgeted.attempts_started();
  auto probe = budgeted.Call("echo", {WireValue("probe")});
  EXPECT_EQ(probe.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(budgeted.attempts_started() - attempts_before, 3u);
}

TEST(RetryBudgetTest, CapsSustainedRetryRatio) {
  RetryBudgetOptions options;
  options.enabled = true;
  options.ratio = 0.1;
  options.initial_balance = 2.0;
  options.max_balance = 5.0;
  RetryBudget budget(options);
  SimTime now;
  // 100 calls, each wanting one retry: the reserve funds 2 and the
  // deposits fund ~10% of the rest — the storm is capped, not amplified.
  uint64_t allowed = 0;
  for (int i = 0; i < 100; ++i) {
    budget.OnFirstAttempt();
    if (budget.TryAcquireRetry(now)) ++allowed;
  }
  EXPECT_EQ(allowed, budget.retries_allowed());
  EXPECT_EQ(100u - allowed, budget.retries_denied());
  EXPECT_LE(allowed, 2u + 10u + 1u);  // reserve + ratio*100, rounding slack.
  EXPECT_GE(allowed, 10u);
}

TEST(RetryBudgetTest, ServerRejectionClosesTheWindow) {
  RetryBudgetOptions options;
  options.enabled = true;
  options.initial_balance = 5.0;
  options.reject_window = SimDuration::Seconds(1);
  RetryBudget budget(options);
  SimTime t0;
  budget.OnFirstAttempt();
  EXPECT_TRUE(budget.TryAcquireRetry(t0));

  // REJECTED is explicit backpressure: all retries are denied for the
  // window even though the bucket still holds tokens.
  budget.NoteServerRejected(t0);
  EXPECT_EQ(budget.rejects_observed(), 1u);
  EXPECT_GT(budget.balance(), 1.0);
  EXPECT_FALSE(budget.TryAcquireRetry(t0 + SimDuration::Millis(500)));
  EXPECT_TRUE(budget.TryAcquireRetry(t0 + SimDuration::Millis(1001)));
}

TEST(RetryBudgetTest, DisabledBudgetNeverDenies) {
  RetryBudget budget;  // enabled = false by default.
  SimTime now;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(budget.TryAcquireRetry(now));
  }
  EXPECT_EQ(budget.retries_denied(), 0u);
}

TEST(BrownoutTest, TripsAfterThresholdSignalsAndHolds) {
  BrownoutOptions options;
  options.enabled = true;
  options.signal_threshold = 3;
  options.window = SimDuration::Seconds(1);
  options.hold = SimDuration::Seconds(2);
  BrownoutController brownout(options);
  SimTime t0;
  brownout.NoteOverloadSignal(t0);
  brownout.NoteOverloadSignal(t0 + SimDuration::Millis(100));
  EXPECT_FALSE(brownout.active(t0 + SimDuration::Millis(200)));
  brownout.NoteOverloadSignal(t0 + SimDuration::Millis(200));  // Trips.
  EXPECT_TRUE(brownout.active(t0 + SimDuration::Millis(300)));
  EXPECT_EQ(brownout.stats().activations, 1u);
  // Holds for `hold` past the last signal, then relaxes.
  EXPECT_TRUE(brownout.active(t0 + SimDuration::Millis(2100)));
  EXPECT_FALSE(brownout.active(t0 + SimDuration::Seconds(3)));
}

TEST(BrownoutTest, StretchesBatchesAndSuppressesPrefetchWhileActive) {
  BrownoutOptions options;
  options.enabled = true;
  options.signal_threshold = 1;
  BrownoutController brownout(options);
  SimTime t0;
  // Inactive: base window passes through, prefetch flows.
  EXPECT_EQ(brownout.StretchBatchWindow(SimDuration::Micros(400), t0).micros(),
            400);
  EXPECT_FALSE(brownout.SuppressPrefetch(t0));
  brownout.NoteOverloadSignal(t0);
  ASSERT_TRUE(brownout.active(t0 + SimDuration::Millis(1)));
  // Active: x4 stretch, zero windows lifted to the minimum so stretching
  // actually batches something, and prefetch fanout is dropped.
  EXPECT_EQ(brownout
                .StretchBatchWindow(SimDuration::Micros(400),
                                    t0 + SimDuration::Millis(1))
                .micros(),
            1600);
  EXPECT_GE(brownout
                .StretchBatchWindow(SimDuration(0), t0 + SimDuration::Millis(1))
                .micros(),
            1000);
  EXPECT_TRUE(brownout.SuppressPrefetch(t0 + SimDuration::Millis(1)));
  EXPECT_EQ(brownout.stats().prefetches_suppressed, 1u);
  EXPECT_GE(brownout.stats().batch_windows_stretched, 2u);
}

TEST(BrownoutTest, CacheLifetimeStretchIsOptInAndAccounted) {
  SimTime t0;
  SimDuration texp = SimDuration::Seconds(10);
  // Default: even an active brownout never stretches cache lifetimes —
  // the exposure-window cost is opt-in only.
  BrownoutOptions options;
  options.enabled = true;
  options.signal_threshold = 1;
  BrownoutController plain(options);
  plain.NoteOverloadSignal(t0);
  EXPECT_EQ(plain.CacheLifetimeForInsert(texp, t0 + SimDuration::Millis(1)),
            texp);
  EXPECT_EQ(plain.stats().exposure_added_key_seconds, 0.0);
  EXPECT_GT(plain.stats().exposure_base_key_seconds, 0.0);

  // Opted in: lifetimes stretch 1.5x and every added key-second is
  // accounted against the Fig. 11 integral — never silent.
  options.stretch_cache_lifetime = true;
  BrownoutController stretching(options);
  stretching.NoteOverloadSignal(t0);
  SimDuration stretched =
      stretching.CacheLifetimeForInsert(texp, t0 + SimDuration::Millis(1));
  EXPECT_EQ(stretched.millis(), 15000);
  EXPECT_EQ(stretching.stats().cache_inserts_stretched, 1u);
  EXPECT_NEAR(stretching.stats().exposure_added_key_seconds, 5.0, 1e-9);
}

TEST(OverloadAuditTest, ShedKeyFetchesOweNoAuditRow) {
  // The audit contract under shedding: a key only leaves the service
  // after its row is logged, and a shed request releases nothing — so it
  // owes nothing. Rows must match executed fetches exactly.
  EventQueue queue;
  NetworkLink link(&queue, LanProfile());
  RpcServer rpc_server(&queue, SimDuration::Millis(1));
  KeyService service(&queue, /*rng_seed=*/5);
  service.BindRpc(&rpc_server);
  AdmissionOptions adm;
  adm.enabled = true;
  adm.max_queue_depth = 3;
  rpc_server.set_admission(adm);

  RpcOptions opts;
  opts.client_overhead = SimDuration(0);
  opts.client_overhead_binary = SimDuration(0);
  RpcClient rpc_client(&queue, &link, &rpc_server, opts);
  Bytes secret = service.RegisterDevice("laptop");
  KeyServiceClient client(&rpc_client, "laptop", secret);

  SecureRandom rng(uint64_t{7});
  std::vector<AuditId> ids;
  for (int i = 0; i < 12; ++i) {
    AuditId id = AuditId::Random(rng);
    ASSERT_TRUE(service.CreateKey("laptop", id).ok());
    ids.push_back(id);
  }
  size_t rows_before = service.log().entries().size();

  // 12 concurrent demand fetches against a 3-deep queue: some execute,
  // the rest are shed.
  int fetched = 0, shed = 0;
  for (const AuditId& id : ids) {
    client.GetKeyAsync(id, AccessOp::kDemandFetch, [&](Result<Bytes> r) {
      if (r.ok()) {
        ++fetched;
      } else {
        ASSERT_TRUE(IsRejectedByServer(r.status())) << r.status().message();
        ++shed;
      }
    });
  }
  queue.RunUntilIdle();
  EXPECT_EQ(fetched + shed, 12);
  EXPECT_GT(shed, 0);
  EXPECT_GT(fetched, 0);
  EXPECT_EQ(rpc_server.requests_shed(), static_cast<uint64_t>(shed));
  // Exactly one kDemandFetch row per key that actually left the service;
  // shed requests added nothing, and the chain still verifies.
  size_t new_rows = service.log().entries().size() - rows_before;
  EXPECT_EQ(new_rows, static_cast<size_t>(fetched));
  EXPECT_TRUE(service.log().Verify().ok());
}

}  // namespace
}  // namespace keypad
