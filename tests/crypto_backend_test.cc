// Differential tests for the runtime-dispatched crypto backends.
//
// Every machine compiles the portable kernels plus whatever ISA kernels the
// toolchain supports; which one runs is decided at runtime
// (src/cryptocore/cpu_features.h). These tests force each exercisable tier
// in turn via SetCryptoTierCapForTesting and check that (a) all tiers
// produce bit-identical output on randomized inputs — keys, IVs, offsets,
// and lengths 0–4096 including offsets landing mid-block — and (b) each
// tier reproduces the published FIPS-197 / SP 800-38A, RFC 8439,
// FIPS 180-4, and RFC 4231 vectors, so agreement can never mean
// "all backends share the same bug" for the standard inputs.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/cryptocore/aes.h"
#include "src/cryptocore/chacha20.h"
#include "src/cryptocore/cpu_features.h"
#include "src/cryptocore/hmac.h"
#include "src/cryptocore/sha256.h"
#include "src/util/bytes.h"

namespace keypad {
namespace {

// Forces a dispatch tier for the lifetime of the object.
class TierCap {
 public:
  explicit TierCap(CryptoTier tier) { SetCryptoTierCapForTesting(tier); }
  ~TierCap() { ClearCryptoTierCapForTesting(); }
};

Bytes RandomBytes(std::mt19937_64& rng, size_t len) {
  Bytes out(len);
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng());
  }
  return out;
}

// Tiers above portable that this machine + binary can actually run.
std::vector<CryptoTier> AcceleratedTiers() {
  std::vector<CryptoTier> out;
  for (CryptoTier tier : ExercisableCryptoTiers()) {
    if (tier != CryptoTier::kPortable) {
      out.push_back(tier);
    }
  }
  return out;
}

TEST(CryptoBackendTest, ExercisableTiersStartAtPortable) {
  std::vector<CryptoTier> tiers = ExercisableCryptoTiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), CryptoTier::kPortable);
  for (size_t i = 1; i < tiers.size(); ++i) {
    EXPECT_LT(static_cast<int>(tiers[i - 1]), static_cast<int>(tiers[i]));
  }
}

TEST(CryptoBackendTest, BackendInfoReportsEveryPrimitive) {
  std::vector<CryptoBackendInfo> rows = ActiveCryptoBackends();
  ASSERT_EQ(rows.size(), 3u);
  for (const CryptoBackendInfo& row : rows) {
    EXPECT_NE(row.algorithm, nullptr);
    EXPECT_NE(row.backend, nullptr);
    EXPECT_GT(std::string_view(row.backend).size(), 0u);
  }
  TierCap cap(CryptoTier::kPortable);
  for (const CryptoBackendInfo& row : ActiveCryptoBackends()) {
    EXPECT_TRUE(std::string_view(row.backend).find("portable") !=
                std::string_view::npos)
        << row.algorithm << " reported " << row.backend
        << " under a portable cap";
  }
}

// --- AES-256-CTR -----------------------------------------------------------

TEST(CryptoBackendTest, AesCtrDifferentialRandomized) {
  std::mt19937_64 rng(0x6b657970'61643031ull);
  std::vector<CryptoTier> tiers = AcceleratedTiers();

  for (int trial = 0; trial < 150; ++trial) {
    Bytes key = RandomBytes(rng, 32);
    Bytes iv = RandomBytes(rng, 16);
    // Offsets land mid-block most of the time; lengths cover 0..4096.
    uint64_t offset = rng() % 8192;
    size_t len = static_cast<size_t>(rng() % 4097);
    Bytes pt = RandomBytes(rng, len);

    auto aes = Aes256::Create(key);
    ASSERT_TRUE(aes.ok());

    Bytes reference;
    {
      TierCap cap(CryptoTier::kPortable);
      reference = aes->CtrXor(iv, offset, pt);
    }
    ASSERT_EQ(reference.size(), len);

    for (CryptoTier tier : tiers) {
      TierCap cap(tier);
      Bytes got = aes->CtrXor(iv, offset, pt);
      ASSERT_EQ(got, reference)
          << "tier " << CryptoTierName(tier) << " disagrees with portable: "
          << "offset=" << offset << " len=" << len;
    }
  }
}

TEST(CryptoBackendTest, AesCtrSplitInvariance) {
  // Encrypting one long buffer must equal encrypting it in arbitrary
  // pieces with matching offsets — this is what exercises every partial
  // head/tail path inside each kernel.
  std::mt19937_64 rng(0x73706c6974ull);
  Bytes key = RandomBytes(rng, 32);
  Bytes iv = RandomBytes(rng, 16);
  Bytes pt = RandomBytes(rng, 2048);
  auto aes = Aes256::Create(key);
  ASSERT_TRUE(aes.ok());

  std::vector<CryptoTier> tiers = ExercisableCryptoTiers();
  for (CryptoTier tier : tiers) {
    TierCap cap(tier);
    Bytes whole = aes->CtrXor(iv, 0, pt);
    for (int trial = 0; trial < 20; ++trial) {
      Bytes pieced(pt.size());
      size_t pos = 0;
      while (pos < pt.size()) {
        size_t n = 1 + static_cast<size_t>(rng() % 96);
        if (n > pt.size() - pos) {
          n = pt.size() - pos;
        }
        aes->CtrXor(iv, pos, pt.data() + pos, n, pieced.data() + pos);
        pos += n;
      }
      ASSERT_EQ(pieced, whole) << "tier " << CryptoTierName(tier);
    }
  }
}

TEST(CryptoBackendTest, AesCtrSp800_38aVectorOnEveryTier) {
  // SP 800-38A F.5.5 CTR-AES256.Encrypt.
  Bytes key = *FromHex(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  Bytes iv = *FromHex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes pt = *FromHex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  Bytes expect = *FromHex(
      "601ec313775789a5b7a7f504bbf3d228"
      "f443e3ca4d62b59aca84e990cacaf5c5"
      "2b0930daa23de94ce87017ba2d84988d"
      "dfc9c58db67aada613c2dd08457941a6");
  auto aes = Aes256::Create(key);
  ASSERT_TRUE(aes.ok());

  for (CryptoTier tier : ExercisableCryptoTiers()) {
    TierCap cap(tier);
    EXPECT_EQ(aes->CtrXor(iv, 0, pt), expect) << CryptoTierName(tier);
    // Same vector entered mid-stream: skip the first block by offset.
    Bytes tail_pt(pt.begin() + 16, pt.end());
    Bytes tail_ct(expect.begin() + 16, expect.end());
    EXPECT_EQ(aes->CtrXor(iv, 16, tail_pt), tail_ct) << CryptoTierName(tier);
  }
}

// --- ChaCha20 --------------------------------------------------------------

TEST(CryptoBackendTest, ChaCha20DifferentialRandomized) {
  std::mt19937_64 rng(0x63686163'686131ull);
  std::vector<CryptoTier> tiers = AcceleratedTiers();

  for (int trial = 0; trial < 60; ++trial) {
    Bytes key = RandomBytes(rng, 32);
    Bytes nonce = RandomBytes(rng, 12);
    uint32_t counter = static_cast<uint32_t>(rng());
    // 0..20 blocks covers the scalar tail, one SSE2 batch, and one AVX2
    // batch plus remainder.
    size_t nblocks = static_cast<size_t>(rng() % 21);

    Bytes reference(nblocks * 64);
    {
      TierCap cap(CryptoTier::kPortable);
      ChaCha20Blocks(key.data(), counter, nonce.data(), nblocks,
                     reference.data());
    }
    for (CryptoTier tier : tiers) {
      TierCap cap(tier);
      Bytes got(nblocks * 64);
      ChaCha20Blocks(key.data(), counter, nonce.data(), nblocks, got.data());
      ASSERT_EQ(got, reference)
          << "tier " << CryptoTierName(tier) << " counter=" << counter
          << " nblocks=" << nblocks;
    }
  }
}

TEST(CryptoBackendTest, ChaCha20CounterWrapMatchesPortable) {
  // RFC 8439 counters wrap mod 2^32; the SIMD kernels add lane offsets and
  // must wrap the same way.
  Bytes key = *FromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = *FromHex("000000090000004a00000000");
  for (uint32_t counter : {0xFFFFFFFFu, 0xFFFFFFF9u, 0xFFFFFFFCu}) {
    Bytes reference(16 * 64);
    {
      TierCap cap(CryptoTier::kPortable);
      ChaCha20Blocks(key.data(), counter, nonce.data(), 16, reference.data());
    }
    for (CryptoTier tier : AcceleratedTiers()) {
      TierCap cap(tier);
      Bytes got(16 * 64);
      ChaCha20Blocks(key.data(), counter, nonce.data(), 16, got.data());
      ASSERT_EQ(got, reference)
          << "tier " << CryptoTierName(tier) << " counter=" << counter;
    }
  }
}

TEST(CryptoBackendTest, ChaCha20Rfc8439VectorOnEveryTier) {
  // RFC 8439 §2.3.2 block-function vector (counter = 1), checked as the
  // first block of a batched run so the SIMD kernels are the code under
  // test, not the scalar fallback.
  Bytes key = *FromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = *FromHex("000000090000004a00000000");
  Bytes expect = *FromHex(
      "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
      "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");

  for (CryptoTier tier : ExercisableCryptoTiers()) {
    TierCap cap(tier);
    Bytes got(16 * 64);
    ChaCha20Blocks(key.data(), 1, nonce.data(), 16, got.data());
    Bytes first(got.begin(), got.begin() + 64);
    EXPECT_EQ(first, expect) << CryptoTierName(tier);
  }
}

// --- SHA-256 / HMAC --------------------------------------------------------

TEST(CryptoBackendTest, Sha256DifferentialRandomized) {
  std::mt19937_64 rng(0x73686132'3536ull);
  std::vector<CryptoTier> tiers = AcceleratedTiers();

  for (int trial = 0; trial < 100; ++trial) {
    size_t len = static_cast<size_t>(rng() % 4097);
    Bytes data = RandomBytes(rng, len);

    Sha256::Digest reference;
    {
      TierCap cap(CryptoTier::kPortable);
      reference = Sha256::Hash(data);
    }
    for (CryptoTier tier : tiers) {
      TierCap cap(tier);
      EXPECT_EQ(Sha256::Hash(data), reference)
          << "tier " << CryptoTierName(tier) << " len=" << len;
      // Chunked updates must agree with the one-shot digest.
      Sha256 chunked;
      size_t pos = 0;
      while (pos < len) {
        size_t n = 1 + static_cast<size_t>(rng() % 200);
        if (n > len - pos) {
          n = len - pos;
        }
        chunked.Update(data.data() + pos, n);
        pos += n;
      }
      EXPECT_EQ(chunked.Finish(), reference)
          << "chunked tier " << CryptoTierName(tier) << " len=" << len;
    }
  }
}

TEST(CryptoBackendTest, Sha256Fips180VectorsOnEveryTier) {
  struct Vector {
    std::string_view message;
    std::string_view digest_hex;
  };
  const Vector kVectors[] = {
      {"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
      {"abc",
       "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
  };
  for (CryptoTier tier : ExercisableCryptoTiers()) {
    TierCap cap(tier);
    for (const Vector& v : kVectors) {
      Sha256::Digest d = Sha256::Hash(v.message);
      EXPECT_EQ(ToHex(d.data(), d.size()), v.digest_hex)
          << CryptoTierName(tier);
    }
    // FIPS 180-4 one-million-'a' vector: long enough that the multi-block
    // bulk path (and the SHA-NI 4-blocks-in-flight loop) does all the work.
    Bytes million(1000000, 'a');
    Sha256::Digest d = Sha256::Hash(million);
    EXPECT_EQ(ToHex(d.data(), d.size()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")
        << CryptoTierName(tier);
  }
}

TEST(CryptoBackendTest, HmacRfc4231VectorsOnEveryTier) {
  // RFC 4231 test cases 1 and 2, via both the one-shot helper and the
  // midstate-caching Hmac class.
  struct Vector {
    Bytes key;
    Bytes data;
    std::string_view mac_hex;
  };
  const Vector kVectors[] = {
      {Bytes(20, 0x0b), *FromHex("4869205468657265"),
       "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
      {*FromHex("4a656665"),
       *FromHex("7768617420646f2079612077616e7420666f72206e6f7468696e673f"),
       "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
  };
  for (CryptoTier tier : ExercisableCryptoTiers()) {
    TierCap cap(tier);
    for (const Vector& v : kVectors) {
      EXPECT_EQ(ToHex(HmacSha256(v.key, v.data)), v.mac_hex)
          << CryptoTierName(tier);
      Hmac hmac(v.key);
      EXPECT_EQ(ToHex(hmac.Sign(v.data)), v.mac_hex) << CryptoTierName(tier);
      EXPECT_TRUE(hmac.Verify(v.data, *FromHex(std::string(v.mac_hex))));
    }
  }
}

TEST(CryptoBackendTest, HmacClassMatchesOneShotAcrossTiers) {
  std::mt19937_64 rng(0x686d6163ull);
  for (CryptoTier tier : ExercisableCryptoTiers()) {
    TierCap cap(tier);
    for (int trial = 0; trial < 20; ++trial) {
      Bytes key = RandomBytes(rng, 1 + static_cast<size_t>(rng() % 100));
      Bytes data = RandomBytes(rng, static_cast<size_t>(rng() % 500));
      Hmac hmac(key);
      EXPECT_EQ(hmac.Sign(data), HmacSha256(key, data));
    }
  }
}

}  // namespace
}  // namespace keypad
