// End-to-end restore-after-theft (DESIGN.md §12): the laptop replicates
// its volume to the cloud with write-back, gets stolen, the owner revokes
// it, a replacement device rebuilds the volume byte-for-byte from the
// cloud + key service, and the forensic report proves the stolen device's
// post-revocation opens were all denied.

#include <gtest/gtest.h>

#include <string>

#include "src/encfs/durability_harness.h"
#include "src/keypad/deployment.h"

namespace keypad {
namespace {

DeploymentOptions RestoreOpts() {
  DeploymentOptions options;
  options.profile = BroadbandProfile();
  options.config.ibe_enabled = false;
  options.cloud_backup = true;
  return options;
}

void PopulateVolume(KeypadFs& fs) {
  ASSERT_TRUE(fs.Mkdir("/docs").ok());
  ASSERT_TRUE(fs.Mkdir("/docs/drafts").ok());
  for (int i = 0; i < 5; ++i) {
    std::string path = "/docs/report" + std::to_string(i) + ".txt";
    ASSERT_TRUE(fs.Create(path).ok());
    Bytes body(64 + static_cast<size_t>(i) * 37,
               static_cast<uint8_t>('a' + i));
    ASSERT_TRUE(fs.WriteAll(path, body).ok());
  }
  ASSERT_TRUE(fs.Create("/docs/drafts/memo.txt").ok());
  ASSERT_TRUE(fs.WriteAll("/docs/drafts/memo.txt", BytesOf("confidential"))
                  .ok());
  // Some churn so the cloud has seen deletes and renames, not just puts.
  ASSERT_TRUE(fs.Create("/scratch.tmp").ok());
  ASSERT_TRUE(fs.Unlink("/scratch.tmp").ok());
  ASSERT_TRUE(
      fs.Rename("/docs/report4.txt", "/docs/drafts/report4.txt").ok());
}

TEST(RestoreAfterTheftTest, ReplacementDeviceRebuildsByteIdenticalVolume) {
  Deployment dep(RestoreOpts());
  PopulateVolume(dep.fs());
  ASSERT_TRUE(dep.BackupNow().ok());
  EXPECT_GE(dep.write_back()->generation(), 1u);

  auto before = CaptureLogicalVolume(dep.fs());
  ASSERT_TRUE(before.ok());
  ASSERT_GE(before->size(), 8u);

  // Theft: past the cache-exposure window, then revocation.
  dep.queue().AdvanceBy(dep.fs().config().texp * 2 + SimDuration::Minutes(5));
  SimTime t_loss = dep.queue().Now();
  dep.ReportDeviceLost();

  // The thief mounts the stolen image with the stolen password and
  // credentials, but every key fetch is denied post-revocation.
  auto attacker = dep.MakeAttacker();
  auto creds = attacker.StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep.MakeAttackerClients(*creds);
  ASSERT_TRUE(clients.ok());
  auto thief_fs = attacker.MountOnline(clients->services, RestoreOpts().config);
  ASSERT_TRUE(thief_fs.ok());
  EXPECT_FALSE((*thief_fs)->ReadAll("/docs/report0.txt").ok());
  EXPECT_FALSE((*thief_fs)->ReadAll("/docs/drafts/memo.txt").ok());

  // Replacement hardware: fresh block device, new service identity, volume
  // rebuilt from the last committed cloud generation.
  auto replacement = dep.EnrollReplacementDevice("laptop-2");
  ASSERT_TRUE(replacement.ok()) << replacement.status();
  EXPECT_EQ(replacement->restore.generation, dep.write_back()->generation());
  EXPECT_GT(replacement->restore.objects_fetched, 0u);
  EXPECT_EQ(replacement->restore.tag_failures, 0u);

  auto after = CaptureLogicalVolume(*replacement->fs);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after) << "restored volume must be byte-identical";

  // The replacement is a full citizen: it keeps working under its own
  // identity (reads audited as laptop-2, new files provisioned normally).
  ASSERT_TRUE(replacement->fs->Create("/docs/after-restore.txt").ok());
  ASSERT_TRUE(
      replacement->fs->WriteAll("/docs/after-restore.txt", BytesOf("back"))
          .ok());
  auto reread = replacement->fs->ReadAll("/docs/after-restore.txt");
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(*reread, BytesOf("back"));

  // Forensics on the stolen identity: the thief's opens show up as denied
  // attempts; nothing was actually granted after the loss. The restore
  // re-bindings are control records and never count as accesses.
  auto report =
      dep.auditor().BuildReport(dep.device_id(), t_loss, dep.fs().config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->key_log_verified);
  EXPECT_GE(report->denied_attempts, 2u);
  for (const auto& entry : report->compromised) {
    EXPECT_FALSE(entry.accessed_after_loss)
        << entry.path_at_loss << " was granted post-revocation";
  }
}

TEST(RestoreAfterTheftTest, EnrollmentRefusesWhileDeviceStillActive) {
  Deployment dep(RestoreOpts());
  PopulateVolume(dep.fs());
  ASSERT_TRUE(dep.BackupNow().ok());

  // No ReportDeviceLost: the key tier must refuse to re-bind keys away
  // from a still-enabled device.
  auto replacement = dep.EnrollReplacementDevice("laptop-2");
  EXPECT_FALSE(replacement.ok());
  EXPECT_EQ(replacement.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RestoreAfterTheftTest, EnrollmentRequiresCloudBackup) {
  DeploymentOptions options = RestoreOpts();
  options.cloud_backup = false;
  Deployment dep(options);
  dep.ReportDeviceLost();
  auto replacement = dep.EnrollReplacementDevice("laptop-2");
  EXPECT_FALSE(replacement.ok());
}

TEST(RestoreAfterTheftTest, RestoreWorksAcrossReplicatedKeyTier) {
  DeploymentOptions options = RestoreOpts();
  options.key_replicas = 3;
  Deployment dep(options);
  PopulateVolume(dep.fs());
  ASSERT_TRUE(dep.BackupNow().ok());
  dep.queue().AdvanceBy(SimDuration::Minutes(2));
  dep.ReportDeviceLost();

  auto replacement = dep.EnrollReplacementDevice("laptop-2");
  ASSERT_TRUE(replacement.ok()) << replacement.status();
  // The transfer went through the replica set, so the re-bound keys reach
  // the backups before any of them can lead; reads route via the
  // replica-aware stub.
  auto body = replacement->fs->ReadAll("/docs/report0.txt");
  ASSERT_TRUE(body.ok()) << body.status();
  EXPECT_EQ(body->size(), 64u);

  // Every replica's audit chain still verifies after the restore records.
  auto report = dep.auditor().BuildReport(dep.device_id(), dep.queue().Now(),
                                          dep.fs().config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->replica_logs_verified);
}

}  // namespace
}  // namespace keypad
