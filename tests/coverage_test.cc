// Tests for the coverage-policy helpers (§3.6).

#include <gtest/gtest.h>

#include "src/keypad/coverage.h"

namespace keypad {
namespace {

TEST(CoverageTest, CoverDirectories) {
  CoveragePolicy policy = CoverDirectories({"/home", "/tmp"});
  EXPECT_TRUE(policy("/home/alice/taxes.pdf"));
  EXPECT_TRUE(policy("/tmp/scratch"));
  EXPECT_TRUE(policy("/home"));
  EXPECT_FALSE(policy("/usr/lib/libc.so"));
  EXPECT_FALSE(policy("/homework/essay.txt"));  // Prefix, not ancestor.
}

TEST(CoverageTest, CoverHomeAndTmpDefault) {
  CoveragePolicy policy = CoverHomeAndTmp();
  EXPECT_TRUE(policy("/home/x"));
  EXPECT_TRUE(policy("/tmp/y"));
  EXPECT_FALSE(policy("/var/log/syslog"));
}

TEST(CoverageTest, CoverAllExcept) {
  CoveragePolicy policy = CoverAllExcept({"/usr", "/lib", "/etc"});
  EXPECT_TRUE(policy("/home/secret"));
  EXPECT_TRUE(policy("/data/db.sqlite"));
  EXPECT_FALSE(policy("/usr/bin/ls"));
  EXPECT_FALSE(policy("/etc/passwd"));
}

TEST(CoverageTest, CoverExtensions) {
  CoveragePolicy policy = CoverExtensions({".pdf", ".xls"});
  EXPECT_TRUE(policy("/anywhere/at/all/taxes.pdf"));
  EXPECT_TRUE(policy("/a/payroll.xls"));
  EXPECT_FALSE(policy("/a/notes.txt"));
  EXPECT_FALSE(policy("/a/pdf"));  // Extension, not suffix of the name.
}

}  // namespace
}  // namespace keypad
