// Stress/property tests for the event queue — the substrate every
// experiment's determinism rests on.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/random.h"

namespace keypad {
namespace {

TEST(EventQueueStressTest, RandomScheduleCancelPreservesTimeOrder) {
  SimRandom rng(1);
  EventQueue q;
  std::vector<SimTime> fired;
  std::vector<EventQueue::EventId> cancellable;

  for (int i = 0; i < 5000; ++i) {
    SimTime at(static_cast<int64_t>(rng.UniformU64(1000000)));
    auto id = q.Schedule(at, [&fired, &q] { fired.push_back(q.Now()); });
    if (rng.Bernoulli(0.3)) {
      cancellable.push_back(id);
    }
  }
  size_t cancelled = 0;
  for (auto id : cancellable) {
    cancelled += q.Cancel(id);
  }
  q.RunUntilIdle();

  EXPECT_EQ(fired.size(), 5000 - cancelled);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(EventQueueStressTest, HandlersSchedulingHandlersTerminate) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 1000) {
      q.ScheduleAfter(SimDuration(1), chain);
    }
  };
  q.ScheduleAfter(SimDuration(1), chain);
  q.RunUntilIdle();
  EXPECT_EQ(depth, 1000);
  EXPECT_EQ(q.Now(), SimTime(1000));
}

TEST(EventQueueStressTest, InterleavedAdvanceAndRunUntilFlag) {
  SimRandom rng(2);
  EventQueue q;
  int fired = 0;
  for (int round = 0; round < 200; ++round) {
    bool flag = false;
    SimDuration delay(static_cast<int64_t>(rng.UniformU64(1000) + 1));
    q.ScheduleAfter(delay, [&] {
      ++fired;
      flag = true;
    });
    // Extra background events.
    q.ScheduleAfter(SimDuration(static_cast<int64_t>(rng.UniformU64(2000))),
                    [&] { ++fired; });
    if (rng.Bernoulli(0.5)) {
      EXPECT_TRUE(q.RunUntilFlag(&flag));
      EXPECT_TRUE(flag);
    } else {
      q.AdvanceBy(SimDuration(3000));
      EXPECT_TRUE(flag);
    }
  }
  q.RunUntilIdle();
  EXPECT_EQ(fired, 400);
}

TEST(EventQueueStressTest, PastDeadlinesClampToNow) {
  EventQueue q;
  q.AdvanceBy(SimDuration::Seconds(100));
  bool ran = false;
  // Scheduling in the past executes at (not before) the current instant.
  q.Schedule(SimTime(5), [&] {
    ran = true;
    EXPECT_EQ(q.Now(), SimTime::Epoch() + SimDuration::Seconds(100));
  });
  q.RunUntilIdle();
  EXPECT_TRUE(ran);
}

TEST(EventQueueStressTest, FifoTieBreakAtScale) {
  // Thousands of events on a handful of timestamps: within each timestamp
  // they must fire in exact insertion order, across slab reuse and heap
  // restructuring.
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 3000; ++i) {
    q.Schedule(SimTime(100 * (i % 3)), [&fired, i] { fired.push_back(i); });
  }
  q.RunUntilIdle();
  ASSERT_EQ(fired.size(), 3000u);
  // Expected: all i ≡ 0 (mod 3) in increasing order, then ≡ 1, then ≡ 2.
  size_t at = 0;
  for (int wave = 0; wave < 3; ++wave) {
    int prev = -1;
    for (int n = 0; n < 1000; ++n, ++at) {
      EXPECT_EQ(fired[at] % 3, wave);
      EXPECT_GT(fired[at], prev);
      prev = fired[at];
    }
  }
}

TEST(EventQueueStressTest, CancelDuringNestedPump) {
  // A handler that is itself pumping the queue cancels a later event; the
  // cancelled event must not fire from either the nested or the outer loop,
  // and pending_count must track it.
  EventQueue q;
  int cancelled_ran = 0;
  int after_ran = 0;
  EventQueue::EventId victim =
      q.Schedule(SimTime(300), [&] { ++cancelled_ran; });
  q.Schedule(SimTime(100), [&] {
    bool flag = false;
    q.Schedule(SimTime(200), [&] { flag = true; });
    EXPECT_TRUE(q.RunUntilFlag(&flag));
    EXPECT_TRUE(q.IsPending(victim));
    EXPECT_TRUE(q.Cancel(victim));
    EXPECT_FALSE(q.IsPending(victim));
  });
  q.Schedule(SimTime(400), [&] { ++after_ran; });
  q.RunUntilIdle();
  EXPECT_EQ(cancelled_ran, 0);
  EXPECT_EQ(after_ran, 1);
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueueStressTest, ScheduleAfterFromRunningEventIsRelative) {
  // ScheduleAfter inside a running event is relative to that event's fire
  // time, and a zero delay fires after the current event returns, at the
  // same timestamp, in FIFO order with anything else already due then.
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime(100), [&] {
    order.push_back(1);
    q.ScheduleAfter(SimDuration(0), [&] { order.push_back(3); });
    q.ScheduleAfter(SimDuration(50), [&] { order.push_back(4); });
  });
  q.Schedule(SimTime(100), [&] { order.push_back(2); });
  q.RunUntilIdle();
  EXPECT_EQ(order, std::vector<int>({1, 2, 3, 4}));
  EXPECT_EQ(q.Now(), SimTime(150));
}

TEST(EventQueueStressTest, PendingCountTracksScheduleCancelRun) {
  EventQueue q;
  std::vector<EventQueue::EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.Schedule(SimTime(10 * (i + 1)), [] {}));
  }
  EXPECT_EQ(q.pending_count(), 100u);
  for (int i = 0; i < 100; i += 2) {
    EXPECT_TRUE(q.Cancel(ids[i]));
  }
  EXPECT_EQ(q.pending_count(), 50u);
  // Double-cancel must not double-decrement.
  EXPECT_FALSE(q.Cancel(ids[0]));
  EXPECT_EQ(q.pending_count(), 50u);
  q.AdvanceBy(SimDuration(500));  // Runs the odd-indexed first half.
  EXPECT_EQ(q.pending_count(), 25u);
  q.RunUntilIdle();
  EXPECT_EQ(q.pending_count(), 0u);
  EXPECT_EQ(q.executed_count(), 50u);
}

TEST(EventQueueStressTest, StaleIdsNeverResolveAfterSlotReuse) {
  // An EventId from a fired (or cancelled) event must stay dead even after
  // its slab slot has been recycled by later events — the generation tag in
  // the id must not alias the slot's new occupant.
  EventQueue q;
  EventQueue::EventId fired_id = q.Schedule(SimTime(1), [] {});
  EventQueue::EventId cancelled_id = q.Schedule(SimTime(2), [] {});
  EXPECT_TRUE(q.Cancel(cancelled_id));
  q.RunUntilIdle();
  // Recycle every slot many times over.
  int ran = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 400; ++i) {
      q.ScheduleAfter(SimDuration(1), [&ran] { ++ran; });
    }
    q.RunUntilIdle();
  }
  EXPECT_EQ(ran, 4000);
  EXPECT_FALSE(q.IsPending(fired_id));
  EXPECT_FALSE(q.IsPending(cancelled_id));
  EXPECT_FALSE(q.Cancel(fired_id));
  EXPECT_FALSE(q.Cancel(cancelled_id));
  EXPECT_FALSE(q.Cancel(EventQueue::kInvalidEvent));
}

TEST(EventQueueStressTest, CancelStormStaysOrdered) {
  // Heavy cancellation (the RPC-timer pattern: schedule a timeout, cancel
  // it on completion) interleaved with firing; survivors stay time-ordered
  // and tombstones never fire.
  SimRandom rng(3);
  EventQueue q;
  std::vector<SimTime> fired;
  std::vector<EventQueue::EventId> open;
  size_t cancelled = 0, scheduled = 0;
  for (int round = 0; round < 300; ++round) {
    for (int i = 0; i < 50; ++i) {
      SimTime at = q.Now() + SimDuration(static_cast<int64_t>(
                                 rng.UniformU64(5000) + 1));
      open.push_back(q.Schedule(at, [&fired, &q] { fired.push_back(q.Now()); }));
      ++scheduled;
    }
    // Cancel a random half of whatever is still open.
    for (size_t i = 0; i < open.size(); ++i) {
      if (rng.Bernoulli(0.5)) {
        cancelled += q.Cancel(open[i]);
      }
    }
    open.clear();
    q.AdvanceBy(SimDuration(static_cast<int64_t>(rng.UniformU64(3000))));
  }
  q.RunUntilIdle();
  EXPECT_EQ(fired.size(), scheduled - cancelled);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(q.pending_count(), 0u);
}

TEST(EventQueueStressTest, DeterministicAcrossRuns) {
  auto run_once = [](uint64_t seed) {
    SimRandom rng(seed);
    EventQueue q;
    uint64_t signature = 0;
    for (int i = 0; i < 1000; ++i) {
      SimTime at(static_cast<int64_t>(rng.UniformU64(100000)));
      q.Schedule(at, [&signature, &q] {
        signature = signature * 1099511628211ull +
                    static_cast<uint64_t>(q.Now().nanos());
      });
    }
    q.RunUntilIdle();
    return signature;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

}  // namespace
}  // namespace keypad
