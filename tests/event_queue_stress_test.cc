// Stress/property tests for the event queue — the substrate every
// experiment's determinism rests on.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/random.h"

namespace keypad {
namespace {

TEST(EventQueueStressTest, RandomScheduleCancelPreservesTimeOrder) {
  SimRandom rng(1);
  EventQueue q;
  std::vector<SimTime> fired;
  std::vector<EventQueue::EventId> cancellable;

  for (int i = 0; i < 5000; ++i) {
    SimTime at(static_cast<int64_t>(rng.UniformU64(1000000)));
    auto id = q.Schedule(at, [&fired, &q] { fired.push_back(q.Now()); });
    if (rng.Bernoulli(0.3)) {
      cancellable.push_back(id);
    }
  }
  size_t cancelled = 0;
  for (auto id : cancellable) {
    cancelled += q.Cancel(id);
  }
  q.RunUntilIdle();

  EXPECT_EQ(fired.size(), 5000 - cancelled);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(EventQueueStressTest, HandlersSchedulingHandlersTerminate) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 1000) {
      q.ScheduleAfter(SimDuration(1), chain);
    }
  };
  q.ScheduleAfter(SimDuration(1), chain);
  q.RunUntilIdle();
  EXPECT_EQ(depth, 1000);
  EXPECT_EQ(q.Now(), SimTime(1000));
}

TEST(EventQueueStressTest, InterleavedAdvanceAndRunUntilFlag) {
  SimRandom rng(2);
  EventQueue q;
  int fired = 0;
  for (int round = 0; round < 200; ++round) {
    bool flag = false;
    SimDuration delay(static_cast<int64_t>(rng.UniformU64(1000) + 1));
    q.ScheduleAfter(delay, [&] {
      ++fired;
      flag = true;
    });
    // Extra background events.
    q.ScheduleAfter(SimDuration(static_cast<int64_t>(rng.UniformU64(2000))),
                    [&] { ++fired; });
    if (rng.Bernoulli(0.5)) {
      EXPECT_TRUE(q.RunUntilFlag(&flag));
      EXPECT_TRUE(flag);
    } else {
      q.AdvanceBy(SimDuration(3000));
      EXPECT_TRUE(flag);
    }
  }
  q.RunUntilIdle();
  EXPECT_EQ(fired, 400);
}

TEST(EventQueueStressTest, PastDeadlinesClampToNow) {
  EventQueue q;
  q.AdvanceBy(SimDuration::Seconds(100));
  bool ran = false;
  // Scheduling in the past executes at (not before) the current instant.
  q.Schedule(SimTime(5), [&] {
    ran = true;
    EXPECT_EQ(q.Now(), SimTime::Epoch() + SimDuration::Seconds(100));
  });
  q.RunUntilIdle();
  EXPECT_TRUE(ran);
}

TEST(EventQueueStressTest, DeterministicAcrossRuns) {
  auto run_once = [](uint64_t seed) {
    SimRandom rng(seed);
    EventQueue q;
    uint64_t signature = 0;
    for (int i = 0; i < 1000; ++i) {
      SimTime at(static_cast<int64_t>(rng.UniformU64(100000)));
      q.Schedule(at, [&signature, &q] {
        signature = signature * 1099511628211ull +
                    static_cast<uint64_t>(q.Now().nanos());
      });
    }
    q.RunUntilIdle();
    return signature;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

}  // namespace
}  // namespace keypad
