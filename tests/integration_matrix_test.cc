// Cross-configuration integration sweep: the full Keypad stack must behave
// correctly under every combination of network profile, IBE mode, prefetch
// policy, and pairing — the matrix a downstream deployment could pick from.
//
// Each configuration runs a miniature end-to-end life cycle (mkdir/create/
// write/read/rename/expire/re-read/audit) and asserts the functional and
// audit invariants hold.

#include <gtest/gtest.h>

#include "src/keypad/deployment.h"

namespace keypad {
namespace {

struct MatrixParams {
  int rtt_ms;
  bool ibe;
  PrefetchPolicy::Kind prefetch;
  bool paired;
};

class MatrixTest : public ::testing::TestWithParam<MatrixParams> {};

TEST_P(MatrixTest, LifecycleAndAuditInvariants) {
  const MatrixParams& params = GetParam();
  DeploymentOptions options;
  options.profile = CustomRttProfile(SimDuration::Millis(params.rtt_ms));
  options.config.ibe_enabled = params.ibe;
  options.config.prefetch = {params.prefetch, 3, 4};
  options.config.texp = SimDuration::Seconds(100);
  options.paired_phone = params.paired;
  Deployment dep(options);
  auto& fs = dep.fs();

  // Lifecycle.
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  for (int i = 0; i < 6; ++i) {
    std::string path = "/d/f" + std::to_string(i);
    ASSERT_TRUE(fs.Create(path).ok());
    ASSERT_TRUE(fs.WriteAll(path, BytesOf("content" + path)).ok());
  }
  ASSERT_TRUE(fs.Rename("/d/f0", "/d/renamed").ok());
  EXPECT_EQ(StringOf(*fs.ReadAll("/d/renamed")), "content/d/f0");

  // Expire everything; re-read cold.
  dep.queue().AdvanceBy(options.config.texp * 2 + SimDuration::Seconds(2));
  for (int i = 1; i < 6; ++i) {
    auto data = fs.ReadAll("/d/f" + std::to_string(i));
    ASSERT_TRUE(data.ok()) << data.status();
    EXPECT_EQ(StringOf(*data), "content/d/f" + std::to_string(i));
  }
  dep.queue().RunUntilIdle();

  // Logs verify and metadata resolves the rename.
  EXPECT_TRUE(dep.key_service().log().Verify().ok());
  EXPECT_TRUE(dep.metadata_service().log().Verify().ok());
  AuditId renamed_id = fs.ReadHeaderOf("/d/renamed")->audit_id;
  auto path = dep.metadata_service().ResolvePath(dep.device_id(), renamed_id,
                                                 dep.queue().Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/d/renamed");

  // Every file has a creation record at the key service.
  for (int i = 1; i < 6; ++i) {
    AuditId id = fs.ReadHeaderOf("/d/f" + std::to_string(i))->audit_id;
    bool created = false;
    for (const auto& e : dep.key_service().log().entries()) {
      created |= e.audit_id == id && e.op == AccessOp::kCreate;
    }
    EXPECT_TRUE(created) << i;
  }

  // Revocation is effective in every configuration.
  dep.ReportDeviceLost();
  dep.queue().AdvanceBy(options.config.texp * 2 + SimDuration::Seconds(2));
  if (params.paired) {
    // Drain the phone hoard too: it legitimately extends availability.
    dep.queue().AdvanceBy(options.phone_options.hoard_ttl * 2);
  }
  EXPECT_FALSE(fs.ReadAll("/d/renamed").ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatrixTest,
    ::testing::Values(
        MatrixParams{0, false, PrefetchPolicy::Kind::kNone, false},
        MatrixParams{2, false, PrefetchPolicy::Kind::kFullDirOnNthMiss, false},
        MatrixParams{25, true, PrefetchPolicy::Kind::kNone, false},
        MatrixParams{125, true, PrefetchPolicy::Kind::kFullDirOnNthMiss,
                     false},
        MatrixParams{300, true, PrefetchPolicy::Kind::kRandomFromDir, false},
        MatrixParams{300, false, PrefetchPolicy::Kind::kFullDirOnNthMiss,
                     true},
        MatrixParams{300, true, PrefetchPolicy::Kind::kFullDirOnNthMiss,
                     true},
        MatrixParams{25, false, PrefetchPolicy::Kind::kRandomFromDir, true}),
    [](const ::testing::TestParamInfo<MatrixParams>& info) {
      return "Rtt" + std::to_string(info.param.rtt_ms) +
             (info.param.ibe ? "Ibe" : "NoIbe") +
             (info.param.prefetch == PrefetchPolicy::Kind::kNone
                  ? "NoPf"
                  : info.param.prefetch ==
                            PrefetchPolicy::Kind::kFullDirOnNthMiss
                        ? "DirPf"
                        : "RndPf") +
             (info.param.paired ? "Phone" : "Solo");
    });

}  // namespace
}  // namespace keypad
