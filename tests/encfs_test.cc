// Tests for the block device and the EncFS substrate (both encrypted and
// plain "ext3" modes), including the on-medium security properties the
// Keypad threat model depends on.

#include <gtest/gtest.h>

#include "src/blockdev/block_device.h"
#include "src/encfs/encfs.h"

namespace keypad {
namespace {

TEST(BlockDeviceTest, ObjectCrud) {
  BlockDevice dev;
  SecureRandom rng(uint64_t{1});
  ObjectId id = ObjectId::Random(rng);
  EXPECT_FALSE(dev.HasObject(id));
  EXPECT_FALSE(dev.ReadObject(id).ok());

  dev.WriteObject(id, {1, 2, 3});
  EXPECT_TRUE(dev.HasObject(id));
  EXPECT_EQ(*dev.ReadObject(id), (Bytes{1, 2, 3}));
  EXPECT_EQ(dev.ObjectCount(), 1u);

  EXPECT_TRUE(dev.DeleteObject(id).ok());
  EXPECT_FALSE(dev.HasObject(id));
  EXPECT_FALSE(dev.DeleteObject(id).ok());
}

TEST(BlockDeviceTest, SnapshotIsDeepCopy) {
  BlockDevice dev;
  SecureRandom rng(uint64_t{2});
  ObjectId id = ObjectId::Random(rng);
  dev.WriteObject(id, {1});
  BlockDevice snap = dev.Snapshot();
  dev.WriteObject(id, {2});
  EXPECT_EQ(*snap.ReadObject(id), Bytes{1});
  EXPECT_EQ(*dev.ReadObject(id), Bytes{2});
}

class EncFsTest : public ::testing::TestWithParam<bool> {
 protected:
  EncFsTest() {
    EncFs::Options options;
    options.encrypt = GetParam();
    options.costs =
        GetParam() ? FsCostModel::EncFs() : FsCostModel::Ext3();
    auto fs = EncFs::Format(&device_, &queue_, /*rng_seed=*/3, "hunter2",
                            options);
    EXPECT_TRUE(fs.ok());
    fs_ = std::move(*fs);
  }

  EventQueue queue_;
  BlockDevice device_;
  std::unique_ptr<EncFs> fs_;
};

INSTANTIATE_TEST_SUITE_P(EncryptedAndPlain, EncFsTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Encrypted" : "Plain";
                         });

TEST_P(EncFsTest, CreateWriteReadRoundTrip) {
  ASSERT_TRUE(fs_->Create("/hello.txt").ok());
  Bytes data = BytesOf("hello keypad world");
  ASSERT_TRUE(fs_->Write("/hello.txt", 0, data).ok());
  auto read = fs_->ReadAll("/hello.txt");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_P(EncFsTest, RandomAccessReadWrite) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  Bytes data(10000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(fs_->Write("/f", 0, data).ok());

  auto mid = fs_->Read("/f", 4000, 100);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(*mid, Bytes(data.begin() + 4000, data.begin() + 4100));

  // Overwrite a middle range and re-check.
  Bytes patch(50, 0xEE);
  ASSERT_TRUE(fs_->Write("/f", 5000, patch).ok());
  auto re = fs_->Read("/f", 4990, 70);
  ASSERT_TRUE(re.ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ((*re)[i], data[4990 + i]);
  }
  for (int i = 10; i < 60; ++i) {
    EXPECT_EQ((*re)[i], 0xEE);
  }
}

TEST_P(EncFsTest, SparseWriteZeroFillsGap) {
  ASSERT_TRUE(fs_->Create("/sparse").ok());
  ASSERT_TRUE(fs_->Write("/sparse", 100, {0xAB}).ok());
  auto data = fs_->ReadAll("/sparse");
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->size(), 101u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ((*data)[i], 0);
  }
  EXPECT_EQ((*data)[100], 0xAB);
}

TEST_P(EncFsTest, ReadPastEndTruncates) {
  ASSERT_TRUE(fs_->Create("/f").ok());
  ASSERT_TRUE(fs_->Write("/f", 0, BytesOf("abc")).ok());
  auto r = fs_->Read("/f", 1, 100);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(StringOf(*r), "bc");
  auto past = fs_->Read("/f", 10, 5);
  ASSERT_TRUE(past.ok());
  EXPECT_TRUE(past->empty());
}

TEST_P(EncFsTest, DirectoriesAndNestedPaths) {
  ASSERT_TRUE(fs_->Mkdir("/home").ok());
  ASSERT_TRUE(fs_->Mkdir("/home/alice").ok());
  ASSERT_TRUE(fs_->Create("/home/alice/notes.txt").ok());
  ASSERT_TRUE(fs_->WriteAll("/home/alice/notes.txt", BytesOf("hi")).ok());

  auto entries = fs_->Readdir("/home");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "alice");
  EXPECT_TRUE((*entries)[0].is_dir);

  auto inner = fs_->Readdir("/home/alice");
  ASSERT_TRUE(inner.ok());
  ASSERT_EQ(inner->size(), 1u);
  EXPECT_EQ((*inner)[0].name, "notes.txt");
  EXPECT_FALSE((*inner)[0].is_dir);
}

TEST_P(EncFsTest, StatReportsSizeAndKind) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  ASSERT_TRUE(fs_->Create("/d/f").ok());
  ASSERT_TRUE(fs_->Write("/d/f", 0, Bytes(1234, 1)).ok());
  auto fstat = fs_->Stat("/d/f");
  ASSERT_TRUE(fstat.ok());
  EXPECT_FALSE(fstat->is_dir);
  EXPECT_EQ(fstat->size, 1234u);
  auto dstat = fs_->Stat("/d");
  ASSERT_TRUE(dstat.ok());
  EXPECT_TRUE(dstat->is_dir);
  auto rstat = fs_->Stat("/");
  ASSERT_TRUE(rstat.ok());
  EXPECT_TRUE(rstat->is_dir);
}

TEST_P(EncFsTest, RenameFileWithinAndAcrossDirectories) {
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/b").ok());
  ASSERT_TRUE(fs_->Create("/a/f").ok());
  ASSERT_TRUE(fs_->WriteAll("/a/f", BytesOf("payload")).ok());

  ASSERT_TRUE(fs_->Rename("/a/f", "/a/g").ok());
  EXPECT_FALSE(fs_->Stat("/a/f").ok());
  EXPECT_EQ(StringOf(*fs_->ReadAll("/a/g")), "payload");

  ASSERT_TRUE(fs_->Rename("/a/g", "/b/h").ok());
  EXPECT_EQ(StringOf(*fs_->ReadAll("/b/h")), "payload");
  EXPECT_TRUE(fs_->Readdir("/a")->empty());
}

TEST_P(EncFsTest, RenameDirectoryMovesSubtree) {
  ASSERT_TRUE(fs_->Mkdir("/old").ok());
  ASSERT_TRUE(fs_->Create("/old/f").ok());
  ASSERT_TRUE(fs_->Rename("/old", "/new").ok());
  EXPECT_TRUE(fs_->Stat("/new/f").ok());
  EXPECT_FALSE(fs_->Stat("/old").ok());
}

TEST_P(EncFsTest, RenameUnderItselfRejected) {
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  EXPECT_EQ(fs_->Rename("/a", "/a/b/c").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fs_->Rename("/a", "/a").code(), StatusCode::kInvalidArgument);
  // The tree is intact afterwards.
  EXPECT_TRUE(fs_->Stat("/a/b").ok());
}

TEST_P(EncFsTest, UnlinkAndRmdir) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  ASSERT_TRUE(fs_->Create("/d/f").ok());
  EXPECT_EQ(fs_->Rmdir("/d").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(fs_->Unlink("/d/f").ok());
  EXPECT_FALSE(fs_->Stat("/d/f").ok());
  EXPECT_TRUE(fs_->Rmdir("/d").ok());
  EXPECT_FALSE(fs_->Stat("/d").ok());
}

TEST_P(EncFsTest, ErrorCases) {
  EXPECT_EQ(fs_->Create("/nodir/f").code(), StatusCode::kNotFound);
  EXPECT_FALSE(fs_->Create("bad-path").ok());
  ASSERT_TRUE(fs_->Create("/f").ok());
  EXPECT_EQ(fs_->Create("/f").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(fs_->Read("/missing", 0, 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(fs_->Rmdir("/").ok());
  EXPECT_EQ(fs_->Rename("/f", "/f2").ok() && fs_->Rename("/missing", "/x").ok(),
            false);
}

TEST_P(EncFsTest, OperationsChargeVirtualTime) {
  SimTime before = queue_.Now();
  ASSERT_TRUE(fs_->Create("/t").ok());
  ASSERT_TRUE(fs_->Write("/t", 0, Bytes(4096, 1)).ok());
  fs_->Read("/t", 0, 4096).status();
  EXPECT_GT(queue_.Now(), before);
}

TEST(EncFsSecurityTest, MountWithWrongPasswordFails) {
  EventQueue queue;
  BlockDevice device;
  auto fs = EncFs::Format(&device, &queue, 5, "correct horse", {});
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->Create("/secret").ok());

  auto bad = EncFs::Mount(&device, &queue, 6, "wrong pass", {});
  EXPECT_EQ(bad.status().code(), StatusCode::kPermissionDenied);

  auto good = EncFs::Mount(&device, &queue, 7, "correct horse", {});
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE((*good)->Stat("/secret").ok());
}

TEST(EncFsSecurityTest, NoPlaintextOnTheMediumWhenEncrypted) {
  EventQueue queue;
  BlockDevice device;
  auto fs = EncFs::Format(&device, &queue, 8, "pw", {});
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->Mkdir("/confidential_dirname").ok());
  ASSERT_TRUE((*fs)->Create("/confidential_dirname/patient_records.db").ok());
  Bytes content = BytesOf("SSN 123-45-6789 MUST NOT LEAK");
  ASSERT_TRUE(
      (*fs)->WriteAll("/confidential_dirname/patient_records.db", content)
          .ok());

  // Scan every object (and the superblock) for plaintext fragments.
  auto contains = [](const Bytes& haystack, std::string_view needle) {
    return std::search(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end()) != haystack.end();
  };
  Bytes all = device.ReadSuperblock();
  for (const auto& id : device.ListObjects()) {
    Append(all, *device.ReadObject(id));
  }
  EXPECT_FALSE(contains(all, "SSN 123-45-6789"));
  EXPECT_FALSE(contains(all, "patient_records"));
  EXPECT_FALSE(contains(all, "confidential_dirname"));
}

TEST(EncFsSecurityTest, PlainModeLeaksEverything) {
  // Sanity check of the baseline: ext3 mode leaves plaintext on the medium.
  EventQueue queue;
  BlockDevice device;
  EncFs::Options options;
  options.encrypt = false;
  auto fs = EncFs::Format(&device, &queue, 9, "", options);
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->Create("/notes.txt").ok());
  ASSERT_TRUE((*fs)->WriteAll("/notes.txt", BytesOf("TOP SECRET")).ok());

  bool found = false;
  std::string_view needle = "TOP SECRET";
  for (const auto& id : device.ListObjects()) {
    Bytes data = *device.ReadObject(id);
    if (std::search(data.begin(), data.end(), needle.begin(), needle.end()) !=
        data.end()) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(EncFsSecurityTest, RemountSeesPersistedData) {
  EventQueue queue;
  BlockDevice device;
  {
    auto fs = EncFs::Format(&device, &queue, 10, "pw", {});
    ASSERT_TRUE(fs.ok());
    ASSERT_TRUE((*fs)->Mkdir("/d").ok());
    ASSERT_TRUE((*fs)->Create("/d/f").ok());
    ASSERT_TRUE((*fs)->WriteAll("/d/f", BytesOf("persisted")).ok());
  }
  auto fs2 = EncFs::Mount(&device, &queue, 11, "pw", {});
  ASSERT_TRUE(fs2.ok());
  auto data = (*fs2)->ReadAll("/d/f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(StringOf(*data), "persisted");
}

TEST(EncFsSecurityTest, KeypadProtectedHeaderBlocksVanillaUnlock) {
  // Simulate Keypad provisioning by writing a protected header, then verify
  // a vanilla EncFS mount (password-only) cannot produce file contents.
  EventQueue queue;
  BlockDevice device;
  auto fs = EncFs::Format(&device, &queue, 12, "pw", {});
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE((*fs)->Create("/f").ok());

  auto header = (*fs)->ReadHeaderOf("/f");
  ASSERT_TRUE(header.ok());
  FileHeader h = *header;
  h.keypad_protected = true;
  h.key_blob = Bytes(48, 0xEE);  // A wrapped blob, not the raw key.
  ASSERT_TRUE((*fs)->RewriteHeaderForTesting("/f", h).ok());

  auto vanilla = EncFs::Mount(&device, &queue, 14, "pw", {});
  ASSERT_TRUE(vanilla.ok());
  auto read = (*vanilla)->Read("/f", 0, 16);
  EXPECT_EQ(read.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace keypad
