// Tests for the NFS baseline and the workload generators.

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/nfs/nfs.h"
#include "src/workload/apache.h"
#include "src/workload/longhaul.h"
#include "src/workload/office.h"
#include "src/workload/thief.h"

namespace keypad {
namespace {

class NfsTest : public ::testing::Test {
 protected:
  NfsTest()
      : link_(&queue_, BroadbandProfile()),
        rpc_server_(&queue_, SimDuration::Micros(150)),
        server_(&queue_, /*rng_seed=*/1),
        rpc_(&queue_, &link_, &rpc_server_),
        client_(&queue_, &rpc_, {}) {
    server_.BindRpc(&rpc_server_);
  }

  EventQueue queue_;
  NetworkLink link_;
  RpcServer rpc_server_;
  NfsServer server_;
  RpcClient rpc_;
  NfsClient client_;
};

TEST_F(NfsTest, CreateWriteReadRoundTrip) {
  ASSERT_TRUE(client_.Mkdir("/d").ok());
  ASSERT_TRUE(client_.Create("/d/f").ok());
  ASSERT_TRUE(client_.Write("/d/f", 0, BytesOf("remote data")).ok());
  auto read = client_.Read("/d/f", 0, 100);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(StringOf(*read), "remote data");
}

TEST_F(NfsTest, WritesAreBatchedUntilThresholdOrRead) {
  ASSERT_TRUE(client_.Create("/f").ok());
  uint64_t rpcs_after_create = client_.rpcs_sent();
  // Small writes buffer locally: no extra RPCs.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client_.Write("/f", i * 100, Bytes(100, 1)).ok());
  }
  EXPECT_EQ(client_.rpcs_sent(), rpcs_after_create);
  // A read flushes (read-your-writes) with one batch RPC.
  ASSERT_TRUE(client_.Read("/f", 0, 10).ok());
  EXPECT_GT(client_.rpcs_sent(), rpcs_after_create);
}

TEST_F(NfsTest, AttributeCacheAbsorbsRepeatedStats) {
  ASSERT_TRUE(client_.Create("/f").ok());
  client_.Stat("/f").status();
  uint64_t rpcs = client_.rpcs_sent();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_.Stat("/f").ok());
  }
  EXPECT_EQ(client_.rpcs_sent(), rpcs);  // All served from the attr cache.

  // After the TTL the next stat revalidates.
  queue_.AdvanceBy(SimDuration::Seconds(5));
  ASSERT_TRUE(client_.Stat("/f").ok());
  EXPECT_EQ(client_.rpcs_sent(), rpcs + 1);
}

TEST_F(NfsTest, DataCacheServesRepeatedReads) {
  ASSERT_TRUE(client_.Create("/f").ok());
  ASSERT_TRUE(client_.Write("/f", 0, Bytes(8192, 7)).ok());
  ASSERT_TRUE(client_.Read("/f", 0, 100).ok());
  uint64_t rpcs = client_.rpcs_sent();
  // Repeated reads inside the attr TTL: no network.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client_.Read("/f", 100 * i, 50).ok());
  }
  EXPECT_EQ(client_.rpcs_sent(), rpcs);
}

TEST_F(NfsTest, RenameAndUnlinkPropagate) {
  ASSERT_TRUE(client_.Create("/a").ok());
  ASSERT_TRUE(client_.Write("/a", 0, BytesOf("x")).ok());
  ASSERT_TRUE(client_.Rename("/a", "/b").ok());
  EXPECT_FALSE(client_.Stat("/a").ok());
  EXPECT_TRUE(client_.Stat("/b").ok());
  ASSERT_TRUE(client_.Unlink("/b").ok());
  EXPECT_FALSE(server_.fs().Stat("/b").ok());
}

TEST_F(NfsTest, ReaddirReflectsServerState) {
  ASSERT_TRUE(client_.Mkdir("/d").ok());
  ASSERT_TRUE(client_.Create("/d/x").ok());
  ASSERT_TRUE(client_.Create("/d/y").ok());
  auto entries = client_.Readdir("/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

TEST_F(NfsTest, StaleAttributeCacheMissesRemoteChangeUntilTtl) {
  // Close-to-open-ish consistency: a change made directly at the server
  // (another client) is invisible while this client's attribute cache is
  // fresh, and picked up after the TTL — the caching behaviour that both
  // helps NFS's performance and weakens its audit story (§5.1.3).
  ASSERT_TRUE(client_.Create("/shared").ok());
  ASSERT_TRUE(client_.Write("/shared", 0, BytesOf("v1")).ok());
  ASSERT_TRUE(client_.Read("/shared", 0, 10).ok());  // Caches data+attrs.

  // A second client on its own link writes the file through the server.
  NetworkLink link2(&queue_, LanProfile());
  RpcClient rpc2(&queue_, &link2, &rpc_server_);
  NfsClient other(&queue_, &rpc2, {});
  ASSERT_TRUE(other.Write("/shared", 0, BytesOf("v2")).ok());
  ASSERT_TRUE(other.Read("/shared", 0, 2).ok());  // Flush write-behind.

  auto stale = client_.Read("/shared", 0, 10);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(StringOf(*stale), "v1") << "attr cache should mask the change";

  queue_.AdvanceBy(SimDuration::Seconds(5));  // Past the 3 s TTL.
  auto fresh = client_.Read("/shared", 0, 10);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(StringOf(*fresh), "v2");
}

TEST_F(NfsTest, HighRttMakesEveryRevalidationExpensive) {
  // The Fig. 10 mechanism in miniature: with a cold attr cache every read
  // of a different file pays at least one RTT.
  ASSERT_TRUE(client_.Mkdir("/d").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client_.Create("/d/f" + std::to_string(i)).ok());
    ASSERT_TRUE(client_.Write("/d/f" + std::to_string(i), 0, Bytes(10, 1))
                    .ok());
  }
  queue_.AdvanceBy(SimDuration::Seconds(10));  // Cold caches.
  SimTime t0 = queue_.Now();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client_.Read("/d/f" + std::to_string(i), 0, 4).ok());
  }
  // 5 files × (getattr + read_all) ≈ 10 × 25 ms.
  EXPECT_GE((queue_.Now() - t0).millis(), 5 * 25);
}

// --- Workload generators. -------------------------------------------------------

TEST(ApacheWorkloadTest, OpCountsMatchThePapersScale) {
  ApacheWorkload workload = MakeApacheWorkload({}, /*seed=*/1);
  size_t content = workload.compile.ContentOps();
  // Paper: 75,744 reads+writes. Same order, within ~20%.
  EXPECT_GT(content, 60000u);
  EXPECT_LT(content, 90000u);
  // Paper: 932 blocking metadata requests (+ mkdirs).
  size_t metadata = workload.compile.MetadataOps();
  EXPECT_GT(metadata, 800u);
  EXPECT_LT(metadata, 1200u);
  // Compute budget ~46 s.
  EXPECT_NEAR(workload.compile.TotalCompute().seconds_f(), 45.8, 1.0);
}

TEST(ApacheWorkloadTest, DeterministicForSeed) {
  ApacheWorkload a = MakeApacheWorkload({}, 7);
  ApacheWorkload b = MakeApacheWorkload({}, 7);
  ASSERT_EQ(a.compile.ops.size(), b.compile.ops.size());
  EXPECT_EQ(a.compile.ops[100].path, b.compile.ops[100].path);
}

TEST(ApacheWorkloadTest, RunsCleanlyOnPlainFs) {
  EventQueue queue;
  BlockDevice device;
  EncFs::Options options;
  options.encrypt = false;
  options.costs = FsCostModel::Ext3();
  auto fs = EncFs::Format(&device, &queue, 2, "", options);
  ASSERT_TRUE(fs.ok());
  ApacheParams small;
  small.modules = 3;
  small.units_per_module = 4;
  small.shared_headers = 8;
  small.headers_per_unit = 6;
  small.local_headers = 3;
  ApacheWorkload workload = MakeApacheWorkload(small, 3);
  TraceRunner runner(fs->get(), &queue);
  auto setup = runner.Run(workload.setup);
  EXPECT_EQ(setup.failures, 0u) << setup.first_failure;
  auto compile = runner.Run(workload.compile);
  EXPECT_EQ(compile.failures, 0u) << compile.first_failure;
  EXPECT_GT(compile.elapsed.seconds_f(), 1.0);
}

TEST(OfficeWorkloadTest, SixteenTasksRunCleanly) {
  EventQueue queue;
  BlockDevice device;
  auto fs = EncFs::Format(&device, &queue, 4, "pw", {});
  ASSERT_TRUE(fs.ok());
  OfficeWorkloads office = MakeOfficeWorkloads(5);
  ASSERT_EQ(office.tasks.size(), 16u);
  TraceRunner runner(fs->get(), &queue);
  auto setup = runner.Run(office.setup);
  ASSERT_EQ(setup.failures, 0u) << setup.first_failure;
  for (const auto& task : office.tasks) {
    auto result = runner.Run(task.trace);
    EXPECT_EQ(result.failures, 0u)
        << task.application << "/" << task.task << ": "
        << result.first_failure;
  }
}

TEST(OfficeWorkloadTest, EncFsTimesApproximatePaperColumn) {
  EventQueue queue;
  BlockDevice device;
  auto fs = EncFs::Format(&device, &queue, 6, "pw", {});
  ASSERT_TRUE(fs.ok());
  OfficeWorkloads office = MakeOfficeWorkloads(7);
  TraceRunner runner(fs->get(), &queue);
  ASSERT_EQ(runner.Run(office.setup).failures, 0u);
  for (const auto& task : office.tasks) {
    SimTime t0 = queue.Now();
    ASSERT_EQ(runner.Run(task.trace).failures, 0u);
    double measured = (queue.Now() - t0).seconds_f();
    // Within 0.3 s or 50% of the paper's EncFS column.
    double tolerance = std::max(0.3, task.paper_encfs_seconds * 0.5);
    EXPECT_NEAR(measured, task.paper_encfs_seconds, tolerance)
        << task.application << "/" << task.task;
  }
}

TEST(Fig9WorkloadTest, FiveWorkloadsRunCleanly) {
  auto workloads = MakeFig9Workloads(8);
  ASSERT_EQ(workloads.size(), 5u);
  for (const auto& w : workloads) {
    EventQueue queue;
    BlockDevice device;
    auto fs = EncFs::Format(&device, &queue, 9, "pw", {});
    ASSERT_TRUE(fs.ok());
    TraceRunner runner(fs->get(), &queue);
    ASSERT_EQ(runner.Run(w.setup).failures, 0u) << w.name;
    auto result = runner.Run(w.trace);
    EXPECT_EQ(result.failures, 0u) << w.name << ": " << result.first_failure;
  }
}

TEST(ThiefWorkloadTest, ScenariosMatchTheirGroundTruth) {
  auto scenarios = MakeThiefScenarios(10);
  ASSERT_EQ(scenarios.size(), 3u);
  for (const auto& s : scenarios) {
    EventQueue queue;
    BlockDevice device;
    auto fs = EncFs::Format(&device, &queue, 11, "pw", {});
    ASSERT_TRUE(fs.ok());
    TraceRunner runner(fs->get(), &queue);
    ASSERT_EQ(runner.Run(s.setup).failures, 0u) << s.name;
    auto result = runner.Run(s.thief_trace);
    EXPECT_EQ(result.failures, 0u) << s.name << ": " << result.first_failure;
    EXPECT_FALSE(s.files_read.empty());
    EXPECT_GT(s.paper_total_keys, 0);
  }
}

TEST(LongHaulWorkloadTest, GeneratesDaysOfActivity) {
  LongHaulParams params;
  params.days = 2;
  LongHaulWorkload w = MakeLongHaulWorkload(params, 12);
  EXPECT_GT(w.activity.ops.size(), 100u);
  EXPECT_GT(w.active_time.seconds(), 100);

  EventQueue queue;
  BlockDevice device;
  auto fs = EncFs::Format(&device, &queue, 13, "pw", {});
  ASSERT_TRUE(fs.ok());
  TraceRunner runner(fs->get(), &queue);
  ASSERT_EQ(runner.Run(w.setup).failures, 0u);
  auto result = runner.Run(w.activity);
  EXPECT_EQ(result.failures, 0u) << result.first_failure;
  // Spans two days of virtual time.
  EXPECT_GT(result.elapsed.seconds(), 2 * 20 * 3600 / 2);
}

}  // namespace
}  // namespace keypad
