// The segmented-log substrate and the audit-log lifecycle it enables
// (DESIGN.md §15): Merkle-rooted sealed segments, signed checkpoint
// chains, snapshot-anchored truncation, cold shipping with scrub repair,
// and the auditor-side catch-up / disambiguation protocols built on them.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/auditlog/checkpoint.h"
#include "src/auditlog/merkle.h"
#include "src/auditlog/segment_store.h"
#include "src/blockdev/fault_injection.h"
#include "src/keypad/deployment.h"
#include "src/keyservice/audit_log.h"
#include "src/metaservice/metadata_log.h"
#include "src/sim/random.h"

namespace keypad {
namespace {

AuditId IdOf(uint8_t tag) {
  AuditId id;
  id.v.fill(tag);
  return id;
}

DirId DirOf(uint8_t tag) {
  DirId id;
  id.v.fill(tag);
  return id;
}

// A standalone cold tier for substrate-level tests.
struct ColdTier {
  explicit ColdTier(EventQueue* queue)
      : cloud(queue), store(MakeMemoryBackend(), &cloud) {}
  SimObjectStore cloud;
  SegmentStore store;
};

SegmentedLogOptions SegOpts(uint64_t segment_ops, bool cold_ship,
                            bool truncate) {
  SegmentedLogOptions options;
  options.segment_ops = segment_ops;
  options.cold_ship = cold_ship;
  options.truncate = truncate;
  return options;
}

void AppendN(AuditLog& log, EventQueue& queue, int n, int start = 0) {
  for (int i = 0; i < n; ++i) {
    log.Append(queue.Now(), "laptop", IdOf(static_cast<uint8_t>(start + i)),
               AccessOp::kDemandFetch);
  }
}

TEST(SegmentedLogTest, CheckpointChainIsDeterministicAndVerifies) {
  EventQueue queue;
  AuditLog a, b;
  a.Configure(SegOpts(4, false, false));
  b.Configure(SegOpts(4, false, false));
  AppendN(a, queue, 10);
  AppendN(b, queue, 10);

  ASSERT_EQ(a.checkpoints().size(), 2u);  // 10 entries, segments of 4.
  ASSERT_EQ(b.checkpoints().size(), 2u);
  for (size_t i = 0; i < a.checkpoints().size(); ++i) {
    EXPECT_EQ(a.checkpoints()[i].hash, b.checkpoints()[i].hash) << i;
    EXPECT_EQ(a.checkpoints()[i].merkle_root, b.checkpoints()[i].merkle_root);
  }
  EXPECT_TRUE(
      VerifyCheckpointChain(a.checkpoints(), DefaultCheckpointKey()).ok());
  EXPECT_TRUE(a.Verify().ok());
  EXPECT_TRUE(a.VerifyTail().ok());

  // A backup fed the same entries over the replication path derives the
  // identical checkpoint chain — nothing checkpoint-shaped crosses the
  // wire, both sides just agree on the commit groups.
  AuditLog backup;
  backup.Configure(SegOpts(4, false, false));
  ASSERT_TRUE(backup.AppendReplicated(a.entries()).ok());
  ASSERT_EQ(backup.checkpoints().size(), a.checkpoints().size());
  for (size_t i = 0; i < a.checkpoints().size(); ++i) {
    EXPECT_EQ(backup.checkpoints()[i].hash, a.checkpoints()[i].hash) << i;
  }
}

TEST(SegmentedLogTest, CheckpointTamperIsDetected) {
  EventQueue queue;
  AuditLog log;
  log.Configure(SegOpts(4, false, false));
  AppendN(log, queue, 9);
  ASSERT_EQ(log.checkpoints().size(), 2u);

  // Forged signature: the chain hashes still line up, the HMAC does not.
  std::vector<LogCheckpoint> forged = log.checkpoints();
  forged[1].signature[0] ^= 0x01;
  Status sig = VerifyCheckpointChain(forged, DefaultCheckpointKey());
  ASSERT_FALSE(sig.ok());
  EXPECT_NE(sig.message().find("bad signature"), std::string::npos);

  // Rewritten history: changing a covered field breaks the hash.
  forged = log.checkpoints();
  forged[0].end_seq = 3;
  forged[0].start_seq = 0;
  EXPECT_FALSE(VerifyCheckpointChain(forged, DefaultCheckpointKey()).ok());

  // Tampering a sealed in-memory entry breaks Verify() against the
  // checkpoint seals even though the tail after the last checkpoint is
  // untouched.
  log.CorruptEntryForTesting(2);
  EXPECT_FALSE(log.Verify().ok());
}

TEST(SegmentedLogTest, TruncationDropsMemoryButPreservesHistory) {
  EventQueue queue;
  ColdTier cold(&queue);
  AuditLog log;
  log.Configure(SegOpts(4, true, true));
  log.set_segment_store(&cold.store, "key");
  AppendN(log, queue, 19);

  // Four full segments sealed and shipped; the in-memory suffix holds only
  // the unsealed tail, yet the chain length is unchanged.
  EXPECT_EQ(log.size(), 19u);
  EXPECT_EQ(log.base_seq(), 16u);
  EXPECT_EQ(log.entries().size(), 3u);
  EXPECT_EQ(log.truncated_entries(), 16u);
  EXPECT_EQ(log.segments_sealed(), 4u);
  EXPECT_EQ(log.segments_shipped(), 4u);
  EXPECT_TRUE(log.Verify().ok());
  EXPECT_TRUE(log.VerifyTail().ok());

  // Hot cursor reads clamp at the base; cold-inclusive reads reconstruct
  // the whole history from the segment store, in order, seq-exact.
  EXPECT_EQ(log.EntriesAfterSeq(0).size(), 3u);
  auto all = log.AllEntriesFromSeq(0);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 19u);
  for (size_t i = 0; i < all->size(); ++i) {
    EXPECT_EQ((*all)[i].seq, i);
  }
  // End-to-end verification replays the cold prefix against the signed
  // checkpoints and reconnects it to the live tail.
  EXPECT_TRUE(log.VerifyFullChain().ok());

  // Without truncation the same workload keeps everything resident.
  AuditLog keep;
  keep.Configure(SegOpts(4, true, false));
  ColdTier keep_cold(&queue);
  keep.set_segment_store(&keep_cold.store, "key");
  AppendN(keep, queue, 19);
  EXPECT_EQ(keep.base_seq(), 0u);
  EXPECT_EQ(keep.entries().size(), 19u);
}

TEST(SegmentedLogTest, TruncationRespectsDurableWatermarkAnchor) {
  EventQueue queue;
  ColdTier cold(&queue);
  AuditLog log;
  log.Configure(SegOpts(4, true, true));
  log.set_segment_store(&cold.store, "key");
  uint64_t watermark = 0;
  log.set_truncate_anchor([&watermark] { return watermark; });

  AppendN(log, queue, 12);
  // Nothing acknowledged anywhere: nothing may be dropped.
  EXPECT_EQ(log.base_seq(), 0u);

  // The watermark advances mid-segment; truncation stops at the last
  // checkpoint boundary at or below it.
  watermark = 6;
  log.MaybeTruncate();
  EXPECT_EQ(log.base_seq(), 4u);
  watermark = 12;
  log.MaybeTruncate();
  EXPECT_EQ(log.base_seq(), 12u);  // All sealed segments acked: all drop.
  EXPECT_TRUE(log.Verify().ok());
  EXPECT_TRUE(log.VerifyFullChain().ok());
}

TEST(SegmentedLogTest, ColdBitRotIsDetectedWithoutCloudAndRepairedWithIt) {
  EventQueue queue;

  // No cloud mirror: rot in the cold tier is detected, not repaired.
  SegmentStore bare(MakeMemoryBackend(), nullptr);
  AuditLog log;
  log.Configure(SegOpts(4, true, true));
  log.set_segment_store(&bare, "key");
  AppendN(log, queue, 13);
  ASSERT_EQ(log.base_seq(), 12u);
  SimRandom rng(7);
  ASSERT_GT(InjectBitRot(*bare.backend(), rng, 40).flips_applied, 0u);
  EXPECT_FALSE(log.VerifyFullChain().ok());
  auto report = bare.Scrub();
  EXPECT_GT(report.unrepairable, 0u);

  // With the cloud mirror the same rot scrubs clean and the full chain
  // (cold prefix included) verifies again.
  ColdTier cold(&queue);
  AuditLog shipped;
  shipped.Configure(SegOpts(4, true, true));
  shipped.set_segment_store(&cold.store, "key");
  AppendN(shipped, queue, 13);
  queue.RunUntilIdle();  // Let the mirror uploads land.
  cold.cloud.SettleNow();
  ASSERT_GT(InjectBitRot(*cold.store.backend(), rng, 40).flips_applied, 0u);
  auto repaired = cold.store.Scrub();
  EXPECT_EQ(repaired.unrepairable, 0u);
  EXPECT_GT(cold.store.repairs(), 0u);
  EXPECT_TRUE(shipped.VerifyFullChain().ok());
}

TEST(SegmentedLogTest, MetadataLogSharesTheSubstrate) {
  EventQueue queue;
  ColdTier cold(&queue);
  MetadataLog log;
  log.Configure(SegOpts(3, true, true));
  log.set_segment_store(&cold.store, "meta");

  for (int i = 0; i < 10; ++i) {
    MetadataRecord record;
    record.device_id = "laptop";
    record.op = MetadataOp::kCreateFile;
    record.audit_id = IdOf(static_cast<uint8_t>(i));
    record.dir_id = DirOf(0xd0);
    record.name = "f" + std::to_string(i);
    record.client_time = queue.Now();
    log.Append(queue.Now(), std::move(record));
  }
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(log.base_seq(), 9u);  // Three shipped segments of 3.
  EXPECT_TRUE(log.Verify().ok());
  EXPECT_TRUE(log.VerifyFullChain().ok());

  // The binding index deliberately survives truncation: every record ever
  // appended is still reachable for forensics and orphan classification.
  auto all = log.AllKnownRecords();
  ASSERT_EQ(all.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(log.HistoryOf("laptop", IdOf(static_cast<uint8_t>(i))).size(),
              1u);
  }
}

// --- Service-level lifecycle (Deployment harness). --------------------------

DeploymentOptions TruncatingOpts() {
  DeploymentOptions options;
  options.profile = BroadbandProfile();
  options.config.ibe_enabled = false;
  options.config.prefetch = PrefetchPolicy::None();
  options.key_service.log = SegOpts(8, true, true);
  return options;
}

TEST(AuditLogLifecycleTest, ServiceSnapshotRestoreCarriesTruncatedChain) {
  Deployment dep(TruncatingOpts());
  auto& fs = dep.fs();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(fs.Create("/f" + std::to_string(i)).ok());
  }
  KeyService& service = dep.key_service();
  uint64_t size_before = service.log().size();
  ASSERT_GT(service.log().base_seq(), 0u);
  ASSERT_LT(service.log().entries().size(), size_before);

  // Crash + restart runs Snapshot() → Restore() over the truncated log;
  // the restored chain must keep the base/checkpoint anchors, not fail or
  // silently reset to genesis.
  dep.CrashKeyService();
  dep.RestartKeyService();
  KeyService& restored = dep.key_service();
  EXPECT_EQ(restored.log().size(), size_before);
  EXPECT_GT(restored.log().base_seq(), 0u);
  EXPECT_TRUE(restored.log().Verify().ok());
  EXPECT_TRUE(restored.log().VerifyFullChain().ok());

  // Forensic replay still sees the whole history through the cold tier.
  auto since_genesis = restored.LogSince(SimTime());
  EXPECT_EQ(since_genesis.size(), size_before);

  // And the service keeps appending on the restored chain.
  ASSERT_TRUE(fs.Create("/post-restore").ok());
  EXPECT_GT(restored.log().size(), size_before);
  EXPECT_TRUE(restored.log().Verify().ok());
}

TEST(AuditLogLifecycleTest, ForensicReportUnchangedByTruncation) {
  // The same workload with and without truncation must produce the same
  // audit report — dropping checkpointed prefixes from memory loses no
  // forensic fidelity.
  auto run = [](bool truncate) {
    DeploymentOptions options = TruncatingOpts();
    options.key_service.log =
        truncate ? SegOpts(8, true, true) : SegOpts(0, false, false);
    Deployment dep(options);
    auto& fs = dep.fs();
    EXPECT_TRUE(fs.Mkdir("/docs").ok());
    for (int i = 0; i < 20; ++i) {
      std::string path = "/docs/f" + std::to_string(i);
      EXPECT_TRUE(fs.Create(path).ok());
      EXPECT_TRUE(fs.WriteAll(path, BytesOf("x")).ok());
    }
    dep.queue().AdvanceBy(SimDuration::Seconds(300));
    SimTime t_loss = dep.queue().Now();
    auto attacker = dep.MakeAttacker();
    auto creds = attacker.StealCredentials();
    auto clients = dep.MakeAttackerClients(*creds);
    auto thief_fs = attacker.MountOnline(clients->services, options.config);
    EXPECT_TRUE((*thief_fs)->ReadAll("/docs/f3").ok());
    EXPECT_TRUE((*thief_fs)->ReadAll("/docs/f7").ok());
    auto report =
        dep.auditor().BuildReport(dep.device_id(), t_loss, fs.config().texp);
    EXPECT_TRUE(report.ok());
    return *report;
  };
  AuditReport truncated = run(true);
  AuditReport reference = run(false);
  EXPECT_TRUE(truncated.key_log_verified);
  ASSERT_EQ(truncated.compromised.size(), reference.compromised.size());
  for (size_t i = 0; i < truncated.compromised.size(); ++i) {
    EXPECT_EQ(truncated.compromised[i].audit_id,
              reference.compromised[i].audit_id);
    EXPECT_EQ(truncated.compromised[i].path_at_loss,
              reference.compromised[i].path_at_loss);
    EXPECT_EQ(truncated.compromised[i].accesses.size(),
              reference.compromised[i].accesses.size());
  }
}

TEST(AuditLogLifecycleTest, TruncatingRestartIsBenignButRestoreStillResyncs) {
  // Satellite fix: the remote auditor keys regression handling off the
  // signed checkpoint chain, not raw sequence numbers. A service restart
  // over a truncated chain (epoch bump, same history) must NOT trigger a
  // resync; a genuine restore from an older snapshot still must.
  Deployment dep(TruncatingOpts());
  auto& fs = dep.fs();
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(fs.Create("/f" + std::to_string(i)).ok());
  }
  dep.queue().AdvanceBy(SimDuration::Seconds(5));

  auto creds = dep.MakeAttacker().StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep.MakeAttackerClients(*creds);
  RemoteAuditor auditor(clients->key_rpc.get(), clients->meta_rpc.get(),
                        creds->device_id, creds->key_secret,
                        creds->meta_secret);
  auto first =
      auditor.BuildReport(dep.queue().Now(), dep.fs().config().texp);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(auditor.resyncs(), 0u);
  ASSERT_GT(dep.key_service().log().checkpoints().size(), 0u);
  Bytes old_snapshot = dep.key_service().Snapshot();

  // Truncating restart: snapshot → restore bumps the restore epoch but the
  // chain is unchanged. The old code resynced on any epoch change; the
  // checkpoint comparison proves the restart benign.
  dep.CrashKeyService();
  dep.RestartKeyService();
  ASSERT_TRUE(fs.Create("/after-restart").ok());
  dep.queue().AdvanceBy(SimDuration::Seconds(1));
  auto second =
      auditor.BuildReport(dep.queue().Now(), dep.fs().config().texp);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(auditor.resyncs(), 0u);
  EXPECT_GE(auditor.benign_restarts(), 1u);
  EXPECT_EQ(auditor.cursor(), dep.key_service().log().size());

  // Genuine restore-from-older-snapshot: the chain really is shorter than
  // the cursor — checkpoints cannot vouch for the lost suffix, so the
  // legacy resync path must still fire and keep the rolled-back rows.
  dep.key_service().AbortStaged();
  ASSERT_TRUE(dep.key_service().Restore(old_snapshot).ok());
  ASSERT_LT(dep.key_service().log().size(), auditor.cursor());
  dep.queue().AdvanceBy(SimDuration::Seconds(1));
  auto third =
      auditor.BuildReport(dep.queue().Now(), dep.fs().config().texp);
  ASSERT_TRUE(third.ok());
  EXPECT_GE(auditor.resyncs(), 1u);
  EXPECT_GT(auditor.regressed_entries(), 0u);
  EXPECT_EQ(auditor.cursor(), dep.key_service().log().size());

  // Auditing continues normally on the restored chain.
  ASSERT_TRUE(fs.Create("/after-restore").ok());
  dep.queue().AdvanceBy(SimDuration::Seconds(1));
  uint64_t resyncs_after = auditor.resyncs();
  auto fourth =
      auditor.BuildReport(dep.queue().Now(), dep.fs().config().texp);
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(auditor.resyncs(), resyncs_after);
  EXPECT_EQ(auditor.cursor(), dep.key_service().log().size());
}

// Scoped env so Deployment construction picks the options up for BOTH log
// tiers (the meta tier has no DeploymentOptions plumbing by design — env is
// its production configuration surface).
class ScopedLogEnv {
 public:
  ScopedLogEnv(const char* segment_ops, bool cold_ship, bool truncate) {
    setenv("KEYPAD_LOG_SEGMENT_OPS", segment_ops, 1);
    setenv("KEYPAD_LOG_COLD_SHIP", cold_ship ? "1" : "0", 1);
    setenv("KEYPAD_LOG_TRUNCATE", truncate ? "1" : "0", 1);
  }
  ~ScopedLogEnv() {
    unsetenv("KEYPAD_LOG_SEGMENT_OPS");
    unsetenv("KEYPAD_LOG_COLD_SHIP");
    unsetenv("KEYPAD_LOG_TRUNCATE");
  }
};

TEST(AuditLogCatchUpTest, CheckpointCatchUpFetchesFractionOfGenesisReplay) {
  // A fresh console auditing a long-lived device: replaying from genesis
  // pulls the whole history; CatchUpFromCheckpoints verifies the signed
  // checkpoint chain instead and pulls only the unsealed tail.
  ScopedLogEnv env("8", true, true);
  Deployment dep(TruncatingOpts());
  auto& fs = dep.fs();
  ASSERT_TRUE(fs.Mkdir("/docs").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(fs.Create("/docs/f" + std::to_string(i)).ok());
  }
  dep.queue().AdvanceBy(SimDuration::Seconds(5));
  SimTime t_loss = dep.queue().Now();
  ASSERT_GT(dep.key_service().log().base_seq(), 0u);
  ASSERT_GT(dep.metadata_service().log().checkpoints().size(), 0u);

  auto creds = dep.MakeAttacker().StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients_a = dep.MakeAttackerClients(*creds);
  RemoteAuditor genesis(clients_a->key_rpc.get(), clients_a->meta_rpc.get(),
                        creds->device_id, creds->key_secret,
                        creds->meta_secret);
  ASSERT_TRUE(genesis.BuildReport(t_loss, fs.config().texp).ok());
  uint64_t fetched_genesis = genesis.entries_fetched();
  ASSERT_GT(fetched_genesis, 0u);

  auto clients_b = dep.MakeAttackerClients(*creds);
  RemoteAuditor anchored(clients_b->key_rpc.get(), clients_b->meta_rpc.get(),
                         creds->device_id, creds->key_secret,
                         creds->meta_secret);
  ASSERT_TRUE(anchored.CatchUpFromCheckpoints().ok());
  ASSERT_TRUE(anchored.BuildReport(t_loss, fs.config().texp).ok());
  uint64_t fetched_anchored = anchored.entries_fetched();

  // The sealed prefix was vouched for by checkpoint signatures, not
  // refetched: the anchored auditor pulls an order of magnitude less.
  EXPECT_LE(fetched_anchored * 10, fetched_genesis)
      << "anchored=" << fetched_anchored << " genesis=" << fetched_genesis;
  EXPECT_EQ(anchored.cursor(), dep.key_service().log().size());
  EXPECT_EQ(anchored.meta_cursor(), dep.metadata_service().log().size());
  EXPECT_EQ(anchored.resyncs(), 0u);
}

// --- Replicated failover with truncation (satellite 3). ---------------------

DeploymentOptions ReplicatedLogOpts(bool truncate) {
  DeploymentOptions options;
  options.profile = LanProfile();
  options.config.ibe_enabled = false;
  options.config.prefetch = PrefetchPolicy::None();
  options.key_replicas = 3;
  // Held responses wait out one backup ack_timeout when the mesh first
  // partitions; give each attempt room for that.
  options.rpc.timeout = SimDuration::Seconds(3);
  options.rpc.retry.max_attempts = 2;
  options.key_service.log =
      truncate ? SegOpts(4, true, true) : SegOpts(0, false, false);
  return options;
}

bool FullChainHasCreate(const AuditLog& log, const AuditId& id) {
  auto all = log.AllEntriesFromSeq(0);
  if (!all.ok()) {
    return false;
  }
  for (const auto& entry : *all) {
    if (entry.op == AccessOp::kCreate && entry.audit_id == id) {
      return true;
    }
  }
  return false;
}

struct FailoverOutcome {
  uint64_t orphaned_entries = 0;
  size_t duplicate_records = 0;
  size_t orphaned_records = 0;
  bool replica_logs_verified = false;
  bool invariant_held = false;
};

// The split-brain scenario from the replica failover suite, parameterized
// on truncation: a partitioned primary keeps acking creates that exist on
// its chain only, the backup promotes, the primary dies, heals, rejoins,
// and reconciliation must surface the partition-era suffix as orphans —
// identically whether or not the primary had truncated its checkpointed
// prefix in the meantime.
FailoverOutcome RunPartitionScenario(bool truncate) {
  Deployment dep(ReplicatedLogOpts(truncate));
  auto& fs = dep.fs();
  ReplicaSet* set = dep.replica_set(0);
  EXPECT_NE(set, nullptr);
  SimTime t_loss = dep.queue().Now();

  std::vector<AuditId> acked_ids;
  for (int i = 0; i < 10; ++i) {
    std::string path = "/pre" + std::to_string(i);
    EXPECT_TRUE(fs.Create(path).ok());
    acked_ids.push_back(fs.ReadHeaderOf(path)->audit_id);
  }
  dep.queue().AdvanceBy(SimDuration::Seconds(1));
  if (truncate) {
    // The leader's durable watermark (every backup acked) lets it drop the
    // shipped prefix; backups never truncate.
    EXPECT_GT(dep.key_replica(0, 0).log().base_seq(), 0u);
    EXPECT_EQ(dep.key_replica(0, 1).log().base_seq(), 0u);
  }

  dep.PartitionKeyReplica(0, 0, true);
  std::vector<AuditId> partition_ids;
  for (int i = 0; i < 3; ++i) {
    std::string path = "/part" + std::to_string(i);
    EXPECT_TRUE(fs.Create(path).ok());
    AuditId id = fs.ReadHeaderOf(path)->audit_id;
    partition_ids.push_back(id);
    acked_ids.push_back(id);
  }
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  EXPECT_GE(set->stats().promotions, 1u);

  dep.CrashKeyReplica(0, 0);
  for (int i = 0; i < 2; ++i) {
    std::string path = "/post" + std::to_string(i);
    EXPECT_TRUE(fs.Create(path).ok());
    acked_ids.push_back(fs.ReadHeaderOf(path)->audit_id);
  }

  // Heal and restart: the ex-primary adopts the new leader's chain and its
  // partition-era suffix — beyond the proven common prefix, which on this
  // side starts above a truncated base — surfaces as orphans.
  dep.PartitionKeyReplica(0, 0, false);
  dep.RestartKeyReplica(0, 0);
  dep.queue().AdvanceBy(SimDuration::Seconds(5));
  EXPECT_FALSE(set->is_leader(0));

  FailoverOutcome outcome;
  outcome.orphaned_entries = set->stats().orphaned_entries;
  outcome.invariant_held = true;
  const AuditLog& authority = dep.key_replica(0, set->current_leader()).log();
  for (const auto& id : acked_ids) {
    bool present = FullChainHasCreate(authority, id);
    for (const auto& orphan : set->orphaned()) {
      present |= orphan.entry.op == AccessOp::kCreate &&
                 orphan.entry.audit_id == id;
    }
    EXPECT_TRUE(present) << id.ToHex();
    outcome.invariant_held &= present;
  }

  auto report = dep.auditor().BuildReport(dep.device_id(), t_loss,
                                          dep.options().config.texp);
  EXPECT_TRUE(report.ok());
  if (report.ok()) {
    outcome.duplicate_records = report->duplicate_records;
    outcome.orphaned_records = report->orphaned_records;
    outcome.replica_logs_verified = report->replica_logs_verified;
  }
  return outcome;
}

TEST(AuditLogFailoverTest, TruncatedOrphanClassificationMatchesReference) {
  FailoverOutcome truncated = RunPartitionScenario(true);
  FailoverOutcome reference = RunPartitionScenario(false);
  EXPECT_TRUE(truncated.invariant_held);
  EXPECT_TRUE(reference.invariant_held);
  EXPECT_TRUE(truncated.replica_logs_verified);
  EXPECT_GT(reference.orphaned_entries, 0u);
  // Truncating the proven common prefix on one side must not change what
  // reconciliation classifies as orphaned, nor how forensics accounts for
  // the duplicated-but-never-lost rows.
  EXPECT_EQ(truncated.orphaned_entries, reference.orphaned_entries);
  EXPECT_EQ(truncated.duplicate_records + truncated.orphaned_records,
            reference.duplicate_records + reference.orphaned_records);
}

TEST(AuditLogFailoverTest, FreshAuditorCatchesUpFromPromotedBackup) {
  // Leader killed mid-segment, backup promotes; a console that has never
  // audited this fleet before anchors on the promoted backup's checkpoint
  // chain (derived independently via replicated group commits) instead of
  // replaying from genesis.
  Deployment dep(ReplicatedLogOpts(true));
  auto& fs = dep.fs();
  ReplicaSet* set = dep.replica_set(0);
  ASSERT_NE(set, nullptr);
  for (int i = 0; i < 11; ++i) {  // Not a multiple of 4: mid-segment kill.
    ASSERT_TRUE(fs.Create("/f" + std::to_string(i)).ok());
  }
  dep.queue().AdvanceBy(SimDuration::Seconds(1));

  dep.CrashKeyShard(0);
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  ASSERT_EQ(set->current_leader(), 1u);
  ASSERT_TRUE(fs.Create("/post").ok());

  auto creds = dep.MakeAttacker().StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep.MakeAttackerClients(*creds);
  // replica_rpcs[0] is the shard's first backup — the promoted leader.
  ASSERT_FALSE(clients->replica_rpcs.empty());
  RemoteAuditor auditor(clients->replica_rpcs[0].get(),
                        clients->meta_rpc.get(), creds->device_id,
                        creds->key_secret, creds->meta_secret);
  ASSERT_TRUE(auditor.CatchUpFromCheckpoints().ok());
  uint64_t anchored_cursor = auditor.cursor();
  EXPECT_GT(anchored_cursor, 0u);
  auto report = auditor.BuildReport(dep.queue().Now(), fs.config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(auditor.resyncs(), 0u);
  EXPECT_EQ(auditor.cursor(), dep.key_replica(0, 1).log().size());
  // Only the post-checkpoint tail crossed the wire for the key tier.
  EXPECT_LT(auditor.entries_fetched(),
            dep.key_replica(0, 1).log().size() +
                dep.metadata_service().log().size());
}

}  // namespace
}  // namespace keypad
