// Functional tests for KeypadFs: remote-keyed file access, caching and
// expiration, prefetching, IBE metadata locking, partial coverage, and the
// paths' interaction with the audit services.

#include <gtest/gtest.h>

#include "src/keypad/deployment.h"
#include "src/util/strings.h"

namespace keypad {
namespace {

class KeypadFsTest : public ::testing::Test {
 protected:
  static DeploymentOptions Opts() {
    DeploymentOptions options;
    options.profile = BroadbandProfile();
    options.config.ibe_enabled = false;  // Individual tests override.
    options.config.prefetch = PrefetchPolicy::None();
    return options;
  }

  explicit KeypadFsTest(DeploymentOptions options = Opts())
      : dep_(std::move(options)) {}

  size_t LogCountFor(const AuditId& id) {
    size_t n = 0;
    for (const auto& e : dep_.key_service().log().entries()) {
      if (e.audit_id == id) {
        ++n;
      }
    }
    return n;
  }

  // Advances past two full expiration periods: the first expiry refreshes
  // keys that were in use, the second erases them (paper §4 semantics).
  void ExpireAllKeys() {
    dep_.queue().AdvanceBy(dep_.fs().config().texp * 2 +
                           SimDuration::Seconds(2));
    EXPECT_EQ(dep_.fs().key_cache().size(), 0u);
  }

  AuditId IdOf(const std::string& path) {
    auto header = dep_.fs().ReadHeaderOf(path);
    EXPECT_TRUE(header.ok());
    return header->audit_id;
  }

  Deployment dep_;
};

TEST_F(KeypadFsTest, CreateWriteReadRoundTrip) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/home").ok());
  ASSERT_TRUE(fs.Create("/home/taxes.pdf").ok());
  Bytes data = BytesOf("very sensitive tax data");
  ASSERT_TRUE(fs.WriteAll("/home/taxes.pdf", data).ok());
  auto read = fs.ReadAll("/home/taxes.pdf");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
}

TEST_F(KeypadFsTest, CreationRegistersKeyAndMetadataBeforeReturning) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  AuditId id = IdOf("/f");
  EXPECT_FALSE(id.IsZero());
  // Key service holds the key and logged the creation.
  EXPECT_TRUE(dep_.key_service().GetKey(dep_.device_id(), id).ok());
  // Metadata service can resolve the path already.
  auto path = dep_.metadata_service().ResolvePath(dep_.device_id(), id,
                                                  dep_.queue().Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/f");
}

TEST_F(KeypadFsTest, CreateFailsWhenDisconnectedWithoutIbe) {
  dep_.client_link().set_disconnected(true);
  auto status = dep_.fs().Create("/offline.txt");
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(KeypadFsTest, EveryColdReadProducesAnAuditRecord) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  ASSERT_TRUE(fs.WriteAll("/f", BytesOf("x")).ok());
  AuditId id = IdOf("/f");
  size_t before = LogCountFor(id);

  // Expire the cache, then read: a demand fetch must be logged. (The
  // in-use refresh at the first expiry adds one kRefresh record.)
  ExpireAllKeys();
  before = LogCountFor(id);
  ASSERT_TRUE(fs.ReadAll("/f").ok());
  EXPECT_EQ(LogCountFor(id), before + 1);
  EXPECT_EQ(dep_.key_service().log().entries().back().op,
            AccessOp::kDemandFetch);
}

TEST_F(KeypadFsTest, WarmCacheReadsProduceNoExtraRecords) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  ASSERT_TRUE(fs.WriteAll("/f", BytesOf("abc")).ok());
  AuditId id = IdOf("/f");
  size_t before = LogCountFor(id);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs.Read("/f", 0, 1).ok());
  }
  EXPECT_EQ(LogCountFor(id), before);  // All hits.
  EXPECT_GE(dep_.fs().stats().cache_hits, 10u);
}

TEST_F(KeypadFsTest, CacheMissIsSlowerByOneRtt) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  ASSERT_TRUE(fs.WriteAll("/f", BytesOf("abc")).ok());

  // Warm read.
  SimTime t0 = dep_.queue().Now();
  ASSERT_TRUE(fs.Read("/f", 0, 1).ok());
  SimDuration warm = dep_.queue().Now() - t0;

  // Cold read.
  ExpireAllKeys();
  t0 = dep_.queue().Now();
  ASSERT_TRUE(fs.Read("/f", 0, 1).ok());
  SimDuration cold = dep_.queue().Now() - t0;

  EXPECT_GE((cold - warm).millis(), 24);  // ~ Broadband RTT (25 ms).
  EXPECT_LT(warm.millis(), 1);
}

TEST_F(KeypadFsTest, InUseKeysRefreshInsteadOfExpiring) {
  auto& fs = dep_.fs();
  fs.config().texp = SimDuration::Seconds(10);
  fs.key_cache().set_texp(SimDuration::Seconds(10));
  ASSERT_TRUE(fs.Create("/movie.mkv").ok());
  ASSERT_TRUE(fs.WriteAll("/movie.mkv", Bytes(4096, 7)).ok());
  AuditId id = IdOf("/movie.mkv");

  // Keep the file in use across several expiration periods.
  for (int i = 0; i < 5; ++i) {
    dep_.queue().AdvanceBy(SimDuration::Seconds(9));
    SimTime t0 = dep_.queue().Now();
    ASSERT_TRUE(fs.Read("/movie.mkv", 0, 64).ok());
    // Reads never block on the network: refreshes are async.
    EXPECT_LT((dep_.queue().Now() - t0).millis(), 2);
  }
  dep_.queue().RunUntilIdle();
  // Refreshes were logged.
  size_t refreshes = 0;
  for (const auto& e : dep_.key_service().log().entries()) {
    if (e.audit_id == id && e.op == AccessOp::kRefresh) {
      ++refreshes;
    }
  }
  EXPECT_GE(refreshes, 3u);
}

TEST_F(KeypadFsTest, IdleKeysExpireAndAreErased) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  ASSERT_TRUE(fs.WriteAll("/f", BytesOf("z")).ok());
  EXPECT_GT(fs.key_cache().size(), 0u);
  // First period: the key was used (the write), so it refreshes...
  dep_.queue().AdvanceBy(fs.config().texp + SimDuration::Seconds(1));
  EXPECT_EQ(fs.key_cache().size(), 1u);
  // ...second period with no use: securely erased.
  dep_.queue().AdvanceBy(fs.config().texp + SimDuration::Seconds(1));
  EXPECT_EQ(fs.key_cache().size(), 0u);
}

TEST_F(KeypadFsTest, RenameKeepsContentAndUpdatesMetadata) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/home").ok());
  ASSERT_TRUE(fs.Create("/tmp_form.pdf").ok());
  ASSERT_TRUE(fs.WriteAll("/tmp_form.pdf", BytesOf("1040EZ")).ok());
  AuditId id = IdOf("/tmp_form.pdf");

  ASSERT_TRUE(fs.Rename("/tmp_form.pdf", "/home/taxes_2011.pdf").ok());
  EXPECT_EQ(StringOf(*fs.ReadAll("/home/taxes_2011.pdf")), "1040EZ");

  auto path = dep_.metadata_service().ResolvePath(dep_.device_id(), id,
                                                  dep_.queue().Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/home/taxes_2011.pdf");
}

TEST_F(KeypadFsTest, MkdirRegistersDirectory) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/docs").ok());
  ASSERT_TRUE(fs.Create("/docs/a.txt").ok());
  auto path = dep_.metadata_service().ResolvePath(
      dep_.device_id(), IdOf("/docs/a.txt"), dep_.queue().Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/docs/a.txt");
}

TEST_F(KeypadFsTest, HibernateEvictsAndNotifies) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  ASSERT_TRUE(fs.WriteAll("/f", BytesOf("q")).ok());
  ASSERT_GT(fs.key_cache().size(), 0u);
  fs.Hibernate();
  EXPECT_EQ(fs.key_cache().size(), 0u);
  dep_.queue().RunUntilIdle();
  EXPECT_EQ(dep_.key_service().log().entries().back().op,
            AccessOp::kEviction);
}

TEST_F(KeypadFsTest, RemountAccessesExistingFiles) {
  {
    auto& fs = dep_.fs();
    ASSERT_TRUE(fs.Create("/persist.txt").ok());
    ASSERT_TRUE(fs.WriteAll("/persist.txt", BytesOf("still here")).ok());
  }
  // Remount from the device using stored credentials.
  auto vanilla = EncFs::Mount(&dep_.device(), &dep_.queue(), 99,
                              dep_.options().password, {});
  ASSERT_TRUE(vanilla.ok());
  auto creds = KeypadFs::LoadCredentials(vanilla->get());
  ASSERT_TRUE(creds.ok());
  auto clients = dep_.MakeAttackerClients(*creds);
  ASSERT_TRUE(clients.ok());
  KeypadConfig config;
  config.ibe_enabled = false;
  auto fs2 = KeypadFs::Mount(&dep_.device(), &dep_.queue(), 100,
                             dep_.options().password, {}, config,
                             clients->services);
  ASSERT_TRUE(fs2.ok());
  auto data = (*fs2)->ReadAll("/persist.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(StringOf(*data), "still here");
}

TEST_F(KeypadFsTest, StatsAreMaintained) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  ASSERT_TRUE(fs.WriteAll("/f", BytesOf("s")).ok());
  fs.ReadAll("/f").status();
  const auto& stats = fs.stats();
  EXPECT_EQ(stats.creates_blocking, 1u);
  EXPECT_GE(stats.cache_hits, 1u);
  fs.ResetStats();
  EXPECT_EQ(fs.stats().creates_blocking, 0u);
}

TEST_F(KeypadFsTest, AwkwardFileNamesSurviveTheFullStack) {
  // Names with XML-special characters, spaces, and UTF-8 traverse the
  // directory encryption, the XML-RPC metadata protocol, and (in IBE mode)
  // the identity string.
  auto& fs = dep_.fs();
  for (const std::string& name :
       {std::string("taxes <2011> & fees.pdf"), std::string("résumé.doc"),
        std::string("weird\"quote'name"), std::string("trailing.dot.")}) {
    std::string path = "/" + name;
    ASSERT_TRUE(fs.Create(path).ok()) << name;
    ASSERT_TRUE(fs.WriteAll(path, BytesOf("v:" + name)).ok()) << name;
    EXPECT_EQ(StringOf(*fs.ReadAll(path)), "v:" + name);
    AuditId id = IdOf(path);
    auto resolved = dep_.metadata_service().ResolvePath(dep_.device_id(), id,
                                                        dep_.queue().Now());
    ASSERT_TRUE(resolved.ok()) << name;
    EXPECT_EQ(*resolved, path);
  }
  // And the names never appear in cleartext on the medium.
  std::string_view needle = "taxes <2011>";
  for (const auto& obj : dep_.device().ListObjects()) {
    Bytes data = *dep_.device().ReadObject(obj);
    EXPECT_EQ(std::search(data.begin(), data.end(), needle.begin(),
                          needle.end()),
              data.end());
  }
}

TEST_F(KeypadFsTest, ManyFilesInOneDirectory) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/big").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(fs.Create("/big/f" + std::to_string(i)).ok());
  }
  auto entries = fs.Readdir("/big");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 200u);
  // Names decrypt uniquely.
  std::set<std::string> names;
  for (const auto& e : *entries) {
    names.insert(e.name);
  }
  EXPECT_EQ(names.size(), 200u);
}

TEST_F(KeypadFsTest, DestroyOnUnlinkMakesCiphertextUnrecoverable) {
  auto& fs = dep_.fs();
  fs.config().destroy_keys_on_unlink = true;
  ASSERT_TRUE(fs.Create("/ephemeral.doc").ok());
  ASSERT_TRUE(fs.WriteAll("/ephemeral.doc", BytesOf("burn after read")).ok());
  AuditId id = IdOf("/ephemeral.doc");

  // An attacker images the disk *before* the unlink (e.g. an old backup).
  BlockDevice backup = dep_.device().Snapshot();

  ASSERT_TRUE(fs.Unlink("/ephemeral.doc").ok());
  dep_.queue().RunUntilIdle();

  // The key is gone from the service...
  EXPECT_EQ(dep_.key_service().GetKey(dep_.device_id(), id).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(dep_.key_service().log().entries().back().op,
            AccessOp::kDestroy);

  // ...so even the pre-unlink image plus the password can't recover it.
  RawDeviceAttacker attacker(std::move(backup), dep_.options().password,
                             &dep_.queue());
  auto creds = attacker.StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep_.MakeAttackerClients(*creds);
  KeypadConfig config;
  config.ibe_enabled = false;
  auto mounted = attacker.MountOnline(clients->services, config);
  ASSERT_TRUE(mounted.ok());
  EXPECT_FALSE((*mounted)->ReadAll("/ephemeral.doc").ok());
}

// --- Partial coverage (§3.6). -----------------------------------------------

class CoverageTest : public KeypadFsTest {
 protected:
  static DeploymentOptions CoverageOpts() {
    DeploymentOptions options = Opts();
    options.config.coverage = [](const std::string& path) {
      return PathIsWithin(path, "/home") || PathIsWithin(path, "/tmp");
    };
    return options;
  }
  CoverageTest() : KeypadFsTest(CoverageOpts()) {}
};

TEST_F(CoverageTest, UncoveredFilesGenerateNoAuditTraffic) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/usr").ok());
  size_t log_before = dep_.key_service().log().size();
  ASSERT_TRUE(fs.Create("/usr/libfoo.so").ok());
  ASSERT_TRUE(fs.WriteAll("/usr/libfoo.so", Bytes(1024, 1)).ok());
  dep_.queue().AdvanceBy(SimDuration::Seconds(200));
  ASSERT_TRUE(fs.ReadAll("/usr/libfoo.so").ok());
  EXPECT_EQ(dep_.key_service().log().size(), log_before);
  auto header = fs.ReadHeaderOf("/usr/libfoo.so");
  ASSERT_TRUE(header.ok());
  EXPECT_FALSE(header->keypad_protected);
}

TEST_F(CoverageTest, CoveredFilesAreProtected) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/home").ok());
  ASSERT_TRUE(fs.Create("/home/medical.db").ok());
  auto header = fs.ReadHeaderOf("/home/medical.db");
  ASSERT_TRUE(header.ok());
  EXPECT_TRUE(header->keypad_protected);
}

TEST_F(CoverageTest, UncoveredFilesWorkOffline) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/usr").ok());
  dep_.client_link().set_disconnected(true);
  ASSERT_TRUE(fs.Create("/usr/cache.bin").ok());
  ASSERT_TRUE(fs.WriteAll("/usr/cache.bin", BytesOf("ok")).ok());
  EXPECT_EQ(StringOf(*fs.ReadAll("/usr/cache.bin")), "ok");
}

// --- Prefetching. --------------------------------------------------------------

class PrefetchTest : public KeypadFsTest {
 protected:
  static DeploymentOptions PrefetchOpts() {
    DeploymentOptions options = Opts();
    options.config.prefetch = PrefetchPolicy::FullDirOnNthMiss(3);
    return options;
  }
  PrefetchTest() : KeypadFsTest(PrefetchOpts()) {
    auto& fs = dep_.fs();
    EXPECT_TRUE(fs.Mkdir("/dir").ok());
    for (int i = 0; i < 10; ++i) {
      std::string path = "/dir/f" + std::to_string(i);
      EXPECT_TRUE(fs.Create(path).ok());
      EXPECT_TRUE(fs.WriteAll(path, BytesOf("data")).ok());
    }
    // Expire all the creation-time cache entries (two periods: the first
    // expiry refreshes in-use keys).
    dep_.queue().AdvanceBy(fs.config().texp * 2 + SimDuration::Seconds(2));
    EXPECT_EQ(fs.key_cache().size(), 0u);
    fs.ResetStats();
  }
};

TEST_F(PrefetchTest, ThirdMissTriggersDirectoryPrefetch) {
  auto& fs = dep_.fs();
  // First two misses fetch exactly one key each.
  ASSERT_TRUE(fs.Read("/dir/f0", 0, 1).ok());
  ASSERT_TRUE(fs.Read("/dir/f1", 0, 1).ok());
  EXPECT_EQ(fs.stats().demand_fetches, 2u);
  EXPECT_EQ(fs.stats().keys_prefetched, 0u);

  // Third miss pulls the whole directory in the same round trip.
  ASSERT_TRUE(fs.Read("/dir/f2", 0, 1).ok());
  EXPECT_EQ(fs.stats().demand_fetches, 3u);
  EXPECT_EQ(fs.stats().keys_prefetched, 7u);

  // The remaining files are now cache hits.
  for (int i = 3; i < 10; ++i) {
    ASSERT_TRUE(fs.Read("/dir/f" + std::to_string(i), 0, 1).ok());
  }
  EXPECT_EQ(fs.stats().demand_fetches, 3u);
}

TEST_F(PrefetchTest, PrefetchedKeysAreLoggedAsPrefetch) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Read("/dir/f0", 0, 1).ok());
  ASSERT_TRUE(fs.Read("/dir/f1", 0, 1).ok());
  ASSERT_TRUE(fs.Read("/dir/f2", 0, 1).ok());
  size_t prefetch_entries = 0;
  for (const auto& e : dep_.key_service().log().entries()) {
    if (e.op == AccessOp::kPrefetch) {
      ++prefetch_entries;
    }
  }
  EXPECT_EQ(prefetch_entries, 7u);
}

TEST_F(PrefetchTest, NoPrefetchPolicyFetchesEveryKey) {
  auto& fs = dep_.fs();
  fs.prefetcher().set_policy(PrefetchPolicy::None());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs.Read("/dir/f" + std::to_string(i), 0, 1).ok());
  }
  EXPECT_EQ(fs.stats().demand_fetches, 10u);
  EXPECT_EQ(fs.stats().keys_prefetched, 0u);
}

// --- IBE mode. -------------------------------------------------------------------

class IbeTest : public KeypadFsTest {
 protected:
  static DeploymentOptions IbeOpts() {
    DeploymentOptions options = Opts();
    options.profile = CellularProfile();
    options.config.ibe_enabled = true;
    return options;
  }
  IbeTest() : KeypadFsTest(IbeOpts()) {}
};

TEST_F(IbeTest, CreateDoesNotBlockOnNetwork) {
  auto& fs = dep_.fs();
  SimTime t0 = dep_.queue().Now();
  ASSERT_TRUE(fs.Create("/fast.doc").ok());
  SimDuration elapsed = dep_.queue().Now() - t0;
  // Far below the 300 ms RTT; dominated by the IBE lock cost (~25 ms).
  EXPECT_LT(elapsed.millis(), 100);
  EXPECT_GE(elapsed.millis(), 25);
}

TEST_F(IbeTest, FileUsableDuringGraceAndAfterCompletion) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/doc.txt").ok());
  // Immediately usable (grace key).
  ASSERT_TRUE(fs.WriteAll("/doc.txt", BytesOf("body")).ok());
  EXPECT_EQ(StringOf(*fs.ReadAll("/doc.txt")), "body");
  EXPECT_GE(fs.stats().grace_hits, 1u);

  // Let the registrations complete; the header is normalized.
  dep_.queue().RunUntilIdle();
  auto header = fs.ReadHeaderOf("/doc.txt");
  ASSERT_TRUE(header.ok());
  EXPECT_FALSE(header->ibe_locked);
  EXPECT_EQ(StringOf(*fs.ReadAll("/doc.txt")), "body");
}

TEST_F(IbeTest, RenameOverlapsRegistration) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/a.txt").ok());
  ASSERT_TRUE(fs.WriteAll("/a.txt", BytesOf("v")).ok());
  dep_.queue().RunUntilIdle();

  SimTime t0 = dep_.queue().Now();
  ASSERT_TRUE(fs.Rename("/a.txt", "/b.txt").ok());
  SimDuration elapsed = dep_.queue().Now() - t0;
  EXPECT_LT(elapsed.millis(), 100);  // No 300 ms RTT stall.

  // Reads work during the in-flight window via the grace key.
  EXPECT_EQ(StringOf(*fs.ReadAll("/b.txt")), "v");

  dep_.queue().RunUntilIdle();
  auto header = fs.ReadHeaderOf("/b.txt");
  ASSERT_TRUE(header.ok());
  EXPECT_FALSE(header->ibe_locked);
  // Metadata reflects the rename.
  auto path = dep_.metadata_service().ResolvePath(
      dep_.device_id(), header->audit_id, dep_.queue().Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/b.txt");
}

TEST_F(IbeTest, LockedFileBlocksAfterGraceUntilRegistration) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/x").ok());
  ASSERT_TRUE(fs.WriteAll("/x", BytesOf("data")).ok());
  dep_.queue().RunUntilIdle();

  // Sever the network, rename (async bind is lost), and let grace expire.
  dep_.client_link().set_disconnected(true);
  ASSERT_TRUE(fs.Rename("/x", "/y").ok());
  dep_.queue().AdvanceBy(SimDuration::Seconds(30));

  // The file is sealed: blocking unlock needs the metadata service.
  auto read = fs.ReadAll("/y");
  EXPECT_FALSE(read.ok());

  // Reconnect: the blocking unlock registers the truthful path and opens
  // the file; the registration is in the metadata log.
  dep_.client_link().set_disconnected(false);
  auto read2 = fs.ReadAll("/y");
  ASSERT_TRUE(read2.ok());
  EXPECT_EQ(StringOf(*read2), "data");
  EXPECT_GE(fs.stats().ibe_blocking_unlocks, 1u);
  auto path = dep_.metadata_service().ResolvePath(
      dep_.device_id(), IdOf("/y"), dep_.queue().Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/y");
}

TEST_F(IbeTest, MkdirStillBlocks) {
  auto& fs = dep_.fs();
  SimTime t0 = dep_.queue().Now();
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  EXPECT_GE((dep_.queue().Now() - t0).millis(), 300);
}

}  // namespace
}  // namespace keypad
