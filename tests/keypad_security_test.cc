// Security & auditing-semantics tests (paper §2 goals, §6 analysis):
//  * the audit invariant — zero false negatives under every optimization;
//  * remote data control — revocation blocks access even for raw-device
//    attackers, with or without network;
//  * IBE locking forces truthful metadata registration;
//  * forensic reports: trusted paths, post-loss bindings, exposure windows.

#include <gtest/gtest.h>

#include <set>

#include "src/keypad/deployment.h"
#include "src/util/strings.h"

namespace keypad {
namespace {

DeploymentOptions SecurityOpts(bool ibe) {
  DeploymentOptions options;
  options.profile = BroadbandProfile();
  options.config.ibe_enabled = ibe;
  options.config.prefetch = PrefetchPolicy::FullDirOnNthMiss(3);
  options.config.texp = SimDuration::Seconds(100);
  return options;
}

// Populates a realistic victim volume: /home docs, /work trade secrets.
void PopulateVictimVolume(Deployment& dep) {
  auto& fs = dep.fs();
  ASSERT_TRUE(fs.Mkdir("/home").ok());
  ASSERT_TRUE(fs.Mkdir("/work").ok());
  for (int i = 0; i < 5; ++i) {
    std::string home = "/home/note" + std::to_string(i) + ".txt";
    ASSERT_TRUE(fs.Create(home).ok());
    ASSERT_TRUE(fs.WriteAll(home, BytesOf("personal " + home)).ok());
    std::string work = "/work/secret" + std::to_string(i) + ".doc";
    ASSERT_TRUE(fs.Create(work).ok());
    ASSERT_TRUE(fs.WriteAll(work, BytesOf("trade secret " + work)).ok());
  }
  dep.queue().RunUntilIdle();  // Let IBE registrations complete.
}

class TheftTest : public ::testing::TestWithParam<bool> {
 protected:
  TheftTest() : dep_(SecurityOpts(GetParam())) {
    PopulateVictimVolume(dep_);
    // The device sits idle long enough for all cached keys to drain, then
    // is stolen "cold" (powered down — memory gone).
    dep_.queue().AdvanceBy(SimDuration::Seconds(300));
    EXPECT_EQ(dep_.fs().key_cache().size(), 0u);
    t_loss_ = dep_.queue().Now();
  }

  Deployment dep_;
  SimTime t_loss_;
};

INSTANTIATE_TEST_SUITE_P(IbeOnOff, TheftTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "WithIbe" : "WithoutIbe";
                         });

TEST_P(TheftTest, OfflineAttackerReadsNothingProtected) {
  RawDeviceAttacker attacker = dep_.MakeAttacker();
  // With the password he can see the namespace...
  auto paths = attacker.ListAllPaths();
  ASSERT_TRUE(paths.ok());
  EXPECT_GT(paths->size(), 10u);
  // ...but no protected content, with zero service traffic.
  size_t log_before = dep_.key_service().log().size();
  for (const auto& path : *paths) {
    auto stat_is_file = !PathIsWithin(path, "/nonexistent");
    (void)stat_is_file;
    auto read = attacker.ReadFileOffline(path);
    if (read.ok()) {
      // Only directories resolve to errors; file reads must fail.
      FAIL() << "offline attacker read " << path;
    }
  }
  EXPECT_EQ(dep_.key_service().log().size(), log_before);
}

TEST_P(TheftTest, OnlineAttackerAccessIsFullyAudited) {
  RawDeviceAttacker attacker = dep_.MakeAttacker();
  auto creds = attacker.StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep_.MakeAttackerClients(*creds);
  ASSERT_TRUE(clients.ok());
  KeypadConfig config;
  config.ibe_enabled = GetParam();
  auto thief_fs = attacker.MountOnline(clients->services, config);
  ASSERT_TRUE(thief_fs.ok());

  // The thief reads two specific files.
  auto secret = (*thief_fs)->ReadAll("/work/secret3.doc");
  ASSERT_TRUE(secret.ok());
  EXPECT_EQ(StringOf(*secret), "trade secret /work/secret3.doc");
  ASSERT_TRUE((*thief_fs)->ReadAll("/home/note1.txt").ok());

  // The owner audits: exactly the accessed files (plus any prefetch in
  // their directories) are reported; unaccessed directories are clean.
  auto report = dep_.auditor().BuildReport(dep_.device_id(), t_loss_,
                                           dep_.fs().config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->key_log_verified);
  EXPECT_TRUE(report->metadata_log_verified);

  auto id_of = [&](const std::string& path) {
    return dep_.fs().ReadHeaderOf(path)->audit_id;
  };
  EXPECT_TRUE(report->Compromised(id_of("/work/secret3.doc")));
  EXPECT_TRUE(report->Compromised(id_of("/home/note1.txt")));
  // Zero false negatives is the hard guarantee; files in untouched
  // directories must not appear at all.
  EXPECT_FALSE(report->Compromised(id_of("/work/secret0.doc")) &&
               report->Compromised(id_of("/work/secret1.doc")) &&
               report->Compromised(id_of("/work/secret2.doc")) &&
               report->Compromised(id_of("/work/secret4.doc")) &&
               report->Compromised(id_of("/home/note0.txt")) &&
               report->Compromised(id_of("/home/note2.txt")))
      << "every file reported: audit lost all precision";
}

TEST_P(TheftTest, RevocationBlocksFutureAccessAndLogsAttempts) {
  dep_.ReportDeviceLost();

  RawDeviceAttacker attacker = dep_.MakeAttacker();
  auto creds = attacker.StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep_.MakeAttackerClients(*creds);
  ASSERT_TRUE(clients.ok());
  KeypadConfig config;
  config.ibe_enabled = GetParam();
  auto thief_fs = attacker.MountOnline(clients->services, config);
  ASSERT_TRUE(thief_fs.ok());

  EXPECT_FALSE((*thief_fs)->ReadAll("/work/secret0.doc").ok());
  EXPECT_FALSE((*thief_fs)->ReadAll("/home/note4.txt").ok());

  auto report = dep_.auditor().BuildReport(dep_.device_id(), t_loss_,
                                           dep_.fs().config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->compromised.empty());
  EXPECT_GE(report->denied_attempts, 1u);
}

TEST_P(TheftTest, UnaccessedDeviceAuditsClean) {
  // Alice gets her laptop back untouched: the report must be empty.
  auto report = dep_.auditor().BuildReport(dep_.device_id(), t_loss_,
                                           dep_.fs().config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->compromised.empty());
  EXPECT_EQ(report->denied_attempts, 0u);
}

TEST_P(TheftTest, WarmTheftExposesExactlyTheCachedWindow) {
  // The user works on two files, then the laptop is stolen warm within
  // Texp: those keys — and only those — must be assumed compromised.
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.ReadAll("/home/note0.txt").ok());
  ASSERT_TRUE(fs.ReadAll("/work/secret1.doc").ok());
  dep_.queue().AdvanceBy(SimDuration::Seconds(10));
  SimTime warm_loss = dep_.queue().Now();

  auto report = dep_.auditor().BuildReport(dep_.device_id(), warm_loss,
                                           fs.config().texp);
  ASSERT_TRUE(report.ok());
  // Every key currently in client memory appears in the report window.
  for (const auto& id : fs.key_cache().CurrentKeys()) {
    EXPECT_TRUE(report->Compromised(id))
        << "in-memory key missing from report";
  }
  EXPECT_TRUE(
      report->Compromised(fs.ReadHeaderOf("/home/note0.txt")->audit_id));
}

// --- Audit-invariant property sweep. -----------------------------------------

struct InvariantParams {
  bool ibe;
  PrefetchPolicy::Kind prefetch;
  int texp_seconds;
  uint64_t seed;
};

class AuditInvariantTest
    : public ::testing::TestWithParam<InvariantParams> {};

// Property: for ANY interleaving of user ops, theft point, and thief reads,
// every file whose content the thief obtained appears in the audit report
// built with cutoff Tloss − Texp. (Zero false negatives, §2.)
TEST_P(AuditInvariantTest, NoFalseNegativesEver) {
  const InvariantParams& params = GetParam();
  DeploymentOptions options;
  options.profile = WlanProfile();
  options.config.ibe_enabled = params.ibe;
  options.config.prefetch = {params.prefetch, 3, 4};
  options.config.texp = SimDuration::Seconds(params.texp_seconds);
  options.seed = params.seed;
  Deployment dep(options);
  auto& fs = dep.fs();
  SimRandom rng(params.seed);

  // Random victim activity: dirs, files, writes, renames, reads, idle gaps.
  std::vector<std::string> files;
  ASSERT_TRUE(fs.Mkdir("/d0").ok());
  ASSERT_TRUE(fs.Mkdir("/d1").ok());
  for (int op = 0; op < 60; ++op) {
    double dice = rng.UniformDouble();
    if (dice < 0.3 || files.empty()) {
      std::string path = "/d" + std::to_string(rng.UniformU64(2)) + "/f" +
                         std::to_string(op);
      if (fs.Create(path).ok()) {
        EXPECT_TRUE(fs.WriteAll(path, BytesOf("v" + path)).ok());
        files.push_back(path);
      }
    } else if (dice < 0.6) {
      fs.ReadAll(files[rng.UniformU64(files.size())]).status();
    } else if (dice < 0.75) {
      size_t idx = rng.UniformU64(files.size());
      std::string to = files[idx] + "r";
      if (fs.Rename(files[idx], to).ok()) {
        files[idx] = to;
      }
    } else {
      dep.queue().AdvanceBy(
          SimDuration::Seconds(rng.UniformInt(1, params.texp_seconds)));
    }
  }
  dep.queue().RunUntilIdle();
  SimTime t_loss = dep.queue().Now();

  // Theft. The thief mounts with stolen credentials and reads a random
  // subset using his own software.
  RawDeviceAttacker attacker = dep.MakeAttacker();
  auto creds = attacker.StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep.MakeAttackerClients(*creds);
  ASSERT_TRUE(clients.ok());
  KeypadConfig thief_config;
  thief_config.ibe_enabled = params.ibe;
  auto thief_fs = attacker.MountOnline(clients->services, thief_config);
  ASSERT_TRUE(thief_fs.ok());

  std::set<std::string> stolen;
  for (const auto& path : files) {
    if (rng.Bernoulli(0.4)) {
      auto read = (*thief_fs)->ReadAll(path);
      if (read.ok() && !read->empty()) {
        stolen.insert(path);
      }
    }
  }

  auto report = dep.auditor().BuildReport(dep.device_id(), t_loss,
                                          options.config.texp);
  ASSERT_TRUE(report.ok());
  for (const auto& path : stolen) {
    auto header = (*thief_fs)->ReadHeaderOf(path);
    ASSERT_TRUE(header.ok());
    EXPECT_TRUE(report->Compromised(header->audit_id))
        << "FALSE NEGATIVE: thief read " << path
        << " but it is missing from the audit report";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AuditInvariantTest,
    ::testing::Values(
        InvariantParams{false, PrefetchPolicy::Kind::kNone, 100, 1},
        InvariantParams{false, PrefetchPolicy::Kind::kFullDirOnNthMiss, 100, 2},
        InvariantParams{false, PrefetchPolicy::Kind::kRandomFromDir, 10, 3},
        InvariantParams{true, PrefetchPolicy::Kind::kNone, 100, 4},
        InvariantParams{true, PrefetchPolicy::Kind::kFullDirOnNthMiss, 100, 5},
        InvariantParams{true, PrefetchPolicy::Kind::kFullDirOnNthMiss, 10, 6},
        InvariantParams{true, PrefetchPolicy::Kind::kRandomFromDir, 1000, 7},
        InvariantParams{false, PrefetchPolicy::Kind::kFullDirOnNthMiss, 1, 8},
        InvariantParams{false, PrefetchPolicy::Kind::kSequenceHints, 100, 9},
        InvariantParams{true, PrefetchPolicy::Kind::kSequenceHints, 10, 10}),
    [](const ::testing::TestParamInfo<InvariantParams>& info) {
      std::string name = info.param.ibe ? "Ibe" : "NoIbe";
      switch (info.param.prefetch) {
        case PrefetchPolicy::Kind::kNone:
          name += "NoPrefetch";
          break;
        case PrefetchPolicy::Kind::kRandomFromDir:
          name += "RandomPrefetch";
          break;
        case PrefetchPolicy::Kind::kFullDirOnNthMiss:
          name += "DirPrefetch";
          break;
        case PrefetchPolicy::Kind::kSequenceHints:
          name += "SeqPrefetch";
          break;
      }
      name += "Texp" + std::to_string(info.param.texp_seconds);
      return name;
    });

// --- IBE-specific attacks. -----------------------------------------------------

class IbeAttackTest : public ::testing::Test {
 protected:
  IbeAttackTest() : dep_(SecurityOpts(/*ibe=*/true)) {}
  Deployment dep_;
};

TEST_F(IbeAttackTest, ThiefBlockingRegistrationCannotHideTheRename) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/blank_form.pdf").ok());
  ASSERT_TRUE(fs.WriteAll("/blank_form.pdf", BytesOf("empty form")).ok());
  // Let the creation registrations complete without draining the key-cache
  // expiry events (RunUntilIdle would fast-forward past Texp).
  dep_.queue().AdvanceBy(SimDuration::Seconds(2));
  ASSERT_TRUE(fs.ReadAll("/blank_form.pdf").ok());  // K_R cached.

  // The user renames + fills the file while the thief (already controlling
  // the network path) blocks the metadata registration. The writes work
  // through the 1 s grace key (Fig. 3b).
  dep_.client_link().set_disconnected(true);
  ASSERT_TRUE(fs.Rename("/blank_form.pdf", "/taxes_2011.pdf").ok());
  ASSERT_TRUE(fs.WriteAll("/taxes_2011.pdf", BytesOf("SSN 123-45-6789")).ok());
  // Theft happens more than a second later (the "extremely likely" case).
  dep_.queue().AdvanceBy(SimDuration::Seconds(10));

  RawDeviceAttacker attacker = dep_.MakeAttacker();
  auto creds = attacker.StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep_.MakeAttackerClients(*creds);
  ASSERT_TRUE(clients.ok());
  KeypadConfig config;
  config.ibe_enabled = true;
  auto thief_fs = attacker.MountOnline(clients->services, config);
  ASSERT_TRUE(thief_fs.ok());

  // Offline (network still severed): the file is sealed.
  EXPECT_FALSE((*thief_fs)->ReadAll("/taxes_2011.pdf").ok());

  // The thief reconnects and reads the file — which forces a truthful
  // registration of the CURRENT pathname at the metadata service.
  dep_.client_link().set_disconnected(false);
  auto read = (*thief_fs)->ReadAll("/taxes_2011.pdf");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(StringOf(*read), "SSN 123-45-6789");

  auto id = (*thief_fs)->ReadHeaderOf("/taxes_2011.pdf")->audit_id;
  auto path = dep_.metadata_service().ResolvePath(dep_.device_id(), id,
                                                  dep_.queue().Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/taxes_2011.pdf") << "the user sees the real name";
}

TEST_F(IbeAttackTest, BogusMetadataCannotUnlockTheFile) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/real_name.doc").ok());
  ASSERT_TRUE(fs.WriteAll("/real_name.doc", BytesOf("payload")).ok());
  dep_.client_link().set_disconnected(true);
  ASSERT_TRUE(fs.Rename("/real_name.doc", "/secret_plans.doc").ok());
  dep_.queue().AdvanceBy(SimDuration::Seconds(10));
  dep_.client_link().set_disconnected(false);

  // The thief registers a bogus path for the audit ID directly.
  AuditId id = fs.ReadHeaderOf("/secret_plans.doc")->audit_id;
  auto bogus_key = dep_.metadata_service().RegisterFileBinding(
      dep_.device_id(), id, DirId{}, "innocuous_download.tmp",
      /*is_rename=*/true);
  ASSERT_TRUE(bogus_key.ok());

  // The IBE key for the lie does not decrypt the lock (identity mismatch):
  auto header = fs.ReadHeaderOf("/secret_plans.doc");
  ASSERT_TRUE(header.ok());
  ASSERT_TRUE(header->ibe_locked);
  auto ct = IbeCiphertext::Deserialize(
      header->key_blob, *dep_.metadata_service().ibe_params().group);
  ASSERT_TRUE(ct.ok());
  auto key = IbePrivateKey::Deserialize(
      IbeIdentityFor(DirId{}, "innocuous_download.tmp", id), *bogus_key,
      *dep_.metadata_service().ibe_params().group);
  ASSERT_TRUE(key.ok());
  EXPECT_FALSE(
      IbeDecrypt(dep_.metadata_service().ibe_params(), *key, *ct).ok());

  // ...and the lie itself is recorded append-only: the history keeps both.
  auto history = dep_.metadata_service().HistoryOf(dep_.device_id(), id);
  ASSERT_GE(history.size(), 2u);
  EXPECT_EQ(history.back().name, "innocuous_download.tmp");
  EXPECT_EQ(history.front().name, "real_name.doc");
}

TEST_F(IbeAttackTest, SpuriousLogEntriesCannotHideRealAccesses) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/target.doc").ok());
  ASSERT_TRUE(fs.WriteAll("/target.doc", BytesOf("x")).ok());
  dep_.queue().RunUntilIdle();
  dep_.queue().AdvanceBy(SimDuration::Seconds(300));
  SimTime t_loss = dep_.queue().Now();
  AuditId id = fs.ReadHeaderOf("/target.doc")->audit_id;

  // The thief floods the log with fetches of one file he already saw, then
  // also reads the target.
  RawDeviceAttacker attacker = dep_.MakeAttacker();
  auto creds = attacker.StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep_.MakeAttackerClients(*creds);
  ASSERT_TRUE(clients.ok());
  for (int i = 0; i < 50; ++i) {
    clients->key->GetKey(id, AccessOp::kDemandFetch).status();
  }
  auto thief_fs = attacker.MountOnline(clients->services, {});
  ASSERT_TRUE(thief_fs.ok());
  ASSERT_TRUE((*thief_fs)->ReadAll("/target.doc").ok());

  auto report = dep_.auditor().BuildReport(dep_.device_id(), t_loss,
                                           SimDuration::Seconds(100));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Compromised(id));
}

}  // namespace
}  // namespace keypad
