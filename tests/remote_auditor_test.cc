// Tests for the remote auditor: the report built over the services' audit
// RPC surface must equal the in-process one, and the surface must be
// authenticated.

#include <gtest/gtest.h>

#include "src/keypad/deployment.h"

namespace keypad {
namespace {

class RemoteAuditorTest : public ::testing::Test {
 protected:
  static DeploymentOptions Opts() {
    DeploymentOptions options;
    options.profile = BroadbandProfile();
    options.config.ibe_enabled = false;
    options.config.prefetch = PrefetchPolicy::FullDirOnNthMiss(3);
    return options;
  }
  RemoteAuditorTest() : dep_(Opts()) {}

  // Builds a remote auditor using the device's (stolen or legitimate)
  // credentials over fresh RPC clients.
  struct Remote {
    std::unique_ptr<RpcClient> key_rpc;
    std::unique_ptr<RpcClient> meta_rpc;
    std::unique_ptr<RemoteAuditor> auditor;
  };
  Remote MakeRemote() {
    auto creds = dep_.MakeAttacker().StealCredentials();
    EXPECT_TRUE(creds.ok());
    auto clients = dep_.MakeAttackerClients(*creds);
    Remote remote;
    remote.key_rpc = std::move(clients->key_rpc);
    remote.meta_rpc = std::move(clients->meta_rpc);
    remote.auditor = std::make_unique<RemoteAuditor>(
        remote.key_rpc.get(), remote.meta_rpc.get(), creds->device_id,
        creds->key_secret, creds->meta_secret);
    return remote;
  }

  Deployment dep_;
};

TEST_F(RemoteAuditorTest, RemoteReportMatchesLocalReport) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/docs").ok());
  for (int i = 0; i < 5; ++i) {
    std::string path = "/docs/f" + std::to_string(i);
    ASSERT_TRUE(fs.Create(path).ok());
    ASSERT_TRUE(fs.WriteAll(path, BytesOf("x")).ok());
  }
  ASSERT_TRUE(fs.Rename("/docs/f0", "/docs/renamed").ok());
  dep_.queue().AdvanceBy(SimDuration::Seconds(300));
  SimTime t_loss = dep_.queue().Now();

  // Thief activity so the report is non-trivial.
  auto attacker = dep_.MakeAttacker();
  auto creds = attacker.StealCredentials();
  auto clients = dep_.MakeAttackerClients(*creds);
  auto thief_fs = attacker.MountOnline(clients->services, Opts().config);
  ASSERT_TRUE((*thief_fs)->ReadAll("/docs/renamed").ok());
  ASSERT_TRUE((*thief_fs)->ReadAll("/docs/f1").ok());
  ASSERT_TRUE((*thief_fs)->ReadAll("/docs/f2").ok());

  auto local = dep_.auditor().BuildReport(dep_.device_id(), t_loss,
                                          fs.config().texp);
  ASSERT_TRUE(local.ok());

  Remote remote = MakeRemote();
  auto report = remote.auditor->BuildReport(t_loss, fs.config().texp);
  ASSERT_TRUE(report.ok());

  ASSERT_EQ(report->compromised.size(), local->compromised.size());
  EXPECT_EQ(report->demand_accessed_count, local->demand_accessed_count);
  EXPECT_EQ(report->prefetch_only_count, local->prefetch_only_count);
  for (size_t i = 0; i < report->compromised.size(); ++i) {
    EXPECT_EQ(report->compromised[i].audit_id,
              local->compromised[i].audit_id);
    EXPECT_EQ(report->compromised[i].path_at_loss,
              local->compromised[i].path_at_loss);
    EXPECT_EQ(report->compromised[i].prefetch_only,
              local->compromised[i].prefetch_only);
  }
}

TEST_F(RemoteAuditorTest, AuditSurfaceRequiresValidCredentials) {
  EventQueue& queue = dep_.queue();
  (void)queue;
  auto creds = dep_.MakeAttacker().StealCredentials();
  ASSERT_TRUE(creds.ok());
  KeypadFs::Credentials bogus = *creds;
  bogus.key_secret = Bytes(32, 0x42);
  bogus.meta_secret = Bytes(32, 0x43);
  auto clients = dep_.MakeAttackerClients(bogus);
  RemoteAuditor auditor(clients->key_rpc.get(), clients->meta_rpc.get(),
                        bogus.device_id, bogus.key_secret,
                        bogus.meta_secret);
  auto report = auditor.BuildReport(dep_.queue().Now(),
                                    dep_.fs().config().texp);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(RemoteAuditorTest, CursorResyncsAfterRestoreFromOlderSnapshot) {
  // Satellite regression: the incremental cursor assumed the server's log
  // only ever grows. A shard restored from an older backup serves a log
  // SHORTER than the cursor; the auditor must detect the regression (seq
  // went backwards / restore epoch bumped), re-sync from zero, and keep
  // the rows the restored log no longer carries as evidence — not fetch
  // garbage past the end or silently forget audited accesses.
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fs.Create("/d/f" + std::to_string(i)).ok());
  }
  Bytes old_snapshot = dep_.key_service().Snapshot();

  // Activity past the backup point — rows destined to be rolled back.
  for (int i = 3; i < 7; ++i) {
    ASSERT_TRUE(fs.Create("/d/f" + std::to_string(i)).ok());
  }
  dep_.queue().AdvanceBy(SimDuration::Seconds(5));

  Remote remote = MakeRemote();
  auto first = remote.auditor->BuildReport(dep_.queue().Now(),
                                           dep_.fs().config().texp);
  ASSERT_TRUE(first.ok());
  uint64_t cursor_before = remote.auditor->cursor();
  size_t cached_before = remote.auditor->cached_entries();
  ASSERT_EQ(cursor_before, dep_.key_service().log().size());
  ASSERT_GT(cached_before, 0u);

  // The shard restores from the older backup: the log under the cursor
  // shrank and the restore epoch bumped.
  dep_.key_service().AbortStaged();
  ASSERT_TRUE(dep_.key_service().Restore(old_snapshot).ok());
  ASSERT_LT(dep_.key_service().log().size(), cursor_before);

  // Fresh post-restore activity, then the follow-up audit.
  ASSERT_TRUE(fs.Create("/d/g0").ok());
  dep_.queue().AdvanceBy(SimDuration::Seconds(1));
  auto second = remote.auditor->BuildReport(dep_.queue().Now(),
                                            dep_.fs().config().texp);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->key_log_verified);
  EXPECT_GE(remote.auditor->resyncs(), 1u);
  // The rolled-back creates are gone from the server but kept locally.
  EXPECT_GT(remote.auditor->regressed_entries(), 0u);
  // The cursor re-anchored to the restored log and covers it fully.
  EXPECT_EQ(remote.auditor->cursor(), dep_.key_service().log().size());
  // The post-restore create is visible to the audit.
  bool saw_new_create = false;
  AuditId g0 = fs.ReadHeaderOf("/d/g0")->audit_id;
  for (const auto& entry : dep_.key_service().log().entries()) {
    saw_new_create |= entry.audit_id == g0;
  }
  EXPECT_TRUE(saw_new_create);
}

TEST_F(RemoteAuditorTest, MetaCursorResyncsAfterRestoreFromOlderSnapshot) {
  // Same satellite regression, metadata tier: audit.meta_log_tail's cursor
  // assumed the namespace log only grows. A metadata service restored from
  // an older backup serves a shorter log under a bumped restore epoch; the
  // auditor must re-sync its metadata cursor from zero and keep the
  // rolled-back namespace rows as evidence.
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fs.Create("/d/f" + std::to_string(i)).ok());
  }
  Bytes old_snapshot = dep_.metadata_service().Snapshot();

  // Namespace activity past the backup point — bindings destined to be
  // rolled back.
  for (int i = 3; i < 7; ++i) {
    ASSERT_TRUE(fs.Create("/d/f" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(fs.Rename("/d/f3", "/d/f3r").ok());
  dep_.queue().AdvanceBy(SimDuration::Seconds(5));

  Remote remote = MakeRemote();
  auto first = remote.auditor->BuildReport(dep_.queue().Now(),
                                           dep_.fs().config().texp);
  ASSERT_TRUE(first.ok());
  uint64_t meta_cursor_before = remote.auditor->meta_cursor();
  ASSERT_EQ(meta_cursor_before, dep_.metadata_service().log().size());
  ASSERT_GT(remote.auditor->meta_cached_entries(), 0u);
  uint64_t key_resyncs_baseline = remote.auditor->resyncs();

  // The metadata service restores from the older backup: the log under the
  // cursor shrank and the restore epoch bumped. The key tier is untouched.
  dep_.metadata_service().AbortPending();
  ASSERT_TRUE(dep_.metadata_service().Restore(old_snapshot).ok());
  ASSERT_LT(dep_.metadata_service().log().size(), meta_cursor_before);

  // Fresh post-restore activity, then the follow-up audit.
  ASSERT_TRUE(fs.Create("/d/g0").ok());
  dep_.queue().AdvanceBy(SimDuration::Seconds(1));
  auto second = remote.auditor->BuildReport(dep_.queue().Now(),
                                            dep_.fs().config().texp);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->metadata_log_verified);
  // The regression was the metadata tier's alone.
  EXPECT_GE(remote.auditor->resyncs(), key_resyncs_baseline + 1);
  // The rolled-back bindings are gone from the server but kept locally.
  EXPECT_GT(remote.auditor->regressed_entries(), 0u);
  // The metadata cursor re-anchored to the restored log and covers it.
  EXPECT_EQ(remote.auditor->meta_cursor(),
            dep_.metadata_service().log().size());
  // The post-restore binding is visible to the audit.
  AuditId g0 = fs.ReadHeaderOf("/d/g0")->audit_id;
  bool saw_new_binding = false;
  for (const auto& record : dep_.metadata_service().log().records()) {
    saw_new_binding |= record.audit_id == g0;
  }
  EXPECT_TRUE(saw_new_binding);
}

TEST_F(RemoteAuditorTest, EmptyWindowGivesCleanRemoteReport) {
  ASSERT_TRUE(dep_.fs().Create("/f").ok());
  dep_.queue().AdvanceBy(SimDuration::Seconds(500));
  Remote remote = MakeRemote();
  auto report = remote.auditor->BuildReport(dep_.queue().Now(),
                                            dep_.fs().config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->compromised.empty());
}

}  // namespace
}  // namespace keypad
