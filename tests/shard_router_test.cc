// Tests for the sharded key tier (DESIGN.md §8): consistent-hash ring
// determinism, cross-shard scatter-gather merge ordering, group-commit
// audit logging across crash/restart, single-flight coalescing, the
// incremental audit cursor, and the prefetcher's bounded miss table.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/keypad/deployment.h"
#include "src/keypad/prefetcher.h"
#include "src/keyservice/shard_ring.h"

namespace keypad {
namespace {

std::vector<AuditId> RandomIds(size_t n, uint64_t seed) {
  SecureRandom rng(seed);
  std::vector<AuditId> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ids.push_back(AuditId::Random(rng));
  }
  return ids;
}

// --- Ring placement. --------------------------------------------------------

TEST(ShardRingTest, SameSeedSamePlacement) {
  ShardRing a(4, /*seed=*/0x5ead);
  ShardRing b(4, /*seed=*/0x5ead);
  for (const auto& id : RandomIds(500, 7)) {
    EXPECT_EQ(a.ShardFor(id), b.ShardFor(id));
  }
}

TEST(ShardRingTest, DifferentSeedMovesKeys) {
  ShardRing a(4, /*seed=*/1);
  ShardRing b(4, /*seed=*/2);
  size_t moved = 0;
  auto ids = RandomIds(500, 7);
  for (const auto& id : ids) {
    moved += a.ShardFor(id) != b.ShardFor(id) ? 1 : 0;
  }
  // ~3/4 of keys should land elsewhere under an independent ring.
  EXPECT_GT(moved, ids.size() / 2);
}

TEST(ShardRingTest, PlacementIsRoughlyBalanced) {
  ShardRing ring(4, /*seed=*/0x5ead);
  std::vector<size_t> counts(4, 0);
  auto ids = RandomIds(4000, 11);
  for (const auto& id : ids) {
    ASSERT_LT(ring.ShardFor(id), 4u);
    ++counts[ring.ShardFor(id)];
  }
  for (size_t shard = 0; shard < counts.size(); ++shard) {
    // Each shard should own a non-degenerate slice (expected 25%; accept
    // anything above 10% — vnode placement is random but seeded).
    EXPECT_GT(counts[shard], ids.size() / 10) << "shard " << shard;
  }
}

// --- Deployment-level scatter-gather. ---------------------------------------

DeploymentOptions ShardedOpts(int shards) {
  DeploymentOptions options;
  options.profile = LanProfile();
  options.config.ibe_enabled = false;
  options.config.prefetch = PrefetchPolicy::None();
  options.key_shards = shards;
  return options;
}

TEST(ShardRouterTest, CrossShardGetKeysMergesInCallerOrder) {
  Deployment dep(ShardedOpts(3));
  ShardRouter* router = dep.key_router();
  ASSERT_NE(router, nullptr);

  auto ids = RandomIds(24, 21);
  for (const auto& id : ids) {
    ASSERT_TRUE(router->CreateKey(id).ok());
  }
  // The batch must actually span shards for the test to mean anything.
  std::set<size_t> shards_hit;
  for (const auto& id : ids) {
    shards_hit.insert(router->ring().ShardFor(id));
  }
  ASSERT_GT(shards_hit.size(), 1u);

  auto keys = router->GetKeys(ids);
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ((*keys)[i].first, ids[i]) << "position " << i;
    EXPECT_FALSE((*keys)[i].second.empty());
  }
  EXPECT_GE(router->stats().scatter_batches, 1u);
  EXPECT_GE(router->stats().subrequests, shards_hit.size());
}

TEST(ShardRouterTest, CrossShardFetchGroupMergesPrefetchOrder) {
  Deployment dep(ShardedOpts(3));
  ShardRouter* router = dep.key_router();
  ASSERT_NE(router, nullptr);

  auto ids = RandomIds(16, 33);
  for (const auto& id : ids) {
    ASSERT_TRUE(router->CreateKey(id).ok());
  }
  const AuditId demand = ids[0];
  std::vector<AuditId> prefetch(ids.begin() + 1, ids.end());

  auto group = router->FetchGroup(demand, prefetch);
  ASSERT_TRUE(group.ok());
  EXPECT_FALSE(group->demand_key.empty());
  ASSERT_EQ(group->prefetched.size(), prefetch.size());
  for (size_t i = 0; i < prefetch.size(); ++i) {
    EXPECT_EQ(group->prefetched[i].first, prefetch[i]) << "position " << i;
  }

  // Every shard that served a slice must have logged those fetches: the
  // scattered audit trail covers exactly the keys that left the tier.
  size_t logged = 0;
  for (size_t s = 0; s < dep.key_shard_count(); ++s) {
    for (const auto& entry : dep.key_shard(s).log().entries()) {
      if (entry.op == AccessOp::kDemandFetch ||
          entry.op == AccessOp::kPrefetch) {
        ++logged;
      }
    }
  }
  EXPECT_EQ(logged, ids.size());
}

TEST(ShardRouterTest, SingleFlightCoalescesConcurrentFetches) {
  Deployment dep(ShardedOpts(2));
  ShardRouter* router = dep.key_router();
  ASSERT_NE(router, nullptr);

  auto ids = RandomIds(1, 55);
  ASSERT_TRUE(router->CreateKey(ids[0]).ok());
  size_t owner = router->ring().ShardFor(ids[0]);
  uint64_t handled_before = dep.key_shard_rpc_server(owner).requests_handled();

  constexpr int kWaiters = 6;
  int completed = 0;
  Bytes first_key;
  for (int i = 0; i < kWaiters; ++i) {
    router->GetKeyAsync(ids[0], AccessOp::kDemandFetch,
                        [&](Result<Bytes> key) {
                          ASSERT_TRUE(key.ok());
                          if (completed++ == 0) {
                            first_key = *key;
                          } else {
                            EXPECT_EQ(*key, first_key);
                          }
                        });
  }
  dep.queue().RunUntilIdle();

  EXPECT_EQ(completed, kWaiters);
  EXPECT_EQ(router->stats().single_flight_leaders, 1u);
  EXPECT_EQ(router->stats().single_flight_joins,
            static_cast<uint64_t>(kWaiters - 1));
  // One RPC reached the owning shard, and the audit log records one fetch —
  // the key left the service once.
  EXPECT_EQ(dep.key_shard_rpc_server(owner).requests_handled(),
            handled_before + 1);
  size_t fetches = 0;
  for (const auto& entry : dep.key_shard(owner).log().entries()) {
    if (entry.op == AccessOp::kDemandFetch) {
      ++fetches;
    }
  }
  EXPECT_EQ(fetches, 1u);
}

TEST(ShardRouterTest, SingleFlightSurvivesMidFlightFailover) {
  // Six waiters coalesce onto one in-flight fetch; the owning shard's
  // primary dies while that flight is on the wire. The leader flight must
  // fail over to the promoted backup and complete every waiter — a crash
  // must never strand the coalesced followers.
  DeploymentOptions options = ShardedOpts(2);
  options.key_replicas = 2;
  options.rpc.timeout = SimDuration::Seconds(1);
  options.rpc.retry.max_attempts = 2;
  Deployment dep(options);
  ShardRouter* router = dep.key_router();
  ASSERT_NE(router, nullptr);

  auto ids = RandomIds(1, 55);
  ASSERT_TRUE(router->CreateKey(ids[0]).ok());
  size_t owner = router->ring().ShardFor(ids[0]);

  constexpr int kWaiters = 6;
  int completed = 0;
  Bytes first_key;
  for (int i = 0; i < kWaiters; ++i) {
    router->GetKeyAsync(ids[0], AccessOp::kDemandFetch,
                        [&](Result<Bytes> key) {
                          ASSERT_TRUE(key.ok());
                          if (completed++ == 0) {
                            first_key = *key;
                          } else {
                            EXPECT_EQ(*key, first_key);
                          }
                        });
  }
  // Virtual time has not moved, so the flight is still in the air when the
  // owner's leader dies. (Replicated deployments keep perpetual lease
  // timers, so pump with AdvanceBy, not RunUntilIdle.)
  dep.CrashKeyShard(owner);
  dep.queue().AdvanceBy(SimDuration::Seconds(12));

  EXPECT_EQ(completed, kWaiters);
  EXPECT_EQ(router->stats().single_flight_leaders, 1u);
  EXPECT_EQ(router->stats().single_flight_joins,
            static_cast<uint64_t>(kWaiters - 1));
  EXPECT_GE(dep.key_stub(owner).failovers() + dep.key_stub(owner).redirects(),
            1u);
  // The promoted backup (replicated at create time) served the key, and its
  // chain logged the fetch.
  ReplicaSet* set = dep.replica_set(owner);
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->current_leader(), 1u);
  size_t fetches = 0;
  for (const auto& entry : dep.key_replica(owner, 1).log().entries()) {
    if (entry.op == AccessOp::kDemandFetch && entry.audit_id == ids[0]) {
      ++fetches;
    }
  }
  EXPECT_EQ(fetches, 1u);
}

// --- Group commit. ----------------------------------------------------------

TEST(GroupCommitTest, BatchedFetchSealsOneGroup) {
  DeploymentOptions options = ShardedOpts(1);
  Deployment dep(options);

  auto ids = RandomIds(8, 77);
  for (const auto& id : ids) {
    ASSERT_TRUE(dep.key_client().CreateKey(id).ok());
  }
  KeyService::LoadStats before = dep.key_service().load_stats();
  auto keys = dep.key_client().GetKeys(ids);
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), ids.size());

  KeyService::LoadStats after = dep.key_service().load_stats();
  // One RPC batch = one commit group covering all eight fetch records.
  EXPECT_EQ(after.commit_groups, before.commit_groups + 1);
  EXPECT_EQ(after.log_entries, before.log_entries + ids.size());
  EXPECT_GE(after.max_group_size, ids.size());
  EXPECT_TRUE(dep.key_service().log().Verify().ok());
}

TEST(GroupCommitTest, CommitWindowGroupsBackToBackRequests) {
  DeploymentOptions options = ShardedOpts(1);
  options.key_service.commit_window = SimDuration::Millis(2);
  Deployment dep(options);

  auto ids = RandomIds(6, 91);
  // Creations ride commit windows too; settle them first.
  for (const auto& id : ids) {
    ASSERT_TRUE(dep.key_client().CreateKey(id).ok());
  }
  KeyService::LoadStats before = dep.key_service().load_stats();

  // Fire six independent fetches into the same window without pumping the
  // clock between them.
  int completed = 0;
  for (const auto& id : ids) {
    dep.key_client().GetKeyAsync(id, AccessOp::kDemandFetch,
                                       [&](Result<Bytes> key) {
                                         ASSERT_TRUE(key.ok());
                                         ++completed;
                                       });
  }
  dep.queue().RunUntilIdle();
  ASSERT_EQ(completed, static_cast<int>(ids.size()));

  KeyService::LoadStats after = dep.key_service().load_stats();
  EXPECT_EQ(after.log_entries, before.log_entries + ids.size());
  // The window must have amortized several appends per seal.
  EXPECT_LT(after.commit_groups - before.commit_groups, ids.size());
  EXPECT_GE(after.window_flushes, before.window_flushes + 1);
  EXPECT_TRUE(dep.key_service().log().Verify().ok());
}

TEST(GroupCommitTest, PerShardChainsVerifyAcrossCrashRestart) {
  DeploymentOptions options = ShardedOpts(2);
  options.key_service.commit_window = SimDuration::Millis(1);
  Deployment dep(options);
  ShardRouter* router = dep.key_router();
  ASSERT_NE(router, nullptr);

  auto ids = RandomIds(12, 13);
  for (const auto& id : ids) {
    ASSERT_TRUE(router->CreateKey(id).ok());
  }
  ASSERT_TRUE(router->GetKeys(ids).ok());

  // Crash shard 0 mid-deployment (any staged-but-unsealed window entries
  // die with it), restart it from its durable snapshot, then keep going.
  dep.CrashKeyShard(0);
  dep.queue().AdvanceBy(SimDuration::Millis(50));
  dep.RestartKeyShard(0);

  auto keys = router->GetKeys(ids);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), ids.size());

  for (size_t s = 0; s < dep.key_shard_count(); ++s) {
    EXPECT_TRUE(dep.key_shard(s).log().Verify().ok()) << "shard " << s;
    EXPECT_GT(dep.key_shard(s).log().size(), 0u) << "shard " << s;
  }
}

// --- Incremental audit cursor. ----------------------------------------------

TEST(AuditCursorTest, EntriesAfterSeqReturnsSuffix) {
  DeploymentOptions options = ShardedOpts(1);
  Deployment dep(options);
  auto ids = RandomIds(5, 17);
  for (const auto& id : ids) {
    ASSERT_TRUE(dep.key_client().CreateKey(id).ok());
  }
  const AuditLog& log = dep.key_service().log();
  ASSERT_EQ(log.size(), ids.size());

  auto suffix = log.EntriesAfterSeq(3);
  ASSERT_EQ(suffix.size(), log.size() - 3);
  for (size_t i = 0; i < suffix.size(); ++i) {
    EXPECT_EQ(suffix[i].seq, 3 + i);
  }
  EXPECT_TRUE(log.EntriesAfterSeq(log.size()).empty());
  EXPECT_EQ(log.EntriesAfterSeq(0).size(), log.size());
}

TEST(AuditCursorTest, RemoteAuditorAuditsIncrementally) {
  DeploymentOptions options = ShardedOpts(1);
  Deployment dep(options);
  auto& fs = dep.fs();
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/a").ok());
  ASSERT_TRUE(fs.WriteAll("/d/a", BytesOf("x")).ok());
  dep.queue().AdvanceBy(SimDuration::Seconds(5));

  auto creds = dep.MakeAttacker().StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep.MakeAttackerClients(*creds);
  ASSERT_TRUE(clients.ok());
  RemoteAuditor auditor(clients->key_rpc.get(), clients->meta_rpc.get(),
                        creds->device_id, creds->key_secret,
                        creds->meta_secret);

  SimTime t_loss = dep.queue().Now();
  auto first = auditor.BuildReport(t_loss, dep.options().config.texp);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->key_log_verified);
  // The cursor now covers the whole committed log.
  EXPECT_EQ(auditor.cursor(), dep.key_service().log().size());
  size_t cached_after_first = auditor.cached_entries();
  EXPECT_GT(cached_after_first, 0u);

  // No new activity: the follow-up audit moves nothing.
  auto second = auditor.BuildReport(t_loss, dep.options().config.texp);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(auditor.cached_entries(), cached_after_first);
  EXPECT_EQ(second->compromised.size(), first->compromised.size());

  // New accesses: the third audit fetches only the suffix, and sees them.
  // Push past Texp first so the cached key expires and the read hits the
  // service again (a cache hit would be invisible to the log, correctly).
  dep.queue().AdvanceBy(dep.options().config.texp +
                        SimDuration::Seconds(10));
  ASSERT_TRUE(fs.ReadAll("/d/a").ok());
  dep.queue().AdvanceBy(SimDuration::Seconds(1));
  uint64_t cursor_before = auditor.cursor();
  auto third = auditor.BuildReport(dep.queue().Now(),
                                   dep.options().config.texp);
  ASSERT_TRUE(third.ok());
  EXPECT_GT(auditor.cursor(), cursor_before);
  EXPECT_GT(auditor.cached_entries(), cached_after_first);
}

// --- Prefetcher miss-table cap. ---------------------------------------------

TEST(PrefetcherCapTest, MissTableIsBoundedWithLruEviction) {
  PrefetchPolicy policy = PrefetchPolicy::FullDirOnNthMiss(3);
  policy.max_tracked_dirs = 4;
  Prefetcher prefetcher(policy, /*rng_seed=*/1);
  SecureRandom rng(3);
  auto list_none = [] { return std::vector<AuditId>(); };

  for (int d = 0; d < 100; ++d) {
    std::string dir = "/dir" + std::to_string(d);
    prefetcher.OnMiss(dir, AuditId::Random(rng), list_none);
    EXPECT_LE(prefetcher.tracked_dirs(), 4u);
  }
  EXPECT_EQ(prefetcher.tracked_dirs(), 4u);

  // A hot directory keeps its counter alive across unrelated misses: two
  // misses, then fresh dirs touch the table, then the third miss fires.
  prefetcher.OnMiss("/hot", AuditId::Random(rng), list_none);
  prefetcher.OnMiss("/hot", AuditId::Random(rng), list_none);
  for (int d = 0; d < 3; ++d) {
    prefetcher.OnMiss("/cold" + std::to_string(d), AuditId::Random(rng),
                      list_none);
    prefetcher.OnMiss("/hot", AuditId::Random(rng), list_none);
  }
  // /hot reached its third miss within the window above, so a prefetch
  // batch was attempted (siblings list is empty, so just check it counted).
  EXPECT_LE(prefetcher.tracked_dirs(), 4u);

  // An evicted directory restarts from zero: with cap 1, every new dir
  // evicts the last, so no dir ever reaches the trigger.
  policy.max_tracked_dirs = 1;
  Prefetcher tiny(policy, /*rng_seed=*/2);
  for (int i = 0; i < 10; ++i) {
    tiny.OnMiss(i % 2 == 0 ? "/a" : "/b", AuditId::Random(rng), list_none);
  }
  EXPECT_EQ(tiny.tracked_dirs(), 1u);
  EXPECT_EQ(tiny.prefetch_batches(), 0u);
}

}  // namespace
}  // namespace keypad
