// Unit tests for the key cache: expiration, in-use refresh, secure erase,
// and the exact time-averaged size accounting Fig. 11 relies on.

#include <gtest/gtest.h>

#include "src/keypad/key_cache.h"
#include "src/sim/event_queue.h"

namespace keypad {
namespace {

class KeyCacheTest : public ::testing::Test {
 protected:
  KeyCacheTest() : cache_(&queue_, SimDuration::Seconds(100)) {
    rng_ = std::make_unique<SecureRandom>(uint64_t{1});
  }

  AuditId NewId() { return AuditId::Random(*rng_); }

  EventQueue queue_;
  KeyCache cache_;
  std::unique_ptr<SecureRandom> rng_;
};

TEST_F(KeyCacheTest, InsertLookupRoundTrip) {
  AuditId id = NewId();
  EXPECT_FALSE(cache_.Lookup(id).has_value());
  cache_.Insert(id, Bytes{1, 2, 3});
  auto key = cache_.Lookup(id);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, (Bytes{1, 2, 3}));
  EXPECT_TRUE(cache_.Contains(id));
  EXPECT_EQ(cache_.size(), 1u);
}

TEST_F(KeyCacheTest, UnusedKeyExpiresExactlyAtTexp) {
  AuditId id = NewId();
  cache_.Insert(id, Bytes{1});
  queue_.AdvanceBy(SimDuration::Seconds(99));
  EXPECT_TRUE(cache_.Contains(id));
  queue_.AdvanceBy(SimDuration::Seconds(2));
  EXPECT_FALSE(cache_.Contains(id));
}

TEST_F(KeyCacheTest, UsedKeyWithoutRefreshFnStillExpires) {
  AuditId id = NewId();
  cache_.Insert(id, Bytes{1});
  cache_.Lookup(id);
  queue_.AdvanceBy(SimDuration::Seconds(101));
  EXPECT_FALSE(cache_.Contains(id));
}

TEST_F(KeyCacheTest, UsedKeyRefreshesAndExtends) {
  int refreshes = 0;
  cache_.set_refresh([&](const AuditId&,
                         std::function<void(Result<Bytes>)> done) {
    ++refreshes;
    // Simulate a 50 ms round trip.
    queue_.ScheduleAfter(SimDuration::Millis(50),
                         [done] { done(Bytes{9, 9}); });
  });
  AuditId id = NewId();
  cache_.Insert(id, Bytes{1});
  cache_.Lookup(id);

  queue_.AdvanceBy(SimDuration::Seconds(101));
  EXPECT_EQ(refreshes, 1);
  ASSERT_TRUE(cache_.Contains(id));
  // The refreshed key replaced the old bytes.
  EXPECT_EQ(*cache_.Lookup(id), (Bytes{9, 9}));
  EXPECT_EQ(cache_.refreshes_started(), 1u);
}

TEST_F(KeyCacheTest, RefreshFailureErasesKey) {
  cache_.set_refresh([&](const AuditId&,
                         std::function<void(Result<Bytes>)> done) {
    queue_.ScheduleAfter(SimDuration::Millis(50), [done] {
      done(UnavailableError("service down"));
    });
  });
  AuditId id = NewId();
  cache_.Insert(id, Bytes{1});
  cache_.Lookup(id);
  queue_.AdvanceBy(SimDuration::Seconds(101));
  EXPECT_FALSE(cache_.Contains(id));
}

TEST_F(KeyCacheTest, RefreshChainContinuesWhileInUse) {
  int refreshes = 0;
  cache_.set_refresh([&](const AuditId&,
                         std::function<void(Result<Bytes>)> done) {
    ++refreshes;
    done(Bytes{static_cast<uint8_t>(refreshes)});
  });
  AuditId id = NewId();
  cache_.Insert(id, Bytes{0});
  for (int i = 0; i < 5; ++i) {
    cache_.Lookup(id);  // Mark used.
    queue_.AdvanceBy(SimDuration::Seconds(101));
  }
  EXPECT_EQ(refreshes, 5);
  EXPECT_TRUE(cache_.Contains(id));
  // Stop using it: one more period and it's gone.
  queue_.AdvanceBy(SimDuration::Seconds(101));
  EXPECT_FALSE(cache_.Contains(id));
}

TEST_F(KeyCacheTest, ReinsertResetsExpiry) {
  AuditId id = NewId();
  cache_.Insert(id, Bytes{1});
  queue_.AdvanceBy(SimDuration::Seconds(60));
  cache_.Insert(id, Bytes{2});
  queue_.AdvanceBy(SimDuration::Seconds(60));
  // 120 s after the first insert, but only 60 s after the second.
  ASSERT_TRUE(cache_.Contains(id));
  EXPECT_EQ(*cache_.Lookup(id), Bytes{2});
}

TEST_F(KeyCacheTest, EraseAndClear) {
  AuditId a = NewId(), b = NewId();
  cache_.Insert(a, Bytes{1});
  cache_.Insert(b, Bytes{2});
  cache_.Erase(a);
  EXPECT_FALSE(cache_.Contains(a));
  EXPECT_TRUE(cache_.Contains(b));
  auto cleared = cache_.Clear();
  EXPECT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared[0], b);
  EXPECT_EQ(cache_.size(), 0u);
  // Pending expiry events were cancelled; advancing is a no-op.
  queue_.AdvanceBy(SimDuration::Seconds(200));
}

TEST_F(KeyCacheTest, CurrentKeysSnapshot) {
  AuditId a = NewId(), b = NewId();
  cache_.Insert(a, Bytes{1});
  cache_.Insert(b, Bytes{2});
  auto keys = cache_.CurrentKeys();
  EXPECT_EQ(keys.size(), 2u);
}

TEST_F(KeyCacheTest, AverageSizeIntegralIsExact) {
  cache_.ResetStats();
  SimTime start = queue_.Now();
  // 0 keys for 10 s, 1 key for 10 s, 2 keys for 10 s => average 1.0.
  queue_.AdvanceBy(SimDuration::Seconds(10));
  cache_.Insert(NewId(), Bytes{1});
  queue_.AdvanceBy(SimDuration::Seconds(10));
  cache_.Insert(NewId(), Bytes{2});
  queue_.AdvanceBy(SimDuration::Seconds(10));
  EXPECT_NEAR(cache_.AverageSizeSince(start), 1.0, 0.01);
}

TEST_F(KeyCacheTest, StatsCounting) {
  AuditId id = NewId();
  cache_.Insert(id, Bytes{1});
  cache_.Lookup(id);
  cache_.Lookup(id);
  cache_.Lookup(NewId());  // Miss: not counted as hit.
  EXPECT_EQ(cache_.hits(), 2u);
  EXPECT_EQ(cache_.insertions(), 1u);
  cache_.ResetStats();
  EXPECT_EQ(cache_.hits(), 0u);
}

}  // namespace
}  // namespace keypad
