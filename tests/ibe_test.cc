// Tests for the from-scratch pairing and Boneh–Franklin IBE. These use the
// 256-bit test parameter set for speed; one test exercises the 512-bit
// production parameters end to end.

#include <gtest/gtest.h>

#include "src/ibe/bf_ibe.h"
#include "src/ibe/curve.h"
#include "src/ibe/fp2.h"
#include "src/ibe/pairing.h"

namespace keypad {
namespace {

class IbeTest : public ::testing::Test {
 protected:
  const PairingParams& params_ = TestPairingParams();
};

TEST_F(IbeTest, ParamsAreWellFormed) {
  SecureRandom rng(uint64_t{1});
  EXPECT_TRUE(BigInt::IsProbablePrime(params_.p, rng, 8));
  EXPECT_TRUE(BigInt::IsProbablePrime(params_.q, rng, 8));
  // p ≡ 3 (mod 4).
  EXPECT_TRUE(params_.p.Bit(0));
  EXPECT_TRUE(params_.p.Bit(1));
  // p + 1 = q * cofactor.
  EXPECT_EQ(BigInt::Mul(params_.q, params_.cofactor),
            BigInt::Add(params_.p, BigInt::One()));
  // Generator on curve with exact order q.
  EXPECT_TRUE(IsOnCurve(params_.g, params_));
  EXPECT_FALSE(params_.g.infinity);
  EXPECT_TRUE(EcScalarMul(params_.q, params_.g, params_.p).infinity);
}

TEST_F(IbeTest, Fp2FieldAxioms) {
  SecureRandom rng(uint64_t{2});
  const BigInt& p = params_.p;
  for (int i = 0; i < 20; ++i) {
    Fp2 a{BigInt::RandomBelow(rng, p), BigInt::RandomBelow(rng, p)};
    Fp2 b{BigInt::RandomBelow(rng, p), BigInt::RandomBelow(rng, p)};
    Fp2 c{BigInt::RandomBelow(rng, p), BigInt::RandomBelow(rng, p)};
    // Commutativity and associativity of multiplication.
    EXPECT_EQ(Fp2Mul(a, b, p), Fp2Mul(b, a, p));
    EXPECT_EQ(Fp2Mul(Fp2Mul(a, b, p), c, p), Fp2Mul(a, Fp2Mul(b, c, p), p));
    // Distributivity.
    EXPECT_EQ(Fp2Mul(a, Fp2Add(b, c, p), p),
              Fp2Add(Fp2Mul(a, b, p), Fp2Mul(a, c, p), p));
    // Square matches mul.
    EXPECT_EQ(Fp2Square(a, p), Fp2Mul(a, a, p));
    // Inverse.
    if (!a.IsZero()) {
      EXPECT_TRUE(Fp2Mul(a, Fp2Inverse(a, p), p).IsOne());
    }
    // Conjugate is the Frobenius for p ≡ 3 mod 4: a^p == conj(a).
    EXPECT_EQ(Fp2Pow(a, p, p), Fp2Conjugate(a, p));
  }
}

TEST_F(IbeTest, EcGroupLaws) {
  const BigInt& p = params_.p;
  const EcPoint& g = params_.g;
  EcPoint g2 = EcDouble(g, p);
  EcPoint g3a = EcAdd(g2, g, p);
  EcPoint g3b = EcAdd(g, g2, p);
  EXPECT_EQ(g3a, g3b);
  EXPECT_TRUE(IsOnCurve(g2, params_));
  EXPECT_TRUE(IsOnCurve(g3a, params_));

  // P + (-P) = O; P + O = P.
  EXPECT_TRUE(EcAdd(g, EcNegate(g, p), p).infinity);
  EXPECT_EQ(EcAdd(g, EcPoint::Infinity(), p), g);

  // Scalar arithmetic: (a+b)G = aG + bG.
  BigInt a = BigInt::FromU64(123456789);
  BigInt b = BigInt::FromU64(987654321);
  EcPoint lhs = EcScalarMul(BigInt::Add(a, b), g, p);
  EcPoint rhs = EcAdd(EcScalarMul(a, g, p), EcScalarMul(b, g, p), p);
  EXPECT_EQ(lhs, rhs);
}

TEST_F(IbeTest, HashToPointLandsInSubgroup) {
  for (const char* id : {"alice", "bob", "/home/taxes_2011|0042"}) {
    EcPoint q = HashToPoint(id, params_);
    EXPECT_FALSE(q.infinity);
    EXPECT_TRUE(IsOnCurve(q, params_));
    EXPECT_TRUE(EcScalarMul(params_.q, q, params_.p).infinity);
  }
  // Deterministic and identity-sensitive.
  EXPECT_EQ(HashToPoint("alice", params_), HashToPoint("alice", params_));
  EXPECT_FALSE(HashToPoint("alice", params_) == HashToPoint("alicf", params_));
}

TEST_F(IbeTest, PointSerializationRoundTrip) {
  EcPoint g2 = EcDouble(params_.g, params_.p);
  Bytes ser = SerializePoint(g2, params_);
  auto back = DeserializePoint(ser, params_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, g2);

  Bytes inf_ser = SerializePoint(EcPoint::Infinity(), params_);
  auto inf = DeserializePoint(inf_ser, params_);
  ASSERT_TRUE(inf.ok());
  EXPECT_TRUE(inf->infinity);

  // Corrupted points are rejected.
  ser[5] ^= 1;
  EXPECT_FALSE(DeserializePoint(ser, params_).ok());
  EXPECT_FALSE(DeserializePoint(Bytes(3, 0), params_).ok());
}

TEST_F(IbeTest, PairingNonDegenerate) {
  Fp2 e = TatePairing(params_.g, params_.g, params_);
  EXPECT_FALSE(e.IsOne());
  EXPECT_FALSE(e.IsZero());
  // Value lies in mu_q: e^q == 1.
  EXPECT_TRUE(Fp2Pow(e, params_.q, params_.p).IsOne());
}

TEST_F(IbeTest, PairingBilinear) {
  const BigInt& p = params_.p;
  BigInt a = BigInt::FromU64(31337);
  BigInt b = BigInt::FromU64(271828);
  EcPoint ag = EcScalarMul(a, params_.g, p);
  EcPoint bg = EcScalarMul(b, params_.g, p);

  Fp2 e_base = TatePairing(params_.g, params_.g, params_);
  Fp2 e_ab = TatePairing(ag, bg, params_);
  Fp2 e_base_ab = Fp2Pow(e_base, BigInt::Mul(a, b), p);
  EXPECT_EQ(e_ab, e_base_ab);

  // e(aP, Q) == e(P, aQ).
  EXPECT_EQ(TatePairing(ag, params_.g, params_),
            TatePairing(params_.g, ag, params_));
}

TEST_F(IbeTest, PairingWithInfinityIsOne) {
  EXPECT_TRUE(TatePairing(EcPoint::Infinity(), params_.g, params_).IsOne());
  EXPECT_TRUE(TatePairing(params_.g, EcPoint::Infinity(), params_).IsOne());
}

TEST_F(IbeTest, EncryptDecryptRoundTrip) {
  SecureRandom rng(uint64_t{77});
  IbePkg pkg(params_, rng);
  Bytes message = BytesOf("the wrapped per-file data key: 32 bytes here!!");

  IbeCiphertext ct =
      IbeEncrypt(pkg.public_params(), "/home/taxes_2011|id42", message, rng);
  IbePrivateKey key = pkg.Extract("/home/taxes_2011|id42");
  auto pt = IbeDecrypt(pkg.public_params(), key, ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, message);
}

TEST_F(IbeTest, WrongIdentityFailsToDecrypt) {
  SecureRandom rng(uint64_t{78});
  IbePkg pkg(params_, rng);
  Bytes message = BytesOf("secret");

  IbeCiphertext ct =
      IbeEncrypt(pkg.public_params(), "/home/real_path|id1", message, rng);
  // The thief lies about the pathname; the PKG hands him a key for the
  // bogus identity, which cannot unlock the file.
  IbePrivateKey bogus = pkg.Extract("/tmp/download|id1");
  auto pt = IbeDecrypt(pkg.public_params(), bogus, ct);
  EXPECT_FALSE(pt.ok());
  EXPECT_EQ(pt.status().code(), StatusCode::kDataLoss);
}

TEST_F(IbeTest, TamperedCiphertextRejected) {
  SecureRandom rng(uint64_t{79});
  IbePkg pkg(params_, rng);
  IbeCiphertext ct =
      IbeEncrypt(pkg.public_params(), "id", BytesOf("payload"), rng);
  IbePrivateKey key = pkg.Extract("id");

  IbeCiphertext bad = ct;
  bad.ct[0] ^= 1;
  EXPECT_FALSE(IbeDecrypt(pkg.public_params(), key, bad).ok());

  bad = ct;
  bad.tag[0] ^= 1;
  EXPECT_FALSE(IbeDecrypt(pkg.public_params(), key, bad).ok());
}

TEST_F(IbeTest, CiphertextSerializationRoundTrip) {
  SecureRandom rng(uint64_t{80});
  IbePkg pkg(params_, rng);
  IbeCiphertext ct =
      IbeEncrypt(pkg.public_params(), "id", BytesOf("some payload"), rng);
  Bytes ser = ct.Serialize(params_);
  auto back = IbeCiphertext::Deserialize(ser, params_);
  ASSERT_TRUE(back.ok());
  IbePrivateKey key = pkg.Extract("id");
  auto pt = IbeDecrypt(pkg.public_params(), key, *back);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(StringOf(*pt), "some payload");
}

TEST_F(IbeTest, PrivateKeySerializationRoundTrip) {
  SecureRandom rng(uint64_t{81});
  IbePkg pkg(params_, rng);
  IbePrivateKey key = pkg.Extract("alice");
  Bytes ser = key.Serialize(params_);
  auto back = IbePrivateKey::Deserialize("alice", ser, params_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->d, key.d);
}

TEST_F(IbeTest, DistinctPkgsProduceIncompatibleKeys) {
  SecureRandom rng(uint64_t{82});
  IbePkg pkg1(params_, rng);
  IbePkg pkg2(params_, rng);
  IbeCiphertext ct =
      IbeEncrypt(pkg1.public_params(), "id", BytesOf("x"), rng);
  IbePrivateKey foreign = pkg2.Extract("id");
  EXPECT_FALSE(IbeDecrypt(pkg1.public_params(), foreign, ct).ok());
}

TEST(IbeProductionParamsTest, FullRoundTripAt512Bits) {
  const PairingParams& params = DefaultPairingParams();
  EXPECT_EQ(params.p.BitLength(), 512);
  EXPECT_EQ(params.q.BitLength(), 160);
  SecureRandom rng(uint64_t{99});
  IbePkg pkg(params, rng);
  Bytes message(48, 0xAB);
  IbeCiphertext ct = IbeEncrypt(pkg.public_params(), "prod-id", message, rng);
  auto pt = IbeDecrypt(pkg.public_params(), pkg.Extract("prod-id"), ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, message);
}

TEST(IbeParamGenTest, CustomSmallParams) {
  SecureRandom rng(uint64_t{123});
  auto params = GeneratePairingParams(rng, 192, 96);
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->p.BitLength(), 192);
  EXPECT_TRUE(EcScalarMul(params->q, params->g, params->p).infinity);
  // Pairing is non-degenerate on the fresh group too.
  EXPECT_FALSE(TatePairing(params->g, params->g, *params).IsOne());
}

TEST(IbeParamGenTest, RejectsBadSizes) {
  SecureRandom rng(uint64_t{124});
  EXPECT_FALSE(GeneratePairingParams(rng, 100, 96).ok());
  EXPECT_FALSE(GeneratePairingParams(rng, 512, 16).ok());
}

}  // namespace
}  // namespace keypad
