// Tests for the paired-device architecture (§3.5): hoard-backed
// disconnected operation, journaling + upload, audit preservation, and the
// performance role as a caching proxy (Fig. 8b).

#include <gtest/gtest.h>

#include "src/keypad/deployment.h"

namespace keypad {
namespace {

class PairedDeviceTest : public ::testing::Test {
 protected:
  static DeploymentOptions Opts() {
    DeploymentOptions options;
    options.profile = CellularProfile();  // Phone uplink: 3G.
    options.paired_phone = true;
    options.config.ibe_enabled = false;
    options.config.prefetch = PrefetchPolicy::FullDirOnNthMiss(3);
    return options;
  }
  PairedDeviceTest() : dep_(Opts()) {}

  Deployment dep_;
};

TEST_F(PairedDeviceTest, NormalOperationFlowsThroughPhone) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  ASSERT_TRUE(fs.WriteAll("/f", BytesOf("hello")).ok());
  EXPECT_EQ(StringOf(*fs.ReadAll("/f")), "hello");
  EXPECT_GT(dep_.phone()->stats().forwarded_upstream, 0u);
  // The key service logged the creation even though the laptop never
  // talked to it directly.
  EXPECT_GT(dep_.key_service().log().size(), 0u);
}

TEST_F(PairedDeviceTest, HoardServesRepeatMissesWithoutUplink) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  ASSERT_TRUE(fs.WriteAll("/f", BytesOf("x")).ok());
  // Expire the laptop's cache twice over (refresh then erase); the phone's
  // hoard TTL is much longer.
  dep_.queue().AdvanceBy(fs.config().texp * 2 + SimDuration::Seconds(2));
  ASSERT_EQ(fs.key_cache().size(), 0u);
  ASSERT_GT(dep_.phone()->hoard_size(), 0u);

  uint64_t hoard_before = dep_.phone()->stats().served_from_hoard;
  SimTime t0 = dep_.queue().Now();
  ASSERT_TRUE(fs.ReadAll("/f").ok());
  SimDuration elapsed = dep_.queue().Now() - t0;
  EXPECT_GT(dep_.phone()->stats().served_from_hoard, hoard_before);
  // Served over Bluetooth (20 ms), no 300 ms cellular RTT.
  EXPECT_LT(elapsed.millis(), 100);
}

TEST_F(PairedDeviceTest, HoardServedAccessesStillReachTheAuditLog) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  ASSERT_TRUE(fs.WriteAll("/f", BytesOf("x")).ok());
  AuditId id = fs.ReadHeaderOf("/f")->audit_id;
  dep_.queue().AdvanceBy(fs.config().texp * 2 + SimDuration::Seconds(2));

  size_t before = 0;
  for (const auto& e : dep_.key_service().log().entries()) {
    before += e.audit_id == id;
  }
  ASSERT_TRUE(fs.ReadAll("/f").ok());
  dep_.queue().RunUntilIdle();  // Journal upload drains.
  size_t after = 0;
  for (const auto& e : dep_.key_service().log().entries()) {
    after += e.audit_id == id;
  }
  EXPECT_GT(after, before) << "hoard-served access never reached the log";
}

TEST_F(PairedDeviceTest, DisconnectedReadsWorkFromHoard) {
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  ASSERT_TRUE(fs.WriteAll("/f", BytesOf("cached")).ok());
  dep_.queue().AdvanceBy(fs.config().texp * 2 + SimDuration::Seconds(2));

  // The user boards a plane: phone uplink gone, Bluetooth still up.
  dep_.phone()->SetUplinkConnected(false);
  auto read = fs.ReadAll("/f");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(StringOf(*read), "cached");
  EXPECT_GT(dep_.phone()->key_journal_size(), 0u);
}

TEST_F(PairedDeviceTest, DisconnectedCreateJournalsAndUploadsOnReconnect) {
  dep_.phone()->SetUplinkConnected(false);
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/offline_doc.txt").ok());
  ASSERT_TRUE(fs.WriteAll("/offline_doc.txt", BytesOf("midflight")).ok());
  EXPECT_EQ(StringOf(*fs.ReadAll("/offline_doc.txt")), "midflight");
  AuditId id = fs.ReadHeaderOf("/offline_doc.txt")->audit_id;
  EXPECT_GT(dep_.phone()->stats().offline_creates, 0u);

  // The key service knows nothing yet.
  EXPECT_FALSE(dep_.key_service().GetKey(dep_.device_id(), id).ok());

  // Reconnect: journals flush; the key and the log entries materialize.
  dep_.phone()->SetUplinkConnected(true);
  EXPECT_EQ(dep_.phone()->key_journal_size(), 0u);
  EXPECT_TRUE(dep_.key_service().GetKey(dep_.device_id(), id).ok());
  // The journaled creation carries the original client timestamp.
  bool found_create = false;
  for (const auto& e : dep_.key_service().log().entries()) {
    if (e.audit_id == id && e.op == AccessOp::kCreate) {
      found_create = true;
      EXPECT_LT(e.client_time, e.timestamp);
    }
  }
  EXPECT_TRUE(found_create);
}

TEST_F(PairedDeviceTest, DisconnectedMkdirAndRenameJournal) {
  dep_.phone()->SetUplinkConnected(false);
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/trip").ok());
  ASSERT_TRUE(fs.Create("/trip/notes.txt").ok());
  ASSERT_TRUE(fs.Rename("/trip/notes.txt", "/trip/journal.txt").ok());
  EXPECT_GT(dep_.phone()->meta_journal_size(), 0u);

  dep_.phone()->SetUplinkConnected(true);
  EXPECT_EQ(dep_.phone()->meta_journal_size(), 0u);
  // The metadata service reconstructs the path from the uploaded journal.
  AuditId id = fs.ReadHeaderOf("/trip/journal.txt")->audit_id;
  auto path = dep_.metadata_service().ResolvePath(dep_.device_id(), id,
                                                  dep_.queue().Now());
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(*path, "/trip/journal.txt");
}

TEST_F(PairedDeviceTest, AuditTrailCompleteAfterDisconnectedEpisode) {
  // The full §3.5 story: work offline, reconnect, lose the laptop — the
  // report covers the offline accesses too.
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Create("/predisconnect.txt").ok());
  ASSERT_TRUE(fs.WriteAll("/predisconnect.txt", BytesOf("a")).ok());
  dep_.queue().AdvanceBy(fs.config().texp * 2 + SimDuration::Seconds(2));

  dep_.phone()->SetUplinkConnected(false);
  SimTime t_loss = dep_.queue().Now();
  ASSERT_TRUE(fs.ReadAll("/predisconnect.txt").ok());  // Hoard-served.
  dep_.queue().AdvanceBy(SimDuration::Minutes(5));
  dep_.phone()->SetUplinkConnected(true);

  auto report = dep_.auditor().BuildReport(dep_.device_id(), t_loss,
                                           fs.config().texp);
  ASSERT_TRUE(report.ok());
  AuditId id = fs.ReadHeaderOf("/predisconnect.txt")->audit_id;
  EXPECT_TRUE(report->Compromised(id));
}

TEST_F(PairedDeviceTest, PhoneLossExposureIsItsHoard) {
  auto& fs = dep_.fs();
  for (int i = 0; i < 4; ++i) {
    std::string path = "/f" + std::to_string(i);
    ASSERT_TRUE(fs.Create(path).ok());
    ASSERT_TRUE(fs.WriteAll(path, BytesOf("v")).ok());
  }
  // If laptop AND phone are stolen, the phone's hoard bounds the extra
  // exposure the auditor must assume.
  auto hoarded = dep_.phone()->HoardedKeys();
  EXPECT_EQ(hoarded.size(), 4u);
}

TEST_F(PairedDeviceTest, PairingHidesCellularLatency) {
  // Fig. 8b: repeated cold misses through the phone cost ~Bluetooth RTTs
  // after the hoard warms, instead of 3G RTTs.
  auto& fs = dep_.fs();
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  for (int i = 0; i < 8; ++i) {
    std::string path = "/d/f" + std::to_string(i);
    ASSERT_TRUE(fs.Create(path).ok());
    ASSERT_TRUE(fs.WriteAll(path, BytesOf("x")).ok());
  }
  // Laptop cache cold, phone hoard warm.
  dep_.queue().AdvanceBy(fs.config().texp * 2 + SimDuration::Seconds(2));
  ASSERT_EQ(fs.key_cache().size(), 0u);

  SimTime t0 = dep_.queue().Now();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fs.Read("/d/f" + std::to_string(i), 0, 1).ok());
  }
  SimDuration elapsed = dep_.queue().Now() - t0;
  // 8 misses over 3G would be ≥ 2400 ms; via the phone it's a few
  // Bluetooth round trips (prefetch collapses most of them).
  EXPECT_LT(elapsed.millis(), 300);
}

}  // namespace
}  // namespace keypad
