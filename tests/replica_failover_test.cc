// Replicated key shards (DESIGN.md §9): lease-based failover, client
// redirect-following, audit-chain reconciliation after a partitioned
// primary loses the leadership contest, and determinism of the failover
// timeline. The invariant under test throughout: a client-acknowledged
// audit record may end up duplicated, but is never lost.
//
// NOTE: replicated deployments keep perpetual lease-renewal timers on the
// event queue, so these tests pump with AdvanceBy (never RunUntilIdle).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/keypad/deployment.h"

namespace keypad {
namespace {

DeploymentOptions ReplicatedOpts(int replicas) {
  DeploymentOptions options;
  options.profile = LanProfile();
  options.config.ibe_enabled = false;
  options.config.prefetch = PrefetchPolicy::None();
  options.key_replicas = replicas;
  // Short attempt ladders so a call into a dead replica fails over well
  // inside the stub's failover budget.
  options.rpc.timeout = SimDuration::Seconds(1);
  options.rpc.retry.max_attempts = 2;
  return options;
}

bool ChainHasCreate(const AuditLog& log, const AuditId& id) {
  for (const auto& entry : log.entries()) {
    if (entry.op == AccessOp::kCreate && entry.audit_id == id) {
      return true;
    }
  }
  return false;
}

bool OrphansHaveCreate(const ReplicaSet& set, const AuditId& id) {
  for (const auto& orphan : set.orphaned()) {
    if (orphan.entry.op == AccessOp::kCreate && orphan.entry.audit_id == id) {
      return true;
    }
  }
  return false;
}

TEST(ReplicaFailoverTest, LeaderCrashPromotesBackupAndClientFollows) {
  Deployment dep(ReplicatedOpts(3));
  auto& fs = dep.fs();
  ReplicaSet* set = dep.replica_set(0);
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->size(), 3u);
  EXPECT_EQ(set->current_leader(), 0u);

  // Normal operation: every acked create is synchronously on all replicas.
  std::vector<AuditId> pre_ids;
  for (int i = 0; i < 6; ++i) {
    std::string path = "/pre" + std::to_string(i);
    ASSERT_TRUE(fs.Create(path).ok());
    ASSERT_TRUE(fs.WriteAll(path, BytesOf("x")).ok());
    pre_ids.push_back(fs.ReadHeaderOf(path)->audit_id);
  }
  size_t chain_size = dep.key_replica(0, 0).log().size();
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(dep.key_replica(0, r).log().Verify().ok()) << "replica " << r;
    EXPECT_EQ(dep.key_replica(0, r).log().size(), chain_size)
        << "replica " << r;
  }

  // Kill the leader. The lowest-index live backup promotes after lease
  // expiry plus its seniority slot.
  dep.CrashKeyShard(0);
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  EXPECT_EQ(set->current_leader(), 1u);
  EXPECT_TRUE(set->is_leader(1));
  EXPECT_GE(set->stats().promotions, 1u);

  // The client's next operation fails over and lands on the new leader.
  ASSERT_TRUE(fs.Create("/post0").ok());
  KeyServiceClient& stub = dep.key_stub(0);
  EXPECT_GE(stub.failovers() + stub.redirects(), 1u);
  EXPECT_EQ(stub.leader_hint(), set->current_leader());

  // No acked record was lost to the crash: the new leader's chain carries
  // every pre-crash create.
  const AuditLog& leader_log = dep.key_replica(0, 1).log();
  for (const auto& id : pre_ids) {
    EXPECT_TRUE(ChainHasCreate(leader_log, id)) << id.ToHex();
  }

  // The ex-primary restarts and rejoins as a backup.
  dep.RestartKeyShard(0);
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  EXPECT_FALSE(set->is_leader(0));
  EXPECT_EQ(set->current_leader(), 1u);
  EXPECT_GE(set->stats().rejoins, 1u);

  // New work replicates to it again; all chains reconverge byte-for-byte.
  ASSERT_TRUE(fs.Create("/post1").ok());
  dep.queue().AdvanceBy(SimDuration::Seconds(1));
  const AuditLog& authority = dep.key_replica(0, set->current_leader()).log();
  for (size_t r = 0; r < 3; ++r) {
    const AuditLog& log = dep.key_replica(0, r).log();
    EXPECT_TRUE(log.Verify().ok()) << "replica " << r;
    ASSERT_EQ(log.size(), authority.size()) << "replica " << r;
    EXPECT_EQ(log.entries().back().entry_hash,
              authority.entries().back().entry_hash)
        << "replica " << r;
  }
}

TEST(ReplicaFailoverTest, StaleStubFollowsNotLeaderRedirect) {
  Deployment dep(ReplicatedOpts(2));
  auto& fs = dep.fs();
  ASSERT_TRUE(fs.Create("/seed").ok());
  ReplicaSet* set = dep.replica_set(0);
  ASSERT_NE(set, nullptr);

  // Fail leadership over to replica 1, then bring replica 0 back as a
  // live backup.
  dep.CrashKeyShard(0);
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  dep.RestartKeyShard(0);
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  ASSERT_EQ(set->current_leader(), 1u);
  ASSERT_FALSE(set->is_leader(0));

  // A fresh stub starts with a stale leader hint (replica 0). The backup's
  // serve gate answers NOT_LEADER:1 and the stub follows the redirect
  // instead of burning a timeout.
  auto creds = dep.MakeAttacker().StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep.MakeAttackerClients(*creds);
  ASSERT_TRUE(clients.ok());
  SecureRandom rng(19);
  AuditId id = AuditId::Random(rng);
  ASSERT_TRUE(clients->key->CreateKey(id).ok());
  EXPECT_GE(clients->key->redirects(), 1u);
  EXPECT_EQ(clients->key->leader_hint(), 1u);
}

TEST(ReplicaFailoverTest, PartitionedPrimaryOrphansSurfaceToForensics) {
  DeploymentOptions options = ReplicatedOpts(2);
  // Held responses wait out one backup ack_timeout when the mesh first
  // partitions; give each attempt room for that.
  options.rpc.timeout = SimDuration::Seconds(3);
  Deployment dep(options);
  auto& fs = dep.fs();
  ReplicaSet* set = dep.replica_set(0);
  ASSERT_NE(set, nullptr);
  SimTime t_loss = dep.queue().Now();

  std::vector<AuditId> pre_ids;
  for (int i = 0; i < 4; ++i) {
    std::string path = "/pre" + std::to_string(i);
    ASSERT_TRUE(fs.Create(path).ok());
    pre_ids.push_back(fs.ReadHeaderOf(path)->audit_id);
  }

  // Partition the primary off the replication mesh. Its client link stays
  // up, so it keeps serving: acked records now live on replica 0 only.
  dep.PartitionKeyReplica(0, 0, true);
  std::vector<AuditId> partition_ids;
  for (int i = 0; i < 3; ++i) {
    std::string path = "/part" + std::to_string(i);
    ASSERT_TRUE(fs.Create(path).ok());
    partition_ids.push_back(fs.ReadHeaderOf(path)->audit_id);
  }
  // Meanwhile the isolated backup's lease lapsed and it promoted itself:
  // split brain, exactly what reconciliation exists for.
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  EXPECT_GE(set->stats().promotions, 1u);

  // The primary dies before the partition heals — its sealed, acked,
  // never-shipped suffix exists nowhere else. The client fails over.
  dep.CrashKeyReplica(0, 0);
  std::vector<AuditId> post_ids;
  for (int i = 0; i < 4; ++i) {
    std::string path = "/post" + std::to_string(i);
    ASSERT_TRUE(fs.Create(path).ok());
    post_ids.push_back(fs.ReadHeaderOf(path)->audit_id);
  }
  ASSERT_EQ(set->current_leader(), 1u);

  // Heal and restart: the ex-primary finds replica 1 leading, detects the
  // chain divergence, surfaces its surplus entries as orphans, and rejoins
  // as a backup.
  dep.PartitionKeyReplica(0, 0, false);
  dep.RestartKeyReplica(0, 0);
  dep.queue().AdvanceBy(SimDuration::Seconds(5));
  EXPECT_FALSE(set->is_leader(0));
  EXPECT_GE(set->stats().rejoins, 1u);
  EXPECT_GE(set->stats().orphaned_entries, partition_ids.size());

  // Duplicated-but-never-lost: every acked create is in the authoritative
  // chain or the orphan list.
  const AuditLog& authority = dep.key_replica(0, set->current_leader()).log();
  for (const auto& id : pre_ids) {
    EXPECT_TRUE(ChainHasCreate(authority, id)) << id.ToHex();
  }
  for (const auto& id : post_ids) {
    EXPECT_TRUE(ChainHasCreate(authority, id)) << id.ToHex();
  }
  for (const auto& id : partition_ids) {
    EXPECT_TRUE(ChainHasCreate(authority, id) || OrphansHaveCreate(*set, id))
        << id.ToHex();
  }

  // Both live chains verify, and the forensic report enumerates the
  // orphaned records instead of dropping them.
  for (size_t r = 0; r < 2; ++r) {
    EXPECT_TRUE(dep.key_replica(0, r).log().Verify().ok()) << "replica " << r;
  }
  auto report = dep.auditor().BuildReport(dep.device_id(), t_loss,
                                          dep.options().config.texp);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->replica_logs_verified);
  EXPECT_GE(report->duplicate_records + report->orphaned_records,
            partition_ids.size());
}

struct ScenarioDigest {
  std::string timeline;
  size_t leader = 0;
  uint64_t chain_size = 0;
  Bytes chain_tip;

  bool operator==(const ScenarioDigest& other) const {
    return timeline == other.timeline && leader == other.leader &&
           chain_size == other.chain_size && chain_tip == other.chain_tip;
  }
};

ScenarioDigest RunCrashScenario(uint64_t seed) {
  ResetRpcClientIdsForTesting();
  DeploymentOptions options = ReplicatedOpts(3);
  options.seed = seed;
  Deployment dep(options);
  auto& fs = dep.fs();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fs.Create("/a" + std::to_string(i)).ok());
  }
  dep.CrashKeyShard(0);
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fs.Create("/b" + std::to_string(i)).ok());
  }
  dep.RestartKeyShard(0);
  dep.queue().AdvanceBy(SimDuration::Seconds(4));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(fs.Create("/c" + std::to_string(i)).ok());
  }
  dep.queue().AdvanceBy(SimDuration::Seconds(1));

  ReplicaSet* set = dep.replica_set(0);
  ScenarioDigest digest;
  for (const auto& event : set->timeline()) {
    digest.timeline += std::to_string(event.at.nanos()) + "|" + event.what +
                       "|" + std::to_string(event.replica) + "|" +
                       std::to_string(event.epoch) + "\n";
  }
  digest.leader = set->current_leader();
  const AuditLog& log = dep.key_replica(0, digest.leader).log();
  digest.chain_size = log.size();
  digest.chain_tip = log.entries().back().entry_hash;
  return digest;
}

TEST(ReplicaFailoverTest, FailoverTimelineIsDeterministic) {
  ScenarioDigest a = RunCrashScenario(7);
  ScenarioDigest b = RunCrashScenario(7);
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace keypad
