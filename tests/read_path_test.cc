// Read-path overhaul tests (DESIGN.md §13): the server-side hot-key cache
// must be audit-preserving (every hit still lands exactly one correctly
// typed log entry), the typed multi-get must type and order its rows like
// the lone calls it replaces, revoked devices must never be served from a
// stale resident copy, the batched router path must leave verifiable
// chains, the sharded client key cache must be observably identical to the
// simple map baseline (including the exposure-window time integral), and
// the v2 sequence prefetcher must stay behind its confidence gate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "src/keypad/deployment.h"
#include "src/keypad/key_cache.h"
#include "src/keypad/prefetcher.h"
#include "src/keyservice/key_service.h"

namespace keypad {
namespace {

std::vector<AuditId> RandomIds(size_t n, uint64_t seed) {
  SecureRandom rng(seed);
  std::vector<AuditId> ids;
  ids.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ids.push_back(AuditId::Random(rng));
  }
  return ids;
}

// Log rows for one device, in seq order.
std::vector<AccessOp> OpsFor(const KeyService& service,
                             const std::string& device) {
  std::vector<AccessOp> ops;
  for (const auto& entry : service.log().entries()) {
    if (entry.device_id == device) {
      ops.push_back(entry.op);
    }
  }
  return ops;
}

// --- Hot-key cache: audit-preserving fast path. -----------------------------

TEST(HotKeyCacheTest, EveryHotHitStillAppendsOneTypedEntry) {
  EventQueue queue;
  KeyService service(&queue, /*rng_seed=*/0xA1);
  service.RegisterDevice("laptop");
  AuditId id = RandomIds(1, 1)[0];
  ASSERT_TRUE(service.CreateKey("laptop", id).ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.GetKey("laptop", id, AccessOp::kDemandFetch).ok());
  }
  ASSERT_TRUE(service.GetKey("laptop", id, AccessOp::kRefresh).ok());

  // One kCreate, three kDemandFetch, one kRefresh — cache hits included.
  std::vector<AccessOp> expected = {
      AccessOp::kCreate, AccessOp::kDemandFetch, AccessOp::kDemandFetch,
      AccessOp::kDemandFetch, AccessOp::kRefresh};
  EXPECT_EQ(OpsFor(service, "laptop"), expected);
  // CreateKey marked the record resident, so every fetch was a hot hit.
  EXPECT_EQ(service.load_stats().hot_hits, 4u);
  EXPECT_EQ(service.load_stats().hot_misses, 0u);
  EXPECT_TRUE(service.log().Verify().ok());
}

TEST(HotKeyCacheTest, ColdFetchMissesThenHits) {
  EventQueue queue;
  KeyService service(&queue, 0xA2);
  service.RegisterDevice("laptop");
  AuditId id = RandomIds(1, 2)[0];
  ASSERT_TRUE(service.CreateKey("laptop", id).ok());
  service.DropHotKeysForTesting();

  ASSERT_TRUE(service.GetKey("laptop", id).ok());
  EXPECT_EQ(service.load_stats().hot_misses, 1u);
  ASSERT_TRUE(service.GetKey("laptop", id).ok());
  EXPECT_EQ(service.load_stats().hot_hits, 1u);
  EXPECT_EQ(service.load_stats().hot_size, 1u);
}

TEST(HotKeyCacheTest, KeyMutationsInvalidateResidentLines) {
  EventQueue queue;
  KeyService service(&queue, 0xA3);
  service.RegisterDevice("laptop");
  auto ids = RandomIds(2, 3);
  ASSERT_TRUE(service.CreateKey("laptop", ids[0]).ok());
  ASSERT_TRUE(service.CreateKey("laptop", ids[1]).ok());
  ASSERT_TRUE(service.GetKey("laptop", ids[0]).ok());

  // Disable, then destroy: the resident copies must not serve.
  ASSERT_TRUE(service.DisableKey("laptop", ids[0]).ok());
  EXPECT_FALSE(service.GetKey("laptop", ids[0]).ok());
  ASSERT_TRUE(service.DestroyKey("laptop", ids[1]).ok());
  EXPECT_FALSE(service.GetKey("laptop", ids[1]).ok());
  EXPECT_GE(service.load_stats().hot_invalidations, 2u);
  EXPECT_TRUE(service.log().Verify().ok());
}

TEST(HotKeyCacheTest, EnvKnobForcesItOff) {
  ASSERT_EQ(setenv("KEYPAD_HOTKEY_CACHE", "off", 1), 0);
  EventQueue queue;
  KeyService service(&queue, 0xA4);
  unsetenv("KEYPAD_HOTKEY_CACHE");
  service.RegisterDevice("laptop");
  AuditId id = RandomIds(1, 4)[0];
  ASSERT_TRUE(service.CreateKey("laptop", id).ok());
  ASSERT_TRUE(service.GetKey("laptop", id).ok());
  ASSERT_TRUE(service.GetKey("laptop", id).ok());
  EXPECT_EQ(service.load_stats().hot_hits, 0u);
  EXPECT_EQ(service.load_stats().hot_size, 0u);
}

// --- Typed multi-get. --------------------------------------------------------

TEST(MultiGetTest, TypesAndOrdersRowsLikeTheLoneCalls) {
  EventQueue queue;
  KeyService service(&queue, 0xB1);
  service.RegisterDevice("laptop");
  auto ids = RandomIds(3, 5);
  for (const auto& id : ids) {
    ASSERT_TRUE(service.CreateKey("laptop", id).ok());
  }

  auto result = service.GetKeysTyped(
      "laptop", {{ids[0], AccessOp::kDemandFetch},
                 {ids[1], AccessOp::kPrefetch},
                 {ids[2], AccessOp::kPrefetch}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->keys.size(), 3u);
  EXPECT_TRUE(result->misses.empty());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(result->keys[i].first, ids[i]) << "position " << i;
  }

  std::vector<AccessOp> expected = {
      AccessOp::kCreate, AccessOp::kCreate, AccessOp::kCreate,
      AccessOp::kDemandFetch, AccessOp::kPrefetch, AccessOp::kPrefetch};
  EXPECT_EQ(OpsFor(service, "laptop"), expected);

  // The batch's rows sealed as one commit group.
  const auto& entries = service.log().entries();
  ASSERT_EQ(entries.size(), 6u);
  EXPECT_EQ(entries[3].group_start, entries[5].group_start);
  EXPECT_TRUE(service.log().Verify().ok());
}

TEST(MultiGetTest, PerItemMissesDontFailTheBatch) {
  EventQueue queue;
  KeyService service(&queue, 0xB2);
  service.RegisterDevice("laptop");
  auto ids = RandomIds(3, 6);
  ASSERT_TRUE(service.CreateKey("laptop", ids[0]).ok());
  ASSERT_TRUE(service.CreateKey("laptop", ids[1]).ok());
  ASSERT_TRUE(service.DisableKey("laptop", ids[1]).ok());
  // ids[2] never existed.

  auto result = service.GetKeysTyped(
      "laptop", {{ids[0], AccessOp::kDemandFetch},
                 {ids[1], AccessOp::kDemandFetch},
                 {ids[2], AccessOp::kPrefetch}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->keys.size(), 1u);
  EXPECT_EQ(result->keys[0].first, ids[0]);
  ASSERT_EQ(result->misses.size(), 2u);
  EXPECT_EQ(result->misses[0].audit_id, ids[1]);
  EXPECT_EQ(result->misses[0].status.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(result->misses[1].audit_id, ids[2]);
  EXPECT_EQ(result->misses[1].status.code(), StatusCode::kNotFound);

  // The disabled key earned a kDenied row; the missing id earned nothing.
  std::vector<AccessOp> ops = OpsFor(service, "laptop");
  EXPECT_EQ(std::count(ops.begin(), ops.end(), AccessOp::kDenied), 1);
  EXPECT_EQ(std::count(ops.begin(), ops.end(), AccessOp::kDemandFetch), 1);
}

// --- Revocation fencing. -----------------------------------------------------

TEST(RevocationTest, RevokedBatchEarnsDeniedRowsAndNegativeCacheHits) {
  EventQueue queue;
  KeyService service(&queue, 0xC1);
  service.RegisterDevice("laptop");
  auto ids = RandomIds(3, 7);
  for (const auto& id : ids) {
    ASSERT_TRUE(service.CreateKey("laptop", id).ok());
  }
  ASSERT_TRUE(service.DisableDevice("laptop").ok());

  auto result = service.GetKeysTyped("laptop",
                                     {{ids[0], AccessOp::kDemandFetch},
                                      {ids[1], AccessOp::kPrefetch},
                                      {ids[2], AccessOp::kPrefetch}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);

  // One kDenied per attempted id, all after the kRevoke row.
  std::vector<AccessOp> ops = OpsFor(service, "laptop");
  EXPECT_EQ(std::count(ops.begin(), ops.end(), AccessOp::kDenied), 3);
  bool revoked = false;
  for (AccessOp op : ops) {
    if (op == AccessOp::kRevoke) {
      revoked = true;
      continue;
    }
    if (revoked) {
      EXPECT_EQ(op, AccessOp::kDenied) << "grant-typed row after kRevoke";
    }
  }

  // The second storm of attempts is served by the negative cache.
  EXPECT_FALSE(service.GetKey("laptop", ids[0]).ok());
  EXPECT_GE(service.load_stats().negative_hits, 1u);
  // Revocation dropped the device's resident lines.
  EXPECT_EQ(service.load_stats().hot_size, 0u);
  EXPECT_TRUE(service.log().Verify().ok());
}

TEST(RevocationTest, ReenableClearsTheNegativeCache) {
  EventQueue queue;
  KeyService service(&queue, 0xC2);
  service.RegisterDevice("laptop");
  AuditId id = RandomIds(1, 8)[0];
  ASSERT_TRUE(service.CreateKey("laptop", id).ok());
  ASSERT_TRUE(service.DisableDevice("laptop").ok());
  EXPECT_FALSE(service.GetKey("laptop", id).ok());
  ASSERT_TRUE(service.EnableDevice("laptop").ok());
  EXPECT_TRUE(service.GetKey("laptop", id).ok());
  EXPECT_TRUE(service.log().Verify().ok());
}

// --- Batched router path (end to end over RPC). ------------------------------

DeploymentOptions ShardedOpts(int shards) {
  DeploymentOptions options;
  options.profile = LanProfile();
  options.config.ibe_enabled = false;
  options.config.prefetch = PrefetchPolicy::None();
  options.key_shards = shards;
  return options;
}

TEST(BatchedRouterTest, DemandFetchesAuditCorrectlyAndChainsVerify) {
  Deployment dep(ShardedOpts(3));
  ShardRouter* router = dep.key_router();
  ASSERT_NE(router, nullptr);
  ASSERT_TRUE(router->batch_fetch());

  auto ids = RandomIds(24, 9);
  for (const auto& id : ids) {
    ASSERT_TRUE(router->CreateKey(id).ok());
  }
  for (const auto& id : ids) {
    ASSERT_TRUE(router->GetKey(id, AccessOp::kDemandFetch).ok());
  }

  size_t demand_rows = 0;
  for (size_t s = 0; s < 3; ++s) {
    const KeyService& shard = dep.key_shard(s);
    EXPECT_TRUE(shard.log().Verify().ok()) << "shard " << s;
    for (const auto& entry : shard.log().entries()) {
      if (entry.op == AccessOp::kDemandFetch) {
        ++demand_rows;
      }
    }
  }
  EXPECT_EQ(demand_rows, ids.size());
  EXPECT_GE(router->stats().batch_rpcs, 1u);
  EXPECT_EQ(router->stats().batched_keys, ids.size());
}

TEST(BatchedRouterTest, DirectoryPrefetchRowsTypeAsPrefetch) {
  Deployment dep(ShardedOpts(3));
  ShardRouter* router = dep.key_router();
  ASSERT_NE(router, nullptr);

  auto ids = RandomIds(12, 10);
  for (const auto& id : ids) {
    ASSERT_TRUE(router->CreateKey(id).ok());
  }
  auto keys = router->GetKeys(ids);
  ASSERT_TRUE(keys.ok());
  ASSERT_EQ(keys->size(), ids.size());

  size_t prefetch_rows = 0;
  for (size_t s = 0; s < 3; ++s) {
    for (const auto& entry : dep.key_shard(s).log().entries()) {
      EXPECT_NE(entry.op, AccessOp::kDemandFetch);
      if (entry.op == AccessOp::kPrefetch) {
        ++prefetch_rows;
      }
    }
  }
  EXPECT_EQ(prefetch_rows, ids.size());
}

TEST(BatchedRouterTest, FetchGroupLandsDemandRowBeforeItsPrefetchRows) {
  Deployment dep(ShardedOpts(2));
  ShardRouter* router = dep.key_router();
  ASSERT_NE(router, nullptr);

  auto ids = RandomIds(10, 11);
  for (const auto& id : ids) {
    ASSERT_TRUE(router->CreateKey(id).ok());
  }
  std::vector<AuditId> prefetch(ids.begin() + 1, ids.end());
  auto group = router->FetchGroup(ids[0], prefetch);
  ASSERT_TRUE(group.ok());

  // In the demand id's shard, its kDemandFetch row must precede every
  // kPrefetch row of the same batch (server FetchGroup semantics).
  size_t shard = router->ring().ShardFor(ids[0]);
  uint64_t demand_seq = 0;
  std::vector<uint64_t> prefetch_seqs;
  for (const auto& entry : dep.key_shard(shard).log().entries()) {
    if (entry.op == AccessOp::kDemandFetch && entry.audit_id == ids[0]) {
      demand_seq = entry.seq;
    } else if (entry.op == AccessOp::kPrefetch) {
      prefetch_seqs.push_back(entry.seq);
    }
  }
  for (uint64_t seq : prefetch_seqs) {
    EXPECT_LT(demand_seq, seq);
  }
}

TEST(BatchedRouterTest, RevokedDeviceNeverReceivesAKeyThroughTheBatchPath) {
  Deployment dep(ShardedOpts(3));
  ShardRouter* router = dep.key_router();
  ASSERT_NE(router, nullptr);

  auto ids = RandomIds(9, 12);
  for (const auto& id : ids) {
    ASSERT_TRUE(router->CreateKey(id).ok());
  }
  for (size_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(dep.key_shard(s).DisableDevice(dep.device_id()).ok());
  }
  for (const auto& id : ids) {
    EXPECT_FALSE(router->GetKey(id, AccessOp::kDemandFetch).ok());
  }
  // GetKeys drops per-key misses silently; a fully revoked device gets the
  // transport-level denial instead of an empty grant.
  EXPECT_FALSE(router->GetKeys(ids).ok());
  uint64_t negative = 0;
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_TRUE(dep.key_shard(s).log().Verify().ok());
    negative += dep.key_shard(s).load_stats().negative_hits;
  }
  EXPECT_GE(negative, 1u);
}

TEST(BatchedRouterTest, EnvKnobForcesBatchingOff) {
  ASSERT_EQ(setenv("KEYPAD_BATCH_FETCH", "0", 1), 0);
  Deployment dep(ShardedOpts(2));
  unsetenv("KEYPAD_BATCH_FETCH");
  ShardRouter* router = dep.key_router();
  ASSERT_NE(router, nullptr);
  EXPECT_FALSE(router->batch_fetch());

  auto ids = RandomIds(6, 13);
  for (const auto& id : ids) {
    ASSERT_TRUE(router->CreateKey(id).ok());
    ASSERT_TRUE(router->GetKey(id, AccessOp::kDemandFetch).ok());
  }
  EXPECT_EQ(router->stats().batch_rpcs, 0u);
}

// --- Sharded client key cache vs. the map baseline. --------------------------

// The reference model the seed tree used: a map of expiry deadlines plus a
// hand-maintained size*dt integral. Strict expiry (no refresh), so entries
// die exactly at insert_time + texp.
struct ReferenceCache {
  std::map<AuditId, SimTime> expires;
  double integral = 0;
  SimTime last_change;

  void Advance(SimTime now) {
    // Expire in deadline order, folding each step into the integral.
    for (;;) {
      SimTime earliest;
      const AuditId* victim = nullptr;
      for (const auto& [id, at] : expires) {
        if (victim == nullptr || at < earliest) {
          earliest = at;
          victim = &id;
        }
      }
      if (victim == nullptr || earliest > now) {
        break;
      }
      integral += expires.size() * (earliest - last_change).seconds_f();
      last_change = earliest;
      expires.erase(*victim);
    }
    integral += expires.size() * (now - last_change).seconds_f();
    last_change = now;
  }
  void Insert(const AuditId& id, SimTime now, SimDuration texp) {
    Advance(now);
    expires[id] = now + texp;
  }
  void Erase(const AuditId& id, SimTime now) {
    Advance(now);
    expires.erase(id);
  }
};

TEST(KeyCacheModelTest, ShardedTableMatchesMapBaselineIncludingIntegral) {
  EventQueue queue;
  const SimDuration texp = SimDuration::Seconds(10);
  KeyCache cache(&queue, texp);  // No refresh: strict expiry.
  ReferenceCache reference;
  reference.last_change = queue.Now();
  const SimTime start = queue.Now();

  SimRandom rng(0xD3);
  auto ids = RandomIds(64, 14);
  for (int step = 0; step < 2000; ++step) {
    const AuditId& id = ids[rng.UniformU64(ids.size())];
    double dice = rng.UniformDouble();
    if (dice < 0.45) {
      cache.Insert(id, BytesOf("k"));
      reference.Insert(id, queue.Now(), texp);
    } else if (dice < 0.65) {
      bool hit = cache.Lookup(id).has_value();
      reference.Advance(queue.Now());
      EXPECT_EQ(hit, reference.expires.count(id) > 0) << "step " << step;
    } else if (dice < 0.75) {
      cache.Erase(id);
      reference.Erase(id, queue.Now());
    } else {
      // Odd millisecond steps so we never land exactly on an expiry edge
      // (at the edge the sweep and the reference tie-break differently).
      queue.AdvanceBy(SimDuration::Millis(2 * rng.UniformInt(1, 2000) + 1));
      reference.Advance(queue.Now());
    }
    ASSERT_EQ(cache.size(), reference.expires.size()) << "step " << step;
  }
  queue.AdvanceBy(texp * 2 + SimDuration::Millis(1));
  reference.Advance(queue.Now());
  ASSERT_EQ(cache.size(), 0u);

  // The exposure-window integral (Fig. 11's "average in-memory keys") must
  // match the baseline bookkeeping exactly.
  double elapsed = (queue.Now() - start).seconds_f();
  ASSERT_GT(elapsed, 0);
  EXPECT_NEAR(cache.AverageSizeSince(start), reference.integral / elapsed,
              1e-6);
  EXPECT_GT(cache.sweeps(), 0u);
  EXPECT_GT(cache.expired_swept(), 0u);
}

TEST(KeyCacheModelTest, CurrentKeysStaysSortedLikeTheMapBaseline) {
  EventQueue queue;
  KeyCache cache(&queue, SimDuration::Seconds(100));
  auto ids = RandomIds(50, 15);
  for (const auto& id : ids) {
    cache.Insert(id, BytesOf("k"));
  }
  std::vector<AuditId> current = cache.CurrentKeys();
  ASSERT_EQ(current.size(), ids.size());
  EXPECT_TRUE(std::is_sorted(current.begin(), current.end()));
}

// --- Prefetcher v2. ----------------------------------------------------------

TEST(SequencePrefetchTest, EmitsLearnedSuccessorsOrderedByConfidence) {
  Prefetcher prefetcher(PrefetchPolicy::SequenceHints(3, 2), 0xE1);
  auto ids = RandomIds(4, 16);
  for (int pass = 0; pass < 3; ++pass) {
    for (const auto& id : ids) {
      prefetcher.OnAccess(id);
    }
  }
  auto out = prefetcher.OnMiss("/d", ids[0], [] {
    return std::vector<AuditId>{};
  });
  // Fanout 2: the two successors that followed ids[0]... only B followed A
  // directly; the chain emits the confident direct successor first.
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0], ids[1]);
  EXPECT_LE(out.size(), 2u);
}

TEST(SequencePrefetchTest, ConfidenceGateHoldsBackRareTransitions) {
  Prefetcher prefetcher(PrefetchPolicy::SequenceHints(3, 4), 0xE2);
  auto ids = RandomIds(4, 17);
  for (int pass = 0; pass < 2; ++pass) {  // Below the 3-observation gate.
    for (const auto& id : ids) {
      prefetcher.OnAccess(id);
    }
  }
  EXPECT_TRUE(prefetcher
                  .OnMiss("/d", ids[0], [] { return std::vector<AuditId>{}; })
                  .empty());
  EXPECT_EQ(prefetcher.keys_prefetched(), 0u);
}

TEST(SequencePrefetchTest, EstablishedTransitionsSurviveChurn) {
  Prefetcher prefetcher(PrefetchPolicy::SequenceHints(3, 2), 0xE3);
  auto ids = RandomIds(32, 18);
  const AuditId& a = ids[0];
  const AuditId& b = ids[1];
  for (int i = 0; i < 5; ++i) {
    prefetcher.OnAccess(a);
    prefetcher.OnAccess(b);
  }
  // A storm of one-off followers must not evict the established a -> b.
  for (size_t i = 2; i < ids.size(); ++i) {
    prefetcher.OnAccess(a);
    prefetcher.OnAccess(ids[i]);
  }
  auto out = prefetcher.OnMiss("/d", a, [] {
    return std::vector<AuditId>{};
  });
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0], b);
}

TEST(SequencePrefetchTest, LearningTableIsLruBounded) {
  PrefetchPolicy policy = PrefetchPolicy::SequenceHints(3, 4);
  policy.max_tracked_files = 8;
  Prefetcher prefetcher(policy, 0xE4);
  for (const auto& id : RandomIds(100, 19)) {
    prefetcher.OnAccess(id);
  }
  EXPECT_LE(prefetcher.tracked_files(), 8u);
}

TEST(SequencePrefetchTest, EnvOverrideSelectsPolicies) {
  PrefetchPolicy configured = PrefetchPolicy::FullDirOnNthMiss(3);
  ASSERT_EQ(setenv("KEYPAD_PREFETCH", "seq", 1), 0);
  EXPECT_EQ(ApplyPrefetchPolicyEnv(configured).kind,
            PrefetchPolicy::Kind::kSequenceHints);
  ASSERT_EQ(setenv("KEYPAD_PREFETCH", "none", 1), 0);
  EXPECT_EQ(ApplyPrefetchPolicyEnv(configured).kind,
            PrefetchPolicy::Kind::kNone);
  ASSERT_EQ(setenv("KEYPAD_PREFETCH", "random", 1), 0);
  EXPECT_EQ(ApplyPrefetchPolicyEnv(configured).kind,
            PrefetchPolicy::Kind::kRandomFromDir);
  ASSERT_EQ(setenv("KEYPAD_PREFETCH", "bogus", 1), 0);
  EXPECT_EQ(ApplyPrefetchPolicyEnv(configured).kind, configured.kind);
  unsetenv("KEYPAD_PREFETCH");
  EXPECT_EQ(ApplyPrefetchPolicyEnv(configured).kind, configured.kind);
}

}  // namespace
}  // namespace keypad
