// Tests for the pluggable storage tier (DESIGN.md §12): backend seam,
// write-ahead journal recovery, fault injection, the crash-point explorer,
// bit-rot scrubbing, and the write-back cloud replica.

#include <gtest/gtest.h>

#include "src/blockdev/block_device.h"
#include "src/blockdev/cloud_store.h"
#include "src/blockdev/fault_injection.h"
#include "src/blockdev/scrubber.h"
#include "src/blockdev/storage_backend.h"
#include "src/blockdev/write_back.h"
#include "src/encfs/durability_harness.h"
#include "src/encfs/encfs.h"
#include "src/sim/random.h"

namespace keypad {
namespace {

ObjectId MakeId(uint8_t tag) {
  ObjectId id;
  id.v.fill(tag);
  return id;
}

// --- Backend seam basics. ---------------------------------------------------

class BackendParamTest
    : public ::testing::TestWithParam<StorageBackendKind> {};

TEST_P(BackendParamTest, BatchApplyAndReadBack) {
  auto backend = MakeStorageBackend(GetParam());
  std::vector<StorageOp> batch;
  batch.push_back(StorageOp::Put(MakeId(1), {1, 2, 3}));
  batch.push_back(StorageOp::Put(MakeId(2), {4, 5}));
  batch.push_back(StorageOp::PutSuperblock({9, 9}));
  ASSERT_TRUE(backend->Apply(std::move(batch)).ok());
  EXPECT_EQ(*backend->ReadObject(MakeId(1)), (Bytes{1, 2, 3}));
  EXPECT_EQ(*backend->ReadObject(MakeId(2)), (Bytes{4, 5}));
  EXPECT_EQ(backend->ReadSuperblock(), (Bytes{9, 9}));
  EXPECT_EQ(backend->ObjectCount(), 2u);
  ASSERT_TRUE(backend->Sync().ok());

  std::vector<StorageOp> second;
  second.push_back(StorageOp::Delete(MakeId(1)));
  ASSERT_TRUE(backend->Apply(std::move(second)).ok());
  ASSERT_TRUE(backend->Sync().ok());
  EXPECT_FALSE(backend->HasObject(MakeId(1)));
  EXPECT_TRUE(backend->HasObject(MakeId(2)));
}

TEST_P(BackendParamTest, CloneIsIndependent) {
  auto backend = MakeStorageBackend(GetParam());
  std::vector<StorageOp> batch;
  batch.push_back(StorageOp::Put(MakeId(1), {1}));
  ASSERT_TRUE(backend->Apply(std::move(batch)).ok());
  ASSERT_TRUE(backend->Sync().ok());
  auto clone = backend->Clone();
  std::vector<StorageOp> more;
  more.push_back(StorageOp::Put(MakeId(1), {2}));
  ASSERT_TRUE(backend->Apply(std::move(more)).ok());
  EXPECT_EQ(*backend->ReadObject(MakeId(1)), (Bytes{2}));
  EXPECT_EQ(*clone->ReadObject(MakeId(1)), (Bytes{1}));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendParamTest,
                         ::testing::Values(StorageBackendKind::kMemory,
                                           StorageBackendKind::kJournaled));

// --- Journal semantics. -----------------------------------------------------

TEST(JournaledBackendTest, UnsyncedBatchIsLostOnCrash) {
  auto backend = MakeJournaledBackend();
  std::vector<StorageOp> batch;
  batch.push_back(StorageOp::Put(MakeId(1), {1, 2, 3}));
  ASSERT_TRUE(backend->Apply(std::move(batch)).ok());
  // No Sync: the batch lives only in volatile staged records.
  RecoveryReport report;
  auto recovered = backend->RecoverFromCrash(&report);
  EXPECT_FALSE(recovered->HasObject(MakeId(1)));
  EXPECT_EQ(report.committed_txns_replayed, 0u);
}

TEST(JournaledBackendTest, SyncedBatchSurvivesCrash) {
  auto backend = MakeJournaledBackend();
  std::vector<StorageOp> batch;
  batch.push_back(StorageOp::Put(MakeId(1), {1, 2, 3}));
  batch.push_back(StorageOp::PutSuperblock({7}));
  ASSERT_TRUE(backend->Apply(std::move(batch)).ok());
  ASSERT_TRUE(backend->Sync().ok());
  RecoveryReport report;
  auto recovered = backend->RecoverFromCrash(&report);
  EXPECT_EQ(*recovered->ReadObject(MakeId(1)), (Bytes{1, 2, 3}));
  EXPECT_EQ(recovered->ReadSuperblock(), (Bytes{7}));
  EXPECT_EQ(report.committed_txns_replayed, 1u);
  EXPECT_EQ(report.torn_txns_discarded, 0u);
}

TEST(JournaledBackendTest, TornSyncIsAllOrNothing) {
  // A two-op batch flushes BEGIN/OP/OP/COMMIT records. Crash the power at
  // every one of those medium writes (clean and mid-record): recovery must
  // give the full batch or none of it.
  for (uint64_t point = 0; point < 4; ++point) {
    for (double torn : {0.0, 0.6}) {
      auto backend = MakeJournaledBackend();
      FaultInjector injector;
      injector.ArmCrash(point, torn);
      backend->set_observer(&injector);
      std::vector<StorageOp> batch;
      batch.push_back(StorageOp::Put(MakeId(1), Bytes(100, 0xaa)));
      batch.push_back(StorageOp::Put(MakeId(2), Bytes(50, 0xbb)));
      ASSERT_TRUE(backend->Apply(std::move(batch)).ok());
      Status sync = backend->Sync();
      EXPECT_FALSE(sync.ok()) << "point " << point;
      EXPECT_TRUE(backend->powered_off());
      RecoveryReport report;
      auto recovered = backend->RecoverFromCrash(&report);
      bool has1 = recovered->HasObject(MakeId(1));
      bool has2 = recovered->HasObject(MakeId(2));
      EXPECT_EQ(has1, has2) << "torn txn at point " << point;
      EXPECT_FALSE(has1) << "commit record never landed at point " << point;
    }
  }
}

TEST(JournaledBackendTest, CheckpointFoldsJournalAndSurvivesCrash) {
  JournalOptions options;
  options.checkpoint_bytes = 1;  // Checkpoint at every sync.
  auto backend = MakeJournaledBackend(options);
  std::vector<StorageOp> batch;
  batch.push_back(StorageOp::Put(MakeId(1), Bytes(64, 0x11)));
  ASSERT_TRUE(backend->Apply(std::move(batch)).ok());
  ASSERT_TRUE(backend->Sync().ok());
  // Post-checkpoint: object lives in the object area; recovery has no
  // journal left to replay.
  RecoveryReport report;
  auto recovered = backend->RecoverFromCrash(&report);
  EXPECT_EQ(*recovered->ReadObject(MakeId(1)), Bytes(64, 0x11));
  EXPECT_EQ(report.journal_bytes_scanned, 0u);
}

TEST(JournaledBackendTest, CrashDuringCheckpointHealsViaJournalReplay) {
  JournalOptions options;
  options.checkpoint_bytes = 1;
  // Writes 0..2 = BEGIN/OP/COMMIT flushes; write 3 = checkpoint's object
  // rewrite; write 4 = truncate marker. Crash at both checkpoint writes.
  for (uint64_t point : {3u, 4u}) {
    auto backend = MakeJournaledBackend(options);
    FaultInjector injector;
    injector.ArmCrash(point, 0.3);
    backend->set_observer(&injector);
    std::vector<StorageOp> batch;
    batch.push_back(StorageOp::Put(MakeId(1), Bytes(80, 0x42)));
    ASSERT_TRUE(backend->Apply(std::move(batch)).ok());
    EXPECT_FALSE(backend->Sync().ok());
    ASSERT_TRUE(injector.crashed());
    RecoveryReport report;
    auto recovered = backend->RecoverFromCrash(&report);
    EXPECT_EQ(*recovered->ReadObject(MakeId(1)), Bytes(80, 0x42))
        << "checkpoint crash at write " << point;
  }
}

// --- BlockDevice transactional shim. ----------------------------------------

TEST(BlockDeviceTxnTest, StagedWritesVisibleToOwnReadsAndAbortable) {
  BlockDevice dev(MakeJournaledBackend());
  dev.WriteObject(MakeId(1), {1});
  dev.Begin();
  dev.WriteObject(MakeId(2), {2});
  ASSERT_TRUE(dev.DeleteObject(MakeId(1)).ok());
  EXPECT_TRUE(dev.HasObject(MakeId(2)));
  EXPECT_FALSE(dev.HasObject(MakeId(1)));
  EXPECT_EQ(dev.ListObjects().size(), 1u);
  dev.Abort();
  EXPECT_FALSE(dev.HasObject(MakeId(2)));
  EXPECT_TRUE(dev.HasObject(MakeId(1)));
}

TEST(BlockDeviceTxnTest, SnapshotResetsCountersButKeepsContent) {
  BlockDevice dev;
  dev.WriteObject(MakeId(1), {1, 2});
  ASSERT_TRUE(dev.ReadObject(MakeId(1)).ok());
  EXPECT_GT(dev.writes(), 0u);
  EXPECT_GT(dev.reads(), 0u);
  BlockDevice snap = dev.Snapshot();
  // Counters are telemetry about the original device, not medium state.
  EXPECT_EQ(snap.writes(), 0u);
  EXPECT_EQ(snap.reads(), 0u);
  EXPECT_EQ(*snap.ReadObject(MakeId(1)), (Bytes{1, 2}));
}

TEST(BlockDeviceTxnTest, DeleteAndSuperblockCountAsWrites) {
  BlockDevice dev;
  dev.WriteObject(MakeId(1), {1});
  EXPECT_EQ(dev.writes(), 1u);
  dev.WriteSuperblock({5});
  EXPECT_EQ(dev.writes(), 2u);
  ASSERT_TRUE(dev.DeleteObject(MakeId(1)).ok());
  EXPECT_EQ(dev.writes(), 3u);
}

TEST(BlockDeviceTxnTest, DirtyTrackingFollowsCommits) {
  BlockDevice dev(MakeJournaledBackend());
  dev.WriteObject(MakeId(1), {1});
  dev.WriteSuperblock({2});
  dev.Begin();
  dev.WriteObject(MakeId(2), {2});
  dev.Abort();  // Aborted writes must not dirty anything.
  BlockDevice::DirtySet dirty = dev.TakeDirty();
  EXPECT_EQ(dirty.modified.size(), 1u);
  EXPECT_TRUE(dirty.superblock);
  EXPECT_TRUE(dev.TakeDirty().empty());

  ASSERT_TRUE(dev.DeleteObject(MakeId(1)).ok());
  dirty = dev.TakeDirty();
  EXPECT_TRUE(dirty.modified.empty());
  EXPECT_EQ(dirty.deleted.size(), 1u);
}

// --- Crash-point explorer. --------------------------------------------------

TEST(CrashPointExplorerTest, JournaledBackendIsAtomicAtEveryPoint) {
  ExplorerOptions options;
  options.backend = StorageBackendKind::kJournaled;
  options.workload_ops = 16;
  ExplorerResult result = ExploreCrashPoints(options);
  ASSERT_GT(result.injection_points, 0u);
  EXPECT_EQ(result.crashes_explored,
            result.injection_points * options.torn_fractions.size());
  EXPECT_TRUE(result.all_atomic())
      << "torn=" << result.torn_states
      << " unmountable=" << result.unmountable << " first bad point "
      << result.first_bad_point << " (torn fraction "
      << result.first_bad_torn_fraction << ")";
}

TEST(CrashPointExplorerTest, MemoryBackendShowsTornStates) {
  // Negative control: the seed's map backend has no atomicity, so the same
  // exploration must find mixed states — proving the explorer can detect
  // them.
  ExplorerOptions options;
  options.backend = StorageBackendKind::kMemory;
  options.workload_ops = 16;
  ExplorerResult result = ExploreCrashPoints(options);
  ASSERT_GT(result.injection_points, 0u);
  EXPECT_GT(result.torn_states + result.unmountable, 0u);
}

// --- Bit rot + scrubber. ----------------------------------------------------

class ScrubFixture : public ::testing::Test {
 protected:
  ScrubFixture()
      : device_(MakeJournaledBackend()), cloud_(&queue_), writeback_(&device_, &cloud_) {}

  // Formats a volume, writes some files, and flushes to the cloud replica.
  void PopulateAndFlush() {
    auto fs = EncFs::Format(&device_, &queue_, 11, "pw", FastOptions());
    ASSERT_TRUE(fs.ok());
    fs_ = std::move(*fs);
    ASSERT_TRUE(fs_->Mkdir("/docs").ok());
    for (int i = 0; i < 6; ++i) {
      std::string path = "/docs/f" + std::to_string(i);
      ASSERT_TRUE(fs_->Create(path).ok());
      ASSERT_TRUE(fs_->Write(path, 0, Bytes(300 + i * 40, 0x30 + i)).ok());
    }
    bool flushed = false;
    writeback_.FlushNow([&](Status status) {
      ASSERT_TRUE(status.ok()) << status;
      flushed = true;
    });
    queue_.RunUntilIdle();
    ASSERT_TRUE(flushed);
    cloud_.SettleNow();
  }

  static EncFs::Options FastOptions() {
    EncFs::Options options;
    options.kdf_iterations = 4;
    return options;
  }

  EventQueue queue_;
  BlockDevice device_;
  SimObjectStore cloud_;
  WriteBackQueue writeback_;
  std::unique_ptr<EncFs> fs_;
};

TEST_F(ScrubFixture, ScrubberRepairsInjectedBitRotFromCloud) {
  PopulateAndFlush();
  ASSERT_TRUE(device_.backend().Checkpoint().ok());
  SimRandom rng(99);
  BitRotReport rot = InjectBitRot(device_.backend(), rng, 5);
  ASSERT_GT(rot.flips_applied, 0u);

  Scrubber scrubber(&device_, &cloud_);
  ScrubReport report = scrubber.Scrub();
  EXPECT_GT(report.rot_detected, 0u);
  EXPECT_EQ(report.repaired, report.rot_detected);
  EXPECT_EQ(report.unrepairable, 0u);
  EXPECT_EQ(report.tamper_suspect, 0u);

  // A second scrub must come back fully clean.
  ScrubReport again = scrubber.Scrub();
  EXPECT_EQ(again.rot_detected, 0u);
  EXPECT_EQ(again.clean, again.objects_scanned);

  // And the volume still reads correctly end to end.
  auto content = fs_->Read("/docs/f0", 0, 300);
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_EQ(*content, Bytes(300, 0x30));
}

TEST_F(ScrubFixture, RotWithoutCloudReplicaIsUnrepairableLoss) {
  PopulateAndFlush();
  ASSERT_TRUE(device_.backend().Checkpoint().ok());
  SimRandom rng(100);
  BitRotReport rot = InjectBitRot(device_.backend(), rng, 3);
  ASSERT_GT(rot.flips_applied, 0u);

  Scrubber scrubber(&device_, /*cloud=*/nullptr);
  ScrubReport report = scrubber.Scrub();
  EXPECT_GT(report.rot_detected, 0u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_EQ(report.unrepairable, report.rot_detected);
  EXPECT_FALSE(report.lost.empty());
}

TEST_F(ScrubFixture, ConsistentRewriteReportsTamperNotRot) {
  PopulateAndFlush();
  ASSERT_TRUE(device_.backend().Checkpoint().ok());
  // Rewrite an object AND its tag through the repair path (bit rot cannot
  // keep data+tag consistent), with no pending local write: the scrubber
  // must flag tamper, not rot.
  std::vector<StoredObjectInfo> stored = device_.backend().ScanStoredObjects();
  ASSERT_FALSE(stored.empty());
  (void)device_.TakeDirty();  // Nothing locally dirty.
  ASSERT_TRUE(device_.backend()
                  .RepairStoredObject(stored[0].id, Bytes(32, 0xEE))
                  .ok());

  Scrubber scrubber(&device_, &cloud_);
  ScrubReport report = scrubber.Scrub();
  EXPECT_EQ(report.rot_detected, 0u);
  EXPECT_EQ(report.tamper_suspect, 1u);
  ASSERT_EQ(report.tampered.size(), 1u);
  EXPECT_EQ(report.tampered[0], stored[0].id);
}

// --- Write-back + restore. --------------------------------------------------

TEST_F(ScrubFixture, RestoreRebuildsByteIdenticalVolume) {
  PopulateAndFlush();
  auto want = CaptureLogicalVolume(*fs_);
  ASSERT_TRUE(want.ok());

  BlockDevice fresh(MakeJournaledBackend());
  auto report = RestoreVolumeFromCloud(cloud_, fresh, queue_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->objects_fetched, 0u);
  EXPECT_GT(report->elapsed.nanos(), 0);

  EventQueue queue2;
  auto mounted = EncFs::Mount(&fresh, &queue2, 12, "pw", FastOptions());
  ASSERT_TRUE(mounted.ok()) << mounted.status();
  auto got = CaptureLogicalVolume(**mounted);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *want);
}

TEST_F(ScrubFixture, AbortedFlushKeepsPreviousConsistentGeneration) {
  PopulateAndFlush();
  uint64_t gen_before = writeback_.generation();
  ASSERT_TRUE(fs_->Write("/docs/f0", 0, Bytes(500, 0x77)).ok());
  writeback_.FlushNow([](Status) { FAIL() << "aborted flush completed"; });
  // Crash the uploader before any completion event runs.
  writeback_.AbortInFlight();
  queue_.RunUntilIdle();
  cloud_.SettleNow();
  EXPECT_EQ(writeback_.generation(), gen_before);

  // The cloud still restores the previous consistent generation.
  BlockDevice fresh(MakeJournaledBackend());
  auto report = RestoreVolumeFromCloud(cloud_, fresh, queue_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->generation, gen_before);

  // And the retried flush publishes the new write.
  bool flushed = false;
  writeback_.FlushNow([&](Status status) {
    ASSERT_TRUE(status.ok());
    flushed = true;
  });
  queue_.RunUntilIdle();
  ASSERT_TRUE(flushed);
  EXPECT_EQ(writeback_.generation(), gen_before + 1);
}

TEST(CloudStoreTest, PutIsInvisibleUntilLagElapses) {
  EventQueue queue;
  CloudStoreOptions options;
  SimObjectStore cloud(&queue, options);
  bool uploaded = false;
  cloud.Put("k", {1, 2, 3}, [&](Status status) {
    EXPECT_TRUE(status.ok());
    uploaded = true;
  });
  queue.AdvanceBy(cloud.PutDelay(3));
  ASSERT_TRUE(uploaded);
  EXPECT_FALSE(cloud.HasVisible("k"));  // Still settling.
  queue.AdvanceBy(options.visibility_lag);
  EXPECT_TRUE(cloud.HasVisible("k"));
}

}  // namespace
}  // namespace keypad
