#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace keypad {
namespace {

TEST(SimTimeTest, DurationArithmetic) {
  EXPECT_EQ(SimDuration::Millis(1).nanos(), 1000000);
  EXPECT_EQ(SimDuration::Seconds(2).millis(), 2000);
  EXPECT_EQ((SimDuration::Seconds(1) + SimDuration::Millis(500)).millis_f(),
            1500.0);
  EXPECT_EQ(SimDuration::FromMillisF(0.1).micros(), 100);
  EXPECT_LT(SimDuration::Millis(1), SimDuration::Millis(2));
}

TEST(SimTimeTest, TimeArithmetic) {
  SimTime t = SimTime::Epoch() + SimDuration::Seconds(10);
  EXPECT_EQ((t - SimTime::Epoch()).seconds(), 10);
  EXPECT_LT(SimTime::Epoch(), t);
  EXPECT_LT(t, SimTime::Max());
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime(300), [&] { order.push_back(3); });
  q.Schedule(SimTime(100), [&] { order.push_back(1); });
  q.Schedule(SimTime(200), [&] { order.push_back(2); });
  q.RunUntilIdle();
  EXPECT_EQ(order, std::vector<int>({1, 2, 3}));
  EXPECT_EQ(q.Now(), SimTime(300));
}

TEST(EventQueueTest, FifoOrderForSameTimestamp) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime(100), [&] { order.push_back(1); });
  q.Schedule(SimTime(100), [&] { order.push_back(2); });
  q.RunUntilIdle();
  EXPECT_EQ(order, std::vector<int>({1, 2}));
}

TEST(EventQueueTest, AdvanceByRunsDueEventsOnly) {
  EventQueue q;
  int ran = 0;
  q.Schedule(SimTime(100), [&] { ++ran; });
  q.Schedule(SimTime(300), [&] { ++ran; });
  q.AdvanceBy(SimDuration(200));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.Now(), SimTime(200));
  q.AdvanceBy(SimDuration(200));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.Now(), SimTime(400));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int ran = 0;
  auto id = q.Schedule(SimTime(100), [&] { ++ran; });
  EXPECT_TRUE(q.IsPending(id));
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.IsPending(id));
  EXPECT_FALSE(q.Cancel(id));
  q.RunUntilIdle();
  EXPECT_EQ(ran, 0);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime(100), [&] {
    order.push_back(1);
    q.ScheduleAfter(SimDuration(50), [&] { order.push_back(2); });
  });
  q.RunUntilIdle();
  EXPECT_EQ(order, std::vector<int>({1, 2}));
  EXPECT_EQ(q.Now(), SimTime(150));
}

TEST(EventQueueTest, RunUntilFlagStopsWhenSet) {
  EventQueue q;
  bool flag = false;
  q.Schedule(SimTime(100), [&] { flag = true; });
  q.Schedule(SimTime(200), [&] { FAIL() << "must not run"; });
  EXPECT_TRUE(q.RunUntilFlag(&flag));
  EXPECT_EQ(q.Now(), SimTime(100));
  EXPECT_EQ(q.pending_count(), 1u);
}

TEST(EventQueueTest, RunUntilFlagTimesOutAtDeadline) {
  EventQueue q;
  bool flag = false;
  q.Schedule(SimTime(500), [&] { flag = true; });
  EXPECT_FALSE(q.RunUntilFlag(&flag, SimTime(200)));
  EXPECT_EQ(q.Now(), SimTime(200));
  EXPECT_FALSE(flag);
}

TEST(EventQueueTest, RunUntilFlagEmptyQueueTimesOut) {
  EventQueue q;
  bool flag = false;
  EXPECT_FALSE(q.RunUntilFlag(&flag, SimTime(1000)));
  EXPECT_EQ(q.Now(), SimTime(1000));
}

TEST(EventQueueTest, NestedPumpingPreservesGlobalOrder) {
  // An event handler blocks on a later flag; an intermediate event still
  // runs, in time order, from the nested loop.
  EventQueue q;
  std::vector<int> order;
  bool inner_flag = false;
  q.Schedule(SimTime(100), [&] {
    order.push_back(1);
    q.Schedule(SimTime(300), [&] {
      order.push_back(3);
      inner_flag = true;
    });
    EXPECT_TRUE(q.RunUntilFlag(&inner_flag));
    order.push_back(4);
  });
  q.Schedule(SimTime(200), [&] { order.push_back(2); });
  q.RunUntilIdle();
  EXPECT_EQ(order, std::vector<int>({1, 2, 3, 4}));
}

TEST(SimRandomTest, DeterministicForSeed) {
  SimRandom a(42), b(42), c(43);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(SimRandomTest, UniformBounds) {
  SimRandom rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SimRandomTest, BernoulliExtremes) {
  SimRandom rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(SimRandomTest, ExponentialMeanRoughlyCorrect) {
  SimRandom rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(5.0);
  }
  double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.25);
}

TEST(SimRandomTest, ZipfSkewsTowardLowRanks) {
  SimRandom rng(13);
  int low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    size_t r = rng.Zipf(100, 1.0);
    ASSERT_LT(r, 100u);
    if (r < 10) {
      ++low;
    }
    if (r >= 90) {
      ++high;
    }
  }
  EXPECT_GT(low, high * 3);
}

TEST(SimRandomTest, ShuffleIsPermutation) {
  SimRandom rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace keypad
