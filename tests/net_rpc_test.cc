#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/net/link.h"
#include "src/net/profile.h"
#include "src/net/secure_channel.h"
#include "src/rpc/rpc.h"
#include "src/sim/event_queue.h"

namespace keypad {
namespace {

TEST(ProfileTest, PaperRtts) {
  EXPECT_EQ(LanProfile().rtt.micros(), 100);
  EXPECT_EQ(WlanProfile().rtt.millis(), 2);
  EXPECT_EQ(BroadbandProfile().rtt.millis(), 25);
  EXPECT_EQ(DslProfile().rtt.millis(), 125);
  EXPECT_EQ(CellularProfile().rtt.millis(), 300);
  EXPECT_EQ(AllEvaluationProfiles().size(), 5u);
  EXPECT_EQ(CustomRttProfile(SimDuration::Millis(40)).rtt.millis(), 40);
}

TEST(LinkTest, DeliversAfterOneWayLatency) {
  EventQueue q;
  NetworkLink link(&q, CellularProfile());
  bool delivered = false;
  SimTime sent_at = q.Now();
  EXPECT_TRUE(link.Send(100, [&] { delivered = true; }));
  q.RunUntilIdle();
  EXPECT_TRUE(delivered);
  EXPECT_EQ((q.Now() - sent_at).millis(), 150);  // RTT/2.
  EXPECT_EQ(link.bytes_sent(), 100u);
  EXPECT_EQ(link.messages_sent(), 1u);
}

TEST(LinkTest, DisconnectedDropsSilently) {
  EventQueue q;
  NetworkLink link(&q, LanProfile());
  link.set_disconnected(true);
  bool delivered = false;
  EXPECT_FALSE(link.Send(10, [&] { delivered = true; }));
  q.RunUntilIdle();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(link.messages_dropped(), 1u);
  EXPECT_EQ(link.bytes_sent(), 0u);
}

TEST(LinkTest, DropProbabilityLosesSomeMessages) {
  EventQueue q;
  NetworkLink link(&q, LanProfile(), /*drop_seed=*/7);
  link.set_drop_probability(0.5);
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    link.Send(1, [&] { ++delivered; });
  }
  q.RunUntilIdle();
  EXPECT_GT(delivered, 50);
  EXPECT_LT(delivered, 150);
  EXPECT_EQ(link.messages_sent() + link.messages_dropped(), 200u);
}

TEST(LinkTest, CounterReset) {
  EventQueue q;
  NetworkLink link(&q, LanProfile());
  link.Send(42, [] {});
  link.ResetCounters();
  EXPECT_EQ(link.bytes_sent(), 0u);
  EXPECT_EQ(link.messages_sent(), 0u);
}

TEST(LinkTest, BurstLossClustersDrops) {
  EventQueue q;
  NetworkLink link(&q, LanProfile(), /*drop_seed=*/11);
  LinkChaosOptions chaos;
  chaos.burst_loss = true;
  chaos.p_enter_bad = 0.05;
  chaos.p_exit_bad = 0.2;
  chaos.loss_bad = 0.9;
  link.set_chaos(chaos);
  std::vector<bool> delivered(2000, false);
  for (size_t i = 0; i < delivered.size(); ++i) {
    link.Send(1, [&delivered, i] { delivered[i] = true; });
  }
  q.RunUntilIdle();
  size_t losses = 0;
  size_t adjacent_losses = 0;  // Loss immediately following a loss.
  for (size_t i = 0; i < delivered.size(); ++i) {
    if (!delivered[i]) {
      ++losses;
      if (i > 0 && !delivered[i - 1]) {
        ++adjacent_losses;
      }
    }
  }
  ASSERT_GT(losses, 50u);
  // The signature of bursts: given a loss, the next message is far more
  // likely than the marginal rate to be lost too.
  double marginal = static_cast<double>(losses) / delivered.size();
  double conditional = static_cast<double>(adjacent_losses) / losses;
  EXPECT_GT(conditional, 2 * marginal);
}

TEST(LinkTest, DuplicationDeliversTwice) {
  EventQueue q;
  NetworkLink link(&q, LanProfile(), /*drop_seed=*/3);
  LinkChaosOptions chaos;
  chaos.duplicate_probability = 1.0;
  link.set_chaos(chaos);
  int deliveries = 0;
  EXPECT_TRUE(link.Send(10, [&] { ++deliveries; }));
  q.RunUntilIdle();
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(link.messages_duplicated(), 1u);
  EXPECT_EQ(link.messages_sent(), 1u);  // One logical send.
}

TEST(LinkTest, ReorderingLetsLaterMessagesOvertake) {
  EventQueue q;
  NetworkLink link(&q, LanProfile(), /*drop_seed=*/5);
  LinkChaosOptions chaos;
  chaos.reorder_probability = 1.0;
  chaos.reorder_extra_max = SimDuration::Millis(50);
  link.set_chaos(chaos);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    link.Send(1, [&order, i] { order.push_back(i); });
  }
  q.RunUntilIdle();
  ASSERT_EQ(order.size(), 50u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

TEST(LinkTest, AsymmetricPartitionDropsOneDirectionSilently) {
  EventQueue q;
  NetworkLink link(&q, LanProfile());
  link.set_partitioned(NetworkLink::Direction::kReverse, true);
  bool forward = false;
  bool reverse = false;
  // Partition loss is NOT locally observable: both sends report true.
  EXPECT_TRUE(
      link.Send(1, NetworkLink::Direction::kForward, [&] { forward = true; }));
  EXPECT_TRUE(
      link.Send(1, NetworkLink::Direction::kReverse, [&] { reverse = true; }));
  q.RunUntilIdle();
  EXPECT_TRUE(forward);
  EXPECT_FALSE(reverse);
  EXPECT_EQ(link.messages_dropped(), 1u);
}

TEST(LinkTest, ScheduledOutageWindowFlipsDisconnected) {
  EventQueue q;
  NetworkLink link(&q, LanProfile());
  SimTime start = q.Now() + SimDuration::Seconds(10);
  link.ScheduleOutage(start, SimDuration::Seconds(5));
  EXPECT_FALSE(link.disconnected());
  q.RunUntil(start + SimDuration::Seconds(1));
  EXPECT_TRUE(link.disconnected());
  q.RunUntil(start + SimDuration::Seconds(6));
  EXPECT_FALSE(link.disconnected());
}

TEST(LinkTest, LatencyJitterStretchesDelivery) {
  EventQueue q;
  NetworkLink link(&q, CellularProfile(), /*drop_seed=*/9);
  LinkChaosOptions chaos;
  chaos.latency_jitter_frac = 0.5;
  link.set_chaos(chaos);
  bool saw_jitter = false;
  for (int i = 0; i < 20; ++i) {
    SimTime sent_at = q.Now();
    bool delivered = false;
    link.Send(1, [&] { delivered = true; });
    q.RunUntilIdle();
    ASSERT_TRUE(delivered);
    SimDuration elapsed = q.Now() - sent_at;
    EXPECT_GE(elapsed.millis(), 150);        // Never earlier than OneWay.
    EXPECT_LE(elapsed.millis(), 225);        // At most 1.5x.
    saw_jitter = saw_jitter || elapsed.millis() > 150;
  }
  EXPECT_TRUE(saw_jitter);
}

TEST(SecureChannelTest, SealOpenRoundTrip) {
  SecureRandom rng(uint64_t{1});
  SecureChannel alice(BytesOf("shared root"), SimDuration::Seconds(100));
  SecureChannel bob(BytesOf("shared root"), SimDuration::Seconds(100));
  SimTime now = SimTime::Epoch() + SimDuration::Seconds(42);
  Bytes sealed = alice.Seal(now, BytesOf("key request"), rng);
  auto opened = bob.Open(now, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(StringOf(*opened), "key request");
}

TEST(SecureChannelTest, TamperDetected) {
  SecureRandom rng(uint64_t{2});
  SecureChannel a(BytesOf("root"), SimDuration::Seconds(100));
  SecureChannel b(BytesOf("root"), SimDuration::Seconds(100));
  SimTime now = SimTime::Epoch();
  Bytes sealed = a.Seal(now, BytesOf("payload"), rng);
  sealed[sealed.size() / 2] ^= 1;
  EXPECT_FALSE(b.Open(now, sealed).ok());
  EXPECT_FALSE(b.Open(now, Bytes(10, 0)).ok());
}

TEST(SecureChannelTest, AcceptsPreviousEpochOnly) {
  SecureRandom rng(uint64_t{3});
  SimDuration period = SimDuration::Seconds(100);
  SecureChannel sender(BytesOf("root"), period);
  SecureChannel receiver(BytesOf("root"), period);

  SimTime t0 = SimTime::Epoch() + SimDuration::Seconds(50);
  Bytes sealed = sender.Seal(t0, BytesOf("m"), rng);

  // One epoch later: still accepted (in-flight rotation race).
  SimTime t1 = t0 + period;
  EXPECT_TRUE(receiver.Open(t1, sealed).ok());

  // Two epochs later: rejected.
  SecureChannel receiver2(BytesOf("root"), period);
  SimTime t2 = t0 + period + period;
  auto r = receiver2.Open(t2, sealed);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST(SecureChannelTest, RatchetIsForwardSecure) {
  // The key for epoch N+1 is derivable from epoch N's, but not vice versa:
  // distinct epochs produce unrelated-looking keys and the channel refuses
  // stale traffic. We verify at least that epoch keys differ and advance
  // erases the pre-previous key.
  SecureChannel chan(BytesOf("root"), SimDuration::Seconds(10));
  Bytes k0 = chan.CurrentEpochKeyForTesting(SimTime::Epoch());
  Bytes k5 = chan.CurrentEpochKeyForTesting(SimTime::Epoch() +
                                            SimDuration::Seconds(50));
  EXPECT_NE(k0, k5);
}

class RpcTest : public ::testing::Test {
 protected:
  RpcTest()
      : link_(&queue_, CellularProfile()),
        server_(&queue_, SimDuration::Micros(150)),
        client_(&queue_, &link_, &server_) {
    server_.RegisterMethod("echo", [](const WireValue::Array& params) {
      return Result<WireValue>(params.empty() ? WireValue() : params[0]);
    });
    server_.RegisterMethod("fail", [](const WireValue::Array&) {
      return Result<WireValue>(PermissionDeniedError("revoked"));
    });
  }

  EventQueue queue_;
  NetworkLink link_;
  RpcServer server_;
  RpcClient client_;
};

TEST_F(RpcTest, BlockingCallRoundTrip) {
  SimTime start = queue_.Now();
  auto result = client_.Call("echo", {WireValue("hello")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->AsString(), "hello");
  // Elapsed ≈ RTT (300 ms) + client overhead + server time.
  SimDuration elapsed = queue_.Now() - start;
  EXPECT_GE(elapsed.millis(), 300);
  EXPECT_LT(elapsed.millis(), 302);
  EXPECT_EQ(server_.requests_handled(), 1u);
}

TEST_F(RpcTest, ServerFaultPropagates) {
  auto result = client_.Call("fail", {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(result.status().message(), "revoked");
}

TEST_F(RpcTest, UnknownMethodIsNotFound) {
  auto result = client_.Call("nope", {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(RpcTest, DisconnectedLinkFailsFast) {
  // A locally-known-down link costs ~0, not a full timeout ladder.
  link_.set_disconnected(true);
  client_.options().timeout = SimDuration::Seconds(2);
  SimTime start = queue_.Now();
  auto result = client_.Call("echo", {WireValue(int64_t{1})});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_LT((queue_.Now() - start).millis(), 1);  // Just client overhead.
  EXPECT_EQ(client_.calls_failed_fast(), 1u);
  EXPECT_EQ(client_.calls_timed_out(), 0u);
}

TEST_F(RpcTest, RetryRecoversAfterPartitionHeals) {
  // Responses are blackholed (not locally observable), so attempt 1 times
  // out; the partition heals before attempt 2, which gets through.
  link_.set_partitioned(NetworkLink::Direction::kReverse, true);
  client_.options().timeout = SimDuration::Seconds(2);
  queue_.Schedule(queue_.Now() + SimDuration::Seconds(1), [this] {
    link_.set_partitioned(NetworkLink::Direction::kReverse, false);
  });
  auto result = client_.Call("echo", {WireValue("persist")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->AsString(), "persist");
  EXPECT_EQ(client_.attempts_started(), 2u);
  EXPECT_EQ(client_.calls_timed_out(), 0u);
}

TEST_F(RpcTest, RetriedRequestExecutesAtMostOnce) {
  // Attempt 1 executes but its response is lost; attempt 2 is recognized
  // as a replay and answered from the reply cache without re-executing.
  int executions = 0;
  server_.RegisterMethod("count", [&](const WireValue::Array&) {
    ++executions;
    return Result<WireValue>(WireValue(int64_t{executions}));
  });
  link_.set_partitioned(NetworkLink::Direction::kReverse, true);
  client_.options().timeout = SimDuration::Seconds(2);
  queue_.Schedule(queue_.Now() + SimDuration::Seconds(1), [this] {
    link_.set_partitioned(NetworkLink::Direction::kReverse, false);
  });
  auto result = client_.Call("count", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->AsInt(), 1);
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(server_.requests_executed(), 1u);
  EXPECT_GE(server_.reply_cache().hits(), 1u);
}

TEST_F(RpcTest, DuplicatedDeliveryExecutesAtMostOnce) {
  // The network duplicates every message; the handler must still run once
  // per logical call and the client must get exactly one result.
  int executions = 0;
  server_.RegisterMethod("count", [&](const WireValue::Array&) {
    ++executions;
    return Result<WireValue>(WireValue(int64_t{executions}));
  });
  LinkChaosOptions chaos;
  chaos.duplicate_probability = 1.0;
  link_.set_chaos(chaos);
  auto result = client_.Call("count", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->AsInt(), 1);
  queue_.RunUntilIdle();  // Let the duplicates land.
  EXPECT_EQ(executions, 1);
  EXPECT_GE(server_.reply_cache().hits() + server_.reply_cache().in_flight_drops(),
            1u);
}

TEST_F(RpcTest, DownServerSwallowsRequests) {
  server_.set_down(true);
  client_.options().timeout = SimDuration::Seconds(1);
  client_.options().retry.max_attempts = 2;
  auto result = client_.Call("echo", {WireValue("void")});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client_.calls_timed_out(), 1u);
  EXPECT_EQ(server_.requests_dropped(), 2u);
  EXPECT_EQ(server_.requests_executed(), 0u);
}

TEST_F(RpcTest, CircuitBreakerOpensAndRecovers) {
  client_.options().timeout = SimDuration::Seconds(1);
  client_.options().retry.max_attempts = 1;
  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 2;
  breaker_options.cooldown = SimDuration::Seconds(10);
  client_.breaker() = CircuitBreaker(breaker_options);

  // Responses blackholed: two timed-out calls trip the breaker.
  link_.set_partitioned(NetworkLink::Direction::kReverse, true);
  EXPECT_FALSE(client_.Call("echo", {}).ok());
  EXPECT_FALSE(client_.Call("echo", {}).ok());
  EXPECT_EQ(client_.breaker().state(), CircuitBreaker::State::kOpen);

  // While open: rejected locally, nothing goes on the wire.
  uint64_t attempts_before = client_.attempts_started();
  SimTime start = queue_.Now();
  auto rejected = client_.Call("echo", {});
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(client_.attempts_started(), attempts_before);
  EXPECT_EQ(client_.calls_rejected(), 1u);
  EXPECT_LT((queue_.Now() - start).millis(), 1);

  // After the cooldown (and the partition healing) a half-open probe is
  // admitted; its success closes the breaker.
  link_.set_partitioned(NetworkLink::Direction::kReverse, false);
  queue_.AdvanceBy(SimDuration::Seconds(11));
  auto probe = client_.Call("echo", {WireValue("probe")});
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(client_.breaker().state(), CircuitBreaker::State::kClosed);
}

// --- Circuit breaker failure classes. ---------------------------------------
//
// Two classes count toward the threshold: transport timeouts and link-down
// aborts. Each class is exercised alone, then mixed; link restoration must
// waive the cooldown only for abort-opened breakers.

TEST(CircuitBreakerClassTest, TimeoutsAloneOpenTheBreaker) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(options);
  SimTime t;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.AllowRequest(t));
    breaker.RecordFailure(t);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  }
  ASSERT_TRUE(breaker.AllowRequest(t));
  breaker.RecordFailure(t);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opened_count(), 1u);
  EXPECT_EQ(breaker.abort_opened_count(), 0u);
}

TEST(CircuitBreakerClassTest, LinkDownAbortsAloneOpenTheBreaker) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(options);
  SimTime t;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(breaker.AllowRequest(t));
    breaker.RecordAborted(t);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  }
  ASSERT_TRUE(breaker.AllowRequest(t));
  breaker.RecordAborted(t);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opened_count(), 1u);
  EXPECT_EQ(breaker.abort_opened_count(), 1u);
}

TEST(CircuitBreakerClassTest, MixedClassesShareTheThreshold) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(options);
  SimTime t;
  breaker.RecordFailure(t);
  breaker.RecordAborted(t);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(t);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  // The last straw was a timeout, so this opening is not abort-class.
  EXPECT_EQ(breaker.abort_opened_count(), 0u);
}

TEST(CircuitBreakerClassTest, SuccessResetsBothClasses) {
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  CircuitBreaker breaker(options);
  SimTime t;
  breaker.RecordAborted(t);
  breaker.RecordSuccess();
  breaker.RecordFailure(t);
  breaker.RecordSuccess();
  breaker.RecordAborted(t);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerClassTest, LinkRestoredWaivesAbortCooldownOnly) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown = SimDuration::Seconds(60);
  SimTime t;

  // Abort-opened: NoteLinkRestored ends the cooldown; the next request is
  // the half-open probe.
  CircuitBreaker aborted(options);
  aborted.RecordAborted(t);
  ASSERT_EQ(aborted.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(aborted.AllowRequest(t + SimDuration::Seconds(1)));
  aborted.NoteLinkRestored(t + SimDuration::Seconds(2));
  EXPECT_TRUE(aborted.AllowRequest(t + SimDuration::Seconds(2)));
  EXPECT_EQ(aborted.state(), CircuitBreaker::State::kHalfOpen);

  // Timeout-opened: a live link does not disprove a dead server, so the
  // cooldown stands.
  CircuitBreaker timed_out(options);
  timed_out.RecordFailure(t);
  ASSERT_EQ(timed_out.state(), CircuitBreaker::State::kOpen);
  timed_out.NoteLinkRestored(t + SimDuration::Seconds(2));
  EXPECT_FALSE(timed_out.AllowRequest(t + SimDuration::Seconds(2)));
  EXPECT_TRUE(
      timed_out.AllowRequest(t + options.cooldown + SimDuration::Seconds(1)));
}

TEST_F(RpcTest, AbortOpenedBreakerProbesImmediatelyOnReconnect) {
  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 3;
  breaker_options.cooldown = SimDuration::Seconds(60);
  client_.breaker() = CircuitBreaker(breaker_options);

  // A storm of known-down fail-fasts opens the breaker (abort class).
  link_.set_disconnected(true);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(client_.Call("echo", {}).ok());
  }
  EXPECT_EQ(client_.breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(client_.breaker().abort_opened_count(), 1u);

  // Reconnect long before the 60 s cooldown would elapse: the next call
  // notices the live link, waives the cooldown, probes, and succeeds.
  link_.set_disconnected(false);
  queue_.AdvanceBy(SimDuration::Seconds(1));
  auto probe = client_.Call("echo", {WireValue("back")});
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(client_.breaker().state(), CircuitBreaker::State::kClosed);
}

// --- Reply-cache eviction. --------------------------------------------------

TEST(ReplyCacheTest, EvictsCompletedEntriesByVirtualAge) {
  ReplyCache cache(/*capacity=*/100, /*max_age=*/SimDuration::Seconds(10));
  SimTime t;
  cache.Complete({1, 1}, "a", t);
  cache.Complete({1, 2}, "b", t + SimDuration::Seconds(5));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.age_evictions(), 0u);

  // At t+12 the first entry is past max_age, the second is not.
  cache.Complete({1, 3}, "c", t + SimDuration::Seconds(12));
  EXPECT_FALSE(cache.Lookup({1, 1}).has_value());
  EXPECT_TRUE(cache.Lookup({1, 2}).has_value());
  EXPECT_TRUE(cache.Lookup({1, 3}).has_value());
  EXPECT_EQ(cache.age_evictions(), 1u);
  EXPECT_EQ(cache.capacity_evictions(), 0u);

  // Much later everything before the insertion ages out at once.
  cache.Complete({1, 4}, "d", t + SimDuration::Seconds(100));
  EXPECT_FALSE(cache.Lookup({1, 2}).has_value());
  EXPECT_FALSE(cache.Lookup({1, 3}).has_value());
  EXPECT_TRUE(cache.Lookup({1, 4}).has_value());
  EXPECT_EQ(cache.age_evictions(), 3u);
}

TEST(ReplyCacheTest, CapacityEvictionCountedSeparately) {
  ReplyCache cache(/*capacity=*/2, /*max_age=*/SimDuration::Seconds(10));
  SimTime t;
  cache.Complete({1, 1}, "a", t);
  cache.Complete({1, 2}, "b", t);
  cache.Complete({1, 3}, "c", t);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup({1, 1}).has_value());
  EXPECT_EQ(cache.capacity_evictions(), 1u);
  EXPECT_EQ(cache.age_evictions(), 0u);
}

TEST(ReplyCacheTest, ZeroMaxAgeDisablesTheAgeBound) {
  ReplyCache cache(/*capacity=*/100, /*max_age=*/SimDuration());
  SimTime t;
  cache.Complete({1, 1}, "a", t);
  cache.Complete({1, 2}, "b", t + SimDuration::Seconds(100000));
  EXPECT_TRUE(cache.Lookup({1, 1}).has_value());
  EXPECT_EQ(cache.age_evictions(), 0u);
}

TEST_F(RpcTest, AsyncSuccessLeavesNoDeadTimerBehind) {
  bool called = false;
  client_.CallAsync("echo", {WireValue("tidy")}, [&](Result<WireValue> r) {
    called = true;
    EXPECT_TRUE(r.ok());
  });
  ASSERT_TRUE(queue_.RunUntilFlag(&called));
  // Satellite regression: the per-attempt timeout must be cancelled on
  // completion, not left to fire as a no-op seconds later.
  EXPECT_EQ(queue_.pending_count(), 0u);
}

TEST_F(RpcTest, AsyncCallCompletes) {
  bool called = false;
  client_.CallAsync("echo", {WireValue(int64_t{5})},
                    [&](Result<WireValue> r) {
                      called = true;
                      ASSERT_TRUE(r.ok());
                      EXPECT_EQ(*r->AsInt(), 5);
                    });
  EXPECT_FALSE(called);  // Not yet delivered.
  queue_.RunUntilIdle();
  EXPECT_TRUE(called);
}

TEST_F(RpcTest, AsyncTimeoutFiresOnceOnLostMessage) {
  link_.set_disconnected(true);
  client_.options().timeout = SimDuration::Seconds(1);
  int calls = 0;
  client_.CallAsync("echo", {}, [&](Result<WireValue> r) {
    ++calls;
    EXPECT_FALSE(r.ok());
  });
  queue_.RunUntilIdle();
  EXPECT_EQ(calls, 1);
}

TEST_F(RpcTest, AsyncOverlapsWithForegroundWork) {
  // The async RPC completes while the "application" is busy advancing time —
  // the mechanism the IBE metadata path relies on.
  bool called = false;
  client_.CallAsync("echo", {WireValue("bg")}, [&](Result<WireValue> r) {
    called = true;
    EXPECT_TRUE(r.ok());
  });
  queue_.AdvanceBy(SimDuration::Millis(400));  // > RTT.
  EXPECT_TRUE(called);
}

TEST_F(RpcTest, ConcurrentCallsBothComplete) {
  int completed = 0;
  client_.CallAsync("echo", {WireValue(int64_t{1})},
                    [&](Result<WireValue> r) { completed += r.ok(); });
  client_.CallAsync("echo", {WireValue(int64_t{2})},
                    [&](Result<WireValue> r) { completed += r.ok(); });
  auto blocking = client_.Call("echo", {WireValue(int64_t{3})});
  EXPECT_TRUE(blocking.ok());
  queue_.RunUntilIdle();
  EXPECT_EQ(completed, 2);
}

TEST_F(RpcTest, BytesFlowOverLink) {
  client_.Call("echo", {WireValue("some payload with real size")});
  // Request + response were both marshalled through the link.
  EXPECT_GT(link_.bytes_sent(), 200u);
  EXPECT_EQ(link_.messages_sent(), 2u);
}

// --- Wire-codec negotiation (DESIGN.md §11). --------------------------------

TEST_F(RpcTest, BinaryCodecRoundTripsAndConfirms) {
  client_.set_codec(WireCodec::kBinary);
  auto result = client_.Call("echo", {WireValue("compact")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->AsString(), "compact");
  EXPECT_EQ(client_.codec(), WireCodec::kBinary);
  EXPECT_EQ(client_.codec_downgrades(), 0u);
  // The confirmed probe sticks for subsequent calls.
  EXPECT_TRUE(client_.Call("echo", {WireValue(int64_t{7})}).ok());
  EXPECT_EQ(client_.codec(), WireCodec::kBinary);
}

TEST_F(RpcTest, BinaryShrinksBytesOnTheWire) {
  client_.Call("echo", {WireValue("payload"), WireValue(int64_t{42})});
  uint64_t xml_bytes = link_.bytes_sent();
  link_.ResetCounters();
  client_.set_codec(WireCodec::kBinary);
  client_.Call("echo", {WireValue("payload"), WireValue(int64_t{42})});
  EXPECT_LT(link_.bytes_sent() * 3, xml_bytes);  // >3x smaller end to end.
}

TEST_F(RpcTest, BinaryProbeFallsBackAgainstXmlOnlyServer) {
  // A legacy server answers the binary probe with an XML decode fault; the
  // client must latch XML, resend under a fresh request id, and complete
  // the SAME logical call with the real answer — transparently.
  server_.set_xml_only(true);
  client_.set_codec(WireCodec::kBinary);
  auto result = client_.Call("echo", {WireValue("legacy")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->AsString(), "legacy");
  EXPECT_EQ(client_.codec(), WireCodec::kXml);
  EXPECT_EQ(client_.codec_downgrades(), 1u);
  // Both the probe and the re-frame executed exactly one handler call:
  // the probe died in decode, the XML resend ran the method.
  EXPECT_EQ(server_.requests_executed(), 1u);
  // Later calls go straight to XML — one downgrade per client, not per call.
  EXPECT_TRUE(client_.Call("echo", {WireValue("again")}).ok());
  EXPECT_EQ(client_.codec_downgrades(), 1u);
}

TEST_F(RpcTest, FallbackResendSurvivesReplyCache) {
  // The downgrade resend MUST use a fresh sequence number: the probe's id
  // is bound to the decode fault in the reply cache, and replaying it
  // would return the fault forever.
  server_.set_xml_only(true);
  client_.set_codec(WireCodec::kBinary);
  ASSERT_TRUE(client_.Call("echo", {WireValue(int64_t{1})}).ok());
  EXPECT_EQ(server_.reply_cache().hits(), 0u);
  // A second client against the same server negotiates independently.
  RpcClient other(&queue_, &link_, &server_,
                  RpcOptions{.codec = WireCodec::kBinary});
  ASSERT_TRUE(other.Call("echo", {WireValue(int64_t{2})}).ok());
  EXPECT_EQ(other.codec(), WireCodec::kXml);
}

TEST_F(RpcTest, ServerCrashMidProbeFallsBackExactlyOnceAfterRestart) {
  // The server crashes while the binary probe is in flight and comes back
  // as a legacy XML-only build before the retry lands. The retained call
  // must ride the retry ladder, draw the decode fault, and re-frame as XML
  // under a FRESH dedup sequence exactly once — one handler execution, no
  // poisoned reply-cache entry answering the resend.
  int executions = 0;
  server_.RegisterMethod("count", [&](const WireValue::Array&) {
    ++executions;
    return Result<WireValue>(WireValue(int64_t{executions}));
  });
  client_.set_codec(WireCodec::kBinary);  // Probe not yet confirmed.
  client_.options().timeout = SimDuration::Seconds(2);
  server_.set_down(true);  // Crash swallows the first probe attempt.
  queue_.Schedule(queue_.Now() + SimDuration::Seconds(1), [this] {
    server_.set_down(false);
    server_.set_xml_only(true);  // Restarted binary rolled back to XML-only.
  });
  auto result = client_.Call("count", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->AsInt(), 1);
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(server_.requests_executed(), 1u);
  EXPECT_EQ(client_.codec(), WireCodec::kXml);
  EXPECT_EQ(client_.codec_downgrades(), 1u);
  // The XML resend carried a fresh sequence: it never matched the probe's
  // cached decode fault (a hit would have replayed the fault forever).
  EXPECT_EQ(server_.reply_cache().hits(), 0u);
  // The downgrade latched; later calls are XML first time, no re-probe.
  ASSERT_TRUE(client_.Call("count", {}).ok());
  EXPECT_EQ(client_.codec_downgrades(), 1u);
  EXPECT_EQ(executions, 2);
}

TEST_F(RpcTest, ChannelPreferenceSelectsBinaryUnderSealing) {
  // Channel security and binary framing negotiate together: enabling the
  // sealed channel adopts its codec preference, and sealed binary frames
  // round-trip (the dedup frame and codec payload travel INSIDE the
  // envelope, so sealing is codec-oblivious).
  SecureRandom client_rng(99), server_rng(99);
  Bytes root = BytesOf("negotiated-root-secret");
  SecureChannel client_chan(root, SimDuration::Seconds(60));
  SecureChannel server_chan(root, SimDuration::Seconds(60));
  client_chan.set_preferred_codec(WireCodec::kBinary);
  server_.EnableChannelSecurity(
      [&](const std::string& device_id) -> SecureChannel* {
        return device_id == "dev-1" ? &server_chan : nullptr;
      },
      &server_rng);
  client_.EnableChannelSecurity(&client_chan, "dev-1", &client_rng);
  EXPECT_EQ(client_.codec(), WireCodec::kBinary);
  auto result = client_.Call("echo", {WireValue("sealed+binary")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->AsString(), "sealed+binary");
  EXPECT_EQ(client_.codec(), WireCodec::kBinary);
  EXPECT_EQ(client_.codec_downgrades(), 0u);
}

TEST_F(RpcTest, AsyncCallNegotiatesFallbackToo) {
  server_.set_xml_only(true);
  client_.set_codec(WireCodec::kBinary);
  bool called = false;
  client_.CallAsync("echo", {WireValue("async-legacy")},
                    [&](Result<WireValue> r) {
                      called = true;
                      ASSERT_TRUE(r.ok());
                      EXPECT_EQ(*r->AsString(), "async-legacy");
                    });
  queue_.RunUntilIdle();
  EXPECT_TRUE(called);
  EXPECT_EQ(client_.codec(), WireCodec::kXml);
  EXPECT_EQ(client_.codec_downgrades(), 1u);
}

TEST_F(RpcTest, EncodeBuffersAreReused) {
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client_.Call("echo", {WireValue(int64_t{i})}).ok());
  }
  const BufferPool::Stats& stats = client_.encode_buffer_stats();
  EXPECT_EQ(stats.acquires, 8u);
  // Sequential calls return their buffer before the next acquires: every
  // call after the first reuses warmed capacity.
  EXPECT_EQ(stats.reuses, 7u);
}

}  // namespace
}  // namespace keypad
