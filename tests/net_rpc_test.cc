#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/net/profile.h"
#include "src/net/secure_channel.h"
#include "src/rpc/rpc.h"
#include "src/sim/event_queue.h"

namespace keypad {
namespace {

TEST(ProfileTest, PaperRtts) {
  EXPECT_EQ(LanProfile().rtt.micros(), 100);
  EXPECT_EQ(WlanProfile().rtt.millis(), 2);
  EXPECT_EQ(BroadbandProfile().rtt.millis(), 25);
  EXPECT_EQ(DslProfile().rtt.millis(), 125);
  EXPECT_EQ(CellularProfile().rtt.millis(), 300);
  EXPECT_EQ(AllEvaluationProfiles().size(), 5u);
  EXPECT_EQ(CustomRttProfile(SimDuration::Millis(40)).rtt.millis(), 40);
}

TEST(LinkTest, DeliversAfterOneWayLatency) {
  EventQueue q;
  NetworkLink link(&q, CellularProfile());
  bool delivered = false;
  SimTime sent_at = q.Now();
  EXPECT_TRUE(link.Send(100, [&] { delivered = true; }));
  q.RunUntilIdle();
  EXPECT_TRUE(delivered);
  EXPECT_EQ((q.Now() - sent_at).millis(), 150);  // RTT/2.
  EXPECT_EQ(link.bytes_sent(), 100u);
  EXPECT_EQ(link.messages_sent(), 1u);
}

TEST(LinkTest, DisconnectedDropsSilently) {
  EventQueue q;
  NetworkLink link(&q, LanProfile());
  link.set_disconnected(true);
  bool delivered = false;
  EXPECT_FALSE(link.Send(10, [&] { delivered = true; }));
  q.RunUntilIdle();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(link.messages_dropped(), 1u);
  EXPECT_EQ(link.bytes_sent(), 0u);
}

TEST(LinkTest, DropProbabilityLosesSomeMessages) {
  EventQueue q;
  NetworkLink link(&q, LanProfile(), /*drop_seed=*/7);
  link.set_drop_probability(0.5);
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    link.Send(1, [&] { ++delivered; });
  }
  q.RunUntilIdle();
  EXPECT_GT(delivered, 50);
  EXPECT_LT(delivered, 150);
  EXPECT_EQ(link.messages_sent() + link.messages_dropped(), 200u);
}

TEST(LinkTest, CounterReset) {
  EventQueue q;
  NetworkLink link(&q, LanProfile());
  link.Send(42, [] {});
  link.ResetCounters();
  EXPECT_EQ(link.bytes_sent(), 0u);
  EXPECT_EQ(link.messages_sent(), 0u);
}

TEST(SecureChannelTest, SealOpenRoundTrip) {
  SecureRandom rng(uint64_t{1});
  SecureChannel alice(BytesOf("shared root"), SimDuration::Seconds(100));
  SecureChannel bob(BytesOf("shared root"), SimDuration::Seconds(100));
  SimTime now = SimTime::Epoch() + SimDuration::Seconds(42);
  Bytes sealed = alice.Seal(now, BytesOf("key request"), rng);
  auto opened = bob.Open(now, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(StringOf(*opened), "key request");
}

TEST(SecureChannelTest, TamperDetected) {
  SecureRandom rng(uint64_t{2});
  SecureChannel a(BytesOf("root"), SimDuration::Seconds(100));
  SecureChannel b(BytesOf("root"), SimDuration::Seconds(100));
  SimTime now = SimTime::Epoch();
  Bytes sealed = a.Seal(now, BytesOf("payload"), rng);
  sealed[sealed.size() / 2] ^= 1;
  EXPECT_FALSE(b.Open(now, sealed).ok());
  EXPECT_FALSE(b.Open(now, Bytes(10, 0)).ok());
}

TEST(SecureChannelTest, AcceptsPreviousEpochOnly) {
  SecureRandom rng(uint64_t{3});
  SimDuration period = SimDuration::Seconds(100);
  SecureChannel sender(BytesOf("root"), period);
  SecureChannel receiver(BytesOf("root"), period);

  SimTime t0 = SimTime::Epoch() + SimDuration::Seconds(50);
  Bytes sealed = sender.Seal(t0, BytesOf("m"), rng);

  // One epoch later: still accepted (in-flight rotation race).
  SimTime t1 = t0 + period;
  EXPECT_TRUE(receiver.Open(t1, sealed).ok());

  // Two epochs later: rejected.
  SecureChannel receiver2(BytesOf("root"), period);
  SimTime t2 = t0 + period + period;
  auto r = receiver2.Open(t2, sealed);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST(SecureChannelTest, RatchetIsForwardSecure) {
  // The key for epoch N+1 is derivable from epoch N's, but not vice versa:
  // distinct epochs produce unrelated-looking keys and the channel refuses
  // stale traffic. We verify at least that epoch keys differ and advance
  // erases the pre-previous key.
  SecureChannel chan(BytesOf("root"), SimDuration::Seconds(10));
  Bytes k0 = chan.CurrentEpochKeyForTesting(SimTime::Epoch());
  Bytes k5 = chan.CurrentEpochKeyForTesting(SimTime::Epoch() +
                                            SimDuration::Seconds(50));
  EXPECT_NE(k0, k5);
}

class RpcTest : public ::testing::Test {
 protected:
  RpcTest()
      : link_(&queue_, CellularProfile()),
        server_(&queue_, SimDuration::Micros(150)),
        client_(&queue_, &link_, &server_) {
    server_.RegisterMethod("echo", [](const WireValue::Array& params) {
      return Result<WireValue>(params.empty() ? WireValue() : params[0]);
    });
    server_.RegisterMethod("fail", [](const WireValue::Array&) {
      return Result<WireValue>(PermissionDeniedError("revoked"));
    });
  }

  EventQueue queue_;
  NetworkLink link_;
  RpcServer server_;
  RpcClient client_;
};

TEST_F(RpcTest, BlockingCallRoundTrip) {
  SimTime start = queue_.Now();
  auto result = client_.Call("echo", {WireValue("hello")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result->AsString(), "hello");
  // Elapsed ≈ RTT (300 ms) + client overhead + server time.
  SimDuration elapsed = queue_.Now() - start;
  EXPECT_GE(elapsed.millis(), 300);
  EXPECT_LT(elapsed.millis(), 302);
  EXPECT_EQ(server_.requests_handled(), 1u);
}

TEST_F(RpcTest, ServerFaultPropagates) {
  auto result = client_.Call("fail", {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(result.status().message(), "revoked");
}

TEST_F(RpcTest, UnknownMethodIsNotFound) {
  auto result = client_.Call("nope", {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(RpcTest, DisconnectedLinkTimesOut) {
  link_.set_disconnected(true);
  client_.options().timeout = SimDuration::Seconds(2);
  SimTime start = queue_.Now();
  auto result = client_.Call("echo", {WireValue(int64_t{1})});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ((queue_.Now() - start).seconds(), 2);
  EXPECT_EQ(client_.calls_timed_out(), 1u);
}

TEST_F(RpcTest, AsyncCallCompletes) {
  bool called = false;
  client_.CallAsync("echo", {WireValue(int64_t{5})},
                    [&](Result<WireValue> r) {
                      called = true;
                      ASSERT_TRUE(r.ok());
                      EXPECT_EQ(*r->AsInt(), 5);
                    });
  EXPECT_FALSE(called);  // Not yet delivered.
  queue_.RunUntilIdle();
  EXPECT_TRUE(called);
}

TEST_F(RpcTest, AsyncTimeoutFiresOnceOnLostMessage) {
  link_.set_disconnected(true);
  client_.options().timeout = SimDuration::Seconds(1);
  int calls = 0;
  client_.CallAsync("echo", {}, [&](Result<WireValue> r) {
    ++calls;
    EXPECT_FALSE(r.ok());
  });
  queue_.RunUntilIdle();
  EXPECT_EQ(calls, 1);
}

TEST_F(RpcTest, AsyncOverlapsWithForegroundWork) {
  // The async RPC completes while the "application" is busy advancing time —
  // the mechanism the IBE metadata path relies on.
  bool called = false;
  client_.CallAsync("echo", {WireValue("bg")}, [&](Result<WireValue> r) {
    called = true;
    EXPECT_TRUE(r.ok());
  });
  queue_.AdvanceBy(SimDuration::Millis(400));  // > RTT.
  EXPECT_TRUE(called);
}

TEST_F(RpcTest, ConcurrentCallsBothComplete) {
  int completed = 0;
  client_.CallAsync("echo", {WireValue(int64_t{1})},
                    [&](Result<WireValue> r) { completed += r.ok(); });
  client_.CallAsync("echo", {WireValue(int64_t{2})},
                    [&](Result<WireValue> r) { completed += r.ok(); });
  auto blocking = client_.Call("echo", {WireValue(int64_t{3})});
  EXPECT_TRUE(blocking.ok());
  queue_.RunUntilIdle();
  EXPECT_EQ(completed, 2);
}

TEST_F(RpcTest, BytesFlowOverLink) {
  client_.Call("echo", {WireValue("some payload with real size")});
  // Request + response were both marshalled through the link.
  EXPECT_GT(link_.bytes_sent(), 200u);
  EXPECT_EQ(link_.messages_sent(), 2u);
}

}  // namespace
}  // namespace keypad
