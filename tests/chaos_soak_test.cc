// Chaos soak: a seeded mixed workload rides through burst loss,
// duplication, reordering, and latency jitter on the client link, PLUS a
// crash/restart of each audit service mid-run — and the audit invariants
// hold at the end:
//   * both hash-chained logs Verify();
//   * retries and duplicated deliveries never double-write audit rows
//     (at most one kCreate per audit id);
//   * every file whose create succeeded is re-readable after recovery,
//     including a fresh key fetch from the restored service.
//
// Everything is seeded, so a given seed reproduces the identical fault
// schedule — the last test asserts that outright.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/keypad/deployment.h"
#include "src/sim/random.h"

namespace keypad {
namespace {

struct SoakResult {
  int created = 0;
  uint64_t key_log_size = 0;
  uint64_t meta_log_size = 0;
  Bytes key_log_tip;  // Final audit-log entry hash: digests the whole run.
  // Overload-phase observability (DESIGN.md §14): the retry ladder's own
  // trajectory, which the determinism tests compare bit-for-bit.
  uint64_t attempts = 0;
  uint64_t sheds = 0;
  uint64_t rejects_seen = 0;
  uint64_t retries_denied = 0;
};

SoakResult RunSoak(uint64_t seed, int key_replicas = 1,
                   int meta_replicas = 1, bool overload = false) {
  ResetRpcClientIdsForTesting();

  DeploymentOptions options;
  options.profile = BroadbandProfile();
  options.config.ibe_enabled = false;
  options.seed = seed;
  options.rpc.timeout = SimDuration::Seconds(2);
  options.key_replicas = key_replicas;
  options.meta_replicas = meta_replicas;
  if (overload) {
    // §14 overload phase: retries are budget-gated, so the ladder's
    // behavior under saturation is itself part of the seeded replay.
    options.rpc.retry_budget.enabled = true;
  }
  Deployment dep(options);
  auto& fs = dep.fs();
  if (overload) {
    // Admission-controlled key tier with a tight sojourn target: the
    // saturation spikes below push it into the overloaded state, where
    // demand traffic draws explicit REJECTED instead of queueing.
    AdmissionOptions adm;
    adm.enabled = true;
    adm.target_sojourn = SimDuration::Millis(2);
    adm.overload_interval = SimDuration::Millis(20);
    dep.key_rpc_server().set_admission(adm);
  }

  LinkChaosOptions chaos;
  chaos.latency_jitter_frac = 0.3;
  chaos.duplicate_probability = 0.05;
  chaos.reorder_probability = 0.1;
  chaos.burst_loss = true;
  chaos.p_enter_bad = 0.01;
  chaos.p_exit_bad = 0.15;
  chaos.loss_bad = 0.5;
  dep.client_link().set_chaos(chaos);

  // Both services die and come back mid-workload, at different times.
  SimTime t0 = dep.queue().Now();
  dep.ScheduleKeyServiceCrash(t0 + SimDuration::Seconds(60),
                              SimDuration::Seconds(20));
  dep.ScheduleMetadataServiceCrash(t0 + SimDuration::Seconds(150),
                                   SimDuration::Seconds(20));
  if (meta_replicas > 1) {
    // Replicated metadata tier: pile a second kill/heal cycle onto the
    // backup that promoted after the 150 s leader kill, so the soak rides
    // through two metadata failovers plus a rejoin mid-chaos.
    dep.ScheduleMetaReplicaCrash(1, t0 + SimDuration::Seconds(190),
                                 SimDuration::Seconds(20));
  }

  SimRandom rng(seed * 1000003);
  std::vector<std::string> files;  // Current paths of created files.
  SoakResult result;
  for (int i = 0; i < 120; ++i) {
    if (overload && i % 10 == 0) {
      // Saturation spike: the key tier is busy for the next 5 virtual
      // seconds. Demand fetches landing in the spike either time out
      // (feeding the budget-gated retry ladder) or draw REJECTED once
      // the CoDel clock declares the tier overloaded.
      dep.key_rpc_server().ChargeBusy(SimDuration::Seconds(5));
    }
    uint64_t roll = rng.UniformU64(10);
    if (roll < 4 || files.empty()) {
      std::string path = "/f" + std::to_string(i);
      if (fs.Create(path).ok()) {
        files.push_back(path);
        ++result.created;
        // A successful create must be durable end to end even if the
        // write's own RPCs struggle; WriteAll is local (no key refetch
        // needed within texp), so it should succeed.
        EXPECT_TRUE(fs.WriteAll(path, BytesOf("payload-" + path)).ok());
      }
    } else if (roll < 8) {
      // Reads may fail mid-chaos (key fetch into an outage) — that's the
      // point; they must all succeed again after recovery.
      fs.ReadAll(files[rng.UniformU64(files.size())]).status();
    } else {
      size_t victim = rng.UniformU64(files.size());
      std::string renamed = files[victim] + "r";
      Status status = fs.Rename(files[victim], renamed);
      // EncFs applies the local rename before the (possibly failing)
      // metadata registration, so track wherever the file actually lives.
      if (status.ok() || fs.Stat(renamed).ok()) {
        files[victim] = renamed;
      }
    }
    dep.queue().AdvanceBy(SimDuration::Seconds(2));
  }

  // Heal the network, drain stragglers, and expire every cached key so the
  // final reads demand-fetch from the restored services. Replicated
  // deployments keep perpetual lease-renewal timers on the queue, so they
  // drain by advancing time instead of RunUntilIdle.
  dep.client_link().set_chaos(LinkChaosOptions{});
  if (key_replicas > 1 || meta_replicas > 1) {
    dep.queue().AdvanceBy(SimDuration::Seconds(30));
  } else {
    dep.queue().RunUntilIdle();
  }
  dep.queue().AdvanceBy(options.config.texp * 2 + SimDuration::Seconds(2));

  EXPECT_GT(result.created, 10) << "seed " << seed;
  EXPECT_FALSE(dep.key_rpc_server().down());
  EXPECT_FALSE(dep.meta_rpc_server().down());

  // Invariant: hash chains intact across crash/restart.
  EXPECT_TRUE(dep.key_service().log().Verify().ok()) << "seed " << seed;
  EXPECT_TRUE(dep.metadata_service().log().Verify().ok()) << "seed " << seed;

  // Invariant: retries + duplicated deliveries never double-registered —
  // at most one kCreate row per audit id.
  std::map<AuditId, int> creates;
  for (const auto& entry : dep.key_service().log().entries()) {
    if (entry.op == AccessOp::kCreate) {
      ++creates[entry.audit_id];
    }
  }
  for (const auto& [id, count] : creates) {
    EXPECT_EQ(count, 1) << "seed " << seed << ": duplicate kCreate for "
                        << id.ToHex();
  }

  // Invariant: every successfully created file is re-readable after
  // recovery (key + metadata registered, key refetch works).
  for (const auto& path : files) {
    EXPECT_TRUE(fs.ReadAll(path).ok()) << "seed " << seed << ": " << path;
    AuditId id = fs.ReadHeaderOf(path)->audit_id;
    EXPECT_TRUE(dep.metadata_service()
                    .ResolvePath(dep.device_id(), id, dep.queue().Now())
                    .ok())
        << "seed " << seed << ": " << path;
  }

  // The chaos actually bit: the at-most-once layer absorbed replays, the
  // client retried, and the crashed servers swallowed traffic.
  uint64_t dedup_work = dep.key_rpc_server().reply_cache().hits() +
                        dep.key_rpc_server().reply_cache().in_flight_drops() +
                        dep.meta_rpc_server().reply_cache().hits() +
                        dep.meta_rpc_server().reply_cache().in_flight_drops();
  EXPECT_GE(dedup_work, 1u) << "seed " << seed;
  EXPECT_GT(dep.key_rpc().attempts_started(), dep.key_rpc().calls_started())
      << "seed " << seed;
  EXPECT_GE(dep.key_rpc_server().requests_dropped(), 1u) << "seed " << seed;
  EXPECT_GE(dep.meta_rpc_server().requests_dropped(), 1u) << "seed " << seed;

  // Replicated runs: the leader crash above hit the shard's current
  // leader, a backup promoted through the chaos, and the ex-primary
  // rejoined — chains must have reconverged on every replica, and the
  // forensic report must verify all of them.
  if (key_replicas > 1) {
    ReplicaSet* set = dep.replica_set(0);
    EXPECT_NE(set, nullptr) << "seed " << seed;
    EXPECT_GE(set->stats().promotions, 1u) << "seed " << seed;
    EXPECT_GE(set->stats().rejoins, 1u) << "seed " << seed;
    const AuditLog& authority =
        dep.key_replica(0, set->current_leader()).log();
    for (size_t r = 0; r < dep.key_replica_count(); ++r) {
      const AuditLog& log = dep.key_replica(0, r).log();
      EXPECT_TRUE(log.Verify().ok()) << "seed " << seed << " replica " << r;
      EXPECT_EQ(log.size(), authority.size())
          << "seed " << seed << " replica " << r;
    }
    auto report = dep.auditor().BuildReport(dep.device_id(), t0,
                                            options.config.texp);
    EXPECT_TRUE(report.ok()) << "seed " << seed;
    if (report.ok()) {
      EXPECT_TRUE(report->replica_logs_verified) << "seed " << seed;
    }
  }

  // Replicated metadata tier: both scheduled kills hit live metadata
  // leaders, backups promoted, the dead replicas rejoined — every
  // namespace chain must have reconverged and the forensic report must
  // verify all of them alongside the key tier's.
  if (meta_replicas > 1) {
    MetaReplicaSet* meta_set = dep.meta_replica_set();
    EXPECT_NE(meta_set, nullptr) << "seed " << seed;
    EXPECT_GE(meta_set->stats().promotions, 1u) << "seed " << seed;
    EXPECT_GE(meta_set->stats().rejoins, 1u) << "seed " << seed;
    const MetadataLog& authority =
        dep.meta_replica(meta_set->current_leader()).log();
    for (size_t r = 0; r < dep.meta_replica_count(); ++r) {
      const MetadataLog& log = dep.meta_replica(r).log();
      EXPECT_TRUE(log.Verify().ok()) << "seed " << seed << " replica " << r;
      EXPECT_EQ(log.size(), authority.size())
          << "seed " << seed << " replica " << r;
    }
    auto report = dep.auditor().BuildReport(dep.device_id(), t0,
                                            options.config.texp);
    EXPECT_TRUE(report.ok()) << "seed " << seed;
    if (report.ok()) {
      EXPECT_TRUE(report->replica_logs_verified) << "seed " << seed;
      EXPECT_TRUE(report->metadata_log_verified) << "seed " << seed;
    }
  }

  result.key_log_size = dep.key_service().log().entries().size();
  result.meta_log_size = dep.metadata_service().log().records().size();
  result.key_log_tip = dep.key_service().log().entries().back().entry_hash;
  result.attempts = dep.key_rpc().attempts_started();
  result.sheds = dep.key_rpc_server().requests_shed() +
                 dep.key_rpc_server().deadline_expired();
  result.rejects_seen = dep.key_rpc().calls_rejected_by_server();
  result.retries_denied = dep.key_rpc().retries_budget_denied();
  if (overload) {
    // The overload phase actually bit: the tier went overloaded, shed
    // work with explicit REJECTED, and the client observed it — and the
    // audit invariants above all held anyway.
    EXPECT_GE(dep.key_rpc_server().overload_events(), 1u) << "seed " << seed;
    EXPECT_GT(result.sheds, 0u) << "seed " << seed;
    EXPECT_GT(result.rejects_seen, 0u) << "seed " << seed;
  }
  return result;
}

TEST(ChaosSoakTest, Seed1) { RunSoak(1); }
TEST(ChaosSoakTest, Seed2) { RunSoak(2); }
TEST(ChaosSoakTest, Seed3) { RunSoak(3); }

// The same chaos schedule with a replicated key tier: the 60 s crash now
// hits a replica-set leader mid-soak and failover rides through it.
TEST(ChaosSoakTest, Seed1Replicated) { RunSoak(1, /*key_replicas=*/2); }
TEST(ChaosSoakTest, Seed2Replicated) { RunSoak(2, /*key_replicas=*/2); }

// Replicated metadata tier on the same substrate: the 150 s crash kills
// the metadata leader and a second cycle at 190 s kills the promoted
// backup — two failovers, two rejoins, chains reconverged.
TEST(ChaosSoakTest, Seed1ReplicatedMeta) {
  RunSoak(1, /*key_replicas=*/1, /*meta_replicas=*/3);
}
TEST(ChaosSoakTest, Seed2ReplicatedMeta) {
  RunSoak(2, /*key_replicas=*/1, /*meta_replicas=*/3);
}

// Both tiers replicated at once, riding the same chaos schedule.
TEST(ChaosSoakTest, Seed1ReplicatedBothTiers) {
  RunSoak(1, /*key_replicas=*/2, /*meta_replicas=*/2);
}

// §14 overload phase on the same substrate: periodic saturation spikes
// against an admission-controlled key tier, with budget-gated retries.
// The audit invariants must hold even while the tier sheds demand work.
TEST(ChaosSoakTest, OverloadSeed1) {
  RunSoak(1, /*key_replicas=*/1, /*meta_replicas=*/1, /*overload=*/true);
}
TEST(ChaosSoakTest, OverloadSeed2) {
  RunSoak(2, /*key_replicas=*/1, /*meta_replicas=*/1, /*overload=*/true);
}

TEST(ChaosSoakTest, DeterministicAcrossRuns) {
  SoakResult a = RunSoak(1);
  SoakResult b = RunSoak(1);
  EXPECT_EQ(a.created, b.created);
  EXPECT_EQ(a.key_log_size, b.key_log_size);
  EXPECT_EQ(a.meta_log_size, b.meta_log_size);
  EXPECT_EQ(a.key_log_tip, b.key_log_tip);
}

TEST(ChaosSoakTest, ReplicatedDeterministicAcrossRuns) {
  SoakResult a = RunSoak(1, /*key_replicas=*/2);
  SoakResult b = RunSoak(1, /*key_replicas=*/2);
  EXPECT_EQ(a.created, b.created);
  EXPECT_EQ(a.key_log_size, b.key_log_size);
  EXPECT_EQ(a.meta_log_size, b.meta_log_size);
  EXPECT_EQ(a.key_log_tip, b.key_log_tip);
}

TEST(ChaosSoakTest, OverloadDeterministicAcrossRuns) {
  SoakResult a = RunSoak(1, 1, 1, /*overload=*/true);
  SoakResult b = RunSoak(1, 1, 1, /*overload=*/true);
  EXPECT_EQ(a.created, b.created);
  EXPECT_EQ(a.key_log_size, b.key_log_size);
  EXPECT_EQ(a.meta_log_size, b.meta_log_size);
  EXPECT_EQ(a.key_log_tip, b.key_log_tip);
  // The retry ladder itself replayed bit-identically under the budget:
  // same wire attempts, same sheds, same REJECTED observations, same
  // budget denials — overload handling adds no nondeterminism.
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.sheds, b.sheds);
  EXPECT_EQ(a.rejects_seen, b.rejects_seen);
  EXPECT_EQ(a.retries_denied, b.retries_denied);
}

TEST(ChaosSoakTest, ReplicatedMetaDeterministicAcrossRuns) {
  SoakResult a = RunSoak(1, /*key_replicas=*/1, /*meta_replicas=*/3);
  SoakResult b = RunSoak(1, /*key_replicas=*/1, /*meta_replicas=*/3);
  EXPECT_EQ(a.created, b.created);
  EXPECT_EQ(a.key_log_size, b.key_log_size);
  EXPECT_EQ(a.meta_log_size, b.meta_log_size);
  EXPECT_EQ(a.key_log_tip, b.key_log_tip);
}

}  // namespace
}  // namespace keypad
