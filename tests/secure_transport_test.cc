// End-to-end tests for transport encryption (§6): client↔service traffic
// sealed under per-device ratcheting session keys, over the full Keypad
// stack.

#include <gtest/gtest.h>

#include <map>

#include "src/cryptocore/hmac.h"
#include "src/keypad/deployment.h"
#include "src/wire/xmlrpc.h"

namespace keypad {
namespace {

DeploymentOptions SealedOpts() {
  DeploymentOptions options;
  options.profile = BroadbandProfile();
  options.config.ibe_enabled = false;
  options.secure_channel = true;
  return options;
}

TEST(SecureTransportTest, FullStackWorksOverSealedChannels) {
  Deployment dep(SealedOpts());
  auto& fs = dep.fs();
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  ASSERT_TRUE(fs.WriteAll("/d/f", BytesOf("sealed payload")).ok());
  ASSERT_TRUE(fs.Rename("/d/f", "/d/g").ok());
  dep.queue().AdvanceBy(fs.config().texp * 2 + SimDuration::Seconds(2));
  auto data = fs.ReadAll("/d/g");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(StringOf(*data), "sealed payload");
  EXPECT_TRUE(dep.key_service().log().Verify().ok());
}

TEST(SecureTransportTest, KeysNeverCrossTheWireInTheClear) {
  // Capture every byte the client link carries and scan for the remote key
  // the service returns. With sealed channels nothing key-shaped appears.
  Deployment dep(SealedOpts());
  auto& fs = dep.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  AuditId id = fs.ReadHeaderOf("/f")->audit_id;
  auto kr = dep.key_service().GetKey(dep.device_id(), id);
  ASSERT_TRUE(kr.ok());

  // The wire bytes aren't retained by the link, so instead verify at the
  // protocol level: a sealed request/response round trip does not contain
  // the key bytes, while the plaintext encoding would.
  // (The request the client actually sent was sealed; reproduce both forms.)
  std::string plaintext_response =
      EncodeXmlRpcResponse(WireValue(*kr));
  EXPECT_NE(plaintext_response.find("<base64>"), std::string::npos);

  SecureRandom rng(uint64_t{1});
  Bytes root = Hkdf(*dep.key_service().DeviceSecret(dep.device_id()),
                    /*salt=*/{}, "kp-channel-root", 32);
  SecureChannel channel(root, dep.fs().config().texp);
  Bytes sealed = channel.Seal(dep.queue().Now(),
                              BytesOf(plaintext_response), rng);
  std::string sealed_str = StringOf(sealed);
  // The key's base64 body must not be visible in the sealed frame.
  std::string key_marker = plaintext_response.substr(
      plaintext_response.find("<base64>") + 8, 24);
  EXPECT_EQ(sealed_str.find(key_marker), std::string::npos);
}

TEST(SecureTransportTest, UnknownDeviceEnvelopeRejected) {
  Deployment dep(SealedOpts());
  // A foreign client with made-up credentials cannot even form a valid
  // sealed session: the server has no channel for its device id.
  KeypadFs::Credentials bogus;
  bogus.device_id = "intruder";
  bogus.key_secret = Bytes(32, 1);
  bogus.meta_secret = Bytes(32, 2);
  auto clients = dep.MakeAttackerClients(bogus);
  ASSERT_TRUE(clients.ok());
  SecureRandom rng(uint64_t{3});
  auto result = clients->key->GetKey(AuditId::Random(rng));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
}

TEST(SecureTransportTest, ThiefWithStolenSecretsStillTalksButIsLogged) {
  // The channel is confidentiality against *network* observers, not an
  // authentication barrier against a thief who holds the device: he can
  // derive the channel roots from the stolen secrets — and every key he
  // fetches is still logged. (Paper §6: the defense is the audit trail.)
  Deployment dep(SealedOpts());
  auto& fs = dep.fs();
  ASSERT_TRUE(fs.Create("/secret.doc").ok());
  ASSERT_TRUE(fs.WriteAll("/secret.doc", BytesOf("data")).ok());
  dep.queue().AdvanceBy(SimDuration::Seconds(300));
  SimTime t_loss = dep.queue().Now();

  RawDeviceAttacker attacker = dep.MakeAttacker();
  auto creds = attacker.StealCredentials();
  ASSERT_TRUE(creds.ok());
  auto clients = dep.MakeAttackerClients(*creds);
  ASSERT_TRUE(clients.ok());
  KeypadConfig config;
  config.ibe_enabled = false;
  auto thief_fs = attacker.MountOnline(clients->services, config);
  ASSERT_TRUE(thief_fs.ok());
  ASSERT_TRUE((*thief_fs)->ReadAll("/secret.doc").ok());

  auto report = dep.auditor().BuildReport(dep.device_id(), t_loss,
                                          fs.config().texp);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(
      report->Compromised(fs.ReadHeaderOf("/secret.doc")->audit_id));
}

TEST(SecureTransportTest, SealedEnvelopeReplayIsEpochBounded) {
  // The channel itself is stateless about replay: a sealed frame opens
  // again within the current-or-previous epoch window. Replay defense at
  // the RPC layer (the dedup frame inside the envelope) is what prevents a
  // recorded request from re-executing; the ratchet merely bounds how long
  // the recorded ciphertext stays decryptable at all.
  SecureRandom rng(uint64_t{7});
  SimDuration period = SimDuration::Seconds(100);
  SecureChannel sender(BytesOf("root"), period);
  SecureChannel receiver(BytesOf("root"), period);
  SimTime t0 = SimTime::Epoch() + SimDuration::Seconds(10);
  Bytes sealed = sender.Seal(t0, BytesOf("key request"), rng);

  // Replay within the epoch window: the channel accepts it both times.
  ASSERT_TRUE(receiver.Open(t0, sealed).ok());
  ASSERT_TRUE(receiver.Open(t0 + SimDuration::Seconds(1), sealed).ok());

  // Two epochs later the ratchet has erased the key: replay is dead.
  auto stale = receiver.Open(t0 + period + period, sealed);
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kPermissionDenied);
}

TEST(SecureTransportTest, ReplayedRequestDoesNotDuplicateAuditRows) {
  // Full stack, sealed channels, and a network that duplicates every
  // message: the replayed sealed envelopes must be soaked up by the
  // at-most-once layer, leaving at most one kCreate row per file.
  DeploymentOptions options = SealedOpts();
  Deployment dep(options);
  LinkChaosOptions chaos;
  chaos.duplicate_probability = 1.0;
  dep.client_link().set_chaos(chaos);

  auto& fs = dep.fs();
  ASSERT_TRUE(fs.Create("/a").ok());
  ASSERT_TRUE(fs.Create("/b").ok());
  ASSERT_TRUE(fs.WriteAll("/a", BytesOf("x")).ok());
  dep.queue().RunUntilIdle();  // Let every duplicate land.

  std::map<AuditId, int> creates;
  for (const auto& entry : dep.key_service().log().entries()) {
    if (entry.op == AccessOp::kCreate) {
      ++creates[entry.audit_id];
    }
  }
  ASSERT_EQ(creates.size(), 2u);
  for (const auto& [id, count] : creates) {
    EXPECT_EQ(count, 1) << "duplicate audit row for " << id.ToHex();
  }
  EXPECT_GE(dep.key_rpc_server().reply_cache().hits() +
                dep.key_rpc_server().reply_cache().in_flight_drops(),
            1u);
  EXPECT_TRUE(dep.key_service().log().Verify().ok());
  EXPECT_TRUE(dep.metadata_service().log().Verify().ok());
}

TEST(SecureTransportTest, SurvivesKeyRotationEpochs) {
  // Work spanning many rotation periods: the ratchets on both sides stay
  // in step.
  DeploymentOptions options = SealedOpts();
  options.config.texp = SimDuration::Seconds(10);
  Deployment dep(options);
  auto& fs = dep.fs();
  ASSERT_TRUE(fs.Create("/f").ok());
  for (int epoch = 0; epoch < 20; ++epoch) {
    dep.queue().AdvanceBy(SimDuration::Seconds(25));
    ASSERT_TRUE(fs.ReadAll("/f").ok()) << "epoch " << epoch;
  }
}

}  // namespace
}  // namespace keypad
