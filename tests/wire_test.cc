#include <gtest/gtest.h>

#include "src/wire/base64.h"
#include "src/wire/binary_codec.h"
#include "src/wire/value.h"
#include "src/wire/xmlrpc.h"

namespace keypad {
namespace {

TEST(Base64Test, Rfc4648Vectors) {
  EXPECT_EQ(Base64Encode(BytesOf("")), "");
  EXPECT_EQ(Base64Encode(BytesOf("f")), "Zg==");
  EXPECT_EQ(Base64Encode(BytesOf("fo")), "Zm8=");
  EXPECT_EQ(Base64Encode(BytesOf("foo")), "Zm9v");
  EXPECT_EQ(Base64Encode(BytesOf("foob")), "Zm9vYg==");
  EXPECT_EQ(Base64Encode(BytesOf("fooba")), "Zm9vYmE=");
  EXPECT_EQ(Base64Encode(BytesOf("foobar")), "Zm9vYmFy");
}

TEST(Base64Test, DecodeRoundTrip) {
  Bytes data;
  for (int i = 0; i < 257; ++i) {
    data.push_back(static_cast<uint8_t>(i));
    auto back = Base64Decode(Base64Encode(data));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, data);
  }
}

TEST(Base64Test, RejectsMalformed) {
  EXPECT_FALSE(Base64Decode("abc").ok());       // Bad length.
  EXPECT_FALSE(Base64Decode("ab!d").ok());      // Bad character.
  EXPECT_FALSE(Base64Decode("=abc").ok());      // Misplaced padding.
  EXPECT_FALSE(Base64Decode("ab=c").ok());      // Data after padding.
  EXPECT_FALSE(Base64Decode("a===").ok());      // Too much padding.
}

TEST(WireValueTest, TypePredicatesAndAccessors) {
  WireValue i(int64_t{42});
  EXPECT_TRUE(i.is_int());
  EXPECT_EQ(*i.AsInt(), 42);
  EXPECT_FALSE(i.AsString().ok());

  WireValue s(std::string("hello"));
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(*s.AsString(), "hello");

  WireValue b(true);
  EXPECT_TRUE(b.is_bool());
  EXPECT_TRUE(*b.AsBool());

  WireValue d(2.5);
  EXPECT_TRUE(d.is_double());
  EXPECT_EQ(*d.AsDouble(), 2.5);

  WireValue bytes(Bytes{1, 2, 3});
  EXPECT_TRUE(bytes.is_bytes());
  EXPECT_EQ(*bytes.AsBytes(), (Bytes{1, 2, 3}));
}

TEST(WireValueTest, StructFieldAccess) {
  WireValue::Struct s;
  s.emplace("id", WireValue(int64_t{7}));
  s.emplace("name", WireValue("taxes"));
  WireValue v(std::move(s));
  EXPECT_TRUE(v.is_struct());
  EXPECT_TRUE(v.HasField("id"));
  EXPECT_FALSE(v.HasField("missing"));
  EXPECT_EQ(*v.Field("id")->AsInt(), 7);
  EXPECT_FALSE(v.Field("missing").ok());
  EXPECT_FALSE(WireValue(int64_t{1}).Field("x").ok());
}

WireValue MakeKitchenSink() {
  WireValue::Struct s;
  s.emplace("int", WireValue(int64_t{-123456789012345}));
  s.emplace("bool", WireValue(true));
  s.emplace("double", WireValue(3.14159265358979));
  s.emplace("string", WireValue("path/with <chars> & stuff"));
  s.emplace("bytes", WireValue(Bytes{0, 1, 2, 254, 255}));
  WireValue::Array arr;
  arr.push_back(WireValue(int64_t{1}));
  arr.push_back(WireValue("two"));
  arr.push_back(WireValue(WireValue::Struct{}));
  s.emplace("array", WireValue(std::move(arr)));
  return WireValue(std::move(s));
}

TEST(XmlRpcTest, CallRoundTrip) {
  XmlRpcCall call;
  call.method = "key.get";
  call.params.push_back(WireValue("device-1"));
  call.params.push_back(MakeKitchenSink());

  std::string xml = EncodeXmlRpcCall(call);
  EXPECT_NE(xml.find("<methodCall>"), std::string::npos);

  auto decoded = DecodeXmlRpcCall(xml);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->method, "key.get");
  ASSERT_EQ(decoded->params.size(), 2u);
  EXPECT_EQ(decoded->params[0], call.params[0]);
  EXPECT_EQ(decoded->params[1], call.params[1]);
}

TEST(XmlRpcTest, ResponseRoundTrip) {
  WireValue value = MakeKitchenSink();
  auto decoded = DecodeXmlRpcResponse(EncodeXmlRpcResponse(value));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->fault.ok());
  EXPECT_EQ(decoded->value, value);
}

TEST(XmlRpcTest, FaultRoundTrip) {
  Status fault = PermissionDeniedError("device revoked");
  auto decoded = DecodeXmlRpcResponse(EncodeXmlRpcFault(fault));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->fault.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(decoded->fault.message(), "device revoked");
}

TEST(XmlRpcTest, EscapingSurvivesRoundTrip) {
  XmlRpcCall call;
  call.method = "m";
  call.params.push_back(WireValue("<a>&b</a>"));
  auto decoded = DecodeXmlRpcCall(EncodeXmlRpcCall(call));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded->params[0].AsString(), "<a>&b</a>");
}

TEST(XmlRpcTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeXmlRpcCall("not xml").ok());
  EXPECT_FALSE(DecodeXmlRpcCall("<methodCall><oops>").ok());
  EXPECT_FALSE(DecodeXmlRpcResponse("<methodResponse>").ok());
}

TEST(XmlRpcTest, EmptyParamsOk) {
  auto decoded = DecodeXmlRpcCall(EncodeXmlRpcCall(XmlRpcCall{"ping", {}}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->params.empty());
}

TEST(BinaryCodecTest, RoundTrip) {
  WireValue value = MakeKitchenSink();
  Bytes encoded = BinaryEncode(value);
  auto decoded = BinaryDecode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, value);
}

TEST(BinaryCodecTest, MoreCompactThanXmlRpcForTypicalKeypadCall) {
  WireValue value = MakeKitchenSink();
  Bytes binary = BinaryEncode(value);
  std::string xml = EncodeXmlRpcResponse(value);
  EXPECT_LT(binary.size(), xml.size());
}

TEST(BinaryCodecTest, RejectsTruncatedAndTrailing) {
  Bytes encoded = BinaryEncode(MakeKitchenSink());
  Bytes truncated(encoded.begin(), encoded.end() - 3);
  EXPECT_FALSE(BinaryDecode(truncated).ok());
  Bytes extended = encoded;
  extended.push_back(0);
  EXPECT_FALSE(BinaryDecode(extended).ok());
  EXPECT_FALSE(BinaryDecode(Bytes{99}).ok());
}

TEST(BinaryCodecTest, NegativeIntsRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, INT64_MIN,
                    INT64_MAX, int64_t{-300}}) {
    auto decoded = BinaryDecode(BinaryEncode(WireValue(v)));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded->AsInt(), v);
  }
}

}  // namespace
}  // namespace keypad
