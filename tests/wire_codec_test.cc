// Differential fuzz over the two wire codecs (DESIGN.md §11): random
// WireValue trees must survive encode/decode through XML-RPC and through the
// binary TLV framing *identically* — same values, same faults, same method
// names. The negotiation layer (codec.h) may pick either framing per peer,
// so any divergence between the codecs is a silent cross-fleet corruption.

#include <gtest/gtest.h>

#include <string>

#include "src/sim/random.h"
#include "src/wire/binary_codec.h"
#include "src/wire/codec.h"
#include "src/wire/value.h"
#include "src/wire/xmlrpc.h"

namespace keypad {
namespace {

// Depth-bounded random WireValue tree. Leans on leaves (the RPC surface is
// mostly scalars) but nests arrays-of-structs like the real snapshot and
// audit-fetch responses do.
WireValue RandomTree(SimRandom& rng, int depth) {
  uint64_t kind = rng.UniformU64(depth > 0 ? 7 : 5);
  switch (kind) {
    case 0:
      return WireValue(static_cast<int64_t>(rng.NextU64()));
    case 1:
      return WireValue(rng.Bernoulli(0.5));
    case 2:
      // precision(17) round-trips any finite double through the XML text.
      return WireValue(rng.UniformDouble() * 1e12 - 5e11);
    case 3: {
      std::string s;
      size_t len = rng.UniformU64(40);
      for (size_t i = 0; i < len; ++i) {
        // Mix in the XML-escaped characters deliberately.
        static const char kAlphabet[] =
            "abc<>&XYZ0123456789 /._-\"'\t\n";
        s.push_back(kAlphabet[rng.UniformU64(sizeof(kAlphabet) - 1)]);
      }
      return WireValue(std::move(s));
    }
    case 4: {
      Bytes b;
      size_t len = rng.UniformU64(70);
      for (size_t i = 0; i < len; ++i) {
        b.push_back(static_cast<uint8_t>(rng.UniformU64(256)));
      }
      return WireValue(std::move(b));
    }
    case 5: {
      WireValue::Array a;
      size_t len = rng.UniformU64(5);
      for (size_t i = 0; i < len; ++i) {
        a.push_back(RandomTree(rng, depth - 1));
      }
      return WireValue(std::move(a));
    }
    default: {
      WireValue::Struct s;
      size_t len = rng.UniformU64(4);
      for (size_t i = 0; i < len; ++i) {
        s.emplace("field" + std::to_string(i), RandomTree(rng, depth - 1));
      }
      return WireValue(std::move(s));
    }
  }
}

TEST(WireCodecDifferentialTest, RandomCallsRoundTripIdentically) {
  SimRandom rng(0xC0DEC);
  for (int iter = 0; iter < 300; ++iter) {
    XmlRpcCall call;
    call.method = "svc.method" + std::to_string(rng.UniformU64(1000));
    size_t argc = rng.UniformU64(5);
    for (size_t i = 0; i < argc; ++i) {
      call.params.push_back(RandomTree(rng, 3));
    }

    std::string xml, bin;
    EncodeCallInto(WireCodec::kXml, call, xml);
    EncodeCallInto(WireCodec::kBinary, call, bin);
    ASSERT_EQ(DetectCodec(xml), WireCodec::kXml);
    ASSERT_EQ(DetectCodec(bin), WireCodec::kBinary);
    // Binary must actually be the compact one.
    ASSERT_LT(bin.size(), xml.size());

    auto from_xml = DecodeCallAuto(xml);
    auto from_bin = DecodeCallAuto(bin);
    ASSERT_TRUE(from_xml.ok()) << from_xml.status().message();
    ASSERT_TRUE(from_bin.ok()) << from_bin.status().message();
    EXPECT_EQ(from_xml->method, call.method);
    EXPECT_EQ(from_bin->method, call.method);
    ASSERT_EQ(from_xml->params.size(), call.params.size());
    ASSERT_EQ(from_bin->params.size(), call.params.size());
    for (size_t i = 0; i < call.params.size(); ++i) {
      EXPECT_EQ(from_xml->params[i], call.params[i]) << "iter " << iter;
      EXPECT_EQ(from_bin->params[i], call.params[i]) << "iter " << iter;
      EXPECT_EQ(from_xml->params[i], from_bin->params[i]);
    }
  }
}

TEST(WireCodecDifferentialTest, RandomResponsesRoundTripIdentically) {
  SimRandom rng(0xFEED);
  for (int iter = 0; iter < 300; ++iter) {
    WireValue value = RandomTree(rng, 3);
    auto from_xml = DecodeResponseAuto(EncodeResponse(WireCodec::kXml, value));
    auto from_bin =
        DecodeResponseAuto(EncodeResponse(WireCodec::kBinary, value));
    ASSERT_TRUE(from_xml.ok()) << from_xml.status().message();
    ASSERT_TRUE(from_bin.ok()) << from_bin.status().message();
    EXPECT_TRUE(from_xml->fault.ok());
    EXPECT_TRUE(from_bin->fault.ok());
    EXPECT_EQ(from_xml->value, value) << "iter " << iter;
    EXPECT_EQ(from_bin->value, value) << "iter " << iter;
  }
}

TEST(WireCodecDifferentialTest, FaultEnvelopesRoundTripIdentically) {
  const StatusCode kCodes[] = {
      StatusCode::kNotFound,         StatusCode::kPermissionDenied,
      StatusCode::kUnavailable,      StatusCode::kInvalidArgument,
      StatusCode::kDataLoss,         StatusCode::kResourceExhausted,
      StatusCode::kFailedPrecondition};
  SimRandom rng(0xFA17);
  for (StatusCode code : kCodes) {
    for (int iter = 0; iter < 20; ++iter) {
      std::string msg;
      size_t len = rng.UniformU64(60);
      for (size_t i = 0; i < len; ++i) {
        msg.push_back(static_cast<char>('!' + rng.UniformU64(90)));
      }
      Status fault(code, msg);
      auto from_xml = DecodeResponseAuto(EncodeFault(WireCodec::kXml, fault));
      auto from_bin =
          DecodeResponseAuto(EncodeFault(WireCodec::kBinary, fault));
      ASSERT_TRUE(from_xml.ok());
      ASSERT_TRUE(from_bin.ok());
      EXPECT_EQ(from_xml->fault.code(), code);
      EXPECT_EQ(from_bin->fault.code(), code);
      EXPECT_EQ(from_xml->fault.message(), msg);
      EXPECT_EQ(from_bin->fault.message(), msg);
    }
  }
}

TEST(WireCodecDifferentialTest, Base64EdgeLengthsAgree) {
  // Byte blobs at every length mod 3 (the base64 padding cases), including
  // zero and the 255/256/257 boundary — XML goes through base64, binary
  // ships raw, and both must reproduce the exact bytes.
  SimRandom rng(0xB64);
  for (size_t len :
       {0u, 1u, 2u, 3u, 4u, 5u, 63u, 64u, 65u, 255u, 256u, 257u}) {
    Bytes b;
    for (size_t i = 0; i < len; ++i) {
      b.push_back(static_cast<uint8_t>(rng.UniformU64(256)));
    }
    WireValue value{b};
    auto from_xml = DecodeResponseAuto(EncodeResponse(WireCodec::kXml, value));
    auto from_bin =
        DecodeResponseAuto(EncodeResponse(WireCodec::kBinary, value));
    ASSERT_TRUE(from_xml.ok());
    ASSERT_TRUE(from_bin.ok());
    EXPECT_EQ(*from_xml->value.AsBytes(), b) << "len " << len;
    EXPECT_EQ(*from_bin->value.AsBytes(), b) << "len " << len;
  }
}

TEST(WireCodecDifferentialTest, TruncatedBinaryFramesFailCleanly) {
  // Every strict prefix of a valid binary frame must decode to an error —
  // never crash, never succeed with partial data.
  XmlRpcCall call;
  call.method = "key.get";
  call.params.push_back(WireValue(std::string("device-7")));
  call.params.push_back(WireValue(Bytes{9, 8, 7, 6, 5}));
  call.params.push_back(WireValue(int64_t{-42}));
  std::string frame;
  EncodeCallInto(WireCodec::kBinary, call, frame);
  ASSERT_TRUE(DecodeBinaryCall(frame).ok());
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_FALSE(DecodeBinaryCall(frame.substr(0, cut)).ok())
        << "prefix of length " << cut << " decoded";
  }
}

}  // namespace
}  // namespace keypad
