#include <gtest/gtest.h>

#include "src/cryptocore/bigint.h"
#include "src/sim/random.h"

namespace keypad {
namespace {

TEST(BigIntTest, ZeroAndOne) {
  EXPECT_TRUE(BigInt::Zero().IsZero());
  EXPECT_TRUE(BigInt::One().IsOne());
  EXPECT_TRUE(BigInt::One().IsOdd());
  EXPECT_FALSE(BigInt::Zero().IsOdd());
  EXPECT_EQ(BigInt::Zero().BitLength(), 0);
  EXPECT_EQ(BigInt::One().BitLength(), 1);
}

TEST(BigIntTest, U64RoundTrip) {
  for (uint64_t v : {uint64_t{0}, uint64_t{1}, uint64_t{0xFFFFFFFF},
                     uint64_t{0x100000000}, uint64_t{0xDEADBEEFCAFEBABE},
                     UINT64_MAX}) {
    EXPECT_EQ(BigInt::FromU64(v).ToU64(), v);
  }
}

TEST(BigIntTest, HexRoundTrip) {
  auto v = BigInt::FromHex("deadbeefcafebabe0123456789abcdef");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->ToHex(), "deadbeefcafebabe0123456789abcdef");
  EXPECT_EQ(BigInt::Zero().ToHex(), "0");
  // Odd-length hex is left-padded.
  auto odd = BigInt::FromHex("abc");
  ASSERT_TRUE(odd.ok());
  EXPECT_EQ(odd->ToU64(), 0xabcull);
}

TEST(BigIntTest, BytesRoundTripWithPadding) {
  BigInt v = BigInt::FromU64(0x0102);
  Bytes b = v.ToBytesBe(8);
  EXPECT_EQ(ToHex(b), "0000000000000102");
  EXPECT_EQ(BigInt::FromBytesBe(b), v);
}

TEST(BigIntTest, CompareOrdering) {
  BigInt a = BigInt::FromU64(5), b = BigInt::FromU64(7);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, a);
  auto big = *BigInt::FromHex("ffffffffffffffffffffffffffffffff");
  EXPECT_LT(b, big);
}

TEST(BigIntTest, AddSubU64Agreement) {
  SimRandom rng(1);
  for (int i = 0; i < 2000; ++i) {
    uint64_t x = rng.NextU64() >> 1;
    uint64_t y = rng.NextU64() >> 1;
    if (x < y) {
      std::swap(x, y);
    }
    EXPECT_EQ(BigInt::Add(BigInt::FromU64(x), BigInt::FromU64(y)).ToU64(),
              x + y);
    EXPECT_EQ(BigInt::Sub(BigInt::FromU64(x), BigInt::FromU64(y)).ToU64(),
              x - y);
  }
}

TEST(BigIntTest, MulU64Agreement) {
  SimRandom rng(2);
  for (int i = 0; i < 2000; ++i) {
    uint64_t x = rng.NextU64() & 0xFFFFFFFF;
    uint64_t y = rng.NextU64() & 0xFFFFFFFF;
    EXPECT_EQ(BigInt::Mul(BigInt::FromU64(x), BigInt::FromU64(y)).ToU64(),
              x * y);
  }
}

TEST(BigIntTest, DivModU64Agreement) {
  SimRandom rng(3);
  for (int i = 0; i < 2000; ++i) {
    uint64_t x = rng.NextU64();
    uint64_t y = rng.NextU64() >> (rng.UniformU64(48));
    if (y == 0) {
      y = 1;
    }
    BigInt q, r;
    BigInt::DivMod(BigInt::FromU64(x), BigInt::FromU64(y), &q, &r);
    EXPECT_EQ(q.ToU64(), x / y) << x << " / " << y;
    EXPECT_EQ(r.ToU64(), x % y) << x << " % " << y;
  }
}

TEST(BigIntTest, DivModIdentityOnWideValues) {
  // Property: for random wide a, b: a = q*b + r with 0 <= r < b.
  SecureRandom srng(uint64_t{7});
  SimRandom rng(4);
  for (int i = 0; i < 300; ++i) {
    BigInt a = BigInt::RandomBits(srng, 20 + static_cast<int>(rng.UniformU64(500)));
    BigInt b = BigInt::RandomBits(srng, 10 + static_cast<int>(rng.UniformU64(300)));
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_LT(BigInt::Cmp(r, b), 0);
    EXPECT_EQ(BigInt::Add(BigInt::Mul(q, b), r), a);
  }
}

TEST(BigIntTest, ShiftInverse) {
  SecureRandom srng(uint64_t{8});
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt::RandomBits(srng, 200);
    for (int s : {1, 13, 32, 47, 64, 100}) {
      EXPECT_EQ(a.ShiftLeft(s).ShiftRight(s), a);
    }
  }
}

TEST(BigIntTest, BitAccessors) {
  BigInt v = BigInt::FromU64(0b1010);
  EXPECT_FALSE(v.Bit(0));
  EXPECT_TRUE(v.Bit(1));
  EXPECT_FALSE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  EXPECT_FALSE(v.Bit(64));
  EXPECT_EQ(v.BitLength(), 4);
}

TEST(BigIntTest, ModExpFermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p and a not divisible by p.
  BigInt p = BigInt::FromU64(1000000007);
  SecureRandom srng(uint64_t{9});
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::Add(BigInt::RandomBelow(srng, BigInt::Sub(p, BigInt::One())),
                           BigInt::One());
    EXPECT_TRUE(
        BigInt::ModExp(a, BigInt::Sub(p, BigInt::One()), p).IsOne());
  }
}

TEST(BigIntTest, ModExpKnownValue) {
  // 2^10 mod 1000 = 24.
  EXPECT_EQ(BigInt::ModExp(BigInt::FromU64(2), BigInt::FromU64(10),
                           BigInt::FromU64(1000))
                .ToU64(),
            24u);
}

TEST(BigIntTest, ModInverseProperty) {
  BigInt p = *BigInt::FromHex("fffffffffffffffffffffffffffffffeffffffffffffffff");
  SecureRandom srng(uint64_t{10});
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::RandomBelow(srng, p);
    if (a.IsZero()) {
      continue;
    }
    auto inv = BigInt::ModInverse(a, p);
    ASSERT_TRUE(inv.ok());
    EXPECT_TRUE(BigInt::ModMul(a, *inv, p).IsOne());
  }
}

TEST(BigIntTest, ModInverseNonInvertible) {
  EXPECT_FALSE(BigInt::ModInverse(BigInt::FromU64(6), BigInt::FromU64(9)).ok());
  EXPECT_FALSE(
      BigInt::ModInverse(BigInt::Zero(), BigInt::FromU64(17)).ok());
}

TEST(BigIntTest, PrimalityKnownPrimesAndComposites) {
  SecureRandom srng(uint64_t{11});
  for (uint64_t p : {2ull, 3ull, 5ull, 65537ull, 1000000007ull,
                     2305843009213693951ull /* 2^61-1, Mersenne prime */}) {
    EXPECT_TRUE(BigInt::IsProbablePrime(BigInt::FromU64(p), srng)) << p;
  }
  for (uint64_t c : {1ull, 4ull, 561ull /* Carmichael */, 1000000008ull,
                     2305843009213693953ull}) {
    EXPECT_FALSE(BigInt::IsProbablePrime(BigInt::FromU64(c), srng)) << c;
  }
}

TEST(BigIntTest, PrimalityLargeKnownPrime) {
  // 2^127 - 1 is a Mersenne prime.
  BigInt p = BigInt::Sub(BigInt::One().ShiftLeft(127), BigInt::One());
  SecureRandom srng(uint64_t{12});
  EXPECT_TRUE(BigInt::IsProbablePrime(p, srng));
  // 2^128 - 1 is composite.
  BigInt c = BigInt::Sub(BigInt::One().ShiftLeft(128), BigInt::One());
  EXPECT_FALSE(BigInt::IsProbablePrime(c, srng));
}

TEST(BigIntTest, RandomBitsHasExactBitLength) {
  SecureRandom srng(uint64_t{13});
  for (int bits : {1, 7, 8, 9, 63, 64, 65, 160, 512}) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(BigInt::RandomBits(srng, bits).BitLength(), bits);
    }
  }
}

TEST(BigIntTest, MulDivAgreesWithInt128Reference) {
  // Differential fuzz: 64x64 -> 128-bit multiply and 128/64 divide checked
  // against the compiler's __int128.
  SimRandom rng(21);
  for (int i = 0; i < 3000; ++i) {
    uint64_t a = rng.NextU64();
    uint64_t b = rng.NextU64();
    unsigned __int128 ref = static_cast<unsigned __int128>(a) * b;
    BigInt product = BigInt::Mul(BigInt::FromU64(a), BigInt::FromU64(b));
    EXPECT_EQ(product.ToU64(), static_cast<uint64_t>(ref));
    EXPECT_EQ(product.ShiftRight(64).ToU64(),
              static_cast<uint64_t>(ref >> 64));

    uint64_t d = rng.NextU64() | 1;
    BigInt q, r;
    BigInt::DivMod(product, BigInt::FromU64(d), &q, &r);
    unsigned __int128 ref_q = ref / d;
    EXPECT_EQ(q.ToU64(), static_cast<uint64_t>(ref_q));
    EXPECT_EQ(q.ShiftRight(64).ToU64(), static_cast<uint64_t>(ref_q >> 64));
    EXPECT_EQ(r.ToU64(), static_cast<uint64_t>(ref % d));
  }
}

TEST(BigIntTest, ModInverseBinaryAndEuclidPathsAgree) {
  // The odd-modulus fast path (binary ext-gcd) must match the general
  // Euclid path used for even moduli; verify both against the definition.
  SecureRandom srng(uint64_t{22});
  BigInt odd = *BigInt::FromHex(
      "f18b5478a3f1c39256bde0ac1f94a07ac17e5f3b82463ea1f3ecf52c7a6d9a4b");
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::RandomBelow(srng, odd);
    auto inv = BigInt::ModInverse(a, odd);
    if (inv.ok()) {
      EXPECT_TRUE(BigInt::ModMul(a, *inv, odd).IsOne());
    }
  }
  // Even modulus exercises the Euclid fallback.
  BigInt even = BigInt::FromU64(1 << 20);
  auto inv = BigInt::ModInverse(BigInt::FromU64(3), even);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(
      BigInt::ModMul(BigInt::FromU64(3), *inv, even).IsOne());
  EXPECT_FALSE(BigInt::ModInverse(BigInt::FromU64(2), even).ok());
}

TEST(BigIntTest, RandomBelowInRange) {
  SecureRandom srng(uint64_t{14});
  BigInt bound = BigInt::FromU64(1000);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(BigInt::RandomBelow(srng, bound), bound);
  }
}

}  // namespace
}  // namespace keypad
