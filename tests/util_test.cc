#include <gtest/gtest.h>

#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/util/status.h"
#include "src/util/strings.h"

namespace keypad {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such file");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such file");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(PermissionDeniedError("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ResourceExhaustedError("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

Status ReturnsIfError(bool fail) {
  KP_RETURN_IF_ERROR(fail ? InternalError("inner") : Status::Ok());
  return NotFoundError("reached end");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(ReturnsIfError(true).code(), StatusCode::kInternal);
  EXPECT_EQ(ReturnsIfError(false).code(), StatusCode::kNotFound);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) {
    return InvalidArgumentError("not positive");
  }
  return v;
}

Result<int> DoublePositive(int v) {
  KP_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);

  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*DoublePositive(21), 42);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(ToHex(data), "0001abff");
  auto back = FromHex("0001abff");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(BytesTest, HexAcceptsUppercase) {
  auto r = FromHex("ABCDEF");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToHex(*r), "abcdef");
}

TEST(BytesTest, HexRejectsBadInput) {
  EXPECT_FALSE(FromHex("abc").ok());
  EXPECT_FALSE(FromHex("zz").ok());
}

TEST(BytesTest, BigEndianHelpers) {
  Bytes b;
  AppendU32Be(b, 0x01020304);
  AppendU64Be(b, 0x0102030405060708ull);
  ASSERT_EQ(b.size(), 12u);
  EXPECT_EQ(ReadU32Be(b.data()), 0x01020304u);
  EXPECT_EQ(ReadU64Be(b.data() + 4), 0x0102030405060708ull);
}

TEST(BytesTest, SecureZeroClears) {
  Bytes b = {1, 2, 3, 4};
  SecureZero(b);
  EXPECT_EQ(b, Bytes({0, 0, 0, 0}));
}

TEST(StringsTest, SplitAndJoin) {
  auto pieces = StrSplit("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
  EXPECT_EQ(StrJoin({"x", "y", "z"}, "/"), "x/y/z");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("/home/alice", "/home"));
  EXPECT_FALSE(StartsWith("/home", "/home/alice"));
  EXPECT_TRUE(EndsWith("report.pdf", ".pdf"));
  EXPECT_FALSE(EndsWith("pdf", "report.pdf"));
}

TEST(PathTest, JoinDirnameBasename) {
  EXPECT_EQ(PathJoin("/a", "b"), "/a/b");
  EXPECT_EQ(PathJoin("/", "b"), "/b");
  EXPECT_EQ(PathDirname("/a/b"), "/a");
  EXPECT_EQ(PathDirname("/a"), "/");
  EXPECT_EQ(PathDirname("/"), "/");
  EXPECT_EQ(PathBasename("/a/b"), "b");
  EXPECT_EQ(PathBasename("/"), "");
}

TEST(PathTest, Components) {
  auto c = PathComponents("/a/b/c");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], "a");
  EXPECT_EQ(c[2], "c");
  EXPECT_TRUE(PathComponents("/").empty());
}

TEST(PathTest, Validity) {
  EXPECT_TRUE(IsValidPath("/"));
  EXPECT_TRUE(IsValidPath("/a/b.txt"));
  EXPECT_FALSE(IsValidPath(""));
  EXPECT_FALSE(IsValidPath("a/b"));
  EXPECT_FALSE(IsValidPath("/a/"));
  EXPECT_FALSE(IsValidPath("/a//b"));
  EXPECT_FALSE(IsValidPath("/a/../b"));
}

TEST(PathTest, Within) {
  EXPECT_TRUE(PathIsWithin("/home/alice/x", "/home"));
  EXPECT_TRUE(PathIsWithin("/home", "/home"));
  EXPECT_TRUE(PathIsWithin("/anything", "/"));
  EXPECT_FALSE(PathIsWithin("/homework", "/home"));
  EXPECT_FALSE(PathIsWithin("/home", "/home/alice"));
}

}  // namespace
}  // namespace keypad
