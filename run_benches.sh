#!/bin/bash
# Runs every bench binary, teeing combined output. Any bench exiting
# nonzero fails the whole run: the failing cell is named in the output and
# the script exits 1 (benches gate invariants, not just numbers).
set -u
out="${1:-/root/repo/bench_output.txt}"
: > "$out"
failed=()
for b in /root/repo/build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "### $name" | tee -a "$out"
  if [[ "$name" == "bench_crypto_micro" ]]; then
    # JSON copy captures per-backend throughput (one entry per dispatch
    # tier, each labeled with the kernel that produced it).
    "$b" --benchmark_min_time=0.2 \
         --benchmark_out=/root/repo/BENCH_crypto.json \
         --benchmark_out_format=json >> "$out" 2>&1
  elif [[ "$name" == "bench_resilience" ]]; then
    # Goodput + latency tails vs. loss rate / outage schedule (DESIGN.md §7).
    "$b" /root/repo/BENCH_resilience.json >> "$out" 2>&1
  elif [[ "$name" == "bench_scale" ]]; then
    # Sharded key tier: goodput vs. shard count, group commit, coalescing
    # (DESIGN.md §8).
    "$b" /root/repo/BENCH_scale.json >> "$out" 2>&1
  elif [[ "$name" == "bench_fleet" ]]; then
    # Simulator core + fleet scale: event-queue and codec micro-ablations
    # plus the 100k-device fleet cells (DESIGN.md §11).
    "$b" /root/repo/BENCH_simcore.json >> "$out" 2>&1
  elif [[ "$name" == "bench_availability" ]]; then
    # Replicated service tiers: goodput timelines across key-tier and
    # metadata-tier leader kills, plus the partition/heal reconciliation
    # cycle (DESIGN.md §9–§10).
    "$b" /root/repo/BENCH_availability.json >> "$out" 2>&1
  elif [[ "$name" == "bench_durability" ]]; then
    # Crash-consistent storage tier: journal replay, scrub throughput,
    # restore-after-theft, crash-point explorer (DESIGN.md §12).
    "$b" /root/repo/BENCH_durability.json >> "$out" 2>&1
  else
    "$b" >> "$out" 2>&1
  fi
  status=$?
  if [[ "$status" -ne 0 ]]; then
    echo "FAILED: $name (exit $status)" | tee -a "$out"
    failed+=("$name")
  fi
  echo >> "$out"
done
if [[ "${#failed[@]}" -ne 0 ]]; then
  echo "BENCH FAILURES: ${failed[*]}" | tee -a "$out"
  exit 1
fi
echo "ALL BENCHES DONE" | tee -a "$out"
