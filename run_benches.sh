#!/bin/bash
# Runs every bench binary, teeing combined output. Any bench exiting
# nonzero fails the whole run: the failing cell is named in the output and
# the script exits 1 (benches gate invariants, not just numbers).
#
# Schema-drift guard: benches that emit a BENCH_*.json may gain fields,
# but must never silently drop one the committed baseline had — dashboards
# and diffing tools key on field names. Before each JSON-emitting bench
# runs, the committed file's key set is snapshotted; afterwards any
# baseline key missing from the fresh output fails the run, naming the
# bench and the dropped key(s).
set -u
out="${1:-/root/repo/bench_output.txt}"
: > "$out"
failed=()

# Every JSON object key (recursively) in a bench JSON, sorted, one per
# line. Empty output (e.g. unparseable file) disables the guard for that
# bench rather than failing it — the bench's own exit code covers that.
json_keys() {
  python3 - "$1" 2>/dev/null <<'PY'
import json, sys
def keys(node, out):
    if isinstance(node, dict):
        for k, v in node.items():
            out.add(k)
            keys(v, out)
    elif isinstance(node, list):
        for v in node:
            keys(v, out)
out = set()
with open(sys.argv[1]) as f:
    keys(json.load(f), out)
print("\n".join(sorted(out)))
PY
}

# Bench binary -> the JSON artifact it maintains.
declare -A json_for=(
  [bench_crypto_micro]=/root/repo/BENCH_crypto.json
  [bench_resilience]=/root/repo/BENCH_resilience.json
  [bench_scale]=/root/repo/BENCH_scale.json
  [bench_fleet]=/root/repo/BENCH_simcore.json
  [bench_availability]=/root/repo/BENCH_availability.json
  [bench_durability]=/root/repo/BENCH_durability.json
  [bench_overload]=/root/repo/BENCH_overload.json
  [bench_auditlog]=/root/repo/BENCH_auditlog.json
)

for b in /root/repo/build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "### $name" | tee -a "$out"
  json="${json_for[$name]:-}"
  baseline_keys=""
  if [[ -n "$json" && -f "$json" ]]; then
    baseline_keys="$(json_keys "$json")"
  fi
  if [[ "$name" == "bench_crypto_micro" ]]; then
    # JSON copy captures per-backend throughput (one entry per dispatch
    # tier, each labeled with the kernel that produced it).
    "$b" --benchmark_min_time=0.2 \
         --benchmark_out="$json" \
         --benchmark_out_format=json >> "$out" 2>&1
  elif [[ "$name" == "bench_resilience" ]]; then
    # Goodput + latency tails vs. loss rate / outage schedule (DESIGN.md §7).
    "$b" "$json" >> "$out" 2>&1
  elif [[ "$name" == "bench_scale" ]]; then
    # Sharded key tier: goodput vs. shard count, group commit, coalescing
    # (DESIGN.md §8).
    "$b" "$json" >> "$out" 2>&1
  elif [[ "$name" == "bench_fleet" ]]; then
    # Simulator core + fleet scale: event-queue and codec micro-ablations
    # plus the 100k-device fleet cells (DESIGN.md §11).
    "$b" "$json" >> "$out" 2>&1
  elif [[ "$name" == "bench_availability" ]]; then
    # Replicated service tiers: goodput timelines across key-tier and
    # metadata-tier leader kills, plus the partition/heal reconciliation
    # cycle (DESIGN.md §9–§10).
    "$b" "$json" >> "$out" 2>&1
  elif [[ "$name" == "bench_durability" ]]; then
    # Crash-consistent storage tier: journal replay, scrub throughput,
    # restore-after-theft, crash-point explorer (DESIGN.md §12).
    "$b" "$json" >> "$out" 2>&1
  elif [[ "$name" == "bench_overload" ]]; then
    # Overload robustness: admission control, retry budgets, and brownout
    # at 2x saturation, plus the revocation-storm audit gate (DESIGN.md §14).
    "$b" "$json" >> "$out" 2>&1
  elif [[ "$name" == "bench_auditlog" ]]; then
    # Audit-log lifecycle: truncation soak, checkpoint catch-up vs genesis
    # replay, cold-tier scrub repair (DESIGN.md §15).
    "$b" "$json" >> "$out" 2>&1
  else
    "$b" >> "$out" 2>&1
  fi
  status=$?
  if [[ "$status" -ne 0 ]]; then
    echo "FAILED: $name (exit $status)" | tee -a "$out"
    failed+=("$name")
  fi
  if [[ -n "$baseline_keys" && -f "$json" ]]; then
    new_keys="$(json_keys "$json")"
    if [[ -n "$new_keys" ]]; then
      missing="$(comm -23 <(printf '%s\n' "$baseline_keys") \
                          <(printf '%s\n' "$new_keys"))"
      if [[ -n "$missing" ]]; then
        echo "SCHEMA DRIFT: $name dropped baseline key(s):" \
             $missing | tee -a "$out"
        failed+=("$name(schema: $(echo $missing | tr ' ' ','))")
      fi
    fi
  fi
  echo >> "$out"
done
if [[ "${#failed[@]}" -ne 0 ]]; then
  echo "BENCH FAILURES: ${failed[*]}" | tee -a "$out"
  exit 1
fi
echo "ALL BENCHES DONE" | tee -a "$out"
