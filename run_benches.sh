#!/bin/bash
# Runs every bench binary, teeing combined output.
set -u
out="${1:-/root/repo/bench_output.txt}"
: > "$out"
for b in /root/repo/build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "### $(basename "$b")" | tee -a "$out"
  if [[ "$(basename "$b")" == "bench_crypto_micro" ]]; then
    # JSON copy captures per-backend throughput (one entry per dispatch
    # tier, each labeled with the kernel that produced it).
    "$b" --benchmark_min_time=0.2 \
         --benchmark_out=/root/repo/BENCH_crypto.json \
         --benchmark_out_format=json >> "$out" 2>&1
  elif [[ "$(basename "$b")" == "bench_resilience" ]]; then
    # Goodput + latency tails vs. loss rate / outage schedule (DESIGN.md §7).
    "$b" /root/repo/BENCH_resilience.json >> "$out" 2>&1
  elif [[ "$(basename "$b")" == "bench_scale" ]]; then
    # Sharded key tier: goodput vs. shard count, group commit, coalescing
    # (DESIGN.md §8).
    "$b" /root/repo/BENCH_scale.json >> "$out" 2>&1
  elif [[ "$(basename "$b")" == "bench_fleet" ]]; then
    # Simulator core + fleet scale: event-queue and codec micro-ablations
    # plus the 100k-device fleet cells (DESIGN.md §11).
    "$b" /root/repo/BENCH_simcore.json >> "$out" 2>&1
  elif [[ "$(basename "$b")" == "bench_availability" ]]; then
    # Replicated service tiers: goodput timelines across key-tier and
    # metadata-tier leader kills, plus the partition/heal reconciliation
    # cycle (DESIGN.md §9–§10).
    "$b" /root/repo/BENCH_availability.json >> "$out" 2>&1
  else
    "$b" >> "$out" 2>&1
  fi
  echo >> "$out"
done
echo "ALL BENCHES DONE" | tee -a "$out"
