// Deployment: one-stop wiring of a complete Keypad installation inside the
// simulation — client device, EncFS/Keypad volume, both audit services with
// their RPC servers, network links, optional paired phone, and the forensic
// auditor. Tests, benches, and examples all build on this.
//
// Topology (matching Figure 2 / Figure 4 of the paper):
//
//   KeypadFs ──rpc──> [link: LAN/.../3G] ──> KeyService
//            ──rpc──> [same link]        ──> MetadataService
//   or, paired:
//   KeypadFs ──rpc──> [Bluetooth] ──> PhoneProxy ──rpc──> [cellular] ──> services

#ifndef SRC_KEYPAD_DEPLOYMENT_H_
#define SRC_KEYPAD_DEPLOYMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/blockdev/cloud_store.h"
#include "src/blockdev/write_back.h"
#include "src/keypad/attacker.h"
#include "src/keypad/forensics.h"
#include "src/keypad/keypad_fs.h"
#include "src/keypad/paired_device.h"
#include "src/keyservice/key_service.h"
#include "src/keyservice/key_service_client.h"
#include "src/keyservice/replica_set.h"
#include "src/keyservice/shard_router.h"
#include "src/metaservice/meta_replica_set.h"
#include "src/metaservice/metadata_service.h"
#include "src/net/link.h"
#include "src/net/profile.h"

namespace keypad {

struct DeploymentOptions {
  NetworkProfile profile = CellularProfile();
  KeypadConfig config;
  EncFs::Options fs_options;  // Defaults to EncFS costs, encryption on.
  // Pairing group for IBE. Benches and tests default to the fast 256-bit
  // test group; pass &DefaultPairingParams() for 512-bit strength.
  const PairingParams* ibe_group = nullptr;
  uint64_t seed = 42;
  std::string device_id = "laptop-1";
  std::string password = "correct horse battery staple";
  // Adds a paired phone: the laptop talks to it over Bluetooth and the
  // phone reaches the services over `profile`.
  bool paired_phone = false;
  PhoneProxy::Options phone_options;
  // Transport encryption (§6): client↔service traffic sealed under
  // per-device session keys that ratchet every Texp. Not supported
  // together with the phone proxy (the phone would need to re-seal).
  bool secure_channel = false;
  // Resilience knobs (retry ladder, per-attempt timeout, circuit breaker)
  // applied to every RpcClient this deployment constructs.
  RpcOptions rpc;
  // Overload robustness (DESIGN.md §14): admission control applied to
  // every service-tier RpcServer this deployment constructs (bounded
  // queue, CoDel-style shedding by priority class, deadline expiry).
  // Off by default; KEYPAD_ADMISSION overrides either way.
  AdmissionOptions admission;
  // Client brownout policy. When enabled the deployment builds one
  // BrownoutController for the device and shares it between the
  // ShardRouter (batch-window stretching, overload signals) and the
  // KeypadFs config (prefetch suppression, accounted cache-lifetime
  // stretching). KEYPAD_BROWNOUT overrides.
  BrownoutOptions brownout;
  // Key-service tier width (DESIGN.md §8). With N > 1 the deployment runs N
  // independent KeyService shards behind a client-side ShardRouter; the
  // paired phone and sealed channels are single-endpoint features and force
  // N = 1.
  int key_shards = 1;
  // Per-shard service knobs: group-commit window and seal CPU costs.
  KeyServiceOptions key_service;
  // Router knobs (ring seed, vnodes, single-flight coalescing, batched
  // fetch).
  ShardRouter::Options router;
  // Interpose the ShardRouter even when key_shards == 1, so single-shard
  // deployments get the batched wire path too (read-path benches ablate
  // batching against shard width). Default off: historical single-shard
  // tests talk straight to the stub and keep per-RPC commit-window
  // semantics.
  bool force_key_router = false;
  // Replication width per shard (DESIGN.md §9). With R > 1 every shard runs
  // R replicas (primary + R−1 backups) under a lease-based ReplicaSet; the
  // laptop's stubs fail over between them and sealed audit groups stream to
  // the backups before client responses release. Like sharding, this is a
  // datacenter-side feature: the phone proxy and sealed channels force 1.
  int key_replicas = 1;
  // Lease/replication knobs applied to every shard's replica set (and to
  // the metadata tier's, when replicated).
  ReplicaSetOptions replica_set;
  // Replication width of the metadata tier (DESIGN.md §10). With R > 1 the
  // metadata service runs R replicas on the same generic substrate as the
  // key tier: hash-chained log suffixes stream to the backups before
  // responses (and the IBE unlock keys inside them) release, and the
  // laptop's stub fails over across the group. Every replica shares the
  // IBE master secret (the PKG is modelled as a shared HSM), so a promoted
  // backup mints the same unlock keys. Phone proxy and sealed channels
  // force 1, as with the key tier.
  int meta_replicas = 1;
  // Write-back cloud replication (DESIGN.md §12): attaches a simulated
  // object store plus a WriteBackQueue over the laptop's block device.
  // BackupNow() uploads the dirty set and commits a manifest generation;
  // EnrollReplacementDevice() rebuilds a stolen laptop's volume from it.
  bool cloud_backup = false;
  CloudStoreOptions cloud;
};

class Deployment {
 public:
  explicit Deployment(DeploymentOptions options);
  ~Deployment();

  EventQueue& queue() { return queue_; }
  KeypadFs& fs() { return *fs_; }
  // Shard 0 — the whole tier when key_shards == 1 (the historical layout).
  // With replication this is the shard's replica 0 (the initial primary),
  // which may no longer lead after a failover; see replica_set().
  KeyService& key_service() { return *key_shards_[0]; }
  size_t key_shard_count() const { return key_shards_.size(); }
  KeyService& key_shard(size_t i) { return *key_shards_[i]; }
  // Replication accessors. replica 0 of shard i is key_shard(i) itself;
  // replicas 1..R−1 are the backups. replica_set(i) is null when R == 1.
  size_t key_replica_count() const {
    return static_cast<size_t>(options_.key_replicas);
  }
  KeyService& key_replica(size_t shard, size_t replica) {
    return replica == 0 ? *key_shards_[shard]
                        : *key_backup_services_[shard][replica - 1];
  }
  RpcServer& key_replica_rpc_server(size_t shard, size_t replica) {
    return replica == 0 ? *key_rpc_servers_[shard]
                        : *key_backup_servers_[shard][replica - 1];
  }
  ReplicaSet* replica_set(size_t shard) {
    return replica_sets_.empty() ? nullptr : replica_sets_[shard].get();
  }
  // The replica-aware stub for shard i (what the router routes to).
  KeyServiceClient& key_stub(size_t i) { return *key_clients_[i]; }
  // Null when unsharded (KeypadFs talks straight to the shard-0 stub).
  ShardRouter* key_router() { return key_router_.get(); }
  // What KeypadFs actually talks to: the router when sharded, the shard-0
  // stub otherwise.
  KeyClient& key_client() {
    return key_router_ != nullptr
               ? static_cast<KeyClient&>(*key_router_)
               : static_cast<KeyClient&>(*key_clients_[0]);
  }
  // Replica 0 — the whole metadata tier when meta_replicas == 1. With
  // replication this is the initial primary, which may no longer lead
  // after a failover; see meta_replica_set().
  MetadataService& metadata_service() { return *meta_services_[0]; }
  size_t meta_replica_count() const {
    return static_cast<size_t>(options_.meta_replicas);
  }
  MetadataService& meta_replica(size_t r) { return *meta_services_[r]; }
  RpcServer& meta_replica_rpc_server(size_t r) {
    return *meta_rpc_servers_[r];
  }
  // Null when meta_replicas == 1.
  MetaReplicaSet* meta_replica_set() { return meta_replica_set_.get(); }
  // The laptop's (replica-aware) metadata stub.
  MetadataServiceClient& meta_client() { return *meta_client_; }
  ForensicAuditor& auditor() { return auditor_; }
  // The device's brownout controller (never null; inert unless enabled).
  BrownoutController& brownout() { return *brownout_; }
  PhoneProxy* phone() { return phone_.get(); }
  BlockDevice& device() { return device_; }
  const std::string& device_id() const { return options_.device_id; }
  const DeploymentOptions& options() const { return options_; }

  // The laptop's network link (to the services, or to the phone when
  // paired). Disconnect it to model offline operation or theft isolation.
  NetworkLink& client_link() { return client_link_; }
  // The phone's uplink (only meaningful when paired).
  NetworkLink& phone_uplink() { return phone_uplink_; }

  // RPC plumbing, exposed for fault-injection tests and benches. The
  // unqualified key accessors mean shard 0.
  RpcServer& key_rpc_server() { return *key_rpc_servers_[0]; }
  RpcServer& key_shard_rpc_server(size_t i) { return *key_rpc_servers_[i]; }
  RpcServer& meta_rpc_server() { return *meta_rpc_servers_[0]; }
  RpcClient& key_rpc() { return *key_rpcs_[0]; }
  RpcClient& key_shard_rpc(size_t i) { return *key_rpcs_[i]; }
  RpcClient& meta_rpc() { return *meta_rpc_; }

  // --- Crash/restart simulation. --------------------------------------------
  //
  // CrashXxx marks the service's RPC server down (requests are swallowed)
  // and snapshots the durable state as of the crash instant; RestartXxx
  // rebuilds the service in place from that snapshot and brings the server
  // back up. In-flight requests that had not reached the durable log are
  // lost, exactly as a process crash loses them; the reply cache's
  // completed window is durable (DESIGN.md §7) so only in-flight dedup
  // marks are cleared. ScheduleXxx wires both onto the event queue.
  // Per-shard crash/restart; the legacy names mean shard 0. A crash drops
  // any group-commit window still staged (entries that never sealed were
  // never durable — clients retry) along with its unsent responses.
  // With replication, CrashKeyShard kills the shard's *current leader*
  // (whichever replica that is at crash time) and RestartKeyShard brings
  // that same replica back; CrashKeyReplica targets a specific replica.
  void CrashKeyShard(size_t i);
  void RestartKeyShard(size_t i);
  void CrashKeyService() { CrashKeyShard(0); }
  void RestartKeyService() { RestartKeyShard(0); }
  void CrashKeyReplica(size_t shard, size_t replica);
  void RestartKeyReplica(size_t shard, size_t replica);
  // With replication, CrashMetadataService kills the metadata tier's
  // *current leader* and RestartMetadataService brings that same replica
  // back; CrashMetaReplica targets a specific replica.
  void CrashMetadataService();
  void RestartMetadataService();
  void CrashMetaReplica(size_t replica);
  void RestartMetaReplica(size_t replica);
  void ScheduleKeyShardCrash(size_t i, SimTime at, SimDuration outage);
  void ScheduleKeyServiceCrash(SimTime at, SimDuration outage) {
    ScheduleKeyShardCrash(0, at, outage);
  }
  void ScheduleKeyReplicaCrash(size_t shard, size_t replica, SimTime at,
                               SimDuration outage);
  // Silently partitions one replica off the replication mesh (its client
  // link stays up — the split-brain scenario). No-op when unreplicated.
  void PartitionKeyReplica(size_t shard, size_t replica, bool partitioned);
  void ScheduleKeyReplicaPartition(size_t shard, size_t replica, SimTime at,
                                   SimDuration duration);
  void ScheduleMetadataServiceCrash(SimTime at, SimDuration outage);
  void ScheduleMetaReplicaCrash(size_t replica, SimTime at,
                                SimDuration outage);
  void PartitionMetaReplica(size_t replica, bool partitioned);
  void ScheduleMetaReplicaPartition(size_t replica, SimTime at,
                                    SimDuration duration);

  // Total bytes Keypad moved over the client link (bandwidth accounting).
  uint64_t ClientBytesSent() const { return client_link_.bytes_sent(); }

  // --- Theft workflow helpers. ----------------------------------------------

  // Owner-side response to a reported loss: disables the device at both
  // services (remote data control).
  void ReportDeviceLost();
  // Disk image for an attacker.
  RawDeviceAttacker MakeAttacker();
  // Builds the attacker's own service clients (stolen credentials) so an
  // online attack can run against this deployment's services.
  struct AttackerClients {
    // Shard-0 plumbing (the whole tier when unsharded).
    std::unique_ptr<RpcClient> key_rpc;
    std::unique_ptr<RpcClient> meta_rpc;
    std::unique_ptr<KeyServiceClient> key;
    std::unique_ptr<MetadataServiceClient> meta;
    // Remaining shards plus the thief's own router (sharded deployments:
    // the stolen laptop's config names every shard endpoint).
    std::vector<std::unique_ptr<RpcClient>> shard_rpcs;
    std::vector<std::unique_ptr<KeyServiceClient>> shard_stubs;
    std::unique_ptr<ShardRouter> router;
    // Backup-replica endpoints (replicated deployments: the thief's stubs
    // fail over exactly like the owner's did).
    std::vector<std::unique_ptr<RpcClient>> replica_rpcs;
    // When the deployment runs sealed channels, the thief derives the same
    // channel roots from the stolen secrets.
    std::unique_ptr<SecureRandom> channel_rng;
    std::unique_ptr<SecureChannel> key_channel;
    std::unique_ptr<SecureChannel> meta_channel;
    KeypadFs::Services services;
  };
  Result<AttackerClients> MakeAttackerClients(
      const KeypadFs::Credentials& creds);

  // --- Cloud backup + restore-after-theft (cloud_backup mode). --------------

  // Null unless options.cloud_backup.
  SimObjectStore* cloud_store() { return cloud_store_.get(); }
  WriteBackQueue* write_back() { return write_back_.get(); }

  // Synchronously drains the laptop's dirty set to the cloud and commits a
  // new manifest generation, pumping the event queue until the upload batch
  // settles past the eventual-consistency window.
  Status BackupNow();

  // A replacement laptop enrolled after theft: its own block device
  // (rebuilt from the cloud), its own service identity, and a mounted
  // KeypadFs. The clients field reuses the credential-derived stub wiring
  // (MakeAttackerClients builds stubs for WHOEVER holds the credentials —
  // here the rightful owner's new hardware).
  struct ReplacementDevice {
    std::string device_id;
    std::unique_ptr<BlockDevice> device;
    AttackerClients clients;
    std::unique_ptr<KeypadFs> fs;
    RestoreReport restore;
  };
  // Restore-after-theft workflow (DESIGN.md §12): registers a fresh device
  // identity with every key shard/replica and the metadata tier, re-binds
  // the stolen device's keys to it (TransferDeviceKeys — requires the old
  // device to already be disabled via ReportDeviceLost), rebuilds the
  // volume byte-for-byte from the last committed cloud generation, and
  // mounts it with the owner's password. Fails unless cloud_backup is on.
  Result<ReplacementDevice> EnrollReplacementDevice(
      const std::string& new_device_id);

 private:
  DeploymentOptions options_;
  EventQueue queue_;
  BlockDevice device_;

  // Services and their RPC servers. The key tier is a vector of shards
  // (size 1 reproduces the historical single-service layout exactly).
  // key_shards_[i] is shard i's replica 0; with key_replicas R > 1 the
  // backups live in key_backup_services_[i][0..R−2] and one ReplicaSet per
  // shard coordinates the whole group.
  std::vector<std::unique_ptr<KeyService>> key_shards_;
  std::vector<std::unique_ptr<RpcServer>> key_rpc_servers_;
  std::vector<std::vector<std::unique_ptr<KeyService>>> key_backup_services_;
  std::vector<std::vector<std::unique_ptr<RpcServer>>> key_backup_servers_;
  std::vector<std::unique_ptr<ReplicaSet>> replica_sets_;
  // Metadata tier: meta_services_[0] is the initial primary (the whole
  // tier when unreplicated); with meta_replicas R > 1 the backups follow
  // and one MetaReplicaSet coordinates the group.
  std::vector<std::unique_ptr<MetadataService>> meta_services_;
  std::vector<std::unique_ptr<RpcServer>> meta_rpc_servers_;
  std::unique_ptr<MetaReplicaSet> meta_replica_set_;

  // Links.
  NetworkLink client_link_;   // Laptop -> services (or -> phone).
  NetworkLink phone_uplink_;  // Phone -> services.

  // Phone-side plumbing (paired mode).
  std::unique_ptr<RpcClient> phone_key_rpc_;
  std::unique_ptr<RpcClient> phone_meta_rpc_;
  std::unique_ptr<KeyServiceClient> phone_key_client_;
  std::unique_ptr<MetadataServiceClient> phone_meta_client_;
  std::unique_ptr<PhoneProxy> phone_;

  // Transport-encryption state (secure_channel mode): per-service channel
  // pairs plus the RNGs that supply nonces.
  std::unique_ptr<SecureRandom> channel_client_rng_;
  std::unique_ptr<SecureRandom> channel_server_rng_;
  std::unique_ptr<SecureChannel> key_channel_client_;
  std::unique_ptr<SecureChannel> key_channel_server_;
  std::unique_ptr<SecureChannel> meta_channel_client_;
  std::unique_ptr<SecureChannel> meta_channel_server_;

  // Laptop-side plumbing: one RpcClient + stub per key shard, and the
  // router over them when sharded. key_rpcs_[i] reaches shard i's replica
  // 0; key_backup_rpcs_[i] reach its backups (all over client_link_), and
  // the shard's stub routes across the whole group.
  std::vector<std::unique_ptr<RpcClient>> key_rpcs_;
  std::vector<std::vector<std::unique_ptr<RpcClient>>> key_backup_rpcs_;
  std::unique_ptr<RpcClient> meta_rpc_;
  std::vector<std::unique_ptr<RpcClient>> meta_backup_rpcs_;
  std::vector<std::unique_ptr<KeyServiceClient>> key_clients_;
  std::unique_ptr<BrownoutController> brownout_;
  std::unique_ptr<ShardRouter> key_router_;
  std::unique_ptr<MetadataServiceClient> meta_client_;
  std::unique_ptr<KeypadFs> fs_;

  // Cloud backup tier (cloud_backup mode; both null otherwise).
  std::unique_ptr<SimObjectStore> cloud_store_;
  std::unique_ptr<WriteBackQueue> write_back_;

  ForensicAuditor auditor_;

  // Crash-time snapshots of the services' durable state, per replica
  // ([shard][replica]; column 0 is the unreplicated case), plus which
  // replica the last CrashKeyShard(i) actually took down.
  std::vector<std::vector<Bytes>> key_replica_snapshots_;
  std::vector<size_t> last_crashed_replica_;
  std::vector<Bytes> meta_replica_snapshots_;
  size_t last_crashed_meta_replica_ = 0;
};

}  // namespace keypad

#endif  // SRC_KEYPAD_DEPLOYMENT_H_
