#include "src/keypad/forensics.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/keyservice/auth.h"

namespace keypad {

bool AuditReport::Compromised(const AuditId& id) const {
  for (const auto& entry : compromised) {
    if (entry.audit_id == id) {
      return true;
    }
  }
  return false;
}

std::string AuditReport::ToString() const {
  std::ostringstream out;
  out << "Audit report (Tloss=" << t_loss.seconds_f()
      << "s, cutoff=" << cutoff.seconds_f() << "s)\n";
  out << "  key log chain: " << (key_log_verified ? "VERIFIED" : "BROKEN")
      << ", metadata log chain: "
      << (metadata_log_verified ? "VERIFIED" : "BROKEN") << "\n";
  out << "  compromised files: " << compromised.size() << " ("
      << demand_accessed_count << " demand-accessed, " << prefetch_only_count
      << " prefetch-only), denied post-revocation attempts: "
      << denied_attempts << "\n";
  for (const auto& entry : compromised) {
    out << "    " << (entry.path_at_loss.empty() ? "<unbound>"
                                                 : entry.path_at_loss);
    if (!entry.post_loss_paths.empty()) {
      out << " (post-loss bindings:";
      for (const auto& p : entry.post_loss_paths) {
        out << " " << p;
      }
      out << ")";
    }
    out << " — " << entry.accesses.size() << " access(es)";
    if (entry.prefetch_only) {
      out << " [prefetch only]";
    }
    out << "\n";
  }
  return out.str();
}

namespace {

struct HistoryItem {
  MetadataOp op;
  std::string name;
  DirId dir_id;
  SimTime client_time;
};

// Shared classification core used by both the in-process and the remote
// auditor: groups key-service records per audit ID, resolves trusted and
// post-loss pathnames, and classifies prefetch-only entries.
AuditReport BuildFromData(
    SimTime t_loss, SimDuration texp,
    const std::vector<AuditLogEntry>& entries,
    const std::function<Result<std::string>(const AuditId&, SimTime)>&
        resolve_path,
    const std::function<std::vector<HistoryItem>(const AuditId&)>& history) {
  AuditReport report;
  report.t_loss = t_loss;
  report.cutoff = t_loss - texp;
  report.key_log_verified = true;
  report.metadata_log_verified = true;

  std::map<AuditId, AuditReportEntry> by_id;
  // Latest trusted eviction per file: the client reported securely erasing
  // the cached key (hibernation/shutdown, §6). Only the *service-side*
  // timestamp is trusted for the pre-loss test — a thief holding the
  // device credentials could upload journal entries with forged client
  // times, but he cannot make the service have appended them in the past.
  std::map<AuditId, SimTime> evicted_at;
  for (const auto& entry : entries) {
    if (entry.op == AccessOp::kDenied) {
      if (entry.client_time >= t_loss) {
        ++report.denied_attempts;
      }
      continue;
    }
    if (entry.op == AccessOp::kEviction) {
      if (entry.timestamp < t_loss) {
        SimTime& at = evicted_at[entry.audit_id];
        at = std::max(at, entry.timestamp);
      }
      continue;
    }
    if (entry.op == AccessOp::kRevoke || entry.op == AccessOp::kDestroy ||
        entry.op == AccessOp::kRestore) {
      // Control records: a revoked or destroyed key cannot leak after the
      // fact, and a restore re-binding is an administrative action, not a
      // key leaving the service.
      continue;
    }
    AuditReportEntry& file = by_id[entry.audit_id];
    file.audit_id = entry.audit_id;
    file.accesses.push_back(AuditedAccess{entry.client_time, entry.op});
    if (entry.client_time >= t_loss) {
      file.accessed_after_loss = true;
    }
  }

  // A file whose only exposure is a cached key inside the window is clean
  // if a trusted eviction followed its last key fetch: the key was gone
  // from memory before the device was lost.
  for (auto it = by_id.begin(); it != by_id.end();) {
    const AuditReportEntry& file = it->second;
    auto evicted = evicted_at.find(it->first);
    bool erased_before_loss =
        !file.accessed_after_loss && evicted != evicted_at.end() &&
        std::all_of(file.accesses.begin(), file.accesses.end(),
                    [&](const AuditedAccess& access) {
                      return access.when < evicted->second;
                    });
    it = erased_before_loss ? by_id.erase(it) : std::next(it);
  }

  for (auto& [id, file] : by_id) {
    // Trusted path: metadata as the user last registered it, at Tloss.
    auto path = resolve_path(id, t_loss);
    if (path.ok()) {
      file.path_at_loss = *path;
    }
    // Post-loss registrations (thief unlock registrations / bogus binds).
    for (const auto& record : history(id)) {
      if (record.client_time >= t_loss &&
          record.op != MetadataOp::kSetAttr) {
        auto post_path = resolve_path(id, record.client_time);
        // A bogus binding may name a directory that never existed; surface
        // the raw leaf name rather than dropping the evidence.
        std::string shown = post_path.ok()
                                ? *post_path
                                : "<unresolvable dir " +
                                      record.dir_id.ToHex().substr(0, 8) +
                                      ">/" + record.name;
        if (file.post_loss_paths.empty() ||
            file.post_loss_paths.back() != shown) {
          file.post_loss_paths.push_back(shown);
        }
      }
    }
    file.prefetch_only = !file.accesses.empty();
    for (const auto& access : file.accesses) {
      if (access.op != AccessOp::kPrefetch) {
        file.prefetch_only = false;
        break;
      }
    }
    if (file.prefetch_only) {
      ++report.prefetch_only_count;
    } else {
      ++report.demand_accessed_count;
    }
  }

  report.compromised.reserve(by_id.size());
  for (auto& [id, file] : by_id) {
    report.compromised.push_back(std::move(file));
  }
  std::sort(report.compromised.begin(), report.compromised.end(),
            [](const AuditReportEntry& a, const AuditReportEntry& b) {
              return a.accesses.back().when > b.accesses.back().when;
            });
  return report;
}

// Auditor catch-up is deferrable background traffic (DESIGN.md §14):
// under overload the service sheds the nightly tail pulls first and the
// auditor simply resumes from its cursor on the next pass.
CallContext AuditorCallContext() {
  CallContext ctx;
  ctx.priority = RpcPriority::kBackground;
  return ctx;
}

// Authoritative chains get the strongest check the deployment supports:
// end-to-end from genesis, refetching truncated segments from the cold
// tier (with cloud repair) and verifying each against its signed
// checkpoint. A replica that adopted a truncated snapshot without a cold
// tier of its own can't replay the sealed prefix — there the verified
// checkpoint chain vouches for it (Verify()).
template <typename Log>
Status VerifyChainDeep(const Log& log) {
  Status deep = log.VerifyFullChain();
  if (deep.ok() || deep.code() != StatusCode::kUnavailable) {
    return deep;
  }
  return log.Verify();
}

}  // namespace

const KeyService* ForensicAuditor::Authority(size_t shard) const {
  if (shard < replica_sets_.size() && replica_sets_[shard] != nullptr) {
    const ReplicaSet* set = replica_sets_[shard];
    return set->service(set->current_leader());
  }
  return key_services_[shard];
}

const MetadataService* ForensicAuditor::MetaAuthority() const {
  if (meta_replica_set_ != nullptr) {
    return meta_replica_set_->service(meta_replica_set_->current_leader());
  }
  return metadata_service_;
}

Result<AuditReport> ForensicAuditor::BuildReport(const std::string& device_id,
                                                 SimTime t_loss,
                                                 SimDuration texp) const {
  // Trust nothing until the chains check out — every shard's authoritative
  // chain must verify independently before any of them contributes records.
  bool key_logs_ok = true;
  for (size_t i = 0; i < key_services_.size(); ++i) {
    key_logs_ok = key_logs_ok && VerifyChainDeep(Authority(i)->log()).ok();
  }
  // Replica chains verify too: a backup holding a broken chain is an audit
  // finding even when the leader's chain is intact.
  bool replicas_ok = true;
  for (const ReplicaSet* set : replica_sets_) {
    if (set == nullptr) {
      continue;
    }
    for (size_t r = 0; r < set->size(); ++r) {
      replicas_ok = replicas_ok && set->service(r)->log().Verify().ok();
    }
  }
  if (meta_replica_set_ != nullptr) {
    for (size_t r = 0; r < meta_replica_set_->size(); ++r) {
      replicas_ok = replicas_ok &&
                    meta_replica_set_->service(r)->log().Verify().ok();
    }
  }
  if (!key_logs_ok || !VerifyChainDeep(MetaAuthority()->log()).ok()) {
    AuditReport report;
    report.t_loss = t_loss;
    report.cutoff = t_loss - texp;
    report.key_log_verified = key_logs_ok;
    report.metadata_log_verified = VerifyChainDeep(MetaAuthority()->log()).ok();
    report.replica_logs_verified = replicas_ok;
    return Result<AuditReport>(std::move(report));
  }

  std::vector<AuditLogEntry> entries;
  for (size_t i = 0; i < key_services_.size(); ++i) {
    for (const auto& entry : Authority(i)->LogSince(t_loss - texp)) {
      if (entry.device_id == device_id) {
        entries.push_back(entry);
      }
    }
  }

  // Entries reconciliation orphaned off losing chains: classify each one as
  // a duplicate of an authoritative row (same device, audit id, op, client
  // time — the seal-chain fields necessarily differ across chains) or as a
  // sole survivor, which joins the report so the acknowledged access is
  // never lost.
  size_t duplicate_records = 0;
  size_t orphaned_records = 0;
  for (size_t i = 0; i < replica_sets_.size(); ++i) {
    const ReplicaSet* set = replica_sets_[i];
    if (set == nullptr) {
      continue;
    }
    std::vector<AuditLogEntry> authoritative = Authority(i)->LogSince(
        SimTime());
    for (const OrphanedEntry& orphan : set->orphaned()) {
      const AuditLogEntry& entry = orphan.entry;
      if (entry.device_id != device_id) {
        continue;
      }
      bool matched = false;
      for (const auto& held : authoritative) {
        if (held.device_id == entry.device_id &&
            held.audit_id == entry.audit_id && held.op == entry.op &&
            held.client_time == entry.client_time) {
          matched = true;
          break;
        }
      }
      if (matched) {
        ++duplicate_records;
      } else {
        ++orphaned_records;
        if (entry.client_time >= t_loss - texp) {
          entries.push_back(entry);
        }
      }
    }
  }

  // Metadata records orphaned off losing chains classify exactly the same
  // way: a namespace event some replica hashed that the merged history
  // also carries (duplicate — the leader re-logged the retried mutation)
  // or a sole survivor (surfaced as evidence; it does not create accesses,
  // so it joins the counters, not the timeline).
  if (meta_replica_set_ != nullptr) {
    // AllKnownRecords: the binding index retains truncated-prefix rows, so
    // an orphan that duplicates a checkpointed (and since-truncated) row
    // still classifies as a duplicate, matching an untruncated run.
    const auto authoritative = MetaAuthority()->log().AllKnownRecords();
    for (const OrphanedMetaRecord& orphan : meta_replica_set_->orphaned()) {
      const MetadataRecord& record = orphan.record;
      if (record.device_id != device_id) {
        continue;
      }
      bool matched = false;
      for (const auto& held : authoritative) {
        if (held.device_id == record.device_id &&
            held.audit_id == record.audit_id && held.op == record.op &&
            held.dir_id == record.dir_id && held.name == record.name &&
            held.client_time == record.client_time) {
          matched = true;
          break;
        }
      }
      if (matched) {
        ++duplicate_records;
      } else {
        ++orphaned_records;
      }
    }
  }

  if (key_services_.size() > 1 || orphaned_records > 0) {
    // Each shard's slice is already chronological; merge into one timeline
    // by the trusted service-side timestamp.
    std::stable_sort(entries.begin(), entries.end(),
                     [](const AuditLogEntry& a, const AuditLogEntry& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  const MetadataService* meta = MetaAuthority();
  AuditReport annotated = BuildFromData(
      t_loss, texp, entries,
      [&](const AuditId& id, SimTime as_of) {
        return meta->ResolvePath(device_id, id, as_of);
      },
      [&](const AuditId& id) {
        std::vector<HistoryItem> out;
        for (const auto& record : meta->HistoryOf(device_id, id)) {
          out.push_back(HistoryItem{record.op, record.name, record.dir_id,
                                    record.client_time});
        }
        return out;
      });
  annotated.replica_logs_verified = replicas_ok;
  annotated.duplicate_records = duplicate_records;
  annotated.orphaned_records = orphaned_records;
  return Result<AuditReport>(std::move(annotated));
}

Result<std::vector<LogCheckpoint>> RemoteAuditor::FetchCheckpoints(
    RpcClient* rpc, const char* method, const Bytes& secret) {
  auto result = rpc->Call(method, FrameAuthedCall(device_id_, secret, method,
                                                  WireValue::Array()),
                          AuditorCallContext());
  if (!result.ok()) {
    return result.status();
  }
  KP_ASSIGN_OR_RETURN(WireValue::Array raw, result->AsArray());
  std::vector<LogCheckpoint> out;
  out.reserve(raw.size());
  for (const auto& raw_ckpt : raw) {
    KP_ASSIGN_OR_RETURN(LogCheckpoint ckpt, LogCheckpoint::FromWire(raw_ckpt));
    out.push_back(std::move(ckpt));
  }
  KP_RETURN_IF_ERROR(VerifyCheckpointChain(out, DefaultCheckpointKey()));
  return out;
}

bool RemoteAuditor::CheckpointsExtendRecorded(RpcClient* rpc,
                                              const char* method,
                                              const Bytes& secret,
                                              uint64_t recorded_count,
                                              const Bytes& recorded_hash) {
  if (recorded_count == 0) {
    // Nothing recorded to anchor on: fall back to the legacy full resync.
    return false;
  }
  auto ckpts = FetchCheckpoints(rpc, method, secret);
  if (!ckpts.ok() || ckpts->size() < recorded_count) {
    return false;
  }
  // The server's verified chain carries our recorded checkpoint at the same
  // position with the same hash: its history extends (not replaces) what
  // this auditor already fetched.
  return (*ckpts)[recorded_count - 1].hash == recorded_hash;
}

Status RemoteAuditor::CatchUpFromCheckpoints() {
  for (size_t shard = 0; shard < key_rpcs_.size(); ++shard) {
    KP_ASSIGN_OR_RETURN(
        std::vector<LogCheckpoint> ckpts,
        FetchCheckpoints(key_rpcs_[shard], "audit.key_checkpoints",
                         key_secret_));
    if (ckpts.empty()) {
      continue;
    }
    cursors_[shard] = std::max(cursors_[shard], ckpts.back().end_seq);
    ckpt_counts_[shard] = ckpts.size();
    ckpt_hashes_[shard] = ckpts.back().hash;
  }
  KP_ASSIGN_OR_RETURN(
      std::vector<LogCheckpoint> meta_ckpts,
      FetchCheckpoints(meta_rpc_, "audit.meta_checkpoints", meta_secret_));
  if (!meta_ckpts.empty()) {
    meta_cursor_ = std::max(meta_cursor_, meta_ckpts.back().end_seq);
    meta_ckpt_count_ = meta_ckpts.size();
    meta_ckpt_hash_ = meta_ckpts.back().hash;
  }
  return Status::Ok();
}

Status RemoteAuditor::Resync(size_t shard, uint64_t server_epoch) {
  ++resyncs_;
  WireValue::Array payload;
  payload.push_back(WireValue(static_cast<int64_t>(0)));
  auto result = key_rpcs_[shard]->Call(
      "audit.key_log_tail",
      FrameAuthedCall(device_id_, key_secret_, "audit.key_log_tail",
                      std::move(payload)),
      AuditorCallContext());
  if (!result.ok()) {
    return result.status();
  }
  KP_ASSIGN_OR_RETURN(WireValue next, result->Field("next"));
  KP_ASSIGN_OR_RETURN(int64_t next_seq, next.AsInt());
  KP_ASSIGN_OR_RETURN(WireValue raw, result->Field("entries"));
  KP_ASSIGN_OR_RETURN(WireValue::Array raw_entries, raw.AsArray());
  entries_fetched_ += raw_entries.size();
  std::vector<AuditLogEntry> fresh;
  for (const auto& raw_entry : raw_entries) {
    KP_ASSIGN_OR_RETURN(AuditLogEntry entry,
                        AuditLogEntry::FromWire(raw_entry));
    fresh.push_back(std::move(entry));
  }
  // Overlap re-verification: every row this auditor already fetched must
  // either still exist with identical content, or it stays in the local
  // cache as evidence — a row served once is never silently un-happened by
  // a shard restore or failover. Changed overlap rows (same sequence,
  // different content) are tamper/fork evidence; both versions are kept.
  std::vector<AuditLogEntry> merged = fresh;
  for (const auto& had : shard_cached_[shard]) {
    const AuditLogEntry* match = nullptr;
    for (const auto& now : fresh) {
      if (now.seq == had.seq) {
        match = &now;
        break;
      }
    }
    if (match == nullptr) {
      ++regressed_entries_;
      merged.push_back(had);
    } else if (!(match->device_id == had.device_id &&
                 match->audit_id == had.audit_id && match->op == had.op &&
                 match->timestamp == had.timestamp &&
                 match->client_time == had.client_time)) {
      ++overlap_mismatches_;
      merged.push_back(had);
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const AuditLogEntry& a, const AuditLogEntry& b) {
                     return a.timestamp < b.timestamp;
                   });
  shard_cached_[shard] = std::move(merged);
  cursors_[shard] = static_cast<uint64_t>(next_seq);
  epochs_[shard] = server_epoch;
  return Status::Ok();
}

Status RemoteAuditor::MetaResync(uint64_t server_epoch) {
  ++resyncs_;
  WireValue::Array payload;
  payload.push_back(WireValue(static_cast<int64_t>(0)));
  auto result = meta_rpc_->Call(
      "audit.meta_log_tail",
      FrameAuthedCall(device_id_, meta_secret_, "audit.meta_log_tail",
                      std::move(payload)),
      AuditorCallContext());
  if (!result.ok()) {
    return result.status();
  }
  KP_ASSIGN_OR_RETURN(WireValue next, result->Field("next"));
  KP_ASSIGN_OR_RETURN(int64_t next_seq, next.AsInt());
  KP_ASSIGN_OR_RETURN(WireValue raw, result->Field("entries"));
  KP_ASSIGN_OR_RETURN(WireValue::Array raw_records, raw.AsArray());
  entries_fetched_ += raw_records.size();
  std::vector<MetadataRecord> fresh;
  for (const auto& raw_record : raw_records) {
    KP_ASSIGN_OR_RETURN(MetadataRecord record,
                        MetadataRecord::FromWire(raw_record));
    fresh.push_back(std::move(record));
  }
  // Overlap re-verification, as on the key tier: a namespace row served
  // once is never silently un-happened by a restore or failover — rows the
  // resynced log no longer carries stay cached as evidence, and changed
  // overlap rows are kept in both versions.
  std::vector<MetadataRecord> merged = fresh;
  for (const auto& had : meta_cached_) {
    const MetadataRecord* match = nullptr;
    for (const auto& now : fresh) {
      if (now.seq == had.seq) {
        match = &now;
        break;
      }
    }
    if (match == nullptr) {
      ++regressed_entries_;
      merged.push_back(had);
    } else if (!(match->device_id == had.device_id &&
                 match->audit_id == had.audit_id && match->op == had.op &&
                 match->dir_id == had.dir_id && match->name == had.name &&
                 match->timestamp == had.timestamp &&
                 match->client_time == had.client_time)) {
      ++overlap_mismatches_;
      merged.push_back(had);
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const MetadataRecord& a, const MetadataRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  meta_cached_ = std::move(merged);
  meta_cursor_ = static_cast<uint64_t>(next_seq);
  meta_epoch_ = server_epoch;
  return Status::Ok();
}

Status RemoteAuditor::PullMetaTail() {
  WireValue::Array payload;
  payload.push_back(WireValue(static_cast<int64_t>(meta_cursor_)));
  auto result = meta_rpc_->Call(
      "audit.meta_log_tail",
      FrameAuthedCall(device_id_, meta_secret_, "audit.meta_log_tail",
                      std::move(payload)),
      AuditorCallContext());
  if (!result.ok()) {
    return result.status();
  }
  KP_ASSIGN_OR_RETURN(WireValue next, result->Field("next"));
  KP_ASSIGN_OR_RETURN(int64_t next_seq, next.AsInt());
  uint64_t server_epoch = 0;
  if (result->HasField("epoch")) {
    KP_ASSIGN_OR_RETURN(WireValue epoch_v, result->Field("epoch"));
    KP_ASSIGN_OR_RETURN(int64_t epoch_int, epoch_v.AsInt());
    server_epoch = static_cast<uint64_t>(epoch_int);
  }
  uint64_t server_ckpt_count = 0;
  Bytes server_ckpt_hash;
  if (result->HasField("ckpt_count")) {
    KP_ASSIGN_OR_RETURN(WireValue count_v, result->Field("ckpt_count"));
    KP_ASSIGN_OR_RETURN(int64_t count_int, count_v.AsInt());
    server_ckpt_count = static_cast<uint64_t>(count_int);
    KP_ASSIGN_OR_RETURN(WireValue hash_v, result->Field("ckpt_hash"));
    KP_ASSIGN_OR_RETURN(server_ckpt_hash, hash_v.AsBytes());
  }
  if (static_cast<uint64_t>(next_seq) < meta_cursor_ ||
      server_epoch != meta_epoch_) {
    // Same disambiguation as the key tier: a restart (possibly with prefix
    // truncation) of the same chain is proven benign by the checkpoint
    // chain; anything else is a genuine regression and resyncs.
    if (static_cast<uint64_t>(next_seq) >= meta_cursor_ &&
        CheckpointsExtendRecorded(meta_rpc_, "audit.meta_checkpoints",
                                  meta_secret_, meta_ckpt_count_,
                                  meta_ckpt_hash_)) {
      meta_epoch_ = server_epoch;
      ++benign_restarts_;
    } else {
      KP_RETURN_IF_ERROR(MetaResync(server_epoch));
      meta_ckpt_count_ = server_ckpt_count;
      meta_ckpt_hash_ = server_ckpt_hash;
      return Status::Ok();
    }
  }
  KP_ASSIGN_OR_RETURN(WireValue raw, result->Field("entries"));
  KP_ASSIGN_OR_RETURN(WireValue::Array raw_records, raw.AsArray());
  entries_fetched_ += raw_records.size();
  for (const auto& raw_record : raw_records) {
    KP_ASSIGN_OR_RETURN(MetadataRecord record,
                        MetadataRecord::FromWire(raw_record));
    meta_cached_.push_back(std::move(record));
  }
  meta_cursor_ = static_cast<uint64_t>(next_seq);
  meta_ckpt_count_ = server_ckpt_count;
  meta_ckpt_hash_ = server_ckpt_hash;
  return Status::Ok();
}

Result<AuditReport> RemoteAuditor::BuildReport(SimTime t_loss,
                                               SimDuration texp) {
  // Pull each shard's log tail past our cursor; the service verifies its
  // chain before serving (a fault here means a broken chain or an outage).
  // Repeat audits only move the suffix — the sequence cursor makes the
  // nightly audit incremental instead of a full-log replay.
  for (size_t shard = 0; shard < key_rpcs_.size(); ++shard) {
    WireValue::Array payload;
    payload.push_back(WireValue(static_cast<int64_t>(cursors_[shard])));
    auto log_result = key_rpcs_[shard]->Call(
        "audit.key_log_tail",
        FrameAuthedCall(device_id_, key_secret_, "audit.key_log_tail",
                        std::move(payload)),
        AuditorCallContext());
    if (!log_result.ok()) {
      return log_result.status();
    }
    KP_ASSIGN_OR_RETURN(WireValue next, log_result->Field("next"));
    KP_ASSIGN_OR_RETURN(int64_t next_seq, next.AsInt());
    uint64_t server_epoch = 0;
    if (log_result->HasField("epoch")) {
      KP_ASSIGN_OR_RETURN(WireValue epoch_v, log_result->Field("epoch"));
      KP_ASSIGN_OR_RETURN(int64_t epoch_int, epoch_v.AsInt());
      server_epoch = static_cast<uint64_t>(epoch_int);
    }
    uint64_t server_ckpt_count = 0;
    Bytes server_ckpt_hash;
    if (log_result->HasField("ckpt_count")) {
      KP_ASSIGN_OR_RETURN(WireValue count_v, log_result->Field("ckpt_count"));
      KP_ASSIGN_OR_RETURN(int64_t count_int, count_v.AsInt());
      server_ckpt_count = static_cast<uint64_t>(count_int);
      KP_ASSIGN_OR_RETURN(WireValue hash_v, log_result->Field("ckpt_hash"));
      KP_ASSIGN_OR_RETURN(server_ckpt_hash, hash_v.AsBytes());
    }
    if (static_cast<uint64_t>(next_seq) < cursors_[shard] ||
        server_epoch != epochs_[shard]) {
      // The log apparently moved under the cursor: either the cursor ran
      // past the server (restore from an older snapshot / failover onto a
      // shorter chain) or the service merely restarted — possibly having
      // truncated a checkpointed prefix we already hold. Raw sequence
      // numbers can't tell these apart; the signed checkpoint chain can.
      if (static_cast<uint64_t>(next_seq) >= cursors_[shard] &&
          CheckpointsExtendRecorded(key_rpcs_[shard], "audit.key_checkpoints",
                                    key_secret_, ckpt_counts_[shard],
                                    ckpt_hashes_[shard])) {
        // Same chain, extended: adopt the new epoch and keep the cursor.
        epochs_[shard] = server_epoch;
        ++benign_restarts_;
      } else {
        // Genuinely different (or shorter) history: the suffix we just
        // asked for is not trustworthy as an increment; refetch from
        // sequence zero and re-verify the overlap.
        KP_RETURN_IF_ERROR(Resync(shard, server_epoch));
        ckpt_counts_[shard] = server_ckpt_count;
        ckpt_hashes_[shard] = server_ckpt_hash;
        continue;
      }
    }
    KP_ASSIGN_OR_RETURN(WireValue raw, log_result->Field("entries"));
    KP_ASSIGN_OR_RETURN(WireValue::Array raw_entries, raw.AsArray());
    entries_fetched_ += raw_entries.size();
    for (const auto& raw_entry : raw_entries) {
      KP_ASSIGN_OR_RETURN(AuditLogEntry entry,
                          AuditLogEntry::FromWire(raw_entry));
      shard_cached_[shard].push_back(std::move(entry));
    }
    cursors_[shard] = static_cast<uint64_t>(next_seq);
    ckpt_counts_[shard] = server_ckpt_count;
    ckpt_hashes_[shard] = server_ckpt_hash;
  }
  // The metadata tier keeps its own incremental cursor: the tail pull
  // notices a restore-from-older-snapshot (or a failover onto a shorter
  // chain) on this tier too, and preserves regressed namespace rows as
  // evidence before the path resolutions below consult the live service.
  KP_RETURN_IF_ERROR(PullMetaTail());
  std::vector<AuditLogEntry> timeline;
  for (const auto& shard : shard_cached_) {
    timeline.insert(timeline.end(), shard.begin(), shard.end());
  }
  if (key_rpcs_.size() > 1) {
    std::stable_sort(timeline.begin(), timeline.end(),
                     [](const AuditLogEntry& a, const AuditLogEntry& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  std::vector<AuditLogEntry> entries;
  for (const auto& entry : timeline) {
    if (entry.timestamp >= t_loss - texp) {
      entries.push_back(entry);
    }
  }

  auto resolve = [this](const AuditId& id,
                        SimTime as_of) -> Result<std::string> {
    WireValue::Array params;
    params.push_back(WireValue(id.ToBytes()));
    params.push_back(WireValue(as_of.nanos()));
    auto result = meta_rpc_->Call(
        "audit.resolve_path",
        FrameAuthedCall(device_id_, meta_secret_, "audit.resolve_path",
                        std::move(params)));
    if (!result.ok()) {
      return result.status();
    }
    return result->AsString();
  };
  auto history = [this](const AuditId& id) {
    std::vector<HistoryItem> out;
    WireValue::Array params;
    params.push_back(WireValue(id.ToBytes()));
    auto result = meta_rpc_->Call(
        "audit.history",
        FrameAuthedCall(device_id_, meta_secret_, "audit.history",
                        std::move(params)));
    if (!result.ok()) {
      return out;
    }
    auto raw_items = result->AsArray();
    if (!raw_items.ok()) {
      return out;
    }
    for (const auto& raw : *raw_items) {
      HistoryItem item;
      auto op = raw.Field("op");
      auto name = raw.Field("name");
      auto dir = raw.Field("dir");
      auto cts = raw.Field("cts");
      if (!op.ok() || !name.ok() || !dir.ok() || !cts.ok()) {
        continue;
      }
      item.op = static_cast<MetadataOp>(op->AsInt().value_or(0));
      item.name = name->AsString().value_or("");
      auto dir_bytes = dir->AsBytes();
      if (dir_bytes.ok()) {
        auto dir_id = DirId::FromBytes(*dir_bytes);
        if (dir_id.ok()) {
          item.dir_id = *dir_id;
        }
      }
      item.client_time = SimTime(cts->AsInt().value_or(0));
      out.push_back(std::move(item));
    }
    return out;
  };

  return BuildFromData(t_loss, texp, entries, resolve, history);
}

}  // namespace keypad
