#include "src/keypad/keypad_fs.h"

#include "src/cryptocore/keywrap.h"
#include "src/cryptocore/sha256.h"
#include "src/metaservice/metadata_service.h"
#include "src/util/logging.h"
#include "src/util/strings.h"
#include "src/wire/binary_codec.h"

namespace keypad {

namespace {

constexpr uint8_t kTagRawKd = 0x00;
constexpr uint8_t kTagWrapped = 0x01;

Bytes Tagged(uint8_t tag, const Bytes& body) {
  Bytes out;
  out.reserve(body.size() + 1);
  out.push_back(tag);
  Append(out, body);
  return out;
}

// Well-known object holding the sealed service credentials.
ObjectId CredentialsObjectId() {
  Sha256::Digest d = Sha256::Hash("keypad-credentials-object");
  Bytes prefix(d.begin(), d.begin() + 16);
  return *ObjectId::FromBytes(prefix);
}

}  // namespace

KeypadFs::KeypadFs(BlockDevice* device, EventQueue* queue, uint64_t rng_seed,
                   EncFs::Options fs_options, KeypadConfig config,
                   Services services)
    : EncFs(device, queue, rng_seed, fs_options),
      config_(std::move(config)),
      services_(services),
      cache_(queue, config_.texp),
      prefetcher_(ApplyPrefetchPolicyEnv(config_.prefetch),
                  rng_seed ^ 0x70F37C4Bull) {
  // In-use keys are refreshed through the key service at expiry, producing
  // kRefresh audit records (§4 "Key Expiration").
  cache_.set_refresh([this](const AuditId& id,
                            std::function<void(Result<Bytes>)> done) {
    RefreshKeyAsync(id, std::move(done));
  });
}

KeypadFs::~KeypadFs() {
  for (auto& [id, entry] : grace_) {
    queue()->Cancel(entry.expiry_event);
    SecureZero(entry.kd);
  }
  for (auto& [id, pending] : pending_) {
    SecureZero(pending.kd);
  }
}

Result<std::unique_ptr<KeypadFs>> KeypadFs::Format(
    BlockDevice* device, EventQueue* queue, uint64_t rng_seed,
    std::string_view password, EncFs::Options fs_options, KeypadConfig config,
    Services services) {
  auto fs = std::unique_ptr<KeypadFs>(
      new KeypadFs(device, queue, rng_seed, fs_options, std::move(config),
                   services));
  KP_RETURN_IF_ERROR(fs->InitFormat(password));
  // The root directory must be known to the metadata service before any
  // file binding can be interpreted.
  KP_RETURN_IF_ERROR(services.meta->RegisterRoot(fs->root_dir_id()));
  return fs;
}

Result<std::unique_ptr<KeypadFs>> KeypadFs::Mount(
    BlockDevice* device, EventQueue* queue, uint64_t rng_seed,
    std::string_view password, EncFs::Options fs_options, KeypadConfig config,
    Services services) {
  auto fs = std::unique_ptr<KeypadFs>(
      new KeypadFs(device, queue, rng_seed, fs_options, std::move(config),
                   services));
  KP_RETURN_IF_ERROR(fs->InitMount(password));
  return fs;
}

void KeypadFs::ResetStats() {
  stats_ = Stats{};
  cache_.ResetStats();
  prefetcher_.ResetStats();
}

void KeypadFs::Hibernate() {
  for (const auto& id : cache_.Clear()) {
    services_.key->NoteEvictionAsync(id);
  }
  for (auto& [id, entry] : grace_) {
    queue()->Cancel(entry.expiry_event);
    SecureZero(entry.kd);
  }
  grace_.clear();
}

Status KeypadFs::StoreCredentials(const Credentials& creds) {
  WireValue::Struct s;
  s.emplace("device", WireValue(creds.device_id));
  s.emplace("key_secret", WireValue(creds.key_secret));
  s.emplace("meta_secret", WireValue(creds.meta_secret));
  Bytes sealed = SealBlob(BinaryEncode(WireValue(std::move(s))));
  device()->WriteObject(CredentialsObjectId(), std::move(sealed));
  return Status::Ok();
}

Result<KeypadFs::Credentials> KeypadFs::LoadCredentials(EncFs* fs) {
  KP_ASSIGN_OR_RETURN(Bytes sealed,
                      fs->device()->ReadObject(CredentialsObjectId()));
  KP_ASSIGN_OR_RETURN(Bytes plain, fs->OpenBlob(sealed));
  KP_ASSIGN_OR_RETURN(WireValue value, BinaryDecode(plain));
  Credentials creds;
  KP_ASSIGN_OR_RETURN(WireValue device_v, value.Field("device"));
  KP_ASSIGN_OR_RETURN(creds.device_id, device_v.AsString());
  KP_ASSIGN_OR_RETURN(WireValue ks_v, value.Field("key_secret"));
  KP_ASSIGN_OR_RETURN(creds.key_secret, ks_v.AsBytes());
  KP_ASSIGN_OR_RETURN(WireValue ms_v, value.Field("meta_secret"));
  KP_ASSIGN_OR_RETURN(creds.meta_secret, ms_v.AsBytes());
  return creds;
}

// --- Key fetching. ------------------------------------------------------------

void KeypadFs::RefreshKeyAsync(const AuditId& id,
                               std::function<void(Result<Bytes>)> done) {
  // Asynchronous refresh of an in-use key; logs kRefresh at the service.
  // Implemented with the client stub's async creation channel: reuse
  // CallAsync through a small dedicated method on the stub.
  services_.key->GetKeyAsync(id, AccessOp::kRefresh, std::move(done));
}

std::vector<AuditId> KeypadFs::ListDirAuditIds(const std::string& dir_path) {
  std::vector<AuditId> out;
  auto dir = ResolveDir(dir_path);
  if (!dir.ok()) {
    return out;
  }
  for (const auto& entry : dir->dir.entries) {
    if (entry.is_dir) {
      continue;  // Prefetch is never recursive (§4).
    }
    auto header = ReadHeaderAt(entry.obj);
    if (header.ok() && header->keypad_protected) {
      out.push_back(header->audit_id);
    }
  }
  return out;
}

void KeypadFs::CacheInsert(const AuditId& id, Bytes key) {
  if (config_.brownout != nullptr) {
    cache_.Insert(id, std::move(key),
                  config_.brownout->CacheLifetimeForInsert(cache_.texp(),
                                                           queue()->Now()));
    return;
  }
  cache_.Insert(id, std::move(key));
}

Result<Bytes> KeypadFs::FetchRemoteKey(const AuditId& id,
                                       const std::string& dir_path) {
  ++stats_.demand_fetches;
  std::vector<AuditId> prefetch_ids = prefetcher_.OnMiss(
      dir_path, id, [&] { return ListDirAuditIds(dir_path); });
  // Don't re-fetch keys that are already cached.
  std::erase_if(prefetch_ids,
                [&](const AuditId& p) { return cache_.Contains(p); });
  // Under brownout the tier is shedding load — drop the speculative
  // fanout entirely (the only cost is a possible future demand miss) and
  // keep just the fetch a user is actually blocked on.
  if (!prefetch_ids.empty() && config_.brownout != nullptr &&
      config_.brownout->SuppressPrefetch(queue()->Now())) {
    prefetch_ids.clear();
  }

  if (prefetch_ids.empty()) {
    KP_ASSIGN_OR_RETURN(Bytes kr,
                        services_.key->GetKey(id, AccessOp::kDemandFetch));
    CacheInsert(id, kr);
    return kr;
  }
  KP_ASSIGN_OR_RETURN(KeyClient::GroupFetch group,
                      services_.key->FetchGroup(id, prefetch_ids));
  CacheInsert(id, group.demand_key);
  for (auto& [pid, pkey] : group.prefetched) {
    CacheInsert(pid, std::move(pkey));
    ++stats_.keys_prefetched;
  }
  return group.demand_key;
}

// --- Grace cache. ---------------------------------------------------------------

void KeypadFs::GraceInsert(const AuditId& id, Bytes kd) {
  GraceErase(id);
  GraceEntry entry;
  entry.kd = std::move(kd);
  entry.expires_at = queue()->Now() + config_.grace;
  entry.expiry_event =
      queue()->Schedule(entry.expires_at, [this, id] { GraceErase(id); });
  grace_.emplace(id, std::move(entry));
}

std::optional<Bytes> KeypadFs::GraceLookup(const AuditId& id) {
  auto it = grace_.find(id);
  if (it == grace_.end()) {
    return std::nullopt;
  }
  if (queue()->Now() >= it->second.expires_at) {
    GraceErase(id);
    return std::nullopt;
  }
  return it->second.kd;
}

void KeypadFs::GraceErase(const AuditId& id) {
  auto it = grace_.find(id);
  if (it == grace_.end()) {
    return;
  }
  queue()->Cancel(it->second.expiry_event);
  SecureZero(it->second.kd);
  grace_.erase(it);
}

// --- IBE lock/unlock helpers. ----------------------------------------------------

Bytes KeypadFs::IbeLockBlob(const std::string& identity, const Bytes& tagged) {
  Charge(config_.costs.ibe_lock);
  ++stats_.ibe_locks;
  IbeCiphertext ct = IbeEncrypt(*services_.ibe, identity, tagged, rng());
  return ct.Serialize(*services_.ibe->group);
}

Result<Bytes> KeypadFs::IbeUnlockBlob(const Bytes& blob,
                                      const Bytes& ibe_key_bytes,
                                      const std::string& identity) {
  Charge(config_.costs.ibe_unlock);
  KP_ASSIGN_OR_RETURN(
      IbeCiphertext ct,
      IbeCiphertext::Deserialize(blob, *services_.ibe->group));
  KP_ASSIGN_OR_RETURN(IbePrivateKey key,
                      IbePrivateKey::Deserialize(identity, ibe_key_bytes,
                                                 *services_.ibe->group));
  return IbeDecrypt(*services_.ibe, key, ct);
}

Result<Bytes> KeypadFs::BlockingUnlock(const AuditId& id, const DirId& dir_id,
                                       const std::string& name,
                                       FileHeader* header,
                                       bool* header_dirty) {
  ++stats_.ibe_blocking_unlocks;
  // Register the *current, truthful* binding; the PKG logs it and releases
  // the unlock key. A thief who lies gets a key for the wrong identity,
  // which fails the ciphertext MAC below.
  KP_ASSIGN_OR_RETURN(Bytes ibe_key_bytes,
                      services_.meta->BindFile(id, dir_id, name,
                                               /*is_rename=*/true));
  std::string identity = IbeIdentityFor(dir_id, name, id);
  KP_ASSIGN_OR_RETURN(Bytes tagged,
                      IbeUnlockBlob(header->key_blob, ibe_key_bytes,
                                    identity));
  if (tagged.empty()) {
    return DataLossError("keypad: empty IBE plaintext");
  }
  Bytes body(tagged.begin() + 1, tagged.end());
  if (tagged[0] == kTagRawKd) {
    // Creation lock: the data key itself. If the remote key is known by
    // now, normalize the header; otherwise leave it locked (the pending
    // machinery or a later access completes it).
    if (auto kr = cache_.Lookup(id)) {
      header->key_blob = WrapKey(*kr, body, rng());
      header->ibe_locked = false;
      *header_dirty = true;
    }
    return body;
  }
  if (tagged[0] == kTagWrapped) {
    // Rename lock: the wrapped blob. Fetching K_R produces the key-service
    // audit record.
    Bytes kr;
    if (auto cached = cache_.Lookup(id)) {
      Charge(config_.costs.cache_hit);
      ++stats_.cache_hits;
      kr = *cached;
    } else {
      KP_ASSIGN_OR_RETURN(kr, FetchRemoteKey(id, "/"));
    }
    KP_ASSIGN_OR_RETURN(Bytes kd, UnwrapKey(kr, body));
    header->key_blob = body;
    header->ibe_locked = false;
    *header_dirty = true;
    return kd;
  }
  return DataLossError("keypad: unknown IBE plaintext tag");
}

void KeypadFs::BackgroundUnlock(const AuditId& id, const std::string& identity,
                                const Bytes& ibe_key_bytes) {
  auto path_it = lock_paths_.find(id);
  if (path_it == lock_paths_.end()) {
    return;  // Unlinked or already handled.
  }
  auto resolved = ResolveFile(path_it->second);
  if (!resolved.ok()) {
    return;
  }
  auto header = ReadHeaderAt(resolved->obj);
  if (!header.ok() || !header->ibe_locked) {
    lock_paths_.erase(path_it);
    return;
  }
  auto tagged = IbeUnlockBlob(header->key_blob, ibe_key_bytes, identity);
  if (!tagged.ok()) {
    // The file was re-locked under a newer identity (renamed again) — the
    // newer bind's response will unlock it.
    return;
  }
  if ((*tagged)[0] == kTagWrapped) {
    FileHeader h = *header;
    h.key_blob = Bytes(tagged->begin() + 1, tagged->end());
    h.ibe_locked = false;
    Charge(config_.costs.header_rewrite);
    if (WriteHeaderAt(resolved->obj, h).ok()) {
      ++stats_.ibe_background_unlocks;
      lock_paths_.erase(path_it);
    }
  }
  // kTagRawKd background unlocks are handled by MaybeCompletePending, which
  // needs the remote key as well.
}

// --- Pending creations (IBE mode). ------------------------------------------------

void KeypadFs::SendPendingKeyCreate(const AuditId& id) {
  services_.key->CreateKeyAsync(id, [this, id](Result<Bytes> result) {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      return;
    }
    if (!result.ok()) {
      if (it->second.key_retries_left-- > 0) {
        queue()->ScheduleAfter(config_.retry_backoff,
                               [this, id] { SendPendingKeyCreate(id); });
      }
      return;
    }
    it->second.kr = std::move(*result);
    CacheInsert(id, *it->second.kr);
    MaybeCompletePending(id);
  });
}

void KeypadFs::SendPendingMetaBind(const AuditId& id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return;
  }
  ++stats_.metadata_async;
  services_.meta->BindFileAsync(
      id, it->second.dir_id, it->second.name, /*is_rename=*/false,
      [this, id](Result<Bytes> result) {
        auto it2 = pending_.find(id);
        if (it2 == pending_.end()) {
          return;
        }
        if (!result.ok()) {
          if (it2->second.meta_retries_left-- > 0) {
            queue()->ScheduleAfter(config_.retry_backoff,
                                   [this, id] { SendPendingMetaBind(id); });
          }
          return;
        }
        it2->second.meta_done = true;
        MaybeCompletePending(id);
      });
}

void KeypadFs::MaybeCompletePending(const AuditId& id) {
  auto it = pending_.find(id);
  if (it == pending_.end() || !it->second.kr.has_value() ||
      !it->second.meta_done) {
    return;
  }
  PendingCreate& pending = it->second;
  // Normalize the header: Wrap(K_R, K_D) replaces the IBE creation lock.
  auto resolved = ResolveFile(pending.current_path);
  if (resolved.ok()) {
    auto header = ReadHeaderAt(resolved->obj);
    if (header.ok() && header->ibe_locked) {
      FileHeader h = *header;
      h.key_blob = WrapKey(*pending.kr, pending.kd, rng());
      h.ibe_locked = false;
      Charge(config_.costs.header_rewrite);
      if (WriteHeaderAt(resolved->obj, h).ok()) {
        ++stats_.ibe_background_unlocks;
      }
    }
  }
  SecureZero(pending.kd);
  lock_paths_.erase(id);
  pending_.erase(it);
}

// --- EncFs hook overrides. ---------------------------------------------------------

Result<Bytes> KeypadFs::ProvisionNewFile(const std::string& path,
                                         const DirId& dir_id,
                                         FileHeader* header) {
  if (!Covered(path)) {
    ++stats_.uncovered_ops;
    return EncFs::ProvisionNewFile(path, dir_id, header);
  }
  AuditId id = AuditId::Random(rng());
  Bytes kd = rng().NextBytes(32);
  header->audit_id = id;
  header->keypad_protected = true;
  std::string name = PathBasename(path);

  if (!config_.ibe_enabled) {
    // Creation barrier (§3.1): both registrations must be acknowledged
    // before the create returns. The two requests overlap.
    ++stats_.creates_blocking;
    ++stats_.metadata_blocking;
    struct Barrier {
      bool key_done = false;
      bool meta_done = false;
      Result<Bytes> kr = Status(StatusCode::kUnavailable, "pending");
      Status meta_status;
    };
    auto barrier = std::make_shared<Barrier>();
    services_.key->CreateKeyAsync(id, [barrier](Result<Bytes> result) {
      barrier->kr = std::move(result);
      barrier->key_done = true;
    });
    services_.meta->BindFileAsync(
        id, dir_id, name, /*is_rename=*/false,
        [barrier](Result<Bytes> result) {
          barrier->meta_status = result.status();
          barrier->meta_done = true;
        });
    queue()->RunUntilFlag(&barrier->key_done);
    queue()->RunUntilFlag(&barrier->meta_done);
    if (!barrier->kr.ok()) {
      return barrier->kr.status();
    }
    KP_RETURN_IF_ERROR(barrier->meta_status);
    header->key_blob = WrapKey(*barrier->kr, kd, rng());
    CacheInsert(id, *barrier->kr);
    return kd;
  }

  // IBE mode (§3.4): lock the data key under the pathname identity; both
  // registrations proceed asynchronously; a 1 s grace key keeps the new
  // file usable meanwhile.
  std::string identity = IbeIdentityFor(dir_id, name, id);
  header->ibe_locked = true;
  header->key_blob = IbeLockBlob(identity, Tagged(kTagRawKd, kd));
  GraceInsert(id, kd);

  PendingCreate pending;
  pending.current_path = path;
  pending.dir_id = dir_id;
  pending.name = name;
  pending.kd = kd;
  pending.key_retries_left = config_.registration_retries;
  pending.meta_retries_left = config_.registration_retries;
  pending_[id] = std::move(pending);
  lock_paths_[id] = path;
  SendPendingKeyCreate(id);
  SendPendingMetaBind(id);
  return kd;
}

Result<Bytes> KeypadFs::UnlockDataKey(const std::string& path,
                                      const DirId& dir_id, FileHeader* header,
                                      bool* header_dirty) {
  if (!header->keypad_protected) {
    ++stats_.uncovered_ops;
    return EncFs::UnlockDataKey(path, dir_id, header, header_dirty);
  }
  const AuditId& id = header->audit_id;

  if (header->ibe_locked) {
    if (auto kd = GraceLookup(id)) {
      Charge(config_.costs.cache_hit);
      ++stats_.grace_hits;
      return *kd;
    }
    return BlockingUnlock(id, dir_id, PathBasename(path), header,
                          header_dirty);
  }

  // Feed the v2 successor table with the true access order — hits
  // included, since a learned transition must predict the *next* open, not
  // the next miss.
  prefetcher_.OnAccess(id);

  if (auto kr = cache_.Lookup(id)) {
    Charge(config_.costs.cache_hit);
    ++stats_.cache_hits;
    return UnwrapKey(*kr, header->key_blob);
  }
  KP_ASSIGN_OR_RETURN(Bytes kr, FetchRemoteKey(id, PathDirname(path)));
  return UnwrapKey(kr, header->key_blob);
}

Status KeypadFs::OnRenameFile(const std::string& from, const std::string& to,
                              const DirId& old_dir_id,
                              const DirId& new_dir_id,
                              const std::string& new_name, FileHeader* header,
                              bool* header_dirty) {
  if (!header->keypad_protected) {
    // Uncovered files have no remote bindings to update. Note: renaming an
    // uncovered file *into* a covered path does not retroactively protect
    // it; coverage is decided at creation (§3.6 discusses this risk).
    return Status::Ok();
  }
  const AuditId& id = header->audit_id;

  if (!config_.ibe_enabled) {
    ++stats_.metadata_blocking;
    auto result = services_.meta->BindFile(id, new_dir_id, new_name,
                                           /*is_rename=*/true);
    return result.status();
  }

  // IBE path (Fig. 3b): lock under the new identity, ship the binding
  // asynchronously, keep a 1 s grace key if the data key is available.
  Bytes tagged;
  auto pending_it = pending_.find(id);
  if (header->ibe_locked) {
    if (pending_it != pending_.end()) {
      tagged = Tagged(kTagRawKd, pending_it->second.kd);
    } else {
      // Locked with no in-memory state (e.g. remount): register the old
      // binding to unlock first, then re-lock below.
      bool dirty = false;
      KP_ASSIGN_OR_RETURN(
          Bytes kd, BlockingUnlock(id, old_dir_id, PathBasename(from), header,
                                   &dirty));
      (void)kd;
      if (header->ibe_locked) {
        // Creation lock whose remote key never materialized: keep K_D form.
        tagged = Tagged(kTagRawKd, kd);
      } else {
        tagged = Tagged(kTagWrapped, header->key_blob);
      }
    }
  } else {
    tagged = Tagged(kTagWrapped, header->key_blob);
    // Grace: the paper keeps reads/writes flowing while the registration is
    // in flight *if* the cleartext data key is cached; we can rebuild K_D
    // when K_R is cached.
    if (auto kr = cache_.Lookup(id)) {
      auto kd = UnwrapKey(*kr, header->key_blob);
      if (kd.ok()) {
        GraceInsert(id, *kd);
      }
    }
  }
  if (pending_it != pending_.end()) {
    GraceInsert(id, pending_it->second.kd);
    pending_it->second.current_path = to;
    pending_it->second.dir_id = new_dir_id;
    pending_it->second.name = new_name;
    pending_it->second.meta_done = false;
    pending_it->second.meta_retries_left = config_.registration_retries;
  }

  std::string identity = IbeIdentityFor(new_dir_id, new_name, id);
  header->key_blob = IbeLockBlob(identity, tagged);
  header->ibe_locked = true;
  *header_dirty = true;
  SecureZero(tagged);
  lock_paths_[id] = to;

  if (pending_it != pending_.end()) {
    // The pending machinery re-binds and completes.
    SendPendingMetaBind(id);
    return Status::Ok();
  }
  ++stats_.metadata_async;
  services_.meta->BindFileAsync(
      id, new_dir_id, new_name, /*is_rename=*/true,
      [this, id, identity](Result<Bytes> result) {
        if (!result.ok()) {
          return;  // The file stays locked; a blocking access recovers.
        }
        BackgroundUnlock(id, identity, *result);
      });
  return Status::Ok();
}

Status KeypadFs::OnMkdir(const std::string& /*path*/, const DirId& dir_id,
                         const DirId& parent_id, const std::string& name) {
  // Directory registrations are always blocking in the prototype (Fig. 6b:
  // mkdir gains nothing from IBE).
  ++stats_.metadata_blocking;
  return services_.meta->Mkdir(dir_id, parent_id, name);
}

Status KeypadFs::OnRenameDir(const DirId& dir_id, const DirId& new_parent_id,
                             const std::string& new_name) {
  ++stats_.metadata_blocking;
  return services_.meta->RenameDir(dir_id, new_parent_id, new_name);
}

Status KeypadFs::OnUnlink(const std::string& /*path*/,
                          const FileHeader& header) {
  if (header.keypad_protected) {
    const AuditId& id = header.audit_id;
    GraceErase(id);
    cache_.Erase(id);
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      SecureZero(it->second.kd);
      pending_.erase(it);
    }
    lock_paths_.erase(id);
    if (config_.destroy_keys_on_unlink) {
      // Assured delete (§7's Ephemerizer/Vanish lineage): without the
      // remote key, any surviving copy of the ciphertext is noise.
      services_.key->DestroyKeyAsync(id, [](Status) {
        // Best-effort; the local unlink proceeds regardless.
      });
    }
  }
  return Status::Ok();
}

}  // namespace keypad
