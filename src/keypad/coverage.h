// Coverage-policy helpers for partial protection (§3.6).
//
// "One reasonable protection policy is to track accesses to any file in
// crucial directories, such as the user's home and temporary directory
// (e.g., /home and /tmp on Linux)." These helpers build such predicates
// for KeypadConfig::coverage.

#ifndef SRC_KEYPAD_COVERAGE_H_
#define SRC_KEYPAD_COVERAGE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/util/strings.h"

namespace keypad {

using CoveragePolicy = std::function<bool(const std::string&)>;

// Protects everything under any of the given directory prefixes.
inline CoveragePolicy CoverDirectories(std::vector<std::string> prefixes) {
  return [prefixes = std::move(prefixes)](const std::string& path) {
    for (const auto& prefix : prefixes) {
      if (PathIsWithin(path, prefix)) {
        return true;
      }
    }
    return false;
  };
}

// The paper's suggested default: home and temporary directories.
inline CoveragePolicy CoverHomeAndTmp() {
  return CoverDirectories({"/home", "/tmp"});
}

// Protects everything except the given directories (e.g. exclude binaries,
// libraries, and configuration: "/usr", "/lib", "/etc").
inline CoveragePolicy CoverAllExcept(std::vector<std::string> excluded) {
  return [excluded = std::move(excluded)](const std::string& path) {
    for (const auto& prefix : excluded) {
      if (PathIsWithin(path, prefix)) {
        return false;
      }
    }
    return true;
  };
}

// Protects files whose name carries one of the given extensions (".pdf",
// ".xls", ...) anywhere in the volume — a content-type-driven policy.
inline CoveragePolicy CoverExtensions(std::vector<std::string> extensions) {
  return [extensions = std::move(extensions)](const std::string& path) {
    for (const auto& ext : extensions) {
      if (EndsWith(path, ext)) {
        return true;
      }
    }
    return false;
  };
}

}  // namespace keypad

#endif  // SRC_KEYPAD_COVERAGE_H_
