// Keypad client configuration and cost model.
//
// Cost constants come from the paper's component measurements (Fig. 6):
//  * key-cache hit adds ~0.01 ms over base EncFS ("a file read with a
//    cached key is only 0.01 ms slower than the base EncFS read");
//  * a key-cache miss adds Keypad client+server processing of ~0.5 ms
//    (XML-RPC marshalling) plus the network RTT — the marshalling charge
//    lives in RpcOptions::client_overhead and the RPC server's
//    service_time;
//  * IBE locking costs ~25.3 ms of client CPU (Fig. 6b's "25.299" label),
//    which is why IBE only pays off when RTT > ~25 ms (Fig. 8a crossover).

#ifndef SRC_KEYPAD_CONFIG_H_
#define SRC_KEYPAD_CONFIG_H_

#include <functional>
#include <string>

#include "src/rpc/brownout.h"
#include "src/sim/time.h"

namespace keypad {

struct KeypadCostModel {
  // Cache lookup + data-key unwrap on a hit.
  SimDuration cache_hit = SimDuration::Micros(10);
  // Client-side IBE encryption of the key blob (lock).
  SimDuration ibe_lock = SimDuration::FromMillisF(25.299);
  // Background IBE decryption + header rewrite (unlock).
  SimDuration ibe_unlock = SimDuration::FromMillisF(12.0);
  // Header rewrite (clearing a lock, installing a wrapped key).
  SimDuration header_rewrite = SimDuration::Micros(200);
};

struct PrefetchPolicy {
  enum class Kind {
    kNone,
    // Prefetch `random_count` random same-directory keys on every miss.
    kRandomFromDir,
    // Prefetch the whole directory's keys on the Nth miss in that
    // directory (the prototype's default, N = 3).
    kFullDirOnNthMiss,
    // Prefetcher v2 (DESIGN.md §13): a per-device Markov successor table
    // learned from the access stream. On a miss, emit the successors that
    // historically followed the missed file — but only once a transition
    // has been seen `seq_confidence` times, so cold or random workloads
    // prefetch nothing instead of spraying false positives into the
    // forensic report.
    kSequenceHints,
  };
  Kind kind = Kind::kFullDirOnNthMiss;
  int nth_miss = 3;
  int random_count = 4;
  // Cap on the per-directory miss table: only the most recently missed
  // `max_tracked_dirs` directories keep counters (LRU eviction), so a
  // workload walking millions of directories can't grow client memory
  // without bound. An evicted directory just starts counting from zero
  // again. <= 0 means unlimited (the historical behavior).
  int max_tracked_dirs = 4096;
  // kSequenceHints knobs: a successor is emitted only after its transition
  // was observed `seq_confidence` times; at most `seq_fanout` successors
  // ride one miss; the learning table keeps the `max_tracked_files` most
  // recently accessed predecessors (LRU, same unbounded-memory guard as
  // the directory table).
  int seq_confidence = 3;
  int seq_fanout = 4;
  int max_tracked_files = 8192;

  static PrefetchPolicy None() { return {Kind::kNone, 0, 0}; }
  static PrefetchPolicy RandomFromDir(int count = 4) {
    return {Kind::kRandomFromDir, 0, count};
  }
  static PrefetchPolicy FullDirOnNthMiss(int n = 3) {
    return {Kind::kFullDirOnNthMiss, n, 0};
  }
  static PrefetchPolicy SequenceHints(int confidence = 3, int fanout = 4) {
    PrefetchPolicy p;
    p.kind = Kind::kSequenceHints;
    p.seq_confidence = confidence;
    p.seq_fanout = fanout;
    return p;
  }
};

struct KeypadConfig {
  // Key-cache expiration time Texp (paper default for evaluation: 100 s).
  SimDuration texp = SimDuration::Seconds(100);
  // Grace window for files with in-flight metadata updates (paper: 1 s).
  SimDuration grace = SimDuration::Seconds(1);
  PrefetchPolicy prefetch = PrefetchPolicy::FullDirOnNthMiss(3);
  bool ibe_enabled = true;
  // Partial coverage (§3.6): nullptr means every file is protected;
  // otherwise only paths for which this returns true are audited.
  std::function<bool(const std::string&)> coverage;
  KeypadCostModel costs;
  // Retries for lost asynchronous registrations.
  int registration_retries = 3;
  SimDuration retry_backoff = SimDuration::Seconds(5);
  // Assured delete: destroy the remote key when a file is unlinked, making
  // any lingering ciphertext (backups, disk images) permanently
  // unreadable. Off by default — it also removes the *owner's* ability to
  // recover the file, and the key's audit history loses its subject.
  bool destroy_keys_on_unlink = false;
  // Optional brownout controller (DESIGN.md §14), shared with the
  // device's ShardRouter. While the key tier signals overload the client
  // drops speculative prefetch fanout, and — only if explicitly enabled,
  // with the added exposure key-seconds accounted against the Fig. 11
  // integral — stretches cache lifetimes. Borrowed pointer; the
  // deployment owns the controller.
  BrownoutController* brownout = nullptr;
};

}  // namespace keypad

#endif  // SRC_KEYPAD_CONFIG_H_
