#include "src/keypad/prefetcher.h"

#include <algorithm>

namespace keypad {

int& Prefetcher::TouchDir(const std::string& dir_path) {
  auto it = miss_counts_.find(dir_path);
  if (it != miss_counts_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.count;
  }
  if (policy_.max_tracked_dirs > 0 &&
      miss_counts_.size() >= static_cast<size_t>(policy_.max_tracked_dirs)) {
    // Forget the coldest directory; if it gets scanned again it simply
    // re-counts from zero (a slightly later prefetch trigger, never a
    // missed audit record).
    miss_counts_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(dir_path);
  DirMisses& entry = miss_counts_[dir_path];
  entry.lru_it = lru_.begin();
  return entry.count;
}

std::vector<AuditId> Prefetcher::OnMiss(
    const std::string& dir_path, const AuditId& missed_id,
    const std::function<std::vector<AuditId>()>& list_siblings) {
  std::vector<AuditId> out;
  switch (policy_.kind) {
    case PrefetchPolicy::Kind::kNone:
      return out;

    case PrefetchPolicy::Kind::kRandomFromDir: {
      std::vector<AuditId> siblings = list_siblings();
      siblings.erase(std::remove(siblings.begin(), siblings.end(), missed_id),
                     siblings.end());
      rng_.Shuffle(siblings);
      size_t take = std::min<size_t>(
          siblings.size(), static_cast<size_t>(policy_.random_count));
      out.assign(siblings.begin(), siblings.begin() + static_cast<long>(take));
      break;
    }

    case PrefetchPolicy::Kind::kFullDirOnNthMiss: {
      int& count = TouchDir(dir_path);
      ++count;
      if (count < policy_.nth_miss) {
        return out;
      }
      count = 0;  // Re-arm: a later scan of the same dir re-triggers.
      out = list_siblings();
      out.erase(std::remove(out.begin(), out.end(), missed_id), out.end());
      break;
    }
  }
  if (!out.empty()) {
    ++prefetch_batches_;
    keys_prefetched_ += out.size();
  }
  return out;
}

}  // namespace keypad
