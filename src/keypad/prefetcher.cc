#include "src/keypad/prefetcher.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace keypad {

PrefetchPolicy ApplyPrefetchPolicyEnv(PrefetchPolicy configured) {
  const char* env = std::getenv("KEYPAD_PREFETCH");
  if (env == nullptr || *env == '\0') {
    return configured;
  }
  std::string value(env);
  for (char& c : value) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "none" || value == "off" || value == "0") {
    return PrefetchPolicy::None();
  }
  if (value == "random") {
    return PrefetchPolicy::RandomFromDir();
  }
  if (value == "fulldir") {
    return PrefetchPolicy::FullDirOnNthMiss();
  }
  if (value == "seq" || value == "sequence" || value == "v2") {
    return PrefetchPolicy::SequenceHints();
  }
  return configured;
}

int& Prefetcher::TouchDir(const std::string& dir_path) {
  auto it = miss_counts_.find(dir_path);
  if (it != miss_counts_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.count;
  }
  if (policy_.max_tracked_dirs > 0 &&
      miss_counts_.size() >= static_cast<size_t>(policy_.max_tracked_dirs)) {
    // Forget the coldest directory; if it gets scanned again it simply
    // re-counts from zero (a slightly later prefetch trigger, never a
    // missed audit record).
    miss_counts_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(dir_path);
  DirMisses& entry = miss_counts_[dir_path];
  entry.lru_it = lru_.begin();
  return entry.count;
}

Prefetcher::Successors& Prefetcher::TouchFile(const AuditId& id) {
  auto it = successors_.find(id);
  if (it != successors_.end()) {
    seq_lru_.splice(seq_lru_.begin(), seq_lru_, it->second.lru_it);
    return it->second;
  }
  if (policy_.max_tracked_files > 0 &&
      successors_.size() >= static_cast<size_t>(policy_.max_tracked_files)) {
    // Forget the coldest predecessor: its transitions re-learn from zero
    // if the pattern comes back (a delayed prefetch, never a missed audit
    // record).
    successors_.erase(seq_lru_.back());
    seq_lru_.pop_back();
  }
  seq_lru_.push_front(id);
  Successors& entry = successors_[id];
  entry.lru_it = seq_lru_.begin();
  return entry;
}

void Prefetcher::OnAccess(const AuditId& id) {
  if (policy_.kind != PrefetchPolicy::Kind::kSequenceHints) {
    return;
  }
  if (has_prev_ && !(prev_ == id)) {
    Successors& entry = TouchFile(prev_);
    auto hit = std::find_if(entry.counts.begin(), entry.counts.end(),
                            [&id](const std::pair<AuditId, int>& s) {
                              return s.first == id;
                            });
    if (hit != entry.counts.end()) {
      ++hit->second;
      // Keep the list ordered most-hit first so emission and eviction are
      // both one pass.
      while (hit != entry.counts.begin() &&
             hit->second > std::prev(hit)->second) {
        std::iter_swap(hit, std::prev(hit));
        --hit;
      }
    } else {
      size_t cap = static_cast<size_t>(std::max(policy_.seq_fanout, 1)) * 2;
      if (entry.counts.size() < cap) {
        entry.counts.emplace_back(id, 1);
      } else if (entry.counts.back().second <= 1) {
        // Replace the weakest follower; established transitions survive
        // churn from one-off accesses.
        entry.counts.back() = {id, 1};
      }
    }
  }
  prev_ = id;
  has_prev_ = true;
}

std::vector<AuditId> Prefetcher::OnMiss(
    const std::string& dir_path, const AuditId& missed_id,
    const std::function<std::vector<AuditId>()>& list_siblings) {
  std::vector<AuditId> out;
  switch (policy_.kind) {
    case PrefetchPolicy::Kind::kNone:
      return out;

    case PrefetchPolicy::Kind::kRandomFromDir: {
      std::vector<AuditId> siblings = list_siblings();
      siblings.erase(std::remove(siblings.begin(), siblings.end(), missed_id),
                     siblings.end());
      rng_.Shuffle(siblings);
      size_t take = std::min<size_t>(
          siblings.size(), static_cast<size_t>(policy_.random_count));
      out.assign(siblings.begin(), siblings.begin() + static_cast<long>(take));
      break;
    }

    case PrefetchPolicy::Kind::kFullDirOnNthMiss: {
      int& count = TouchDir(dir_path);
      ++count;
      if (count < policy_.nth_miss) {
        return out;
      }
      count = 0;  // Re-arm: a later scan of the same dir re-triggers.
      out = list_siblings();
      out.erase(std::remove(out.begin(), out.end(), missed_id), out.end());
      break;
    }

    case PrefetchPolicy::Kind::kSequenceHints: {
      auto it = successors_.find(missed_id);
      if (it == successors_.end()) {
        return out;
      }
      // counts is ordered most-hit first; take the confident prefix.
      for (const auto& [succ, count] : it->second.counts) {
        if (count < policy_.seq_confidence ||
            out.size() >= static_cast<size_t>(std::max(policy_.seq_fanout,
                                                       0))) {
          break;
        }
        if (succ == missed_id) {
          continue;
        }
        out.push_back(succ);
      }
      break;
    }
  }
  if (!out.empty()) {
    ++prefetch_batches_;
    keys_prefetched_ += out.size();
  }
  return out;
}

}  // namespace keypad
