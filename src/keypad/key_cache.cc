#include "src/keypad/key_cache.h"

namespace keypad {

KeyCache::KeyCache(EventQueue* queue, SimDuration texp)
    : queue_(queue),
      texp_(texp),
      integral_reset_time_(queue->Now()),
      last_change_(queue->Now()) {}

KeyCache::~KeyCache() {
  for (auto& [id, entry] : entries_) {
    queue_->Cancel(entry.expiry_event);
    SecureZero(entry.key);
  }
}

void KeyCache::Accumulate() {
  SimTime now = queue_->Now();
  size_time_integral_ +=
      static_cast<double>(entries_.size()) * (now - last_change_).seconds_f();
  last_change_ = now;
}

std::optional<Bytes> KeyCache::Lookup(const AuditId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  it->second.used_since_fetch = true;
  ++hits_;
  return it->second.key;
}

bool KeyCache::Contains(const AuditId& id) const {
  return entries_.find(id) != entries_.end();
}

void KeyCache::Insert(const AuditId& id, Bytes key) {
  Accumulate();
  ++insertions_;
  auto [it, inserted] = entries_.try_emplace(id);
  Entry& entry = it->second;
  if (!inserted) {
    queue_->Cancel(entry.expiry_event);
    SecureZero(entry.key);
  }
  entry.key = std::move(key);
  entry.expires_at = queue_->Now() + texp_;
  entry.used_since_fetch = false;
  entry.refreshing = false;
  entry.expiry_event =
      queue_->Schedule(entry.expires_at, [this, id] { OnExpiry(id); });
}

void KeyCache::OnExpiry(const AuditId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return;
  }
  Entry& entry = it->second;
  entry.expiry_event = EventQueue::kInvalidEvent;

  if (entry.used_since_fetch && refresh_ && !entry.refreshing) {
    // The key was in use during its lifetime: refresh it in the background
    // (the key service logs a kRefresh access). The key stays usable while
    // the refresh is in flight so in-use files never hiccup.
    entry.refreshing = true;
    entry.used_since_fetch = false;
    ++refreshes_started_;
    refresh_(id, [this, id](Result<Bytes> result) {
      auto it2 = entries_.find(id);
      if (it2 == entries_.end()) {
        return;  // Erased meanwhile (revocation, hibernation).
      }
      if (!result.ok()) {
        Erase(id);
        return;
      }
      Entry& e = it2->second;
      e.refreshing = false;
      SecureZero(e.key);
      e.key = std::move(*result);
      e.expires_at = queue_->Now() + texp_;
      queue_->Cancel(e.expiry_event);
      e.expiry_event =
          queue_->Schedule(e.expires_at, [this, id] { OnExpiry(id); });
    });
    return;
  }
  Erase(id);
}

void KeyCache::Erase(const AuditId& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return;
  }
  Accumulate();
  queue_->Cancel(it->second.expiry_event);
  SecureZero(it->second.key);
  entries_.erase(it);
}

std::vector<AuditId> KeyCache::Clear() {
  Accumulate();
  std::vector<AuditId> erased;
  erased.reserve(entries_.size());
  for (auto& [id, entry] : entries_) {
    queue_->Cancel(entry.expiry_event);
    SecureZero(entry.key);
    erased.push_back(id);
  }
  entries_.clear();
  return erased;
}

std::vector<AuditId> KeyCache::CurrentKeys() const {
  std::vector<AuditId> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    out.push_back(id);
  }
  return out;
}

double KeyCache::AverageSizeSince(SimTime since) const {
  SimTime start = since > integral_reset_time_ ? since : integral_reset_time_;
  SimTime now = queue_->Now();
  double window = (now - start).seconds_f();
  if (window <= 0) {
    return static_cast<double>(entries_.size());
  }
  // size_time_integral_ covers [integral_reset_time_, last_change_]; add the
  // tail at current size. For since > reset time this is an approximation
  // only if the caller reset stats later than `since`; benches reset first.
  double integral = size_time_integral_ +
                    static_cast<double>(entries_.size()) *
                        (now - last_change_).seconds_f();
  return integral / window;
}

void KeyCache::ResetStats() {
  hits_ = 0;
  insertions_ = 0;
  refreshes_started_ = 0;
  size_time_integral_ = 0;
  integral_reset_time_ = queue_->Now();
  last_change_ = queue_->Now();
}

}  // namespace keypad
