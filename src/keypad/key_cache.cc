#include "src/keypad/key_cache.h"

#include <algorithm>

namespace keypad {

KeyCache::KeyCache(EventQueue* queue, SimDuration texp)
    : queue_(queue),
      texp_(texp),
      integral_reset_time_(queue->Now()),
      last_change_(queue->Now()) {
  for (Shard& shard : shards_) {
    shard.slots.resize(kInitialSlots);
  }
}

KeyCache::~KeyCache() {
  for (Shard& shard : shards_) {
    queue_->Cancel(shard.sweep_event);
    for (Slot& slot : shard.slots) {
      if (slot.state == Slot::State::kFull) {
        SecureZero(slot.key);
      }
    }
  }
}

void KeyCache::Accumulate() {
  SimTime now = queue_->Now();
  size_time_integral_ +=
      static_cast<double>(size_) * (now - last_change_).seconds_f();
  last_change_ = now;
}

// --- Open-addressing machinery. ---------------------------------------------

KeyCache::Slot* KeyCache::Find(Shard& shard, const AuditId& id) {
  const size_t mask = shard.slots.size() - 1;
  // Low bits picked the shard; probe on the next ones.
  size_t i = (HashOf(id) >> 4) & mask;
  for (size_t step = 0; step < shard.slots.size(); ++step) {
    Slot& slot = shard.slots[i];
    if (slot.state == Slot::State::kEmpty) {
      return nullptr;
    }
    if (slot.state == Slot::State::kFull && slot.id == id) {
      return &slot;
    }
    i = (i + 1) & mask;
  }
  return nullptr;
}

const KeyCache::Slot* KeyCache::Find(const Shard& shard,
                                     const AuditId& id) const {
  return const_cast<KeyCache*>(this)->Find(const_cast<Shard&>(shard), id);
}

void KeyCache::Grow(Shard& shard) {
  std::vector<Slot> old = std::move(shard.slots);
  shard.slots.clear();
  shard.slots.resize(old.size() * 2);
  shard.occupied = shard.full;  // Tombstones die with the old table.
  const size_t mask = shard.slots.size() - 1;
  for (Slot& slot : old) {
    if (slot.state != Slot::State::kFull) {
      continue;
    }
    size_t i = (HashOf(slot.id) >> 4) & mask;
    while (shard.slots[i].state == Slot::State::kFull) {
      i = (i + 1) & mask;
    }
    shard.slots[i] = std::move(slot);
  }
}

KeyCache::Slot* KeyCache::InsertSlot(Shard& shard, const AuditId& id) {
  // Keep probe chains short: grow at 3/4 occupancy (tombstones included).
  if ((shard.occupied + 1) * 4 >= shard.slots.size() * 3) {
    Grow(shard);
  }
  const size_t mask = shard.slots.size() - 1;
  size_t i = (HashOf(id) >> 4) & mask;
  Slot* tombstone = nullptr;
  while (true) {
    Slot& slot = shard.slots[i];
    if (slot.state == Slot::State::kEmpty) {
      Slot* target = tombstone != nullptr ? tombstone : &slot;
      if (target == &slot) {
        ++shard.occupied;  // Tombstone reuse keeps the chain length.
      }
      target->state = Slot::State::kFull;
      target->id = id;
      ++shard.full;
      ++size_;
      return target;
    }
    if (slot.state == Slot::State::kTombstone && tombstone == nullptr) {
      tombstone = &slot;
    }
    i = (i + 1) & mask;
  }
}

void KeyCache::EraseSlot(Shard& shard, Slot& slot) {
  SecureZero(slot.key);
  slot.key.clear();
  slot.state = Slot::State::kTombstone;
  slot.used_since_fetch = false;
  slot.refreshing = false;
  --shard.full;
  --size_;
}

// --- Epoch sweeps. ----------------------------------------------------------

void KeyCache::ArmSweepIfEarlier(size_t shard_index, SimTime at) {
  Shard& shard = shards_[shard_index];
  if (shard.sweep_event != EventQueue::kInvalidEvent && shard.sweep_at <= at) {
    return;
  }
  queue_->Cancel(shard.sweep_event);
  shard.sweep_at = at;
  shard.sweep_event =
      queue_->Schedule(at, [this, shard_index] { Sweep(shard_index); });
}

void KeyCache::Sweep(size_t shard_index) {
  Shard& shard = shards_[shard_index];
  shard.sweep_event = EventQueue::kInvalidEvent;
  ++sweeps_;
  SimTime now = queue_->Now();

  // Two-phase: scan first, then act by id — a refresh fn that completes
  // synchronously may itself mutate (and rehash) the table.
  std::vector<AuditId> to_refresh;
  std::vector<AuditId> to_erase;
  for (const Slot& slot : shard.slots) {
    if (slot.state != Slot::State::kFull || slot.refreshing ||
        slot.expires_at > now) {
      continue;
    }
    if (slot.used_since_fetch && refresh_) {
      to_refresh.push_back(slot.id);
    } else {
      to_erase.push_back(slot.id);
    }
  }

  if (!to_erase.empty()) {
    Accumulate();
    for (const AuditId& id : to_erase) {
      if (Slot* slot = Find(shard, id)) {
        EraseSlot(shard, *slot);
        ++expired_swept_;
      }
    }
  }
  for (const AuditId& id : to_refresh) {
    Slot* slot = Find(shard, id);
    if (slot == nullptr || slot->refreshing) {
      continue;
    }
    // The key was in use during its lifetime: refresh it in the background
    // (the key service logs a kRefresh access). The key stays usable while
    // the refresh is in flight so in-use files never hiccup.
    slot->refreshing = true;
    slot->used_since_fetch = false;
    ++refreshes_started_;
    refresh_(id, [this, id, shard_index](Result<Bytes> result) {
      Shard& s = shards_[shard_index];
      Slot* refreshed = Find(s, id);
      if (refreshed == nullptr) {
        return;  // Erased meanwhile (revocation, hibernation).
      }
      if (!result.ok()) {
        Erase(id);
        return;
      }
      refreshed->refreshing = false;
      SecureZero(refreshed->key);
      refreshed->key = std::move(*result);
      refreshed->expires_at = queue_->Now() + texp_;
      ArmSweepIfEarlier(shard_index, refreshed->expires_at);
    });
  }

  // Re-arm at the next-earliest live entry (refreshing slots re-arm
  // themselves when their fetch lands).
  bool found = false;
  SimTime next;
  for (const Slot& slot : shard.slots) {
    if (slot.state != Slot::State::kFull || slot.refreshing) {
      continue;
    }
    if (!found || slot.expires_at < next) {
      found = true;
      next = slot.expires_at;
    }
  }
  if (found) {
    ArmSweepIfEarlier(shard_index, next);
  }
}

// --- Public surface. --------------------------------------------------------

std::optional<Bytes> KeyCache::Lookup(const AuditId& id) {
  Slot* slot = Find(ShardFor(id), id);
  if (slot == nullptr) {
    ++misses_;
    return std::nullopt;
  }
  slot->used_since_fetch = true;
  ++hits_;
  return slot->key;
}

bool KeyCache::Contains(const AuditId& id) const {
  return Find(ShardFor(id), id) != nullptr;
}

void KeyCache::Insert(const AuditId& id, Bytes key) {
  Insert(id, std::move(key), texp_);
}

void KeyCache::Insert(const AuditId& id, Bytes key, SimDuration lifetime) {
  Accumulate();
  ++insertions_;
  size_t shard_index = HashOf(id) % kShardCount;
  Shard& shard = shards_[shard_index];
  Slot* slot = Find(shard, id);
  if (slot != nullptr) {
    SecureZero(slot->key);
  } else {
    slot = InsertSlot(shard, id);
  }
  slot->key = std::move(key);
  slot->expires_at = queue_->Now() + lifetime;
  slot->used_since_fetch = false;
  slot->refreshing = false;
  ArmSweepIfEarlier(shard_index, slot->expires_at);
}

void KeyCache::Erase(const AuditId& id) {
  Shard& shard = ShardFor(id);
  Slot* slot = Find(shard, id);
  if (slot == nullptr) {
    return;
  }
  Accumulate();
  EraseSlot(shard, *slot);
  // An armed sweep aimed at this entry just wakes spuriously and re-arms.
}

std::vector<AuditId> KeyCache::Clear() {
  Accumulate();
  std::vector<AuditId> erased;
  erased.reserve(size_);
  for (Shard& shard : shards_) {
    queue_->Cancel(shard.sweep_event);
    shard.sweep_event = EventQueue::kInvalidEvent;
    for (Slot& slot : shard.slots) {
      if (slot.state == Slot::State::kFull) {
        SecureZero(slot.key);
        erased.push_back(slot.id);
      }
      slot = Slot();
    }
    shard.full = 0;
    shard.occupied = 0;
  }
  size_ = 0;
  // Callers (and the old map-based cache) see ids in ascending order.
  std::sort(erased.begin(), erased.end());
  return erased;
}

std::vector<AuditId> KeyCache::CurrentKeys() const {
  std::vector<AuditId> out;
  out.reserve(size_);
  for (const Shard& shard : shards_) {
    for (const Slot& slot : shard.slots) {
      if (slot.state == Slot::State::kFull) {
        out.push_back(slot.id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

double KeyCache::AverageSizeSince(SimTime since) const {
  SimTime start = since > integral_reset_time_ ? since : integral_reset_time_;
  SimTime now = queue_->Now();
  double window = (now - start).seconds_f();
  if (window <= 0) {
    return static_cast<double>(size_);
  }
  // size_time_integral_ covers [integral_reset_time_, last_change_]; add the
  // tail at current size. For since > reset time this is an approximation
  // only if the caller reset stats later than `since`; benches reset first.
  double integral =
      size_time_integral_ +
      static_cast<double>(size_) * (now - last_change_).seconds_f();
  return integral / window;
}

void KeyCache::ResetStats() {
  hits_ = 0;
  misses_ = 0;
  insertions_ = 0;
  refreshes_started_ = 0;
  sweeps_ = 0;
  expired_swept_ = 0;
  size_time_integral_ = 0;
  integral_reset_time_ = queue_->Now();
  last_change_ = queue_->Now();
}

}  // namespace keypad
