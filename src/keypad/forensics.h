// Post-loss forensic analysis (§2 goals, §5.2 evaluation; the paper ships a
// Python tool with the same role: "given a Tloss timestamp and an
// expiration time Texp, the tool reconstructs a full-fidelity audit report
// of all accesses after Tloss − Texp, including full path names and access
// timestamps").
//
// The auditor verifies both services' hash chains, gathers every key-service
// record with access time after the cutoff Tloss − Texp, resolves each
// audit ID to its latest *trusted* pathname (metadata as of Tloss) plus any
// post-loss bindings a thief registered, and classifies entries. The report
// is conservative by construction: it never misses a compromised file (zero
// false negatives), at the price of prefetch-induced false positives, which
// it can quantify when given ground truth.

#ifndef SRC_KEYPAD_FORENSICS_H_
#define SRC_KEYPAD_FORENSICS_H_

#include <set>
#include <string>
#include <vector>

#include "src/keyservice/key_service.h"
#include "src/rpc/rpc.h"
#include "src/metaservice/metadata_service.h"
#include "src/util/ids.h"

namespace keypad {

struct AuditedAccess {
  SimTime when;
  AccessOp op;
};

struct AuditReportEntry {
  AuditId audit_id;
  // Latest pathname registered before Tloss (what the user knew the file
  // as). Empty if the file was created post-loss or never bound.
  std::string path_at_loss;
  // Pathnames registered after Tloss (e.g. by a thief unlocking files, or
  // bogus bindings). Chronological.
  std::vector<std::string> post_loss_paths;
  std::vector<AuditedAccess> accesses;
  // True if every access in the window was a prefetch — a candidate false
  // positive (§5.2).
  bool prefetch_only = false;
  // True if at least one access happened strictly after Tloss (as opposed
  // to only inside the [Tloss − Texp, Tloss] cache-exposure window).
  bool accessed_after_loss = false;
};

struct AuditReport {
  SimTime t_loss;
  SimTime cutoff;  // t_loss − texp.
  // Files the owner must consider compromised, most recent access first.
  std::vector<AuditReportEntry> compromised;
  // Subset sizes for quick reading.
  size_t demand_accessed_count = 0;
  size_t prefetch_only_count = 0;
  // Attempts blocked by revocation (kDenied records after Tloss).
  size_t denied_attempts = 0;
  // Log-chain verification results.
  bool key_log_verified = false;
  bool metadata_log_verified = false;

  bool Compromised(const AuditId& id) const;
  std::string ToString() const;
};

class ForensicAuditor {
 public:
  ForensicAuditor(const KeyService* key_service,
                  const MetadataService* metadata_service)
      : key_service_(key_service), metadata_service_(metadata_service) {}

  // Builds the post-loss report for `device_id`. `texp` must be the Texp
  // the device was configured with (the owner/IT department knows it).
  Result<AuditReport> BuildReport(const std::string& device_id, SimTime t_loss,
                                  SimDuration texp) const;

 private:
  const KeyService* key_service_;
  const MetadataService* metadata_service_;
};

// The same report, built remotely over the services' audit RPC surface —
// how Bob's "web service provided by his drive manufacturer" (§2) or an IT
// console actually reads the logs. The services verify their own hash
// chains before serving audit data (they are the trusted parties).
class RemoteAuditor {
 public:
  RemoteAuditor(RpcClient* key_rpc, RpcClient* meta_rpc,
                std::string device_id, Bytes key_secret, Bytes meta_secret)
      : key_rpc_(key_rpc),
        meta_rpc_(meta_rpc),
        device_id_(std::move(device_id)),
        key_secret_(std::move(key_secret)),
        meta_secret_(std::move(meta_secret)) {}

  Result<AuditReport> BuildReport(SimTime t_loss, SimDuration texp) const;

 private:
  RpcClient* key_rpc_;
  RpcClient* meta_rpc_;
  std::string device_id_;
  Bytes key_secret_;
  Bytes meta_secret_;
};

}  // namespace keypad

#endif  // SRC_KEYPAD_FORENSICS_H_
