// Post-loss forensic analysis (§2 goals, §5.2 evaluation; the paper ships a
// Python tool with the same role: "given a Tloss timestamp and an
// expiration time Texp, the tool reconstructs a full-fidelity audit report
// of all accesses after Tloss − Texp, including full path names and access
// timestamps").
//
// The auditor verifies both services' hash chains, gathers every key-service
// record with access time after the cutoff Tloss − Texp, resolves each
// audit ID to its latest *trusted* pathname (metadata as of Tloss) plus any
// post-loss bindings a thief registered, and classifies entries. The report
// is conservative by construction: it never misses a compromised file (zero
// false negatives), at the price of prefetch-induced false positives, which
// it can quantify when given ground truth.

#ifndef SRC_KEYPAD_FORENSICS_H_
#define SRC_KEYPAD_FORENSICS_H_

#include <set>
#include <string>
#include <vector>

#include "src/auditlog/checkpoint.h"
#include "src/keyservice/key_service.h"
#include "src/keyservice/replica_set.h"
#include "src/rpc/rpc.h"
#include "src/metaservice/meta_replica_set.h"
#include "src/metaservice/metadata_service.h"
#include "src/util/ids.h"

namespace keypad {

struct AuditedAccess {
  SimTime when;
  AccessOp op;
};

struct AuditReportEntry {
  AuditId audit_id;
  // Latest pathname registered before Tloss (what the user knew the file
  // as). Empty if the file was created post-loss or never bound.
  std::string path_at_loss;
  // Pathnames registered after Tloss (e.g. by a thief unlocking files, or
  // bogus bindings). Chronological.
  std::vector<std::string> post_loss_paths;
  std::vector<AuditedAccess> accesses;
  // True if every access in the window was a prefetch — a candidate false
  // positive (§5.2).
  bool prefetch_only = false;
  // True if at least one access happened strictly after Tloss (as opposed
  // to only inside the [Tloss − Texp, Tloss] cache-exposure window).
  bool accessed_after_loss = false;
};

struct AuditReport {
  SimTime t_loss;
  SimTime cutoff;  // t_loss − texp.
  // Files the owner must consider compromised, most recent access first.
  std::vector<AuditReportEntry> compromised;
  // Subset sizes for quick reading.
  size_t demand_accessed_count = 0;
  size_t prefetch_only_count = 0;
  // Attempts blocked by revocation (kDenied records after Tloss).
  size_t denied_attempts = 0;
  // Log-chain verification results.
  bool key_log_verified = false;
  bool metadata_log_verified = false;
  // Replicated tiers (DESIGN.md §9–§10): true iff every live replica's
  // chain verified — key and metadata alike — not just the authoritative
  // ones.
  bool replica_logs_verified = true;
  // Entries orphaned by failover reconciliation (either tier) whose logical
  // row (device, audit id, op, client time — plus the namespace fields for
  // metadata records) the authoritative chain also carries: harmless
  // duplication — the invariant is duplicated, not lost.
  size_t duplicate_records = 0;
  // Orphaned entries with no authoritative counterpart. Key-tier ones are
  // folded into the report conservatively (a client-acknowledged access is
  // never dropped just because its chain lost the leadership contest).
  size_t orphaned_records = 0;

  bool Compromised(const AuditId& id) const;
  std::string ToString() const;
};

class ForensicAuditor {
 public:
  ForensicAuditor(const KeyService* key_service,
                  const MetadataService* metadata_service)
      : ForensicAuditor(std::vector<const KeyService*>{key_service},
                        metadata_service) {}

  // Sharded key tier (DESIGN.md §8): the auditor reads every shard's log —
  // each chain verifies independently, and the per-device records merge by
  // service timestamp into one timeline.
  ForensicAuditor(std::vector<const KeyService*> key_services,
                  const MetadataService* metadata_service)
      : key_services_(std::move(key_services)),
        metadata_service_(metadata_service) {}

  // Replicated key tier: one ReplicaSet per shard (nullptr entries mean
  // that shard is unreplicated). The auditor then verifies every replica
  // chain, reads records from each shard's *current leader* (the replica-0
  // view may be stale after a failover), and enumerates the entries
  // reconciliation orphaned as duplicated-or-surfaced.
  void AttachReplicaSets(std::vector<const ReplicaSet*> replica_sets) {
    replica_sets_ = std::move(replica_sets);
  }

  // Replicated metadata tier (DESIGN.md §10): the auditor verifies every
  // metadata replica's chain, resolves paths against the *current leader*
  // (the replica-0 view may be stale after a failover), and classifies the
  // namespace records reconciliation orphaned as duplicated-or-surfaced —
  // exactly as it does key-audit entries.
  void AttachMetaReplicaSet(const MetaReplicaSet* set) {
    meta_replica_set_ = set;
  }

  // Builds the post-loss report for `device_id`. `texp` must be the Texp
  // the device was configured with (the owner/IT department knows it).
  Result<AuditReport> BuildReport(const std::string& device_id, SimTime t_loss,
                                  SimDuration texp) const;

 private:
  // The shard's authoritative service: its replica set's current leader
  // when attached, the historical single instance otherwise.
  const KeyService* Authority(size_t shard) const;
  // Same for the metadata tier.
  const MetadataService* MetaAuthority() const;

  std::vector<const KeyService*> key_services_;
  const MetadataService* metadata_service_;
  std::vector<const ReplicaSet*> replica_sets_;
  const MetaReplicaSet* meta_replica_set_ = nullptr;
};

// The same report, built remotely over the services' audit RPC surface —
// how Bob's "web service provided by his drive manufacturer" (§2) or an IT
// console actually reads the logs. The services verify their own hash
// chains before serving audit data (they are the trusted parties).
class RemoteAuditor {
 public:
  RemoteAuditor(RpcClient* key_rpc, RpcClient* meta_rpc,
                std::string device_id, Bytes key_secret, Bytes meta_secret)
      : RemoteAuditor(std::vector<RpcClient*>{key_rpc}, meta_rpc,
                      std::move(device_id), std::move(key_secret),
                      std::move(meta_secret)) {}

  // Sharded key tier: one RPC stub per shard. Audits are incremental — the
  // auditor keeps a per-shard sequence cursor and each BuildReport pulls
  // only the log suffix appended since the last audit (audit.key_log_tail),
  // so the console's nightly audit is O(new entries), not O(log).
  RemoteAuditor(std::vector<RpcClient*> key_rpcs, RpcClient* meta_rpc,
                std::string device_id, Bytes key_secret, Bytes meta_secret)
      : key_rpcs_(std::move(key_rpcs)),
        meta_rpc_(meta_rpc),
        device_id_(std::move(device_id)),
        key_secret_(std::move(key_secret)),
        meta_secret_(std::move(meta_secret)),
        cursors_(key_rpcs_.size(), 0),
        epochs_(key_rpcs_.size(), 0),
        shard_cached_(key_rpcs_.size()),
        ckpt_counts_(key_rpcs_.size(), 0),
        ckpt_hashes_(key_rpcs_.size()) {}

  // Non-const: advances the per-shard cursors and extends the cached
  // per-device timeline.
  Result<AuditReport> BuildReport(SimTime t_loss, SimDuration texp);

  // Checkpoint-anchored catch-up (DESIGN.md §15): fetches each tier's
  // signed checkpoint chain, verifies hashes and signatures client-side,
  // and fast-forwards the cursors to the latest checkpoint — the sealed
  // prefix is vouched for by the signatures, so a fresh auditor's first
  // pull is O(tail since last checkpoint) instead of O(log from genesis).
  // Entries before the cursor are not cached locally; forensic replay of
  // the sealed prefix goes through audit.*_log_segment instead.
  Status CatchUpFromCheckpoints();

  // Test hooks: where each shard's cursor stands and how much of the
  // device's timeline is cached locally.
  uint64_t cursor(size_t shard = 0) const { return cursors_[shard]; }
  // The metadata tier's incremental cursor (audit.meta_log_tail).
  uint64_t meta_cursor() const { return meta_cursor_; }
  size_t meta_cached_entries() const { return meta_cached_.size(); }
  size_t cached_entries() const {
    size_t total = 0;
    for (const auto& shard : shard_cached_) {
      total += shard.size();
    }
    return total;
  }
  // Cursor-resync forensics: how often a log (key shard or metadata tier)
  // came back *behind* the cursor (restore from an older snapshot /
  // failover to a shorter chain), how many previously-fetched rows the
  // resynced log no longer carries (kept locally as evidence), and
  // overlapping rows whose bytes changed.
  uint64_t resyncs() const { return resyncs_; }
  uint64_t regressed_entries() const { return regressed_entries_; }
  uint64_t overlap_mismatches() const { return overlap_mismatches_; }
  // Apparent regressions proven benign by checkpoint comparison (service
  // restart or prefix truncation of the *same* chain — no resync needed).
  uint64_t benign_restarts() const { return benign_restarts_; }
  // Total log rows pulled over the audit RPC surface (bench: checkpoint
  // catch-up vs genesis replay).
  uint64_t entries_fetched() const { return entries_fetched_; }

 private:
  // Re-reads shard's log from sequence 0 after detecting regression, and
  // reconciles it against what this auditor had already fetched.
  Status Resync(size_t shard, uint64_t server_epoch);
  // Same for the metadata tier's log.
  Status MetaResync(uint64_t server_epoch);
  // Advances the metadata cursor by one audit.meta_log_tail round,
  // detecting restore-from-older-snapshot regressions.
  Status PullMetaTail();

  // Fetches and chain-verifies one tier's signed checkpoint list.
  Result<std::vector<LogCheckpoint>> FetchCheckpoints(RpcClient* rpc,
                                                      const char* method,
                                                      const Bytes& secret);
  // Whether the server's (verified) checkpoint chain extends the prefix
  // this auditor recorded — the satellite fix: cursor regressions are
  // disambiguated by checkpoint id/hash, never by raw sequence alone, so a
  // truncating restart of the same chain is not mistaken for a
  // restore-from-older-snapshot.
  bool CheckpointsExtendRecorded(RpcClient* rpc, const char* method,
                                 const Bytes& secret, uint64_t recorded_count,
                                 const Bytes& recorded_hash);

  std::vector<RpcClient*> key_rpcs_;
  RpcClient* meta_rpc_;
  std::string device_id_;
  Bytes key_secret_;
  Bytes meta_secret_;
  // Per-shard "next unseen sequence number" cursors, the service restore
  // epoch last seen, and the accumulated device-filtered entries fetched so
  // far (kept per shard so a resync can re-verify just that shard's rows).
  std::vector<uint64_t> cursors_;
  std::vector<uint64_t> epochs_;
  std::vector<std::vector<AuditLogEntry>> shard_cached_;
  // Metadata-tier cursor state: same incremental-plus-resync protocol over
  // audit.meta_log_tail. The cached rows are retained as evidence (the
  // report itself resolves paths over the live audit RPCs).
  uint64_t meta_cursor_ = 0;
  uint64_t meta_epoch_ = 0;
  std::vector<MetadataRecord> meta_cached_;
  uint64_t resyncs_ = 0;
  uint64_t regressed_entries_ = 0;
  uint64_t overlap_mismatches_ = 0;
  // Checkpoint fingerprint last seen per key shard (count + latest hash)
  // and for the metadata tier, for regression disambiguation.
  std::vector<uint64_t> ckpt_counts_;
  std::vector<Bytes> ckpt_hashes_;
  uint64_t meta_ckpt_count_ = 0;
  Bytes meta_ckpt_hash_;
  uint64_t benign_restarts_ = 0;
  uint64_t entries_fetched_ = 0;
};

}  // namespace keypad

#endif  // SRC_KEYPAD_FORENSICS_H_
