// Post-loss forensic analysis (§2 goals, §5.2 evaluation; the paper ships a
// Python tool with the same role: "given a Tloss timestamp and an
// expiration time Texp, the tool reconstructs a full-fidelity audit report
// of all accesses after Tloss − Texp, including full path names and access
// timestamps").
//
// The auditor verifies both services' hash chains, gathers every key-service
// record with access time after the cutoff Tloss − Texp, resolves each
// audit ID to its latest *trusted* pathname (metadata as of Tloss) plus any
// post-loss bindings a thief registered, and classifies entries. The report
// is conservative by construction: it never misses a compromised file (zero
// false negatives), at the price of prefetch-induced false positives, which
// it can quantify when given ground truth.

#ifndef SRC_KEYPAD_FORENSICS_H_
#define SRC_KEYPAD_FORENSICS_H_

#include <set>
#include <string>
#include <vector>

#include "src/keyservice/key_service.h"
#include "src/rpc/rpc.h"
#include "src/metaservice/metadata_service.h"
#include "src/util/ids.h"

namespace keypad {

struct AuditedAccess {
  SimTime when;
  AccessOp op;
};

struct AuditReportEntry {
  AuditId audit_id;
  // Latest pathname registered before Tloss (what the user knew the file
  // as). Empty if the file was created post-loss or never bound.
  std::string path_at_loss;
  // Pathnames registered after Tloss (e.g. by a thief unlocking files, or
  // bogus bindings). Chronological.
  std::vector<std::string> post_loss_paths;
  std::vector<AuditedAccess> accesses;
  // True if every access in the window was a prefetch — a candidate false
  // positive (§5.2).
  bool prefetch_only = false;
  // True if at least one access happened strictly after Tloss (as opposed
  // to only inside the [Tloss − Texp, Tloss] cache-exposure window).
  bool accessed_after_loss = false;
};

struct AuditReport {
  SimTime t_loss;
  SimTime cutoff;  // t_loss − texp.
  // Files the owner must consider compromised, most recent access first.
  std::vector<AuditReportEntry> compromised;
  // Subset sizes for quick reading.
  size_t demand_accessed_count = 0;
  size_t prefetch_only_count = 0;
  // Attempts blocked by revocation (kDenied records after Tloss).
  size_t denied_attempts = 0;
  // Log-chain verification results.
  bool key_log_verified = false;
  bool metadata_log_verified = false;

  bool Compromised(const AuditId& id) const;
  std::string ToString() const;
};

class ForensicAuditor {
 public:
  ForensicAuditor(const KeyService* key_service,
                  const MetadataService* metadata_service)
      : ForensicAuditor(std::vector<const KeyService*>{key_service},
                        metadata_service) {}

  // Sharded key tier (DESIGN.md §8): the auditor reads every shard's log —
  // each chain verifies independently, and the per-device records merge by
  // service timestamp into one timeline.
  ForensicAuditor(std::vector<const KeyService*> key_services,
                  const MetadataService* metadata_service)
      : key_services_(std::move(key_services)),
        metadata_service_(metadata_service) {}

  // Builds the post-loss report for `device_id`. `texp` must be the Texp
  // the device was configured with (the owner/IT department knows it).
  Result<AuditReport> BuildReport(const std::string& device_id, SimTime t_loss,
                                  SimDuration texp) const;

 private:
  std::vector<const KeyService*> key_services_;
  const MetadataService* metadata_service_;
};

// The same report, built remotely over the services' audit RPC surface —
// how Bob's "web service provided by his drive manufacturer" (§2) or an IT
// console actually reads the logs. The services verify their own hash
// chains before serving audit data (they are the trusted parties).
class RemoteAuditor {
 public:
  RemoteAuditor(RpcClient* key_rpc, RpcClient* meta_rpc,
                std::string device_id, Bytes key_secret, Bytes meta_secret)
      : RemoteAuditor(std::vector<RpcClient*>{key_rpc}, meta_rpc,
                      std::move(device_id), std::move(key_secret),
                      std::move(meta_secret)) {}

  // Sharded key tier: one RPC stub per shard. Audits are incremental — the
  // auditor keeps a per-shard sequence cursor and each BuildReport pulls
  // only the log suffix appended since the last audit (audit.key_log_tail),
  // so the console's nightly audit is O(new entries), not O(log).
  RemoteAuditor(std::vector<RpcClient*> key_rpcs, RpcClient* meta_rpc,
                std::string device_id, Bytes key_secret, Bytes meta_secret)
      : key_rpcs_(std::move(key_rpcs)),
        meta_rpc_(meta_rpc),
        device_id_(std::move(device_id)),
        key_secret_(std::move(key_secret)),
        meta_secret_(std::move(meta_secret)),
        cursors_(key_rpcs_.size(), 0) {}

  // Non-const: advances the per-shard cursors and extends the cached
  // per-device timeline.
  Result<AuditReport> BuildReport(SimTime t_loss, SimDuration texp);

  // Test hooks: where each shard's cursor stands and how much of the
  // device's timeline is cached locally.
  uint64_t cursor(size_t shard = 0) const { return cursors_[shard]; }
  size_t cached_entries() const { return cached_.size(); }

 private:
  std::vector<RpcClient*> key_rpcs_;
  RpcClient* meta_rpc_;
  std::string device_id_;
  Bytes key_secret_;
  Bytes meta_secret_;
  // Per-shard "next unseen sequence number" cursors plus the accumulated
  // device-filtered entries fetched so far, merged by service timestamp.
  std::vector<uint64_t> cursors_;
  std::vector<AuditLogEntry> cached_;
};

}  // namespace keypad

#endif  // SRC_KEYPAD_FORENSICS_H_
