#include "src/keypad/deployment.h"

#include <cstdlib>

#include "src/cryptocore/hmac.h"
#include "src/util/logging.h"

namespace keypad {

namespace {
constexpr SimDuration kServiceTime = SimDuration::Micros(150);
}  // namespace

Deployment::Deployment(DeploymentOptions options)
    : options_(std::move(options)),
      meta_rpc_server_(&queue_, kServiceTime),
      client_link_(&queue_,
                   options_.paired_phone ? BluetoothProfile()
                                         : options_.profile,
                   options_.seed ^ 0x2222),
      phone_uplink_(&queue_, options_.profile, options_.seed ^ 0x3333),
      auditor_(std::vector<const KeyService*>{}, nullptr) {
  // The phone proxy and sealed channels are single-endpoint features; they
  // pin the key tier to one shard.
  if (options_.key_shards < 1 || options_.paired_phone ||
      options_.secure_channel) {
    options_.key_shards = 1;
  }
  const size_t shard_count = static_cast<size_t>(options_.key_shards);

  // Key tier: shard 0 keeps the historical seed so an unsharded deployment
  // is bit-identical to the pre-shard layout.
  std::vector<const KeyService*> shard_views;
  for (size_t i = 0; i < shard_count; ++i) {
    key_shards_.push_back(std::make_unique<KeyService>(
        &queue_, options_.seed ^ 0x1111 ^ (static_cast<uint64_t>(i) << 32),
        options_.key_service));
    key_rpc_servers_.push_back(
        std::make_unique<RpcServer>(&queue_, kServiceTime));
    key_shards_[i]->BindRpc(key_rpc_servers_[i].get());
    // Group-commit seal cost lands on the shard's own server clock, so
    // batching amortizes real (simulated) CPU, not just a counter.
    RpcServer* server = key_rpc_servers_[i].get();
    key_shards_[i]->set_seal_charge(
        [server](SimDuration d) { server->ChargeBusy(d); });
    shard_views.push_back(key_shards_[i].get());
  }
  key_shard_snapshots_.resize(shard_count);

  const PairingParams* group = options_.ibe_group != nullptr
                                   ? options_.ibe_group
                                   : &TestPairingParams();
  metadata_service_ = std::make_unique<MetadataService>(
      &queue_, options_.seed ^ 0x4444, *group);
  auditor_ = ForensicAuditor(shard_views, metadata_service_.get());

  metadata_service_->BindRpc(&meta_rpc_server_);

  // One device identity across the whole tier: every shard must validate
  // the same per-device MAC secret.
  Bytes key_secret = key_shards_[0]->RegisterDevice(options_.device_id);
  for (size_t i = 1; i < shard_count; ++i) {
    key_shards_[i]->RegisterDeviceWithSecret(options_.device_id, key_secret);
  }
  Bytes meta_secret = metadata_service_->RegisterDevice(options_.device_id);

  if (options_.paired_phone) {
    // Phone -> services over the chosen profile.
    phone_key_rpc_ = std::make_unique<RpcClient>(&queue_, &phone_uplink_,
                                                 key_rpc_servers_[0].get(),
                                                 options_.rpc);
    phone_meta_rpc_ = std::make_unique<RpcClient>(&queue_, &phone_uplink_,
                                                  &meta_rpc_server_,
                                                  options_.rpc);
    phone_key_client_ = std::make_unique<KeyServiceClient>(
        phone_key_rpc_.get(), options_.device_id, key_secret);
    phone_meta_client_ = std::make_unique<MetadataServiceClient>(
        phone_meta_rpc_.get(), options_.device_id, meta_secret);
    phone_ = std::make_unique<PhoneProxy>(
        &queue_, &phone_uplink_, phone_key_client_.get(),
        phone_meta_client_.get(), options_.device_id, key_secret, meta_secret,
        options_.phone_options);
    // Laptop -> phone over Bluetooth.
    key_rpcs_.push_back(std::make_unique<RpcClient>(
        &queue_, &client_link_, phone_->server(), options_.rpc));
    meta_rpc_ = std::make_unique<RpcClient>(&queue_, &client_link_,
                                            phone_->server(), options_.rpc);
  } else {
    for (size_t i = 0; i < shard_count; ++i) {
      key_rpcs_.push_back(std::make_unique<RpcClient>(
          &queue_, &client_link_, key_rpc_servers_[i].get(), options_.rpc));
    }
    meta_rpc_ = std::make_unique<RpcClient>(&queue_, &client_link_,
                                            &meta_rpc_server_, options_.rpc);
  }
  for (size_t i = 0; i < key_rpcs_.size(); ++i) {
    key_clients_.push_back(std::make_unique<KeyServiceClient>(
        key_rpcs_[i].get(), options_.device_id, key_secret));
  }
  if (shard_count > 1) {
    std::vector<KeyServiceClient*> stubs;
    for (const auto& client : key_clients_) {
      stubs.push_back(client.get());
    }
    key_router_ = std::make_unique<ShardRouter>(&queue_, std::move(stubs),
                                                options_.router);
  }
  meta_client_ = std::make_unique<MetadataServiceClient>(
      meta_rpc_.get(), options_.device_id, meta_secret);

  if (options_.secure_channel && !options_.paired_phone) {
    // Channel roots are derived from the per-service device secrets, so
    // both ends (and a thief holding the device) can construct them.
    SimDuration rotation = options_.config.texp;
    Bytes key_root = Hkdf(key_secret, /*salt=*/{}, "kp-channel-root", 32);
    Bytes meta_root = Hkdf(meta_secret, /*salt=*/{}, "kp-channel-root", 32);
    channel_client_rng_ =
        std::make_unique<SecureRandom>(options_.seed ^ 0x6666);
    channel_server_rng_ =
        std::make_unique<SecureRandom>(options_.seed ^ 0x7777);
    key_channel_client_ = std::make_unique<SecureChannel>(key_root, rotation);
    key_channel_server_ = std::make_unique<SecureChannel>(key_root, rotation);
    meta_channel_client_ =
        std::make_unique<SecureChannel>(meta_root, rotation);
    meta_channel_server_ =
        std::make_unique<SecureChannel>(meta_root, rotation);

    key_rpcs_[0]->EnableChannelSecurity(key_channel_client_.get(),
                                        options_.device_id,
                                        channel_client_rng_.get());
    meta_rpc_->EnableChannelSecurity(meta_channel_client_.get(),
                                     options_.device_id,
                                     channel_client_rng_.get());
    key_rpc_servers_[0]->EnableChannelSecurity(
        [this](const std::string& device_id) -> SecureChannel* {
          return device_id == options_.device_id ? key_channel_server_.get()
                                                 : nullptr;
        },
        channel_server_rng_.get());
    meta_rpc_server_.EnableChannelSecurity(
        [this](const std::string& device_id) -> SecureChannel* {
          return device_id == options_.device_id
                     ? meta_channel_server_.get()
                     : nullptr;
        },
        channel_server_rng_.get());
  }

  KeypadFs::Services services;
  services.key = key_router_ != nullptr
                     ? static_cast<KeyClient*>(key_router_.get())
                     : static_cast<KeyClient*>(key_clients_[0].get());
  services.meta = meta_client_.get();
  services.ibe = &metadata_service_->ibe_params();

  auto fs = KeypadFs::Format(&device_, &queue_, options_.seed ^ 0x5555,
                             options_.password, options_.fs_options,
                             options_.config, services);
  if (!fs.ok()) {
    KP_LOG(kError) << "deployment: format failed: " << fs.status();
    abort();
  }
  fs_ = std::move(*fs);

  // Persist the service credentials on-device (sealed under the volume
  // key), as the real client must to survive remounts — and as the paper's
  // threat model assumes a thief with the password can recover them.
  KeypadFs::Credentials creds;
  creds.device_id = options_.device_id;
  creds.key_secret = key_secret;
  creds.meta_secret = meta_secret;
  Status stored = fs_->StoreCredentials(creds);
  if (!stored.ok()) {
    KP_LOG(kError) << "deployment: credential store failed: " << stored;
    abort();
  }
}

Deployment::~Deployment() = default;

void Deployment::CrashKeyShard(size_t i) {
  // An open commit window dies with the process: its staged entries never
  // sealed (never durable) and its held responses are never sent — the
  // clients time out and retry against the restarted shard.
  key_shards_[i]->AbortStaged();
  // Snapshot models the durable log + key store the crashed process leaves
  // on disk; the server swallows everything until restart.
  key_shard_snapshots_[i] = key_shards_[i]->Snapshot();
  key_rpc_servers_[i]->set_down(true);
}

void Deployment::RestartKeyShard(size_t i) {
  Status restored = key_shards_[i]->Restore(key_shard_snapshots_[i]);
  if (!restored.ok()) {
    KP_LOG(kError) << "key shard " << i << " restart: " << restored;
    abort();
  }
  // Completed replies are durable (written with the audit entry); requests
  // that were mid-execution at crash time will never answer — forget them
  // so client retries re-execute.
  key_rpc_servers_[i]->reply_cache().ClearInFlight();
  key_rpc_servers_[i]->set_down(false);
}

void Deployment::CrashMetadataService() {
  meta_service_snapshot_ = metadata_service_->Snapshot();
  meta_rpc_server_.set_down(true);
}

void Deployment::RestartMetadataService() {
  Status restored = metadata_service_->Restore(meta_service_snapshot_);
  if (!restored.ok()) {
    KP_LOG(kError) << "metadata service restart: " << restored;
    abort();
  }
  meta_rpc_server_.reply_cache().ClearInFlight();
  meta_rpc_server_.set_down(false);
}

void Deployment::ScheduleKeyShardCrash(size_t i, SimTime at,
                                       SimDuration outage) {
  queue_.Schedule(at, [this, i] { CrashKeyShard(i); });
  queue_.Schedule(at + outage, [this, i] { RestartKeyShard(i); });
}

void Deployment::ScheduleMetadataServiceCrash(SimTime at,
                                              SimDuration outage) {
  queue_.Schedule(at, [this] { CrashMetadataService(); });
  queue_.Schedule(at + outage, [this] { RestartMetadataService(); });
}

void Deployment::ReportDeviceLost() {
  // Revocation must land on every shard — any single shard still serving
  // keys would defeat remote data control.
  Status key_status = Status::Ok();
  for (auto& shard : key_shards_) {
    Status s = shard->DisableDevice(options_.device_id);
    if (!s.ok() && key_status.ok()) {
      key_status = s;
    }
  }
  Status meta_status = metadata_service_->DisableDevice(options_.device_id);
  if (!key_status.ok() || !meta_status.ok()) {
    KP_LOG(kWarning) << "report-lost: " << key_status << " / " << meta_status;
  }
}

RawDeviceAttacker Deployment::MakeAttacker() {
  return RawDeviceAttacker(device_.Snapshot(), options_.password, &queue_);
}

Result<Deployment::AttackerClients> Deployment::MakeAttackerClients(
    const KeypadFs::Credentials& creds) {
  AttackerClients clients;
  clients.key_rpc = std::make_unique<RpcClient>(&queue_, &client_link_,
                                                key_rpc_servers_[0].get(),
                                                options_.rpc);
  clients.meta_rpc = std::make_unique<RpcClient>(&queue_, &client_link_,
                                                 &meta_rpc_server_,
                                                 options_.rpc);
  clients.key = std::make_unique<KeyServiceClient>(
      clients.key_rpc.get(), creds.device_id, creds.key_secret);
  clients.meta = std::make_unique<MetadataServiceClient>(
      clients.meta_rpc.get(), creds.device_id, creds.meta_secret);
  if (key_shards_.size() > 1) {
    // The stolen laptop's config names every shard endpoint; the thief
    // rebuilds the same router the legitimate client ran.
    std::vector<KeyServiceClient*> stubs;
    stubs.push_back(clients.key.get());
    for (size_t i = 1; i < key_shards_.size(); ++i) {
      clients.shard_rpcs.push_back(std::make_unique<RpcClient>(
          &queue_, &client_link_, key_rpc_servers_[i].get(), options_.rpc));
      clients.shard_stubs.push_back(std::make_unique<KeyServiceClient>(
          clients.shard_rpcs.back().get(), creds.device_id,
          creds.key_secret));
      stubs.push_back(clients.shard_stubs.back().get());
    }
    clients.router = std::make_unique<ShardRouter>(&queue_, std::move(stubs),
                                                   options_.router);
  }
  if (options_.secure_channel && !options_.paired_phone) {
    SimDuration rotation = options_.config.texp;
    clients.channel_rng = std::make_unique<SecureRandom>(
        options_.seed ^ 0x8888);
    clients.key_channel = std::make_unique<SecureChannel>(
        Hkdf(creds.key_secret, /*salt=*/{}, "kp-channel-root", 32), rotation);
    clients.meta_channel = std::make_unique<SecureChannel>(
        Hkdf(creds.meta_secret, /*salt=*/{}, "kp-channel-root", 32),
        rotation);
    clients.key_rpc->EnableChannelSecurity(clients.key_channel.get(),
                                           creds.device_id,
                                           clients.channel_rng.get());
    clients.meta_rpc->EnableChannelSecurity(clients.meta_channel.get(),
                                            creds.device_id,
                                            clients.channel_rng.get());
  }
  clients.services.key =
      clients.router != nullptr
          ? static_cast<KeyClient*>(clients.router.get())
          : static_cast<KeyClient*>(clients.key.get());
  clients.services.meta = clients.meta.get();
  clients.services.ibe = &metadata_service_->ibe_params();
  return clients;
}

}  // namespace keypad
