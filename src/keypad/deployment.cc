#include "src/keypad/deployment.h"

#include <cstdlib>

#include "src/cryptocore/hmac.h"
#include "src/util/logging.h"

namespace keypad {

namespace {
constexpr SimDuration kServiceTime = SimDuration::Micros(150);

// Stub failover budget: one full leader failover — lease lapse, staggered
// promotion across all replicas, an ack timeout of reconciliation traffic,
// and slack — before a routed call gives up. Parameterized on the tier's
// replica count (the key and metadata tiers can differ in width).
FailoverOptions FailoverFor(const DeploymentOptions& options, int replicas) {
  FailoverOptions failover;
  failover.budget = options.replica_set.lease.lease_duration +
                    options.replica_set.lease.promote_stagger *
                        static_cast<int64_t>(replicas) +
                    options.replica_set.ack_timeout + SimDuration::Seconds(2);
  return failover;
}
}  // namespace

Deployment::Deployment(DeploymentOptions options)
    : options_(std::move(options)),
      client_link_(&queue_,
                   options_.paired_phone ? BluetoothProfile()
                                         : options_.profile,
                   options_.seed ^ 0x2222),
      phone_uplink_(&queue_, options_.profile, options_.seed ^ 0x3333),
      auditor_(std::vector<const KeyService*>{}, nullptr) {
  // The phone proxy and sealed channels are single-endpoint features; they
  // pin the key tier to one shard (and one replica).
  if (options_.key_shards < 1 || options_.paired_phone ||
      options_.secure_channel) {
    options_.key_shards = 1;
  }
  if (options_.key_replicas < 1 || options_.paired_phone ||
      options_.secure_channel) {
    options_.key_replicas = 1;
  }
  if (options_.meta_replicas < 1 || options_.paired_phone ||
      options_.secure_channel) {
    options_.meta_replicas = 1;
  }
  // One brownout controller per device, shared between the router (batch
  // stretching + overload signals) and the client config (prefetch
  // suppression, accounted cache-lifetime stretching). Inert unless
  // enabled (or KEYPAD_BROWNOUT forces it on).
  brownout_ = std::make_unique<BrownoutController>(options_.brownout);
  options_.router.brownout = brownout_.get();
  options_.config.brownout = brownout_.get();
  const size_t shard_count = static_cast<size_t>(options_.key_shards);
  const size_t replica_count = static_cast<size_t>(options_.key_replicas);
  const size_t meta_count = static_cast<size_t>(options_.meta_replicas);

  // Key tier: shard 0 keeps the historical seed so an unsharded deployment
  // is bit-identical to the pre-shard layout; backups fold the replica
  // index into the seed the same way shards fold theirs.
  std::vector<const KeyService*> shard_views;
  key_backup_services_.resize(shard_count);
  key_backup_servers_.resize(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    uint64_t shard_seed =
        options_.seed ^ 0x1111 ^ (static_cast<uint64_t>(i) << 32);
    key_shards_.push_back(std::make_unique<KeyService>(
        &queue_, shard_seed, options_.key_service));
    key_rpc_servers_.push_back(
        std::make_unique<RpcServer>(&queue_, kServiceTime));
    key_rpc_servers_.back()->set_admission(options_.admission);
    for (size_t r = 1; r < replica_count; ++r) {
      key_backup_services_[i].push_back(std::make_unique<KeyService>(
          &queue_, shard_seed ^ (static_cast<uint64_t>(r) << 16),
          options_.key_service));
      key_backup_servers_[i].push_back(
          std::make_unique<RpcServer>(&queue_, kServiceTime));
      key_backup_servers_[i].back()->set_admission(options_.admission);
    }
    if (replica_count > 1) {
      // The replica set installs each service's replicator and serve gate,
      // which switches its RPC surface onto the async held-response path —
      // so wire it up before BindRpc.
      ReplicaSetOptions rs_options = options_.replica_set;
      rs_options.seed ^= options_.seed ^ 0x9999 ^
                         (static_cast<uint64_t>(i) << 32);
      replica_sets_.push_back(
          std::make_unique<ReplicaSet>(&queue_, rs_options));
      replica_sets_[i]->AddReplica(key_shards_[i].get(),
                                   key_rpc_servers_[i].get());
      for (size_t r = 1; r < replica_count; ++r) {
        replica_sets_[i]->AddReplica(key_backup_services_[i][r - 1].get(),
                                     key_backup_servers_[i][r - 1].get());
      }
    }
    for (size_t r = 0; r < replica_count; ++r) {
      KeyService& service = key_replica(i, r);
      RpcServer* server = &key_replica_rpc_server(i, r);
      service.BindRpc(server);
      // Group-commit seal cost lands on the replica's own server clock, so
      // batching amortizes real (simulated) CPU, not just a counter.
      service.set_seal_charge(
          [server](SimDuration d) { server->ChargeBusy(d); });
    }
    shard_views.push_back(key_shards_[i].get());
  }
  key_replica_snapshots_.assign(shard_count,
                                std::vector<Bytes>(replica_count));
  last_crashed_replica_.assign(shard_count, 0);
  meta_replica_snapshots_.assign(meta_count, Bytes());

  const PairingParams* group = options_.ibe_group != nullptr
                                   ? options_.ibe_group
                                   : &TestPairingParams();
  // Every metadata replica is constructed from the SAME seed: the IBE
  // master secret is modelled as living in a shared HSM (it survives a
  // crash in place, and a promoted backup must mint the same unlock keys
  // replica 0 would have). Replica 0 is bit-identical to the unreplicated
  // service.
  for (size_t r = 0; r < meta_count; ++r) {
    meta_services_.push_back(std::make_unique<MetadataService>(
        &queue_, options_.seed ^ 0x4444, *group));
    meta_rpc_servers_.push_back(
        std::make_unique<RpcServer>(&queue_, kServiceTime));
    meta_rpc_servers_.back()->set_admission(options_.admission);
  }
  if (meta_count > 1) {
    // Install replicator + serve gate before BindRpc (they switch the
    // mutating RPC surface onto the async held-response path).
    ReplicaSetOptions meta_rs_options = options_.replica_set;
    meta_rs_options.seed ^= options_.seed ^ 0xAAAA;
    meta_replica_set_ =
        std::make_unique<MetaReplicaSet>(&queue_, meta_rs_options);
    for (size_t r = 0; r < meta_count; ++r) {
      meta_replica_set_->AddReplica(meta_services_[r].get(),
                                    meta_rpc_servers_[r].get());
    }
  }
  auditor_ = ForensicAuditor(shard_views, meta_services_[0].get());
  if (!replica_sets_.empty()) {
    std::vector<const ReplicaSet*> set_views;
    for (const auto& set : replica_sets_) {
      set_views.push_back(set.get());
    }
    auditor_.AttachReplicaSets(std::move(set_views));
  }
  if (meta_replica_set_ != nullptr) {
    auditor_.AttachMetaReplicaSet(meta_replica_set_.get());
  }

  for (size_t r = 0; r < meta_count; ++r) {
    meta_services_[r]->BindRpc(meta_rpc_servers_[r].get());
  }

  // One device identity across the whole tier: every shard must validate
  // the same per-device MAC secret.
  Bytes key_secret = key_shards_[0]->RegisterDevice(options_.device_id);
  for (size_t i = 1; i < shard_count; ++i) {
    key_shards_[i]->RegisterDeviceWithSecret(options_.device_id, key_secret);
  }
  for (size_t i = 0; i < shard_count; ++i) {
    for (auto& backup : key_backup_services_[i]) {
      backup->RegisterDeviceWithSecret(options_.device_id, key_secret);
    }
  }
  // Leases and replication links spin up once every replica holds the
  // device registration (registration is provisioning-time state, not an
  // audit-log mutation, so it does not travel in deltas).
  for (auto& set : replica_sets_) {
    set->Start();
  }
  Bytes meta_secret = meta_services_[0]->RegisterDevice(options_.device_id);
  for (size_t r = 1; r < meta_count; ++r) {
    meta_services_[r]->RegisterDeviceWithSecret(options_.device_id,
                                                meta_secret);
  }
  if (meta_replica_set_ != nullptr) {
    meta_replica_set_->Start();
  }

  if (options_.paired_phone) {
    // Phone -> services over the chosen profile.
    phone_key_rpc_ = std::make_unique<RpcClient>(&queue_, &phone_uplink_,
                                                 key_rpc_servers_[0].get(),
                                                 options_.rpc);
    phone_meta_rpc_ = std::make_unique<RpcClient>(&queue_, &phone_uplink_,
                                                  meta_rpc_servers_[0].get(),
                                                  options_.rpc);
    phone_key_client_ = std::make_unique<KeyServiceClient>(
        phone_key_rpc_.get(), options_.device_id, key_secret);
    phone_meta_client_ = std::make_unique<MetadataServiceClient>(
        phone_meta_rpc_.get(), options_.device_id, meta_secret);
    phone_ = std::make_unique<PhoneProxy>(
        &queue_, &phone_uplink_, phone_key_client_.get(),
        phone_meta_client_.get(), options_.device_id, key_secret, meta_secret,
        options_.phone_options);
    // Laptop -> phone over Bluetooth.
    key_rpcs_.push_back(std::make_unique<RpcClient>(
        &queue_, &client_link_, phone_->server(), options_.rpc));
    meta_rpc_ = std::make_unique<RpcClient>(&queue_, &client_link_,
                                            phone_->server(), options_.rpc);
  } else {
    key_backup_rpcs_.resize(shard_count);
    for (size_t i = 0; i < shard_count; ++i) {
      key_rpcs_.push_back(std::make_unique<RpcClient>(
          &queue_, &client_link_, key_rpc_servers_[i].get(), options_.rpc));
      for (auto& backup_server : key_backup_servers_[i]) {
        key_backup_rpcs_[i].push_back(std::make_unique<RpcClient>(
            &queue_, &client_link_, backup_server.get(), options_.rpc));
      }
    }
    meta_rpc_ = std::make_unique<RpcClient>(&queue_, &client_link_,
                                            meta_rpc_servers_[0].get(),
                                            options_.rpc);
    for (size_t r = 1; r < meta_count; ++r) {
      meta_backup_rpcs_.push_back(std::make_unique<RpcClient>(
          &queue_, &client_link_, meta_rpc_servers_[r].get(), options_.rpc));
    }
  }
  for (size_t i = 0; i < key_rpcs_.size(); ++i) {
    if (replica_count > 1) {
      // Replica-aware stub: tries the last-known leader, follows NOT_LEADER
      // redirects, and rides out one full failover (lease lapse + staggered
      // promotion + reconciliation slack) before giving up.
      std::vector<RpcClient*> endpoints;
      endpoints.push_back(key_rpcs_[i].get());
      for (auto& rpc : key_backup_rpcs_[i]) {
        endpoints.push_back(rpc.get());
      }
      key_clients_.push_back(std::make_unique<KeyServiceClient>(
          &queue_, std::move(endpoints), options_.device_id, key_secret,
          FailoverFor(options_, options_.key_replicas)));
    } else {
      key_clients_.push_back(std::make_unique<KeyServiceClient>(
          key_rpcs_[i].get(), options_.device_id, key_secret));
    }
  }
  if (shard_count > 1 || options_.force_key_router) {
    std::vector<KeyServiceClient*> stubs;
    for (const auto& client : key_clients_) {
      stubs.push_back(client.get());
    }
    key_router_ = std::make_unique<ShardRouter>(&queue_, std::move(stubs),
                                                options_.router);
  }
  if (meta_count > 1) {
    std::vector<RpcClient*> meta_endpoints;
    meta_endpoints.push_back(meta_rpc_.get());
    for (auto& rpc : meta_backup_rpcs_) {
      meta_endpoints.push_back(rpc.get());
    }
    meta_client_ = std::make_unique<MetadataServiceClient>(
        &queue_, std::move(meta_endpoints), options_.device_id, meta_secret,
        FailoverFor(options_, options_.meta_replicas));
  } else {
    meta_client_ = std::make_unique<MetadataServiceClient>(
        meta_rpc_.get(), options_.device_id, meta_secret);
  }

  if (options_.secure_channel && !options_.paired_phone) {
    // Channel roots are derived from the per-service device secrets, so
    // both ends (and a thief holding the device) can construct them.
    SimDuration rotation = options_.config.texp;
    Bytes key_root = Hkdf(key_secret, /*salt=*/{}, "kp-channel-root", 32);
    Bytes meta_root = Hkdf(meta_secret, /*salt=*/{}, "kp-channel-root", 32);
    channel_client_rng_ =
        std::make_unique<SecureRandom>(options_.seed ^ 0x6666);
    channel_server_rng_ =
        std::make_unique<SecureRandom>(options_.seed ^ 0x7777);
    key_channel_client_ = std::make_unique<SecureChannel>(key_root, rotation);
    key_channel_server_ = std::make_unique<SecureChannel>(key_root, rotation);
    meta_channel_client_ =
        std::make_unique<SecureChannel>(meta_root, rotation);
    meta_channel_server_ =
        std::make_unique<SecureChannel>(meta_root, rotation);

    key_rpcs_[0]->EnableChannelSecurity(key_channel_client_.get(),
                                        options_.device_id,
                                        channel_client_rng_.get());
    meta_rpc_->EnableChannelSecurity(meta_channel_client_.get(),
                                     options_.device_id,
                                     channel_client_rng_.get());
    key_rpc_servers_[0]->EnableChannelSecurity(
        [this](const std::string& device_id) -> SecureChannel* {
          return device_id == options_.device_id ? key_channel_server_.get()
                                                 : nullptr;
        },
        channel_server_rng_.get());
    meta_rpc_servers_[0]->EnableChannelSecurity(
        [this](const std::string& device_id) -> SecureChannel* {
          return device_id == options_.device_id
                     ? meta_channel_server_.get()
                     : nullptr;
        },
        channel_server_rng_.get());
  }

  KeypadFs::Services services;
  services.key = key_router_ != nullptr
                     ? static_cast<KeyClient*>(key_router_.get())
                     : static_cast<KeyClient*>(key_clients_[0].get());
  services.meta = meta_client_.get();
  services.ibe = &meta_services_[0]->ibe_params();

  auto fs = KeypadFs::Format(&device_, &queue_, options_.seed ^ 0x5555,
                             options_.password, options_.fs_options,
                             options_.config, services);
  if (!fs.ok()) {
    KP_LOG(kError) << "deployment: format failed: " << fs.status();
    abort();
  }
  fs_ = std::move(*fs);

  // Persist the service credentials on-device (sealed under the volume
  // key), as the real client must to survive remounts — and as the paper's
  // threat model assumes a thief with the password can recover them.
  KeypadFs::Credentials creds;
  creds.device_id = options_.device_id;
  creds.key_secret = key_secret;
  creds.meta_secret = meta_secret;
  Status stored = fs_->StoreCredentials(creds);
  if (!stored.ok()) {
    KP_LOG(kError) << "deployment: credential store failed: " << stored;
    abort();
  }

  if (options_.cloud_backup) {
    cloud_store_ = std::make_unique<SimObjectStore>(&queue_, options_.cloud);
    write_back_ =
        std::make_unique<WriteBackQueue>(&device_, cloud_store_.get());
    // Everything Format wrote is still in the device's dirty set, so the
    // first BackupNow() captures the whole freshly-formatted volume.
  }
}

Deployment::~Deployment() = default;

void Deployment::CrashKeyReplica(size_t shard, size_t replica) {
  KeyService& service = key_replica(shard, replica);
  RpcServer& server = key_replica_rpc_server(shard, replica);
  // An open commit window dies with the process: its staged entries never
  // sealed (never durable) and its held responses are never sent — the
  // clients time out and retry (against the promoted backup, if any).
  service.AbortStaged();
  // Snapshot models the durable log + key store the crashed process leaves
  // on disk; the server swallows everything until restart.
  key_replica_snapshots_[shard][replica] = service.Snapshot();
  server.set_down(true);
  if (!replica_sets_.empty()) {
    replica_sets_[shard]->NoteCrashed(replica);
  }
}

void Deployment::RestartKeyReplica(size_t shard, size_t replica) {
  KeyService& service = key_replica(shard, replica);
  RpcServer& server = key_replica_rpc_server(shard, replica);
  Status restored = service.Restore(key_replica_snapshots_[shard][replica]);
  if (!restored.ok()) {
    KP_LOG(kError) << "key shard " << shard << " replica " << replica
                   << " restart: " << restored;
    abort();
  }
  // Completed replies are durable (written with the audit entry); requests
  // that were mid-execution at crash time will never answer — forget them
  // so client retries re-execute.
  server.reply_cache().ClearInFlight();
  server.set_down(false);
  if (!replica_sets_.empty()) {
    // The ex-primary comes back with a possibly diverged chain: it rejoins
    // as a backup, reconciling against whoever leads now.
    replica_sets_[shard]->NoteRestarted(replica);
  }
}

void Deployment::CrashKeyShard(size_t i) {
  // With replication the interesting victim is whichever replica currently
  // leads; without it, replica 0 is the whole shard.
  size_t replica =
      replica_sets_.empty() ? 0 : replica_sets_[i]->current_leader();
  last_crashed_replica_[i] = replica;
  CrashKeyReplica(i, replica);
}

void Deployment::RestartKeyShard(size_t i) {
  RestartKeyReplica(i, last_crashed_replica_[i]);
}

void Deployment::CrashMetaReplica(size_t replica) {
  MetadataService& service = *meta_services_[replica];
  RpcServer& server = *meta_rpc_servers_[replica];
  // Held responses die with the process — the clients' retries take over
  // against the promoted backup, if any. The appended records are durable
  // and travel in the snapshot.
  service.AbortPending();
  meta_replica_snapshots_[replica] = service.Snapshot();
  server.set_down(true);
  if (meta_replica_set_ != nullptr) {
    meta_replica_set_->NoteCrashed(replica);
  }
}

void Deployment::RestartMetaReplica(size_t replica) {
  MetadataService& service = *meta_services_[replica];
  RpcServer& server = *meta_rpc_servers_[replica];
  Status restored = service.Restore(meta_replica_snapshots_[replica]);
  if (!restored.ok()) {
    KP_LOG(kError) << "metadata replica " << replica
                   << " restart: " << restored;
    abort();
  }
  server.reply_cache().ClearInFlight();
  server.set_down(false);
  if (meta_replica_set_ != nullptr) {
    // The ex-primary comes back with a possibly diverged chain: it rejoins
    // as a backup, reconciling against whoever leads now.
    meta_replica_set_->NoteRestarted(replica);
  }
}

void Deployment::CrashMetadataService() {
  // With replication the interesting victim is whichever replica currently
  // leads; without it, replica 0 is the whole tier.
  size_t replica = meta_replica_set_ != nullptr
                       ? meta_replica_set_->current_leader()
                       : 0;
  last_crashed_meta_replica_ = replica;
  CrashMetaReplica(replica);
}

void Deployment::RestartMetadataService() {
  RestartMetaReplica(last_crashed_meta_replica_);
}

void Deployment::ScheduleKeyShardCrash(size_t i, SimTime at,
                                       SimDuration outage) {
  queue_.Schedule(at, [this, i] { CrashKeyShard(i); });
  queue_.Schedule(at + outage, [this, i] { RestartKeyShard(i); });
}

void Deployment::ScheduleKeyReplicaCrash(size_t shard, size_t replica,
                                         SimTime at, SimDuration outage) {
  queue_.Schedule(at,
                  [this, shard, replica] { CrashKeyReplica(shard, replica); });
  queue_.Schedule(at + outage, [this, shard, replica] {
    RestartKeyReplica(shard, replica);
  });
}

void Deployment::PartitionKeyReplica(size_t shard, size_t replica,
                                     bool partitioned) {
  if (!replica_sets_.empty()) {
    replica_sets_[shard]->SetPartitioned(replica, partitioned);
  }
}

void Deployment::ScheduleKeyReplicaPartition(size_t shard, size_t replica,
                                             SimTime at,
                                             SimDuration duration) {
  if (!replica_sets_.empty()) {
    replica_sets_[shard]->SchedulePartition(replica, at, duration);
  }
}

void Deployment::ScheduleMetadataServiceCrash(SimTime at,
                                              SimDuration outage) {
  queue_.Schedule(at, [this] { CrashMetadataService(); });
  queue_.Schedule(at + outage, [this] { RestartMetadataService(); });
}

void Deployment::ScheduleMetaReplicaCrash(size_t replica, SimTime at,
                                          SimDuration outage) {
  queue_.Schedule(at, [this, replica] { CrashMetaReplica(replica); });
  queue_.Schedule(at + outage,
                  [this, replica] { RestartMetaReplica(replica); });
}

void Deployment::PartitionMetaReplica(size_t replica, bool partitioned) {
  if (meta_replica_set_ != nullptr) {
    meta_replica_set_->SetPartitioned(replica, partitioned);
  }
}

void Deployment::ScheduleMetaReplicaPartition(size_t replica, SimTime at,
                                              SimDuration duration) {
  if (meta_replica_set_ != nullptr) {
    meta_replica_set_->SchedulePartition(replica, at, duration);
  }
}

void Deployment::ReportDeviceLost() {
  // Revocation must land on every shard — any single shard still serving
  // keys would defeat remote data control. With replication it goes through
  // the replica set so the backups learn it before any of them can lead.
  Status key_status = Status::Ok();
  if (!replica_sets_.empty()) {
    for (auto& set : replica_sets_) {
      Status s = set->DisableDevice(options_.device_id);
      if (!s.ok() && key_status.ok()) {
        key_status = s;
      }
    }
  } else {
    for (auto& shard : key_shards_) {
      Status s = shard->DisableDevice(options_.device_id);
      if (!s.ok() && key_status.ok()) {
        key_status = s;
      }
    }
  }
  Status meta_status =
      meta_replica_set_ != nullptr
          ? meta_replica_set_->DisableDevice(options_.device_id)
          : meta_services_[0]->DisableDevice(options_.device_id);
  if (!key_status.ok() || !meta_status.ok()) {
    KP_LOG(kWarning) << "report-lost: " << key_status << " / " << meta_status;
  }
}

RawDeviceAttacker Deployment::MakeAttacker() {
  return RawDeviceAttacker(device_.Snapshot(), options_.password, &queue_);
}

Result<Deployment::AttackerClients> Deployment::MakeAttackerClients(
    const KeypadFs::Credentials& creds) {
  AttackerClients clients;
  clients.key_rpc = std::make_unique<RpcClient>(&queue_, &client_link_,
                                                key_rpc_servers_[0].get(),
                                                options_.rpc);
  clients.meta_rpc = std::make_unique<RpcClient>(&queue_, &client_link_,
                                                 meta_rpc_servers_[0].get(),
                                                 options_.rpc);
  // The stolen laptop's config names every replica endpoint; the thief's
  // stubs fail over between replicas exactly like the owner's did.
  auto make_stub = [&](size_t shard, RpcClient* primary) {
    if (key_replica_count() <= 1) {
      return std::make_unique<KeyServiceClient>(primary, creds.device_id,
                                                creds.key_secret);
    }
    std::vector<RpcClient*> endpoints;
    endpoints.push_back(primary);
    for (auto& backup_server : key_backup_servers_[shard]) {
      clients.replica_rpcs.push_back(std::make_unique<RpcClient>(
          &queue_, &client_link_, backup_server.get(), options_.rpc));
      endpoints.push_back(clients.replica_rpcs.back().get());
    }
    return std::make_unique<KeyServiceClient>(
        &queue_, std::move(endpoints), creds.device_id, creds.key_secret,
        FailoverFor(options_, options_.key_replicas));
  };
  clients.key = make_stub(0, clients.key_rpc.get());
  if (meta_replica_count() > 1) {
    std::vector<RpcClient*> meta_endpoints;
    meta_endpoints.push_back(clients.meta_rpc.get());
    for (size_t r = 1; r < meta_rpc_servers_.size(); ++r) {
      clients.replica_rpcs.push_back(std::make_unique<RpcClient>(
          &queue_, &client_link_, meta_rpc_servers_[r].get(), options_.rpc));
      meta_endpoints.push_back(clients.replica_rpcs.back().get());
    }
    clients.meta = std::make_unique<MetadataServiceClient>(
        &queue_, std::move(meta_endpoints), creds.device_id,
        creds.meta_secret, FailoverFor(options_, options_.meta_replicas));
  } else {
    clients.meta = std::make_unique<MetadataServiceClient>(
        clients.meta_rpc.get(), creds.device_id, creds.meta_secret);
  }
  if (key_shards_.size() > 1) {
    // The thief rebuilds the same router the legitimate client ran.
    std::vector<KeyServiceClient*> stubs;
    stubs.push_back(clients.key.get());
    for (size_t i = 1; i < key_shards_.size(); ++i) {
      clients.shard_rpcs.push_back(std::make_unique<RpcClient>(
          &queue_, &client_link_, key_rpc_servers_[i].get(), options_.rpc));
      clients.shard_stubs.push_back(
          make_stub(i, clients.shard_rpcs.back().get()));
      stubs.push_back(clients.shard_stubs.back().get());
    }
    // The thief's router does not share the owner's brownout controller —
    // an attacker has no reason to be polite to an overloaded tier.
    ShardRouter::Options thief_router = options_.router;
    thief_router.brownout = nullptr;
    clients.router = std::make_unique<ShardRouter>(&queue_, std::move(stubs),
                                                   thief_router);
  }
  if (options_.secure_channel && !options_.paired_phone) {
    SimDuration rotation = options_.config.texp;
    clients.channel_rng = std::make_unique<SecureRandom>(
        options_.seed ^ 0x8888);
    clients.key_channel = std::make_unique<SecureChannel>(
        Hkdf(creds.key_secret, /*salt=*/{}, "kp-channel-root", 32), rotation);
    clients.meta_channel = std::make_unique<SecureChannel>(
        Hkdf(creds.meta_secret, /*salt=*/{}, "kp-channel-root", 32),
        rotation);
    clients.key_rpc->EnableChannelSecurity(clients.key_channel.get(),
                                           creds.device_id,
                                           clients.channel_rng.get());
    clients.meta_rpc->EnableChannelSecurity(clients.meta_channel.get(),
                                            creds.device_id,
                                            clients.channel_rng.get());
  }
  clients.services.key =
      clients.router != nullptr
          ? static_cast<KeyClient*>(clients.router.get())
          : static_cast<KeyClient*>(clients.key.get());
  clients.services.meta = clients.meta.get();
  clients.services.ibe = &meta_services_[0]->ibe_params();
  return clients;
}

Status Deployment::BackupNow() {
  if (write_back_ == nullptr) {
    return FailedPreconditionError("cloud backup is not enabled");
  }
  Status result = Status::Ok();
  bool done = false;
  write_back_->FlushNow([&](Status s) {
    result = s;
    done = true;
  });
  // Replicated deployments keep lease timers live on the queue, so drive
  // time in bounded steps instead of draining to idle.
  for (int i = 0; i < 256 && !done; ++i) {
    queue_.AdvanceBy(SimDuration::Millis(50));
  }
  if (!done) {
    return UnavailableError("cloud backup flush did not settle");
  }
  cloud_store_->SettleNow();
  return result;
}

Result<Deployment::ReplacementDevice> Deployment::EnrollReplacementDevice(
    const std::string& new_device_id) {
  if (cloud_store_ == nullptr) {
    return FailedPreconditionError("cloud backup is not enabled");
  }
  if (new_device_id == options_.device_id) {
    return InvalidArgumentError("replacement needs a fresh device id");
  }
  if (options_.secure_channel) {
    // Channel roots are provisioned per device id at construction; minting
    // a server-side channel for the replacement is out of scope here.
    return FailedPreconditionError(
        "replacement enrollment is not supported with sealed channels");
  }

  // Provision the new identity everywhere the old one lived: one MAC
  // secret per tier, shared across all shards and replicas (registration
  // is provisioning-time state, not an audit-log mutation).
  Bytes key_secret = key_shards_[0]->RegisterDevice(new_device_id);
  for (size_t i = 1; i < key_shards_.size(); ++i) {
    key_shards_[i]->RegisterDeviceWithSecret(new_device_id, key_secret);
  }
  for (auto& backups : key_backup_services_) {
    for (auto& backup : backups) {
      backup->RegisterDeviceWithSecret(new_device_id, key_secret);
    }
  }
  Bytes meta_secret = meta_services_[0]->RegisterDevice(new_device_id);
  for (size_t r = 1; r < meta_services_.size(); ++r) {
    meta_services_[r]->RegisterDeviceWithSecret(new_device_id, meta_secret);
  }

  // Re-bind the stolen device's keys to the new identity. The transfer
  // refuses unless the old device is already disabled (ReportDeviceLost
  // first), so a premature "restore" can never widen access while the
  // stolen laptop's identity is still live.
  if (!replica_sets_.empty()) {
    for (auto& set : replica_sets_) {
      KP_RETURN_IF_ERROR(
          set->TransferDeviceKeys(options_.device_id, new_device_id));
    }
  } else {
    for (auto& shard : key_shards_) {
      KP_RETURN_IF_ERROR(
          shard->TransferDeviceKeys(options_.device_id, new_device_id));
    }
  }

  ReplacementDevice replacement;
  replacement.device_id = new_device_id;
  replacement.device = std::make_unique<BlockDevice>();
  KP_ASSIGN_OR_RETURN(
      replacement.restore,
      RestoreVolumeFromCloud(*cloud_store_, *replacement.device, queue_));

  // Stub wiring is identity-driven, so the attacker-clients builder serves
  // the rightful owner's new hardware just as well.
  KeypadFs::Credentials creds;
  creds.device_id = new_device_id;
  creds.key_secret = key_secret;
  creds.meta_secret = meta_secret;
  KP_ASSIGN_OR_RETURN(replacement.clients, MakeAttackerClients(creds));

  KP_ASSIGN_OR_RETURN(
      replacement.fs,
      KeypadFs::Mount(replacement.device.get(), &queue_,
                      options_.seed ^ 0xBBBB, options_.password,
                      options_.fs_options, options_.config,
                      replacement.clients.services));
  // The replacement persists its own credentials, like first setup did.
  KP_RETURN_IF_ERROR(replacement.fs->StoreCredentials(creds));
  return replacement;
}

}  // namespace keypad
