// KeypadFs — the paper's primary contribution: an auditing file system that
// entangles every protected file access with logging on remote audit
// services.
//
// Built as an extension of EncFs (as the prototype extends EncFS):
//  * every protected file gets a random 192-bit audit ID and its content is
//    encrypted with a per-file data key K_D, which is stored in the file's
//    header wrapped under a remote key K_R held only by the key service;
//  * reading or writing requires K_R: from the local cache (expires after
//    Texp, refreshed while in use) or from the key service — which durably
//    logs the access before answering;
//  * namespace changes are registered with the metadata service so the
//    audit log can be interpreted with up-to-date pathnames;
//  * with IBE enabled (§3.4), creates and renames do not block on the
//    network: the key blob is locked under an identity derived from the new
//    pathname + audit ID, a 1-second grace key keeps the file usable, and
//    the metadata service (acting as PKG) releases the unlock key only
//    after durably logging the binding — so even a thief who severs the
//    registration must later supply the true pathname to read the file;
//  * directory-scan detection triggers whole-directory key prefetching in
//    the same round trip as the demand fetch (§3.3);
//  * partial coverage (§3.6) leaves designated non-sensitive paths on the
//    plain EncFS path (no remote keys, no audit records).

#ifndef SRC_KEYPAD_KEYPAD_FS_H_
#define SRC_KEYPAD_KEYPAD_FS_H_

#include <map>
#include <memory>
#include <string>

#include "src/encfs/encfs.h"
#include "src/ibe/bf_ibe.h"
#include "src/keypad/config.h"
#include "src/keypad/key_cache.h"
#include "src/keypad/prefetcher.h"
#include "src/keyservice/key_client.h"
#include "src/keyservice/key_service_client.h"
#include "src/metaservice/metadata_service_client.h"

namespace keypad {

class KeypadFs : public EncFs {
 public:
  struct Services {
    KeyClient* key = nullptr;               // Not owned.
    MetadataServiceClient* meta = nullptr;  // Not owned.
    const IbePublicParams* ibe = nullptr;   // Not owned.
  };

  struct Stats {
    uint64_t cache_hits = 0;
    uint64_t demand_fetches = 0;      // Blocking key-service fetches.
    uint64_t keys_prefetched = 0;     // Keys pulled by prefetch batches.
    uint64_t creates_blocking = 0;    // Non-IBE creation barriers.
    uint64_t metadata_blocking = 0;   // Blocking metadata registrations.
    uint64_t metadata_async = 0;      // IBE-overlapped registrations.
    uint64_t ibe_locks = 0;
    uint64_t ibe_background_unlocks = 0;
    uint64_t ibe_blocking_unlocks = 0;
    uint64_t grace_hits = 0;
    uint64_t uncovered_ops = 0;       // Ops on files outside the coverage.
  };

  // Formats a fresh Keypad volume and registers its root directory with the
  // metadata service (blocking).
  static Result<std::unique_ptr<KeypadFs>> Format(
      BlockDevice* device, EventQueue* queue, uint64_t rng_seed,
      std::string_view password, EncFs::Options fs_options,
      KeypadConfig config, Services services);
  // Mounts an existing Keypad volume (the thief's path too: anyone with the
  // password and the device can mount; auditing happens server-side).
  static Result<std::unique_ptr<KeypadFs>> Mount(
      BlockDevice* device, EventQueue* queue, uint64_t rng_seed,
      std::string_view password, EncFs::Options fs_options,
      KeypadConfig config, Services services);

  ~KeypadFs() override;

  KeypadConfig& config() { return config_; }
  KeyCache& key_cache() { return cache_; }
  Prefetcher& prefetcher() { return prefetcher_; }
  const Stats& stats() const { return stats_; }
  void ResetStats();

  // Securely erases all cached keys and notifies the key service (device
  // hibernation / shutdown, §6).
  void Hibernate();

  // On-device service-credential store (sealed under the volume key): lets
  // a later mount — by the owner or by whoever holds the device and
  // password — reconstruct authenticated service clients.
  struct Credentials {
    std::string device_id;
    Bytes key_secret;
    Bytes meta_secret;
  };
  Status StoreCredentials(const Credentials& creds);
  static Result<Credentials> LoadCredentials(EncFs* fs);

 protected:
  Result<Bytes> ProvisionNewFile(const std::string& path, const DirId& dir_id,
                                 FileHeader* header) override;
  Result<Bytes> UnlockDataKey(const std::string& path, const DirId& dir_id,
                              FileHeader* header,
                              bool* header_dirty) override;
  Status OnRenameFile(const std::string& from, const std::string& to,
                      const DirId& old_dir_id, const DirId& new_dir_id,
                      const std::string& new_name, FileHeader* header,
                      bool* header_dirty) override;
  Status OnMkdir(const std::string& path, const DirId& dir_id,
                 const DirId& parent_id, const std::string& name) override;
  Status OnRenameDir(const DirId& dir_id, const DirId& new_parent_id,
                     const std::string& new_name) override;
  Status OnUnlink(const std::string& path, const FileHeader& header) override;

 private:
  KeypadFs(BlockDevice* device, EventQueue* queue, uint64_t rng_seed,
           EncFs::Options fs_options, KeypadConfig config, Services services);

  bool Covered(const std::string& path) const {
    return !config_.coverage || config_.coverage(path);
  }

  // Blocking demand fetch of K_R (consulting the prefetch policy); inserts
  // all fetched keys into the cache.
  Result<Bytes> FetchRemoteKey(const AuditId& id, const std::string& dir_path);
  // All cache inserts route through here so the brownout controller (if
  // configured) can apply — and account — its cache-lifetime policy.
  void CacheInsert(const AuditId& id, Bytes key);
  // Non-blocking refresh of an in-use key (logs kRefresh).
  void RefreshKeyAsync(const AuditId& id,
                       std::function<void(Result<Bytes>)> done);
  // Audit IDs of all protected files in a directory (local header reads).
  std::vector<AuditId> ListDirAuditIds(const std::string& dir_path);

  // --- Grace cache: cleartext K_D for files with in-flight metadata. ------
  void GraceInsert(const AuditId& id, Bytes kd);
  std::optional<Bytes> GraceLookup(const AuditId& id);
  void GraceErase(const AuditId& id);

  // --- Pending registrations for IBE-mode creations. -----------------------
  struct PendingCreate {
    std::string current_path;
    DirId dir_id;
    std::string name;
    Bytes kd;
    std::optional<Bytes> kr;
    bool meta_done = false;
    int key_retries_left = 0;
    int meta_retries_left = 0;
  };
  void SendPendingKeyCreate(const AuditId& id);
  void SendPendingMetaBind(const AuditId& id);
  void MaybeCompletePending(const AuditId& id);

  // IBE helpers. Tagged plaintexts: 0x00 || K_D (creation lock, no remote
  // key yet) or 0x01 || Wrap(K_R, K_D) (rename lock).
  Bytes IbeLockBlob(const std::string& identity, const Bytes& tagged);
  Result<Bytes> IbeUnlockBlob(const Bytes& blob, const Bytes& ibe_key_bytes,
                              const std::string& identity);
  // Registers the current binding (blocking) and unlocks the header.
  Result<Bytes> BlockingUnlock(const AuditId& id, const DirId& dir_id,
                               const std::string& name, FileHeader* header,
                               bool* header_dirty);
  // Background unlock when an async bind's IBE key arrives.
  void BackgroundUnlock(const AuditId& id, const std::string& identity,
                        const Bytes& ibe_key_bytes);

  KeypadConfig config_;
  Services services_;
  KeyCache cache_;
  Prefetcher prefetcher_;

  struct GraceEntry {
    Bytes kd;
    SimTime expires_at;
    EventQueue::EventId expiry_event;
  };
  std::map<AuditId, GraceEntry> grace_;
  std::map<AuditId, PendingCreate> pending_;
  // Current path of files with an outstanding async unlock (maintained
  // across renames so the background thread can find the file object).
  std::map<AuditId, std::string> lock_paths_;

  Stats stats_;
};

}  // namespace keypad

#endif  // SRC_KEYPAD_KEYPAD_FS_H_
