#include "src/keypad/paired_device.h"

#include "src/keyservice/auth.h"
#include "src/keyservice/key_service.h"
#include "src/metaservice/metadata_log.h"

namespace keypad {

PhoneProxy::PhoneProxy(EventQueue* queue, NetworkLink* uplink,
                       KeyServiceClient* key_upstream,
                       MetadataServiceClient* meta_upstream,
                       std::string device_id, Bytes key_secret,
                       Bytes meta_secret, Options options)
    : queue_(queue),
      uplink_(uplink),
      key_upstream_(key_upstream),
      meta_upstream_(meta_upstream),
      device_id_(std::move(device_id)),
      key_secret_(std::move(key_secret)),
      meta_secret_(std::move(meta_secret)),
      options_(options),
      server_(queue, options.service_time),
      hoard_(queue, options.hoard_ttl),
      local_rng_(uint64_t{0x9A13ED0C0FFEEull}) {
  BindHandlers();
}

void PhoneProxy::SetUplinkConnected(bool connected) {
  if (connected && !online_) {
    uplink_->set_disconnected(false);
    online_ = true;
    FlushJournals();
  } else if (!connected) {
    uplink_->set_disconnected(true);
    online_ = false;
  }
}

void PhoneProxy::JournalKeyAccess(const AuditId& id, AccessOp op) {
  KeyServiceClient::JournalEntry entry;
  entry.audit_id = id;
  entry.op = static_cast<int64_t>(op);
  entry.client_time = queue_->Now();
  key_journal_.push_back(std::move(entry));
  if (online_) {
    // Upload promptly so the service log stays current while connected —
    // asynchronously, off everyone's critical path.
    auto batch = std::move(key_journal_);
    key_journal_.clear();
    key_upstream_->UploadJournalAsync(batch, [this, batch](Status status) {
      if (status.ok()) {
        stats_.journal_entries_uploaded += batch.size();
      } else {
        key_journal_.insert(key_journal_.end(), batch.begin(), batch.end());
      }
    });
  }
}

void PhoneProxy::FlushJournals() {
  if (!key_journal_.empty()) {
    if (key_upstream_->UploadJournal(key_journal_).ok()) {
      stats_.journal_entries_uploaded += key_journal_.size();
      key_journal_.clear();
    }
  }
  if (!meta_journal_.empty()) {
    if (meta_upstream_->UploadJournal(meta_journal_).ok()) {
      stats_.journal_entries_uploaded += meta_journal_.size();
      meta_journal_.clear();
    }
  }
}

void PhoneProxy::BindHandlers() {
  using Responder = RpcServer::Responder;

  // Frame checking shared by every handler.
  auto authed = [this](const std::string& method, const Bytes& secret,
                       auto fn) -> RpcServer::AsyncHandler {
    return [this, method, secret, fn](const WireValue::Array& params,
                                      Responder respond) {
      auto call = SplitAuthedCall(params);
      if (!call.ok()) {
        respond(call.status());
        return;
      }
      if (call->device_id != device_id_) {
        respond(PermissionDeniedError("phone: not my paired device"));
        return;
      }
      Status auth = VerifyAuthTag(secret, method, *call);
      if (!auth.ok()) {
        respond(auth);
        return;
      }
      fn(call->payload, std::move(respond));
    };
  };

  server_.RegisterAsyncMethod(
      "key.get",
      authed("key.get", key_secret_,
             [this](const WireValue::Array& payload, Responder respond) {
               if (payload.size() != 2) {
                 respond(InvalidArgumentError("key.get: bad arity"));
                 return;
               }
               auto id_bytes = payload[0].AsBytes();
               auto op_int = payload[1].AsInt();
               if (!id_bytes.ok() || !op_int.ok()) {
                 respond(InvalidArgumentError("key.get: bad args"));
                 return;
               }
               auto id = AuditId::FromBytes(*id_bytes);
               AccessOp op = static_cast<AccessOp>(*op_int);

               if (auto key = hoard_.Lookup(*id)) {
                 ++stats_.served_from_hoard;
                 JournalKeyAccess(*id, op);
                 respond(WireValue(*key));
                 return;
               }
               if (!online_) {
                 respond(UnavailableError("phone: offline, key not hoarded"));
                 return;
               }
               ++stats_.forwarded_upstream;
               key_upstream_->GetKeyAsync(
                   *id, op,
                   [this, id = *id, respond = std::move(respond)](
                       Result<Bytes> result) {
                     if (!result.ok()) {
                       respond(result.status());
                       return;
                     }
                     hoard_.Insert(id, *result);
                     respond(WireValue(std::move(*result)));
                   });
             }));

  server_.RegisterAsyncMethod(
      "key.create",
      authed("key.create", key_secret_,
             [this](const WireValue::Array& payload, Responder respond) {
               if (payload.size() != 1) {
                 respond(InvalidArgumentError("key.create: bad arity"));
                 return;
               }
               auto id_bytes = payload[0].AsBytes();
               if (!id_bytes.ok()) {
                 respond(id_bytes.status());
                 return;
               }
               auto id = AuditId::FromBytes(*id_bytes);
               if (online_) {
                 ++stats_.forwarded_upstream;
                 key_upstream_->CreateKeyAsync(
                     *id, [this, id = *id, respond = std::move(respond)](
                              Result<Bytes> result) {
                       if (!result.ok()) {
                         respond(result.status());
                         return;
                       }
                       hoard_.Insert(id, *result);
                       respond(WireValue(std::move(*result)));
                     });
                 return;
               }
               // Disconnected create: the phone mints the remote key as a
               // trusted service extension and journals it for upload.
               ++stats_.offline_creates;
               Bytes key = local_rng_.NextBytes(KeyService::kRemoteKeyLen);
               hoard_.Insert(*id, key);
               KeyServiceClient::JournalEntry entry;
               entry.audit_id = *id;
               entry.op = static_cast<int64_t>(AccessOp::kCreate);
               entry.client_time = queue_->Now();
               entry.key = key;
               key_journal_.push_back(std::move(entry));
               respond(WireValue(std::move(key)));
             }));

  server_.RegisterAsyncMethod(
      "key.fetch_group",
      authed(
          "key.fetch_group", key_secret_,
          [this](const WireValue::Array& payload, Responder respond) {
            if (payload.size() != 2) {
              respond(InvalidArgumentError("key.fetch_group: bad arity"));
              return;
            }
            auto demand_bytes = payload[0].AsBytes();
            auto id_values = payload[1].AsArray();
            if (!demand_bytes.ok() || !id_values.ok()) {
              respond(InvalidArgumentError("key.fetch_group: bad args"));
              return;
            }
            AuditId demand_id = *AuditId::FromBytes(*demand_bytes);
            std::vector<AuditId> prefetch_ids;
            for (const auto& v : *id_values) {
              auto b = v.AsBytes();
              if (b.ok()) {
                prefetch_ids.push_back(*AuditId::FromBytes(*b));
              }
            }

            // State shared between the hoard-served part and the upstream
            // completion.
            struct GroupState {
              Bytes demand_key;
              bool demand_served = false;
              std::vector<std::pair<AuditId, Bytes>> prefetched;
            };
            auto state = std::make_shared<GroupState>();

            if (auto key = hoard_.Lookup(demand_id)) {
              state->demand_key = *key;
              state->demand_served = true;
              ++stats_.served_from_hoard;
              JournalKeyAccess(demand_id, AccessOp::kDemandFetch);
            }
            std::vector<AuditId> upstream_prefetch;
            for (const auto& id : prefetch_ids) {
              if (auto key = hoard_.Lookup(id)) {
                state->prefetched.emplace_back(id, *key);
                JournalKeyAccess(id, AccessOp::kPrefetch);
              } else {
                upstream_prefetch.push_back(id);
              }
            }

            auto respond_ptr =
                std::make_shared<Responder>(std::move(respond));
            auto finish = [state, respond_ptr]() {
              auto& respond = *respond_ptr;
              WireValue::Struct out;
              out.emplace("demand", WireValue(std::move(state->demand_key)));
              WireValue::Array prefetched_wire;
              for (auto& [id, key] : state->prefetched) {
                WireValue::Struct entry;
                entry.emplace("id", WireValue(id.ToBytes()));
                entry.emplace("key", WireValue(std::move(key)));
                prefetched_wire.push_back(WireValue(std::move(entry)));
              }
              out.emplace("prefetched",
                          WireValue(std::move(prefetched_wire)));
              respond(WireValue(std::move(out)));
            };

            if (!online_) {
              if (!state->demand_served) {
                (*respond_ptr)(
                    UnavailableError("phone: offline, key not hoarded"));
                return;
              }
              finish();
              return;
            }
            if (!state->demand_served) {
              ++stats_.forwarded_upstream;
              key_upstream_->FetchGroupAsync(
                  demand_id, upstream_prefetch,
                  [this, state, demand_id, finish, respond_ptr](
                      Result<KeyServiceClient::GroupFetch> result) {
                    if (!result.ok()) {
                      (*respond_ptr)(result.status());
                      return;
                    }
                    state->demand_key = result->demand_key;
                    hoard_.Insert(demand_id, result->demand_key);
                    for (auto& [id, key] : result->prefetched) {
                      hoard_.Insert(id, key);
                      state->prefetched.emplace_back(id, std::move(key));
                    }
                    finish();
                  });
              return;
            }
            if (!upstream_prefetch.empty()) {
              ++stats_.forwarded_upstream;
              key_upstream_->GetKeysAsync(
                  upstream_prefetch,
                  [this, state, finish](
                      Result<std::vector<std::pair<AuditId, Bytes>>> pairs) {
                    if (pairs.ok()) {
                      for (auto& [id, key] : *pairs) {
                        hoard_.Insert(id, key);
                        state->prefetched.emplace_back(id, std::move(key));
                      }
                    }
                    finish();
                  });
              return;
            }
            finish();
          }));

  server_.RegisterAsyncMethod(
      "key.evict",
      authed("key.evict", key_secret_,
             [this](const WireValue::Array& payload, Responder respond) {
               if (payload.size() != 1) {
                 respond(InvalidArgumentError("key.evict: bad arity"));
                 return;
               }
               auto id_bytes = payload[0].AsBytes();
               if (!id_bytes.ok()) {
                 respond(id_bytes.status());
                 return;
               }
               JournalKeyAccess(*AuditId::FromBytes(*id_bytes),
                                AccessOp::kEviction);
               respond(WireValue(true));
             }));

  server_.RegisterAsyncMethod(
      "meta.register_root",
      authed("meta.register_root", meta_secret_,
             [this](const WireValue::Array& payload, Responder respond) {
               if (payload.size() != 1) {
                 respond(
                     InvalidArgumentError("meta.register_root: bad arity"));
                 return;
               }
               auto id_bytes = payload[0].AsBytes();
               if (!id_bytes.ok()) {
                 respond(id_bytes.status());
                 return;
               }
               if (!online_) {
                 respond(UnavailableError(
                     "phone: offline (format requires connectivity)"));
                 return;
               }
               // Once-per-volume: the blocking forward is acceptable here.
               Status status =
                   meta_upstream_->RegisterRoot(*DirId::FromBytes(*id_bytes));
               if (!status.ok()) {
                 respond(status);
               } else {
                 respond(WireValue(true));
               }
             }));

  server_.RegisterAsyncMethod(
      "meta.bind_file",
      authed("meta.bind_file", meta_secret_,
             [this](const WireValue::Array& payload, Responder respond) {
               if (payload.size() != 4) {
                 respond(InvalidArgumentError("meta.bind_file: bad arity"));
                 return;
               }
               auto aid_bytes = payload[0].AsBytes();
               auto did_bytes = payload[1].AsBytes();
               auto name = payload[2].AsString();
               auto is_rename = payload[3].AsBool();
               if (!aid_bytes.ok() || !did_bytes.ok() || !name.ok() ||
                   !is_rename.ok()) {
                 respond(InvalidArgumentError("meta.bind_file: bad args"));
                 return;
               }
               AuditId aid = *AuditId::FromBytes(*aid_bytes);
               DirId did = *DirId::FromBytes(*did_bytes);
               if (online_) {
                 ++stats_.forwarded_upstream;
                 meta_upstream_->BindFileAsync(
                     aid, did, *name, *is_rename,
                     [respond = std::move(respond)](Result<Bytes> result) {
                       if (!result.ok()) {
                         respond(result.status());
                       } else {
                         respond(WireValue(std::move(*result)));
                       }
                     });
                 return;
               }
               // Offline: journal the binding. No IBE key can be produced
               // (the PKG master secret never leaves the service), so the
               // caller receives an empty key: non-IBE paths proceed,
               // IBE-locked files stay sealed until reconnection.
               MetadataServiceClient::JournalRecord record;
               record.op = static_cast<int64_t>(*is_rename
                                                    ? MetadataOp::kRenameFile
                                                    : MetadataOp::kCreateFile);
               record.audit_id = aid;
               record.dir_id = did;
               record.name = *name;
               record.client_time = queue_->Now();
               meta_journal_.push_back(std::move(record));
               respond(WireValue(Bytes{}));
             }));

  auto dir_op = [this](MetadataOp op) {
    return [this, op](const WireValue::Array& payload,
                      Responder respond) {
      if (payload.size() != 3) {
        respond(InvalidArgumentError("meta dir op: bad arity"));
        return;
      }
      auto did_bytes = payload[0].AsBytes();
      auto pid_bytes = payload[1].AsBytes();
      auto name = payload[2].AsString();
      if (!did_bytes.ok() || !pid_bytes.ok() || !name.ok()) {
        respond(InvalidArgumentError("meta dir op: bad args"));
        return;
      }
      DirId did = *DirId::FromBytes(*did_bytes);
      DirId pid = *DirId::FromBytes(*pid_bytes);
      if (online_) {
        ++stats_.forwarded_upstream;
        auto done = [respond = std::move(respond)](Status status) {
          if (!status.ok()) {
            respond(status);
          } else {
            respond(WireValue(true));
          }
        };
        if (op == MetadataOp::kMkdir) {
          meta_upstream_->MkdirAsync(did, pid, *name, std::move(done));
        } else {
          meta_upstream_->RenameDirAsync(did, pid, *name, std::move(done));
        }
        return;
      }
      MetadataServiceClient::JournalRecord record;
      record.op = static_cast<int64_t>(op);
      record.dir_id = did;
      record.parent_dir_id = pid;
      record.name = *name;
      record.client_time = queue_->Now();
      meta_journal_.push_back(std::move(record));
      respond(WireValue(true));
    };
  };
  server_.RegisterAsyncMethod(
      "meta.mkdir", authed("meta.mkdir", meta_secret_,
                           dir_op(MetadataOp::kMkdir)));
  server_.RegisterAsyncMethod(
      "meta.rename_dir", authed("meta.rename_dir", meta_secret_,
                                dir_op(MetadataOp::kRenameDir)));
}

}  // namespace keypad
