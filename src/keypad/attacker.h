// Attacker toolkit for security tests and the thief-workload benches
// (§5.2, §6).
//
// Models the paper's strongest attacker: full physical access to the device
// (disk image via BlockDevice::Snapshot), knowledge of the volume password
// (the sticky-note scenario), custom software (this code *is* the custom
// software — it parses the on-disk formats directly through the same
// library a thief could write), and the ability to talk to — or stay away
// from — the network. What it cannot do is decrypt a protected file without
// either the key service (which logs) or the metadata service (which logs
// and demands the true pathname).

#ifndef SRC_KEYPAD_ATTACKER_H_
#define SRC_KEYPAD_ATTACKER_H_

#include <memory>
#include <string>

#include "src/keypad/keypad_fs.h"

namespace keypad {

class RawDeviceAttacker {
 public:
  // Takes ownership of a disk snapshot. `queue` is the shared simulation
  // queue; the services/links are those of the deployment (the attacker
  // uses his own hardware but the same internet).
  RawDeviceAttacker(BlockDevice snapshot, std::string password,
                    EventQueue* queue);

  // --- Offline attacks (no network; e.g. extracted drive in a lab). -------

  // Enumerates the namespace. Works with the password alone (EncFS level).
  Result<std::vector<std::string>> ListAllPaths();
  // Attempts to read file content using only the device + password.
  // Succeeds only for files outside Keypad's protection domain.
  Result<Bytes> ReadFileOffline(const std::string& path);
  // Extracts the sealed service credentials (the thief can, since they are
  // protected only by the volume password).
  Result<KeypadFs::Credentials> StealCredentials();

  // --- Online attacks (thief connects the device/his clone to the net). ---

  // Mounts the snapshot as a Keypad volume with the stolen credentials and
  // the given service clients; every protected access will hit the audit
  // services exactly like a legitimate mount.
  Result<std::unique_ptr<KeypadFs>> MountOnline(KeypadFs::Services services,
                                                KeypadConfig config = {});

  BlockDevice* snapshot() { return &snapshot_; }

 private:
  Result<EncFs*> VanillaMount();

  BlockDevice snapshot_;
  std::string password_;
  EventQueue* queue_;
  std::unique_ptr<EncFs> vanilla_;  // Lazily mounted.
};

}  // namespace keypad

#endif  // SRC_KEYPAD_ATTACKER_H_
