// Client-side cache of remote keys K_R_F with expiration and in-use refresh
// (§3.3, §4 "Key Expiration").
//
// Semantics from the paper:
//  * Every cached key expires Texp after it was (re)fetched; a background
//    purger securely erases expired keys.
//  * If the key was reused during its expiration period, the purger
//    re-requests it from the key service (producing an audit record). If
//    the response arrives, the expiration is extended; otherwise the key is
//    removed. Thus keys never expire while in use, absent network failures.
//  * The set of keys in memory at T_loss is exactly what the forensic
//    auditor must assume compromised; the cache keeps a time-integral of
//    its size so Fig. 11's "average number of in-memory keys" is exact.

#ifndef SRC_KEYPAD_KEY_CACHE_H_
#define SRC_KEYPAD_KEY_CACHE_H_

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/util/bytes.h"
#include "src/util/ids.h"
#include "src/util/result.h"

namespace keypad {

class KeyCache {
 public:
  // `refresh` re-fetches a key asynchronously; it reports the new key (or
  // failure) through the callback. May be empty (no refresh; keys simply
  // expire), which tests use for strict-expiry behaviour.
  using RefreshFn = std::function<void(
      const AuditId&, std::function<void(Result<Bytes>)>)>;

  KeyCache(EventQueue* queue, SimDuration texp);
  ~KeyCache();

  void set_refresh(RefreshFn refresh) { refresh_ = std::move(refresh); }
  SimDuration texp() const { return texp_; }
  void set_texp(SimDuration texp) { texp_ = texp; }

  // Returns the key and marks the entry used (which arms the in-use
  // refresh at expiry).
  std::optional<Bytes> Lookup(const AuditId& id);
  bool Contains(const AuditId& id) const;

  void Insert(const AuditId& id, Bytes key);

  // Securely erases one key.
  void Erase(const AuditId& id);
  // Securely erases everything (hibernation / shutdown). Returns the IDs
  // erased so the caller can send eviction notices.
  std::vector<AuditId> Clear();

  size_t size() const { return entries_.size(); }
  std::vector<AuditId> CurrentKeys() const;

  // --- Statistics. ----------------------------------------------------------
  uint64_t hits() const { return hits_; }
  uint64_t insertions() const { return insertions_; }
  uint64_t refreshes_started() const { return refreshes_started_; }
  // Time-average of size() over [since, now].
  double AverageSizeSince(SimTime since) const;
  void ResetStats();

 private:
  struct Entry {
    Bytes key;
    SimTime expires_at;
    bool used_since_fetch = false;
    bool refreshing = false;
    EventQueue::EventId expiry_event = EventQueue::kInvalidEvent;
  };

  void OnExpiry(const AuditId& id);
  void Accumulate();  // Folds size()*dt into the integral.

  EventQueue* queue_;
  SimDuration texp_;
  RefreshFn refresh_;
  std::map<AuditId, Entry> entries_;

  uint64_t hits_ = 0;
  uint64_t insertions_ = 0;
  uint64_t refreshes_started_ = 0;

  // Integral of size() over time for exact averages.
  SimTime integral_reset_time_;
  SimTime last_change_;
  double size_time_integral_ = 0;  // In (keys * seconds).
};

}  // namespace keypad

#endif  // SRC_KEYPAD_KEY_CACHE_H_
