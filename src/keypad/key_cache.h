// Client-side cache of remote keys K_R_F with expiration and in-use refresh
// (§3.3, §4 "Key Expiration").
//
// Semantics from the paper:
//  * Every cached key expires Texp after it was (re)fetched; a background
//    purger securely erases expired keys.
//  * If the key was reused during its expiration period, the purger
//    re-requests it from the key service (producing an audit record). If
//    the response arrives, the expiration is extended; otherwise the key is
//    removed. Thus keys never expire while in use, absent network failures.
//  * The set of keys in memory at T_loss is exactly what the forensic
//    auditor must assume compromised; the cache keeps a time-integral of
//    its size so Fig. 11's "average number of in-memory keys" is exact.
//
// Layout (DESIGN.md §13): the old std::map + one-timer-per-entry design put
// an O(log n) ordered tree and a heap event on every open()'s fast path. The
// store is now a sharded open-addressing hash table — the same layout a
// lock-free in-kernel cache would use, with the id's own random bytes as the
// hash — and expiry runs as one epoch sweep per shard, armed at the shard's
// earliest expiry instead of one timer per key. Sweeps fire at exactly the
// same virtual times the per-entry timers did, so expiry-visible behaviour
// (and the exposure-window integral) is bit-identical; the table just does
// it with O(1) probes and 16 standing events instead of n.

#ifndef SRC_KEYPAD_KEY_CACHE_H_
#define SRC_KEYPAD_KEY_CACHE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/util/bytes.h"
#include "src/util/ids.h"
#include "src/util/result.h"

namespace keypad {

class KeyCache {
 public:
  // `refresh` re-fetches a key asynchronously; it reports the new key (or
  // failure) through the callback. May be empty (no refresh; keys simply
  // expire), which tests use for strict-expiry behaviour.
  using RefreshFn = std::function<void(
      const AuditId&, std::function<void(Result<Bytes>)>)>;

  KeyCache(EventQueue* queue, SimDuration texp);
  ~KeyCache();

  void set_refresh(RefreshFn refresh) { refresh_ = std::move(refresh); }
  SimDuration texp() const { return texp_; }
  void set_texp(SimDuration texp) { texp_ = texp; }

  // Returns the key and marks the entry used (which arms the in-use
  // refresh at expiry).
  std::optional<Bytes> Lookup(const AuditId& id);
  bool Contains(const AuditId& id) const;

  void Insert(const AuditId& id, Bytes key);
  // Insert with an explicit lifetime instead of the configured texp (the
  // brownout controller's accounted cache-lifetime stretching).
  void Insert(const AuditId& id, Bytes key, SimDuration lifetime);

  // Securely erases one key.
  void Erase(const AuditId& id);
  // Securely erases everything (hibernation / shutdown). Returns the IDs
  // erased so the caller can send eviction notices.
  std::vector<AuditId> Clear();

  size_t size() const { return size_; }
  std::vector<AuditId> CurrentKeys() const;

  // --- Statistics. ----------------------------------------------------------
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t insertions() const { return insertions_; }
  uint64_t refreshes_started() const { return refreshes_started_; }
  // Epoch-sweep observability: sweep wakeups and keys erased by them.
  uint64_t sweeps() const { return sweeps_; }
  uint64_t expired_swept() const { return expired_swept_; }
  // Time-average of size() over [since, now].
  double AverageSizeSince(SimTime since) const;
  void ResetStats();

 private:
  static constexpr size_t kShardCount = 16;       // Power of two.
  static constexpr size_t kInitialSlots = 16;     // Per shard, power of two.

  struct Slot {
    enum class State : uint8_t { kEmpty, kFull, kTombstone };
    State state = State::kEmpty;
    AuditId id;
    Bytes key;
    SimTime expires_at;
    bool used_since_fetch = false;
    bool refreshing = false;
  };

  struct Shard {
    std::vector<Slot> slots;
    size_t full = 0;      // kFull slots.
    size_t occupied = 0;  // kFull + kTombstone (probe-chain load).
    EventQueue::EventId sweep_event = EventQueue::kInvalidEvent;
    SimTime sweep_at;
  };

  // The id is 192 uniformly random bits (paper §4): its leading bytes are
  // already an ideal hash.
  static uint64_t HashOf(const AuditId& id) {
    uint64_t h = 0;
    for (size_t i = 0; i < 8; ++i) {
      h = (h << 8) | id.v[i];
    }
    return h;
  }
  Shard& ShardFor(const AuditId& id) {
    return shards_[HashOf(id) % kShardCount];
  }
  const Shard& ShardFor(const AuditId& id) const {
    return shards_[HashOf(id) % kShardCount];
  }

  Slot* Find(Shard& shard, const AuditId& id);
  const Slot* Find(const Shard& shard, const AuditId& id) const;
  Slot* InsertSlot(Shard& shard, const AuditId& id);  // Grows as needed.
  void Grow(Shard& shard);
  void EraseSlot(Shard& shard, Slot& slot);

  // Re-arms `shard`'s sweep if `at` is earlier than the armed wakeup (or
  // nothing is armed).
  void ArmSweepIfEarlier(size_t shard_index, SimTime at);
  // Expires everything due in the shard, then re-arms at the next-earliest
  // non-refreshing entry.
  void Sweep(size_t shard_index);

  void Accumulate();  // Folds size()*dt into the integral.

  EventQueue* queue_;
  SimDuration texp_;
  RefreshFn refresh_;
  Shard shards_[kShardCount];
  size_t size_ = 0;

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t refreshes_started_ = 0;
  uint64_t sweeps_ = 0;
  uint64_t expired_swept_ = 0;

  // Integral of size() over time for exact averages.
  SimTime integral_reset_time_;
  SimTime last_change_;
  double size_time_integral_ = 0;  // In (keys * seconds).
};

}  // namespace keypad

#endif  // SRC_KEYPAD_KEY_CACHE_H_
