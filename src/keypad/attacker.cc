#include "src/keypad/attacker.h"

#include "src/util/strings.h"

namespace keypad {

RawDeviceAttacker::RawDeviceAttacker(BlockDevice snapshot,
                                     std::string password, EventQueue* queue)
    : snapshot_(std::move(snapshot)),
      password_(std::move(password)),
      queue_(queue) {}

Result<EncFs*> RawDeviceAttacker::VanillaMount() {
  if (vanilla_ == nullptr) {
    // The attacker's own EncFS implementation: plain password mount. The
    // FS cost model is irrelevant to the attacker; defaults are fine.
    KP_ASSIGN_OR_RETURN(vanilla_,
                        EncFs::Mount(&snapshot_, queue_, /*rng_seed=*/0xBAD,
                                     password_, EncFs::Options{}));
  }
  return vanilla_.get();
}

Result<std::vector<std::string>> RawDeviceAttacker::ListAllPaths() {
  KP_ASSIGN_OR_RETURN(EncFs * fs, VanillaMount());
  std::vector<std::string> out;
  std::vector<std::string> stack = {"/"};
  while (!stack.empty()) {
    std::string dir = stack.back();
    stack.pop_back();
    KP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, fs->Readdir(dir));
    for (const auto& entry : entries) {
      std::string path = PathJoin(dir, entry.name);
      out.push_back(path);
      if (entry.is_dir) {
        stack.push_back(path);
      }
    }
  }
  return out;
}

Result<Bytes> RawDeviceAttacker::ReadFileOffline(const std::string& path) {
  KP_ASSIGN_OR_RETURN(EncFs * fs, VanillaMount());
  return fs->ReadAll(path);
}

Result<KeypadFs::Credentials> RawDeviceAttacker::StealCredentials() {
  KP_ASSIGN_OR_RETURN(EncFs * fs, VanillaMount());
  return KeypadFs::LoadCredentials(fs);
}

Result<std::unique_ptr<KeypadFs>> RawDeviceAttacker::MountOnline(
    KeypadFs::Services services, KeypadConfig config) {
  return KeypadFs::Mount(&snapshot_, queue_, /*rng_seed=*/0xBAD2, password_,
                         EncFs::Options{}, std::move(config), services);
}

}  // namespace keypad
