// Paired-device architecture (§3.5, Figure 4): a phone on a short-range
// Bluetooth link acts as a transparent extension of the key and metadata
// services.
//
// The laptop's Keypad talks its normal RPC protocol — but to the phone's
// server over Bluetooth instead of the internet. The phone:
//  * hoards recently used keys and serves them locally (a caching proxy
//    that hides cellular RTTs — Fig. 8b);
//  * when its uplink is connected, forwards misses upstream and immediately
//    uploads a journal record for every hoard-served access, so the
//    services' logs stay complete;
//  * when disconnected, serves from the hoard, locally generates remote
//    keys for new files, and journals every access/creation/namespace
//    event; on reconnection it uploads the journals in bulk.
//
// Auditing: if only the laptop is lost, the phone (still with the user)
// plus the service logs give a full audit trail. If both are lost, the
// hoard's contents bound the extra exposure (directory granularity).

#ifndef SRC_KEYPAD_PAIRED_DEVICE_H_
#define SRC_KEYPAD_PAIRED_DEVICE_H_

#include <map>
#include <string>
#include <vector>

#include "src/keypad/key_cache.h"
#include "src/keyservice/key_service_client.h"
#include "src/metaservice/metadata_service_client.h"
#include "src/rpc/rpc.h"

namespace keypad {

class PhoneProxy {
 public:
  struct Options {
    // How long hoarded keys are kept. Long by design: the phone is assumed
    // to stay with the user (and its loss is accounted for in auditing).
    SimDuration hoard_ttl = SimDuration::Hours(1);
    SimDuration service_time = SimDuration::Micros(200);
  };

  // `uplink` is the phone's own internet link (cellular/WiFi);
  // `key_upstream`/`meta_upstream` are client stubs over that link.
  // `key_secret`/`meta_secret` authenticate the laptop's frames (the phone
  // is paired, so it shares the device credentials).
  PhoneProxy(EventQueue* queue, NetworkLink* uplink,
             KeyServiceClient* key_upstream,
             MetadataServiceClient* meta_upstream, std::string device_id,
             Bytes key_secret, Bytes meta_secret,
             Options options);

  // The server the laptop's Bluetooth RPC clients target.
  RpcServer* server() { return &server_; }

  bool online() const { return online_; }
  // Connecting flushes the journals upstream (blocking) and reconnects the
  // uplink; disconnecting severs it.
  void SetUplinkConnected(bool connected);

  // Exposure accounting for the both-devices-lost case.
  std::vector<AuditId> HoardedKeys() const { return hoard_.CurrentKeys(); }
  size_t hoard_size() const { return hoard_.size(); }
  size_t key_journal_size() const { return key_journal_.size(); }
  size_t meta_journal_size() const { return meta_journal_.size(); }

  struct Stats {
    uint64_t served_from_hoard = 0;
    uint64_t forwarded_upstream = 0;
    uint64_t offline_creates = 0;
    uint64_t journal_entries_uploaded = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void BindHandlers();
  void JournalKeyAccess(const AuditId& id, AccessOp op);
  void FlushJournals();

  EventQueue* queue_;
  NetworkLink* uplink_;
  KeyServiceClient* key_upstream_;
  MetadataServiceClient* meta_upstream_;
  std::string device_id_;
  Bytes key_secret_;
  Bytes meta_secret_;
  Options options_;

  RpcServer server_;
  KeyCache hoard_;
  SecureRandom local_rng_;
  bool online_ = true;

  std::vector<KeyServiceClient::JournalEntry> key_journal_;
  std::vector<MetadataServiceClient::JournalRecord> meta_journal_;
  Stats stats_;
};

}  // namespace keypad

#endif  // SRC_KEYPAD_PAIRED_DEVICE_H_
