// Directory-key prefetch policies (§3.3, §4 "Key Prefetching").
//
// The prototype's default is "full-directory-prefetch on the 3rd miss":
// per-directory miss counters detect a scanning workload; once a directory
// accumulates N key-cache misses, the keys for all its files are fetched in
// the same round trip as the triggering demand fetch. Prefetches are never
// recursive, bounding false positives to one directory (§5.2). A random
// policy is kept for the ablation comparison the paper mentions.

#ifndef SRC_KEYPAD_PREFETCHER_H_
#define SRC_KEYPAD_PREFETCHER_H_

#include <functional>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "src/keypad/config.h"
#include "src/sim/random.h"
#include "src/util/ids.h"

namespace keypad {

class Prefetcher {
 public:
  Prefetcher(PrefetchPolicy policy, uint64_t rng_seed)
      : policy_(policy), rng_(rng_seed) {}

  const PrefetchPolicy& policy() const { return policy_; }
  void set_policy(PrefetchPolicy policy) { policy_ = policy; }

  // Called on a key-cache miss for a file in `dir_path`. Returns the audit
  // IDs to prefetch alongside the demand fetch (possibly empty).
  // `list_siblings` enumerates the protected files in the directory lazily
  // (it costs local header reads, so it only runs when the policy fires).
  std::vector<AuditId> OnMiss(
      const std::string& dir_path, const AuditId& missed_id,
      const std::function<std::vector<AuditId>()>& list_siblings);

  void Reset() {
    miss_counts_.clear();
    lru_.clear();
  }

  uint64_t prefetch_batches() const { return prefetch_batches_; }
  uint64_t keys_prefetched() const { return keys_prefetched_; }
  // Directories currently holding a miss counter (bounded by the policy's
  // max_tracked_dirs).
  size_t tracked_dirs() const { return miss_counts_.size(); }
  void ResetStats() {
    prefetch_batches_ = 0;
    keys_prefetched_ = 0;
  }

 private:
  struct DirMisses {
    int count = 0;
    std::list<std::string>::iterator lru_it;
  };

  // Bumps (or creates) the counter for `dir_path`, evicting the least
  // recently missed directory when the table is at its policy cap.
  int& TouchDir(const std::string& dir_path);

  PrefetchPolicy policy_;
  SimRandom rng_;
  // Per-directory miss counters with LRU recency (front = most recent).
  std::map<std::string, DirMisses> miss_counts_;
  std::list<std::string> lru_;
  uint64_t prefetch_batches_ = 0;
  uint64_t keys_prefetched_ = 0;
};

}  // namespace keypad

#endif  // SRC_KEYPAD_PREFETCHER_H_
