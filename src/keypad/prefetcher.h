// Directory-key prefetch policies (§3.3, §4 "Key Prefetching").
//
// The prototype's default is "full-directory-prefetch on the 3rd miss":
// per-directory miss counters detect a scanning workload; once a directory
// accumulates N key-cache misses, the keys for all its files are fetched in
// the same round trip as the triggering demand fetch. Prefetches are never
// recursive, bounding false positives to one directory (§5.2). A random
// policy is kept for the ablation comparison the paper mentions.
//
// Prefetcher v2 (kSequenceHints, DESIGN.md §13) replaces the per-directory
// heuristic with a learned one: OnAccess() feeds every covered open into a
// first-order Markov successor table, and a miss emits the successors that
// historically followed the missed file — confidence-gated, so one-off
// transitions never pollute the forensic report with prefetch-only keys.
// KEYPAD_PREFETCH=none|random|fulldir|seq overrides the configured policy
// for A/B runs without recompiling.

#ifndef SRC_KEYPAD_PREFETCHER_H_
#define SRC_KEYPAD_PREFETCHER_H_

#include <functional>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "src/keypad/config.h"
#include "src/sim/random.h"
#include "src/util/ids.h"

namespace keypad {

class Prefetcher {
 public:
  Prefetcher(PrefetchPolicy policy, uint64_t rng_seed)
      : policy_(policy), rng_(rng_seed) {}

  const PrefetchPolicy& policy() const { return policy_; }
  void set_policy(PrefetchPolicy policy) { policy_ = policy; }

  // Called on a key-cache miss for a file in `dir_path`. Returns the audit
  // IDs to prefetch alongside the demand fetch (possibly empty).
  // `list_siblings` enumerates the protected files in the directory lazily
  // (it costs local header reads, so it only runs when the policy fires).
  std::vector<AuditId> OnMiss(
      const std::string& dir_path, const AuditId& missed_id,
      const std::function<std::vector<AuditId>()>& list_siblings);

  // v2 learning hook: called on every covered open (hit or miss) so the
  // successor table sees the true access order, not just the misses.
  // Cheap no-op under the other policies.
  void OnAccess(const AuditId& id);

  void Reset() {
    miss_counts_.clear();
    lru_.clear();
    successors_.clear();
    seq_lru_.clear();
    has_prev_ = false;
  }

  uint64_t prefetch_batches() const { return prefetch_batches_; }
  uint64_t keys_prefetched() const { return keys_prefetched_; }
  // Directories currently holding a miss counter (bounded by the policy's
  // max_tracked_dirs).
  size_t tracked_dirs() const { return miss_counts_.size(); }
  // Predecessors currently holding a successor list (bounded by the
  // policy's max_tracked_files).
  size_t tracked_files() const { return successors_.size(); }
  void ResetStats() {
    prefetch_batches_ = 0;
    keys_prefetched_ = 0;
  }

 private:
  struct DirMisses {
    int count = 0;
    std::list<std::string>::iterator lru_it;
  };
  // Successor counts for one predecessor, most-hit first. Bounded to the
  // policy fanout × 2 so a file with churning followers keeps only the
  // strongest transitions.
  struct Successors {
    std::vector<std::pair<AuditId, int>> counts;
    std::list<AuditId>::iterator lru_it;
  };

  // Bumps (or creates) the counter for `dir_path`, evicting the least
  // recently missed directory when the table is at its policy cap.
  int& TouchDir(const std::string& dir_path);
  Successors& TouchFile(const AuditId& id);

  PrefetchPolicy policy_;
  SimRandom rng_;
  // Per-directory miss counters with LRU recency (front = most recent).
  std::map<std::string, DirMisses> miss_counts_;
  std::list<std::string> lru_;
  // v2 Markov table: predecessor → weighted successors, LRU-bounded.
  std::map<AuditId, Successors> successors_;
  std::list<AuditId> seq_lru_;
  AuditId prev_;
  bool has_prev_ = false;
  uint64_t prefetch_batches_ = 0;
  uint64_t keys_prefetched_ = 0;
};

// Applies the KEYPAD_PREFETCH environment override (none / random /
// fulldir / seq) to a configured policy; returns the policy unchanged when
// the variable is unset or unrecognized.
PrefetchPolicy ApplyPrefetchPolicyEnv(PrefetchPolicy configured);

}  // namespace keypad

#endif  // SRC_KEYPAD_PREFETCHER_H_
