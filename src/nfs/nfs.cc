#include "src/nfs/nfs.h"

namespace keypad {

// --- Server. -------------------------------------------------------------------

NfsServer::NfsServer(EventQueue* queue, uint64_t rng_seed) {
  EncFs::Options options;
  options.encrypt = false;
  options.costs = FsCostModel::Ext3();
  auto fs = EncFs::Format(&device_, queue, rng_seed, "", options);
  fs_ = std::move(*fs);
}

void NfsServer::BindRpc(RpcServer* server) {
  // Change counters give the client's caches something to validate against.
  auto changes = std::make_shared<std::map<std::string, int64_t>>();
  auto bump = [changes](const std::string& path) { ++(*changes)[path]; };
  auto change_of = [changes](const std::string& path) {
    auto it = changes->find(path);
    return it == changes->end() ? int64_t{0} : it->second;
  };

  server->RegisterMethod(
      "nfs.getattr",
      [this, change_of](const WireValue::Array& params) -> Result<WireValue> {
        KP_ASSIGN_OR_RETURN(std::string path, params.at(0).AsString());
        KP_ASSIGN_OR_RETURN(StatInfo info, fs_->Stat(path));
        WireValue::Struct out;
        out.emplace("dir", WireValue(info.is_dir));
        out.emplace("size", WireValue(static_cast<int64_t>(info.size)));
        out.emplace("change", WireValue(change_of(path)));
        return WireValue(std::move(out));
      });

  server->RegisterMethod(
      "nfs.read_all",
      [this, change_of](const WireValue::Array& params) -> Result<WireValue> {
        KP_ASSIGN_OR_RETURN(std::string path, params.at(0).AsString());
        KP_ASSIGN_OR_RETURN(Bytes content, fs_->ReadAll(path));
        WireValue::Struct out;
        out.emplace("data", WireValue(std::move(content)));
        out.emplace("change", WireValue(change_of(path)));
        return WireValue(std::move(out));
      });

  server->RegisterMethod(
      "nfs.write_batch",
      [this, bump](const WireValue::Array& params) -> Result<WireValue> {
        KP_ASSIGN_OR_RETURN(std::string path, params.at(0).AsString());
        KP_ASSIGN_OR_RETURN(WireValue::Array chunks, params.at(1).AsArray());
        for (const auto& chunk : chunks) {
          KP_ASSIGN_OR_RETURN(WireValue off_v, chunk.Field("off"));
          KP_ASSIGN_OR_RETURN(int64_t off, off_v.AsInt());
          KP_ASSIGN_OR_RETURN(WireValue data_v, chunk.Field("data"));
          KP_ASSIGN_OR_RETURN(Bytes data, data_v.AsBytes());
          KP_RETURN_IF_ERROR(
              fs_->Write(path, static_cast<uint64_t>(off), data));
        }
        bump(path);
        return WireValue(true);
      });

  server->RegisterMethod(
      "nfs.create",
      [this, bump](const WireValue::Array& params) -> Result<WireValue> {
        KP_ASSIGN_OR_RETURN(std::string path, params.at(0).AsString());
        KP_RETURN_IF_ERROR(fs_->Create(path));
        bump(path);
        return WireValue(true);
      });

  server->RegisterMethod(
      "nfs.mkdir",
      [this](const WireValue::Array& params) -> Result<WireValue> {
        KP_ASSIGN_OR_RETURN(std::string path, params.at(0).AsString());
        KP_RETURN_IF_ERROR(fs_->Mkdir(path));
        return WireValue(true);
      });

  server->RegisterMethod(
      "nfs.rename",
      [this, bump](const WireValue::Array& params) -> Result<WireValue> {
        KP_ASSIGN_OR_RETURN(std::string from, params.at(0).AsString());
        KP_ASSIGN_OR_RETURN(std::string to, params.at(1).AsString());
        KP_RETURN_IF_ERROR(fs_->Rename(from, to));
        bump(from);
        bump(to);
        return WireValue(true);
      });

  server->RegisterMethod(
      "nfs.unlink",
      [this, bump](const WireValue::Array& params) -> Result<WireValue> {
        KP_ASSIGN_OR_RETURN(std::string path, params.at(0).AsString());
        KP_RETURN_IF_ERROR(fs_->Unlink(path));
        bump(path);
        return WireValue(true);
      });

  server->RegisterMethod(
      "nfs.rmdir",
      [this](const WireValue::Array& params) -> Result<WireValue> {
        KP_ASSIGN_OR_RETURN(std::string path, params.at(0).AsString());
        KP_RETURN_IF_ERROR(fs_->Rmdir(path));
        return WireValue(true);
      });

  server->RegisterMethod(
      "nfs.readdir",
      [this](const WireValue::Array& params) -> Result<WireValue> {
        KP_ASSIGN_OR_RETURN(std::string path, params.at(0).AsString());
        KP_ASSIGN_OR_RETURN(std::vector<DirEntry> entries,
                            fs_->Readdir(path));
        WireValue::Array out;
        for (const auto& entry : entries) {
          WireValue::Struct e;
          e.emplace("name", WireValue(entry.name));
          e.emplace("dir", WireValue(entry.is_dir));
          out.push_back(WireValue(std::move(e)));
        }
        return WireValue(std::move(out));
      });
}

// --- Client. -------------------------------------------------------------------

NfsClient::NfsClient(EventQueue* queue, RpcClient* rpc, Options options)
    : queue_(queue), rpc_(rpc), options_(options) {}

Result<WireValue> NfsClient::Call(const std::string& method,
                                  WireValue::Array params) {
  ++rpcs_sent_;
  return rpc_->Call(method, std::move(params));
}

void NfsClient::Invalidate(const std::string& path) {
  attr_cache_.erase(path);
  data_cache_.erase(path);
}

Result<NfsClient::CachedAttrs> NfsClient::GetAttrs(const std::string& path) {
  auto it = attr_cache_.find(path);
  if (it != attr_cache_.end() &&
      queue_->Now() - it->second.fetched_at < options_.attr_ttl) {
    return it->second;
  }
  KP_ASSIGN_OR_RETURN(WireValue result, Call("nfs.getattr", {WireValue(path)}));
  CachedAttrs attrs;
  KP_ASSIGN_OR_RETURN(WireValue dir_v, result.Field("dir"));
  KP_ASSIGN_OR_RETURN(attrs.info.is_dir, dir_v.AsBool());
  KP_ASSIGN_OR_RETURN(WireValue size_v, result.Field("size"));
  KP_ASSIGN_OR_RETURN(int64_t size, size_v.AsInt());
  attrs.info.size = static_cast<uint64_t>(size);
  KP_ASSIGN_OR_RETURN(WireValue change_v, result.Field("change"));
  KP_ASSIGN_OR_RETURN(int64_t change, change_v.AsInt());
  attrs.change_counter = static_cast<uint64_t>(change);
  attrs.fetched_at = queue_->Now();
  attr_cache_[path] = attrs;
  return attrs;
}

Status NfsClient::FlushPath(const std::string& path) {
  auto it = write_buffers_.find(path);
  if (it == write_buffers_.end() || it->second.chunks.empty()) {
    return Status::Ok();
  }
  WireValue::Array chunks;
  for (auto& [offset, data] : it->second.chunks) {
    WireValue::Struct chunk;
    chunk.emplace("off", WireValue(static_cast<int64_t>(offset)));
    chunk.emplace("data", WireValue(std::move(data)));
    chunks.push_back(WireValue(std::move(chunk)));
  }
  write_buffers_.erase(it);
  Invalidate(path);
  auto result =
      Call("nfs.write_batch", {WireValue(path), WireValue(std::move(chunks))});
  return result.status();
}

Status NfsClient::FlushAll() {
  std::vector<std::string> paths;
  for (const auto& [path, buffer] : write_buffers_) {
    paths.push_back(path);
  }
  for (const auto& path : paths) {
    KP_RETURN_IF_ERROR(FlushPath(path));
  }
  return Status::Ok();
}

Status NfsClient::Create(const std::string& path) {
  queue_->AdvanceBy(options_.client_op_cost);
  Invalidate(path);
  return Call("nfs.create", {WireValue(path)}).status();
}

Result<Bytes> NfsClient::Read(const std::string& path, uint64_t offset,
                              size_t len) {
  queue_->AdvanceBy(options_.client_op_cost);
  KP_RETURN_IF_ERROR(FlushPath(path));  // Read-your-writes.
  KP_ASSIGN_OR_RETURN(CachedAttrs attrs, GetAttrs(path));

  auto cached = data_cache_.find(path);
  if (cached == data_cache_.end() ||
      cached->second.change_counter != attrs.change_counter) {
    KP_ASSIGN_OR_RETURN(WireValue result,
                        Call("nfs.read_all", {WireValue(path)}));
    CachedData data;
    KP_ASSIGN_OR_RETURN(WireValue data_v, result.Field("data"));
    KP_ASSIGN_OR_RETURN(data.content, data_v.AsBytes());
    KP_ASSIGN_OR_RETURN(WireValue change_v, result.Field("change"));
    KP_ASSIGN_OR_RETURN(int64_t change, change_v.AsInt());
    data.change_counter = static_cast<uint64_t>(change);
    cached = data_cache_.insert_or_assign(path, std::move(data)).first;
  }
  const Bytes& content = cached->second.content;
  if (offset >= content.size()) {
    return Bytes{};
  }
  size_t end = std::min(content.size(), static_cast<size_t>(offset) + len);
  return Bytes(content.begin() + static_cast<long>(offset),
               content.begin() + static_cast<long>(end));
}

Status NfsClient::Write(const std::string& path, uint64_t offset,
                        const Bytes& data) {
  queue_->AdvanceBy(options_.client_op_cost);
  WriteBuffer& buffer = write_buffers_[path];
  buffer.bytes += data.size();
  buffer.chunks.emplace_back(offset, data);
  if (buffer.bytes >= options_.write_buffer_limit) {
    return FlushPath(path);
  }
  return Status::Ok();
}

Status NfsClient::Mkdir(const std::string& path) {
  queue_->AdvanceBy(options_.client_op_cost);
  return Call("nfs.mkdir", {WireValue(path)}).status();
}

Status NfsClient::Rename(const std::string& from, const std::string& to) {
  queue_->AdvanceBy(options_.client_op_cost);
  KP_RETURN_IF_ERROR(FlushPath(from));
  Invalidate(from);
  Invalidate(to);
  return Call("nfs.rename", {WireValue(from), WireValue(to)}).status();
}

Status NfsClient::Unlink(const std::string& path) {
  queue_->AdvanceBy(options_.client_op_cost);
  write_buffers_.erase(path);
  Invalidate(path);
  return Call("nfs.unlink", {WireValue(path)}).status();
}

Status NfsClient::Rmdir(const std::string& path) {
  queue_->AdvanceBy(options_.client_op_cost);
  return Call("nfs.rmdir", {WireValue(path)}).status();
}

Result<std::vector<DirEntry>> NfsClient::Readdir(const std::string& path) {
  queue_->AdvanceBy(options_.client_op_cost);
  KP_ASSIGN_OR_RETURN(WireValue result, Call("nfs.readdir", {WireValue(path)}));
  KP_ASSIGN_OR_RETURN(WireValue::Array entries, result.AsArray());
  std::vector<DirEntry> out;
  for (const auto& entry : entries) {
    DirEntry e;
    KP_ASSIGN_OR_RETURN(WireValue name_v, entry.Field("name"));
    KP_ASSIGN_OR_RETURN(e.name, name_v.AsString());
    KP_ASSIGN_OR_RETURN(WireValue dir_v, entry.Field("dir"));
    KP_ASSIGN_OR_RETURN(e.is_dir, dir_v.AsBool());
    out.push_back(std::move(e));
  }
  return out;
}

Result<StatInfo> NfsClient::Stat(const std::string& path) {
  queue_->AdvanceBy(options_.client_op_cost);
  KP_RETURN_IF_ERROR(FlushPath(path));
  KP_ASSIGN_OR_RETURN(CachedAttrs attrs, GetAttrs(path));
  return attrs.info;
}

}  // namespace keypad
