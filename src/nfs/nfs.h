// NFSv3-like networked file system baseline for the Fig. 10 comparison.
//
// The paper argues a networked FS is the natural alternative to Keypad —
// instead of only the keys, all the content lives remotely, which gives
// comparable (short-horizon) audit properties. It then shows NFS collapsing
// as RTT grows while Keypad stays flat. This implementation mirrors the
// configuration the paper used: asynchronous batched writes and the default
// client caching policy (attribute cache with a short TTL validating a
// data cache — close-to-open-style consistency), with no bandwidth
// constraint ("our results are upper bounds of NFS performance").

#ifndef SRC_NFS_NFS_H_
#define SRC_NFS_NFS_H_

#include <map>
#include <memory>
#include <string>

#include "src/encfs/encfs.h"
#include "src/rpc/rpc.h"

namespace keypad {

// Server: owns a plain FS on its own device; exposes nfs.* RPC methods.
class NfsServer {
 public:
  NfsServer(EventQueue* queue, uint64_t rng_seed);

  void BindRpc(RpcServer* server);
  Vfs& fs() { return *fs_; }

 private:
  BlockDevice device_;
  std::unique_ptr<EncFs> fs_;  // Plain mode (the server stores cleartext).
};

// Client: a Vfs whose operations are RPCs, with caching.
class NfsClient : public Vfs {
 public:
  struct Options {
    // Attribute-cache TTL (Linux nfs default ac range is 3..60 s; we use
    // the floor, which is also the most favourable to NFS's consistency).
    SimDuration attr_ttl = SimDuration::Seconds(3);
    // Write-behind buffer per file; flushed when full or on rename/stat.
    size_t write_buffer_limit = 64 * 1024;
    // Local CPU cost per client operation (VFS + RPC client path).
    SimDuration client_op_cost = SimDuration::Micros(120);
  };

  NfsClient(EventQueue* queue, RpcClient* rpc, Options options);

  Status Create(const std::string& path) override;
  Result<Bytes> Read(const std::string& path, uint64_t offset,
                     size_t len) override;
  Status Write(const std::string& path, uint64_t offset,
               const Bytes& data) override;
  Status Mkdir(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Unlink(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Result<std::vector<DirEntry>> Readdir(const std::string& path) override;
  Result<StatInfo> Stat(const std::string& path) override;

  // Flushes all buffered writes (fsync/close semantics).
  Status FlushAll();

  uint64_t rpcs_sent() const { return rpcs_sent_; }

 private:
  struct CachedAttrs {
    StatInfo info;
    SimTime fetched_at;
    uint64_t change_counter = 0;  // Server-side version for validation.
  };
  struct CachedData {
    Bytes content;
    uint64_t change_counter = 0;
  };
  struct WriteBuffer {
    // Pending byte ranges, coalesced as (offset, data) in order.
    std::vector<std::pair<uint64_t, Bytes>> chunks;
    size_t bytes = 0;
  };

  Result<WireValue> Call(const std::string& method, WireValue::Array params);
  Result<CachedAttrs> GetAttrs(const std::string& path);
  Status FlushPath(const std::string& path);
  void Invalidate(const std::string& path);

  EventQueue* queue_;
  RpcClient* rpc_;
  Options options_;
  std::map<std::string, CachedAttrs> attr_cache_;
  std::map<std::string, CachedData> data_cache_;
  std::map<std::string, WriteBuffer> write_buffers_;
  uint64_t rpcs_sent_ = 0;
};

}  // namespace keypad

#endif  // SRC_NFS_NFS_H_
