#include "src/workload/office.h"

#include "src/sim/random.h"

namespace keypad {

namespace {

void AddFile(Trace& trace, const std::string& path, size_t size) {
  trace.Add(TraceOp::Create(path));
  for (size_t off = 0; off < size; off += 4096) {
    trace.Add(TraceOp::Write(path, off, std::min<size_t>(4096, size - off)));
  }
}

// Reads `count` files named prefix0..prefixN-1 (one chunked read each).
void ReadFiles(Trace& trace, const std::string& dir, const std::string& stem,
               int count, size_t size) {
  for (int i = 0; i < count; ++i) {
    std::string path = dir + "/" + stem + std::to_string(i);
    for (size_t off = 0; off < size; off += 4096) {
      trace.Add(TraceOp::Read(path, off, std::min<size_t>(4096, size - off)));
    }
  }
}

// The create-temp/write/rename pattern applications use for atomic saves.
void AtomicSave(Trace& trace, const std::string& dir, const std::string& name,
                size_t size, int revision) {
  std::string tmp = dir + "/.tmp_save_" + name + std::to_string(revision);
  trace.Add(TraceOp::Create(tmp));
  for (size_t off = 0; off < size; off += 4096) {
    trace.Add(TraceOp::Write(tmp, off, std::min<size_t>(4096, size - off)));
  }
  std::string backup = dir + "/" + name + ".bak" + std::to_string(revision);
  trace.Add(TraceOp::Rename(dir + "/" + name, backup));
  trace.Add(TraceOp::Rename(tmp, dir + "/" + name));
  trace.Add(TraceOp::Unlink(backup));
}

}  // namespace

OfficeWorkloads MakeOfficeWorkloads(uint64_t /*seed*/) {
  OfficeWorkloads out;

  // --- Volume layout. ---------------------------------------------------------
  Trace& setup = out.setup;
  for (const char* dir :
       {"/home", "/home/docs", "/home/oo_profile", "/home/oo_profile/registry",
        "/home/ff_profile", "/home/ff_profile/cache", "/home/tb_profile",
        "/home/tb_profile/mail", "/tmp"}) {
    setup.Add(TraceOp::Mkdir(dir));
  }
  // OpenOffice profile: configs read at launch.
  for (int i = 0; i < 8; ++i) {
    AddFile(setup, "/home/oo_profile/conf" + std::to_string(i), 16 * 1024);
  }
  for (int i = 0; i < 4; ++i) {
    AddFile(setup, "/home/oo_profile/registry/reg" + std::to_string(i),
            8 * 1024);
  }
  // Documents. The document pool spans several directories — "Open" pulls
  // pieces, styles, and embedded objects from distinct places, which is
  // what makes cold opens expensive over 3G in the paper's Table 1.
  AddFile(setup, "/home/docs/report.odt", 64 * 1024);
  AddFile(setup, "/home/docs/template.ott", 16 * 1024);
  for (int i = 0; i < 18; ++i) {
    AddFile(setup, "/home/docs/doc" + std::to_string(i), 32 * 1024);
  }
  for (int d = 0; d < 4; ++d) {
    std::string dir = "/home/docs/proj" + std::to_string(d);
    setup.Add(TraceOp::Mkdir(dir));
    for (int i = 0; i < 4; ++i) {
      AddFile(setup, dir + "/part" + std::to_string(i), 32 * 1024);
    }
  }
  // Firefox profile.
  for (const char* f : {"prefs.js", "bookmarks.html", "history.db",
                        "cookies.db", "passwords.db"}) {
    AddFile(setup, std::string("/home/ff_profile/") + f, 24 * 1024);
  }
  for (int i = 0; i < 20; ++i) {
    AddFile(setup, "/home/ff_profile/cache/entry" + std::to_string(i),
            12 * 1024);
  }
  // Thunderbird profile.
  AddFile(setup, "/home/tb_profile/prefs.js", 8 * 1024);
  AddFile(setup, "/home/tb_profile/mail/inbox.mbox", 256 * 1024);
  AddFile(setup, "/home/tb_profile/mail/inbox.msf", 32 * 1024);
  for (int i = 0; i < 6; ++i) {
    AddFile(setup, "/home/tb_profile/mail/folder" + std::to_string(i),
            64 * 1024);
  }

  // --- Table 1 tasks. -----------------------------------------------------------
  auto task = [&](std::string app, std::string name, double paper_encfs,
                  double paper_3g_cold) -> Trace& {
    out.tasks.push_back(OfficeTask{std::move(app), std::move(name),
                                   paper_encfs, paper_3g_cold, Trace{}});
    return out.tasks.back().trace;
  };

  {  // OpenOffice: Launch.
    Trace& t = task("OpenOffice", "Launch", 0.5, 4.6);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(420)));
    ReadFiles(t, "/home/oo_profile", "conf", 8, 16 * 1024);
    ReadFiles(t, "/home/oo_profile/registry", "reg", 4, 8 * 1024);
    t.Add(TraceOp::Create("/tmp/oo_lock"));
    t.Add(TraceOp::Write("/tmp/oo_lock", 0, 128));
  }
  {  // OpenOffice: New document.
    Trace& t = task("OpenOffice", "New document", 0.0, 0.3);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(15)));
    t.Add(TraceOp::Read("/home/docs/template.ott", 0, 16 * 1024));
  }
  {  // OpenOffice: Save as (11 FS ops, 7 metadata — §3.4).
    Trace& t = task("OpenOffice", "Save as", 1.4, 2.3);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(1350)));
    t.Add(TraceOp::Create("/home/docs/.tmp_new.odt"));
    t.Add(TraceOp::Write("/home/docs/.tmp_new.odt", 0, 4096));
    t.Add(TraceOp::Write("/home/docs/.tmp_new.odt", 4096, 4096));
    t.Add(TraceOp::Create("/home/docs/.lock_new"));
    t.Add(TraceOp::Rename("/home/docs/.tmp_new.odt", "/home/docs/new.odt"));
    t.Add(TraceOp::Unlink("/home/docs/.lock_new"));
    t.Add(TraceOp::Stat("/home/docs/new.odt"));
    t.Add(TraceOp::Read("/home/docs/new.odt", 0, 4096));
    t.Add(TraceOp::Create("/tmp/oo_autosave"));
    t.Add(TraceOp::Rename("/tmp/oo_autosave", "/tmp/oo_autosave.bak"));
    t.Add(TraceOp::Unlink("/tmp/oo_autosave.bak"));
  }
  {  // OpenOffice: Open — document pieces from several directories.
    Trace& t = task("OpenOffice", "Open", 1.7, 7.5);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(1500)));
    for (int d = 0; d < 4; ++d) {
      ReadFiles(t, "/home/docs/proj" + std::to_string(d), "part", 4,
                32 * 1024);
    }
    ReadFiles(t, "/home/docs", "doc", 4, 32 * 1024);
    for (size_t off = 0; off < 64 * 1024; off += 4096) {
      t.Add(TraceOp::Read("/home/docs/report.odt", off, 4096));
    }
  }
  {  // OpenOffice: Quit.
    Trace& t = task("OpenOffice", "Quit", 0.1, 1.2);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(60)));
    t.Add(TraceOp::Write("/home/oo_profile/conf0", 0, 4096));
    t.Add(TraceOp::Create("/home/oo_profile/.tmp_conf"));
    t.Add(TraceOp::Rename("/home/oo_profile/.tmp_conf",
                          "/home/oo_profile/session"));
    t.Add(TraceOp::Unlink("/tmp/oo_lock"));
  }

  {  // Firefox: Launch.
    Trace& t = task("Firefox", "Launch", 3.7, 8.8);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(3500)));
    for (const char* f : {"prefs.js", "bookmarks.html", "history.db",
                          "cookies.db", "passwords.db"}) {
      t.Add(TraceOp::Read(std::string("/home/ff_profile/") + f, 0, 24 * 1024));
    }
    ReadFiles(t, "/home/ff_profile/cache", "entry", 10, 12 * 1024);
    t.Add(TraceOp::Create("/home/ff_profile/.parentlock"));
  }
  {  // Firefox: Save a page.
    Trace& t = task("Firefox", "Save a page", 0.7, 2.8);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(550)));
    AddFile(t, "/home/docs/saved_page.html", 48 * 1024);
    t.Add(TraceOp::Mkdir("/home/docs/saved_page_files"));
    AddFile(t, "/home/docs/saved_page_files/img0", 24 * 1024);
  }
  {  // Firefox: Load bookmark.
    Trace& t = task("Firefox", "Load bookmark", 4.5, 5.7);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(4400)));
    t.Add(TraceOp::Read("/home/ff_profile/bookmarks.html", 0, 24 * 1024));
    t.Add(TraceOp::Write("/home/ff_profile/history.db", 0, 4096));
    AddFile(t, "/home/ff_profile/cache/new_entry", 12 * 1024);
  }
  {  // Firefox: Open tab.
    Trace& t = task("Firefox", "Open tab", 0.2, 0.8);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(150)));
    t.Add(TraceOp::Read("/home/ff_profile/cache/entry0", 0, 12 * 1024));
    t.Add(TraceOp::Write("/home/ff_profile/history.db", 4096, 4096));
  }
  {  // Firefox: Close tab.
    Trace& t = task("Firefox", "Close tab", 0.0, 0.3);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(20)));
    t.Add(TraceOp::Write("/home/ff_profile/history.db", 8192, 4096));
  }

  {  // Thunderbird: Launch.
    Trace& t = task("Thunderbird", "Launch", 1.3, 3.1);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(1150)));
    t.Add(TraceOp::Read("/home/tb_profile/prefs.js", 0, 8 * 1024));
    t.Add(TraceOp::Read("/home/tb_profile/mail/inbox.msf", 0, 32 * 1024));
    ReadFiles(t, "/home/tb_profile/mail", "folder", 4, 16 * 1024);
    t.Add(TraceOp::Create("/home/tb_profile/.lock"));
  }
  {  // Thunderbird: Read email.
    Trace& t = task("Thunderbird", "Read email", 0.3, 2.5);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(180)));
    for (size_t off = 0; off < 16 * 1024; off += 4096) {
      t.Add(TraceOp::Read("/home/tb_profile/mail/inbox.mbox", off, 4096));
    }
    t.Add(TraceOp::Read("/home/tb_profile/mail/inbox.msf", 0, 8 * 1024));
    t.Add(TraceOp::Write("/home/tb_profile/mail/inbox.msf", 0, 4096));
  }
  {  // Thunderbird: Quit.
    Trace& t = task("Thunderbird", "Quit", 0.2, 2.9);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(80)));
    for (int i = 0; i < 3; ++i) {
      std::string folder = "/home/tb_profile/mail/folder" + std::to_string(i);
      t.Add(TraceOp::Write(folder, 0, 4096));
    }
    t.Add(TraceOp::Create("/home/tb_profile/.tmp_prefs"));
    t.Add(TraceOp::Rename("/home/tb_profile/.tmp_prefs",
                          "/home/tb_profile/prefs.new"));
    t.Add(TraceOp::Unlink("/home/tb_profile/.lock"));
  }

  {  // Evince: Launch.
    Trace& t = task("Evince", "Launch", 0.1, 0.4);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(70)));
    t.Add(TraceOp::Read("/home/docs/doc0", 0, 4096));
  }
  {  // Evince: Open document.
    Trace& t = task("Evince", "Open document", 0.1, 0.4);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(60)));
    for (size_t off = 0; off < 32 * 1024; off += 4096) {
      t.Add(TraceOp::Read("/home/docs/doc1", off, 4096));
    }
  }
  {  // Evince: Quit.
    Trace& t = task("Evince", "Quit", 0.0, 0.0);
    t.Add(TraceOp::Compute(SimDuration::FromMillisF(10)));
  }

  return out;
}

std::vector<Fig9Workload> MakeFig9Workloads(uint64_t seed) {
  SimRandom rng(seed);
  std::vector<Fig9Workload> out;

  {  // Find file in hierarchy: recursive grep through a project tree.
    Fig9Workload w;
    w.name = "Find file in hierarchy";
    w.paper_unoptimized_seconds = 57;
    w.paper_optimized_seconds = 14;
    w.setup.Add(TraceOp::Mkdir("/proj"));
    for (int d = 0; d < 12; ++d) {
      std::string dir = "/proj/sub" + std::to_string(d);
      w.setup.Add(TraceOp::Mkdir(dir));
      for (int f = 0; f < 15; ++f) {
        std::string path = dir + "/file" + std::to_string(f);
        w.setup.Add(TraceOp::Create(path));
        w.setup.Add(TraceOp::Write(path, 0, 8 * 1024));
      }
    }
    for (int d = 0; d < 12; ++d) {
      std::string dir = "/proj/sub" + std::to_string(d);
      w.trace.Add(TraceOp::Readdir(dir));
      for (int f = 0; f < 15; ++f) {
        std::string path = dir + "/file" + std::to_string(f);
        w.trace.Add(TraceOp::Read(path, 0, 4096));
        w.trace.Add(TraceOp::Read(path, 4096, 4096));
      }
    }
    out.push_back(std::move(w));
  }

  {  // Copy photo album across directories.
    Fig9Workload w;
    w.name = "Copy photo album";
    w.paper_unoptimized_seconds = 57;
    w.paper_optimized_seconds = 17;
    w.setup.Add(TraceOp::Mkdir("/photos"));
    for (int d = 0; d < 3; ++d) {
      std::string dir = "/photos/album" + std::to_string(d);
      w.setup.Add(TraceOp::Mkdir(dir));
      for (int f = 0; f < 30; ++f) {
        std::string path = dir + "/img" + std::to_string(f) + ".jpg";
        w.setup.Add(TraceOp::Create(path));
        for (size_t off = 0; off < 200 * 1024; off += 65536) {
          w.setup.Add(TraceOp::Write(path, off, 65536));
        }
      }
    }
    w.trace.Add(TraceOp::Mkdir("/photos_backup"));
    for (int d = 0; d < 3; ++d) {
      std::string src_dir = "/photos/album" + std::to_string(d);
      std::string dst_dir = "/photos_backup/album" + std::to_string(d);
      w.trace.Add(TraceOp::Mkdir(dst_dir));
      w.trace.Add(TraceOp::Readdir(src_dir));
      for (int f = 0; f < 30; ++f) {
        std::string src = src_dir + "/img" + std::to_string(f) + ".jpg";
        std::string dst = dst_dir + "/img" + std::to_string(f) + ".jpg";
        w.trace.Add(TraceOp::Read(src, 0, 200 * 1024));
        w.trace.Add(TraceOp::Create(dst));
        w.trace.Add(TraceOp::Write(dst, 0, 200 * 1024));
      }
    }
    out.push_back(std::move(w));
  }

  {  // OpenOffice launch (the Table 1 trace, reused for Fig. 9).
    Fig9Workload w;
    w.name = "OpenOffice - launch";
    w.paper_unoptimized_seconds = 14;
    w.paper_optimized_seconds = 5;
    OfficeWorkloads office = MakeOfficeWorkloads(rng.NextU64());
    w.setup = office.setup;
    w.trace = office.tasks[0].trace;  // Launch.
    out.push_back(std::move(w));
  }

  {  // OpenOffice create document: one create (+ tiny write).
    Fig9Workload w;
    w.name = "OpenOffice - create doc.";
    w.paper_unoptimized_seconds = 0.305;
    w.paper_optimized_seconds = 0.029;
    w.setup.Add(TraceOp::Mkdir("/newdocs"));
    w.trace.Add(TraceOp::Create("/newdocs/untitled.odt"));
    out.push_back(std::move(w));
  }

  {  // Thunderbird read email (Table 1 trace reused).
    Fig9Workload w;
    w.name = "Thunderbird - read email";
    w.paper_unoptimized_seconds = 5.5;
    w.paper_optimized_seconds = 1.9;
    OfficeWorkloads office = MakeOfficeWorkloads(rng.NextU64());
    w.setup = office.setup;
    w.trace = office.tasks[11].trace;  // Thunderbird - Read email.
    out.push_back(std::move(w));
  }

  return out;
}

}  // namespace keypad
