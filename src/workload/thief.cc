#include "src/workload/thief.h"

namespace keypad {

namespace {
void AddFile(Trace& trace, const std::string& path, size_t size) {
  trace.Add(TraceOp::Create(path));
  for (size_t off = 0; off < size; off += 4096) {
    trace.Add(TraceOp::Write(path, off, std::min<size_t>(4096, size - off)));
  }
}

void ThiefRead(ThiefScenario& scenario, const std::string& path,
               size_t size) {
  for (size_t off = 0; off < size; off += 4096) {
    scenario.thief_trace.Add(
        TraceOp::Read(path, off, std::min<size_t>(4096, size - off)));
  }
  scenario.files_read.insert(path);
}
}  // namespace

std::vector<ThiefScenario> MakeThiefScenarios(uint64_t /*seed*/) {
  std::vector<ThiefScenario> out;

  {  // (1) Thunderbird: reads emails, browses folders, searches for a
     //     keyword — touching 27 of the 30 mail files; the directory
     //     prefetch pulls the other 3. Paper ratio: 3:30.
    ThiefScenario s;
    s.name = "Thunderbird";
    s.paper_false_positives = 3;
    s.paper_total_keys = 30;
    s.setup.Add(TraceOp::Mkdir("/mail"));
    for (int i = 0; i < 30; ++i) {
      AddFile(s.setup, "/mail/msg" + std::to_string(i), 8 * 1024);
    }
    s.thief_trace.Add(TraceOp::Readdir("/mail"));
    s.thief_trace.Add(TraceOp::Compute(SimDuration::Seconds(2)));
    // Reads a few emails, then searches (scanning most of the folder).
    for (int i = 0; i < 27; ++i) {
      ThiefRead(s, "/mail/msg" + std::to_string(i), 8 * 1024);
      if (i < 5) {
        s.thief_trace.Add(TraceOp::Compute(SimDuration::Seconds(3)));
      }
    }
    out.push_back(std::move(s));
  }

  {  // (2) Document editor: opens a handful of documents while the editor
     //     scans its config dirs. Paper ratio: 6:67.
    ThiefScenario s;
    s.name = "Document editor";
    s.paper_false_positives = 6;
    s.paper_total_keys = 67;
    s.setup.Add(TraceOp::Mkdir("/docs"));
    s.setup.Add(TraceOp::Mkdir("/editorcfg"));
    s.setup.Add(TraceOp::Mkdir("/recent"));
    for (int i = 0; i < 22; ++i) {
      AddFile(s.setup, "/docs/paper" + std::to_string(i) + ".doc", 32 * 1024);
    }
    for (int i = 0; i < 25; ++i) {
      AddFile(s.setup, "/editorcfg/cfg" + std::to_string(i), 4 * 1024);
    }
    for (int i = 0; i < 20; ++i) {
      AddFile(s.setup, "/recent/r" + std::to_string(i), 4 * 1024);
    }
    // Editor launch scans all configs and recent-file stubs...
    for (int i = 0; i < 25; ++i) {
      ThiefRead(s, "/editorcfg/cfg" + std::to_string(i), 4 * 1024);
    }
    for (int i = 0; i < 18; ++i) {
      ThiefRead(s, "/recent/r" + std::to_string(i), 4 * 1024);
    }
    s.thief_trace.Add(TraceOp::Compute(SimDuration::Seconds(5)));
    // ...then the thief looks at a few documents.
    for (int i = 0; i < 18; ++i) {
      ThiefRead(s, "/docs/paper" + std::to_string(i) + ".doc", 32 * 1024);
      if (i < 4) {
        s.thief_trace.Add(TraceOp::Compute(SimDuration::Seconds(10)));
      }
    }
    out.push_back(std::move(s));
  }

  {  // (3) Firefox: history, bookmarks, cookies, passwords — every file in
     //     each small profile directory is read, so the directory prefetch
     //     adds nothing. Paper ratio: 0:12.
    ThiefScenario s;
    s.name = "Firefox";
    s.paper_false_positives = 0;
    s.paper_total_keys = 12;
    s.setup.Add(TraceOp::Mkdir("/ff"));
    for (const char* dir :
         {"/ff/history", "/ff/bookmarks", "/ff/cookies", "/ff/passwords"}) {
      s.setup.Add(TraceOp::Mkdir(dir));
    }
    int idx = 0;
    for (const char* dir :
         {"/ff/history", "/ff/bookmarks", "/ff/cookies", "/ff/passwords"}) {
      for (int i = 0; i < 3; ++i) {
        AddFile(s.setup,
                std::string(dir) + "/db" + std::to_string(idx++) + ".sqlite",
                16 * 1024);
      }
    }
    idx = 0;
    for (const char* dir :
         {"/ff/history", "/ff/bookmarks", "/ff/cookies", "/ff/passwords"}) {
      for (int i = 0; i < 3; ++i) {
        ThiefRead(s, std::string(dir) + "/db" + std::to_string(idx++) +
                         ".sqlite",
                  16 * 1024);
      }
      s.thief_trace.Add(TraceOp::Compute(SimDuration::Seconds(4)));
    }
    out.push_back(std::move(s));
  }

  return out;
}

}  // namespace keypad
