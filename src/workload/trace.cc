#include "src/workload/trace.h"

namespace keypad {

size_t Trace::ContentOps() const {
  size_t n = 0;
  for (const auto& op : ops) {
    if (op.kind == TraceOp::Kind::kRead || op.kind == TraceOp::Kind::kWrite) {
      ++n;
    }
  }
  return n;
}

size_t Trace::MetadataOps() const {
  size_t n = 0;
  for (const auto& op : ops) {
    switch (op.kind) {
      case TraceOp::Kind::kCreate:
      case TraceOp::Kind::kMkdir:
      case TraceOp::Kind::kRename:
      case TraceOp::Kind::kUnlink:
        ++n;
        break;
      default:
        break;
    }
  }
  return n;
}

SimDuration Trace::TotalCompute() const {
  SimDuration total;
  for (const auto& op : ops) {
    total += op.compute;
  }
  return total;
}

Status TraceRunner::Execute(const TraceOp& op) {
  switch (op.kind) {
    case TraceOp::Kind::kCreate:
      return fs_->Create(op.path);
    case TraceOp::Kind::kRead:
      return fs_->Read(op.path, op.offset, op.size).status();
    case TraceOp::Kind::kWrite: {
      // Synthetic but deterministic content.
      Bytes data(op.size, static_cast<uint8_t>(op.offset * 131 + op.size));
      return fs_->Write(op.path, op.offset, data);
    }
    case TraceOp::Kind::kMkdir:
      return fs_->Mkdir(op.path);
    case TraceOp::Kind::kRename:
      return fs_->Rename(op.path, op.path2);
    case TraceOp::Kind::kUnlink:
      return fs_->Unlink(op.path);
    case TraceOp::Kind::kReaddir:
      return fs_->Readdir(op.path).status();
    case TraceOp::Kind::kStat:
      return fs_->Stat(op.path).status();
    case TraceOp::Kind::kCompute:
      queue_->AdvanceBy(op.compute);
      return Status::Ok();
  }
  return InternalError("trace: unknown op kind");
}

TraceRunResult TraceRunner::Run(const Trace& trace) {
  TraceRunResult result;
  SimTime start = queue_->Now();
  for (const auto& op : trace.ops) {
    Status status = Execute(op);
    ++result.ops_executed;
    if (!status.ok()) {
      if (result.failures == 0) {
        result.first_failure = status;
      }
      ++result.failures;
    }
    if (after_op_) {
      after_op_(op);
    }
  }
  result.elapsed = queue_->Now() - start;
  return result;
}

}  // namespace keypad
