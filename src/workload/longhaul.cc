#include "src/workload/longhaul.h"

#include "src/sim/random.h"

namespace keypad {

namespace {
void AddFile(Trace& trace, const std::string& path, size_t size) {
  trace.Add(TraceOp::Create(path));
  for (size_t off = 0; off < size; off += 4096) {
    trace.Add(TraceOp::Write(path, off, std::min<size_t>(4096, size - off)));
  }
}
}  // namespace

LongHaulWorkload MakeLongHaulWorkload(const LongHaulParams& params,
                                      uint64_t seed) {
  SimRandom rng(seed);
  LongHaulWorkload out;

  // --- Volume. ------------------------------------------------------------
  out.setup.Add(TraceOp::Mkdir("/docs"));
  out.setup.Add(TraceOp::Mkdir("/cache"));
  out.setup.Add(TraceOp::Mkdir("/mail"));
  out.setup.Add(TraceOp::Mkdir("/code"));
  for (int i = 0; i < params.docs; ++i) {
    AddFile(out.setup, "/docs/d" + std::to_string(i), 32 * 1024);
  }
  for (int i = 0; i < params.cache_files; ++i) {
    AddFile(out.setup, "/cache/c" + std::to_string(i), 8 * 1024);
  }
  for (int i = 0; i < params.mail_files; ++i) {
    AddFile(out.setup, "/mail/m" + std::to_string(i), 16 * 1024);
  }
  int dirs = 8;
  for (int d = 0; d < dirs; ++d) {
    out.setup.Add(TraceOp::Mkdir("/code/mod" + std::to_string(d)));
  }
  for (int i = 0; i < params.source_files; ++i) {
    AddFile(out.setup,
            "/code/mod" + std::to_string(i % dirs) + "/s" + std::to_string(i),
            8 * 1024);
  }

  // --- Activity. -----------------------------------------------------------
  Trace& activity = out.activity;
  SimDuration active;

  auto think = [&](int min_s, int max_s) {
    SimDuration d = SimDuration::Seconds(rng.UniformInt(min_s, max_s));
    activity.Add(TraceOp::Compute(d));
    active += d;
  };

  for (int day = 0; day < params.days; ++day) {
    for (int session = 0; session < params.sessions_per_day; ++session) {
      int kind = static_cast<int>(rng.UniformU64(4));
      switch (kind) {
        case 0: {  // Document editing: one doc, repeated read/save cycles.
          int doc = static_cast<int>(rng.Zipf(params.docs, 1.1));
          std::string path = "/docs/d" + std::to_string(doc);
          for (int i = 0; i < 10; ++i) {
            activity.Add(TraceOp::Read(path, 0, 32 * 1024));
            think(20, 90);
            activity.Add(TraceOp::Write(path, 0, 4096));
          }
          break;
        }
        case 1: {  // Browsing: bursts of cache reads/writes.
          for (int i = 0; i < 25; ++i) {
            int entry = static_cast<int>(rng.Zipf(params.cache_files, 0.8));
            std::string path = "/cache/c" + std::to_string(entry);
            if (rng.Bernoulli(0.5)) {
              activity.Add(TraceOp::Read(path, 0, 8 * 1024));
            } else {
              activity.Add(TraceOp::Write(path, 0, 8 * 1024));
            }
            think(3, 20);
          }
          break;
        }
        case 2: {  // Email: read a batch, update the index.
          for (int i = 0; i < 8; ++i) {
            int msg = static_cast<int>(rng.Zipf(params.mail_files, 0.9));
            activity.Add(
                TraceOp::Read("/mail/m" + std::to_string(msg), 0, 16 * 1024));
            think(10, 60);
          }
          activity.Add(TraceOp::Write("/mail/m0", 0, 4096));
          break;
        }
        case 3: {  // Code: scan one module, edit one file.
          int mod = static_cast<int>(rng.UniformU64(8));
          std::string dir = "/code/mod" + std::to_string(mod);
          activity.Add(TraceOp::Readdir(dir));
          for (int i = 0; i < params.source_files / 8; ++i) {
            activity.Add(TraceOp::Read(
                dir + "/s" + std::to_string(mod + 8 * i), 0, 8 * 1024));
          }
          think(60, 240);
          activity.Add(TraceOp::Write(
              dir + "/s" + std::to_string(mod), 0, 4096));
          break;
        }
      }
      // Idle gap between sessions (not counted as active time).
      activity.Add(TraceOp::Compute(
          SimDuration::Minutes(rng.UniformInt(20, 120))));
    }
    // Overnight gap.
    activity.Add(TraceOp::Compute(SimDuration::Hours(10)));
  }
  out.active_time = active;
  return out;
}

}  // namespace keypad
