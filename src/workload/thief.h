// Thief workloads for the §5.2 false-positive evaluation. "In the absence
// of an accepted 'thief workload', we created a few scenarios that a thief
// might follow": (1) Thunderbird — read a few emails, browse folders,
// search; (2) a document editor — look at a few files; (3) Firefox —
// inspect history, bookmarks, cookies, and passwords.
//
// Each scenario carries the set of files the thief actually reads (the
// ground truth against which prefetch-induced false positives are counted)
// and the paper's reported FP:total ratio for comparison.

#ifndef SRC_WORKLOAD_THIEF_H_
#define SRC_WORKLOAD_THIEF_H_

#include <set>
#include <string>
#include <vector>

#include "src/workload/trace.h"

namespace keypad {

struct ThiefScenario {
  std::string name;
  int paper_false_positives = 0;
  int paper_total_keys = 0;
  Trace setup;                      // Victim-side volume content.
  Trace thief_trace;                // What the thief does post-theft.
  std::set<std::string> files_read; // Ground truth: files actually read.
};

std::vector<ThiefScenario> MakeThiefScenarios(uint64_t seed);

}  // namespace keypad

#endif  // SRC_WORKLOAD_THIEF_H_
