// Office / desktop application task traces (Table 1, Fig. 9).
//
// Each task mirrors the FS footprint of the paper's measured interaction:
// e.g., "an OpenOffice file save invokes 11 file system operations, of
// which 7 are metadata operations that create and then rename temporary
// files" (§3.4). Compute times are calibrated so the EncFS baseline lands
// near the paper's EncFS column in Table 1.

#ifndef SRC_WORKLOAD_OFFICE_H_
#define SRC_WORKLOAD_OFFICE_H_

#include <string>
#include <vector>

#include "src/workload/trace.h"

namespace keypad {

struct OfficeTask {
  std::string application;  // "OpenOffice", "Firefox", ...
  std::string task;         // "Launch", "Save as", ...
  // Paper's Table 1 EncFS-column time, for side-by-side reporting.
  double paper_encfs_seconds = 0;
  // Paper's Keypad 3G cold-cache time.
  double paper_keypad_3g_cold_seconds = 0;
  Trace trace;
};

struct OfficeWorkloads {
  // Volume layout all tasks run against (profiles, documents, caches).
  Trace setup;
  // The 16 tasks of Table 1, in the paper's row order.
  std::vector<OfficeTask> tasks;
};

OfficeWorkloads MakeOfficeWorkloads(uint64_t seed);

// The five Fig. 9 workloads: "Find file in hierarchy", "Copy photo album",
// "OpenOffice - launch", "OpenOffice - create doc.", "Thunderbird - read
// email". Each carries the paper's unoptimized/optimized 3G anchors.
struct Fig9Workload {
  std::string name;
  double paper_unoptimized_seconds = 0;
  double paper_optimized_seconds = 0;
  Trace setup;  // Extra files beyond the office volume (may be empty).
  Trace trace;
};

std::vector<Fig9Workload> MakeFig9Workloads(uint64_t seed);

}  // namespace keypad

#endif  // SRC_WORKLOAD_OFFICE_H_
