// Workload traces: the evaluation's applications, modeled as sequences of
// file-system operations with interleaved compute time (see DESIGN.md —
// Keypad only observes the FS op stream, so a trace that reproduces the op
// stream reproduces the workload).

#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/encfs/vfs.h"
#include "src/sim/event_queue.h"

namespace keypad {

struct TraceOp {
  enum class Kind {
    kCreate,
    kRead,
    kWrite,
    kMkdir,
    kRename,
    kUnlink,
    kReaddir,
    kStat,
    kCompute,  // Pure CPU/think time.
  };
  Kind kind = Kind::kCompute;
  std::string path;
  std::string path2;      // Rename target.
  uint64_t offset = 0;
  size_t size = 0;        // Read/write length (bytes written are synthetic).
  SimDuration compute;    // kCompute only.

  static TraceOp Create(std::string path) {
    return {Kind::kCreate, std::move(path), "", 0, 0, {}};
  }
  static TraceOp Read(std::string path, uint64_t offset, size_t size) {
    return {Kind::kRead, std::move(path), "", offset, size, {}};
  }
  static TraceOp Write(std::string path, uint64_t offset, size_t size) {
    return {Kind::kWrite, std::move(path), "", offset, size, {}};
  }
  static TraceOp Mkdir(std::string path) {
    return {Kind::kMkdir, std::move(path), "", 0, 0, {}};
  }
  static TraceOp Rename(std::string from, std::string to) {
    return {Kind::kRename, std::move(from), std::move(to), 0, 0, {}};
  }
  static TraceOp Unlink(std::string path) {
    return {Kind::kUnlink, std::move(path), "", 0, 0, {}};
  }
  static TraceOp Readdir(std::string path) {
    return {Kind::kReaddir, std::move(path), "", 0, 0, {}};
  }
  static TraceOp Stat(std::string path) {
    return {Kind::kStat, std::move(path), "", 0, 0, {}};
  }
  static TraceOp Compute(SimDuration d) {
    return {Kind::kCompute, "", "", 0, 0, d};
  }
};

struct Trace {
  std::vector<TraceOp> ops;

  void Add(TraceOp op) { ops.push_back(std::move(op)); }
  void Append(const Trace& other) {
    ops.insert(ops.end(), other.ops.begin(), other.ops.end());
  }

  // Aggregate op counts, for reporting against the paper's numbers.
  size_t ContentOps() const;
  size_t MetadataOps() const;
  SimDuration TotalCompute() const;
};

struct TraceRunResult {
  SimDuration elapsed;
  size_t ops_executed = 0;
  size_t failures = 0;
  Status first_failure;
};

class TraceRunner {
 public:
  TraceRunner(Vfs* fs, EventQueue* queue) : fs_(fs), queue_(queue) {}

  // Optional hook invoked after every operation (benches use it to sample
  // cache state).
  void set_after_op(std::function<void(const TraceOp&)> hook) {
    after_op_ = std::move(hook);
  }

  TraceRunResult Run(const Trace& trace);

 private:
  Status Execute(const TraceOp& op);

  Vfs* fs_;
  EventQueue* queue_;
  std::function<void(const TraceOp&)> after_op_;
};

}  // namespace keypad

#endif  // SRC_WORKLOAD_TRACE_H_
