// Multi-day interactive usage trace, standing in for the paper's 12-day
// author deployment (§5.1.4). Drives Fig. 11 (average number of in-memory
// keys vs. key expiration time under different prefetch policies) and the
// bandwidth measurement ("average Keypad bandwidth was under 5 kb/s").
//
// Structure: days of several work sessions (document editing, web
// browsing, email, source-tree scans) separated by idle gaps; file
// popularity is Zipf-skewed so a warm working set re-surfaces across
// sessions, as in real traces.

#ifndef SRC_WORKLOAD_LONGHAUL_H_
#define SRC_WORKLOAD_LONGHAUL_H_

#include "src/workload/trace.h"

namespace keypad {

struct LongHaulParams {
  int days = 12;
  int sessions_per_day = 6;
  int docs = 40;          // Document pool.
  int cache_files = 60;   // Browser cache pool.
  int mail_files = 25;
  int source_files = 80;  // Across 8 source dirs.
};

struct LongHaulWorkload {
  Trace setup;
  Trace activity;
  // Total "use period" time (active session time, excluding idle gaps) —
  // Fig. 11 averages the in-memory key count over use periods.
  SimDuration active_time;
};

LongHaulWorkload MakeLongHaulWorkload(const LongHaulParams& params,
                                      uint64_t seed);

}  // namespace keypad

#endif  // SRC_WORKLOAD_LONGHAUL_H_
