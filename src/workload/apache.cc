#include "src/workload/apache.h"

#include <string>
#include <vector>

namespace keypad {

namespace {
constexpr size_t kChunk = 4096;

std::string ModuleDir(int m) { return "/src/mod_" + std::to_string(m); }

// Reads `size` bytes of `path` in 4 KiB chunks.
void AddChunkedRead(Trace& trace, const std::string& path, size_t size) {
  for (size_t off = 0; off < size; off += kChunk) {
    trace.Add(TraceOp::Read(path, off, std::min(kChunk, size - off)));
  }
}

void AddChunkedWrite(Trace& trace, const std::string& path, size_t size) {
  for (size_t off = 0; off < size; off += kChunk) {
    trace.Add(TraceOp::Write(path, off, std::min(kChunk, size - off)));
  }
}
}  // namespace

ApacheWorkload MakeApacheWorkload(const ApacheParams& params, uint64_t seed) {
  SimRandom rng(seed);
  ApacheWorkload out;

  constexpr size_t kSourceSize = 12 * 1024;
  constexpr size_t kSharedHeaderSize = 8 * 1024;
  constexpr size_t kLocalHeaderSize = 4 * 1024;
  constexpr size_t kObjectSize = 12 * 1024;

  // --- Setup: lay down the source tree. ------------------------------------
  out.setup.Add(TraceOp::Mkdir("/src"));
  out.setup.Add(TraceOp::Mkdir("/src/include"));
  for (int h = 0; h < params.shared_headers; ++h) {
    std::string path = "/src/include/h" + std::to_string(h) + ".h";
    out.setup.Add(TraceOp::Create(path));
    AddChunkedWrite(out.setup, path, kSharedHeaderSize);
  }
  for (int m = 0; m < params.modules; ++m) {
    out.setup.Add(TraceOp::Mkdir(ModuleDir(m)));
    for (int h = 0; h < params.local_headers; ++h) {
      std::string path = ModuleDir(m) + "/local" + std::to_string(h) + ".h";
      out.setup.Add(TraceOp::Create(path));
      AddChunkedWrite(out.setup, path, kLocalHeaderSize);
    }
    for (int u = 0; u < params.units_per_module; ++u) {
      std::string path = ModuleDir(m) + "/unit" + std::to_string(u) + ".c";
      out.setup.Add(TraceOp::Create(path));
      AddChunkedWrite(out.setup, path, kSourceSize);
    }
  }
  out.setup.Add(TraceOp::Mkdir("/build"));

  // --- The compile. ----------------------------------------------------------
  int total_units = params.modules * params.units_per_module;
  SimDuration configure_compute = SimDuration::Seconds(2);
  SimDuration link_compute = SimDuration::Seconds(3);
  SimDuration per_unit_compute =
      (params.total_compute - configure_compute - link_compute) /
      total_units;

  Trace& compile = out.compile;

  // Configure phase: scan the tree, probe headers.
  compile.Add(TraceOp::Compute(configure_compute));
  compile.Add(TraceOp::Readdir("/src"));
  for (int m = 0; m < params.modules; ++m) {
    compile.Add(TraceOp::Readdir(ModuleDir(m)));
  }
  for (int h = 0; h < params.shared_headers; ++h) {
    std::string path = "/src/include/h" + std::to_string(h) + ".h";
    compile.Add(TraceOp::Stat(path));
    compile.Add(TraceOp::Read(path, 0, kChunk));
  }

  // Compile each unit, module by module (the locality prefetching exploits).
  for (int m = 0; m < params.modules; ++m) {
    for (int u = 0; u < params.units_per_module; ++u) {
      std::string source = ModuleDir(m) + "/unit" + std::to_string(u) + ".c";
      AddChunkedRead(compile, source, kSourceSize);

      // Shared headers: a random (but seed-deterministic) subset.
      std::vector<int> headers(params.shared_headers);
      for (int h = 0; h < params.shared_headers; ++h) {
        headers[h] = h;
      }
      rng.Shuffle(headers);
      for (int i = 0; i < params.headers_per_unit; ++i) {
        AddChunkedRead(compile,
                       "/src/include/h" + std::to_string(headers[i]) + ".h",
                       kSharedHeaderSize);
      }
      for (int h = 0; h < params.local_headers; ++h) {
        AddChunkedRead(compile,
                       ModuleDir(m) + "/local" + std::to_string(h) + ".h",
                       kLocalHeaderSize);
      }

      compile.Add(TraceOp::Compute(per_unit_compute));

      // cc writes the object through a temp file, then renames it in.
      std::string tmp = "/build/.tmp_" + std::to_string(m) + "_" +
                        std::to_string(u) + ".o";
      std::string object = "/build/unit_" + std::to_string(m) + "_" +
                           std::to_string(u) + ".o";
      compile.Add(TraceOp::Create(tmp));
      AddChunkedWrite(compile, tmp, kObjectSize);
      compile.Add(TraceOp::Rename(tmp, object));
    }
  }

  // Link: read every object, write the binary via temp + rename.
  compile.Add(TraceOp::Compute(link_compute));
  for (int m = 0; m < params.modules; ++m) {
    for (int u = 0; u < params.units_per_module; ++u) {
      AddChunkedRead(compile,
                     "/build/unit_" + std::to_string(m) + "_" +
                         std::to_string(u) + ".o",
                     kObjectSize);
    }
  }
  compile.Add(TraceOp::Create("/build/.tmp_httpd"));
  AddChunkedWrite(compile, "/build/.tmp_httpd", 2 * 1024 * 1024);
  compile.Add(TraceOp::Rename("/build/.tmp_httpd", "/build/httpd"));

  return out;
}

}  // namespace keypad
