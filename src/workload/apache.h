// The Apache-compilation workload (§5.1's stress benchmark).
//
// The paper reports: 75,744 reads+writes, 932 blocking metadata requests
// (creates/renames of object and temporary files), 63 s on ext3 and 112 s
// on EncFS. This generator synthesizes a source tree and a compile trace
// with that op volume and mix: per compilation unit it reads the source and
// a locality-heavy set of shared + module-local headers, computes, writes
// the object file through the create-temp-then-rename pattern cc uses, and
// finishes with a link phase over all objects.

#ifndef SRC_WORKLOAD_APACHE_H_
#define SRC_WORKLOAD_APACHE_H_

#include "src/sim/random.h"
#include "src/workload/trace.h"

namespace keypad {

struct ApacheWorkload {
  // Creates the source tree (run once against the FS before measuring).
  Trace setup;
  // The measured compile.
  Trace compile;
};

struct ApacheParams {
  int modules = 25;            // Module directories.
  int units_per_module = 19;   // .c files per module.
  int shared_headers = 64;     // /src/include/*.h.
  int headers_per_unit = 56;   // Shared headers each unit includes.
  int local_headers = 12;      // Per-module headers.
  // Compute time budget, spread across units (+ configure and link):
  // calibrated with the FS cost models to hit the paper's 63 s / 112 s
  // anchors (see bench_fig10 and EXPERIMENTS.md).
  SimDuration total_compute = SimDuration::FromMillisF(45800);
};

ApacheWorkload MakeApacheWorkload(const ApacheParams& params, uint64_t seed);

}  // namespace keypad

#endif  // SRC_WORKLOAD_APACHE_H_
