#include "src/workload/fleet.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/keyservice/audit_log.h"
#include "src/net/profile.h"

namespace keypad {

// One device of one user: its own link, per-shard RPC clients and stubs
// (each with independent breaker/codec/dedup state), and its own key
// population. Kept deliberately lean — the 100k-device bench cell holds a
// few hundred bytes of engine state per device plus the RPC machinery.
struct FleetWorkload::FleetDevice {
  std::string name;
  uint32_t user = 0;
  std::unique_ptr<NetworkLink> link;
  std::vector<std::unique_ptr<RpcClient>> rpcs;
  std::vector<std::unique_ptr<KeyServiceClient>> stubs;
  std::vector<AuditId> files;  // files[0] is the zipf-hottest.
  SimRandom rng{0};
};

FleetWorkload::FleetWorkload(EventQueue* queue, FleetOptions options)
    : queue_(queue),
      options_(options),
      // One ring shared by the whole fleet: placement is a pure function,
      // so devices don't each need a router instance. Few vnodes — the
      // fleet's key population is huge, so balance comes from volume.
      ring_(static_cast<size_t>(options.shards), 0x5ead,
            /*vnodes_per_shard=*/16),
      rng_(options.seed) {}

FleetWorkload::~FleetWorkload() = default;

void FleetWorkload::Provision() {
  ResetRpcClientIdsForTesting();

  KeyServiceOptions service_options;
  service_options.commit_window = options_.commit_window;
  service_options.seal_cost_fixed = SimDuration::Micros(40);
  service_options.seal_cost_per_entry = SimDuration::Micros(2);
  for (int s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<KeyService>(
        queue_, options_.seed ^ (0x1111u + static_cast<uint64_t>(s)),
        service_options));
    servers_.push_back(
        std::make_unique<RpcServer>(queue_, options_.service_time));
    shards_[s]->BindRpc(servers_[s].get());
    RpcServer* server = servers_[s].get();
    shards_[s]->set_seal_charge(
        [server](SimDuration d) { server->ChargeBusy(d); });
  }

  // Devices model their own marshalling CPU (charging it to the shared
  // virtual clock would serialize the entire fleet); the real encode/decode
  // work still runs on the host and is what the bench's events/sec and the
  // marshal micro-cell measure. The retry ladder is LAN-snappy.
  RpcOptions rpc;
  rpc.client_overhead = SimDuration();
  rpc.client_overhead_binary = SimDuration();
  rpc.codec = options_.codec;
  rpc.timeout = SimDuration::Millis(250);
  rpc.total_deadline = SimDuration::Seconds(5);

  SecureRandom id_rng(options_.seed ^ 0xD1CE);
  const int fleet = options_.users * options_.devices_per_user;
  devices_.reserve(static_cast<size_t>(fleet));
  for (int u = 0; u < options_.users; ++u) {
    for (int d = 0; d < options_.devices_per_user; ++d) {
      auto device = std::make_unique<FleetDevice>();
      device->name =
          "u" + std::to_string(u) + "-d" + std::to_string(d);
      device->user = static_cast<uint32_t>(u);
      device->link = std::make_unique<NetworkLink>(
          queue_, LanProfile(),
          options_.seed ^ (0x2222u + static_cast<uint64_t>(devices_.size())));
      device->rng = SimRandom(options_.seed ^
                              (0x3333u + static_cast<uint64_t>(
                                             devices_.size()) *
                                             0x9E3779B97F4A7C15ull));
      Bytes secret = shards_[0]->RegisterDevice(device->name);
      for (int s = 1; s < options_.shards; ++s) {
        shards_[s]->RegisterDeviceWithSecret(device->name, secret);
      }
      // A device only ever fetches keys for its own files, which land on a
      // handful of shards — so it only gets RPC machinery for those shards.
      // This is what keeps the 100k-device cell affordable at high shard
      // counts: clients scale with files-per-device, not with the ring.
      device->rpcs.resize(static_cast<size_t>(options_.shards));
      device->stubs.resize(static_cast<size_t>(options_.shards));
      device->files.reserve(static_cast<size_t>(options_.files_per_device));
      for (int f = 0; f < options_.files_per_device; ++f) {
        AuditId id = AuditId::Random(id_rng);
        size_t owner = ring_.ShardFor(id);
        if (!shards_[owner]->CreateKey(device->name, id).ok()) {
          std::fprintf(stderr, "fleet: provisioning failed for %s\n",
                       device->name.c_str());
          std::exit(1);
        }
        if (device->stubs[owner] == nullptr) {
          device->rpcs[owner] = std::make_unique<RpcClient>(
              queue_, device->link.get(), servers_[owner].get(), rpc);
          device->stubs[owner] = std::make_unique<KeyServiceClient>(
              device->rpcs[owner].get(), device->name, secret);
        }
        device->files.push_back(id);
        ++stats_.keys_provisioned;
      }
      devices_.push_back(std::move(device));
    }
  }
  stats_.devices = static_cast<uint64_t>(devices_.size());
}

SimTime FleetWorkload::ClipToAwake(uint32_t user, SimTime t) const {
  const int64_t day = options_.day.nanos();
  if (day <= 0) {
    return t;
  }
  const int64_t awake = static_cast<int64_t>(
      static_cast<double>(day) * options_.awake_fraction);
  if (awake >= day) {
    return t;
  }
  // Users wake in staggered phases, so fleet load rolls around the day.
  const int64_t phase =
      (static_cast<int64_t>(user) * day) /
      std::max(1, options_.users);
  int64_t rel = (t.nanos() - phase) % day;
  if (rel < 0) {
    rel += day;
  }
  if (rel < awake) {
    return t;
  }
  return t + SimDuration(day - rel);  // Start of the next awake window.
}

void FleetWorkload::ScheduleNextOpen(FleetDevice* device) {
  const double think_s =
      device->rng.Exponential(options_.mean_think.seconds_f());
  SimTime at = ClipToAwake(
      device->user, queue_->Now() + SimDuration::FromSecondsF(think_s));
  if (at >= deadline_) {
    return;  // Device loop winds down at the deadline.
  }
  queue_->Schedule(at, [this, device] {
    const AuditId& id = device->files[device->rng.Zipf(
        device->files.size(), options_.zipf_theta)];
    IssueOpen(device, id, /*flash=*/false);
  });
}

void FleetWorkload::IssueOpen(FleetDevice* device, const AuditId& id,
                              bool flash) {
  ++stats_.opens_issued;
  if (flash) {
    ++stats_.flash_opens;
  }
  const size_t shard = ring_.ShardFor(id);
  const SimTime issued = queue_->Now();
  device->stubs[shard]->GetKeyAsync(
      id, AccessOp::kDemandFetch,
      [this, device, issued, flash](Result<Bytes> key) {
        if (key.ok()) {
          ++stats_.opens_ok;
          latencies_ms_.push_back(static_cast<float>(
              (queue_->Now() - issued).seconds_f() * 1e3));
        } else if (key.status().code() == StatusCode::kPermissionDenied) {
          // Revoked device: the deny itself is the product — a forensic
          // kDenied row on the shard.
          ++stats_.opens_denied;
        } else {
          ++stats_.opens_failed;
        }
        if (!flash) {
          ScheduleNextOpen(device);  // Closed per-device loop.
        }
      });
}

void FleetWorkload::ScheduleFlashCrowd(SimTime at) {
  queue_->Schedule(at, [this] {
    // Push notification lands fleet-wide: every device opens its hottest
    // file within the flash window, awake or not. These are extra opens on
    // top of the diurnal loop.
    for (auto& device : devices_) {
      SimDuration jitter = SimDuration(static_cast<int64_t>(
          device->rng.UniformDouble() * options_.flash_window.nanos()));
      FleetDevice* dev = device.get();
      queue_->ScheduleAfter(jitter, [this, dev] {
        IssueOpen(dev, dev->files[0], /*flash=*/true);
      });
    }
  });
}

void FleetWorkload::ScheduleRevocationStorm(SimTime at) {
  queue_->Schedule(at, [this] {
    // The IT console reports a batch of stolen/terminated users: every one
    // of their devices is disabled on every shard, in one administrative
    // sweep. Their devices keep trying — and every attempt must be denied
    // and audited.
    const int revoked_users = static_cast<int>(
        options_.users * options_.storm_fraction);
    for (auto& device : devices_) {
      if (device->user < static_cast<uint32_t>(revoked_users)) {
        for (auto& shard : shards_) {
          shard->DisableDevice(device->name);
        }
        ++stats_.devices_revoked;
      }
    }
  });
}

FleetWorkload::Stats FleetWorkload::Run() {
  deadline_ = queue_->Now() + options_.duration;
  latencies_ms_.reserve(1 << 16);

  for (auto& device : devices_) {
    ScheduleNextOpen(device.get());
  }
  if (options_.flash_crowd) {
    ScheduleFlashCrowd(queue_->Now() +
                       SimDuration(static_cast<int64_t>(
                           options_.duration.nanos() *
                           options_.flash_at_fraction)));
  }
  if (options_.revocation_storm) {
    ScheduleRevocationStorm(queue_->Now() +
                            SimDuration(static_cast<int64_t>(
                                options_.duration.nanos() *
                                options_.storm_at_fraction)));
  }

  const SimTime start = queue_->Now();
  queue_->RunUntilIdle();
  stats_.virtual_seconds = (queue_->Now() - start).seconds_f();

  if (!latencies_ms_.empty()) {
    std::sort(latencies_ms_.begin(), latencies_ms_.end());
    auto at = [&](double q) {
      return latencies_ms_[static_cast<size_t>(
          q * (latencies_ms_.size() - 1))];
    };
    stats_.p50_ms = at(0.50);
    stats_.p99_ms = at(0.99);
  }

  stats_.chains_verified = true;
  for (auto& shard : shards_) {
    stats_.log_entries += shard->log().size();
    for (const AuditLogEntry& entry : shard->log().entries()) {
      if (entry.op == AccessOp::kDenied) {
        ++stats_.denied_log_entries;
      }
    }
    if (!shard->log().Verify().ok()) {
      stats_.chains_verified = false;
    }
  }
  for (auto& device : devices_) {
    stats_.bytes_on_wire += device->link->bytes_sent();
    stats_.rpc_messages += device->link->messages_sent();
    for (auto& rpc : device->rpcs) {
      if (rpc == nullptr) {
        continue;  // Device owns no files on that shard.
      }
      stats_.codec_downgrades += rpc->codec_downgrades();
      stats_.encode_buffer_acquires += rpc->encode_buffer_stats().acquires;
      stats_.encode_buffer_reuses += rpc->encode_buffer_stats().reuses;
    }
  }
  return stats_;
}

}  // namespace keypad
