// Fleet-scale workload engine: an entire population of Keypad users — each
// owning several theft-prone devices — driving the sharded key tier through
// the real RPC stack (marshalling, sealed channels optional, retry ladders,
// at-most-once dedup) inside one discrete-event simulation.
//
// The shapes it generates are the ones a deployment actually sees:
//  * zipfian file popularity per device (a handful of hot documents absorb
//    most opens; the tail is touched rarely);
//  * diurnal churn: users wake and sleep in staggered day phases, so load
//    rolls around the fleet instead of arriving uniformly;
//  * flash crowds: a synchronized fleet-wide burst (the "everyone opens the
//    leaked memo at 9am" shape) that spikes service queue depth;
//  * mass-revocation storms: a fraction of users is remotely disabled
//    mid-run — every subsequent open from their devices must be denied AND
//    leave a kDenied forensic row in the audit chain (paper §3.1's theft
//    response, at fleet scale).
//
// Every fetch flows through a per-device RpcClient (its own link, breaker,
// codec negotiation state, pooled encode buffers) so the engine exercises
// exactly the hot paths the simulator-core overhaul optimized: the event
// queue under hundreds of thousands of timers, and the wire codecs under
// millions of marshals. bench_fleet.cc turns this into BENCH_simcore.json.

#ifndef SRC_WORKLOAD_FLEET_H_
#define SRC_WORKLOAD_FLEET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/keyservice/key_service.h"
#include "src/keyservice/key_service_client.h"
#include "src/keyservice/shard_ring.h"
#include "src/net/link.h"
#include "src/rpc/rpc.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"
#include "src/wire/codec.h"

namespace keypad {

struct FleetOptions {
  // Population: users × devices_per_user devices, each with its own key
  // population of files_per_device audit IDs.
  int users = 32;
  int devices_per_user = 2;
  int files_per_device = 8;
  double zipf_theta = 0.9;  // Popularity skew across a device's files.

  // Key tier.
  int shards = 2;
  SimDuration service_time = SimDuration::Micros(150);
  SimDuration commit_window = SimDuration::Micros(400);

  // Request framing for every device's RpcClient.
  WireCodec codec = WireCodec::kXml;

  // Virtual run length and diurnal shape: a device is awake for
  // awake_fraction of every (compressed) day, phase-staggered by user.
  SimDuration duration = SimDuration::Seconds(20);
  SimDuration day = SimDuration::Seconds(8);
  double awake_fraction = 0.5;
  // Mean think time between a device's opens while awake.
  SimDuration mean_think = SimDuration::Millis(500);

  // Flash crowd: at flash_at_fraction of the run, EVERY device opens its
  // hottest file within a flash_window (push-notification shape).
  bool flash_crowd = false;
  double flash_at_fraction = 0.45;
  SimDuration flash_window = SimDuration::Millis(250);

  // Mass-revocation storm: at storm_at_fraction of the run, storm_fraction
  // of users have ALL their devices disabled on every shard.
  bool revocation_storm = false;
  double storm_at_fraction = 0.7;
  double storm_fraction = 0.25;

  uint64_t seed = 0xF1EE7;
};

class FleetWorkload {
 public:
  struct Stats {
    uint64_t devices = 0;
    uint64_t keys_provisioned = 0;
    uint64_t opens_issued = 0;
    uint64_t opens_ok = 0;
    uint64_t opens_denied = 0;  // Post-revocation fetches (audited).
    uint64_t opens_failed = 0;  // Transport/timeout failures.
    uint64_t flash_opens = 0;
    uint64_t devices_revoked = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double virtual_seconds = 0;
    uint64_t log_entries = 0;          // Across all shards.
    uint64_t denied_log_entries = 0;   // kDenied rows across all shards.
    uint64_t bytes_on_wire = 0;        // All device links, both directions.
    uint64_t rpc_messages = 0;
    uint64_t codec_downgrades = 0;
    uint64_t encode_buffer_acquires = 0;
    uint64_t encode_buffer_reuses = 0;
    bool chains_verified = false;  // Every shard's audit chain Verify()s.
  };

  FleetWorkload(EventQueue* queue, FleetOptions options);
  ~FleetWorkload();

  FleetWorkload(const FleetWorkload&) = delete;
  FleetWorkload& operator=(const FleetWorkload&) = delete;

  // Builds shards, registers every device on every shard, and mints each
  // device's key population in process (no RPC warmup noise).
  void Provision();

  // Seeds every device's open loop plus the configured storms, pumps the
  // queue dry, and returns the collected stats. Provision() must have run.
  Stats Run();

  KeyService* shard(int i) { return shards_[i].get(); }
  RpcServer* server(int i) { return servers_[i].get(); }
  int shard_count() const { return static_cast<int>(shards_.size()); }

 private:
  struct FleetDevice;

  // The device's next open: exponential think time, clipped to its user's
  // awake windows, dropped past the deadline.
  void ScheduleNextOpen(FleetDevice* device);
  void IssueOpen(FleetDevice* device, const AuditId& id, bool flash);
  // Earliest time >= t inside the user's awake window.
  SimTime ClipToAwake(uint32_t user, SimTime t) const;

  void ScheduleFlashCrowd(SimTime at);
  void ScheduleRevocationStorm(SimTime at);

  EventQueue* queue_;
  FleetOptions options_;
  ShardRing ring_;
  SimRandom rng_;
  SimTime deadline_;

  std::vector<std::unique_ptr<KeyService>> shards_;
  std::vector<std::unique_ptr<RpcServer>> servers_;
  std::vector<std::unique_ptr<FleetDevice>> devices_;

  Stats stats_;
  std::vector<float> latencies_ms_;
};

}  // namespace keypad

#endif  // SRC_WORKLOAD_FLEET_H_
