// Boneh–Franklin identity-based encryption (BasicIdent + DEM), from scratch.
//
// Keypad uses IBE to take metadata updates off the critical path (§3.4 of
// the paper): on rename(F, G) the client IBE-encrypts ("locks") the file's
// wrapped data key under the public-key string "<dir-id>/<new-name>|<audit
// id>" and ships the new pathname to the metadata service asynchronously.
// The metadata service is the PKG: it releases the matching IBE private key
// only after durably logging the pathname binding, so a thief cannot unlock
// the file without registering truthful metadata.
//
// Scheme (BF BasicIdent over the type-A pairing group):
//   Setup:    master secret s ∈ Z_q*, P_pub = s·P.
//   Extract:  d_id = s·H1(id)  where H1 hashes onto E(F_p)[q].
//   Encrypt:  r ∈ Z_q*, U = r·P, g = ê(H1(id), P_pub)^r,
//             (k_enc, k_mac) = HKDF(H2(g)); ct = AES-CTR(k_enc, m),
//             tag = HMAC(k_mac, U || ct).
//   Decrypt:  g = ê(d_id, U); same KDF; verify tag; decrypt.
// BasicIdent gives IND-ID-CPA; the HMAC tag adds ciphertext integrity
// (encrypt-then-MAC), which is what the file-lock format needs.

#ifndef SRC_IBE_BF_IBE_H_
#define SRC_IBE_BF_IBE_H_

#include <string>
#include <string_view>

#include "src/cryptocore/secure_random.h"
#include "src/ibe/curve.h"
#include "src/util/result.h"

namespace keypad {

// Public parameters published by the PKG.
struct IbePublicParams {
  const PairingParams* group = nullptr;  // Not owned.
  EcPoint p_pub;                         // s·P.
};

// Extracted per-identity private key.
struct IbePrivateKey {
  std::string identity;
  EcPoint d;  // s·H1(identity).

  Bytes Serialize(const PairingParams& group) const;
  static Result<IbePrivateKey> Deserialize(std::string identity,
                                           const Bytes& data,
                                           const PairingParams& group);
};

struct IbeCiphertext {
  EcPoint u;  // r·P.
  Bytes ct;   // AES-CTR body.
  Bytes tag;  // HMAC-SHA256 over U || ct.

  Bytes Serialize(const PairingParams& group) const;
  static Result<IbeCiphertext> Deserialize(const Bytes& data,
                                           const PairingParams& group);
};

// The private key generator. The metadata service owns one of these.
class IbePkg {
 public:
  // Creates a PKG with a fresh master secret drawn from `rng`.
  IbePkg(const PairingParams& group, SecureRandom& rng);

  const IbePublicParams& public_params() const { return public_params_; }

  // Extracts the private key for an identity string.
  IbePrivateKey Extract(std::string_view identity) const;

 private:
  const PairingParams& group_;
  BigInt master_secret_;
  IbePublicParams public_params_;
};

// Client-side operations (no master secret required).
IbeCiphertext IbeEncrypt(const IbePublicParams& params,
                         std::string_view identity, const Bytes& plaintext,
                         SecureRandom& rng);

// Fails with kDataLoss if the tag does not verify (wrong key / identity /
// tampered ciphertext).
Result<Bytes> IbeDecrypt(const IbePublicParams& params,
                         const IbePrivateKey& key,
                         const IbeCiphertext& ciphertext);

}  // namespace keypad

#endif  // SRC_IBE_BF_IBE_H_
