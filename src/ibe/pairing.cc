#include "src/ibe/pairing.h"

#include <cassert>

namespace keypad {

namespace {

// State for Miller's loop: the running point V plus per-step line slopes.
// Evaluates the line through points of E(F_p) at the distorted point
// φ(Q) = (−x_Q, i·y_Q). With x̃ = −x_Q ∈ F_p the line value is
//   l(φQ) = i·y_Q − y_V − λ(x̃ − x_V)
// whose real part is −(y_V + λ(x̃ − x_V)) and imaginary part is y_Q.
Fp2 LineValue(const BigInt& lambda, const EcPoint& v, const BigInt& x_tilde,
              const BigInt& y_q, const BigInt& p) {
  BigInt t = BigInt::ModSub(x_tilde, v.x, p);
  BigInt real = BigInt::ModSub(
      BigInt::Zero(), BigInt::ModAdd(v.y, BigInt::ModMul(lambda, t, p), p), p);
  return Fp2{real, y_q};
}

// Doubles `v` returning the tangent slope; v.y must be non-zero (holds for
// points of odd prime order).
EcPoint DoubleWithSlope(const EcPoint& v, const BigInt& p, BigInt* lambda) {
  BigInt x2 = BigInt::ModMul(v.x, v.x, p);
  BigInt num = BigInt::ModAdd(
      BigInt::ModAdd(x2, BigInt::ModAdd(x2, x2, p), p), BigInt::One(), p);
  BigInt denom = BigInt::ModAdd(v.y, v.y, p);
  auto inv = BigInt::ModInverse(denom, p);
  assert(inv.ok());
  *lambda = BigInt::ModMul(num, *inv, p);
  BigInt x3 = BigInt::ModSub(BigInt::ModMul(*lambda, *lambda, p),
                             BigInt::ModAdd(v.x, v.x, p), p);
  BigInt y3 = BigInt::ModSub(
      BigInt::ModMul(*lambda, BigInt::ModSub(v.x, x3, p), p), v.y, p);
  return {x3, y3, false};
}

// Adds distinct-x points returning the chord slope.
EcPoint AddWithSlope(const EcPoint& a, const EcPoint& b, const BigInt& p,
                     BigInt* lambda) {
  BigInt num = BigInt::ModSub(b.y, a.y, p);
  BigInt denom = BigInt::ModSub(b.x, a.x, p);
  auto inv = BigInt::ModInverse(denom, p);
  assert(inv.ok());
  *lambda = BigInt::ModMul(num, *inv, p);
  BigInt x3 = BigInt::ModSub(
      BigInt::ModSub(BigInt::ModMul(*lambda, *lambda, p), a.x, p), b.x, p);
  BigInt y3 = BigInt::ModSub(
      BigInt::ModMul(*lambda, BigInt::ModSub(a.x, x3, p), p), a.y, p);
  return {x3, y3, false};
}

}  // namespace

Fp2 TatePairing(const EcPoint& pt_p, const EcPoint& pt_q,
                const PairingParams& params) {
  if (pt_p.infinity || pt_q.infinity) {
    return Fp2::One();
  }
  const BigInt& p = params.p;
  const BigInt& q = params.q;

  // Distorted evaluation point φ(Q) = (−x_Q, i·y_Q).
  BigInt x_tilde = BigInt::ModSub(BigInt::Zero(), pt_q.x, p);
  const BigInt& y_q = pt_q.y;

  Fp2 f = Fp2::One();
  EcPoint v = pt_p;
  BigInt lambda;

  int bits = q.BitLength();
  for (int i = bits - 2; i >= 0; --i) {
    // f <- f^2 * l_{V,V}(φQ); V <- 2V.
    f = Fp2Square(f, p);
    EcPoint doubled = DoubleWithSlope(v, p, &lambda);
    f = Fp2Mul(f, LineValue(lambda, v, x_tilde, y_q, p), p);
    v = doubled;

    if (q.Bit(i)) {
      // f <- f * l_{V,P}(φQ); V <- V + P.
      if (v.x == pt_p.x) {
        // V == −P (the final addition): the chord is the vertical line,
        // whose value lies in F_p and dies in the final exponentiation.
        v = EcPoint::Infinity();
      } else {
        EcPoint added = AddWithSlope(v, pt_p, p, &lambda);
        f = Fp2Mul(f, LineValue(lambda, v, x_tilde, y_q, p), p);
        v = added;
      }
    }
  }
  // After processing all bits V = [q]P = O, reached via the vertical-skip
  // above on the last addition.
  assert(v.infinity);

  // Final exponentiation: f^((p^2−1)/q) = (f^(p−1))^((p+1)/q).
  // Frobenius: f^p = conj(f) for p ≡ 3 (mod 4), so f^(p−1) = conj(f)/f.
  Fp2 g = Fp2Mul(Fp2Conjugate(f, p), Fp2Inverse(f, p), p);
  return Fp2Pow(g, params.cofactor, p);
}

}  // namespace keypad
