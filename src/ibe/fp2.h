// Arithmetic in F_{p^2} = F_p[i] / (i^2 + 1), for primes p ≡ 3 (mod 4)
// (so that -1 is a quadratic non-residue and the extension is a field).
//
// Elements are re + im·i with re, im reduced mod p. This is the target group
// of the Tate pairing used by the Boneh–Franklin IBE.

#ifndef SRC_IBE_FP2_H_
#define SRC_IBE_FP2_H_

#include "src/cryptocore/bigint.h"
#include "src/util/bytes.h"

namespace keypad {

struct Fp2 {
  BigInt re;
  BigInt im;

  static Fp2 Zero() { return {BigInt::Zero(), BigInt::Zero()}; }
  static Fp2 One() { return {BigInt::One(), BigInt::Zero()}; }
  static Fp2 FromFp(BigInt v) { return {std::move(v), BigInt::Zero()}; }

  bool IsZero() const { return re.IsZero() && im.IsZero(); }
  bool IsOne() const { return re.IsOne() && im.IsZero(); }
  bool operator==(const Fp2& o) const { return re == o.re && im == o.im; }
  bool operator!=(const Fp2& o) const { return !(*this == o); }

  // Fixed-width big-endian serialization (re || im), each padded to the
  // byte length of p.
  Bytes Serialize(const BigInt& p) const;
};

Fp2 Fp2Add(const Fp2& a, const Fp2& b, const BigInt& p);
Fp2 Fp2Sub(const Fp2& a, const Fp2& b, const BigInt& p);
Fp2 Fp2Mul(const Fp2& a, const Fp2& b, const BigInt& p);
Fp2 Fp2Square(const Fp2& a, const BigInt& p);
// Conjugate re - im·i; equals the Frobenius map a^p for p ≡ 3 (mod 4).
Fp2 Fp2Conjugate(const Fp2& a, const BigInt& p);
// Multiplicative inverse; a must be non-zero.
Fp2 Fp2Inverse(const Fp2& a, const BigInt& p);
Fp2 Fp2Pow(const Fp2& a, const BigInt& e, const BigInt& p);

}  // namespace keypad

#endif  // SRC_IBE_FP2_H_
