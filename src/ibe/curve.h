// The supersingular elliptic curve E: y^2 = x^3 + x over F_p, p ≡ 3 (mod 4),
// used by the Boneh–Franklin IBE ("type A" pairing group).
//
// For such p the curve is supersingular with #E(F_p) = p + 1. Parameters are
// generated as p = 12·q·c − 1 for a prime q (the pairing group order), which
// guarantees p ≡ 3 (mod 4) and q | p + 1. The distortion map
// φ(x, y) = (−x, i·y) sends E(F_p)[q] into a linearly independent q-torsion
// subgroup over F_{p^2}, making the modified Tate pairing
// ê(P, Q) = e(P, φ(Q)) non-degenerate on E(F_p)[q] × E(F_p)[q].

#ifndef SRC_IBE_CURVE_H_
#define SRC_IBE_CURVE_H_

#include <string_view>

#include "src/cryptocore/bigint.h"
#include "src/cryptocore/secure_random.h"
#include "src/util/result.h"

namespace keypad {

// Affine point on E(F_p); (0, 0, infinity=true) is the identity.
struct EcPoint {
  BigInt x;
  BigInt y;
  bool infinity = false;

  static EcPoint Infinity() { return {BigInt::Zero(), BigInt::Zero(), true}; }
  bool operator==(const EcPoint& o) const {
    if (infinity || o.infinity) {
      return infinity == o.infinity;
    }
    return x == o.x && y == o.y;
  }
};

// Pairing group parameters.
struct PairingParams {
  BigInt p;         // Field prime, p = 12·q·c − 1.
  BigInt q;         // Prime group order, q | p + 1.
  BigInt cofactor;  // (p + 1) / q = 12·c.
  EcPoint g;        // Generator of E(F_p)[q].

  // Byte length of one field element.
  size_t FieldBytes() const {
    return (static_cast<size_t>(p.BitLength()) + 7) / 8;
  }
};

// Generates fresh parameters: a `q_bits`-bit prime q and `p_bits`-bit prime
// p = 12qc − 1, plus a generator. Deterministic for a given rng state.
Result<PairingParams> GeneratePairingParams(SecureRandom& rng, int p_bits,
                                            int q_bits);

// Shared default parameter sets, generated once (lazily) from fixed seeds:
// Production-strength: 512-bit p, 160-bit q (as in the Boneh–Franklin
// suggested parameters of the era). Test-strength: 256-bit p, 150-bit q,
// ~20x faster, used by unit tests that don't measure security.
const PairingParams& DefaultPairingParams();
const PairingParams& TestPairingParams();
// Minimal-size group (192-bit p, 96-bit q) for the workload benches, where
// thousands of IBE operations run per data point and only the mechanism —
// not the security margin — matters.
const PairingParams& BenchPairingParams();

// True if P satisfies the curve equation (or is the identity).
bool IsOnCurve(const EcPoint& pt, const PairingParams& params);

EcPoint EcAdd(const EcPoint& a, const EcPoint& b, const BigInt& p);
EcPoint EcDouble(const EcPoint& a, const BigInt& p);
EcPoint EcNegate(const EcPoint& a, const BigInt& p);
EcPoint EcScalarMul(const BigInt& k, const EcPoint& pt, const BigInt& p);

// Hashes an arbitrary identity string onto E(F_p)[q] (try-and-increment on
// the x-coordinate, then cofactor multiplication). Never returns infinity.
EcPoint HashToPoint(std::string_view id, const PairingParams& params);

// Fixed-width serialization: a marker byte (0 = infinity, 1 = affine)
// followed by x || y, each FieldBytes() long. Round-trips with
// DeserializePoint, which also validates curve membership.
Bytes SerializePoint(const EcPoint& pt, const PairingParams& params);
Result<EcPoint> DeserializePoint(const Bytes& data,
                                 const PairingParams& params);

}  // namespace keypad

#endif  // SRC_IBE_CURVE_H_
