#include "src/ibe/bf_ibe.h"

#include "src/cryptocore/aes.h"
#include "src/cryptocore/hmac.h"
#include "src/cryptocore/sha256.h"
#include "src/ibe/fp2.h"
#include "src/ibe/pairing.h"

namespace keypad {

namespace {

// H2: pairing value -> (enc key, mac key, iv).
struct DemKeys {
  Bytes enc_key;  // 32 bytes.
  Bytes mac_key;  // 32 bytes.
  Bytes iv;       // 16 bytes.
};

DemKeys DeriveDemKeys(const Fp2& g, const PairingParams& group) {
  Bytes ikm = g.Serialize(group.p);
  Bytes okm = Hkdf(ikm, /*salt=*/{}, "keypad-ibe-dem", 80);
  DemKeys keys;
  keys.enc_key.assign(okm.begin(), okm.begin() + 32);
  keys.mac_key.assign(okm.begin() + 32, okm.begin() + 64);
  keys.iv.assign(okm.begin() + 64, okm.begin() + 80);
  return keys;
}

Bytes MacInput(const EcPoint& u, const Bytes& ct,
               const PairingParams& group) {
  Bytes in = SerializePoint(u, group);
  Append(in, ct);
  return in;
}

}  // namespace

Bytes IbePrivateKey::Serialize(const PairingParams& group) const {
  return SerializePoint(d, group);
}

Result<IbePrivateKey> IbePrivateKey::Deserialize(std::string identity,
                                                 const Bytes& data,
                                                 const PairingParams& group) {
  KP_ASSIGN_OR_RETURN(EcPoint d, DeserializePoint(data, group));
  IbePrivateKey key;
  key.identity = std::move(identity);
  key.d = std::move(d);
  return key;
}

Bytes IbeCiphertext::Serialize(const PairingParams& group) const {
  Bytes out = SerializePoint(u, group);
  AppendU32Be(out, static_cast<uint32_t>(ct.size()));
  Append(out, ct);
  AppendU32Be(out, static_cast<uint32_t>(tag.size()));
  Append(out, tag);
  return out;
}

Result<IbeCiphertext> IbeCiphertext::Deserialize(const Bytes& data,
                                                 const PairingParams& group) {
  size_t point_len = 1 + 2 * group.FieldBytes();
  if (data.size() < point_len + 8) {
    return InvalidArgumentError("ibe ciphertext: too short");
  }
  IbeCiphertext out;
  KP_ASSIGN_OR_RETURN(
      out.u,
      DeserializePoint(Bytes(data.begin(), data.begin() + point_len), group));
  size_t pos = point_len;
  uint32_t ct_len = ReadU32Be(data.data() + pos);
  pos += 4;
  if (data.size() < pos + ct_len + 4) {
    return InvalidArgumentError("ibe ciphertext: truncated body");
  }
  out.ct.assign(data.begin() + pos, data.begin() + pos + ct_len);
  pos += ct_len;
  uint32_t tag_len = ReadU32Be(data.data() + pos);
  pos += 4;
  if (data.size() != pos + tag_len) {
    return InvalidArgumentError("ibe ciphertext: truncated tag");
  }
  out.tag.assign(data.begin() + pos, data.end());
  return out;
}

IbePkg::IbePkg(const PairingParams& group, SecureRandom& rng) : group_(group) {
  // Master secret uniform in [1, q).
  do {
    master_secret_ = BigInt::RandomBelow(rng, group.q);
  } while (master_secret_.IsZero());
  public_params_.group = &group_;
  public_params_.p_pub = EcScalarMul(master_secret_, group.g, group.p);
}

IbePrivateKey IbePkg::Extract(std::string_view identity) const {
  IbePrivateKey key;
  key.identity = std::string(identity);
  EcPoint q_id = HashToPoint(identity, group_);
  key.d = EcScalarMul(master_secret_, q_id, group_.p);
  return key;
}

IbeCiphertext IbeEncrypt(const IbePublicParams& params,
                         std::string_view identity, const Bytes& plaintext,
                         SecureRandom& rng) {
  const PairingParams& group = *params.group;
  BigInt r;
  do {
    r = BigInt::RandomBelow(rng, group.q);
  } while (r.IsZero());

  IbeCiphertext out;
  out.u = EcScalarMul(r, group.g, group.p);

  EcPoint q_id = HashToPoint(identity, group);
  Fp2 g_id = TatePairing(q_id, params.p_pub, group);
  Fp2 g_r = Fp2Pow(g_id, r, group.p);

  DemKeys keys = DeriveDemKeys(g_r, group);
  auto aes = Aes256::Create(keys.enc_key);
  out.ct = aes->CtrXor(keys.iv, 0, plaintext);
  out.tag = HmacSha256(keys.mac_key, MacInput(out.u, out.ct, group));
  return out;
}

Result<Bytes> IbeDecrypt(const IbePublicParams& params,
                         const IbePrivateKey& key,
                         const IbeCiphertext& ciphertext) {
  const PairingParams& group = *params.group;
  Fp2 g = TatePairing(key.d, ciphertext.u, group);
  DemKeys keys = DeriveDemKeys(g, group);
  Bytes expected_tag =
      HmacSha256(keys.mac_key, MacInput(ciphertext.u, ciphertext.ct, group));
  if (!ConstantTimeEquals(expected_tag, ciphertext.tag)) {
    return DataLossError("ibe: authentication tag mismatch");
  }
  auto aes = Aes256::Create(keys.enc_key);
  return aes->CtrXor(keys.iv, 0, ciphertext.ct);
}

}  // namespace keypad
