#include "src/ibe/fp2.h"

#include <cassert>

namespace keypad {

Bytes Fp2::Serialize(const BigInt& p) const {
  size_t field_len = (static_cast<size_t>(p.BitLength()) + 7) / 8;
  Bytes out = re.ToBytesBe(field_len);
  Bytes im_bytes = im.ToBytesBe(field_len);
  Append(out, im_bytes);
  return out;
}

Fp2 Fp2Add(const Fp2& a, const Fp2& b, const BigInt& p) {
  return {BigInt::ModAdd(a.re, b.re, p), BigInt::ModAdd(a.im, b.im, p)};
}

Fp2 Fp2Sub(const Fp2& a, const Fp2& b, const BigInt& p) {
  return {BigInt::ModSub(a.re, b.re, p), BigInt::ModSub(a.im, b.im, p)};
}

Fp2 Fp2Mul(const Fp2& a, const Fp2& b, const BigInt& p) {
  // (a0 + a1 i)(b0 + b1 i) = (a0 b0 - a1 b1) + (a0 b1 + a1 b0) i.
  // Karatsuba-style: three multiplications.
  BigInt t0 = BigInt::ModMul(a.re, b.re, p);
  BigInt t1 = BigInt::ModMul(a.im, b.im, p);
  BigInt sum_a = BigInt::ModAdd(a.re, a.im, p);
  BigInt sum_b = BigInt::ModAdd(b.re, b.im, p);
  BigInt t2 = BigInt::ModMul(sum_a, sum_b, p);
  Fp2 out;
  out.re = BigInt::ModSub(t0, t1, p);
  out.im = BigInt::ModSub(BigInt::ModSub(t2, t0, p), t1, p);
  return out;
}

Fp2 Fp2Square(const Fp2& a, const BigInt& p) {
  // (a0 + a1 i)^2 = (a0+a1)(a0-a1) + 2 a0 a1 i.
  BigInt sum = BigInt::ModAdd(a.re, a.im, p);
  BigInt diff = BigInt::ModSub(a.re, a.im, p);
  BigInt cross = BigInt::ModMul(a.re, a.im, p);
  return {BigInt::ModMul(sum, diff, p), BigInt::ModAdd(cross, cross, p)};
}

Fp2 Fp2Conjugate(const Fp2& a, const BigInt& p) {
  return {a.re, BigInt::ModSub(BigInt::Zero(), a.im, p)};
}

Fp2 Fp2Inverse(const Fp2& a, const BigInt& p) {
  assert(!a.IsZero());
  // 1/(a0 + a1 i) = (a0 - a1 i) / (a0^2 + a1^2).
  BigInt norm = BigInt::ModAdd(BigInt::ModMul(a.re, a.re, p),
                               BigInt::ModMul(a.im, a.im, p), p);
  auto norm_inv = BigInt::ModInverse(norm, p);
  assert(norm_inv.ok());
  return {BigInt::ModMul(a.re, *norm_inv, p),
          BigInt::ModMul(BigInt::ModSub(BigInt::Zero(), a.im, p), *norm_inv,
                         p)};
}

Fp2 Fp2Pow(const Fp2& a, const BigInt& e, const BigInt& p) {
  Fp2 result = Fp2::One();
  int bits = e.BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    result = Fp2Square(result, p);
    if (e.Bit(i)) {
      result = Fp2Mul(result, a, p);
    }
  }
  return result;
}

}  // namespace keypad
