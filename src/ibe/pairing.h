// Modified Tate pairing ê: E(F_p)[q] × E(F_p)[q] → μ_q ⊂ F_{p^2}^*.
//
// ê(P, Q) = e_q(P, φ(Q)) where e_q is the reduced Tate pairing computed via
// Miller's algorithm, and φ(x, y) = (−x, i·y) is the distortion map of the
// supersingular curve y² = x³ + x. The distorted point has x-coordinate in
// F_p, which makes all vertical-line values lie in F_p and thus vanish under
// the final exponentiation (denominator elimination).
//
// Properties (tested): bilinearity ê(aP, bQ) = ê(P, Q)^{ab}, non-degeneracy
// for points of order q, and ê(P, Q) ∈ μ_q (value^q = 1).

#ifndef SRC_IBE_PAIRING_H_
#define SRC_IBE_PAIRING_H_

#include "src/ibe/curve.h"
#include "src/ibe/fp2.h"

namespace keypad {

// Both P and Q must lie in E(F_p)[q]. Returns 1 if either is infinity.
Fp2 TatePairing(const EcPoint& pt_p, const EcPoint& pt_q,
                const PairingParams& params);

}  // namespace keypad

#endif  // SRC_IBE_PAIRING_H_
