#include "src/ibe/curve.h"

#include <cassert>
#include <cstdlib>

#include "src/cryptocore/sha256.h"
#include "src/util/logging.h"

namespace keypad {

namespace {

// y^2 = x^3 + x  =>  rhs(x) = x^3 + x.
BigInt CurveRhs(const BigInt& x, const BigInt& p) {
  BigInt x2 = BigInt::ModMul(x, x, p);
  BigInt x3 = BigInt::ModMul(x2, x, p);
  return BigInt::ModAdd(x3, x, p);
}

// Legendre symbol via Euler's criterion; returns 1, -1 (as p-1 check), or 0.
bool IsQuadraticResidue(const BigInt& v, const BigInt& p) {
  if (v.IsZero()) {
    return true;
  }
  BigInt e = BigInt::Sub(p, BigInt::One()).ShiftRight(1);
  return BigInt::ModExp(v, e, p).IsOne();
}

// Square root for p ≡ 3 (mod 4): v^((p+1)/4). Caller must ensure v is a QR.
BigInt SqrtMod(const BigInt& v, const BigInt& p) {
  BigInt e = BigInt::Add(p, BigInt::One()).ShiftRight(2);
  return BigInt::ModExp(v, e, p);
}

}  // namespace

bool IsOnCurve(const EcPoint& pt, const PairingParams& params) {
  if (pt.infinity) {
    return true;
  }
  const BigInt& p = params.p;
  BigInt lhs = BigInt::ModMul(pt.y, pt.y, p);
  return lhs == CurveRhs(pt.x, p);
}

EcPoint EcNegate(const EcPoint& a, const BigInt& p) {
  if (a.infinity) {
    return a;
  }
  return {a.x, BigInt::ModSub(BigInt::Zero(), a.y, p), false};
}

EcPoint EcDouble(const EcPoint& a, const BigInt& p) {
  if (a.infinity || a.y.IsZero()) {
    return EcPoint::Infinity();
  }
  // lambda = (3x^2 + 1) / (2y)   (curve coefficient a = 1).
  BigInt x2 = BigInt::ModMul(a.x, a.x, p);
  BigInt num = BigInt::ModAdd(BigInt::ModAdd(x2, BigInt::ModAdd(x2, x2, p), p),
                              BigInt::One(), p);
  BigInt denom = BigInt::ModAdd(a.y, a.y, p);
  auto denom_inv = BigInt::ModInverse(denom, p);
  assert(denom_inv.ok());
  BigInt lambda = BigInt::ModMul(num, *denom_inv, p);

  BigInt x3 = BigInt::ModSub(BigInt::ModMul(lambda, lambda, p),
                             BigInt::ModAdd(a.x, a.x, p), p);
  BigInt y3 = BigInt::ModSub(
      BigInt::ModMul(lambda, BigInt::ModSub(a.x, x3, p), p), a.y, p);
  return {x3, y3, false};
}

EcPoint EcAdd(const EcPoint& a, const EcPoint& b, const BigInt& p) {
  if (a.infinity) {
    return b;
  }
  if (b.infinity) {
    return a;
  }
  if (a.x == b.x) {
    if (a.y == b.y) {
      return EcDouble(a, p);
    }
    return EcPoint::Infinity();  // b == -a.
  }
  BigInt num = BigInt::ModSub(b.y, a.y, p);
  BigInt denom = BigInt::ModSub(b.x, a.x, p);
  auto denom_inv = BigInt::ModInverse(denom, p);
  assert(denom_inv.ok());
  BigInt lambda = BigInt::ModMul(num, *denom_inv, p);

  BigInt x3 = BigInt::ModSub(
      BigInt::ModSub(BigInt::ModMul(lambda, lambda, p), a.x, p), b.x, p);
  BigInt y3 = BigInt::ModSub(
      BigInt::ModMul(lambda, BigInt::ModSub(a.x, x3, p), p), a.y, p);
  return {x3, y3, false};
}

namespace {

// Jacobian projective point: x = X/Z^2, y = Y/Z^3. Scalar multiplication in
// Jacobian coordinates avoids the per-step modular inversion of affine
// arithmetic (one inversion total, at the end).
struct JacPoint {
  BigInt x;
  BigInt y;
  BigInt z;  // Zero => point at infinity.

  bool IsInfinity() const { return z.IsZero(); }
};

JacPoint JacFromAffine(const EcPoint& pt) {
  if (pt.infinity) {
    return {BigInt::Zero(), BigInt::One(), BigInt::Zero()};
  }
  return {pt.x, pt.y, BigInt::One()};
}

// Doubling for curve y^2 = x^3 + a x + b with a = 1.
JacPoint JacDouble(const JacPoint& pt, const BigInt& p) {
  if (pt.IsInfinity() || pt.y.IsZero()) {
    return {BigInt::Zero(), BigInt::One(), BigInt::Zero()};
  }
  BigInt y2 = BigInt::ModMul(pt.y, pt.y, p);
  BigInt s = BigInt::ModMul(BigInt::FromU64(4),
                            BigInt::ModMul(pt.x, y2, p), p);
  BigInt z2 = BigInt::ModMul(pt.z, pt.z, p);
  BigInt z4 = BigInt::ModMul(z2, z2, p);
  BigInt x2 = BigInt::ModMul(pt.x, pt.x, p);
  // M = 3 X^2 + a Z^4, a = 1.
  BigInt m = BigInt::ModAdd(
      BigInt::ModMul(BigInt::FromU64(3), x2, p), z4, p);
  BigInt x3 = BigInt::ModSub(BigInt::ModMul(m, m, p),
                             BigInt::ModAdd(s, s, p), p);
  BigInt y4 = BigInt::ModMul(y2, y2, p);
  BigInt y3 = BigInt::ModSub(
      BigInt::ModMul(m, BigInt::ModSub(s, x3, p), p),
      BigInt::ModMul(BigInt::FromU64(8), y4, p), p);
  BigInt z3 = BigInt::ModMul(BigInt::ModAdd(pt.y, pt.y, p), pt.z, p);
  return {std::move(x3), std::move(y3), std::move(z3)};
}

// Mixed addition: Jacobian + affine.
JacPoint JacAddAffine(const JacPoint& a, const EcPoint& b, const BigInt& p) {
  if (b.infinity) {
    return a;
  }
  if (a.IsInfinity()) {
    return JacFromAffine(b);
  }
  BigInt z2 = BigInt::ModMul(a.z, a.z, p);
  BigInt u2 = BigInt::ModMul(b.x, z2, p);
  BigInt s2 = BigInt::ModMul(b.y, BigInt::ModMul(z2, a.z, p), p);
  BigInt h = BigInt::ModSub(u2, a.x, p);
  BigInt r = BigInt::ModSub(s2, a.y, p);
  if (h.IsZero()) {
    if (r.IsZero()) {
      return JacDouble(a, p);
    }
    return {BigInt::Zero(), BigInt::One(), BigInt::Zero()};  // a + (-a).
  }
  BigInt h2 = BigInt::ModMul(h, h, p);
  BigInt h3 = BigInt::ModMul(h2, h, p);
  BigInt v = BigInt::ModMul(a.x, h2, p);
  BigInt x3 = BigInt::ModSub(
      BigInt::ModSub(BigInt::ModMul(r, r, p), h3, p),
      BigInt::ModAdd(v, v, p), p);
  BigInt y3 = BigInt::ModSub(
      BigInt::ModMul(r, BigInt::ModSub(v, x3, p), p),
      BigInt::ModMul(a.y, h3, p), p);
  BigInt z3 = BigInt::ModMul(a.z, h, p);
  return {std::move(x3), std::move(y3), std::move(z3)};
}

EcPoint JacToAffine(const JacPoint& pt, const BigInt& p) {
  if (pt.IsInfinity()) {
    return EcPoint::Infinity();
  }
  auto z_inv = BigInt::ModInverse(pt.z, p);
  assert(z_inv.ok());
  BigInt z_inv2 = BigInt::ModMul(*z_inv, *z_inv, p);
  EcPoint out;
  out.x = BigInt::ModMul(pt.x, z_inv2, p);
  out.y = BigInt::ModMul(pt.y, BigInt::ModMul(z_inv2, *z_inv, p), p);
  out.infinity = false;
  return out;
}

}  // namespace

EcPoint EcScalarMul(const BigInt& k, const EcPoint& pt, const BigInt& p) {
  if (k.IsZero() || pt.infinity) {
    return EcPoint::Infinity();
  }
  JacPoint result{BigInt::Zero(), BigInt::One(), BigInt::Zero()};
  int bits = k.BitLength();
  for (int i = bits - 1; i >= 0; --i) {
    result = JacDouble(result, p);
    if (k.Bit(i)) {
      result = JacAddAffine(result, pt, p);
    }
  }
  return JacToAffine(result, p);
}

EcPoint HashToPoint(std::string_view id, const PairingParams& params) {
  const BigInt& p = params.p;
  for (uint32_t counter = 0;; ++counter) {
    // x = H("kp-ibe-h1" || counter || id) expanded to field width, mod p.
    Bytes seed;
    Append(seed, "kp-ibe-h1");
    AppendU32Be(seed, counter);
    Append(seed, id);
    Bytes wide;
    // Expand to FieldBytes()+8 bytes via counter-mode hashing so the value
    // is statistically uniform mod p.
    uint32_t block = 0;
    while (wide.size() < params.FieldBytes() + 8) {
      Bytes in = seed;
      AppendU32Be(in, block++);
      Sha256::Digest d = Sha256::Hash(in);
      wide.insert(wide.end(), d.begin(), d.end());
    }
    BigInt x = BigInt::Mod(BigInt::FromBytesBe(wide), p);
    BigInt rhs = CurveRhs(x, p);
    if (rhs.IsZero() || !IsQuadraticResidue(rhs, p)) {
      continue;
    }
    BigInt y = SqrtMod(rhs, p);
    // Use the hash to pick the sign of y deterministically.
    if ((wide.back() & 1) != 0) {
      y = BigInt::ModSub(BigInt::Zero(), y, p);
    }
    EcPoint candidate{x, y, false};
    EcPoint q = EcScalarMul(params.cofactor, candidate, p);
    if (q.infinity) {
      continue;
    }
    return q;
  }
}

Result<PairingParams> GeneratePairingParams(SecureRandom& rng, int p_bits,
                                            int q_bits) {
  if (p_bits < q_bits + 8 || q_bits < 32) {
    return InvalidArgumentError("pairing params: bad bit sizes");
  }
  // Find prime q.
  BigInt q;
  while (true) {
    q = BigInt::RandomBits(rng, q_bits);
    if (!q.IsOdd()) {
      q = BigInt::Add(q, BigInt::One());
    }
    if (BigInt::IsProbablePrime(q, rng, 24)) {
      break;
    }
  }

  // Find c such that p = 12*q*c - 1 is prime with the requested bit length.
  BigInt twelve_q = BigInt::Mul(BigInt::FromU64(12), q);
  int c_bits = p_bits - twelve_q.BitLength() + 1;
  if (c_bits < 1) {
    return InvalidArgumentError("pairing params: q too large for p");
  }
  BigInt p, cofactor;
  while (true) {
    BigInt c = BigInt::RandomBits(rng, c_bits);
    p = BigInt::Sub(BigInt::Mul(twelve_q, c), BigInt::One());
    if (p.BitLength() != p_bits) {
      continue;
    }
    if (!BigInt::IsProbablePrime(p, rng, 4)) {
      continue;
    }
    if (!BigInt::IsProbablePrime(p, rng, 24)) {
      continue;
    }
    cofactor = BigInt::Mul(BigInt::FromU64(12), c);
    break;
  }
  // p = 12qc - 1 ≡ 3 (mod 4) by construction.
  assert(p.Bit(0) && p.Bit(1));

  PairingParams params;
  params.p = p;
  params.q = q;
  params.cofactor = cofactor;
  // Derive a generator deterministically from the parameters.
  params.g = HashToPoint("keypad-pairing-generator", params);
  // Sanity: generator must have exact order q.
  if (!EcScalarMul(q, params.g, p).infinity) {
    return InternalError("pairing params: generator order check failed");
  }
  return params;
}

namespace {
const PairingParams* NewParamsOrDie(uint64_t seed, int p_bits, int q_bits) {
  SecureRandom rng(seed);
  auto params = GeneratePairingParams(rng, p_bits, q_bits);
  if (!params.ok()) {
    KP_LOG(kError) << "pairing parameter generation failed: "
                   << params.status();
    abort();
  }
  return new PairingParams(std::move(*params));
}
}  // namespace

const PairingParams& DefaultPairingParams() {
  static const PairingParams* params =
      NewParamsOrDie(/*seed=*/0x4B455950414431ull, /*p_bits=*/512,
                     /*q_bits=*/160);
  return *params;
}

const PairingParams& TestPairingParams() {
  static const PairingParams* params =
      NewParamsOrDie(/*seed=*/0x4B455950414432ull, /*p_bits=*/256,
                     /*q_bits=*/150);
  return *params;
}

const PairingParams& BenchPairingParams() {
  static const PairingParams* params =
      NewParamsOrDie(/*seed=*/0x4B455950414433ull, /*p_bits=*/192,
                     /*q_bits=*/96);
  return *params;
}

Bytes SerializePoint(const EcPoint& pt, const PairingParams& params) {
  Bytes out;
  if (pt.infinity) {
    out.push_back(0);
    out.resize(1 + 2 * params.FieldBytes(), 0);
    return out;
  }
  out.push_back(1);
  Bytes x = pt.x.ToBytesBe(params.FieldBytes());
  Bytes y = pt.y.ToBytesBe(params.FieldBytes());
  Append(out, x);
  Append(out, y);
  return out;
}

Result<EcPoint> DeserializePoint(const Bytes& data,
                                 const PairingParams& params) {
  size_t fb = params.FieldBytes();
  if (data.size() != 1 + 2 * fb) {
    return InvalidArgumentError("point: bad length");
  }
  if (data[0] == 0) {
    return EcPoint::Infinity();
  }
  if (data[0] != 1) {
    return InvalidArgumentError("point: bad marker");
  }
  EcPoint pt;
  pt.x = BigInt::FromBytesBe(Bytes(data.begin() + 1, data.begin() + 1 + fb));
  pt.y = BigInt::FromBytesBe(Bytes(data.begin() + 1 + fb, data.end()));
  pt.infinity = false;
  if (pt.x >= params.p || pt.y >= params.p || !IsOnCurve(pt, params)) {
    return InvalidArgumentError("point: not on curve");
  }
  return pt;
}

}  // namespace keypad
