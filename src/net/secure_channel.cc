#include "src/net/secure_channel.h"

#include "src/cryptocore/aes.h"
#include "src/cryptocore/hmac.h"

namespace keypad {

namespace {
constexpr size_t kNonceLen = 16;
constexpr size_t kMacLen = 32;
}  // namespace

SecureChannel::EpochCipher& SecureChannel::CipherFor(uint64_t epoch,
                                                     const Bytes& epoch_key) {
  EpochCipher& slot = cipher_slots_[epoch % 2];
  if (slot.epoch != epoch || !slot.aes.has_value()) {
    Bytes okm = Hkdf(epoch_key, /*salt=*/{}, "kp-chan-msg", 64);
    Bytes enc(okm.begin(), okm.begin() + 32);
    Bytes mac(okm.begin() + 32, okm.end());
    slot.epoch = epoch;
    slot.aes.emplace(*Aes256::Create(enc));
    slot.mac.emplace(mac);
    SecureZero(okm);
    SecureZero(enc);
    SecureZero(mac);
  }
  return slot;
}

SecureChannel::SecureChannel(Bytes root_key, SimDuration rotation_period)
    : rotation_period_(rotation_period) {
  current_key_ = Hkdf(root_key, /*salt=*/{}, "kp-chan-epoch0", 32);
  SecureZero(root_key);
}

uint64_t SecureChannel::EpochOf(SimTime now) const {
  return static_cast<uint64_t>(now.nanos() / rotation_period_.nanos());
}

void SecureChannel::AdvanceTo(uint64_t epoch) {
  while (current_epoch_ < epoch) {
    Bytes next = HmacSha256(current_key_, "kp-chan-ratchet");
    SecureZero(previous_key_);
    previous_key_ = std::move(current_key_);
    current_key_ = std::move(next);
    ++current_epoch_;
  }
}

Bytes SecureChannel::Seal(SimTime now, const Bytes& plaintext,
                          SecureRandom& rng) {
  AdvanceTo(EpochOf(now));
  EpochCipher& cipher = CipherFor(current_epoch_, current_key_);

  Bytes out;
  AppendU64Be(out, current_epoch_);
  Bytes nonce = rng.NextBytes(kNonceLen);
  Append(out, nonce);
  Bytes ct = cipher.aes->CtrXor(nonce, 0, plaintext);
  Append(out, ct);
  Bytes mac = cipher.mac->Sign(out);
  Append(out, mac);
  return out;
}

Result<Bytes> SecureChannel::Open(SimTime now, const Bytes& sealed) {
  if (sealed.size() < 8 + kNonceLen + kMacLen) {
    return DataLossError("secure channel: message too short");
  }
  AdvanceTo(EpochOf(now));
  uint64_t epoch = ReadU64Be(sealed.data());

  const Bytes* key = nullptr;
  if (epoch == current_epoch_) {
    key = &current_key_;
  } else if (epoch + 1 == current_epoch_ && !previous_key_.empty()) {
    key = &previous_key_;
  } else {
    return PermissionDeniedError("secure channel: stale or future epoch");
  }
  EpochCipher& cipher = CipherFor(epoch, *key);

  size_t body_len = sealed.size() - kMacLen;
  Bytes body(sealed.begin(), sealed.begin() + static_cast<long>(body_len));
  Bytes mac(sealed.begin() + static_cast<long>(body_len), sealed.end());
  if (!cipher.mac->Verify(body, mac)) {
    return DataLossError("secure channel: MAC mismatch");
  }
  Bytes nonce(body.begin() + 8, body.begin() + 8 + kNonceLen);
  Bytes ct(body.begin() + 8 + kNonceLen, body.end());
  return cipher.aes->CtrXor(nonce, 0, ct);
}

Bytes SecureChannel::CurrentEpochKeyForTesting(SimTime now) {
  AdvanceTo(EpochOf(now));
  return current_key_;
}

}  // namespace keypad
