// Simulated network link: delivers byte payloads after the profile's
// one-way latency on the shared event queue, with failure injection.
//
// A NetworkLink is directional-agnostic: both directions share the same
// conditions object, like a real physical path. Failure modes:
//  * disconnected: payloads are silently dropped (the caller's RPC timeout
//    fires) — models a USB stick pulled out, airplane mode, a thief
//    severing network traffic;
//  * drop_probability: per-message random loss;
//  * scheduled outages: tests and benches flip `set_disconnected` from
//    events on the queue.
//
// The link also keeps byte/message counters, which the bandwidth bench
// (§5: "average Keypad bandwidth was under 5 kb/s") reads.

#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/net/profile.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"

namespace keypad {

class NetworkLink {
 public:
  NetworkLink(EventQueue* queue, NetworkProfile profile, uint64_t drop_seed = 0)
      : queue_(queue), profile_(std::move(profile)), drop_rng_(drop_seed) {}

  const NetworkProfile& profile() const { return profile_; }
  void set_profile(NetworkProfile profile) { profile_ = std::move(profile); }

  bool disconnected() const { return disconnected_; }
  void set_disconnected(bool disconnected) { disconnected_ = disconnected; }

  double drop_probability() const { return drop_probability_; }
  void set_drop_probability(double p) { drop_probability_ = p; }

  // Sends `payload_bytes` of data; calls `deliver` after one-way latency
  // unless the link is down or the message is dropped. Returns true if the
  // message was actually put on the wire (counters updated either way a
  // send was attempted).
  bool Send(size_t payload_bytes, std::function<void()> deliver);

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  void ResetCounters();

  EventQueue* queue() const { return queue_; }

 private:
  EventQueue* queue_;
  NetworkProfile profile_;
  SimRandom drop_rng_;
  bool disconnected_ = false;
  double drop_probability_ = 0;

  uint64_t bytes_sent_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
};

}  // namespace keypad

#endif  // SRC_NET_LINK_H_
