// Simulated network link: delivers byte payloads after the profile's
// one-way latency on the shared event queue, with failure injection.
//
// A NetworkLink carries both directions of a client↔server path, like a
// real physical link, but each Send names its Direction so asymmetric
// faults can be modeled. Failure modes:
//  * disconnected: the local interface is down (USB stick pulled, airplane
//    mode). Send() returns false immediately — the sender *knows* the
//    message never left, so callers can fail fast instead of waiting out
//    an RPC timeout;
//  * probabilistic loss (i.i.d. or Gilbert–Elliott bursts): the message is
//    put on the wire and vanishes in flight. Send() returns true — loss is
//    not locally observable, only a missing reply is;
//  * one-way partitions: all traffic in one direction silently blackholed
//    (asymmetric routing failure). Also not locally observable;
//  * chaos shaping: per-message latency jitter, duplication, reordering —
//    see LinkChaosOptions;
//  * scheduled outages: ScheduleOutage() flips `disconnected` from events
//    on the queue, for deterministic outage windows in tests and benches.
//
// All randomness is drawn from a seeded SimRandom, so a given seed yields
// an identical fault schedule on every run.
//
// The link also keeps byte/message counters, which the bandwidth bench
// (§5: "average Keypad bandwidth was under 5 kb/s") reads.

#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/net/profile.h"
#include "src/sim/event_queue.h"
#include "src/sim/random.h"

namespace keypad {

// Deterministic fault-shaping knobs beyond plain loss. All probabilities
// are per message.
struct LinkChaosOptions {
  // Extra one-way delay, uniform in [0, latency_jitter_frac * OneWay()].
  double latency_jitter_frac = 0;

  // Deliver a second copy of the message, duplicate_lag after the first
  // (models retransmitting middleboxes / multipath).
  double duplicate_probability = 0;
  SimDuration duplicate_lag = SimDuration::Millis(5);

  // Delay this message by an extra uniform [0, reorder_extra_max] so later
  // messages can overtake it in the time-ordered queue.
  double reorder_probability = 0;
  SimDuration reorder_extra_max = SimDuration::Millis(50);

  // Gilbert–Elliott two-state burst-loss channel. When enabled it replaces
  // the i.i.d. drop_probability: each message first advances the
  // good/bad Markov state, then is lost with that state's loss rate.
  bool burst_loss = false;
  double p_enter_bad = 0.005;  // good -> bad transition per message.
  double p_exit_bad = 0.10;    // bad -> good transition per message.
  double loss_good = 0.0;
  double loss_bad = 0.6;
};

class NetworkLink {
 public:
  // Who is sending. Requests travel kForward (client -> server), responses
  // kReverse. Asymmetric partitions key off this.
  enum class Direction { kForward = 0, kReverse = 1 };

  NetworkLink(EventQueue* queue, NetworkProfile profile, uint64_t drop_seed = 0)
      : queue_(queue), profile_(std::move(profile)), drop_rng_(drop_seed) {}

  const NetworkProfile& profile() const { return profile_; }
  void set_profile(NetworkProfile profile) { profile_ = std::move(profile); }

  bool disconnected() const { return disconnected_; }
  void set_disconnected(bool disconnected) { disconnected_ = disconnected; }

  double drop_probability() const { return drop_probability_; }
  void set_drop_probability(double p) { drop_probability_ = p; }

  const LinkChaosOptions& chaos() const { return chaos_; }
  void set_chaos(LinkChaosOptions chaos) { chaos_ = chaos; }

  // Silently blackholes all traffic in `dir` (asymmetric partition). Unlike
  // `disconnected`, the sender cannot tell: Send still returns true.
  void set_partitioned(Direction dir, bool partitioned) {
    partitioned_[static_cast<int>(dir)] = partitioned;
  }
  bool partitioned(Direction dir) const {
    return partitioned_[static_cast<int>(dir)];
  }

  // Schedules a known-outage window [at, at + duration): the link flips to
  // disconnected and back via events on the queue.
  void ScheduleOutage(SimTime at, SimDuration duration);

  // Sends `payload_bytes` of data in `dir`; calls `deliver` after one-way
  // latency (plus any chaos shaping) unless the message is lost. Returns
  // false only for *locally observable* failure (link disconnected); wire
  // loss, partitions, and burst loss return true.
  bool Send(size_t payload_bytes, Direction dir, std::function<void()> deliver);
  bool Send(size_t payload_bytes, std::function<void()> deliver) {
    return Send(payload_bytes, Direction::kForward, std::move(deliver));
  }

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t messages_duplicated() const { return messages_duplicated_; }
  void ResetCounters();

  EventQueue* queue() const { return queue_; }

 private:
  // Advances the Gilbert–Elliott chain one step and returns whether the
  // current message is lost (or applies i.i.d. drop_probability when burst
  // loss is off).
  bool LoseInFlight();

  EventQueue* queue_;
  NetworkProfile profile_;
  SimRandom drop_rng_;
  bool disconnected_ = false;
  double drop_probability_ = 0;
  LinkChaosOptions chaos_;
  bool partitioned_[2] = {false, false};
  bool ge_bad_ = false;  // Gilbert–Elliott channel state.

  uint64_t bytes_sent_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t messages_duplicated_ = 0;
};

}  // namespace keypad

#endif  // SRC_NET_LINK_H_
