#include "src/net/profile.h"

#include <sstream>

namespace keypad {

std::vector<NetworkProfile> AllEvaluationProfiles() {
  return {LanProfile(), WlanProfile(), BroadbandProfile(), DslProfile(),
          CellularProfile()};
}

NetworkProfile CustomRttProfile(SimDuration rtt) {
  std::ostringstream name;
  name << "RTT=" << rtt.millis_f() << "ms";
  return {name.str(), rtt};
}

}  // namespace keypad
