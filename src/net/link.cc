#include "src/net/link.h"

namespace keypad {

bool NetworkLink::Send(size_t payload_bytes, std::function<void()> deliver) {
  if (disconnected_) {
    ++messages_dropped_;
    return false;
  }
  if (drop_probability_ > 0 && drop_rng_.Bernoulli(drop_probability_)) {
    ++messages_dropped_;
    return false;
  }
  ++messages_sent_;
  bytes_sent_ += payload_bytes;
  queue_->ScheduleAfter(profile_.OneWay(), std::move(deliver));
  return true;
}

void NetworkLink::ResetCounters() {
  bytes_sent_ = 0;
  messages_sent_ = 0;
  messages_dropped_ = 0;
}

}  // namespace keypad
