#include "src/net/link.h"

namespace keypad {

bool NetworkLink::LoseInFlight() {
  if (chaos_.burst_loss) {
    // Advance the two-state Markov chain, then roll against the current
    // state's loss rate — classic Gilbert–Elliott.
    if (ge_bad_) {
      if (drop_rng_.Bernoulli(chaos_.p_exit_bad)) {
        ge_bad_ = false;
      }
    } else if (drop_rng_.Bernoulli(chaos_.p_enter_bad)) {
      ge_bad_ = true;
    }
    double p = ge_bad_ ? chaos_.loss_bad : chaos_.loss_good;
    return p > 0 && drop_rng_.Bernoulli(p);
  }
  return drop_probability_ > 0 && drop_rng_.Bernoulli(drop_probability_);
}

bool NetworkLink::Send(size_t payload_bytes, Direction dir,
                       std::function<void()> deliver) {
  if (disconnected_) {
    // The only *locally observable* failure: the interface is down, the
    // message never left. Callers should fail fast on `false`.
    ++messages_dropped_;
    return false;
  }
  if (partitioned_[static_cast<int>(dir)]) {
    // Blackholed in flight — the sender cannot tell.
    ++messages_dropped_;
    return true;
  }
  if (LoseInFlight()) {
    ++messages_dropped_;
    return true;
  }
  ++messages_sent_;
  bytes_sent_ += payload_bytes;

  SimDuration delay = profile_.OneWay();
  if (chaos_.latency_jitter_frac > 0) {
    delay = delay + SimDuration(static_cast<int64_t>(
                        static_cast<double>(delay.nanos()) *
                        chaos_.latency_jitter_frac * drop_rng_.UniformDouble()));
  }
  if (chaos_.reorder_probability > 0 &&
      drop_rng_.Bernoulli(chaos_.reorder_probability)) {
    delay = delay + SimDuration(static_cast<int64_t>(
                        drop_rng_.UniformU64(static_cast<uint64_t>(
                            chaos_.reorder_extra_max.nanos() + 1))));
  }
  if (chaos_.duplicate_probability > 0 &&
      drop_rng_.Bernoulli(chaos_.duplicate_probability)) {
    ++messages_duplicated_;
    queue_->ScheduleAfter(delay + chaos_.duplicate_lag, deliver);
  }
  queue_->ScheduleAfter(delay, std::move(deliver));
  return true;
}

void NetworkLink::ScheduleOutage(SimTime at, SimDuration duration) {
  queue_->Schedule(at, [this] { set_disconnected(true); });
  queue_->Schedule(at + duration, [this] { set_disconnected(false); });
}

void NetworkLink::ResetCounters() {
  bytes_sent_ = 0;
  messages_sent_ = 0;
  messages_dropped_ = 0;
  messages_duplicated_ = 0;
}

}  // namespace keypad
