// Network profiles used throughout the evaluation. RTTs match the paper's
// emulated settings (§5): LAN 0.1 ms, WLAN 2 ms, broadband 25 ms, DSL
// 125 ms, 3G cellular 300 ms; plus Bluetooth for the paired-device link
// (§3.5: "similar to broadband" latency).
//
// Bandwidth is not modeled, matching the paper ("we did not emulate
// different bandwidth constraints; Keypad's bandwidth requirements are very
// low").

#ifndef SRC_NET_PROFILE_H_
#define SRC_NET_PROFILE_H_

#include <string>
#include <vector>

#include "src/sim/time.h"

namespace keypad {

struct NetworkProfile {
  std::string name;
  SimDuration rtt;

  SimDuration OneWay() const { return SimDuration(rtt.nanos() / 2); }
};

inline NetworkProfile LanProfile() {
  return {"LAN", SimDuration::FromMillisF(0.1)};
}
inline NetworkProfile WlanProfile() {
  return {"WLAN", SimDuration::Millis(2)};
}
inline NetworkProfile BroadbandProfile() {
  return {"Broadband", SimDuration::Millis(25)};
}
inline NetworkProfile DslProfile() {
  return {"DSL", SimDuration::Millis(125)};
}
inline NetworkProfile CellularProfile() {
  return {"3G", SimDuration::Millis(300)};
}
inline NetworkProfile BluetoothProfile() {
  return {"Bluetooth", SimDuration::Millis(20)};
}

// The five profiles of Table 1, in the paper's column order.
std::vector<NetworkProfile> AllEvaluationProfiles();

// Profile with an arbitrary RTT (for RTT-sweep figures 8 and 10).
NetworkProfile CustomRttProfile(SimDuration rtt);

}  // namespace keypad

#endif  // SRC_NET_PROFILE_H_
