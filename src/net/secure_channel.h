// Authenticated encryption for client↔service traffic with time-based key
// rotation (paper §6): "communications between the Keypad file system and
// the servers should be encrypted ... keys must change every Texp seconds
// to ensure that an attacker who extracts the current network encryption
// key from the device cannot decrypt past intercepted data."
//
// Implementation: a one-way hash ratchet. Epoch e covers virtual time
// [e·T, (e+1)·T). The epoch key is k_e = HMAC(k_{e-1}, "kp-chan-ratchet");
// advancing erases prior keys, so extracting the device's current key
// reveals nothing about past epochs (one-wayness of HMAC). Messages are
// sealed with AES-256-CTR + HMAC-SHA256 (encrypt-then-MAC) under keys
// derived from the epoch key. Both ends construct the same ratchet from the
// shared channel root established at device registration.
//
// Replay posture: the channel keeps no per-message state, so a recorded
// sealed frame opens again within the current-or-previous epoch window —
// replay is *epoch-bounded* here, not prevented. Preventing a replayed
// request from re-executing (and double-writing audit rows) is the RPC
// layer's job: the at-most-once dedup frame travels inside the sealed
// payload (see ReplyCache and DESIGN.md §7).

#ifndef SRC_NET_SECURE_CHANNEL_H_
#define SRC_NET_SECURE_CHANNEL_H_

#include <cstdint>
#include <optional>

#include "src/cryptocore/aes.h"
#include "src/cryptocore/hmac.h"
#include "src/cryptocore/secure_random.h"
#include "src/sim/time.h"
#include "src/util/result.h"
#include "src/wire/codec.h"

namespace keypad {

class SecureChannel {
 public:
  // `root_key` is the shared secret; `rotation_period` is Texp.
  SecureChannel(Bytes root_key, SimDuration rotation_period);

  // Seals plaintext for the epoch containing `now`.
  // Format: epoch u64 || nonce 16 || ct || mac 32.
  Bytes Seal(SimTime now, const Bytes& plaintext, SecureRandom& rng);

  // Opens a sealed message. Accepts the current epoch and, to absorb
  // rotation races in flight, one epoch back (the previous key is retained
  // for exactly one period). Fails with kPermissionDenied for older epochs
  // and kDataLoss for MAC/framing failures.
  Result<Bytes> Open(SimTime now, const Bytes& sealed);

  // The epoch index for `now`.
  uint64_t EpochOf(SimTime now) const;

  // Exposes the current epoch key — used by tests that model an attacker
  // extracting key material from a stolen warm device.
  Bytes CurrentEpochKeyForTesting(SimTime now);

  // Wire framing negotiated alongside the channel (DESIGN.md §11). The
  // registration handshake that establishes the channel root also carries
  // the peers' codec capability, so a client that enables security adopts
  // the channel's preference instead of probing. Defaults to XML-RPC — the
  // paper-compatible framing — until a handshake says otherwise.
  WireCodec preferred_codec() const { return preferred_codec_; }
  void set_preferred_codec(WireCodec codec) { preferred_codec_ = codec; }

 private:
  // Per-epoch message ciphers. HKDF expansion, the AES key schedule, and
  // the HMAC pad absorption only depend on the epoch key, so they are built
  // once per epoch instead of once per message (every RPC frame crosses
  // this path). Two slots (epoch % 2) cover the current epoch plus the
  // one-back window Open() accepts.
  struct EpochCipher {
    uint64_t epoch = ~uint64_t{0};
    std::optional<Aes256> aes;
    std::optional<Hmac> mac;
  };

  // Ratchets forward (erasing old keys) so current_key_ matches `epoch`.
  void AdvanceTo(uint64_t epoch);

  // Returns the (cached) cipher state for `epoch` whose key is `epoch_key`.
  EpochCipher& CipherFor(uint64_t epoch, const Bytes& epoch_key);

  SimDuration rotation_period_;
  WireCodec preferred_codec_ = WireCodec::kXml;
  uint64_t current_epoch_ = 0;
  Bytes current_key_;
  Bytes previous_key_;  // Key for current_epoch_ - 1; empty at epoch 0.
  EpochCipher cipher_slots_[2];
};

}  // namespace keypad

#endif  // SRC_NET_SECURE_CHANNEL_H_
