// Byte-buffer helpers shared across the codebase.

#ifndef SRC_UTIL_BYTES_H_
#define SRC_UTIL_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/result.h"

namespace keypad {

using Bytes = std::vector<uint8_t>;

// Lowercase hex encoding of `data`.
std::string ToHex(const Bytes& data);
std::string ToHex(const uint8_t* data, size_t len);

// Parses lowercase/uppercase hex. Fails on odd length or non-hex characters.
Result<Bytes> FromHex(std::string_view hex);

// Byte-wise conversions between strings and Bytes (no encoding applied).
Bytes BytesOf(std::string_view s);
std::string StringOf(const Bytes& b);

// Appends `src` to `dst`.
void Append(Bytes& dst, const Bytes& src);
void Append(Bytes& dst, std::string_view src);

// Fixed-width big-endian integer append/read used by wire formats and hashes.
void AppendU32Be(Bytes& dst, uint32_t v);
void AppendU64Be(Bytes& dst, uint64_t v);
uint32_t ReadU32Be(const uint8_t* p);
uint64_t ReadU64Be(const uint8_t* p);

// Returns a Bytes of size `len` whose contents are NOT zero-initialized.
// For output buffers that are about to be fully overwritten (keystream XOR,
// digest fill) the value-initializing Bytes(len) constructor memsets bytes
// that are immediately rewritten; this skips that pass where the standard
// library's layout permits and degrades to Bytes(len) everywhere else
// (including sanitizer builds). Callers MUST write every byte before
// reading any.
Bytes UninitializedBytes(size_t len);

// Overwrites the buffer with zeros. Used for secure erase of key material;
// routed through a volatile pointer so the compiler cannot elide it.
void SecureZero(Bytes& data);
void SecureZero(uint8_t* data, size_t len);

}  // namespace keypad

#endif  // SRC_UTIL_BYTES_H_
