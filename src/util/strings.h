// String and path helpers. Paths in Keypad are Unix-style, always absolute
// within a volume ("/dir/file"), with "/" as the volume root.

#ifndef SRC_UTIL_STRINGS_H_
#define SRC_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace keypad {

// Splits on a single-character delimiter. Adjacent delimiters yield empty
// pieces; "a,,b" -> {"a", "", "b"}.
std::vector<std::string> StrSplit(std::string_view text, char delim);

// Joins pieces with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Path helpers. All operate on normalized absolute paths.
//   PathJoin("/a", "b")   == "/a/b"
//   PathDirname("/a/b")   == "/a"      PathDirname("/a") == "/"
//   PathBasename("/a/b")  == "b"       PathBasename("/") == ""
//   PathComponents("/a/b") == {"a", "b"}
std::string PathJoin(std::string_view dir, std::string_view name);
std::string PathDirname(std::string_view path);
std::string PathBasename(std::string_view path);
std::vector<std::string> PathComponents(std::string_view path);

// True if `path` is "/" or is a syntactically valid absolute path: starts
// with '/', no empty, "." or ".." components, no trailing slash.
bool IsValidPath(std::string_view path);

// True if `path` equals `ancestor` or lies beneath it.
bool PathIsWithin(std::string_view path, std::string_view ancestor);

}  // namespace keypad

#endif  // SRC_UTIL_STRINGS_H_
