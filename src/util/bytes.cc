#include "src/util/bytes.h"

namespace keypad {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string ToHex(const uint8_t* data, size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xF]);
  }
  return out;
}

std::string ToHex(const Bytes& data) { return ToHex(data.data(), data.size()); }

Result<Bytes> FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return InvalidArgumentError("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgumentError("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes BytesOf(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string StringOf(const Bytes& b) { return std::string(b.begin(), b.end()); }

void Append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void Append(Bytes& dst, std::string_view src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void AppendU32Be(Bytes& dst, uint32_t v) {
  dst.push_back(static_cast<uint8_t>(v >> 24));
  dst.push_back(static_cast<uint8_t>(v >> 16));
  dst.push_back(static_cast<uint8_t>(v >> 8));
  dst.push_back(static_cast<uint8_t>(v));
}

void AppendU64Be(Bytes& dst, uint64_t v) {
  AppendU32Be(dst, static_cast<uint32_t>(v >> 32));
  AppendU32Be(dst, static_cast<uint32_t>(v));
}

uint32_t ReadU32Be(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint64_t ReadU64Be(const uint8_t* p) {
  return (static_cast<uint64_t>(ReadU32Be(p)) << 32) | ReadU32Be(p + 4);
}

// Uninitialized growth is only attempted on libstdc++ with ASan container
// annotations off; the annotated vector tracks its own bounds and a raw
// size bump would trip it.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define KEYPAD_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define KEYPAD_ASAN 1
#endif

Bytes UninitializedBytes(size_t len) {
#if defined(__GLIBCXX__) && !defined(_GLIBCXX_SANITIZE_VECTOR) && \
    !defined(KEYPAD_ASAN)
  // libstdc++'s std::vector is ABI-stable as three pointers
  // (start, finish, end_of_storage); bumping `finish` after reserve() sets
  // the size without the value-initialization pass resize() would do. The
  // layout is verified against the public API at runtime and the slow path
  // taken on any mismatch, so a libstdc++ that ever changes shape degrades
  // to correct-but-slower rather than corrupting memory.
  struct VecRep {
    uint8_t* start;
    uint8_t* finish;
    uint8_t* end_of_storage;
  };
  static_assert(sizeof(Bytes) == sizeof(VecRep));
  Bytes out;
  out.reserve(len);
  auto* rep = reinterpret_cast<VecRep*>(&out);
  if (rep->start == out.data() && rep->finish == out.data() &&
      rep->end_of_storage == out.data() + out.capacity()) {
    rep->finish = rep->start + len;
    return out;
  }
#endif
  return Bytes(len);
}

void SecureZero(uint8_t* data, size_t len) {
  volatile uint8_t* p = data;
  for (size_t i = 0; i < len; ++i) {
    p[i] = 0;
  }
}

void SecureZero(Bytes& data) { SecureZero(data.data(), data.size()); }

}  // namespace keypad
