// Status: lightweight error type used across the Keypad codebase.
//
// The library does not use exceptions. Fallible operations return Status (or
// Result<T>, see result.h). Status carries a coarse machine-readable code and
// a human-readable message. StatusCode values intentionally mirror the small
// set of failure classes that matter to the Keypad system: network failures
// (unavailable), revoked/denied keys (permission_denied), missing files
// (not_found), and so on.

#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace keypad {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,   // Revoked device/key, bad credentials.
  kUnavailable,        // Network down, service unreachable, timeout.
  kFailedPrecondition, // Operation not valid in the current state.
  kDataLoss,           // Corrupt header, MAC failure, broken log chain.
  kResourceExhausted,
  kUnimplemented,
  kInternal,
};

// Human-readable name of a status code ("NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such file".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience constructors, e.g. NotFoundError("no such file").
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status PermissionDeniedError(std::string message);
Status UnavailableError(std::string message);
Status FailedPreconditionError(std::string message);
Status DataLossError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);

// Propagates a non-OK Status to the caller.
#define KP_RETURN_IF_ERROR(expr)             \
  do {                                       \
    ::keypad::Status kp_status_ = (expr);    \
    if (!kp_status_.ok()) return kp_status_; \
  } while (0)

}  // namespace keypad

#endif  // SRC_UTIL_STATUS_H_
