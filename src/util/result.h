// Result<T>: the value-or-Status return type used by all fallible functions
// that produce a value. Modeled after absl::StatusOr.

#ifndef SRC_UTIL_RESULT_H_
#define SRC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace keypad {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit conversions mirror absl::StatusOr so call sites can simply
  // `return value;` or `return SomeError(...);`.
  Result(const T& value) : value_(value) {}                     // NOLINT
  Result(T&& value) : value_(std::move(value)) {}               // NOLINT
  Result(Status status) : status_(std::move(status)) {          // NOLINT
    assert(!status_.ok() && "OK Status requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Value accessors. Calling these on a non-OK Result is a programming error.
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  // Returns the value or `fallback` if this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates `rexpr` (a Result<T>), propagating its Status on error and
// otherwise assigning the value to `lhs` (which may be a declaration).
#define KP_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  KP_ASSIGN_OR_RETURN_IMPL_(                            \
      KP_RESULT_CONCAT_(kp_result_, __LINE__), lhs, rexpr)

#define KP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define KP_RESULT_CONCAT_INNER_(a, b) a##b
#define KP_RESULT_CONCAT_(a, b) KP_RESULT_CONCAT_INNER_(a, b)

}  // namespace keypad

#endif  // SRC_UTIL_RESULT_H_
