#include "src/util/logging.h"

#include <cstdio>
#include <string>

namespace keypad {

namespace {
LogSeverity g_threshold = LogSeverity::kWarning;

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}
}  // namespace

void SetLogThreshold(LogSeverity severity) { g_threshold = severity; }
LogSeverity GetLogThreshold() { return g_threshold; }

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : enabled_(severity >= g_threshold), severity_(severity) {
  if (enabled_) {
    std::string_view path(file);
    size_t pos = path.rfind('/');
    if (pos != std::string_view::npos) {
      path.remove_prefix(pos + 1);
    }
    stream_ << "[" << SeverityTag(severity_) << " " << path << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace keypad
