// Identifier types shared by the Keypad client and the audit services.
//
// AuditId: the per-file identifier stored in a file's header and used as the
// key-service lookup handle. Per the paper (§4) it is a randomly generated
// 192-bit integer, which makes it infeasible for an attacker to probe the
// services for valid IDs without first obtaining the device.
//
// DirId: the per-directory identifier the metadata service uses to keep
// pathnames current ("directoryID/filename" tuples, §4).

#ifndef SRC_UTIL_IDS_H_
#define SRC_UTIL_IDS_H_

#include <array>
#include <compare>
#include <string>
#include <string_view>

#include "src/cryptocore/secure_random.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace keypad {

template <size_t N>
struct FixedId {
  std::array<uint8_t, N> v{};

  static FixedId Random(SecureRandom& rng) {
    FixedId id;
    rng.Fill(id.v.data(), N);
    return id;
  }

  static Result<FixedId> FromHex(std::string_view hex) {
    KP_ASSIGN_OR_RETURN(Bytes bytes, keypad::FromHex(hex));
    if (bytes.size() != N) {
      return InvalidArgumentError("id: wrong length");
    }
    FixedId id;
    std::copy(bytes.begin(), bytes.end(), id.v.begin());
    return id;
  }

  static Result<FixedId> FromBytes(const Bytes& bytes) {
    if (bytes.size() != N) {
      return InvalidArgumentError("id: wrong length");
    }
    FixedId id;
    std::copy(bytes.begin(), bytes.end(), id.v.begin());
    return id;
  }

  std::string ToHex() const { return keypad::ToHex(v.data(), N); }
  Bytes ToBytes() const { return Bytes(v.begin(), v.end()); }
  bool IsZero() const {
    for (uint8_t b : v) {
      if (b != 0) {
        return false;
      }
    }
    return true;
  }

  auto operator<=>(const FixedId&) const = default;
};

// 192-bit audit ID (paper §4).
using AuditId = FixedId<24>;
// 128-bit directory ID.
using DirId = FixedId<16>;

}  // namespace keypad

#endif  // SRC_UTIL_IDS_H_
