// Minimal stream logger. Usage:
//   KP_LOG(kInfo) << "fetched key " << ToHex(id);
// Severity below the global threshold is compiled to a no-op-ish dead stream.

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string_view>

namespace keypad {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global threshold; messages below it are discarded. Default: kWarning, so
// tests and benches stay quiet unless they opt in.
void SetLogThreshold(LogSeverity severity);
LogSeverity GetLogThreshold();

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogSeverity severity_;
  std::ostringstream stream_;
};

#define KP_LOG(severity)                                             \
  ::keypad::LogMessage(::keypad::LogSeverity::severity, __FILE__, \
                       __LINE__)

}  // namespace keypad

#endif  // SRC_UTIL_LOGGING_H_
