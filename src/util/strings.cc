#include "src/util/strings.h"

namespace keypad {

std::vector<std::string> StrSplit(std::string_view text, char delim) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string PathJoin(std::string_view dir, std::string_view name) {
  std::string out(dir);
  if (out.empty() || out.back() != '/') {
    out += '/';
  }
  out += name;
  return out;
}

std::string PathDirname(std::string_view path) {
  size_t pos = path.rfind('/');
  if (pos == std::string_view::npos || path == "/") {
    return "/";
  }
  if (pos == 0) {
    return "/";
  }
  return std::string(path.substr(0, pos));
}

std::string PathBasename(std::string_view path) {
  if (path == "/") {
    return "";
  }
  size_t pos = path.rfind('/');
  if (pos == std::string_view::npos) {
    return std::string(path);
  }
  return std::string(path.substr(pos + 1));
}

std::vector<std::string> PathComponents(std::string_view path) {
  std::vector<std::string> out;
  if (path.empty() || path == "/") {
    return out;
  }
  if (path.front() == '/') {
    path.remove_prefix(1);
  }
  for (auto& piece : StrSplit(path, '/')) {
    out.push_back(std::move(piece));
  }
  return out;
}

bool IsValidPath(std::string_view path) {
  if (path == "/") {
    return true;
  }
  if (path.empty() || path.front() != '/' || path.back() == '/') {
    return false;
  }
  for (const auto& c : PathComponents(path)) {
    if (c.empty() || c == "." || c == "..") {
      return false;
    }
    if (c.find('/') != std::string::npos) {
      return false;
    }
  }
  return true;
}

bool PathIsWithin(std::string_view path, std::string_view ancestor) {
  if (path == ancestor) {
    return true;
  }
  if (ancestor == "/") {
    return StartsWith(path, "/");
  }
  return StartsWith(path, ancestor) && path.size() > ancestor.size() &&
         path[ancestor.size()] == '/';
}

}  // namespace keypad
