// The metadata service (Figure 2) — the second, independently-operable
// audit service. It keeps file metadata current so that post-theft audit
// logs can be interpreted ("directoryID/filename" tuples, §4), and it acts
// as the IBE private key generator (PKG) for the metadata-locking
// optimization (§3.4): the private key that unlocks an IBE-locked file is
// released only after the pathname binding has been durably logged, which
// forces even a thief to register truthful metadata before reading.
//
// Privacy split: this service learns the namespace structure but never the
// access patterns; the key service sees accesses to opaque IDs but no
// names (§3.1).

#ifndef SRC_METASERVICE_METADATA_SERVICE_H_
#define SRC_METASERVICE_METADATA_SERVICE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/auditlog/log_options.h"
#include "src/auditlog/segment_store.h"
#include "src/blockdev/cloud_store.h"
#include "src/ibe/bf_ibe.h"
#include "src/metaservice/metadata_log.h"
#include "src/rpc/rpc.h"
#include "src/sim/event_queue.h"
#include "src/util/ids.h"
#include "src/util/result.h"

namespace keypad {

// The IBE public-key string for a file binding: "<dir-id>/<name>|<audit-id>".
// Embedding the audit ID binds the path and ID together at the PKG (§4).
std::string IbeIdentityFor(const DirId& dir_id, const std::string& name,
                           const AuditId& audit_id);

// Replication delta (DESIGN.md §10): the hash-chained metadata-log suffix
// a leader streams to its backups before releasing the responses (and the
// IBE unlock keys inside them) held on it, plus the root registrations and
// device-control flips those records describe. A backup applies a delta
// atomically: chain continuity is verified before any state changes.
struct MetaReplDelta {
  std::vector<MetadataRecord> records;
  struct RootChange {
    std::string device_id;
    DirId root_id;
  };
  std::vector<RootChange> root_changes;
  struct DeviceChange {
    std::string device_id;
    bool disabled = false;
  };
  std::vector<DeviceChange> device_changes;

  bool empty() const {
    return records.empty() && root_changes.empty() && device_changes.empty();
  }
  WireValue ToWire() const;
  static Result<MetaReplDelta> FromWire(const WireValue& value);
};

class MetadataService {
 public:
  // `group` selects the pairing parameter set (production or test-sized).
  MetadataService(EventQueue* queue, uint64_t rng_seed,
                  const PairingParams& group);

  // --- Administrative API. -------------------------------------------------
  Bytes RegisterDevice(const std::string& device_id);
  // Registers a device under a secret minted elsewhere — how a replicated
  // deployment gives every replica the same per-device credential.
  void RegisterDeviceWithSecret(const std::string& device_id,
                                const Bytes& secret);
  Result<Bytes> DeviceSecret(const std::string& device_id) const;
  // Remote data control at the PKG: a disabled device receives no IBE
  // unlock keys, so IBE-locked files stay sealed even if the thief is
  // willing to register truthful metadata.
  Status DisableDevice(const std::string& device_id);
  Status EnableDevice(const std::string& device_id);
  bool IsDeviceDisabled(const std::string& device_id) const;

  // IBE public parameters for client-side locking.
  const IbePublicParams& ibe_params() const { return pkg_.public_params(); }

  // --- Client API (also bound over RPC). -----------------------------------

  // Registers the volume root directory (name "", its own parent).
  Status RegisterRoot(const std::string& device_id, const DirId& root_id);
  // Logs a file create/rename binding and returns the IBE private key for
  // the new identity (the "unlock" key).
  Result<Bytes> RegisterFileBinding(const std::string& device_id,
                                    const AuditId& audit_id,
                                    const DirId& dir_id,
                                    const std::string& name, bool is_rename);
  Status RegisterMkdir(const std::string& device_id, const DirId& dir_id,
                       const DirId& parent_id, const std::string& name);
  Status RegisterDirRename(const std::string& device_id, const DirId& dir_id,
                           const DirId& new_parent_id,
                           const std::string& new_name);
  Status RegisterAttr(const std::string& device_id, const AuditId& audit_id,
                      const std::string& attr);

  // Paired-device journal upload: namespace events recorded on the phone
  // while disconnected, appended with original client timestamps. No IBE
  // keys are returned (the binding is already in the past).
  struct JournalRecord {
    MetadataOp op = MetadataOp::kCreateFile;
    AuditId audit_id;
    DirId dir_id;
    DirId parent_dir_id;
    std::string name;
    SimTime client_time;
  };
  Status UploadJournal(const std::string& device_id,
                       const std::vector<JournalRecord>& records);

  // --- Audit API. -----------------------------------------------------------

  const MetadataLog& log() const { return log_; }

  // Reconstructs the full pathname of a file as of `as_of` by walking the
  // directory records. kNotFound if the file has no binding by then.
  Result<std::string> ResolvePath(const std::string& device_id,
                                  const AuditId& audit_id,
                                  SimTime as_of) const;

  std::vector<MetadataRecord> HistoryOf(const std::string& device_id,
                                        const AuditId& audit_id) const {
    return log_.HistoryOf(device_id, audit_id);
  }

  void BindRpc(RpcServer* server);

  // Crash/restart simulation: the snapshot carries devices, roots, and the
  // full metadata log (modelling the service's durable state); Restore
  // verifies the log's hash chain before swapping anything in. The IBE
  // master key is deliberately NOT serialized — the PKG master secret is
  // modelled as HSM-held, surviving a process crash in place.
  Bytes Snapshot() const;
  Status Restore(const Bytes& snapshot);

  // --- Audit-log lifecycle (DESIGN.md §15). -------------------------------

  // Applies segment/truncation/cold-ship options to the metadata log and
  // stands up the cold segment tier if shipping is on. The constructor
  // applies the KEYPAD_LOG_* environment knobs by default; call this to
  // override in-process (before the first append).
  void ConfigureLog(SegmentedLogOptions options);

  // The replication engine's truncation anchor (see KeyService).
  void set_durable_watermark(std::function<uint64_t()> watermark) {
    log_.set_truncate_anchor(std::move(watermark));
  }

  // Cold tier for sealed metadata segments (present iff cold shipping on).
  SegmentStore* segment_store() { return segment_store_.get(); }
  SimObjectStore* cold_cloud() { return cold_cloud_.get(); }

  // --- Replication hooks (DESIGN.md §10). ---------------------------------

  // Wires this service into a replica set as a potential leader. After a
  // mutation's release point the service hands the un-shipped delta to
  // `replicator`, which must call `done` exactly once when every in-sync
  // backup acknowledged it — only then do the held responses (and the IBE
  // unlock keys inside them) leave the service, extending the "durably
  // log, then respond" barrier across the replica set. Installing a
  // replicator switches the mutating RPC surface onto the async
  // held-response path; call before BindRpc.
  using Replicator =
      std::function<void(MetaReplDelta, std::function<void()> done)>;
  void set_replicator(Replicator replicator) {
    replicator_ = std::move(replicator);
    // Block truncation until the replication engine installs its durable
    // watermark: a replicated log must not drop what a peer still needs.
    log_.set_truncate_anchor([] { return uint64_t{0}; });
  }
  bool replicated() const { return replicator_ != nullptr; }

  // Leadership gate for the mutating meta.* RPC surface: when set and
  // returning non-OK (kFailedPrecondition "NOT_LEADER:<i>"), the call is
  // rejected before executing. audit.* methods stay served by any replica.
  void set_serve_gate(std::function<Status()> gate) {
    serve_gate_ = std::move(gate);
  }

  // Backup-side apply: verifies the record suffix continues the local
  // chain (kDataLoss on divergence — the sender marks this backup
  // out-of-sync), then applies the root/device mutations.
  Status ApplyReplicated(const MetaReplDelta& delta);

  // Drains everything logged since the last ship into one delta and
  // advances the shipped watermark.
  MetaReplDelta TakeUnshippedDelta();
  uint64_t shipped_seq() const { return shipped_seq_; }

  // Ships any logged-but-unshipped suffix immediately — the admin path
  // (device disable) and a freshly promoted leader use this; RPC-driven
  // mutations ship from the release-window flush.
  void ReplicateNow(std::function<void()> done = {});

  // Crash semantics: held responses are never sent — the clients' retries
  // take over against whichever replica leads next. Unlike the key tier's
  // group-commit window, metadata records are durable the moment they are
  // appended, so nothing is discarded here. Call before Snapshot-on-crash.
  void AbortPending();

  // Bumps every time Restore() adopts a snapshot. Served alongside
  // audit.meta_log_tail so a remote auditor can tell "the log under my
  // cursor was replaced" from "the log merely grew" (cursor re-sync).
  uint64_t restore_epoch() const { return restore_epoch_; }

 private:
  struct DeviceRecord {
    Bytes secret;
    bool disabled = false;
  };

  Status CheckDevice(const std::string& device_id) const;

  // Opens the response-release window on the first held RPC of this
  // instant and schedules its flush (same-timestamp event, so mutations
  // arriving together ship as one delta).
  void OpenReleaseWindow();
  void FlushReleaseWindow();

  // Records a root/device mutation for the next replication delta (no-op
  // without a replicator).
  void NoteRootChange(const std::string& device_id, const DirId& root_id);
  void NoteDeviceChange(const std::string& device_id, bool disabled);

  EventQueue* queue_;
  SecureRandom rng_;
  IbePkg pkg_;
  std::map<std::string, DeviceRecord> devices_;
  std::map<std::string, DirId> roots_;  // device -> root dir id.
  MetadataLog log_;
  // Cold tier (cold_ship only): sealed segments land in a storage backend,
  // mirrored to a simulated cloud store for bit-rot repair.
  std::unique_ptr<SimObjectStore> cold_cloud_;
  std::unique_ptr<SegmentStore> segment_store_;

  // Replication state (replica sets only).
  Replicator replicator_;
  std::function<Status()> serve_gate_;
  uint64_t shipped_seq_ = 0;  // Log prefix already streamed to backups.
  std::vector<MetaReplDelta::RootChange> pending_root_changes_;
  std::vector<MetaReplDelta::DeviceChange> pending_device_changes_;
  uint64_t restore_epoch_ = 0;

  // Open release-window state (replicated services only).
  struct PendingResponse {
    RpcServer::Responder respond;
    Result<WireValue> result;
  };
  bool window_open_ = false;
  EventQueue::EventId flush_event_ = EventQueue::kInvalidEvent;
  std::vector<PendingResponse> pending_responses_;
};

}  // namespace keypad

#endif  // SRC_METASERVICE_METADATA_SERVICE_H_
