// The metadata service (Figure 2) — the second, independently-operable
// audit service. It keeps file metadata current so that post-theft audit
// logs can be interpreted ("directoryID/filename" tuples, §4), and it acts
// as the IBE private key generator (PKG) for the metadata-locking
// optimization (§3.4): the private key that unlocks an IBE-locked file is
// released only after the pathname binding has been durably logged, which
// forces even a thief to register truthful metadata before reading.
//
// Privacy split: this service learns the namespace structure but never the
// access patterns; the key service sees accesses to opaque IDs but no
// names (§3.1).

#ifndef SRC_METASERVICE_METADATA_SERVICE_H_
#define SRC_METASERVICE_METADATA_SERVICE_H_

#include <map>
#include <string>
#include <vector>

#include "src/ibe/bf_ibe.h"
#include "src/metaservice/metadata_log.h"
#include "src/rpc/rpc.h"
#include "src/sim/event_queue.h"
#include "src/util/ids.h"
#include "src/util/result.h"

namespace keypad {

// The IBE public-key string for a file binding: "<dir-id>/<name>|<audit-id>".
// Embedding the audit ID binds the path and ID together at the PKG (§4).
std::string IbeIdentityFor(const DirId& dir_id, const std::string& name,
                           const AuditId& audit_id);

class MetadataService {
 public:
  // `group` selects the pairing parameter set (production or test-sized).
  MetadataService(EventQueue* queue, uint64_t rng_seed,
                  const PairingParams& group);

  // --- Administrative API. -------------------------------------------------
  Bytes RegisterDevice(const std::string& device_id);
  Result<Bytes> DeviceSecret(const std::string& device_id) const;
  // Remote data control at the PKG: a disabled device receives no IBE
  // unlock keys, so IBE-locked files stay sealed even if the thief is
  // willing to register truthful metadata.
  Status DisableDevice(const std::string& device_id);
  Status EnableDevice(const std::string& device_id);
  bool IsDeviceDisabled(const std::string& device_id) const;

  // IBE public parameters for client-side locking.
  const IbePublicParams& ibe_params() const { return pkg_.public_params(); }

  // --- Client API (also bound over RPC). -----------------------------------

  // Registers the volume root directory (name "", its own parent).
  Status RegisterRoot(const std::string& device_id, const DirId& root_id);
  // Logs a file create/rename binding and returns the IBE private key for
  // the new identity (the "unlock" key).
  Result<Bytes> RegisterFileBinding(const std::string& device_id,
                                    const AuditId& audit_id,
                                    const DirId& dir_id,
                                    const std::string& name, bool is_rename);
  Status RegisterMkdir(const std::string& device_id, const DirId& dir_id,
                       const DirId& parent_id, const std::string& name);
  Status RegisterDirRename(const std::string& device_id, const DirId& dir_id,
                           const DirId& new_parent_id,
                           const std::string& new_name);
  Status RegisterAttr(const std::string& device_id, const AuditId& audit_id,
                      const std::string& attr);

  // Paired-device journal upload: namespace events recorded on the phone
  // while disconnected, appended with original client timestamps. No IBE
  // keys are returned (the binding is already in the past).
  struct JournalRecord {
    MetadataOp op = MetadataOp::kCreateFile;
    AuditId audit_id;
    DirId dir_id;
    DirId parent_dir_id;
    std::string name;
    SimTime client_time;
  };
  Status UploadJournal(const std::string& device_id,
                       const std::vector<JournalRecord>& records);

  // --- Audit API. -----------------------------------------------------------

  const MetadataLog& log() const { return log_; }

  // Reconstructs the full pathname of a file as of `as_of` by walking the
  // directory records. kNotFound if the file has no binding by then.
  Result<std::string> ResolvePath(const std::string& device_id,
                                  const AuditId& audit_id,
                                  SimTime as_of) const;

  std::vector<MetadataRecord> HistoryOf(const std::string& device_id,
                                        const AuditId& audit_id) const {
    return log_.HistoryOf(device_id, audit_id);
  }

  void BindRpc(RpcServer* server);

  // Crash/restart simulation: the snapshot carries devices, roots, and the
  // full metadata log (modelling the service's durable state); Restore
  // verifies the log's hash chain before swapping anything in. The IBE
  // master key is deliberately NOT serialized — the PKG master secret is
  // modelled as HSM-held, surviving a process crash in place.
  Bytes Snapshot() const;
  Status Restore(const Bytes& snapshot);

 private:
  struct DeviceRecord {
    Bytes secret;
    bool disabled = false;
  };

  Status CheckDevice(const std::string& device_id) const;

  EventQueue* queue_;
  SecureRandom rng_;
  IbePkg pkg_;
  std::map<std::string, DeviceRecord> devices_;
  std::map<std::string, DirId> roots_;  // device -> root dir id.
  MetadataLog log_;
};

}  // namespace keypad

#endif  // SRC_METASERVICE_METADATA_SERVICE_H_
