// Replica set for the metadata service: the second tier hosted on the
// generic replication substrate (DESIGN.md §10).
//
// All lease/promotion/ClaimWins/reconciliation logic lives in
// src/replication/replica_set.h; this file only plugs MetadataService into
// the ReplicatedStateMachine seam (MetaReplDelta <-> wire, MetadataRecord
// export) and converts the engine's wire-form orphans back into typed
// metadata records for the ForensicAuditor.

#ifndef SRC_METASERVICE_META_REPLICA_SET_H_
#define SRC_METASERVICE_META_REPLICA_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "src/metaservice/metadata_service.h"
#include "src/replication/replica_set.h"
#include "src/replication/state_machine.h"
#include "src/rpc/rpc.h"
#include "src/sim/event_queue.h"

namespace keypad {

// A replica's hashed-but-divergent metadata record surfaced by
// reconciliation — a namespace event some replica logged that the merged
// history does not carry (duplicated or post-partition, never lost).
struct OrphanedMetaRecord {
  size_t replica = 0;
  MetadataRecord record;
};

class MetaReplicaSet {
 public:
  // Out of line: Machine is incomplete here.
  MetaReplicaSet(EventQueue* queue, ReplicaSetOptions options = {});
  ~MetaReplicaSet();

  MetaReplicaSet(const MetaReplicaSet&) = delete;
  MetaReplicaSet& operator=(const MetaReplicaSet&) = delete;

  // Adds one replica (index = call order; index 0 starts as leader).
  // Installs the service's replicator and serve gate, so call before
  // MetadataService::BindRpc — the replicator forces the async RPC path.
  void AddReplica(MetadataService* service, RpcServer* server);

  void Start() { engine_.Start(); }

  size_t size() const { return engine_.size(); }
  MetadataService* service(size_t i) const { return services_[i]; }
  RpcServer* rpc_server(size_t i) const { return engine_.rpc_server(i); }

  size_t current_leader() const { return engine_.current_leader(); }
  size_t leader_view(size_t i) const { return engine_.leader_view(i); }
  uint64_t epoch(size_t i) const { return engine_.epoch(i); }
  bool is_leader(size_t i) const { return engine_.is_leader(i); }

  // --- Fault injection (Deployment drives these). -------------------------

  void NoteCrashed(size_t i) { engine_.NoteCrashed(i); }
  void NoteRestarted(size_t i) { engine_.NoteRestarted(i); }
  void SetPartitioned(size_t i, bool partitioned) {
    engine_.SetPartitioned(i, partitioned);
  }
  void SchedulePartition(size_t i, SimTime at, SimDuration duration) {
    engine_.SchedulePartition(i, at, duration);
  }

  // --- Admin path (Deployment::ReportDeviceLost). -------------------------

  // Applies on the current leader and ships the resulting log suffix to
  // the backups immediately (no client response is waiting on it).
  Status DisableDevice(const std::string& device_id);
  Status EnableDevice(const std::string& device_id);

  // --- Audit / introspection. ---------------------------------------------

  const std::vector<FailoverEvent>& timeline() const {
    return engine_.timeline();
  }
  // Engine orphans converted back to typed metadata records (cached).
  const std::vector<OrphanedMetaRecord>& orphaned() const;

  using Stats = ReplicaSetEngine::Stats;
  const Stats& stats() const { return engine_.stats(); }

 private:
  class Machine;  // MetadataService -> ReplicatedStateMachine.

  ReplicaSetEngine engine_;
  std::vector<MetadataService*> services_;
  std::vector<std::unique_ptr<Machine>> machines_;
  mutable std::vector<OrphanedMetaRecord> typed_orphans_;
};

}  // namespace keypad

#endif  // SRC_METASERVICE_META_REPLICA_SET_H_
