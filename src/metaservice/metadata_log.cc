#include "src/metaservice/metadata_log.h"

#include "src/cryptocore/sha256.h"

namespace keypad {

std::string_view MetadataOpName(MetadataOp op) {
  switch (op) {
    case MetadataOp::kCreateFile:
      return "create";
    case MetadataOp::kRenameFile:
      return "rename";
    case MetadataOp::kMkdir:
      return "mkdir";
    case MetadataOp::kRenameDir:
      return "renamedir";
    case MetadataOp::kSetAttr:
      return "setattr";
  }
  return "unknown";
}

Bytes MetadataLog::HashRecord(const MetadataRecord& record) {
  Bytes material = record.prev_hash;
  AppendU64Be(material, record.seq);
  AppendU64Be(material, static_cast<uint64_t>(record.timestamp.nanos()));
  AppendU64Be(material, static_cast<uint64_t>(record.client_time.nanos()));
  keypad::Append(material, record.device_id);
  material.push_back(static_cast<uint8_t>(record.op));
  keypad::Append(material, record.audit_id.ToBytes());
  keypad::Append(material, record.dir_id.ToBytes());
  keypad::Append(material, record.parent_dir_id.ToBytes());
  keypad::Append(material, record.name);
  keypad::Append(material, record.attr);
  return Sha256::HashBytes(material);
}

WireValue MetadataRecord::ToWire() const {
  WireValue::Struct s;
  s.emplace("seq", WireValue(static_cast<int64_t>(seq)));
  s.emplace("ts", WireValue(timestamp.nanos()));
  s.emplace("cts", WireValue(client_time.nanos()));
  s.emplace("device", WireValue(device_id));
  s.emplace("op", WireValue(static_cast<int64_t>(op)));
  s.emplace("audit_id", WireValue(audit_id.ToBytes()));
  s.emplace("dir_id", WireValue(dir_id.ToBytes()));
  s.emplace("parent_dir_id", WireValue(parent_dir_id.ToBytes()));
  s.emplace("name", WireValue(name));
  s.emplace("attr", WireValue(attr));
  s.emplace("prev_hash", WireValue(prev_hash));
  s.emplace("hash", WireValue(entry_hash));
  return WireValue(std::move(s));
}

Result<MetadataRecord> MetadataRecord::FromWire(const WireValue& value) {
  MetadataRecord record;
  KP_ASSIGN_OR_RETURN(WireValue seq, value.Field("seq"));
  KP_ASSIGN_OR_RETURN(int64_t seq_int, seq.AsInt());
  record.seq = static_cast<uint64_t>(seq_int);
  KP_ASSIGN_OR_RETURN(WireValue ts, value.Field("ts"));
  KP_ASSIGN_OR_RETURN(int64_t ts_int, ts.AsInt());
  record.timestamp = SimTime(ts_int);
  KP_ASSIGN_OR_RETURN(WireValue cts, value.Field("cts"));
  KP_ASSIGN_OR_RETURN(int64_t cts_int, cts.AsInt());
  record.client_time = SimTime(cts_int);
  KP_ASSIGN_OR_RETURN(WireValue device, value.Field("device"));
  KP_ASSIGN_OR_RETURN(record.device_id, device.AsString());
  KP_ASSIGN_OR_RETURN(WireValue op, value.Field("op"));
  KP_ASSIGN_OR_RETURN(int64_t op_int, op.AsInt());
  record.op = static_cast<MetadataOp>(op_int);
  KP_ASSIGN_OR_RETURN(WireValue audit, value.Field("audit_id"));
  KP_ASSIGN_OR_RETURN(Bytes audit_bytes, audit.AsBytes());
  KP_ASSIGN_OR_RETURN(record.audit_id, AuditId::FromBytes(audit_bytes));
  KP_ASSIGN_OR_RETURN(WireValue dir, value.Field("dir_id"));
  KP_ASSIGN_OR_RETURN(Bytes dir_bytes, dir.AsBytes());
  KP_ASSIGN_OR_RETURN(record.dir_id, DirId::FromBytes(dir_bytes));
  KP_ASSIGN_OR_RETURN(WireValue parent, value.Field("parent_dir_id"));
  KP_ASSIGN_OR_RETURN(Bytes parent_bytes, parent.AsBytes());
  KP_ASSIGN_OR_RETURN(record.parent_dir_id, DirId::FromBytes(parent_bytes));
  KP_ASSIGN_OR_RETURN(WireValue name, value.Field("name"));
  KP_ASSIGN_OR_RETURN(record.name, name.AsString());
  KP_ASSIGN_OR_RETURN(WireValue attr, value.Field("attr"));
  KP_ASSIGN_OR_RETURN(record.attr, attr.AsString());
  KP_ASSIGN_OR_RETURN(WireValue prev, value.Field("prev_hash"));
  KP_ASSIGN_OR_RETURN(record.prev_hash, prev.AsBytes());
  KP_ASSIGN_OR_RETURN(WireValue hash, value.Field("hash"));
  KP_ASSIGN_OR_RETURN(record.entry_hash, hash.AsBytes());
  return record;
}

uint64_t MetadataLog::Append(SimTime timestamp, MetadataRecord record) {
  record.seq = records_.size();
  record.timestamp = timestamp;
  if (record.client_time == SimTime()) {
    record.client_time = timestamp;
  }
  record.prev_hash =
      records_.empty() ? Bytes(32, 0) : records_.back().entry_hash;
  record.entry_hash = HashRecord(record);
  records_.push_back(std::move(record));
  return records_.back().seq;
}

std::vector<MetadataRecord> MetadataLog::HistoryOf(
    const std::string& device_id, const AuditId& audit_id) const {
  std::vector<MetadataRecord> out;
  for (const auto& record : records_) {
    if (record.device_id == device_id && record.audit_id == audit_id &&
        (record.op == MetadataOp::kCreateFile ||
         record.op == MetadataOp::kRenameFile ||
         record.op == MetadataOp::kSetAttr)) {
      out.push_back(record);
    }
  }
  return out;
}

std::optional<MetadataRecord> MetadataLog::LatestBinding(
    const std::string& device_id, const AuditId& audit_id,
    SimTime as_of) const {
  std::optional<MetadataRecord> latest;
  for (const auto& record : records_) {
    if (record.client_time > as_of) {
      continue;
    }
    if (record.device_id == device_id && record.audit_id == audit_id &&
        (record.op == MetadataOp::kCreateFile ||
         record.op == MetadataOp::kRenameFile)) {
      latest = record;
    }
  }
  return latest;
}

std::optional<MetadataRecord> MetadataLog::LatestDirBinding(
    const std::string& device_id, const DirId& dir_id, SimTime as_of) const {
  std::optional<MetadataRecord> latest;
  for (const auto& record : records_) {
    if (record.client_time > as_of) {
      continue;
    }
    if (record.device_id == device_id && record.dir_id == dir_id &&
        (record.op == MetadataOp::kMkdir ||
         record.op == MetadataOp::kRenameDir)) {
      latest = record;
    }
  }
  return latest;
}

std::vector<MetadataRecord> MetadataLog::EntriesAfterSeq(
    uint64_t next_seq) const {
  if (next_seq >= records_.size()) {
    return {};
  }
  return std::vector<MetadataRecord>(records_.begin() + next_seq,
                                     records_.end());
}

Status MetadataLog::Verify() const {
  Bytes prev(32, 0);
  for (size_t i = 0; i < records_.size(); ++i) {
    const auto& record = records_[i];
    if (record.seq != i) {
      return DataLossError("metadata log: sequence gap at " +
                           std::to_string(i));
    }
    if (record.prev_hash != prev) {
      return DataLossError("metadata log: chain break at " +
                           std::to_string(i));
    }
    if (record.entry_hash != HashRecord(record)) {
      return DataLossError("metadata log: hash mismatch at " +
                           std::to_string(i));
    }
    prev = record.entry_hash;
  }
  return Status::Ok();
}

Status MetadataLog::LoadVerified(std::vector<MetadataRecord> records) {
  Bytes prev(32, 0);
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& record = records[i];
    if (record.seq != i || record.prev_hash != prev ||
        record.entry_hash != HashRecord(record)) {
      return DataLossError("metadata log: chain mismatch at " +
                           std::to_string(i));
    }
    prev = record.entry_hash;
  }
  records_ = std::move(records);
  return Status::Ok();
}

Status MetadataLog::AppendReplicated(
    const std::vector<MetadataRecord>& records) {
  // Validate the whole suffix before mutating anything: a diverged backup
  // must reject the delta untouched so the leader can mark it out-of-sync.
  Bytes prev = records_.empty() ? Bytes(32, 0) : records_.back().entry_hash;
  uint64_t seq = records_.size();
  for (const auto& record : records) {
    if (record.seq != seq || record.prev_hash != prev ||
        record.entry_hash != HashRecord(record)) {
      return DataLossError("metadata log: replicated suffix diverges at " +
                           std::to_string(seq));
    }
    prev = record.entry_hash;
    ++seq;
  }
  records_.insert(records_.end(), records.begin(), records.end());
  return Status::Ok();
}

void MetadataLog::CorruptRecordForTesting(size_t index) {
  if (index < records_.size()) {
    records_[index].name += "-tampered";
  }
}

}  // namespace keypad
