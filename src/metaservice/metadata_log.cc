#include "src/metaservice/metadata_log.h"

#include <algorithm>

namespace keypad {

std::string_view MetadataOpName(MetadataOp op) {
  switch (op) {
    case MetadataOp::kCreateFile:
      return "create";
    case MetadataOp::kRenameFile:
      return "rename";
    case MetadataOp::kMkdir:
      return "mkdir";
    case MetadataOp::kRenameDir:
      return "renamedir";
    case MetadataOp::kSetAttr:
      return "setattr";
  }
  return "unknown";
}

void MetadataLogCodec::SerializeEntry(const MetadataRecord& record,
                                      Bytes* out) {
  AppendU64Be(*out, record.seq);
  AppendU64Be(*out, static_cast<uint64_t>(record.timestamp.nanos()));
  AppendU64Be(*out, static_cast<uint64_t>(record.client_time.nanos()));
  keypad::Append(*out, record.device_id);
  out->push_back(static_cast<uint8_t>(record.op));
  keypad::Append(*out, record.audit_id.ToBytes());
  keypad::Append(*out, record.dir_id.ToBytes());
  keypad::Append(*out, record.parent_dir_id.ToBytes());
  keypad::Append(*out, record.name);
  keypad::Append(*out, record.attr);
}

WireValue MetadataRecord::ToWire() const {
  WireValue::Struct s;
  s.emplace("seq", WireValue(static_cast<int64_t>(seq)));
  s.emplace("ts", WireValue(timestamp.nanos()));
  s.emplace("cts", WireValue(client_time.nanos()));
  s.emplace("device", WireValue(device_id));
  s.emplace("op", WireValue(static_cast<int64_t>(op)));
  s.emplace("audit_id", WireValue(audit_id.ToBytes()));
  s.emplace("dir_id", WireValue(dir_id.ToBytes()));
  s.emplace("parent_dir_id", WireValue(parent_dir_id.ToBytes()));
  s.emplace("name", WireValue(name));
  s.emplace("attr", WireValue(attr));
  s.emplace("prev_hash", WireValue(prev_hash));
  s.emplace("hash", WireValue(entry_hash));
  return WireValue(std::move(s));
}

Result<MetadataRecord> MetadataRecord::FromWire(const WireValue& value) {
  MetadataRecord record;
  KP_ASSIGN_OR_RETURN(WireValue seq, value.Field("seq"));
  KP_ASSIGN_OR_RETURN(int64_t seq_int, seq.AsInt());
  record.seq = static_cast<uint64_t>(seq_int);
  KP_ASSIGN_OR_RETURN(WireValue ts, value.Field("ts"));
  KP_ASSIGN_OR_RETURN(int64_t ts_int, ts.AsInt());
  record.timestamp = SimTime(ts_int);
  KP_ASSIGN_OR_RETURN(WireValue cts, value.Field("cts"));
  KP_ASSIGN_OR_RETURN(int64_t cts_int, cts.AsInt());
  record.client_time = SimTime(cts_int);
  KP_ASSIGN_OR_RETURN(WireValue device, value.Field("device"));
  KP_ASSIGN_OR_RETURN(record.device_id, device.AsString());
  KP_ASSIGN_OR_RETURN(WireValue op, value.Field("op"));
  KP_ASSIGN_OR_RETURN(int64_t op_int, op.AsInt());
  record.op = static_cast<MetadataOp>(op_int);
  KP_ASSIGN_OR_RETURN(WireValue audit, value.Field("audit_id"));
  KP_ASSIGN_OR_RETURN(Bytes audit_bytes, audit.AsBytes());
  KP_ASSIGN_OR_RETURN(record.audit_id, AuditId::FromBytes(audit_bytes));
  KP_ASSIGN_OR_RETURN(WireValue dir, value.Field("dir_id"));
  KP_ASSIGN_OR_RETURN(Bytes dir_bytes, dir.AsBytes());
  KP_ASSIGN_OR_RETURN(record.dir_id, DirId::FromBytes(dir_bytes));
  KP_ASSIGN_OR_RETURN(WireValue parent, value.Field("parent_dir_id"));
  KP_ASSIGN_OR_RETURN(Bytes parent_bytes, parent.AsBytes());
  KP_ASSIGN_OR_RETURN(record.parent_dir_id, DirId::FromBytes(parent_bytes));
  KP_ASSIGN_OR_RETURN(WireValue name, value.Field("name"));
  KP_ASSIGN_OR_RETURN(record.name, name.AsString());
  KP_ASSIGN_OR_RETURN(WireValue attr, value.Field("attr"));
  KP_ASSIGN_OR_RETURN(record.attr, attr.AsString());
  KP_ASSIGN_OR_RETURN(WireValue prev, value.Field("prev_hash"));
  KP_ASSIGN_OR_RETURN(record.prev_hash, prev.AsBytes());
  KP_ASSIGN_OR_RETURN(WireValue hash, value.Field("hash"));
  KP_ASSIGN_OR_RETURN(record.entry_hash, hash.AsBytes());
  return record;
}

uint64_t MetadataLog::Append(SimTime timestamp, MetadataRecord record) {
  record.timestamp = timestamp;
  if (record.client_time == SimTime()) {
    record.client_time = timestamp;
  }
  return AppendEntry(std::move(record));
}

void MetadataLog::IndexRecord(const MetadataRecord& record) {
  if (record.op == MetadataOp::kMkdir || record.op == MetadataOp::kRenameDir) {
    dir_index_[{record.device_id, record.dir_id}].push_back(record);
  } else {
    file_index_[{record.device_id, record.audit_id}].push_back(record);
  }
}

void MetadataLog::OnCommitted(const MetadataRecord& record) {
  IndexRecord(record);
}

void MetadataLog::OnReset() {
  file_index_.clear();
  dir_index_.clear();
  for (const MetadataRecord& record : pending_cold_) {
    IndexRecord(record);
  }
}

std::vector<MetadataRecord> MetadataLog::HistoryOf(
    const std::string& device_id, const AuditId& audit_id) const {
  std::vector<MetadataRecord> out;
  auto it = file_index_.find({device_id, audit_id});
  if (it == file_index_.end()) {
    return out;
  }
  for (const MetadataRecord& record : it->second) {
    if (record.op == MetadataOp::kCreateFile ||
        record.op == MetadataOp::kRenameFile ||
        record.op == MetadataOp::kSetAttr) {
      out.push_back(record);
    }
  }
  return out;
}

std::optional<MetadataRecord> MetadataLog::LatestBinding(
    const std::string& device_id, const AuditId& audit_id,
    SimTime as_of) const {
  std::optional<MetadataRecord> latest;
  auto it = file_index_.find({device_id, audit_id});
  if (it == file_index_.end()) {
    return latest;
  }
  for (const MetadataRecord& record : it->second) {
    if (record.client_time > as_of) {
      continue;
    }
    if (record.op == MetadataOp::kCreateFile ||
        record.op == MetadataOp::kRenameFile) {
      latest = record;
    }
  }
  return latest;
}

std::optional<MetadataRecord> MetadataLog::LatestDirBinding(
    const std::string& device_id, const DirId& dir_id, SimTime as_of) const {
  std::optional<MetadataRecord> latest;
  auto it = dir_index_.find({device_id, dir_id});
  if (it == dir_index_.end()) {
    return latest;
  }
  for (const MetadataRecord& record : it->second) {
    if (record.client_time > as_of) {
      continue;
    }
    if (record.op == MetadataOp::kMkdir ||
        record.op == MetadataOp::kRenameDir) {
      latest = record;
    }
  }
  return latest;
}

std::vector<MetadataRecord> MetadataLog::AllKnownRecords() const {
  std::vector<MetadataRecord> out;
  for (const auto& [key, bucket] : file_index_) {
    out.insert(out.end(), bucket.begin(), bucket.end());
  }
  for (const auto& [key, bucket] : dir_index_) {
    out.insert(out.end(), bucket.begin(), bucket.end());
  }
  std::sort(out.begin(), out.end(),
            [](const MetadataRecord& a, const MetadataRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

Status MetadataLog::RestoreWithColdIndex(
    std::vector<MetadataRecord> cold, uint64_t base_seq, Bytes base_seal,
    std::vector<LogCheckpoint> checkpoints,
    std::vector<MetadataRecord> suffix) {
  pending_cold_ = std::move(cold);
  Status status = LoadVerifiedWithBase(base_seq, std::move(base_seal),
                                       std::move(checkpoints),
                                       std::move(suffix));
  pending_cold_.clear();
  return status;
}

}  // namespace keypad
