#include "src/metaservice/metadata_log.h"

#include "src/cryptocore/sha256.h"

namespace keypad {

std::string_view MetadataOpName(MetadataOp op) {
  switch (op) {
    case MetadataOp::kCreateFile:
      return "create";
    case MetadataOp::kRenameFile:
      return "rename";
    case MetadataOp::kMkdir:
      return "mkdir";
    case MetadataOp::kRenameDir:
      return "renamedir";
    case MetadataOp::kSetAttr:
      return "setattr";
  }
  return "unknown";
}

Bytes MetadataLog::HashRecord(const MetadataRecord& record) {
  Bytes material = record.prev_hash;
  AppendU64Be(material, record.seq);
  AppendU64Be(material, static_cast<uint64_t>(record.timestamp.nanos()));
  AppendU64Be(material, static_cast<uint64_t>(record.client_time.nanos()));
  keypad::Append(material, record.device_id);
  material.push_back(static_cast<uint8_t>(record.op));
  keypad::Append(material, record.audit_id.ToBytes());
  keypad::Append(material, record.dir_id.ToBytes());
  keypad::Append(material, record.parent_dir_id.ToBytes());
  keypad::Append(material, record.name);
  keypad::Append(material, record.attr);
  return Sha256::HashBytes(material);
}

uint64_t MetadataLog::Append(SimTime timestamp, MetadataRecord record) {
  record.seq = records_.size();
  record.timestamp = timestamp;
  if (record.client_time == SimTime()) {
    record.client_time = timestamp;
  }
  record.prev_hash =
      records_.empty() ? Bytes(32, 0) : records_.back().entry_hash;
  record.entry_hash = HashRecord(record);
  records_.push_back(std::move(record));
  return records_.back().seq;
}

std::vector<MetadataRecord> MetadataLog::HistoryOf(
    const std::string& device_id, const AuditId& audit_id) const {
  std::vector<MetadataRecord> out;
  for (const auto& record : records_) {
    if (record.device_id == device_id && record.audit_id == audit_id &&
        (record.op == MetadataOp::kCreateFile ||
         record.op == MetadataOp::kRenameFile ||
         record.op == MetadataOp::kSetAttr)) {
      out.push_back(record);
    }
  }
  return out;
}

std::optional<MetadataRecord> MetadataLog::LatestBinding(
    const std::string& device_id, const AuditId& audit_id,
    SimTime as_of) const {
  std::optional<MetadataRecord> latest;
  for (const auto& record : records_) {
    if (record.client_time > as_of) {
      continue;
    }
    if (record.device_id == device_id && record.audit_id == audit_id &&
        (record.op == MetadataOp::kCreateFile ||
         record.op == MetadataOp::kRenameFile)) {
      latest = record;
    }
  }
  return latest;
}

std::optional<MetadataRecord> MetadataLog::LatestDirBinding(
    const std::string& device_id, const DirId& dir_id, SimTime as_of) const {
  std::optional<MetadataRecord> latest;
  for (const auto& record : records_) {
    if (record.client_time > as_of) {
      continue;
    }
    if (record.device_id == device_id && record.dir_id == dir_id &&
        (record.op == MetadataOp::kMkdir ||
         record.op == MetadataOp::kRenameDir)) {
      latest = record;
    }
  }
  return latest;
}

Status MetadataLog::Verify() const {
  Bytes prev(32, 0);
  for (size_t i = 0; i < records_.size(); ++i) {
    const auto& record = records_[i];
    if (record.seq != i) {
      return DataLossError("metadata log: sequence gap at " +
                           std::to_string(i));
    }
    if (record.prev_hash != prev) {
      return DataLossError("metadata log: chain break at " +
                           std::to_string(i));
    }
    if (record.entry_hash != HashRecord(record)) {
      return DataLossError("metadata log: hash mismatch at " +
                           std::to_string(i));
    }
    prev = record.entry_hash;
  }
  return Status::Ok();
}

void MetadataLog::CorruptRecordForTesting(size_t index) {
  if (index < records_.size()) {
    records_[index].name += "-tampered";
  }
}

}  // namespace keypad
