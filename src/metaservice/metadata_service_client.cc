#include "src/metaservice/metadata_service_client.h"

#include <utility>

#include "src/keyservice/auth.h"

namespace keypad {

ReplicaRouter::Framer MetadataServiceClient::MakeFramer() const {
  // Captures copies so the framer stays valid however the stub is stored.
  return [device_id = device_id_, device_secret = device_secret_](
             const std::string& method, WireValue::Array payload) {
    return FrameAuthedCall(device_id, device_secret, method,
                           std::move(payload));
  };
}

Status MetadataServiceClient::RegisterRoot(const DirId& root_id) {
  WireValue::Array payload;
  payload.push_back(WireValue(root_id.ToBytes()));
  auto result = router_.Call("meta.register_root", std::move(payload));
  return result.status();
}

namespace {
WireValue::Array BindFilePayload(const AuditId& audit_id, const DirId& dir_id,
                                 const std::string& name, bool is_rename) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  payload.push_back(WireValue(dir_id.ToBytes()));
  payload.push_back(WireValue(name));
  payload.push_back(WireValue(is_rename));
  return payload;
}
}  // namespace

Result<Bytes> MetadataServiceClient::BindFile(const AuditId& audit_id,
                                              const DirId& dir_id,
                                              const std::string& name,
                                              bool is_rename) {
  auto result = router_.Call(
      "meta.bind_file", BindFilePayload(audit_id, dir_id, name, is_rename));
  if (!result.ok()) {
    return result.status();
  }
  return result->AsBytes();
}

void MetadataServiceClient::BindFileAsync(
    const AuditId& audit_id, const DirId& dir_id, const std::string& name,
    bool is_rename, std::function<void(Result<Bytes>)> done) {
  router_.CallAsync("meta.bind_file",
                    BindFilePayload(audit_id, dir_id, name, is_rename),
                    [done = std::move(done)](Result<WireValue> result) {
                      if (!result.ok()) {
                        done(result.status());
                        return;
                      }
                      done(result->AsBytes());
                    });
}

Status MetadataServiceClient::Mkdir(const DirId& dir_id,
                                    const DirId& parent_id,
                                    const std::string& name) {
  WireValue::Array payload;
  payload.push_back(WireValue(dir_id.ToBytes()));
  payload.push_back(WireValue(parent_id.ToBytes()));
  payload.push_back(WireValue(name));
  auto result = router_.Call("meta.mkdir", std::move(payload));
  return result.status();
}

Status MetadataServiceClient::RenameDir(const DirId& dir_id,
                                        const DirId& new_parent_id,
                                        const std::string& new_name) {
  WireValue::Array payload;
  payload.push_back(WireValue(dir_id.ToBytes()));
  payload.push_back(WireValue(new_parent_id.ToBytes()));
  payload.push_back(WireValue(new_name));
  auto result = router_.Call("meta.rename_dir", std::move(payload));
  return result.status();
}

void MetadataServiceClient::MkdirAsync(const DirId& dir_id,
                                       const DirId& parent_id,
                                       const std::string& name,
                                       std::function<void(Status)> done) {
  WireValue::Array payload;
  payload.push_back(WireValue(dir_id.ToBytes()));
  payload.push_back(WireValue(parent_id.ToBytes()));
  payload.push_back(WireValue(name));
  router_.CallAsync("meta.mkdir", std::move(payload),
                    [done = std::move(done)](Result<WireValue> result) {
                      done(result.status());
                    });
}

void MetadataServiceClient::RenameDirAsync(const DirId& dir_id,
                                           const DirId& new_parent_id,
                                           const std::string& new_name,
                                           std::function<void(Status)> done) {
  WireValue::Array payload;
  payload.push_back(WireValue(dir_id.ToBytes()));
  payload.push_back(WireValue(new_parent_id.ToBytes()));
  payload.push_back(WireValue(new_name));
  router_.CallAsync("meta.rename_dir", std::move(payload),
                    [done = std::move(done)](Result<WireValue> result) {
                      done(result.status());
                    });
}

Status MetadataServiceClient::UploadJournal(
    const std::vector<JournalRecord>& records) {
  WireValue::Array raw;
  for (const auto& record : records) {
    WireValue::Struct r;
    r.emplace("op", WireValue(record.op));
    r.emplace("aid", WireValue(record.audit_id.ToBytes()));
    r.emplace("did", WireValue(record.dir_id.ToBytes()));
    r.emplace("pid", WireValue(record.parent_dir_id.ToBytes()));
    r.emplace("name", WireValue(record.name));
    r.emplace("ts", WireValue(record.client_time.nanos()));
    raw.push_back(WireValue(std::move(r)));
  }
  WireValue::Array payload;
  payload.push_back(WireValue(std::move(raw)));
  // Journal catch-up is deferrable: under overload the metadata tier
  // sheds it first and the device re-uploads on its next pass.
  CallContext ctx;
  ctx.priority = RpcPriority::kBackground;
  auto result = router_.Call("meta.upload_journal", std::move(payload), ctx);
  return result.status();
}

Status MetadataServiceClient::SetAttr(const AuditId& audit_id,
                                      const std::string& attr) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  payload.push_back(WireValue(attr));
  auto result = router_.Call("meta.set_attr", std::move(payload));
  return result.status();
}

}  // namespace keypad
