// Client stub for the metadata service RPC protocol.
//
// Replica-aware mode (DESIGN.md §10): routing is delegated to the generic
// ReplicaRouter — leader hint, NOT_LEADER:<i> redirects from the serve
// gate, probe-backoff failover cycles under a budget. This stub only
// contributes the metadata-tier auth framing and typed (de)marshalling,
// exactly mirroring KeyServiceClient over the key tier.

#ifndef SRC_METASERVICE_METADATA_SERVICE_CLIENT_H_
#define SRC_METASERVICE_METADATA_SERVICE_CLIENT_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/replication/failover_client.h"
#include "src/rpc/rpc.h"
#include "src/sim/event_queue.h"
#include "src/util/ids.h"
#include "src/util/result.h"

namespace keypad {

class MetadataServiceClient {
 public:
  using FailoverOptions = keypad::FailoverOptions;

  // Single-endpoint stub (unreplicated service) — the historical layout.
  MetadataServiceClient(RpcClient* rpc, std::string device_id,
                        Bytes device_secret)
      : device_id_(std::move(device_id)),
        device_secret_(std::move(device_secret)),
        router_(rpc, MakeFramer()) {}

  // Replica-set stub: one RpcClient per metadata replica, in replica-index
  // order (NOT_LEADER redirects are indices into this list).
  MetadataServiceClient(EventQueue* queue, std::vector<RpcClient*> replicas,
                        std::string device_id, Bytes device_secret,
                        FailoverOptions failover)
      : device_id_(std::move(device_id)),
        device_secret_(std::move(device_secret)),
        router_(queue, std::move(replicas), MakeFramer(), failover) {}

  MetadataServiceClient(EventQueue* queue, std::vector<RpcClient*> replicas,
                        std::string device_id, Bytes device_secret)
      : MetadataServiceClient(queue, std::move(replicas),
                              std::move(device_id), std::move(device_secret),
                              FailoverOptions()) {}

  Status RegisterRoot(const DirId& root_id);

  // Registers a file binding; returns the serialized IBE private key for
  // the new identity.
  Result<Bytes> BindFile(const AuditId& audit_id, const DirId& dir_id,
                         const std::string& name, bool is_rename);
  // Async variant — the IBE path: ship the binding, keep working, unlock
  // the file when the key arrives.
  void BindFileAsync(const AuditId& audit_id, const DirId& dir_id,
                     const std::string& name, bool is_rename,
                     std::function<void(Result<Bytes>)> done);

  Status Mkdir(const DirId& dir_id, const DirId& parent_id,
               const std::string& name);
  Status RenameDir(const DirId& dir_id, const DirId& new_parent_id,
                   const std::string& new_name);
  // Async variants for proxies that must not block their RPC handlers.
  void MkdirAsync(const DirId& dir_id, const DirId& parent_id,
                  const std::string& name, std::function<void(Status)> done);
  void RenameDirAsync(const DirId& dir_id, const DirId& new_parent_id,
                      const std::string& new_name,
                      std::function<void(Status)> done);
  Status SetAttr(const AuditId& audit_id, const std::string& attr);

  // Paired-device journal upload.
  struct JournalRecord {
    int64_t op = 0;  // MetadataOp value.
    AuditId audit_id;
    DirId dir_id;
    DirId parent_dir_id;
    std::string name;
    SimTime client_time;
  };
  Status UploadJournal(const std::vector<JournalRecord>& records);

  const std::string& device_id() const { return device_id_; }
  RpcClient* rpc() const { return router_.rpc(); }

  size_t replica_count() const { return router_.replica_count(); }
  size_t leader_hint() const { return router_.leader_hint(); }
  // How often a call moved to another replica after a failure, and how
  // often a NOT_LEADER redirect was followed.
  uint64_t failovers() const { return router_.failovers(); }
  uint64_t redirects() const { return router_.redirects(); }

 private:
  ReplicaRouter::Framer MakeFramer() const;

  std::string device_id_;
  Bytes device_secret_;
  ReplicaRouter router_;
};

}  // namespace keypad

#endif  // SRC_METASERVICE_METADATA_SERVICE_CLIENT_H_
