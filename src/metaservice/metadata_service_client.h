// Client stub for the metadata service RPC protocol.

#ifndef SRC_METASERVICE_METADATA_SERVICE_CLIENT_H_
#define SRC_METASERVICE_METADATA_SERVICE_CLIENT_H_

#include <functional>
#include <string>

#include "src/rpc/rpc.h"
#include "src/util/ids.h"
#include "src/util/result.h"

namespace keypad {

class MetadataServiceClient {
 public:
  MetadataServiceClient(RpcClient* rpc, std::string device_id,
                        Bytes device_secret)
      : rpc_(rpc),
        device_id_(std::move(device_id)),
        device_secret_(std::move(device_secret)) {}

  Status RegisterRoot(const DirId& root_id);

  // Registers a file binding; returns the serialized IBE private key for
  // the new identity.
  Result<Bytes> BindFile(const AuditId& audit_id, const DirId& dir_id,
                         const std::string& name, bool is_rename);
  // Async variant — the IBE path: ship the binding, keep working, unlock
  // the file when the key arrives.
  void BindFileAsync(const AuditId& audit_id, const DirId& dir_id,
                     const std::string& name, bool is_rename,
                     std::function<void(Result<Bytes>)> done);

  Status Mkdir(const DirId& dir_id, const DirId& parent_id,
               const std::string& name);
  Status RenameDir(const DirId& dir_id, const DirId& new_parent_id,
                   const std::string& new_name);
  // Async variants for proxies that must not block their RPC handlers.
  void MkdirAsync(const DirId& dir_id, const DirId& parent_id,
                  const std::string& name, std::function<void(Status)> done);
  void RenameDirAsync(const DirId& dir_id, const DirId& new_parent_id,
                      const std::string& new_name,
                      std::function<void(Status)> done);
  Status SetAttr(const AuditId& audit_id, const std::string& attr);

  // Paired-device journal upload.
  struct JournalRecord {
    int64_t op = 0;  // MetadataOp value.
    AuditId audit_id;
    DirId dir_id;
    DirId parent_dir_id;
    std::string name;
    SimTime client_time;
  };
  Status UploadJournal(const std::vector<JournalRecord>& records);

  const std::string& device_id() const { return device_id_; }
  RpcClient* rpc() const { return rpc_; }

 private:
  RpcClient* rpc_;
  std::string device_id_;
  Bytes device_secret_;
};

}  // namespace keypad

#endif  // SRC_METASERVICE_METADATA_SERVICE_CLIENT_H_
