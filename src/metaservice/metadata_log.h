// Append-only, hash-chained metadata log.
//
// The metadata service records every namespace event (file create, file
// rename, mkdir, directory rename, attribute change) as an immutable
// record. A rename appends a record — it never rewrites history — so "a
// thief cannot overwrite the user's metadata with bogus information after
// theft" (§3.1): post-theft records accumulate *after* the genuine ones and
// are distinguishable by timestamp.

#ifndef SRC_METASERVICE_METADATA_LOG_H_
#define SRC_METASERVICE_METADATA_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/time.h"
#include "src/util/bytes.h"
#include "src/util/ids.h"
#include "src/util/result.h"
#include "src/wire/value.h"

namespace keypad {

enum class MetadataOp {
  kCreateFile = 0,
  kRenameFile = 1,
  kMkdir = 2,
  kRenameDir = 3,
  kSetAttr = 4,
};

std::string_view MetadataOpName(MetadataOp op);

struct MetadataRecord {
  uint64_t seq = 0;
  SimTime timestamp;   // Service-side append time.
  SimTime client_time; // Original client-side time for journal uploads.
  std::string device_id;
  MetadataOp op = MetadataOp::kCreateFile;
  AuditId audit_id;      // File records; zero for directory records.
  DirId dir_id;          // Containing dir (file ops) or the dir itself.
  DirId parent_dir_id;   // Directory records only.
  std::string name;      // New leaf name.
  std::string attr;      // kSetAttr payload ("key=value").
  Bytes prev_hash;
  Bytes entry_hash;

  // Wire form for service snapshots (crash/restart simulation).
  WireValue ToWire() const;
  static Result<MetadataRecord> FromWire(const WireValue& value);
};

class MetadataLog {
 public:
  uint64_t Append(SimTime timestamp, MetadataRecord record);

  const std::vector<MetadataRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  // All records for one file's audit ID, oldest first.
  std::vector<MetadataRecord> HistoryOf(const std::string& device_id,
                                        const AuditId& audit_id) const;

  // The latest (dir, name) binding for a file as of `as_of` (inclusive).
  std::optional<MetadataRecord> LatestBinding(const std::string& device_id,
                                              const AuditId& audit_id,
                                              SimTime as_of) const;

  // The latest (parent, name) binding for a directory as of `as_of`.
  std::optional<MetadataRecord> LatestDirBinding(const std::string& device_id,
                                                 const DirId& dir_id,
                                                 SimTime as_of) const;

  // Records with seq >= next_seq — O(result) thanks to seq == index. The
  // remote auditor passes its cursor (one past the last seq it has seen)
  // so repeated audits transfer only the new tail (parity with
  // AuditLog::EntriesAfterSeq).
  std::vector<MetadataRecord> EntriesAfterSeq(uint64_t next_seq) const;

  Status Verify() const;

  // Adopts `records` as the full log after verifying their chain — the
  // snapshot-restore path. kDataLoss (and no mutation) on any mismatch.
  Status LoadVerified(std::vector<MetadataRecord> records);

  // Replication path (DESIGN.md §10): appends already-hashed records
  // streamed from a replica-set leader. The suffix must continue this
  // log's chain exactly — consecutive sequence numbers from size(), each
  // record's prev_hash equal to the tail hash at that point, and every
  // record hash recomputing correctly. kDataLoss (and no mutation) on any
  // mismatch, so a diverged backup can never silently adopt a forked
  // history.
  Status AppendReplicated(const std::vector<MetadataRecord>& records);

  void CorruptRecordForTesting(size_t index);

 private:
  static Bytes HashRecord(const MetadataRecord& record);

  std::vector<MetadataRecord> records_;
};

}  // namespace keypad

#endif  // SRC_METASERVICE_METADATA_LOG_H_
