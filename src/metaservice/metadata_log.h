// Append-only, hash-chained metadata log — a thin adapter over the shared
// SegmentedLog substrate (src/auditlog/segmented_log.h).
//
// The metadata service records every namespace event (file create, file
// rename, mkdir, directory rename, attribute change) as an immutable
// record. A rename appends a record — it never rewrites history — so "a
// thief cannot overwrite the user's metadata with bogus information after
// theft" (§3.1): post-theft records accumulate *after* the genuine ones and
// are distinguishable by timestamp.
//
// Every record is its own commit group, so the substrate's group seal
// degenerates to the classic per-record chain
// entry_hash = SHA-256(prev_hash || ser(record)) — bit-identical to the
// hashes this log wrote before the substrate existed.
//
// Namespace queries (HistoryOf/LatestBinding/LatestDirBinding) are served
// from a per-(device, id) binding index maintained on commit instead of
// full-log scans. The index deliberately survives truncation: bindings are
// live namespace state (like the roots map), while the chain suffix in
// memory is bounded by the substrate's checkpoint lifecycle.

#ifndef SRC_METASERVICE_METADATA_LOG_H_
#define SRC_METASERVICE_METADATA_LOG_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/auditlog/segmented_log.h"
#include "src/sim/time.h"
#include "src/util/bytes.h"
#include "src/util/ids.h"
#include "src/util/result.h"
#include "src/wire/value.h"

namespace keypad {

enum class MetadataOp {
  kCreateFile = 0,
  kRenameFile = 1,
  kMkdir = 2,
  kRenameDir = 3,
  kSetAttr = 4,
};

std::string_view MetadataOpName(MetadataOp op);

struct MetadataRecord {
  uint64_t seq = 0;
  SimTime timestamp;   // Service-side append time.
  SimTime client_time; // Original client-side time for journal uploads.
  std::string device_id;
  MetadataOp op = MetadataOp::kCreateFile;
  AuditId audit_id;      // File records; zero for directory records.
  DirId dir_id;          // Containing dir (file ops) or the dir itself.
  DirId parent_dir_id;   // Directory records only.
  std::string name;      // New leaf name.
  std::string attr;      // kSetAttr payload ("key=value").
  Bytes prev_hash;
  Bytes entry_hash;

  // Wire form for service snapshots (crash/restart simulation).
  WireValue ToWire() const;
  static Result<MetadataRecord> FromWire(const WireValue& value);
};

// The substrate seam for MetadataRecord. Group start is the record's own
// seq (per-record chain); serialization order is load-bearing — together
// with the substrate's prev-seal prefix it reproduces the historical
// SHA-256(prev_hash || seq || ts || cts || device || op || ids || name ||
// attr) record hashes bit-for-bit.
struct MetadataLogCodec {
  using Entry = MetadataRecord;
  static constexpr const char* kName = "metadata log";

  static uint64_t Seq(const Entry& e) { return e.seq; }
  static void SetSeq(Entry& e, uint64_t seq) { e.seq = seq; }
  static uint64_t GroupStart(const Entry& e) { return e.seq; }
  static void SetGroupStart(Entry&, uint64_t) {}
  static const Bytes& PrevHash(const Entry& e) { return e.prev_hash; }
  static void SetPrevHash(Entry& e, Bytes prev) {
    e.prev_hash = std::move(prev);
  }
  static const Bytes& EntryHash(const Entry& e) { return e.entry_hash; }
  static void SetEntryHash(Entry& e, Bytes hash) {
    e.entry_hash = std::move(hash);
  }
  static void SerializeEntry(const Entry& record, Bytes* out);
  static WireValue EntryToWire(const Entry& e) { return e.ToWire(); }
  static Result<Entry> EntryFromWire(const WireValue& value) {
    return MetadataRecord::FromWire(value);
  }
  static void CorruptForTesting(Entry& e) { e.name += "-tampered"; }
};

class MetadataLog : public SegmentedLog<MetadataLogCodec> {
 public:
  uint64_t Append(SimTime timestamp, MetadataRecord record);

  const std::vector<MetadataRecord>& records() const { return entries(); }

  // All records for one file's audit ID, oldest first.
  std::vector<MetadataRecord> HistoryOf(const std::string& device_id,
                                        const AuditId& audit_id) const;

  // The latest (dir, name) binding for a file as of `as_of` (inclusive).
  std::optional<MetadataRecord> LatestBinding(const std::string& device_id,
                                              const AuditId& audit_id,
                                              SimTime as_of) const;

  // The latest (parent, name) binding for a directory as of `as_of`.
  std::optional<MetadataRecord> LatestDirBinding(const std::string& device_id,
                                                 const DirId& dir_id,
                                                 SimTime as_of) const;

  // Every record ever committed, oldest first, including prefixes the
  // substrate truncated from the chain — served from the binding index,
  // which retains namespace state for exactly this reason (the forensic
  // auditor's cold-inclusive view).
  std::vector<MetadataRecord> AllKnownRecords() const;

  // Truncation-aware restore: `cold` carries the pre-base records for the
  // binding index (namespace state), the rest restores the chain itself.
  Status RestoreWithColdIndex(std::vector<MetadataRecord> cold,
                              uint64_t base_seq, Bytes base_seal,
                              std::vector<LogCheckpoint> checkpoints,
                              std::vector<MetadataRecord> suffix);

  void CorruptRecordForTesting(size_t index) { CorruptEntryForTesting(index); }

 protected:
  void OnCommitted(const MetadataRecord& record) override;
  void OnReset() override;

 private:
  void IndexRecord(const MetadataRecord& record);

  // Binding index: file records by (device, audit id), directory records
  // by (device, dir id), each bucket in log order. Together the buckets
  // hold every record (all five ops land in exactly one bucket).
  std::map<std::pair<std::string, AuditId>, std::vector<MetadataRecord>>
      file_index_;
  std::map<std::pair<std::string, DirId>, std::vector<MetadataRecord>>
      dir_index_;
  // Records to seed the index with during the next OnReset (restore path).
  std::vector<MetadataRecord> pending_cold_;
};

}  // namespace keypad

#endif  // SRC_METASERVICE_METADATA_LOG_H_
