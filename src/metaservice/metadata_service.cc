#include "src/metaservice/metadata_service.h"

#include "src/keyservice/auth.h"
#include "src/util/strings.h"
#include "src/wire/binary_codec.h"

namespace keypad {

std::string IbeIdentityFor(const DirId& dir_id, const std::string& name,
                           const AuditId& audit_id) {
  return dir_id.ToHex() + "/" + name + "|" + audit_id.ToHex();
}

WireValue MetaReplDelta::ToWire() const {
  WireValue::Struct s;
  WireValue::Array raw_records;
  for (const auto& record : records) {
    raw_records.push_back(record.ToWire());
  }
  s.emplace("records", WireValue(std::move(raw_records)));
  WireValue::Array raw_roots;
  for (const auto& change : root_changes) {
    WireValue::Struct r;
    r.emplace("device", WireValue(change.device_id));
    r.emplace("root", WireValue(change.root_id.ToBytes()));
    raw_roots.push_back(WireValue(std::move(r)));
  }
  s.emplace("roots", WireValue(std::move(raw_roots)));
  WireValue::Array raw_devices;
  for (const auto& change : device_changes) {
    WireValue::Struct d;
    d.emplace("device", WireValue(change.device_id));
    d.emplace("disabled", WireValue(change.disabled));
    raw_devices.push_back(WireValue(std::move(d)));
  }
  s.emplace("devices", WireValue(std::move(raw_devices)));
  return WireValue(std::move(s));
}

Result<MetaReplDelta> MetaReplDelta::FromWire(const WireValue& value) {
  MetaReplDelta delta;
  KP_ASSIGN_OR_RETURN(WireValue records_v, value.Field("records"));
  KP_ASSIGN_OR_RETURN(WireValue::Array raw_records, records_v.AsArray());
  for (const auto& raw : raw_records) {
    KP_ASSIGN_OR_RETURN(MetadataRecord record, MetadataRecord::FromWire(raw));
    delta.records.push_back(std::move(record));
  }
  KP_ASSIGN_OR_RETURN(WireValue roots_v, value.Field("roots"));
  KP_ASSIGN_OR_RETURN(WireValue::Array raw_roots, roots_v.AsArray());
  for (const auto& raw : raw_roots) {
    RootChange change;
    KP_ASSIGN_OR_RETURN(WireValue device_v, raw.Field("device"));
    KP_ASSIGN_OR_RETURN(change.device_id, device_v.AsString());
    KP_ASSIGN_OR_RETURN(WireValue root_v, raw.Field("root"));
    KP_ASSIGN_OR_RETURN(Bytes root_bytes, root_v.AsBytes());
    KP_ASSIGN_OR_RETURN(change.root_id, DirId::FromBytes(root_bytes));
    delta.root_changes.push_back(std::move(change));
  }
  KP_ASSIGN_OR_RETURN(WireValue devices_v, value.Field("devices"));
  KP_ASSIGN_OR_RETURN(WireValue::Array raw_devices, devices_v.AsArray());
  for (const auto& raw : raw_devices) {
    DeviceChange change;
    KP_ASSIGN_OR_RETURN(WireValue device_v, raw.Field("device"));
    KP_ASSIGN_OR_RETURN(change.device_id, device_v.AsString());
    KP_ASSIGN_OR_RETURN(WireValue disabled_v, raw.Field("disabled"));
    KP_ASSIGN_OR_RETURN(change.disabled, disabled_v.AsBool());
    delta.device_changes.push_back(std::move(change));
  }
  return delta;
}

MetadataService::MetadataService(EventQueue* queue, uint64_t rng_seed,
                                 const PairingParams& group)
    : queue_(queue), rng_(rng_seed), pkg_(group, rng_) {
  ConfigureLog(ApplySegmentedLogEnv({}));
}

void MetadataService::ConfigureLog(SegmentedLogOptions options) {
  log_.Configure(options);
  if (options.cold_ship && segment_store_ == nullptr) {
    cold_cloud_ = std::make_unique<SimObjectStore>(queue_);
    segment_store_ = std::make_unique<SegmentStore>(
        MakeStorageBackend(DefaultStorageBackendKind()), cold_cloud_.get());
  }
  if (segment_store_ != nullptr) {
    log_.set_segment_store(segment_store_.get(), "meta");
  }
}

Bytes MetadataService::RegisterDevice(const std::string& device_id) {
  DeviceRecord record;
  record.secret = rng_.NextBytes(32);
  devices_[device_id] = record;
  return record.secret;
}

void MetadataService::RegisterDeviceWithSecret(const std::string& device_id,
                                               const Bytes& secret) {
  DeviceRecord record;
  record.secret = secret;
  devices_[device_id] = record;
}

Result<Bytes> MetadataService::DeviceSecret(
    const std::string& device_id) const {
  auto it = devices_.find(device_id);
  if (it == devices_.end()) {
    return NotFoundError("metadata service: unknown device " + device_id);
  }
  return it->second.secret;
}

Status MetadataService::DisableDevice(const std::string& device_id) {
  auto it = devices_.find(device_id);
  if (it == devices_.end()) {
    return NotFoundError("metadata service: unknown device " + device_id);
  }
  it->second.disabled = true;
  NoteDeviceChange(device_id, true);
  return Status::Ok();
}

Status MetadataService::EnableDevice(const std::string& device_id) {
  auto it = devices_.find(device_id);
  if (it == devices_.end()) {
    return NotFoundError("metadata service: unknown device " + device_id);
  }
  it->second.disabled = false;
  NoteDeviceChange(device_id, false);
  return Status::Ok();
}

bool MetadataService::IsDeviceDisabled(const std::string& device_id) const {
  auto it = devices_.find(device_id);
  return it != devices_.end() && it->second.disabled;
}

Status MetadataService::CheckDevice(const std::string& device_id) const {
  auto it = devices_.find(device_id);
  if (it == devices_.end()) {
    return PermissionDeniedError("metadata service: unregistered device");
  }
  if (it->second.disabled) {
    return PermissionDeniedError("metadata service: device disabled");
  }
  return Status::Ok();
}

Status MetadataService::UploadJournal(
    const std::string& device_id, const std::vector<JournalRecord>& records) {
  KP_RETURN_IF_ERROR(CheckDevice(device_id));
  for (const auto& journal : records) {
    MetadataRecord record;
    record.device_id = device_id;
    record.op = journal.op;
    record.audit_id = journal.audit_id;
    record.dir_id = journal.dir_id;
    record.parent_dir_id = journal.parent_dir_id;
    record.name = journal.name;
    record.client_time = journal.client_time;
    log_.Append(queue_->Now(), std::move(record));
  }
  return Status::Ok();
}

Status MetadataService::RegisterRoot(const std::string& device_id,
                                     const DirId& root_id) {
  KP_RETURN_IF_ERROR(CheckDevice(device_id));
  roots_[device_id] = root_id;
  NoteRootChange(device_id, root_id);
  MetadataRecord record;
  record.device_id = device_id;
  record.op = MetadataOp::kMkdir;
  record.dir_id = root_id;
  record.parent_dir_id = root_id;  // Root is its own parent.
  record.name = "";
  log_.Append(queue_->Now(), std::move(record));
  return Status::Ok();
}

Result<Bytes> MetadataService::RegisterFileBinding(
    const std::string& device_id, const AuditId& audit_id,
    const DirId& dir_id, const std::string& name, bool is_rename) {
  KP_RETURN_IF_ERROR(CheckDevice(device_id));
  MetadataOp op = is_rename ? MetadataOp::kRenameFile : MetadataOp::kCreateFile;
  // At-most-once across failover: the RPC layer's reply cache dedups
  // retries hitting the *same* server, but a retry that lands on a freshly
  // promoted leader arrives with no cache entry. The binding content makes
  // the duplicate detectable — if the latest binding for this file is
  // already exactly (op, dir, name), the first attempt's record reached the
  // log before the old leader died, so re-extract the (deterministic) IBE
  // key without appending a second record.
  auto latest = log_.LatestBinding(device_id, audit_id, queue_->Now());
  if (!latest.has_value() || latest->op != op || latest->dir_id != dir_id ||
      latest->name != name) {
    // Durably log *before* releasing the IBE unlock key: the key is the
    // proof-of-registration the client (or a thief) needs.
    MetadataRecord record;
    record.device_id = device_id;
    record.op = op;
    record.audit_id = audit_id;
    record.dir_id = dir_id;
    record.name = name;
    log_.Append(queue_->Now(), std::move(record));
  }

  IbePrivateKey key = pkg_.Extract(IbeIdentityFor(dir_id, name, audit_id));
  return key.Serialize(*ibe_params().group);
}

Status MetadataService::RegisterMkdir(const std::string& device_id,
                                      const DirId& dir_id,
                                      const DirId& parent_id,
                                      const std::string& name) {
  KP_RETURN_IF_ERROR(CheckDevice(device_id));
  MetadataRecord record;
  record.device_id = device_id;
  record.op = MetadataOp::kMkdir;
  record.dir_id = dir_id;
  record.parent_dir_id = parent_id;
  record.name = name;
  log_.Append(queue_->Now(), std::move(record));
  return Status::Ok();
}

Status MetadataService::RegisterDirRename(const std::string& device_id,
                                          const DirId& dir_id,
                                          const DirId& new_parent_id,
                                          const std::string& new_name) {
  KP_RETURN_IF_ERROR(CheckDevice(device_id));
  MetadataRecord record;
  record.device_id = device_id;
  record.op = MetadataOp::kRenameDir;
  record.dir_id = dir_id;
  record.parent_dir_id = new_parent_id;
  record.name = new_name;
  log_.Append(queue_->Now(), std::move(record));
  return Status::Ok();
}

Status MetadataService::RegisterAttr(const std::string& device_id,
                                     const AuditId& audit_id,
                                     const std::string& attr) {
  KP_RETURN_IF_ERROR(CheckDevice(device_id));
  MetadataRecord record;
  record.device_id = device_id;
  record.op = MetadataOp::kSetAttr;
  record.audit_id = audit_id;
  record.attr = attr;
  log_.Append(queue_->Now(), std::move(record));
  return Status::Ok();
}

Result<std::string> MetadataService::ResolvePath(const std::string& device_id,
                                                 const AuditId& audit_id,
                                                 SimTime as_of) const {
  auto binding = log_.LatestBinding(device_id, audit_id, as_of);
  if (!binding.has_value()) {
    return NotFoundError("metadata service: no binding for audit id");
  }
  auto root_it = roots_.find(device_id);
  if (root_it == roots_.end()) {
    return FailedPreconditionError("metadata service: no root registered");
  }

  std::vector<std::string> components;
  components.push_back(binding->name);
  DirId dir = binding->dir_id;
  // Walk up the directory records; bail out defensively on cycles.
  for (int depth = 0; depth < 256; ++depth) {
    if (dir == root_it->second) {
      std::string path = "/";
      for (size_t i = components.size(); i > 0; --i) {
        path += components[i - 1];
        if (i > 1) {
          path += "/";
        }
      }
      return path;
    }
    auto dir_binding = log_.LatestDirBinding(device_id, dir, as_of);
    if (!dir_binding.has_value()) {
      return DataLossError("metadata service: dangling directory id");
    }
    components.push_back(dir_binding->name);
    dir = dir_binding->parent_dir_id;
  }
  return DataLossError("metadata service: directory cycle");
}

void MetadataService::NoteRootChange(const std::string& device_id,
                                     const DirId& root_id) {
  if (!replicator_) {
    return;
  }
  pending_root_changes_.push_back({device_id, root_id});
}

void MetadataService::NoteDeviceChange(const std::string& device_id,
                                       bool disabled) {
  if (!replicator_) {
    return;
  }
  pending_device_changes_.push_back({device_id, disabled});
}

MetaReplDelta MetadataService::TakeUnshippedDelta() {
  MetaReplDelta delta;
  delta.records = log_.EntriesAfterSeq(shipped_seq_);
  shipped_seq_ = log_.size();
  delta.root_changes = std::move(pending_root_changes_);
  pending_root_changes_.clear();
  delta.device_changes = std::move(pending_device_changes_);
  pending_device_changes_.clear();
  return delta;
}

void MetadataService::ReplicateNow(std::function<void()> done) {
  if (!replicator_) {
    if (done) {
      done();
    }
    return;
  }
  MetaReplDelta delta = TakeUnshippedDelta();
  if (delta.empty()) {
    if (done) {
      done();
    }
    return;
  }
  if (!done) {
    done = [] {};
  }
  replicator_(std::move(delta), std::move(done));
}

Status MetadataService::ApplyReplicated(const MetaReplDelta& delta) {
  // Chain continuity first: a diverged backup must reject the whole delta
  // untouched so the leader can mark it out-of-sync and reconciliation can
  // sort out the fork later.
  KP_RETURN_IF_ERROR(log_.AppendReplicated(delta.records));
  for (const auto& change : delta.root_changes) {
    roots_[change.device_id] = change.root_id;
  }
  for (const auto& change : delta.device_changes) {
    auto it = devices_.find(change.device_id);
    if (it != devices_.end()) {
      it->second.disabled = change.disabled;
    }
  }
  // Everything applied is, by definition, shipped state: if this backup is
  // later promoted it must not re-stream records the old leader already
  // distributed.
  shipped_seq_ = log_.size();
  return Status::Ok();
}

void MetadataService::OpenReleaseWindow() {
  if (window_open_) {
    return;
  }
  window_open_ = true;
  // Zero-duration: the flush runs after every same-instant RPC has been
  // handled, so mutations arriving together ship to the backups as one
  // delta. Unlike the key tier there is no group seal to amortize — the
  // records are already hashed and durable — only the responses wait.
  flush_event_ = queue_->ScheduleAfter(SimDuration(),
                                       [this] { FlushReleaseWindow(); });
}

void MetadataService::FlushReleaseWindow() {
  if (!window_open_) {
    return;
  }
  window_open_ = false;
  if (flush_event_ != EventQueue::kInvalidEvent) {
    queue_->Cancel(flush_event_);
    flush_event_ = EventQueue::kInvalidEvent;
  }
  // The records are durable locally, but the responses carry IBE unlock
  // keys: they may not leave until every in-sync backup holds the records
  // too, or a leader crash after release could lose the only copy of a
  // binding whose key is already in a thief's hands (DESIGN.md §10).
  auto responses = std::make_shared<std::vector<PendingResponse>>(
      std::move(pending_responses_));
  pending_responses_.clear();
  auto release = [responses] {
    for (auto& pending : *responses) {
      pending.respond(std::move(pending.result));
    }
  };
  if (replicator_) {
    MetaReplDelta delta = TakeUnshippedDelta();
    if (delta.empty()) {
      release();
    } else {
      replicator_(std::move(delta), std::move(release));
    }
  } else {
    release();
  }
}

void MetadataService::AbortPending() {
  if (flush_event_ != EventQueue::kInvalidEvent) {
    queue_->Cancel(flush_event_);
    flush_event_ = EventQueue::kInvalidEvent;
  }
  window_open_ = false;
  // Responses never sent: the clients' timeouts and retries take over,
  // exactly as with any crashed server. The appended records stay — they
  // are durable — and surface as duplicates (never losses) if the retry
  // re-registers on the next leader before this replica rejoins.
  pending_responses_.clear();
}

Bytes MetadataService::Snapshot() const {
  WireValue::Struct snapshot;

  WireValue::Array devices;
  for (const auto& [id, record] : devices_) {
    WireValue::Struct d;
    d.emplace("id", WireValue(id));
    d.emplace("secret", WireValue(record.secret));
    d.emplace("disabled", WireValue(record.disabled));
    devices.push_back(WireValue(std::move(d)));
  }
  snapshot.emplace("devices", WireValue(std::move(devices)));

  WireValue::Array roots;
  for (const auto& [device, root_id] : roots_) {
    WireValue::Struct r;
    r.emplace("device", WireValue(device));
    r.emplace("root", WireValue(root_id.ToBytes()));
    roots.push_back(WireValue(std::move(r)));
  }
  snapshot.emplace("roots", WireValue(std::move(roots)));

  WireValue::Array log_records;
  for (const auto& record : log_.records()) {
    log_records.push_back(record.ToWire());
  }
  snapshot.emplace("log", WireValue(std::move(log_records)));

  // Lifecycle state (DESIGN.md §15): truncation base, the signed checkpoint
  // chain, and the pre-base binding records — namespace state the truncated
  // chain prefix carried. Pre-lifecycle snapshots simply lack these fields.
  snapshot.emplace("log_base",
                   WireValue(static_cast<int64_t>(log_.base_seq())));
  snapshot.emplace("log_base_seal", WireValue(log_.base_seal()));
  WireValue::Array ckpts;
  for (const auto& ckpt : log_.checkpoints()) {
    ckpts.push_back(ckpt.ToWire());
  }
  snapshot.emplace("ckpts", WireValue(std::move(ckpts)));
  WireValue::Array cold_bindings;
  if (log_.base_seq() > 0) {
    for (const auto& record : log_.AllKnownRecords()) {
      if (record.seq < log_.base_seq()) {
        cold_bindings.push_back(record.ToWire());
      }
    }
  }
  snapshot.emplace("cold_bindings", WireValue(std::move(cold_bindings)));
  return BinaryEncode(WireValue(std::move(snapshot)));
}

Status MetadataService::Restore(const Bytes& snapshot) {
  KP_ASSIGN_OR_RETURN(WireValue value, BinaryDecode(snapshot));

  // Rebuild the log first and verify its chain (checkpoint signatures
  // included) before touching anything.
  KP_ASSIGN_OR_RETURN(WireValue log_value, value.Field("log"));
  KP_ASSIGN_OR_RETURN(WireValue::Array raw_log, log_value.AsArray());
  std::vector<MetadataRecord> log_records;
  for (const auto& raw : raw_log) {
    KP_ASSIGN_OR_RETURN(MetadataRecord record, MetadataRecord::FromWire(raw));
    log_records.push_back(std::move(record));
  }
  MetadataLog restored_log;
  restored_log.Configure(log_.log_options());
  if (segment_store_) {
    restored_log.set_segment_store(segment_store_.get(), "meta");
  }
  restored_log.set_truncate_anchor(log_.truncate_anchor());
  Status log_status;
  if (value.HasField("log_base")) {
    KP_ASSIGN_OR_RETURN(WireValue base_v, value.Field("log_base"));
    KP_ASSIGN_OR_RETURN(int64_t base_int, base_v.AsInt());
    KP_ASSIGN_OR_RETURN(WireValue seal_v, value.Field("log_base_seal"));
    KP_ASSIGN_OR_RETURN(Bytes base_seal, seal_v.AsBytes());
    KP_ASSIGN_OR_RETURN(WireValue ckpts_v, value.Field("ckpts"));
    KP_ASSIGN_OR_RETURN(WireValue::Array raw_ckpts, ckpts_v.AsArray());
    std::vector<LogCheckpoint> ckpts;
    for (const auto& raw : raw_ckpts) {
      KP_ASSIGN_OR_RETURN(LogCheckpoint ckpt, LogCheckpoint::FromWire(raw));
      ckpts.push_back(std::move(ckpt));
    }
    std::vector<MetadataRecord> cold;
    KP_ASSIGN_OR_RETURN(WireValue cold_v, value.Field("cold_bindings"));
    KP_ASSIGN_OR_RETURN(WireValue::Array raw_cold, cold_v.AsArray());
    for (const auto& raw : raw_cold) {
      KP_ASSIGN_OR_RETURN(MetadataRecord record,
                          MetadataRecord::FromWire(raw));
      cold.push_back(std::move(record));
    }
    log_status = restored_log.RestoreWithColdIndex(
        std::move(cold), static_cast<uint64_t>(base_int),
        std::move(base_seal), std::move(ckpts), std::move(log_records));
  } else {
    log_status = restored_log.LoadVerified(std::move(log_records));
  }
  if (!log_status.ok()) {
    return DataLossError("metadata service: snapshot log chain mismatch");
  }

  std::map<std::string, DeviceRecord> devices;
  KP_ASSIGN_OR_RETURN(WireValue devices_value, value.Field("devices"));
  KP_ASSIGN_OR_RETURN(WireValue::Array raw_devices, devices_value.AsArray());
  for (const auto& raw : raw_devices) {
    KP_ASSIGN_OR_RETURN(WireValue id_v, raw.Field("id"));
    KP_ASSIGN_OR_RETURN(std::string id, id_v.AsString());
    DeviceRecord record;
    KP_ASSIGN_OR_RETURN(WireValue secret_v, raw.Field("secret"));
    KP_ASSIGN_OR_RETURN(record.secret, secret_v.AsBytes());
    KP_ASSIGN_OR_RETURN(WireValue disabled_v, raw.Field("disabled"));
    KP_ASSIGN_OR_RETURN(record.disabled, disabled_v.AsBool());
    devices.emplace(std::move(id), std::move(record));
  }

  std::map<std::string, DirId> roots;
  KP_ASSIGN_OR_RETURN(WireValue roots_value, value.Field("roots"));
  KP_ASSIGN_OR_RETURN(WireValue::Array raw_roots, roots_value.AsArray());
  for (const auto& raw : raw_roots) {
    KP_ASSIGN_OR_RETURN(WireValue device_v, raw.Field("device"));
    KP_ASSIGN_OR_RETURN(std::string device, device_v.AsString());
    KP_ASSIGN_OR_RETURN(WireValue root_v, raw.Field("root"));
    KP_ASSIGN_OR_RETURN(Bytes root_bytes, root_v.AsBytes());
    KP_ASSIGN_OR_RETURN(DirId root_id, DirId::FromBytes(root_bytes));
    roots.emplace(std::move(device), root_id);
  }

  AbortPending();
  devices_ = std::move(devices);
  roots_ = std::move(roots);
  log_ = std::move(restored_log);
  // pkg_ is untouched: the IBE master secret lives in the HSM, not in the
  // crashed process image.
  // A restored replica restarts replication from its adopted log: nothing
  // staged survives, and the whole log counts as shipped (the rejoin
  // reconciliation, not the delta stream, squares it with the leader).
  pending_root_changes_.clear();
  pending_device_changes_.clear();
  shipped_seq_ = log_.size();
  ++restore_epoch_;
  return Status::Ok();
}

void MetadataService::BindRpc(RpcServer* server) {
  auto authed = [this](const std::string& method,
                       auto fn) -> RpcServer::Handler {
    return [this, method, fn](const WireValue::Array& params)
               -> Result<WireValue> {
      KP_ASSIGN_OR_RETURN(AuthedCall call, SplitAuthedCall(params));
      auto it = devices_.find(call.device_id);
      if (it == devices_.end()) {
        return PermissionDeniedError("metadata service: unregistered device");
      }
      KP_RETURN_IF_ERROR(VerifyAuthTag(it->second.secret, method, call));
      return fn(call.device_id, call.payload);
    };
  };

  // Registers one method, honoring the replication mode: on a replicated
  // service every handler executes immediately (records append — and hash
  // — at once) but the response is withheld until the un-shipped log
  // suffix lands on every in-sync backup, extending the "durably log
  // before the unlock key leaves" barrier across the replica set
  // (DESIGN.md §10). `gated` methods are leader-only when a serve gate is
  // installed (meta.* — they mutate the namespace or mint IBE keys);
  // audit.* stays readable on any replica.
  auto install = [this, server, authed](const std::string& method, bool gated,
                                        auto fn) {
    RpcServer::Handler body = authed(method, fn);
    if (replicator_) {
      server->RegisterAsyncMethod(
          method, [this, gated, body](const WireValue::Array& params,
                                      RpcServer::Responder respond) {
            if (gated && serve_gate_) {
              Status gate = serve_gate_();
              if (!gate.ok()) {
                // Rejected before any append: nothing to hold — tell the
                // client who leads, right away.
                respond(std::move(gate));
                return;
              }
            }
            OpenReleaseWindow();
            Result<WireValue> result = body(params);
            pending_responses_.push_back(
                {std::move(respond), std::move(result)});
          });
    } else {
      server->RegisterMethod(
          method, [this, gated, body](const WireValue::Array& params)
                      -> Result<WireValue> {
            if (gated && serve_gate_) {
              KP_RETURN_IF_ERROR(serve_gate_());
            }
            return body(params);
          });
    }
  };

  install(
      "meta.register_root", true,
             [this](const std::string& device,
                    const WireValue::Array& payload) -> Result<WireValue> {
               if (payload.size() != 1) {
                 return InvalidArgumentError("meta.register_root: bad arity");
               }
               KP_ASSIGN_OR_RETURN(Bytes id_bytes, payload[0].AsBytes());
               KP_ASSIGN_OR_RETURN(DirId id, DirId::FromBytes(id_bytes));
               KP_RETURN_IF_ERROR(RegisterRoot(device, id));
               return WireValue(true);
             });

  install(
      "meta.bind_file", true,
             [this](const std::string& device,
                    const WireValue::Array& payload) -> Result<WireValue> {
               if (payload.size() != 4) {
                 return InvalidArgumentError("meta.bind_file: bad arity");
               }
               KP_ASSIGN_OR_RETURN(Bytes aid_bytes, payload[0].AsBytes());
               KP_ASSIGN_OR_RETURN(AuditId aid, AuditId::FromBytes(aid_bytes));
               KP_ASSIGN_OR_RETURN(Bytes did_bytes, payload[1].AsBytes());
               KP_ASSIGN_OR_RETURN(DirId did, DirId::FromBytes(did_bytes));
               KP_ASSIGN_OR_RETURN(std::string name, payload[2].AsString());
               KP_ASSIGN_OR_RETURN(bool is_rename, payload[3].AsBool());
               KP_ASSIGN_OR_RETURN(
                   Bytes ibe_key,
                   RegisterFileBinding(device, aid, did, name, is_rename));
               return WireValue(std::move(ibe_key));
             });

  install(
      "meta.mkdir", true,
             [this](const std::string& device,
                    const WireValue::Array& payload) -> Result<WireValue> {
               if (payload.size() != 3) {
                 return InvalidArgumentError("meta.mkdir: bad arity");
               }
               KP_ASSIGN_OR_RETURN(Bytes did_bytes, payload[0].AsBytes());
               KP_ASSIGN_OR_RETURN(DirId did, DirId::FromBytes(did_bytes));
               KP_ASSIGN_OR_RETURN(Bytes pid_bytes, payload[1].AsBytes());
               KP_ASSIGN_OR_RETURN(DirId pid, DirId::FromBytes(pid_bytes));
               KP_ASSIGN_OR_RETURN(std::string name, payload[2].AsString());
               KP_RETURN_IF_ERROR(RegisterMkdir(device, did, pid, name));
               return WireValue(true);
             });

  install(
      "meta.rename_dir", true,
             [this](const std::string& device,
                    const WireValue::Array& payload) -> Result<WireValue> {
               if (payload.size() != 3) {
                 return InvalidArgumentError("meta.rename_dir: bad arity");
               }
               KP_ASSIGN_OR_RETURN(Bytes did_bytes, payload[0].AsBytes());
               KP_ASSIGN_OR_RETURN(DirId did, DirId::FromBytes(did_bytes));
               KP_ASSIGN_OR_RETURN(Bytes pid_bytes, payload[1].AsBytes());
               KP_ASSIGN_OR_RETURN(DirId pid, DirId::FromBytes(pid_bytes));
               KP_ASSIGN_OR_RETURN(std::string name, payload[2].AsString());
               KP_RETURN_IF_ERROR(RegisterDirRename(device, did, pid, name));
               return WireValue(true);
             });

  install(
      "meta.set_attr", true,
             [this](const std::string& device,
                    const WireValue::Array& payload) -> Result<WireValue> {
               if (payload.size() != 2) {
                 return InvalidArgumentError("meta.set_attr: bad arity");
               }
               KP_ASSIGN_OR_RETURN(Bytes aid_bytes, payload[0].AsBytes());
               KP_ASSIGN_OR_RETURN(AuditId aid, AuditId::FromBytes(aid_bytes));
               KP_ASSIGN_OR_RETURN(std::string attr, payload[1].AsString());
               KP_RETURN_IF_ERROR(RegisterAttr(device, aid, attr));
               return WireValue(true);
             });

  install(
      "audit.resolve_path", false,
             [this](const std::string& device,
                    const WireValue::Array& payload) -> Result<WireValue> {
               if (payload.size() != 2) {
                 return InvalidArgumentError("audit.resolve_path: bad arity");
               }
               KP_ASSIGN_OR_RETURN(Bytes aid_bytes, payload[0].AsBytes());
               KP_ASSIGN_OR_RETURN(AuditId aid, AuditId::FromBytes(aid_bytes));
               KP_ASSIGN_OR_RETURN(int64_t as_of_ns, payload[1].AsInt());
               KP_ASSIGN_OR_RETURN(
                   std::string path,
                   ResolvePath(device, aid, SimTime(as_of_ns)));
               return WireValue(std::move(path));
             });

  install(
      "audit.history", false,
             [this](const std::string& device,
                    const WireValue::Array& payload) -> Result<WireValue> {
               if (payload.size() != 1) {
                 return InvalidArgumentError("audit.history: bad arity");
               }
               KP_ASSIGN_OR_RETURN(Bytes aid_bytes, payload[0].AsBytes());
               KP_ASSIGN_OR_RETURN(AuditId aid, AuditId::FromBytes(aid_bytes));
               KP_RETURN_IF_ERROR(log_.Verify());
               WireValue::Array out;
               for (const auto& record : log_.HistoryOf(device, aid)) {
                 WireValue::Struct r;
                 r.emplace("op", WireValue(static_cast<int64_t>(record.op)));
                 r.emplace("name", WireValue(record.name));
                 r.emplace("dir", WireValue(record.dir_id.ToBytes()));
                 r.emplace("cts", WireValue(record.client_time.nanos()));
                 out.push_back(WireValue(std::move(r)));
               }
               return WireValue(std::move(out));
             });

  install(
      "meta.upload_journal", true,
             [this](const std::string& device,
                    const WireValue::Array& payload) -> Result<WireValue> {
               if (payload.size() != 1) {
                 return InvalidArgumentError(
                     "meta.upload_journal: bad arity");
               }
               KP_ASSIGN_OR_RETURN(WireValue::Array raw, payload[0].AsArray());
               std::vector<JournalRecord> records;
               for (const auto& r : raw) {
                 JournalRecord record;
                 KP_ASSIGN_OR_RETURN(WireValue op_v, r.Field("op"));
                 KP_ASSIGN_OR_RETURN(int64_t op_int, op_v.AsInt());
                 record.op = static_cast<MetadataOp>(op_int);
                 KP_ASSIGN_OR_RETURN(WireValue aid_v, r.Field("aid"));
                 KP_ASSIGN_OR_RETURN(Bytes aid_bytes, aid_v.AsBytes());
                 KP_ASSIGN_OR_RETURN(record.audit_id,
                                     AuditId::FromBytes(aid_bytes));
                 KP_ASSIGN_OR_RETURN(WireValue did_v, r.Field("did"));
                 KP_ASSIGN_OR_RETURN(Bytes did_bytes, did_v.AsBytes());
                 KP_ASSIGN_OR_RETURN(record.dir_id,
                                     DirId::FromBytes(did_bytes));
                 KP_ASSIGN_OR_RETURN(WireValue pid_v, r.Field("pid"));
                 KP_ASSIGN_OR_RETURN(Bytes pid_bytes, pid_v.AsBytes());
                 KP_ASSIGN_OR_RETURN(record.parent_dir_id,
                                     DirId::FromBytes(pid_bytes));
                 KP_ASSIGN_OR_RETURN(WireValue name_v, r.Field("name"));
                 KP_ASSIGN_OR_RETURN(record.name, name_v.AsString());
                 KP_ASSIGN_OR_RETURN(WireValue ts_v, r.Field("ts"));
                 KP_ASSIGN_OR_RETURN(int64_t ts_int, ts_v.AsInt());
                 record.client_time = SimTime(ts_int);
                 records.push_back(std::move(record));
               }
               KP_RETURN_IF_ERROR(UploadJournal(device, records));
               return WireValue(true);
             });

  install(
      "audit.meta_log_tail", false,
      [this](const std::string& device,
             const WireValue::Array& payload) -> Result<WireValue> {
        if (payload.size() != 1) {
          return InvalidArgumentError("audit.meta_log_tail: bad arity");
        }
        KP_ASSIGN_OR_RETURN(int64_t next_seq, payload[0].AsInt());
        // Checkpoints vouch for the sealed prefix; only the tail after the
        // latest checkpoint is replayed per request. Cursors below the
        // truncation base are served from the cold tier, each segment
        // re-verified against its signed checkpoint first.
        KP_RETURN_IF_ERROR(log_.VerifyTail());
        uint64_t from = static_cast<uint64_t>(next_seq);
        WireValue::Array records;
        if (from < log_.base_seq()) {
          KP_ASSIGN_OR_RETURN(std::vector<MetadataRecord> all,
                              log_.AllEntriesFromSeq(from));
          for (const auto& record : all) {
            if (record.device_id == device) {
              records.push_back(record.ToWire());
            }
          }
        } else {
          for (const auto& record : log_.EntriesAfterSeq(from)) {
            if (record.device_id == device) {
              records.push_back(record.ToWire());
            }
          }
        }
        // "next" covers the whole log, not just this device's rows, so the
        // cursor advances past other devices' records too.
        WireValue::Struct out;
        out.emplace("next", WireValue(static_cast<int64_t>(log_.size())));
        out.emplace("entries", WireValue(std::move(records)));
        // Restore epoch: lets a remote cursor distinguish "service restored
        // from an older snapshot" (epoch bump, possibly next < cursor) from
        // a plain short read, and trigger an overlap-verified resync.
        out.emplace("epoch",
                    WireValue(static_cast<int64_t>(restore_epoch_)));
        // Checkpoint fingerprint: count plus latest hash, so an auditor can
        // tell a server-side truncation (benign cursor clamp) from a
        // restore-from-older-snapshot (full resync) by comparing chains.
        const auto& ckpts = log_.checkpoints();
        out.emplace("ckpt_count",
                    WireValue(static_cast<int64_t>(ckpts.size())));
        out.emplace("ckpt_hash",
                    WireValue(ckpts.empty() ? Bytes() : ckpts.back().hash));
        out.emplace("base",
                    WireValue(static_cast<int64_t>(log_.base_seq())));
        return WireValue(std::move(out));
      });

  // The signed checkpoint chain; the auditor verifies it client-side and
  // uses it to anchor catch-up and disambiguate truncation from restore.
  install(
      "audit.meta_checkpoints", false,
      [this](const std::string&,
             const WireValue::Array& payload) -> Result<WireValue> {
        if (!payload.empty()) {
          return InvalidArgumentError("audit.meta_checkpoints: bad arity");
        }
        WireValue::Array out;
        for (const auto& ckpt : log_.checkpoints()) {
          out.push_back(ckpt.ToWire());
        }
        return WireValue(std::move(out));
      });

  // One sealed cold segment by checkpoint id, for forensic replay of a
  // truncated prefix. Local medium only (no cloud blocking inside an RPC).
  install(
      "audit.meta_log_segment", false,
      [this](const std::string&,
             const WireValue::Array& payload) -> Result<WireValue> {
        if (payload.size() != 1) {
          return InvalidArgumentError("audit.meta_log_segment: bad arity");
        }
        KP_ASSIGN_OR_RETURN(int64_t index, payload[0].AsInt());
        if (segment_store_ == nullptr) {
          return UnavailableError("metadata service: no cold segment tier");
        }
        KP_ASSIGN_OR_RETURN(
            SealedSegment segment,
            segment_store_->Get("meta", static_cast<uint64_t>(index)));
        return segment.ToWire();
      });
}

}  // namespace keypad
