#include "src/replication/failover_client.h"

#include <string_view>
#include <utility>

namespace keypad {

namespace {

// Parses the replica index out of a serve-gate "NOT_LEADER:<i>" rejection.
bool ParseNotLeader(const Status& status, size_t* target) {
  if (status.code() != StatusCode::kFailedPrecondition) {
    return false;
  }
  constexpr std::string_view kTag = "NOT_LEADER:";
  const std::string& message = status.message();
  size_t pos = message.find(kTag);
  if (pos == std::string::npos) {
    return false;
  }
  size_t value = 0;
  bool any = false;
  for (size_t i = pos + kTag.size();
       i < message.size() && message[i] >= '0' && message[i] <= '9'; ++i) {
    value = value * 10 + static_cast<size_t>(message[i] - '0');
    any = true;
  }
  if (!any) {
    return false;
  }
  *target = value;
  return true;
}

// Failures worth trying another replica for: the transport gave up
// (crash, timeout, partition, open breaker) or the replica declined
// leadership (NOT_LEADER with a dead redirect target, DEMOTED mid-step-down).
bool RetryableElsewhere(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kFailedPrecondition;
}

}  // namespace

Result<WireValue> ReplicaRouter::CallOne(size_t idx, const std::string& method,
                                         const WireValue::Array& payload,
                                         const CallContext& ctx) {
  // Frame per attempt: the auth tag binds device/method/payload, not the
  // replica, so the same call replays cleanly against any of them (the
  // reply caches key on the dedup frame either way).
  return replicas_[idx]->Call(method,
                              framer_(method, WireValue::Array(payload)), ctx);
}

Result<WireValue> ReplicaRouter::Call(const std::string& method,
                                      const WireValue::Array& payload,
                                      const CallContext& ctx) {
  if (replicas_.size() == 1 || queue_ == nullptr) {
    return CallOne(0, method, payload, ctx);
  }
  constexpr size_t kNone = static_cast<size_t>(-1);
  const SimTime deadline = queue_->Now() + failover_.budget;
  size_t idx = leader_hint_;
  size_t tried_in_cycle = 0;
  // Most recent replica that answered at all (NOT_LEADER / DEMOTED): it is
  // alive and therefore the promotion candidate worth polling mid-failover.
  size_t last_alive = kNone;
  // Replicas whose transport just failed: skipped (and redirects back to
  // them ignored) until the probe backoff lapses, so one dead ex-leader
  // can't soak up a full retry ladder per cycle.
  std::vector<SimTime> dead_until(replicas_.size());
  // Redirect chains are bounded so two confused replicas pointing at each
  // other degrade into the failover cycle instead of looping.
  int redirect_budget = static_cast<int>(2 * replicas_.size());
  while (true) {
    Result<WireValue> result = CallOne(idx, method, payload, ctx);
    if (result.ok()) {
      leader_hint_ = idx;
      return result;
    }
    const Status& status = result.status();
    size_t redirect = 0;
    if (ParseNotLeader(status, &redirect) && redirect < replicas_.size() &&
        redirect != idx && dead_until[redirect] <= queue_->Now() &&
        redirect_budget-- > 0) {
      ++redirects_;
      last_alive = idx;
      idx = redirect;
      tried_in_cycle = 0;
      continue;
    }
    if (!RetryableElsewhere(status)) {
      return result;  // A real answer (denied, not found, ...).
    }
    if (replicas_[idx]->link()->disconnected()) {
      // The shared client link is down — every replica is equally
      // unreachable. Preserve offline fail-fast semantics.
      return result;
    }
    if (status.code() == StatusCode::kUnavailable) {
      dead_until[idx] = queue_->Now() + failover_.probe_backoff;
    } else {
      last_alive = idx;
    }
    ++failovers_;
    ++tried_in_cycle;
    // Advance, skipping replicas still in probe backoff. Skips count
    // toward the cycle so a fully-dead set still reaches the pause.
    for (size_t hop = 0; hop < replicas_.size(); ++hop) {
      idx = (idx + 1) % replicas_.size();
      if (dead_until[idx] <= queue_->Now()) {
        break;
      }
      ++tried_in_cycle;
    }
    if (tried_in_cycle >= replicas_.size()) {
      // Full cycle, no leader: mid-failover. Pace the retries until a
      // backup's promotion timer fires or the budget runs out, polling
      // the replica last seen alive rather than the dead ex-leader.
      if (queue_->Now() >= deadline) {
        return result;
      }
      queue_->AdvanceBy(failover_.pause);
      tried_in_cycle = 0;
      if (last_alive != kNone && dead_until[last_alive] <= queue_->Now()) {
        idx = last_alive;
      }
    }
  }
}

struct ReplicaRouter::AsyncRoute {
  std::string method;
  WireValue::Array payload;
  CallContext ctx;
  std::function<void(Result<WireValue>)> done;
  SimTime deadline;
  size_t idx = 0;
  size_t tried_in_cycle = 0;
  size_t last_alive = static_cast<size_t>(-1);
  std::vector<SimTime> dead_until;
  int redirect_budget = 0;
};

void ReplicaRouter::CallAsync(const std::string& method,
                              WireValue::Array payload,
                              const CallContext& ctx,
                              std::function<void(Result<WireValue>)> done) {
  if (replicas_.size() == 1 || queue_ == nullptr) {
    replicas_[0]->CallAsync(method, framer_(method, std::move(payload)), ctx,
                            std::move(done));
    return;
  }
  auto route = std::make_shared<AsyncRoute>();
  route->method = method;
  route->payload = std::move(payload);
  route->ctx = ctx;
  route->done = std::move(done);
  route->deadline = queue_->Now() + failover_.budget;
  route->idx = leader_hint_;
  route->dead_until.resize(replicas_.size());
  route->redirect_budget = static_cast<int>(2 * replicas_.size());
  StepAsync(std::move(route));
}

void ReplicaRouter::StepAsync(std::shared_ptr<AsyncRoute> route) {
  size_t idx = route->idx;
  replicas_[idx]->CallAsync(
      route->method,
      framer_(route->method, WireValue::Array(route->payload)), route->ctx,
      [this, route](Result<WireValue> result) {
        if (result.ok()) {
          leader_hint_ = route->idx;
          route->done(std::move(result));
          return;
        }
        const Status& status = result.status();
        size_t redirect = 0;
        if (ParseNotLeader(status, &redirect) &&
            redirect < replicas_.size() && redirect != route->idx &&
            route->dead_until[redirect] <= queue_->Now() &&
            route->redirect_budget-- > 0) {
          ++redirects_;
          route->last_alive = route->idx;
          route->idx = redirect;
          route->tried_in_cycle = 0;
          StepAsync(route);
          return;
        }
        if (!RetryableElsewhere(status) ||
            replicas_[route->idx]->link()->disconnected()) {
          route->done(std::move(result));
          return;
        }
        if (status.code() == StatusCode::kUnavailable) {
          route->dead_until[route->idx] =
              queue_->Now() + failover_.probe_backoff;
        } else {
          route->last_alive = route->idx;
        }
        ++failovers_;
        ++route->tried_in_cycle;
        for (size_t hop = 0; hop < replicas_.size(); ++hop) {
          route->idx = (route->idx + 1) % replicas_.size();
          if (route->dead_until[route->idx] <= queue_->Now()) {
            break;
          }
          ++route->tried_in_cycle;
        }
        if (route->tried_in_cycle < replicas_.size()) {
          StepAsync(route);
          return;
        }
        if (queue_->Now() >= route->deadline) {
          route->done(std::move(result));
          return;
        }
        route->tried_in_cycle = 0;
        queue_->ScheduleAfter(failover_.pause, [this, route] {
          if (route->last_alive != static_cast<size_t>(-1) &&
              route->dead_until[route->last_alive] <= queue_->Now()) {
            route->idx = route->last_alive;
          }
          StepAsync(route);
        });
      });
}

}  // namespace keypad
