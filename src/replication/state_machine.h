// The seam between the generic replication engine and a concrete service
// tier (DESIGN.md §10). A service plugs into a ReplicaSetEngine by
// wrapping itself in this interface; the engine never sees the service's
// concrete log-entry or delta types — deltas travel as opaque WireValues
// and chain entries are exported in a canonical wire form the engine only
// ever compares for equality.
//
// Contract, in replication terms:
//
//  * The service holds a hash-chained, append-only log plus derived state.
//    LogSize() is the chain length; it is the first (dominant) component of
//    the leadership claim, so longer chains win contests and reconciliation
//    orphans as little as possible.
//  * InstallReplicator hands the service the engine's ship function. The
//    service must call it with every sealed commit group's delta *before*
//    releasing the held client responses (the engine invokes `done` once
//    every in-sync backup acknowledged — or immediately when the leader is
//    the sole survivor).
//  * ApplyDelta applies a leader's delta on a backup. Chain continuity is
//    the real guard: a stale or forked leader's delta must fail
//    verification and mutate nothing.
//  * Snapshot/Restore transfer full state for reconciliation. Restore must
//    verify the adopted chain and must NOT carry private material the
//    service models as HSM-held.
//  * ExportEntries returns one canonical WireValue per log entry; entry k
//    describes chain position k. The engine computes the longest common
//    prefix of two exports to find the divergence point and surfaces the
//    local suffix past it as orphaned (duplicated in the worst case, never
//    lost).

#ifndef SRC_REPLICATION_STATE_MACHINE_H_
#define SRC_REPLICATION_STATE_MACHINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/result.h"
#include "src/wire/value.h"

namespace keypad {

class ReplicatedStateMachine {
 public:
  virtual ~ReplicatedStateMachine() = default;

  // Ship function the engine installs on the leader: `delta` is the wire
  // form of one sealed commit group (plus the state mutations it
  // describes), `entry_count` the number of log entries inside (stats
  // only), `done` releases the held client responses.
  using ShipFn = std::function<void(WireValue delta, size_t entry_count,
                                    std::function<void()> done)>;

  // Chain length (the leadership claim's dominant component).
  virtual uint64_t LogSize() const = 0;
  // Log prefix already streamed to backups; a rejoiner whose tail is below
  // this watermark would leave a gap and gets BEHIND.
  virtual uint64_t ShippedSeq() const = 0;

  // Full-state transfer for reconciliation.
  virtual Bytes Snapshot() const = 0;
  virtual Status Restore(const Bytes& snapshot) = 0;

  // Applies a leader's sealed delta on a backup (chain-verified).
  virtual Status ApplyDelta(const WireValue& delta) = 0;
  // Ships anything sealed locally but never streamed (promotion calls this
  // so a reconciled ex-leader's admin-path entries reach the backups).
  virtual void ReplicateNow() = 0;

  // Engine-installed hooks; both must take effect before the service binds
  // its RPC surface (the replicator forces the held-response path).
  virtual void InstallReplicator(ShipFn ship) = 0;
  virtual void InstallServeGate(std::function<Status()> gate) = 0;

  // Canonical wire form of every *in-memory* log entry, for divergence
  // detection. Entry k describes chain position ExportBaseSeq() + k: a
  // tier with checkpoint-anchored truncation (DESIGN.md §15) exports only
  // the retained suffix, and the engine aligns the two exports by absolute
  // sequence instead of by position.
  virtual std::vector<WireValue> ExportEntries() const = 0;

  // --- Truncation support (DESIGN.md §15). Tiers without a segmented log
  //     keep the defaults: base 0, no checkpoints, watermark ignored. ------

  // Absolute sequence of ExportEntries()[0]; 0 when nothing was truncated.
  virtual uint64_t ExportBaseSeq() const { return 0; }

  // One checkpoint fingerprint per sealed segment, in chain order. Two
  // replicas agreeing on a checkpoint hash agree on the whole prefix it
  // covers — how reconciliation proves a common prefix it can no longer
  // compare entry-by-entry (one side truncated it).
  struct ExportedCheckpoint {
    uint64_t end_seq = 0;
    Bytes hash;
  };
  virtual std::vector<ExportedCheckpoint> ExportCheckpoints() const {
    return {};
  }

  // Engine-installed truncation anchor: the log-prefix length known durable
  // (acknowledged) on every replica. A tier that truncates must never drop
  // entries past the watermark — the duplicated-but-never-lost orphan
  // invariant depends on a crashed peer's unacknowledged suffix surviving
  // reconciliation.
  virtual void InstallDurableWatermark(std::function<uint64_t()>) {}
};

}  // namespace keypad

#endif  // SRC_REPLICATION_STATE_MACHINE_H_
