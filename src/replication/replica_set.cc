#include "src/replication/replica_set.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace keypad {

namespace {

RpcOptions ReplRpcOptions(SimDuration ack_timeout) {
  RpcOptions options;
  // One attempt, no breaker: the replica set has its own failure handling
  // (out-of-sync marking, promotion timers) and must see failures promptly
  // rather than have the transport paper over them.
  options.timeout = ack_timeout;
  options.total_deadline = ack_timeout;
  options.retry.max_attempts = 1;
  options.breaker.enabled = false;
  return options;
}

}  // namespace

ReplicaSetEngine::ReplicaSetEngine(EventQueue* queue,
                                   ReplicaSetOptions options)
    : queue_(queue), options_(options) {}

ReplicaSetEngine::~ReplicaSetEngine() {
  for (auto& replica : replicas_) {
    if (replica->promote_event != EventQueue::kInvalidEvent) {
      queue_->Cancel(replica->promote_event);
    }
    if (replica->renew_event != EventQueue::kInvalidEvent) {
      queue_->Cancel(replica->renew_event);
    }
    ++replica->generation;  // Invalidate any still-scheduled callbacks.
  }
}

void ReplicaSetEngine::AddReplica(ReplicatedStateMachine* machine,
                                  RpcServer* server) {
  auto replica = std::make_unique<Replica>();
  replica->machine = machine;
  replica->server = server;
  replica->index = replicas_.size();
  size_t i = replica->index;
  replicas_.push_back(std::move(replica));

  machine->InstallServeGate([this, i]() -> Status {
    if (is_leader(i)) {
      return Status::Ok();
    }
    return FailedPreconditionError(
        "NOT_LEADER:" + std::to_string(replicas_[i]->view_leader));
  });
  machine->InstallReplicator(
      [this, i](WireValue delta, size_t entry_count,
                std::function<void()> done) {
        Ship(i, std::move(delta), entry_count, std::move(done));
      });
  machine->InstallDurableWatermark(
      [this, i]() -> uint64_t { return DurableWatermarkFor(i); });
}

uint64_t ReplicaSetEngine::DurableWatermarkFor(size_t i) const {
  const Replica& replica = *replicas_[i];
  if (replica.acked.size() != replicas_.size()) {
    return 0;  // Pre-Start(): nothing is known durable anywhere.
  }
  uint64_t watermark = replica.machine->LogSize();
  for (size_t j = 0; j < replicas_.size(); ++j) {
    if (j != i) {
      watermark = std::min(watermark, replica.acked[j]);
    }
  }
  return watermark;
}

void ReplicaSetEngine::Start() {
  const size_t n = replicas_.size();
  links_.resize(n * n);
  clients_.resize(n * n);
  for (size_t from = 0; from < n; ++from) {
    for (size_t to = 0; to < n; ++to) {
      if (from == to) {
        continue;
      }
      uint64_t seed =
          options_.seed ^ (static_cast<uint64_t>(from) << 40) ^
          (static_cast<uint64_t>(to) << 24) ^ 0x5e71;
      links_[from * n + to] = std::make_unique<NetworkLink>(
          queue_, options_.repl_profile, seed);
      clients_[from * n + to] = std::make_unique<RpcClient>(
          queue_, links_[from * n + to].get(), replicas_[to]->server,
          ReplRpcOptions(options_.ack_timeout));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    RegisterHandlers(i);
    Replica& replica = *replicas_[i];
    replica.view_leader = 0;
    replica.epoch = 1;
    replica.in_sync.assign(n, true);
    replica.acked.assign(n, 0);
    if (i == 0) {
      StartRenewals(0, /*immediately=*/false);
    } else {
      replica.lease.Grant(queue_->Now(), options_.lease.lease_duration);
      ArmPromote(i);
    }
  }
  started_ = true;
  Record("start", 0, 1);
}

bool ReplicaSetEngine::ClaimWins(const Claim& a, const Claim& b) {
  if (a.log_size != b.log_size) {
    return a.log_size > b.log_size;
  }
  if (a.epoch != b.epoch) {
    return a.epoch > b.epoch;
  }
  return a.index < b.index;
}

ReplicaSetEngine::Claim ReplicaSetEngine::ClaimOf(size_t i) const {
  return Claim{replicas_[i]->machine->LogSize(), replicas_[i]->epoch, i};
}

size_t ReplicaSetEngine::current_leader() const {
  std::optional<Claim> best;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (is_leader(i)) {
      Claim claim = ClaimOf(i);
      if (!best || ClaimWins(claim, *best)) {
        best = claim;
      }
    }
  }
  if (best) {
    return best->index;
  }
  // Mid-failover (or everything dead): the longest live chain, else 0.
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i]->crashed) {
      continue;
    }
    Claim claim = ClaimOf(i);
    if (!best || ClaimWins(claim, *best)) {
      best = claim;
    }
  }
  return best ? best->index : 0;
}

void ReplicaSetEngine::Record(const std::string& what, size_t replica,
                              uint64_t epoch) {
  timeline_.push_back({queue_->Now(), what, replica, epoch});
}

void ReplicaSetEngine::RegisterHandlers(size_t i) {
  RpcServer* server = replicas_[i]->server;

  // repl.lease [from, epoch, log_size] — the leader's renewal broadcast,
  // doubling as the NEW_LEADER announcement after a promotion.
  server->RegisterMethod(
      "repl.lease",
      [this, i](const WireValue::Array& params) -> Result<WireValue> {
        if (params.size() != 3) {
          return InvalidArgumentError("repl.lease: bad arity");
        }
        KP_ASSIGN_OR_RETURN(int64_t from_int, params[0].AsInt());
        KP_ASSIGN_OR_RETURN(int64_t epoch_int, params[1].AsInt());
        KP_ASSIGN_OR_RETURN(int64_t size_int, params[2].AsInt());
        size_t from = static_cast<size_t>(from_int);
        Claim theirs{static_cast<uint64_t>(size_int),
                     static_cast<uint64_t>(epoch_int), from};
        Replica& replica = *replicas_[i];
        bool granted = true;
        if (is_leader(i)) {
          // Competing leaders: resolve pairwise, loser steps down.
          if (ClaimWins(theirs, ClaimOf(i))) {
            StepDown(i);
            AdoptLeader(i, from, theirs.epoch);
            size_t leader = from;
            uint64_t epoch = theirs.epoch;
            uint64_t generation = replica.generation;
            queue_->ScheduleAfter(SimDuration(), [this, i, leader, epoch,
                                                  generation] {
              if (replicas_[i]->generation == generation) {
                FetchAndReconcile(i, leader, epoch, 8);
              }
            });
          } else {
            granted = false;
          }
        } else {
          AdoptLeader(i, from, theirs.epoch);
        }
        WireValue::Struct out;
        out.emplace("granted", WireValue(granted));
        out.emplace("leader",
                    WireValue(static_cast<int64_t>(replica.view_leader)));
        out.emplace("epoch", WireValue(static_cast<int64_t>(replica.epoch)));
        out.emplace("log_size", WireValue(static_cast<int64_t>(
                                    replica.machine->LogSize())));
        return WireValue(std::move(out));
      });

  // repl.append [from, epoch, log_size, delta] — a sealed commit-group
  // stream from the leader. Chain continuity is the real guard: a stale or
  // forked leader's delta fails verification and mutates nothing.
  server->RegisterMethod(
      "repl.append",
      [this, i](const WireValue::Array& params) -> Result<WireValue> {
        if (params.size() != 4) {
          return InvalidArgumentError("repl.append: bad arity");
        }
        KP_ASSIGN_OR_RETURN(int64_t from_int, params[0].AsInt());
        KP_ASSIGN_OR_RETURN(int64_t epoch_int, params[1].AsInt());
        KP_ASSIGN_OR_RETURN(int64_t size_int, params[2].AsInt());
        size_t from = static_cast<size_t>(from_int);
        Claim theirs{static_cast<uint64_t>(size_int),
                     static_cast<uint64_t>(epoch_int), from};
        Replica& replica = *replicas_[i];
        if (is_leader(i)) {
          if (!ClaimWins(theirs, ClaimOf(i))) {
            // Tell the sender it lost the leadership contest.
            return FailedPreconditionError("DEMOTED:" + std::to_string(i));
          }
          StepDown(i);
        }
        AdoptLeader(i, from, theirs.epoch);
        Status applied = replica.machine->ApplyDelta(params[3]);
        if (!applied.ok()) {
          // Our chain diverged from the leader's (we are an un-reconciled
          // fork). Self-heal: fetch the leader's state and rejoin.
          uint64_t generation = replica.generation;
          uint64_t epoch = theirs.epoch;
          queue_->ScheduleAfter(SimDuration(), [this, i, from, epoch,
                                                generation] {
            if (replicas_[i]->generation == generation) {
              FetchAndReconcile(i, from, epoch, 8);
            }
          });
          return applied;
        }
        return WireValue(true);
      });

  // repl.status — what this replica believes; rejoiners trust only rows
  // where the peer claims leadership itself.
  server->RegisterMethod(
      "repl.status",
      [this, i](const WireValue::Array& params) -> Result<WireValue> {
        (void)params;
        Replica& replica = *replicas_[i];
        WireValue::Struct out;
        out.emplace("leader",
                    WireValue(static_cast<int64_t>(replica.view_leader)));
        out.emplace("is_leader", WireValue(is_leader(i)));
        out.emplace("epoch", WireValue(static_cast<int64_t>(replica.epoch)));
        out.emplace("log_size", WireValue(static_cast<int64_t>(
                                    replica.machine->LogSize())));
        return WireValue(std::move(out));
      });

  // repl.snapshot — full state transfer for reconciliation.
  server->RegisterMethod(
      "repl.snapshot",
      [this, i](const WireValue::Array& params) -> Result<WireValue> {
        (void)params;
        WireValue::Struct out;
        out.emplace("snap", WireValue(replicas_[i]->machine->Snapshot()));
        return WireValue(std::move(out));
      });

  // repl.rejoin [from, log_size] — a reconciled backup asks back into the
  // synchronous-ack set. Only accepted when its tail is close enough that
  // the next delta will be contiguous (>= our shipped watermark); a stale
  // tail gets BEHIND and the rejoiner re-fetches the snapshot.
  server->RegisterMethod(
      "repl.rejoin",
      [this, i](const WireValue::Array& params) -> Result<WireValue> {
        if (params.size() != 2) {
          return InvalidArgumentError("repl.rejoin: bad arity");
        }
        KP_ASSIGN_OR_RETURN(int64_t from_int, params[0].AsInt());
        KP_ASSIGN_OR_RETURN(int64_t size_int, params[1].AsInt());
        size_t from = static_cast<size_t>(from_int);
        Replica& replica = *replicas_[i];
        if (!is_leader(i)) {
          return FailedPreconditionError(
              "NOT_LEADER:" + std::to_string(replica.view_leader));
        }
        uint64_t tail = static_cast<uint64_t>(size_int);
        if (tail < replica.machine->ShippedSeq() ||
            tail > replica.machine->LogSize()) {
          return FailedPreconditionError("BEHIND");
        }
        if (from < replica.in_sync.size()) {
          replica.in_sync[from] = true;
        }
        if (from < replica.acked.size()) {
          // The rejoiner just told us exactly how much chain it holds.
          replica.acked[from] = tail;
        }
        return WireValue(true);
      });
}

// --- Lease machinery. -------------------------------------------------------

void ReplicaSetEngine::ArmPromote(size_t i) {
  Replica& replica = *replicas_[i];
  if (replica.promote_event != EventQueue::kInvalidEvent) {
    queue_->Cancel(replica.promote_event);
  }
  uint64_t generation = replica.generation;
  SimTime at = replica.lease.PromoteAt(i, options_.lease);
  replica.promote_event = queue_->Schedule(at, [this, i, generation] {
    if (replicas_[i]->generation == generation) {
      replicas_[i]->promote_event = EventQueue::kInvalidEvent;
      OnPromoteTimer(i);
    }
  });
}

void ReplicaSetEngine::OnPromoteTimer(size_t i) {
  Replica& replica = *replicas_[i];
  if (replica.crashed || is_leader(i)) {
    return;
  }
  if (replica.lease.Held(queue_->Now())) {
    // Renewed since this timer was armed; wait out the new slot.
    ArmPromote(i);
    return;
  }
  Promote(i);
}

void ReplicaSetEngine::Promote(size_t i) {
  Replica& replica = *replicas_[i];
  replica.epoch += 1;
  replica.view_leader = i;
  replica.in_sync.assign(replicas_.size(), true);
  // A fresh leader has acknowledged nothing to anyone yet; its first
  // successful ship round re-establishes the durable watermark.
  replica.acked.assign(replicas_.size(), 0);
  if (replica.promote_event != EventQueue::kInvalidEvent) {
    queue_->Cancel(replica.promote_event);
    replica.promote_event = EventQueue::kInvalidEvent;
  }
  ++stats_.promotions;
  Record("promote", i, replica.epoch);
  // Anything sealed locally but never shipped (shouldn't exist on a clean
  // backup, but a reconciled ex-leader may hold admin-path entries).
  replica.machine->ReplicateNow();
  // The first renewal is the NEW_LEADER announcement — send it now.
  StartRenewals(i, /*immediately=*/true);
}

void ReplicaSetEngine::StartRenewals(size_t i, bool immediately) {
  Replica& replica = *replicas_[i];
  if (replica.renew_event != EventQueue::kInvalidEvent) {
    queue_->Cancel(replica.renew_event);
  }
  uint64_t generation = replica.generation;
  SimDuration delay =
      immediately ? SimDuration() : options_.lease.renew_interval;
  replica.renew_event = queue_->ScheduleAfter(delay, [this, i, generation] {
    if (replicas_[i]->generation == generation) {
      replicas_[i]->renew_event = EventQueue::kInvalidEvent;
      RenewTick(i);
    }
  });
}

void ReplicaSetEngine::RenewTick(size_t i) {
  Replica& replica = *replicas_[i];
  if (replica.crashed || !is_leader(i)) {
    return;
  }
  uint64_t generation = replica.generation;
  Claim mine = ClaimOf(i);
  for (size_t j = 0; j < replicas_.size(); ++j) {
    if (j == i) {
      continue;
    }
    WireValue::Array params;
    params.push_back(WireValue(static_cast<int64_t>(i)));
    params.push_back(WireValue(static_cast<int64_t>(mine.epoch)));
    params.push_back(WireValue(static_cast<int64_t>(mine.log_size)));
    ClientTo(i, j)->CallAsync(
        "repl.lease", std::move(params),
        [this, i, generation](Result<WireValue> result) {
          if (replicas_[i]->generation != generation || !result.ok()) {
            // Unreachable peer: its own lease timer handles the rest.
            return;
          }
          auto granted_v = result->Field("granted");
          if (!granted_v.ok() || granted_v->AsBool().value_or(true)) {
            return;
          }
          // The peer holds (or follows) a stronger claim: concede.
          auto leader_v = result->Field("leader");
          auto epoch_v = result->Field("epoch");
          auto size_v = result->Field("log_size");
          if (!leader_v.ok() || !epoch_v.ok() || !size_v.ok()) {
            return;
          }
          Claim theirs{
              static_cast<uint64_t>(size_v->AsInt().value_or(0)),
              static_cast<uint64_t>(epoch_v->AsInt().value_or(0)),
              static_cast<size_t>(leader_v->AsInt().value_or(0))};
          if (!ClaimWins(theirs, ClaimOf(i))) {
            return;  // Stale rejection; our next renewal settles it.
          }
          StepDown(i);
          AdoptLeader(i, theirs.index, theirs.epoch);
          FetchAndReconcile(i, theirs.index, theirs.epoch, 8);
        });
  }
  StartRenewals(i, /*immediately=*/false);
}

void ReplicaSetEngine::StepDown(size_t i) {
  Replica& replica = *replicas_[i];
  if (replica.renew_event != EventQueue::kInvalidEvent) {
    queue_->Cancel(replica.renew_event);
    replica.renew_event = EventQueue::kInvalidEvent;
  }
  // Dropping the ship pipeline drops the `done` callbacks with it: held
  // client responses are never released un-replicated — the clients time
  // out and retry against the winner.
  replica.ship_queue.clear();
  replica.ship_in_flight = false;
  ++replica.generation;
  ++stats_.step_downs;
  Record("step_down", i, replica.epoch);
}

void ReplicaSetEngine::AdoptLeader(size_t i, size_t leader, uint64_t epoch) {
  Replica& replica = *replicas_[i];
  replica.view_leader = leader;
  replica.epoch = epoch;
  replica.lease.Grant(queue_->Now(), options_.lease.lease_duration);
  ArmPromote(i);
}

// --- Replication (leader side). ---------------------------------------------

void ReplicaSetEngine::Ship(size_t i, WireValue delta, size_t entry_count,
                            std::function<void()> done) {
  Replica& replica = *replicas_[i];
  if (replica.crashed) {
    return;  // Responses already aborted with the crash.
  }
  replica.ship_queue.push_back(
      {std::move(delta), entry_count, std::move(done)});
  if (!replica.ship_in_flight) {
    StartShipRound(i);
  }
}

void ReplicaSetEngine::StartShipRound(size_t i) {
  Replica& replica = *replicas_[i];
  while (!replica.ship_queue.empty()) {
    PendingShip ship = std::move(replica.ship_queue.front());
    replica.ship_queue.pop_front();

    std::vector<size_t> targets;
    for (size_t j = 0; j < replicas_.size(); ++j) {
      if (j != i && replica.in_sync[j]) {
        targets.push_back(j);
      }
    }
    if (targets.empty()) {
      // Sole survivor (every backup out-of-sync or none configured):
      // availability over redundancy — release on the local seal alone.
      ship.done();
      continue;
    }

    replica.ship_in_flight = true;
    ++stats_.deltas_shipped;
    stats_.delta_entries_shipped += ship.entry_count;

    struct Round {
      size_t outstanding;
      std::function<void()> done;
    };
    auto round = std::make_shared<Round>();
    round->outstanding = targets.size();
    round->done = std::move(ship.done);
    uint64_t generation = replica.generation;
    Claim mine = ClaimOf(i);
    // An acked delta leaves the target holding our full chain as of now.
    const uint64_t shipped_size = mine.log_size;
    for (size_t j : targets) {
      WireValue::Array params;
      params.push_back(WireValue(static_cast<int64_t>(i)));
      params.push_back(WireValue(static_cast<int64_t>(mine.epoch)));
      params.push_back(WireValue(static_cast<int64_t>(mine.log_size)));
      params.push_back(ship.delta);
      ClientTo(i, j)->CallAsync(
          "repl.append", std::move(params),
          [this, i, j, generation, round,
           shipped_size](Result<WireValue> result) {
            Replica& replica = *replicas_[i];
            bool live = replica.generation == generation;
            if (live) {
              if (result.ok()) {
                ++stats_.append_acks;
                if (j < replica.acked.size() &&
                    replica.acked[j] < shipped_size) {
                  replica.acked[j] = shipped_size;
                }
              } else {
                ++stats_.append_failures;
                if (result.status().code() ==
                        StatusCode::kFailedPrecondition &&
                    result.status().message().rfind("DEMOTED", 0) == 0) {
                  // The backup outranks us: concede and reconcile.
                  StepDown(i);
                  AdoptLeader(i, j, replicas_[i]->epoch);
                  Rejoin(i);
                } else if (replica.in_sync[j]) {
                  // Unreachable or diverged: drop from the synchronous-ack
                  // set so one sick backup can't stall the shard.
                  replica.in_sync[j] = false;
                  Record("out_of_sync", j, replica.epoch);
                }
              }
            }
            if (--round->outstanding == 0) {
              if (replicas_[i]->generation == generation) {
                round->done();
                replicas_[i]->ship_in_flight = false;
                StartShipRound(i);
              }
            }
          });
    }
    return;  // One round in flight; the rest waits in the queue.
  }
  replica.ship_in_flight = false;
}

// --- Reconciliation. --------------------------------------------------------

void ReplicaSetEngine::Rejoin(size_t i) {
  Replica& replica = *replicas_[i];
  if (replica.crashed) {
    return;
  }
  uint64_t generation = replica.generation;

  struct Probe {
    size_t outstanding;
    std::vector<Claim> leaders;
  };
  auto probe = std::make_shared<Probe>();
  probe->outstanding = replicas_.size() - 1;
  if (probe->outstanding == 0) {
    StandAsCandidate(i);
    return;
  }
  for (size_t j = 0; j < replicas_.size(); ++j) {
    if (j == i) {
      continue;
    }
    ClientTo(i, j)->CallAsync(
        "repl.status", {},
        [this, i, j, generation, probe](Result<WireValue> result) {
          if (result.ok()) {
            auto is_leader_v = result->Field("is_leader");
            if (is_leader_v.ok() && is_leader_v->AsBool().value_or(false)) {
              auto epoch_v = result->Field("epoch");
              auto size_v = result->Field("log_size");
              probe->leaders.push_back(Claim{
                  static_cast<uint64_t>(
                      size_v.ok() ? size_v->AsInt().value_or(0) : 0),
                  static_cast<uint64_t>(
                      epoch_v.ok() ? epoch_v->AsInt().value_or(0) : 0),
                  j});
            }
          }
          if (--probe->outstanding > 0 ||
              replicas_[i]->generation != generation) {
            return;
          }
          if (probe->leaders.empty()) {
            // Nobody in sight claims leadership: stand for election.
            StandAsCandidate(i);
            return;
          }
          Claim best = probe->leaders[0];
          for (const Claim& claim : probe->leaders) {
            if (ClaimWins(claim, best)) {
              best = claim;
            }
          }
          FetchAndReconcile(i, best.index, best.epoch, 8);
        });
  }
}

void ReplicaSetEngine::StandAsCandidate(size_t i) {
  Replica& replica = *replicas_[i];
  replica.lease.Expire(queue_->Now());
  Record("candidate", i, replica.epoch);
  ArmPromote(i);  // Fires at now + promote_stagger * i (seniority slot).
}

void ReplicaSetEngine::FetchAndReconcile(size_t i, size_t leader,
                                         uint64_t epoch, int attempts_left) {
  Replica& replica = *replicas_[i];
  if (replica.crashed) {
    return;
  }
  if (attempts_left <= 0) {
    StandAsCandidate(i);
    return;
  }
  uint64_t generation = replica.generation;
  ++stats_.reconcile_rounds;
  ClientTo(i, leader)->CallAsync(
      "repl.snapshot", {},
      [this, i, leader, epoch, attempts_left,
       generation](Result<WireValue> result) {
        if (replicas_[i]->generation != generation) {
          return;
        }
        Replica& replica = *replicas_[i];
        if (!result.ok()) {
          // The leader vanished mid-transfer; probe afresh after a beat.
          queue_->ScheduleAfter(options_.lease.renew_interval,
                                [this, i, generation] {
                                  if (replicas_[i]->generation == generation) {
                                    Rejoin(i);
                                  }
                                });
          return;
        }
        auto snap_v = result->Field("snap");
        if (!snap_v.ok()) {
          StandAsCandidate(i);
          return;
        }
        auto snap = snap_v->AsBytes();
        if (!snap.ok()) {
          StandAsCandidate(i);
          return;
        }
        // Divergence detection: everything past the longest *proven*
        // common prefix of the two chains is sealed-but-orphaned —
        // surfaced to the forensic auditor, never silently dropped (it
        // may duplicate rows the surviving chain also carries;
        // duplicated, not lost). Two proofs compose, by absolute chain
        // sequence (either side may have truncated a checkpointed
        // prefix out of memory, DESIGN.md §15):
        //  (a) equal checkpoint records pin the whole segment prefix
        //      they cover, even when one side no longer holds those
        //      entries in memory;
        //  (b) an entry-aligned scan over the overlap both sides still
        //      hold extends the proof — equal wire entries at the same
        //      chain position imply an identical prefix below them,
        //      because every entry seals over its predecessor.
        std::vector<WireValue> local = replica.machine->ExportEntries();
        const uint64_t local_base = replica.machine->ExportBaseSeq();
        const std::vector<ReplicatedStateMachine::ExportedCheckpoint>
            local_ckpts = replica.machine->ExportCheckpoints();
        Status restored = replica.machine->Restore(*snap);
        if (!restored.ok()) {
          StandAsCandidate(i);
          return;
        }
        std::vector<WireValue> adopted = replica.machine->ExportEntries();
        const uint64_t adopted_base = replica.machine->ExportBaseSeq();
        const std::vector<ReplicatedStateMachine::ExportedCheckpoint>
            adopted_ckpts = replica.machine->ExportCheckpoints();
        uint64_t common = 0;
        size_t c = 0;
        while (c < local_ckpts.size() && c < adopted_ckpts.size() &&
               local_ckpts[c].end_seq == adopted_ckpts[c].end_seq &&
               local_ckpts[c].hash == adopted_ckpts[c].hash) {
          ++c;
        }
        if (c > 0) {
          common = local_ckpts[c - 1].end_seq;
        }
        const uint64_t local_end = local_base + local.size();
        const uint64_t overlap_lo = std::max(local_base, adopted_base);
        const uint64_t overlap_hi =
            std::min(local_end, adopted_base + adopted.size());
        uint64_t scan = overlap_lo;
        while (scan < overlap_hi &&
               local[scan - local_base] == adopted[scan - adopted_base]) {
          ++scan;
        }
        if (scan > overlap_lo) {
          common = std::max(common, scan);
        }
        for (uint64_t s = std::max(common, local_base); s < local_end;
             ++s) {
          orphaned_.push_back({i, std::move(local[s - local_base])});
          ++stats_.orphaned_entries;
        }
        AdoptLeader(i, leader, epoch);

        WireValue::Array params;
        params.push_back(WireValue(static_cast<int64_t>(i)));
        params.push_back(WireValue(
            static_cast<int64_t>(replica.machine->LogSize())));
        ClientTo(i, leader)->CallAsync(
            "repl.rejoin", std::move(params),
            [this, i, leader, epoch, attempts_left,
             generation](Result<WireValue> result) {
              if (replicas_[i]->generation != generation) {
                return;
              }
              if (result.ok()) {
                ++stats_.rejoins;
                Record("rejoin", i, replicas_[i]->epoch);
                return;
              }
              const std::string& message = result.status().message();
              if (message.rfind("BEHIND", 0) == 0) {
                // The leader sealed more while we transferred; refetch.
                FetchAndReconcile(i, leader, epoch, attempts_left - 1);
              } else if (message.rfind("NOT_LEADER", 0) == 0) {
                Rejoin(i);  // Leadership moved again; probe afresh.
              } else {
                queue_->ScheduleAfter(
                    options_.lease.renew_interval, [this, i, generation] {
                      if (replicas_[i]->generation == generation) {
                        Rejoin(i);
                      }
                    });
              }
            });
      });
}

// --- Fault injection. -------------------------------------------------------

void ReplicaSetEngine::NoteCrashed(size_t i) {
  Replica& replica = *replicas_[i];
  replica.crashed = true;
  ++replica.generation;
  if (replica.promote_event != EventQueue::kInvalidEvent) {
    queue_->Cancel(replica.promote_event);
    replica.promote_event = EventQueue::kInvalidEvent;
  }
  if (replica.renew_event != EventQueue::kInvalidEvent) {
    queue_->Cancel(replica.renew_event);
    replica.renew_event = EventQueue::kInvalidEvent;
  }
  replica.ship_queue.clear();
  replica.ship_in_flight = false;
  Record("crash", i, replica.epoch);
}

void ReplicaSetEngine::NoteRestarted(size_t i) {
  Replica& replica = *replicas_[i];
  replica.crashed = false;
  ++replica.generation;
  Record("restart", i, replica.epoch);
  Rejoin(i);
}

void ReplicaSetEngine::SetPartitioned(size_t i, bool partitioned) {
  const size_t n = replicas_.size();
  for (size_t j = 0; j < n; ++j) {
    if (j == i) {
      continue;
    }
    for (NetworkLink* link :
         {links_[i * n + j].get(), links_[j * n + i].get()}) {
      link->set_partitioned(NetworkLink::Direction::kForward, partitioned);
      link->set_partitioned(NetworkLink::Direction::kReverse, partitioned);
    }
  }
}

void ReplicaSetEngine::SchedulePartition(size_t i, SimTime at,
                                         SimDuration duration) {
  queue_->Schedule(at, [this, i] { SetPartitioned(i, true); });
  queue_->Schedule(at + duration, [this, i] { SetPartitioned(i, false); });
}

// --- Admin path. ------------------------------------------------------------

Status ReplicaSetEngine::MutateOnLeader(
    const std::function<Status(ReplicatedStateMachine*)>& mutate) {
  size_t leader = current_leader();
  KP_RETURN_IF_ERROR(mutate(replicas_[leader]->machine));
  replicas_[leader]->machine->ReplicateNow();
  return Status::Ok();
}

}  // namespace keypad
