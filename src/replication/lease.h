// Lease state machine for replicated service tiers (DESIGN.md §9–§10).
//
// Leadership in a replica set rests on time-bounded leases: the leader
// broadcasts a renewal every `renew_interval`, and each backup that hears
// it extends its local grant by `lease_duration`. A backup whose grant
// expires considers leadership vacant and arms a promotion timer at
//
//   promote_at = lease_expiry + promote_stagger * replica_index
//
// — the deterministic seniority rule: the lowest-index live backup fires
// first and announces itself (its first renewal broadcast doubles as the
// NEW_LEADER announcement), which re-grants every later candidate's lease
// and disarms their staggered timers. Simulated clocks share one event
// queue, so no clock-skew epsilon is modelled.

#ifndef SRC_REPLICATION_LEASE_H_
#define SRC_REPLICATION_LEASE_H_

#include <cstdint>

#include "src/sim/time.h"

namespace keypad {

struct LeaseOptions {
  // How long one grant lasts without renewal.
  SimDuration lease_duration = SimDuration::Seconds(2);
  // Leader broadcast period. Several renewals fit in one lease, so a
  // single lost renewal does not trigger a spurious failover.
  SimDuration renew_interval = SimDuration::Millis(500);
  // Seniority stagger between candidate promotion slots.
  SimDuration promote_stagger = SimDuration::Millis(400);
};

// One replica's local view of the lease it granted to the current leader.
class LeaseState {
 public:
  void Grant(SimTime now, SimDuration lease_duration) {
    expiry_ = now + lease_duration;
  }
  // Forces the grant to lapse (e.g. a rejoining replica with no leader in
  // sight becomes an immediate promotion candidate).
  void Expire(SimTime now) { expiry_ = now; }

  bool Held(SimTime now) const { return now < expiry_; }
  SimTime expiry() const { return expiry_; }

  // When this replica's promotion slot opens (seniority rule above).
  SimTime PromoteAt(size_t replica_index, const LeaseOptions& options) const {
    return expiry_ +
           options.promote_stagger * static_cast<int64_t>(replica_index);
  }

 private:
  SimTime expiry_;
};

}  // namespace keypad

#endif  // SRC_REPLICATION_LEASE_H_
