// Generic replica-aware call router (DESIGN.md §9–§10): the client-side
// half of the replication substrate, factored out of the per-tier stubs.
//
// Constructed with the RpcClients of a whole replica set, the router
// remembers which replica last answered (the leader hint), follows
// NOT_LEADER:<i> redirects from the serve gate, and on kUnavailable
// (crash, partition, open breaker) fails over to the next replica. When a
// full cycle finds no leader — mid-failover, before a backup's promotion
// timer fires — it pauses briefly and retries until the failover budget
// runs out, so client goodput resumes as soon as a backup promotes
// instead of erroring out.
//
// Tiers differ only in how a call is framed (which device identity and
// secret sign the auth tag), so the router takes a framing callback and
// the typed stubs (KeyServiceClient, MetadataServiceClient) stay thin
// marshalling shims on top.

#ifndef SRC_REPLICATION_FAILOVER_CLIENT_H_
#define SRC_REPLICATION_FAILOVER_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/rpc/rpc.h"
#include "src/sim/event_queue.h"
#include "src/util/result.h"

namespace keypad {

struct FailoverOptions {
  // Overall budget for riding out one leader failover (should cover
  // lease_duration + promote_stagger * replicas + slack).
  SimDuration budget = SimDuration::Seconds(8);
  // Pause between full no-leader cycles.
  SimDuration pause = SimDuration::Millis(100);
  // How long a replica whose transport just failed (crash, partition,
  // timeout ladder exhausted) is skipped before being probed again.
  // While a failover is in flight this keeps the stub polling the live
  // promotion candidate instead of burning another retry ladder on the
  // dead ex-leader, so goodput resumes ~one lease after the kill.
  SimDuration probe_backoff = SimDuration::Seconds(3);
};

class ReplicaRouter {
 public:
  // Frames one attempt of `method` around `payload` (auth tag, dedup
  // frame). Called per attempt: the tag binds the method, not the replica,
  // so the same payload re-frames cleanly against any of them.
  using Framer = std::function<WireValue::Array(const std::string& method,
                                                WireValue::Array payload)>;

  // Single-endpoint router (no replicas) — collapses to a plain call.
  ReplicaRouter(RpcClient* rpc, Framer framer)
      : framer_(std::move(framer)), replicas_{rpc} {}

  // Replica-set router: one RpcClient per replica, in replica-index order
  // (NOT_LEADER redirects are indices into this list).
  ReplicaRouter(EventQueue* queue, std::vector<RpcClient*> replicas,
                Framer framer, FailoverOptions failover = {})
      : queue_(queue),
        framer_(std::move(framer)),
        replicas_(std::move(replicas)),
        failover_(failover) {}

  // Replica-aware virtual-blocking call: leader hint, NOT_LEADER redirects,
  // failover cycles, paced retries under the failover budget. Collapses to
  // a plain single call with one replica. The CallContext (priority class,
  // deadline) rides down into every per-replica attempt's KPR2 frame; a
  // REJECTED fault (kResourceExhausted) is a real answer from a live
  // leader, not a failover trigger — it returns straight to the caller.
  Result<WireValue> Call(const std::string& method,
                         const WireValue::Array& payload) {
    return Call(method, payload, CallContext{});
  }
  Result<WireValue> Call(const std::string& method,
                         const WireValue::Array& payload,
                         const CallContext& ctx);
  // Same state machine, asynchronous.
  void CallAsync(const std::string& method, WireValue::Array payload,
                 std::function<void(Result<WireValue>)> done) {
    CallAsync(method, std::move(payload), CallContext{}, std::move(done));
  }
  void CallAsync(const std::string& method, WireValue::Array payload,
                 const CallContext& ctx,
                 std::function<void(Result<WireValue>)> done);

  RpcClient* rpc() const { return replicas_.front(); }
  size_t replica_count() const { return replicas_.size(); }
  size_t leader_hint() const { return leader_hint_; }
  // How often a call moved to another replica after a failure, and how
  // often a NOT_LEADER redirect was followed.
  uint64_t failovers() const { return failovers_; }
  uint64_t redirects() const { return redirects_; }

 private:
  struct AsyncRoute;

  // One framed attempt against replica `idx`.
  Result<WireValue> CallOne(size_t idx, const std::string& method,
                            const WireValue::Array& payload,
                            const CallContext& ctx);
  void StepAsync(std::shared_ptr<AsyncRoute> route);

  EventQueue* queue_ = nullptr;
  Framer framer_;
  std::vector<RpcClient*> replicas_;
  size_t leader_hint_ = 0;
  FailoverOptions failover_;
  uint64_t failovers_ = 0;
  uint64_t redirects_ = 0;
};

}  // namespace keypad

#endif  // SRC_REPLICATION_FAILOVER_CLIENT_H_
