// Generic replica-set engine: lease-based primary/backup failover with
// hash-chain reconciliation (DESIGN.md §9–§10).
//
// One ReplicaSetEngine coordinates R colocated replicas of the same
// service tier (primary + backups) over per-pair LAN links that are
// independent of the laptop's client link. The tier plugs in through the
// ReplicatedStateMachine seam; the engine itself never sees concrete log
// or delta types. The protocol, in one paragraph:
//
//  * The leader streams every sealed commit group (plus the state
//    mutations it describes) to all in-sync backups via repl.append and
//    releases the held client responses only after every in-sync backup
//    acknowledged — so a client-acknowledged log record exists on every
//    in-sync replica and can never be lost to a single-replica failure.
//  * Leadership rests on time-bounded leases: the leader broadcasts
//    repl.lease every renew_interval; each backup extends its local grant
//    by lease_duration. A backup whose grant lapses arms a promotion timer
//    at expiry + promote_stagger * replica_index (deterministic seniority:
//    the lowest-index live backup wins), bumps the epoch, and announces
//    itself — its first renewal broadcast IS the NEW_LEADER announcement.
//  * Competing leaders (a healed partition) resolve pairwise by ClaimWins:
//    longer log chain first (preserves the most records), then higher
//    epoch, then lower replica index. The loser steps down and reconciles.
//  * Reconciliation (rejoin after crash/step-down): fetch the winner's
//    snapshot, find the longest common chain prefix, surface every local
//    sealed entry past the divergence point as *orphaned* (handed to the
//    ForensicAuditor — duplicated in the worst case, never lost), adopt
//    the winner's state, and re-enter the set as an in-sync backup.
//
// The repl.* RPC surface rides the ordinary RpcServer of each replica, so
// a crashed replica (server down) naturally swallows replication traffic
// and partitions are injected on the pair links.
//
// Everything here is async (CallAsync only): engine code runs inside
// scheduled events, where a virtually-blocking Call() would re-enter the
// event queue.

#ifndef SRC_REPLICATION_REPLICA_SET_H_
#define SRC_REPLICATION_REPLICA_SET_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/net/link.h"
#include "src/net/profile.h"
#include "src/replication/lease.h"
#include "src/replication/state_machine.h"
#include "src/rpc/rpc.h"
#include "src/sim/event_queue.h"

namespace keypad {

struct ReplicaSetOptions {
  LeaseOptions lease;
  // How long the leader waits for one backup's append acknowledgement
  // before marking it out-of-sync (availability over redundancy: the
  // response still releases, carried by the surviving in-sync set).
  SimDuration ack_timeout = SimDuration::Seconds(1);
  // Replication links are datacenter-internal.
  NetworkProfile repl_profile = LanProfile();
  // Seeds the per-pair link fault streams.
  uint64_t seed = 0;
};

// One entry of the deterministic failover timeline (bench_availability
// compares two same-seed runs of this record for bit-equality).
struct FailoverEvent {
  SimTime at;
  std::string what;  // start|promote|step_down|rejoin|out_of_sync|candidate
  size_t replica = 0;
  uint64_t epoch = 0;
};

// A replica's sealed-but-divergent log entry surfaced by reconciliation,
// in the tier's canonical wire form (ExportEntries). Tier adapters convert
// back to their typed entry for the forensic auditor.
struct OrphanedWireEntry {
  size_t replica = 0;
  WireValue entry;
};

class ReplicaSetEngine {
 public:
  ReplicaSetEngine(EventQueue* queue, ReplicaSetOptions options = {});
  ~ReplicaSetEngine();

  ReplicaSetEngine(const ReplicaSetEngine&) = delete;
  ReplicaSetEngine& operator=(const ReplicaSetEngine&) = delete;

  // Adds one replica (index = call order; index 0 starts as leader).
  // Installs the machine's replicator and serve gate, so call before the
  // service binds its RPC surface — the replicator forces the async path.
  void AddReplica(ReplicatedStateMachine* machine, RpcServer* server);

  // Builds the pair links/clients, registers repl.* on every replica's
  // server, grants the initial leases, and starts the leader's renewals.
  void Start();

  size_t size() const { return replicas_.size(); }
  ReplicatedStateMachine* machine(size_t i) const {
    return replicas_[i]->machine;
  }
  RpcServer* rpc_server(size_t i) const { return replicas_[i]->server; }

  // The authoritative replica right now: the best self-claimed live leader
  // (ClaimWins), else the live replica with the longest chain, else 0.
  size_t current_leader() const;
  // Who replica i currently believes leads (its serve gate redirects here).
  size_t leader_view(size_t i) const { return replicas_[i]->view_leader; }
  uint64_t epoch(size_t i) const { return replicas_[i]->epoch; }
  bool is_leader(size_t i) const {
    return !replicas_[i]->crashed && replicas_[i]->view_leader == i;
  }

  // --- Fault injection (Deployment drives these). -------------------------

  // The replica's process died: stop its timers and drop its in-flight
  // replication work. The caller handles Snapshot/set_down.
  void NoteCrashed(size_t i);
  // The replica's process is back (state restored by the caller): rejoin
  // the set — probe for a leader, reconcile chains, re-enter as backup, or
  // stand as a promotion candidate if no leader answers.
  void NoteRestarted(size_t i);
  // Silently blackholes all replication traffic to and from replica i
  // (both directions of every incident pair link). The client link is not
  // touched — a partitioned primary still serves, which is exactly the
  // split-brain scenario reconciliation exists for.
  void SetPartitioned(size_t i, bool partitioned);
  void SchedulePartition(size_t i, SimTime at, SimDuration duration);

  // --- Admin path. --------------------------------------------------------

  // Runs a state mutation on the current leader's machine and ships the
  // resulting log suffix to the backups immediately (no client response
  // waits on an admin mutation, but the backups must still learn it before
  // they can take over enforcing it).
  Status MutateOnLeader(
      const std::function<Status(ReplicatedStateMachine*)>& mutate);

  // --- Audit / introspection. ---------------------------------------------

  const std::vector<FailoverEvent>& timeline() const { return timeline_; }
  const std::vector<OrphanedWireEntry>& orphaned() const { return orphaned_; }

  struct Stats {
    uint64_t deltas_shipped = 0;
    uint64_t delta_entries_shipped = 0;
    uint64_t append_acks = 0;
    uint64_t append_failures = 0;
    uint64_t promotions = 0;
    uint64_t step_downs = 0;
    uint64_t rejoins = 0;
    uint64_t reconcile_rounds = 0;
    uint64_t orphaned_entries = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct PendingShip {
    WireValue delta;
    size_t entry_count = 0;
    std::function<void()> done;
  };

  struct Replica {
    ReplicatedStateMachine* machine = nullptr;
    RpcServer* server = nullptr;
    size_t index = 0;
    size_t view_leader = 0;
    uint64_t epoch = 1;
    LeaseState lease;
    EventQueue::EventId promote_event = EventQueue::kInvalidEvent;
    EventQueue::EventId renew_event = EventQueue::kInvalidEvent;
    bool crashed = false;
    // Leader-side view of which peers are in the synchronous-ack set.
    std::vector<bool> in_sync;
    // Leader-side: the chain length each peer is known to have durably
    // applied (updated on append acks and rejoins). The minimum over the
    // peers is this replica's durable watermark — the truncation anchor
    // handed to the tier (DESIGN.md §15): a segmented log never drops an
    // entry some replica has not yet acknowledged.
    std::vector<uint64_t> acked;
    // Bumped on crash/step-down so stale async callbacks self-cancel.
    uint64_t generation = 0;
    // Leader-side ship pipeline: one round in flight, rest queued (keeps
    // deltas applying in order on the backups).
    std::deque<PendingShip> ship_queue;
    bool ship_in_flight = false;
  };

  // Claim comparison: (chain length desc, epoch desc, index asc). The
  // longest chain wins so reconciliation orphans as little as possible.
  struct Claim {
    uint64_t log_size = 0;
    uint64_t epoch = 0;
    size_t index = 0;
  };
  static bool ClaimWins(const Claim& a, const Claim& b);
  Claim ClaimOf(size_t i) const;

  // Truncation anchor for replica i: min chain length acknowledged across
  // every peer (own LogSize when sole replica; 0 until Start()).
  uint64_t DurableWatermarkFor(size_t i) const;

  RpcClient* ClientTo(size_t from, size_t to) const {
    return clients_[from * replicas_.size() + to].get();
  }

  void RegisterHandlers(size_t i);
  void Record(const std::string& what, size_t replica, uint64_t epoch);

  // Lease machinery.
  void ArmPromote(size_t i);
  void OnPromoteTimer(size_t i);
  void Promote(size_t i);
  void StartRenewals(size_t i, bool immediately);
  void RenewTick(size_t i);
  void StepDown(size_t i);
  void AdoptLeader(size_t i, size_t leader, uint64_t epoch);

  // Replication (leader side).
  void Ship(size_t i, WireValue delta, size_t entry_count,
            std::function<void()> done);
  void StartShipRound(size_t i);

  // Reconciliation (rejoin / post-step-down).
  void Rejoin(size_t i);
  void FetchAndReconcile(size_t i, size_t leader, uint64_t epoch,
                         int attempts_left);
  void StandAsCandidate(size_t i);

  EventQueue* queue_;
  ReplicaSetOptions options_;
  bool started_ = false;
  std::vector<std::unique_ptr<Replica>> replicas_;
  // links_[from * R + to] / clients_[from * R + to]: from's private path to
  // to's server (diagonal unused).
  std::vector<std::unique_ptr<NetworkLink>> links_;
  std::vector<std::unique_ptr<RpcClient>> clients_;
  std::vector<FailoverEvent> timeline_;
  std::vector<OrphanedWireEntry> orphaned_;
  Stats stats_;
};

}  // namespace keypad

#endif  // SRC_REPLICATION_REPLICA_SET_H_
