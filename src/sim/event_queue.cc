#include "src/sim/event_queue.h"

namespace keypad {

EventQueue::EventId EventQueue::Schedule(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    at = now_;
  }
  uint64_t seq = next_seq_++;
  Key key(at, seq);
  events_.emplace(key, std::move(fn));
  index_.emplace(seq, key);
  return seq;
}

bool EventQueue::Cancel(EventId id) {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return false;
  }
  events_.erase(it->second);
  index_.erase(it);
  return true;
}

bool EventQueue::IsPending(EventId id) const {
  return index_.find(id) != index_.end();
}

void EventQueue::AdvanceBy(SimDuration d) { RunUntil(now_ + d); }

void EventQueue::RunUntil(SimTime t) {
  while (!events_.empty()) {
    auto it = events_.begin();
    if (it->first.first > t) {
      break;
    }
    now_ = it->first.first;
    auto fn = std::move(it->second);
    index_.erase(it->first.second);
    events_.erase(it);
    fn();
  }
  if (t > now_) {
    now_ = t;
  }
}

void EventQueue::RunUntilIdle() {
  while (!events_.empty()) {
    auto it = events_.begin();
    now_ = it->first.first;
    auto fn = std::move(it->second);
    index_.erase(it->first.second);
    events_.erase(it);
    fn();
  }
}

bool EventQueue::RunUntilFlag(const bool* flag, SimTime deadline) {
  while (!*flag) {
    if (events_.empty()) {
      // Nothing can ever set the flag; treat as timeout at the deadline.
      if (deadline != SimTime::Max() && deadline > now_) {
        now_ = deadline;
      }
      return false;
    }
    auto it = events_.begin();
    if (it->first.first > deadline) {
      now_ = deadline;
      return false;
    }
    now_ = it->first.first;
    auto fn = std::move(it->second);
    index_.erase(it->first.second);
    events_.erase(it);
    fn();
  }
  return true;
}

}  // namespace keypad
