#include "src/sim/event_queue.h"

namespace keypad {

EventQueue::Node* EventQueue::Merge(Node* a, Node* b) {
  if (a == nullptr) {
    return b;
  }
  if (b == nullptr) {
    return a;
  }
  if (Before(b, a)) {
    Node* t = a;
    a = b;
    b = t;
  }
  b->sibling = a->child;
  a->child = b;
  return a;
}

EventQueue::Node* EventQueue::MergePairs(Node* first) {
  // Pass 1: merge adjacent pairs left to right, stacking the merged roots
  // (LIFO through the sibling pointer).
  Node* stack = nullptr;
  while (first != nullptr) {
    Node* a = first;
    Node* b = a->sibling;
    if (b == nullptr) {
      a->sibling = stack;
      stack = a;
      break;
    }
    Node* rest = b->sibling;
    Node* m = Merge(a, b);
    m->sibling = stack;
    stack = m;
    first = rest;
  }
  // Pass 2: fold the stack — equivalent to merging right to left.
  Node* root = nullptr;
  while (stack != nullptr) {
    Node* next = stack->sibling;
    stack->sibling = nullptr;
    root = Merge(root, stack);
    stack = next;
  }
  return root;
}

EventQueue::Node* EventQueue::Acquire() {
  if (free_.empty()) {
    auto slab = std::make_unique<Node[]>(kNodesPerSlab);
    uint32_t base = static_cast<uint32_t>(slabs_.size() * kNodesPerSlab);
    // Reverse order so lower slots come off the free list first; any fixed
    // order keeps runs reproducible.
    for (size_t i = kNodesPerSlab; i > 0; --i) {
      slab[i - 1].slot = base + static_cast<uint32_t>(i - 1);
      free_.push_back(&slab[i - 1]);
    }
    slabs_.push_back(std::move(slab));
  }
  Node* n = free_.back();
  free_.pop_back();
  n->in_use = true;
  n->cancelled = false;
  n->child = nullptr;
  n->sibling = nullptr;
  return n;
}

void EventQueue::Release(Node* n) {
  n->fn.Reset();
  n->in_use = false;
  ++n->gen;  // Invalidate any EventId still referring to this slot.
  free_.push_back(n);
}

EventQueue::Node* EventQueue::NodeFor(EventId id) const {
  uint64_t slot1 = id >> 32;
  if (slot1 == 0 || slot1 > slabs_.size() * kNodesPerSlab) {
    return nullptr;
  }
  size_t slot = static_cast<size_t>(slot1 - 1);
  Node* n = &slabs_[slot / kNodesPerSlab][slot % kNodesPerSlab];
  if (!n->in_use || n->gen != static_cast<uint32_t>(id)) {
    return nullptr;
  }
  return n;
}

EventQueue::EventId EventQueue::Schedule(SimTime at, EventFn fn) {
  if (at < now_) {
    at = now_;
  }
  Node* n = Acquire();
  n->at = at;
  n->seq = next_seq_++;
  n->fn = std::move(fn);
  root_ = Merge(root_, n);
  ++live_;
  return (static_cast<uint64_t>(n->slot) + 1) << 32 | n->gen;
}

bool EventQueue::Cancel(EventId id) {
  Node* n = NodeFor(id);
  if (n == nullptr || n->cancelled) {
    return false;
  }
  n->cancelled = true;
  // Drop the callback (and whatever it captured) now, matching the seed
  // semantics where Cancel erased the closure immediately. The node itself
  // is reclaimed when it surfaces at the heap root.
  n->fn.Reset();
  --live_;
  return true;
}

bool EventQueue::IsPending(EventId id) const {
  const Node* n = NodeFor(id);
  return n != nullptr && !n->cancelled;
}

EventQueue::Node* EventQueue::PeekLive() {
  while (root_ != nullptr && root_->cancelled) {
    Node* n = root_;
    root_ = MergePairs(n->child);
    Release(n);
  }
  return root_;
}

EventFn EventQueue::TakeDue() {
  Node* n = root_;
  root_ = MergePairs(n->child);
  now_ = n->at;
  EventFn fn = std::move(n->fn);
  --live_;
  ++executed_;
  Release(n);
  return fn;
}

void EventQueue::AdvanceBy(SimDuration d) { RunUntil(now_ + d); }

void EventQueue::RunUntil(SimTime t) {
  while (Node* head = PeekLive()) {
    if (head->at > t) {
      break;
    }
    EventFn fn = TakeDue();
    fn();
  }
  if (t > now_) {
    now_ = t;
  }
}

void EventQueue::RunUntilIdle() {
  while (PeekLive() != nullptr) {
    EventFn fn = TakeDue();
    fn();
  }
}

bool EventQueue::RunUntilFlag(const bool* flag, SimTime deadline) {
  while (!*flag) {
    Node* head = PeekLive();
    if (head == nullptr) {
      // Nothing can ever set the flag; treat as timeout at the deadline.
      if (deadline != SimTime::Max() && deadline > now_) {
        now_ = deadline;
      }
      return false;
    }
    if (head->at > deadline) {
      now_ = deadline;
      return false;
    }
    EventFn fn = TakeDue();
    fn();
  }
  return true;
}

}  // namespace keypad
