// Discrete-event simulation core: a virtual clock plus a time-ordered queue
// of callbacks.
//
// The Keypad client, the audit services, the network links, and the key-cache
// expiry logic all share one EventQueue. Two styles of use coexist:
//
//  * Event-driven: Schedule(t, fn) runs fn when virtual time reaches t
//    (key expirations, in-flight RPC deliveries, background unlock threads).
//  * Virtually-blocking: code that models a thread performing a synchronous
//    operation calls AdvanceBy() to charge CPU time and RunUntilFlag() to
//    "block" on a response. Both pump due events, so background activity
//    interleaves exactly as it would in a real multithreaded system, but
//    deterministically.
//
// Nested pumping is allowed (an event handler may itself block on an RPC);
// every event fires exactly once, in time order, whichever loop pumps it.
//
// Implementation (DESIGN.md §11): an intrusive pairing heap over
// slab-allocated event nodes, ordered by (time, insertion sequence) so
// same-timestamp events fire in FIFO order. The seed implementation kept a
// std::map<(time,seq), std::function> plus a second id→key map, paying two
// red-black-tree allocations plus rebalancing per event and an O(log n)
// double lookup per Cancel. Here a node is a fixed-size slot recycled
// through a free list, the callback is a small-buffer EventFn stored inline
// in the node, and an EventId encodes the node's slot and a generation
// counter, making Cancel and IsPending O(1): cancellation tombstones the
// node in place and the pump discards tombstones when they surface at the
// heap root.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/sim/time.h"

namespace keypad {

class EventQueue {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (clamped to Now()).
  EventId Schedule(SimTime at, EventFn fn);
  EventId ScheduleAfter(SimDuration delay, EventFn fn) {
    return Schedule(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Returns false if it already ran or was
  // cancelled. O(1): the node is tombstoned in place (its callback and the
  // resources it captured are released immediately) and reclaimed when it
  // reaches the heap root.
  bool Cancel(EventId id);

  // True if `id` is still pending. O(1).
  bool IsPending(EventId id) const;

  // Advances the clock by `d`, running every event due in (now, now+d] in
  // time order. Models a thread spending `d` of CPU/think time.
  void AdvanceBy(SimDuration d);

  // Runs events until `t`, then sets the clock to `t`.
  void RunUntil(SimTime t);

  // Runs all pending events (including ones they schedule), jumping the clock
  // forward. Stops when the queue is empty.
  void RunUntilIdle();

  // Pumps events in time order until *flag becomes true or `deadline` passes.
  // Returns true if the flag was set. On timeout the clock is left at
  // `deadline`. Models a thread blocking on a condition with a timeout.
  bool RunUntilFlag(const bool* flag, SimTime deadline = SimTime::Max());

  // Number of pending (scheduled, not yet run or cancelled) events.
  size_t pending_count() const { return live_; }

  // Lifetime counters for the sim-core bench: events executed, and the
  // high-water node count (slab slots ever allocated — the queue's memory
  // footprint is this many fixed-size nodes, regardless of churn).
  uint64_t executed_count() const { return executed_; }
  size_t allocated_nodes() const { return slabs_.size() * kNodesPerSlab; }

 private:
  struct Node {
    SimTime at;
    uint64_t seq = 0;  // Insertion sequence: FIFO tie-break within a time.
    Node* child = nullptr;
    Node* sibling = nullptr;
    uint32_t slot = 0;  // Index into the slab array; fixed for life.
    uint32_t gen = 1;   // Bumped on free, so stale EventIds never resolve.
    bool in_use = false;
    bool cancelled = false;
    EventFn fn;
  };

  static constexpr size_t kNodesPerSlab = 256;

  // a fires strictly before b. (at, seq) is a total order: deterministic.
  static bool Before(const Node* a, const Node* b) {
    return a->at < b->at || (a->at == b->at && a->seq < b->seq);
  }
  static Node* Merge(Node* a, Node* b);
  // Standard two-pass pairing-heap combine of a popped root's child list,
  // iterative so million-event queues never recurse.
  static Node* MergePairs(Node* first);

  Node* Acquire();
  void Release(Node* n);
  // Discards tombstoned (cancelled) nodes at the root; returns the earliest
  // live node without popping it, or nullptr if none remain.
  Node* PeekLive();
  // Pops the root (must be PeekLive()'s result), advances the clock to it,
  // releases its node, and returns its callback ready to invoke.
  EventFn TakeDue();

  Node* NodeFor(EventId id) const;

  SimTime now_ = SimTime::Epoch();
  uint64_t next_seq_ = 1;
  Node* root_ = nullptr;
  std::vector<std::unique_ptr<Node[]>> slabs_;
  std::vector<Node*> free_;
  size_t live_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace keypad

#endif  // SRC_SIM_EVENT_QUEUE_H_
