// Discrete-event simulation core: a virtual clock plus a time-ordered queue
// of callbacks.
//
// The Keypad client, the audit services, the network links, and the key-cache
// expiry logic all share one EventQueue. Two styles of use coexist:
//
//  * Event-driven: Schedule(t, fn) runs fn when virtual time reaches t
//    (key expirations, in-flight RPC deliveries, background unlock threads).
//  * Virtually-blocking: code that models a thread performing a synchronous
//    operation calls AdvanceBy() to charge CPU time and RunUntilFlag() to
//    "block" on a response. Both pump due events, so background activity
//    interleaves exactly as it would in a real multithreaded system, but
//    deterministically.
//
// Nested pumping is allowed (an event handler may itself block on an RPC);
// every event fires exactly once, in time order, whichever loop pumps it.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "src/sim/time.h"

namespace keypad {

class EventQueue {
 public:
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (clamped to Now()).
  EventId Schedule(SimTime at, std::function<void()> fn);
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn) {
    return Schedule(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Returns false if it already ran or was cancelled.
  bool Cancel(EventId id);

  // True if `id` is still pending.
  bool IsPending(EventId id) const;

  // Advances the clock by `d`, running every event due in (now, now+d] in
  // time order. Models a thread spending `d` of CPU/think time.
  void AdvanceBy(SimDuration d);

  // Runs events until `t`, then sets the clock to `t`.
  void RunUntil(SimTime t);

  // Runs all pending events (including ones they schedule), jumping the clock
  // forward. Stops when the queue is empty.
  void RunUntilIdle();

  // Pumps events in time order until *flag becomes true or `deadline` passes.
  // Returns true if the flag was set. On timeout the clock is left at
  // `deadline`. Models a thread blocking on a condition with a timeout.
  bool RunUntilFlag(const bool* flag, SimTime deadline = SimTime::Max());

  size_t pending_count() const { return events_.size(); }

 private:
  // Key orders by (time, insertion sequence) for deterministic FIFO ties.
  using Key = std::pair<SimTime, uint64_t>;

  SimTime now_ = SimTime::Epoch();
  uint64_t next_seq_ = 1;
  std::map<Key, std::function<void()>> events_;
  std::map<EventId, Key> index_;
};

}  // namespace keypad

#endif  // SRC_SIM_EVENT_QUEUE_H_
