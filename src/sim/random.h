// Deterministic PRNG for simulation decisions (workload generation, jitter,
// failure injection). NOT for cryptographic material — key generation uses
// crypto::SecureRandom (ChaCha20 DRBG) instead.
//
// Implementation: xoshiro256** seeded via SplitMix64.

#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace keypad {

class SimRandom {
 public:
  explicit SimRandom(uint64_t seed);

  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t UniformU64(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Exponentially distributed with the given mean (> 0).
  double Exponential(double mean);

  // Zipf-like rank selection in [0, n): rank r chosen with weight
  // 1/(r+1)^theta. Used to model skewed file popularity.
  size_t Zipf(size_t n, double theta);

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformU64(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child generator; lets subsystems draw from
  // separate streams so adding draws in one doesn't perturb another.
  SimRandom Fork();

 private:
  uint64_t s_[4];
};

}  // namespace keypad

#endif  // SRC_SIM_RANDOM_H_
