// Virtual time types for the discrete-event simulation.
//
// SimTime is an absolute instant, SimDuration a span; both are nanosecond
// int64 wrappers. The whole Keypad evaluation runs on this virtual timeline:
// network links charge RTTs, the cost model charges CPU time, and the key
// cache expires keys — all in virtual nanoseconds, so experiments are
// deterministic and run in milliseconds of wall-clock time.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>
#include <ostream>

namespace keypad {

class SimDuration {
 public:
  constexpr SimDuration() : ns_(0) {}
  constexpr explicit SimDuration(int64_t ns) : ns_(ns) {}

  static constexpr SimDuration Nanos(int64_t n) { return SimDuration(n); }
  static constexpr SimDuration Micros(int64_t n) {
    return SimDuration(n * 1000);
  }
  static constexpr SimDuration Millis(int64_t n) {
    return SimDuration(n * 1000000);
  }
  static constexpr SimDuration Seconds(int64_t n) {
    return SimDuration(n * 1000000000);
  }
  static constexpr SimDuration Minutes(int64_t n) {
    return Seconds(n * 60);
  }
  static constexpr SimDuration Hours(int64_t n) { return Minutes(n * 60); }
  static constexpr SimDuration Days(int64_t n) { return Hours(n * 24); }
  // Fractional-second constructor, e.g. FromSecondsF(0.0001) = 100 us.
  static constexpr SimDuration FromSecondsF(double s) {
    return SimDuration(static_cast<int64_t>(s * 1e9));
  }
  static constexpr SimDuration FromMillisF(double ms) {
    return SimDuration(static_cast<int64_t>(ms * 1e6));
  }

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t micros() const { return ns_ / 1000; }
  constexpr int64_t millis() const { return ns_ / 1000000; }
  constexpr int64_t seconds() const { return ns_ / 1000000000; }
  constexpr double seconds_f() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double millis_f() const { return static_cast<double>(ns_) / 1e6; }

  constexpr SimDuration operator+(SimDuration o) const {
    return SimDuration(ns_ + o.ns_);
  }
  constexpr SimDuration operator-(SimDuration o) const {
    return SimDuration(ns_ - o.ns_);
  }
  constexpr SimDuration operator*(int64_t k) const {
    return SimDuration(ns_ * k);
  }
  constexpr SimDuration operator/(int64_t k) const {
    return SimDuration(ns_ / k);
  }
  SimDuration& operator+=(SimDuration o) {
    ns_ += o.ns_;
    return *this;
  }
  SimDuration& operator-=(SimDuration o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr auto operator<=>(const SimDuration&) const = default;

 private:
  int64_t ns_;
};

class SimTime {
 public:
  constexpr SimTime() : ns_(0) {}
  constexpr explicit SimTime(int64_t ns) : ns_(ns) {}

  static constexpr SimTime Epoch() { return SimTime(0); }
  // A sentinel later than any meaningful simulated instant.
  static constexpr SimTime Max() { return SimTime(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double seconds_f() const { return static_cast<double>(ns_) / 1e9; }

  constexpr SimTime operator+(SimDuration d) const {
    return SimTime(ns_ + d.nanos());
  }
  constexpr SimTime operator-(SimDuration d) const {
    return SimTime(ns_ - d.nanos());
  }
  constexpr SimDuration operator-(SimTime o) const {
    return SimDuration(ns_ - o.ns_);
  }
  SimTime& operator+=(SimDuration d) {
    ns_ += d.nanos();
    return *this;
  }
  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  int64_t ns_;
};

inline std::ostream& operator<<(std::ostream& os, SimDuration d) {
  return os << d.seconds_f() << "s";
}
inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << "@" << t.seconds_f() << "s";
}

}  // namespace keypad

#endif  // SRC_SIM_TIME_H_
