#include "src/sim/random.h"

#include <cmath>

namespace keypad {

namespace {
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

SimRandom::SimRandom(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t SimRandom::NextU64() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t SimRandom::UniformU64(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t SimRandom::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  UniformU64(static_cast<uint64_t>(hi - lo) + 1));
}

double SimRandom::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool SimRandom::Bernoulli(double p) {
  if (p <= 0) {
    return false;
  }
  if (p >= 1) {
    return true;
  }
  return UniformDouble() < p;
}

double SimRandom::Exponential(double mean) {
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

size_t SimRandom::Zipf(size_t n, double theta) {
  // Inverse-CDF on the (unnormalized) harmonic weights, computed by linear
  // scan. n is small (directory sizes, file counts) so this is fine.
  double total = 0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
  }
  double target = UniformDouble() * total;
  double acc = 0;
  for (size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    if (acc >= target) {
      return r;
    }
  }
  return n - 1;
}

SimRandom SimRandom::Fork() { return SimRandom(NextU64() ^ 0xA5A5A5A5DEADBEEFull); }

}  // namespace keypad
