// EventFn: the simulator's callback type — a move-only callable wrapper
// with small-buffer optimization.
//
// std::function forced every scheduled event through a heap allocation for
// any capture list bigger than the library's (tiny) internal buffer, and
// required copyability. Simulator events are fired exactly once and never
// copied, so EventFn stores the callable inline when it fits (64 bytes
// covers the common timer/completion lambdas) and falls back to the heap
// only for large capture sets. Dispatch is three function pointers in a
// static ops table rather than a virtual object, keeping the node footprint
// fixed for the event queue's slab allocator.

#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace keypad {

class EventFn {
 public:
  // Inline storage size. Sized so a lambda capturing a handful of pointers
  // plus a SimTime or two stays allocation-free.
  static constexpr size_t kInlineSize = 64;

  EventFn() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& fn) {  // NOLINT: implicit by design, mirrors std::function.
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = InlineOps<D>();
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(fn));
      ops_ = HeapOps<D>();
    }
  }

  EventFn(EventFn&& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->move(buf_, other.buf_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      if (other.ops_ != nullptr) {
        other.ops_->move(buf_, other.buf_);
        ops_ = other.ops_;
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* buf);
    // Move-constructs into dst from src and destroys src's value.
    void (*move)(void* dst, void* src) noexcept;
    void (*destroy)(void* buf);
  };

  template <typename D>
  static const Ops* InlineOps() {
    static constexpr Ops ops = {
        [](void* buf) { (*std::launder(reinterpret_cast<D*>(buf)))(); },
        [](void* dst, void* src) noexcept {
          D* s = std::launder(reinterpret_cast<D*>(src));
          ::new (dst) D(std::move(*s));
          s->~D();
        },
        [](void* buf) { std::launder(reinterpret_cast<D*>(buf))->~D(); },
    };
    return &ops;
  }

  template <typename D>
  static const Ops* HeapOps() {
    static constexpr Ops ops = {
        [](void* buf) { (**reinterpret_cast<D**>(buf))(); },
        [](void* dst, void* src) noexcept {
          *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
        },
        [](void* buf) { delete *reinterpret_cast<D**>(buf); },
    };
    return &ops;
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

}  // namespace keypad

#endif  // SRC_SIM_EVENT_FN_H_
