#include "src/keyservice/shard_ring.h"

#include <algorithm>

namespace keypad {

// splitmix64 finalizer: enough avalanche to scatter vnode indices and the
// already-random audit IDs around the ring.
uint64_t ShardRing::Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

ShardRing::ShardRing(size_t shard_count, uint64_t seed, int vnodes_per_shard)
    : shard_count_(shard_count == 0 ? 1 : shard_count), seed_(seed) {
  if (vnodes_per_shard < 1) {
    vnodes_per_shard = 1;
  }
  points_.reserve(shard_count_ * static_cast<size_t>(vnodes_per_shard));
  for (uint32_t shard = 0; shard < shard_count_; ++shard) {
    for (int vnode = 0; vnode < vnodes_per_shard; ++vnode) {
      uint64_t position = Mix(seed_ ^ Mix((static_cast<uint64_t>(shard) << 32) |
                                          static_cast<uint64_t>(vnode)));
      points_.emplace_back(position, shard);
    }
  }
  std::sort(points_.begin(), points_.end());
}

size_t ShardRing::ShardFor(const AuditId& audit_id) const {
  if (shard_count_ == 1) {
    return 0;
  }
  Bytes bytes = audit_id.ToBytes();
  uint64_t h = 0;
  for (size_t i = 0; i < 8 && i < bytes.size(); ++i) {
    h = (h << 8) | bytes[i];
  }
  h = Mix(seed_ ^ h);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const std::pair<uint64_t, uint32_t>& point, uint64_t value) {
        return point.first < value;
      });
  if (it == points_.end()) {
    it = points_.begin();  // Wrap around the ring.
  }
  return it->second;
}

}  // namespace keypad
