#include "src/keyservice/auth.h"

#include "src/cryptocore/hmac.h"
#include "src/wire/binary_codec.h"

namespace keypad {

Bytes ComputeAuthTag(const Bytes& device_secret, const std::string& method,
                     const WireValue::Array& payload) {
  Bytes material = BytesOf(method);
  Bytes encoded = BinaryEncode(WireValue(payload));
  Append(material, encoded);
  return HmacSha256(device_secret, material);
}

WireValue::Array FrameAuthedCall(const std::string& device_id,
                                 const Bytes& device_secret,
                                 const std::string& method,
                                 WireValue::Array payload) {
  WireValue::Array params;
  params.reserve(payload.size() + 2);
  params.push_back(WireValue(device_id));
  params.push_back(WireValue(ComputeAuthTag(device_secret, method, payload)));
  for (auto& p : payload) {
    params.push_back(std::move(p));
  }
  return params;
}

Result<AuthedCall> SplitAuthedCall(const WireValue::Array& params) {
  if (params.size() < 2) {
    return InvalidArgumentError("authed call: missing frame");
  }
  AuthedCall call;
  KP_ASSIGN_OR_RETURN(call.device_id, params[0].AsString());
  KP_ASSIGN_OR_RETURN(call.tag, params[1].AsBytes());
  call.payload.assign(params.begin() + 2, params.end());
  return call;
}

Status VerifyAuthTag(const Bytes& device_secret, const std::string& method,
                     const AuthedCall& call) {
  Bytes expected = ComputeAuthTag(device_secret, method, call.payload);
  if (!ConstantTimeEquals(expected, call.tag)) {
    return PermissionDeniedError("authed call: bad tag");
  }
  return Status::Ok();
}

}  // namespace keypad
