#include "src/keyservice/key_service_client.h"

#include <string_view>
#include <utility>

#include "src/keyservice/auth.h"

namespace keypad {

namespace {

// Parses the replica index out of a serve-gate "NOT_LEADER:<i>" rejection.
bool ParseNotLeader(const Status& status, size_t* target) {
  if (status.code() != StatusCode::kFailedPrecondition) {
    return false;
  }
  constexpr std::string_view kTag = "NOT_LEADER:";
  const std::string& message = status.message();
  size_t pos = message.find(kTag);
  if (pos == std::string::npos) {
    return false;
  }
  size_t value = 0;
  bool any = false;
  for (size_t i = pos + kTag.size();
       i < message.size() && message[i] >= '0' && message[i] <= '9'; ++i) {
    value = value * 10 + static_cast<size_t>(message[i] - '0');
    any = true;
  }
  if (!any) {
    return false;
  }
  *target = value;
  return true;
}

// Failures worth trying another replica for: the transport gave up
// (crash, timeout, partition, open breaker) or the replica declined
// leadership (NOT_LEADER with a dead redirect target, DEMOTED mid-step-down).
bool RetryableElsewhere(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kFailedPrecondition;
}

}  // namespace

Result<WireValue> KeyServiceClient::CallOne(size_t idx,
                                            const std::string& method,
                                            const WireValue::Array& payload) {
  // Frame per attempt: the auth tag binds device/method/payload, not the
  // replica, so the same call replays cleanly against any of them (the
  // reply caches key on the dedup frame either way).
  return replicas_[idx]->Call(
      method, FrameAuthedCall(device_id_, device_secret_, method,
                              WireValue::Array(payload)));
}

Result<WireValue> KeyServiceClient::RoutedCall(
    const std::string& method, const WireValue::Array& payload) {
  if (replicas_.size() == 1 || queue_ == nullptr) {
    return CallOne(0, method, payload);
  }
  constexpr size_t kNone = static_cast<size_t>(-1);
  const SimTime deadline = queue_->Now() + failover_.budget;
  size_t idx = leader_hint_;
  size_t tried_in_cycle = 0;
  // Most recent replica that answered at all (NOT_LEADER / DEMOTED): it is
  // alive and therefore the promotion candidate worth polling mid-failover.
  size_t last_alive = kNone;
  // Replicas whose transport just failed: skipped (and redirects back to
  // them ignored) until the probe backoff lapses, so one dead ex-leader
  // can't soak up a full retry ladder per cycle.
  std::vector<SimTime> dead_until(replicas_.size());
  // Redirect chains are bounded so two confused replicas pointing at each
  // other degrade into the failover cycle instead of looping.
  int redirect_budget = static_cast<int>(2 * replicas_.size());
  while (true) {
    Result<WireValue> result = CallOne(idx, method, payload);
    if (result.ok()) {
      leader_hint_ = idx;
      return result;
    }
    const Status& status = result.status();
    size_t redirect = 0;
    if (ParseNotLeader(status, &redirect) && redirect < replicas_.size() &&
        redirect != idx && dead_until[redirect] <= queue_->Now() &&
        redirect_budget-- > 0) {
      ++redirects_;
      last_alive = idx;
      idx = redirect;
      tried_in_cycle = 0;
      continue;
    }
    if (!RetryableElsewhere(status)) {
      return result;  // A real answer (denied, not found, ...).
    }
    if (replicas_[idx]->link()->disconnected()) {
      // The shared client link is down — every replica is equally
      // unreachable. Preserve offline fail-fast semantics.
      return result;
    }
    if (status.code() == StatusCode::kUnavailable) {
      dead_until[idx] = queue_->Now() + failover_.probe_backoff;
    } else {
      last_alive = idx;
    }
    ++failovers_;
    ++tried_in_cycle;
    // Advance, skipping replicas still in probe backoff. Skips count
    // toward the cycle so a fully-dead set still reaches the pause.
    for (size_t hop = 0; hop < replicas_.size(); ++hop) {
      idx = (idx + 1) % replicas_.size();
      if (dead_until[idx] <= queue_->Now()) {
        break;
      }
      ++tried_in_cycle;
    }
    if (tried_in_cycle >= replicas_.size()) {
      // Full cycle, no leader: mid-failover. Pace the retries until a
      // backup's promotion timer fires or the budget runs out, polling
      // the replica last seen alive rather than the dead ex-leader.
      if (queue_->Now() >= deadline) {
        return result;
      }
      queue_->AdvanceBy(failover_.pause);
      tried_in_cycle = 0;
      if (last_alive != kNone && dead_until[last_alive] <= queue_->Now()) {
        idx = last_alive;
      }
    }
  }
}

struct KeyServiceClient::AsyncRoute {
  std::string method;
  WireValue::Array payload;
  std::function<void(Result<WireValue>)> done;
  SimTime deadline;
  size_t idx = 0;
  size_t tried_in_cycle = 0;
  size_t last_alive = static_cast<size_t>(-1);
  std::vector<SimTime> dead_until;
  int redirect_budget = 0;
};

void KeyServiceClient::RoutedCallAsync(
    const std::string& method, WireValue::Array payload,
    std::function<void(Result<WireValue>)> done) {
  if (replicas_.size() == 1 || queue_ == nullptr) {
    replicas_[0]->CallAsync(
        method,
        FrameAuthedCall(device_id_, device_secret_, method,
                        std::move(payload)),
        std::move(done));
    return;
  }
  auto route = std::make_shared<AsyncRoute>();
  route->method = method;
  route->payload = std::move(payload);
  route->done = std::move(done);
  route->deadline = queue_->Now() + failover_.budget;
  route->idx = leader_hint_;
  route->dead_until.resize(replicas_.size());
  route->redirect_budget = static_cast<int>(2 * replicas_.size());
  StepAsync(std::move(route));
}

void KeyServiceClient::StepAsync(std::shared_ptr<AsyncRoute> route) {
  size_t idx = route->idx;
  replicas_[idx]->CallAsync(
      route->method,
      FrameAuthedCall(device_id_, device_secret_, route->method,
                      WireValue::Array(route->payload)),
      [this, route](Result<WireValue> result) {
        if (result.ok()) {
          leader_hint_ = route->idx;
          route->done(std::move(result));
          return;
        }
        const Status& status = result.status();
        size_t redirect = 0;
        if (ParseNotLeader(status, &redirect) &&
            redirect < replicas_.size() && redirect != route->idx &&
            route->dead_until[redirect] <= queue_->Now() &&
            route->redirect_budget-- > 0) {
          ++redirects_;
          route->last_alive = route->idx;
          route->idx = redirect;
          route->tried_in_cycle = 0;
          StepAsync(route);
          return;
        }
        if (!RetryableElsewhere(status) ||
            replicas_[route->idx]->link()->disconnected()) {
          route->done(std::move(result));
          return;
        }
        if (status.code() == StatusCode::kUnavailable) {
          route->dead_until[route->idx] =
              queue_->Now() + failover_.probe_backoff;
        } else {
          route->last_alive = route->idx;
        }
        ++failovers_;
        ++route->tried_in_cycle;
        for (size_t hop = 0; hop < replicas_.size(); ++hop) {
          route->idx = (route->idx + 1) % replicas_.size();
          if (route->dead_until[route->idx] <= queue_->Now()) {
            break;
          }
          ++route->tried_in_cycle;
        }
        if (route->tried_in_cycle < replicas_.size()) {
          StepAsync(route);
          return;
        }
        if (queue_->Now() >= route->deadline) {
          route->done(std::move(result));
          return;
        }
        route->tried_in_cycle = 0;
        queue_->ScheduleAfter(failover_.pause, [this, route] {
          if (route->last_alive != static_cast<size_t>(-1) &&
              route->dead_until[route->last_alive] <= queue_->Now()) {
            route->idx = route->last_alive;
          }
          StepAsync(route);
        });
      });
}

Result<Bytes> KeyServiceClient::CreateKey(const AuditId& audit_id) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  auto result = RoutedCall("key.create", payload);
  if (!result.ok()) {
    return result.status();
  }
  return result->AsBytes();
}

void KeyServiceClient::CreateKeyAsync(
    const AuditId& audit_id, std::function<void(Result<Bytes>)> done) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  RoutedCallAsync("key.create", std::move(payload),
                  [done = std::move(done)](Result<WireValue> result) {
                    if (!result.ok()) {
                      done(result.status());
                      return;
                    }
                    done(result->AsBytes());
                  });
}

Result<Bytes> KeyServiceClient::GetKey(const AuditId& audit_id, AccessOp op) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  payload.push_back(WireValue(static_cast<int64_t>(op)));
  auto result = RoutedCall("key.get", payload);
  if (!result.ok()) {
    return result.status();
  }
  return result->AsBytes();
}

void KeyServiceClient::GetKeyAsync(const AuditId& audit_id, AccessOp op,
                                   std::function<void(Result<Bytes>)> done) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  payload.push_back(WireValue(static_cast<int64_t>(op)));
  RoutedCallAsync("key.get", std::move(payload),
                  [done = std::move(done)](Result<WireValue> result) {
                    if (!result.ok()) {
                      done(result.status());
                      return;
                    }
                    done(result->AsBytes());
                  });
}

namespace {
WireValue::Array KeyBatchPayload(const std::vector<AuditId>& audit_ids) {
  WireValue::Array ids;
  for (const auto& id : audit_ids) {
    ids.push_back(WireValue(id.ToBytes()));
  }
  WireValue::Array payload;
  payload.push_back(WireValue(std::move(ids)));
  return payload;
}

Result<std::vector<std::pair<AuditId, Bytes>>> ParseKeyPairs(
    const WireValue& result) {
  KP_ASSIGN_OR_RETURN(WireValue::Array entries, result.AsArray());
  std::vector<std::pair<AuditId, Bytes>> out;
  for (const auto& entry : entries) {
    KP_ASSIGN_OR_RETURN(WireValue id_value, entry.Field("id"));
    KP_ASSIGN_OR_RETURN(Bytes id_bytes, id_value.AsBytes());
    KP_ASSIGN_OR_RETURN(AuditId id, AuditId::FromBytes(id_bytes));
    KP_ASSIGN_OR_RETURN(WireValue key_value, entry.Field("key"));
    KP_ASSIGN_OR_RETURN(Bytes key, key_value.AsBytes());
    out.emplace_back(id, std::move(key));
  }
  return out;
}
}  // namespace

Result<std::vector<std::pair<AuditId, Bytes>>> KeyServiceClient::GetKeys(
    const std::vector<AuditId>& audit_ids) {
  auto result = RoutedCall("key.get_batch", KeyBatchPayload(audit_ids));
  if (!result.ok()) {
    return result.status();
  }
  return ParseKeyPairs(*result);
}

namespace {
Result<KeyServiceClient::GroupFetch> ParseGroupFetch(
    const WireValue& result) {
  KeyServiceClient::GroupFetch out;
  KP_ASSIGN_OR_RETURN(WireValue demand, result.Field("demand"));
  KP_ASSIGN_OR_RETURN(out.demand_key, demand.AsBytes());
  KP_ASSIGN_OR_RETURN(WireValue prefetched, result.Field("prefetched"));
  KP_ASSIGN_OR_RETURN(WireValue::Array entries, prefetched.AsArray());
  for (const auto& entry : entries) {
    KP_ASSIGN_OR_RETURN(WireValue id_value, entry.Field("id"));
    KP_ASSIGN_OR_RETURN(Bytes id_bytes, id_value.AsBytes());
    KP_ASSIGN_OR_RETURN(AuditId id, AuditId::FromBytes(id_bytes));
    KP_ASSIGN_OR_RETURN(WireValue key_value, entry.Field("key"));
    KP_ASSIGN_OR_RETURN(Bytes key, key_value.AsBytes());
    out.prefetched.emplace_back(id, std::move(key));
  }
  return out;
}

WireValue::Array GroupFetchPayload(const AuditId& demand_id,
                                   const std::vector<AuditId>& prefetch_ids) {
  WireValue::Array ids;
  for (const auto& id : prefetch_ids) {
    ids.push_back(WireValue(id.ToBytes()));
  }
  WireValue::Array payload;
  payload.push_back(WireValue(demand_id.ToBytes()));
  payload.push_back(WireValue(std::move(ids)));
  return payload;
}
}  // namespace

Result<KeyServiceClient::GroupFetch> KeyServiceClient::FetchGroup(
    const AuditId& demand_id, const std::vector<AuditId>& prefetch_ids) {
  auto result =
      RoutedCall("key.fetch_group", GroupFetchPayload(demand_id, prefetch_ids));
  if (!result.ok()) {
    return result.status();
  }
  return ParseGroupFetch(*result);
}

void KeyServiceClient::FetchGroupAsync(
    const AuditId& demand_id, const std::vector<AuditId>& prefetch_ids,
    std::function<void(Result<GroupFetch>)> done) {
  RoutedCallAsync("key.fetch_group",
                  GroupFetchPayload(demand_id, prefetch_ids),
                  [done = std::move(done)](Result<WireValue> result) {
                    if (!result.ok()) {
                      done(result.status());
                      return;
                    }
                    done(ParseGroupFetch(*result));
                  });
}

void KeyServiceClient::GetKeysAsync(
    const std::vector<AuditId>& audit_ids,
    std::function<void(Result<std::vector<std::pair<AuditId, Bytes>>>)>
        done) {
  RoutedCallAsync("key.get_batch", KeyBatchPayload(audit_ids),
                  [done = std::move(done)](Result<WireValue> result) {
                    if (!result.ok()) {
                      done(result.status());
                      return;
                    }
                    done(ParseKeyPairs(*result));
                  });
}

namespace {
WireValue::Array JournalPayload(
    const std::vector<KeyServiceClient::JournalEntry>& entries) {
  WireValue::Array raw;
  for (const auto& entry : entries) {
    WireValue::Struct e;
    e.emplace("id", WireValue(entry.audit_id.ToBytes()));
    e.emplace("op", WireValue(entry.op));
    e.emplace("ts", WireValue(entry.client_time.nanos()));
    if (!entry.key.empty()) {
      e.emplace("key", WireValue(entry.key));
    }
    raw.push_back(WireValue(std::move(e)));
  }
  WireValue::Array payload;
  payload.push_back(WireValue(std::move(raw)));
  return payload;
}
}  // namespace

Status KeyServiceClient::UploadJournal(
    const std::vector<JournalEntry>& entries) {
  return RoutedCall("key.upload_journal", JournalPayload(entries)).status();
}

void KeyServiceClient::UploadJournalAsync(
    const std::vector<JournalEntry>& entries,
    std::function<void(Status)> done) {
  RoutedCallAsync("key.upload_journal", JournalPayload(entries),
                  [done = std::move(done)](Result<WireValue> result) {
                    done(result.status());
                  });
}

void KeyServiceClient::DestroyKeyAsync(const AuditId& audit_id,
                                       std::function<void(Status)> done) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  RoutedCallAsync("key.destroy", std::move(payload),
                  [done = std::move(done)](Result<WireValue> result) {
                    done(result.status());
                  });
}

void KeyServiceClient::NoteEvictionAsync(const AuditId& audit_id) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  RoutedCallAsync("key.evict", std::move(payload), [](Result<WireValue>) {
    // Best-effort: a lost eviction notice only means the
    // auditor over-reports exposure, never under-reports.
  });
}

}  // namespace keypad
