#include "src/keyservice/key_service_client.h"

#include <utility>

#include "src/keyservice/auth.h"

namespace keypad {

ReplicaRouter::Framer KeyServiceClient::MakeFramer() const {
  // Captures copies so the framer stays valid however the stub is stored.
  return [device_id = device_id_, device_secret = device_secret_](
             const std::string& method, WireValue::Array payload) {
    return FrameAuthedCall(device_id, device_secret, method,
                           std::move(payload));
  };
}

Result<Bytes> KeyServiceClient::CreateKey(const AuditId& audit_id) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  auto result = router_.Call("key.create", payload);
  if (!result.ok()) {
    return result.status();
  }
  return result->AsBytes();
}

void KeyServiceClient::CreateKeyAsync(
    const AuditId& audit_id, std::function<void(Result<Bytes>)> done) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  router_.CallAsync("key.create", std::move(payload),
                    [done = std::move(done)](Result<WireValue> result) {
                      if (!result.ok()) {
                        done(result.status());
                        return;
                      }
                      done(result->AsBytes());
                    });
}

namespace {
// Single-key fetches carry their access op's priority class on the wire:
// speculative prefetch is sheddable, everything else blocks a user.
CallContext ContextForOp(AccessOp op) {
  CallContext ctx;
  ctx.priority = op == AccessOp::kPrefetch ? RpcPriority::kPrefetch
                                           : RpcPriority::kDemand;
  return ctx;
}
}  // namespace

Result<Bytes> KeyServiceClient::GetKey(const AuditId& audit_id, AccessOp op) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  payload.push_back(WireValue(static_cast<int64_t>(op)));
  auto result = router_.Call("key.get", payload, ContextForOp(op));
  if (!result.ok()) {
    return result.status();
  }
  return result->AsBytes();
}

void KeyServiceClient::GetKeyAsync(const AuditId& audit_id, AccessOp op,
                                   std::function<void(Result<Bytes>)> done) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  payload.push_back(WireValue(static_cast<int64_t>(op)));
  router_.CallAsync("key.get", std::move(payload), ContextForOp(op),
                    [done = std::move(done)](Result<WireValue> result) {
                      if (!result.ok()) {
                        done(result.status());
                        return;
                      }
                      done(result->AsBytes());
                    });
}

namespace {
WireValue::Array KeyBatchPayload(const std::vector<AuditId>& audit_ids) {
  WireValue::Array ids;
  for (const auto& id : audit_ids) {
    ids.push_back(WireValue(id.ToBytes()));
  }
  WireValue::Array payload;
  payload.push_back(WireValue(std::move(ids)));
  return payload;
}

Result<std::vector<std::pair<AuditId, Bytes>>> ParseKeyPairs(
    const WireValue& result) {
  KP_ASSIGN_OR_RETURN(WireValue::Array entries, result.AsArray());
  std::vector<std::pair<AuditId, Bytes>> out;
  for (const auto& entry : entries) {
    KP_ASSIGN_OR_RETURN(WireValue id_value, entry.Field("id"));
    KP_ASSIGN_OR_RETURN(Bytes id_bytes, id_value.AsBytes());
    KP_ASSIGN_OR_RETURN(AuditId id, AuditId::FromBytes(id_bytes));
    KP_ASSIGN_OR_RETURN(WireValue key_value, entry.Field("key"));
    KP_ASSIGN_OR_RETURN(Bytes key, key_value.AsBytes());
    out.emplace_back(id, std::move(key));
  }
  return out;
}
}  // namespace

Result<std::vector<std::pair<AuditId, Bytes>>> KeyServiceClient::GetKeys(
    const std::vector<AuditId>& audit_ids) {
  auto result = router_.Call("key.get_batch", KeyBatchPayload(audit_ids));
  if (!result.ok()) {
    return result.status();
  }
  return ParseKeyPairs(*result);
}

namespace {
WireValue::Array MultiGetPayload(
    const std::vector<KeyServiceClient::MultiGetItem>& items) {
  WireValue::Array raw;
  for (const auto& item : items) {
    WireValue::Struct e;
    e.emplace("id", WireValue(item.audit_id.ToBytes()));
    e.emplace("op", WireValue(static_cast<int64_t>(item.op)));
    raw.push_back(WireValue(std::move(e)));
  }
  WireValue::Array payload;
  payload.push_back(WireValue(std::move(raw)));
  return payload;
}

Result<KeyServiceClient::MultiGetResult> ParseMultiGet(
    const WireValue& result) {
  KeyServiceClient::MultiGetResult out;
  KP_ASSIGN_OR_RETURN(WireValue keys_v, result.Field("keys"));
  KP_ASSIGN_OR_RETURN(out.keys, ParseKeyPairs(keys_v));
  KP_ASSIGN_OR_RETURN(WireValue misses_v, result.Field("misses"));
  KP_ASSIGN_OR_RETURN(WireValue::Array misses, misses_v.AsArray());
  for (const auto& entry : misses) {
    KeyServiceClient::MultiGetMiss miss;
    KP_ASSIGN_OR_RETURN(WireValue id_value, entry.Field("id"));
    KP_ASSIGN_OR_RETURN(Bytes id_bytes, id_value.AsBytes());
    KP_ASSIGN_OR_RETURN(miss.audit_id, AuditId::FromBytes(id_bytes));
    KP_ASSIGN_OR_RETURN(WireValue code_value, entry.Field("code"));
    KP_ASSIGN_OR_RETURN(int64_t code, code_value.AsInt());
    KP_ASSIGN_OR_RETURN(WireValue msg_value, entry.Field("msg"));
    KP_ASSIGN_OR_RETURN(std::string msg, msg_value.AsString());
    miss.status = Status(static_cast<StatusCode>(code), std::move(msg));
    out.misses.push_back(std::move(miss));
  }
  return out;
}
}  // namespace

Result<KeyServiceClient::MultiGetResult> KeyServiceClient::GetKeysTyped(
    const std::vector<MultiGetItem>& items) {
  auto result = router_.Call("key.get_multi", MultiGetPayload(items));
  if (!result.ok()) {
    return result.status();
  }
  return ParseMultiGet(*result);
}

void KeyServiceClient::GetKeysTypedAsync(
    const std::vector<MultiGetItem>& items,
    std::function<void(Result<MultiGetResult>)> done) {
  GetKeysTypedAsync(items, CallContext{}, std::move(done));
}

void KeyServiceClient::GetKeysTypedAsync(
    const std::vector<MultiGetItem>& items, const CallContext& ctx,
    std::function<void(Result<MultiGetResult>)> done) {
  router_.CallAsync("key.get_multi", MultiGetPayload(items), ctx,
                    [done = std::move(done)](Result<WireValue> result) {
                      if (!result.ok()) {
                        done(result.status());
                        return;
                      }
                      done(ParseMultiGet(*result));
                    });
}

namespace {
Result<KeyServiceClient::GroupFetch> ParseGroupFetch(
    const WireValue& result) {
  KeyServiceClient::GroupFetch out;
  KP_ASSIGN_OR_RETURN(WireValue demand, result.Field("demand"));
  KP_ASSIGN_OR_RETURN(out.demand_key, demand.AsBytes());
  KP_ASSIGN_OR_RETURN(WireValue prefetched, result.Field("prefetched"));
  KP_ASSIGN_OR_RETURN(WireValue::Array entries, prefetched.AsArray());
  for (const auto& entry : entries) {
    KP_ASSIGN_OR_RETURN(WireValue id_value, entry.Field("id"));
    KP_ASSIGN_OR_RETURN(Bytes id_bytes, id_value.AsBytes());
    KP_ASSIGN_OR_RETURN(AuditId id, AuditId::FromBytes(id_bytes));
    KP_ASSIGN_OR_RETURN(WireValue key_value, entry.Field("key"));
    KP_ASSIGN_OR_RETURN(Bytes key, key_value.AsBytes());
    out.prefetched.emplace_back(id, std::move(key));
  }
  return out;
}

WireValue::Array GroupFetchPayload(const AuditId& demand_id,
                                   const std::vector<AuditId>& prefetch_ids) {
  WireValue::Array ids;
  for (const auto& id : prefetch_ids) {
    ids.push_back(WireValue(id.ToBytes()));
  }
  WireValue::Array payload;
  payload.push_back(WireValue(demand_id.ToBytes()));
  payload.push_back(WireValue(std::move(ids)));
  return payload;
}
}  // namespace

Result<KeyServiceClient::GroupFetch> KeyServiceClient::FetchGroup(
    const AuditId& demand_id, const std::vector<AuditId>& prefetch_ids) {
  auto result =
      router_.Call("key.fetch_group", GroupFetchPayload(demand_id, prefetch_ids));
  if (!result.ok()) {
    return result.status();
  }
  return ParseGroupFetch(*result);
}

void KeyServiceClient::FetchGroupAsync(
    const AuditId& demand_id, const std::vector<AuditId>& prefetch_ids,
    std::function<void(Result<GroupFetch>)> done) {
  router_.CallAsync("key.fetch_group",
                    GroupFetchPayload(demand_id, prefetch_ids),
                    [done = std::move(done)](Result<WireValue> result) {
                      if (!result.ok()) {
                        done(result.status());
                        return;
                      }
                      done(ParseGroupFetch(*result));
                    });
}

void KeyServiceClient::GetKeysAsync(
    const std::vector<AuditId>& audit_ids,
    std::function<void(Result<std::vector<std::pair<AuditId, Bytes>>>)>
        done) {
  router_.CallAsync("key.get_batch", KeyBatchPayload(audit_ids),
                    [done = std::move(done)](Result<WireValue> result) {
                      if (!result.ok()) {
                        done(result.status());
                        return;
                      }
                      done(ParseKeyPairs(*result));
                    });
}

namespace {
WireValue::Array JournalPayload(
    const std::vector<KeyServiceClient::JournalEntry>& entries) {
  WireValue::Array raw;
  for (const auto& entry : entries) {
    WireValue::Struct e;
    e.emplace("id", WireValue(entry.audit_id.ToBytes()));
    e.emplace("op", WireValue(entry.op));
    e.emplace("ts", WireValue(entry.client_time.nanos()));
    if (!entry.key.empty()) {
      e.emplace("key", WireValue(entry.key));
    }
    raw.push_back(WireValue(std::move(e)));
  }
  WireValue::Array payload;
  payload.push_back(WireValue(std::move(raw)));
  return payload;
}
}  // namespace

// Journal uploads are deferrable catch-up traffic: under overload the
// service sheds them first and the device simply retries the upload on
// its next reconnect pass — nothing a user is waiting on.
Status KeyServiceClient::UploadJournal(
    const std::vector<JournalEntry>& entries) {
  CallContext ctx;
  ctx.priority = RpcPriority::kBackground;
  return router_.Call("key.upload_journal", JournalPayload(entries), ctx)
      .status();
}

void KeyServiceClient::UploadJournalAsync(
    const std::vector<JournalEntry>& entries,
    std::function<void(Status)> done) {
  CallContext ctx;
  ctx.priority = RpcPriority::kBackground;
  router_.CallAsync("key.upload_journal", JournalPayload(entries), ctx,
                    [done = std::move(done)](Result<WireValue> result) {
                      done(result.status());
                    });
}

void KeyServiceClient::DestroyKeyAsync(const AuditId& audit_id,
                                       std::function<void(Status)> done) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  router_.CallAsync("key.destroy", std::move(payload),
                    [done = std::move(done)](Result<WireValue> result) {
                      done(result.status());
                    });
}

void KeyServiceClient::NoteEvictionAsync(const AuditId& audit_id) {
  WireValue::Array payload;
  payload.push_back(WireValue(audit_id.ToBytes()));
  router_.CallAsync("key.evict", std::move(payload), [](Result<WireValue>) {
    // Best-effort: a lost eviction notice only means the
    // auditor over-reports exposure, never under-reports.
  });
}

}  // namespace keypad
