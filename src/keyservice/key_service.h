// The remote key service (Figure 2 of the paper).
//
// Maintains the mapping audit-ID → remote key K_R_F, durably logging every
// key operation before responding — the core mechanism that entangles file
// access with audit logging. Also implements remote data control: disabling
// a device (or a single key) makes every subsequent fetch fail, and
// destroying a key erases it permanently (assured delete).
//
// The service sees only opaque IDs and keys, never pathnames — the privacy
// split between the key and metadata services (§3.1).

#ifndef SRC_KEYSERVICE_KEY_SERVICE_H_
#define SRC_KEYSERVICE_KEY_SERVICE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/cryptocore/secure_random.h"
#include "src/keyservice/audit_log.h"
#include "src/rpc/rpc.h"
#include "src/sim/event_queue.h"
#include "src/util/ids.h"
#include "src/util/result.h"

namespace keypad {

class KeyService {
 public:
  static constexpr size_t kRemoteKeyLen = 32;

  KeyService(EventQueue* queue, uint64_t rng_seed);

  // --- Administrative API (runs over a trusted path, e.g. the IT
  //     department's console or the drive maker's web service). ------------

  // Registers a device and returns its authentication secret.
  Bytes RegisterDevice(const std::string& device_id);
  // Remote data control: every key fetch for this device now fails.
  Status DisableDevice(const std::string& device_id);
  Status EnableDevice(const std::string& device_id);
  bool IsDeviceDisabled(const std::string& device_id) const;

  // --- Client API (exposed over RPC; see BindRpc). ------------------------

  // Creates and stores a fresh remote key bound to `audit_id`; logs kCreate.
  // Fails kAlreadyExists if the ID is taken.
  Result<Bytes> CreateKey(const std::string& device_id,
                          const AuditId& audit_id);
  // Logs the access, then returns the key. `op` distinguishes demand
  // fetches, prefetches, and cache-refreshes in the log.
  Result<Bytes> GetKey(const std::string& device_id, const AuditId& audit_id,
                       AccessOp op = AccessOp::kDemandFetch);
  // Batch fetch for directory prefetching: one network round trip, one log
  // entry per ID. IDs that don't exist are skipped (no error).
  Result<std::vector<std::pair<AuditId, Bytes>>> GetKeys(
      const std::string& device_id, const std::vector<AuditId>& audit_ids,
      AccessOp op = AccessOp::kPrefetch);
  // Combined demand fetch + directory prefetch in one round trip: the
  // demand ID is logged kDemandFetch, the rest kPrefetch. The demand key
  // must exist; missing prefetch IDs are skipped.
  struct GroupFetchResult {
    Bytes demand_key;
    std::vector<std::pair<AuditId, Bytes>> prefetched;
  };
  Result<GroupFetchResult> FetchGroup(const std::string& device_id,
                                      const AuditId& demand_id,
                                      const std::vector<AuditId>& prefetch_ids);

  // Paired-device support: a journaled access/creation uploaded after the
  // fact. For kCreate entries `key` carries the phone-generated remote key
  // (stored if the ID is new). Entries are appended with the original
  // client timestamps.
  struct JournalEntry {
    AuditId audit_id;
    AccessOp op = AccessOp::kDemandFetch;
    SimTime client_time;
    Bytes key;  // Only for kCreate.
  };
  Status UploadJournal(const std::string& device_id,
                       const std::vector<JournalEntry>& entries);

  // Client reports that it securely erased a cached key (e.g. hibernation).
  Status NoteEviction(const std::string& device_id, const AuditId& audit_id);
  // Disables a single file's key.
  Status DisableKey(const std::string& device_id, const AuditId& audit_id);
  // Permanently destroys key material (assured delete).
  Status DestroyKey(const std::string& device_id, const AuditId& audit_id);

  // --- Audit API. ---------------------------------------------------------

  const AuditLog& log() const { return log_; }
  std::vector<AuditLogEntry> LogSince(SimTime since) const {
    return log_.EntriesSince(since);
  }

  // Per-device secret lookup (used by client stubs inside the simulation
  // at registration time).
  Result<Bytes> DeviceSecret(const std::string& device_id) const;

  // Registers RPC handlers (key.create, key.get, key.get_batch, key.evict)
  // on `server`. Handlers authenticate the device tag before acting.
  void BindRpc(RpcServer* server);

  // Durable backup (§6: the services "routinely back up their state").
  // The snapshot carries devices, keys, and the full audit log; Restore
  // verifies the log's hash chain before accepting it.
  Bytes Snapshot() const;
  Status Restore(const Bytes& snapshot);

  // Number of keys currently stored (destroyed keys excluded).
  size_t key_count() const { return keys_.size(); }

 private:
  struct DeviceRecord {
    Bytes secret;
    bool disabled = false;
  };
  struct KeyRecord {
    Bytes key;
    bool disabled = false;
  };
  using KeyMapKey = std::pair<std::string, AuditId>;

  // Checks registration + revocation; logs denied attempts.
  Status CheckDevice(const std::string& device_id, const AuditId& audit_id);

  EventQueue* queue_;
  SecureRandom rng_;
  std::map<std::string, DeviceRecord> devices_;
  std::map<KeyMapKey, KeyRecord> keys_;
  AuditLog log_;
};

}  // namespace keypad

#endif  // SRC_KEYSERVICE_KEY_SERVICE_H_
